// Command provmark-batch runs the whole Table 1 benchmark suite under
// one tool and prints the per-syscall results — the equivalent of the
// paper's runTests.sh. The suite executes as a streaming matrix run:
// results print as their cells complete, and -parallel bounds how many
// benchmarks are in flight at once. With -store it also saves every
// benchmark graph into a regression store and reports differences from
// stored baselines (the Charlie use case).
//
// With -remote URL the suite is submitted as a job to a provmarkd
// instance instead of executing locally; cells stream back over the
// /v1 NDJSON API and feed the same reporting pipeline, so local and
// remote runs produce identical output.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
	"provmark/internal/graph"
	"provmark/internal/jobs/client"
	"provmark/internal/provmark"
	"provmark/internal/wire"

	// Backends register themselves with the capture registry.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "provmark-batch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	// Cancel the matrix on any early return so no workers stay blocked
	// on the results channel.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fs := flag.NewFlagSet("provmark-batch", flag.ContinueOnError)
	tool := fs.String("tool", "spade", "capture backend: spade, opus, camflow, spn")
	trials := fs.Int("trials", 0, "trials per variant (0 = tool default)")
	parallel := fs.Int("parallel", 1, "benchmarks in flight at once (matrix worker pool)")
	storeDir := fs.String("store", "", "regression store directory (enables save/compare)")
	htmlDir := fs.String("html", "", "write per-benchmark HTML pages and an index to this directory")
	timeLog := fs.String("timelog", "", "append per-benchmark stage timings to this file (A.6.4 format)")
	fast := fs.Bool("fast", true, "use cheap storage costs")
	remote := fs.String("remote", "", "provmarkd base URL (e.g. http://localhost:8177); run the suite as a remote job")
	scenarioPath := fs.String("scenario", "", "append a declarative scenario (JSON file) to the suite")
	rulesPath := fs.String("rules", "", "Datalog rule file to evaluate against every benchmark graph (requires -goal)")
	goalText := fs.String("goal", "", "goal atom for -rules, e.g. 'suspicious(P)'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*rulesPath == "") != (*goalText == "") {
		return fmt.Errorf("-rules and -goal go together")
	}
	var rules []datalog.Rule
	var goal datalog.Atom
	if *rulesPath != "" {
		var err error
		if goal, err = datalog.ParseAtom(*goalText); err != nil {
			return err
		}
		if rules, err = loadRules(*rulesPath, goal); err != nil {
			return err
		}
	}
	var scenarios []benchprog.Scenario
	if *scenarioPath != "" {
		s, err := benchprog.DecodeScenarioFile(*scenarioPath)
		if err != nil {
			return err
		}
		// The suite's rows are keyed by name (reporter lines, regression
		// store); a scenario shadowing a Table 1 benchmark would corrupt
		// that benchmark's baseline. provmarkd rejects the same collision
		// server-side — fail fast locally with matching semantics.
		for _, name := range benchprog.Names() {
			if name == s.Name {
				return fmt.Errorf("scenario name %q shadows a suite benchmark", s.Name)
			}
		}
		scenarios = append(scenarios, *s)
	}
	var store *provmark.Store
	if *storeDir != "" {
		var err error
		store, err = provmark.NewStore(*storeDir)
		if err != nil {
			return err
		}
	}
	var index *provmark.IndexWriter
	if *htmlDir != "" {
		var err error
		index, err = provmark.NewIndexWriter(*htmlDir, *tool)
		if err != nil {
			return err
		}
	}
	var timeLogFile *os.File
	if *timeLog != "" {
		var err error
		timeLogFile, err = os.OpenFile(*timeLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer timeLogFile.Close()
	}

	rep := &reporter{tool: *tool, store: store, index: index, timeLog: timeLogFile, rules: rules, goal: goal}

	if *remote != "" {
		// Cell concurrency is the server's pool to manage; the local
		// -parallel knob (benchmarks in flight) does not translate.
		if *parallel != 1 {
			fmt.Fprintln(os.Stderr, "provmark-batch: -parallel is ignored with -remote (the server's -workers bounds cell concurrency)")
		}
		if err := runRemote(ctx, *remote, *tool, *fast, *trials, scenarios, rep); err != nil {
			return err
		}
	} else {
		if err := runLocal(ctx, *tool, *fast, *trials, *parallel, scenarios, rep); err != nil {
			return err
		}
	}
	if index != nil {
		path, err := index.Flush()
		if err != nil {
			return err
		}
		fmt.Printf("html report: %s\n", path)
	}
	return nil
}

// loadRules parses the suite's rule file through the static analyzer,
// mirroring provmark's rule loading: diagnostics print to stderr with
// positions, analysis errors abort before any benchmark runs, and the
// reporter evaluates the goal-optimized program (the goal is fixed for
// the whole batch, so pruning to its dependency closure is sound for
// every cell).
func loadRules(path string, goal datalog.Atom) ([]datalog.Rule, error) {
	prog, diags, err := analyze.CheckFile(path, analyze.Options{Goal: &goal})
	if err != nil {
		return nil, err
	}
	diags = analyze.Exclude(diags, analyze.CodeUnreachableRule)
	fmt.Fprint(os.Stderr, analyze.Render(path, diags))
	if analyze.HasErrors(diags) {
		return nil, fmt.Errorf("%s: rules rejected by analysis (%s)", path, analyze.Summary(diags))
	}
	rules, _ := analyze.Optimize(prog.Rules, goal)
	return rules, nil
}

// runLocal executes the suite as a streaming matrix run in-process.
func runLocal(ctx context.Context, tool string, fast bool, trials, parallel int, scenarios []benchprog.Scenario, rep *reporter) error {
	progs := make([]benchprog.Program, 0)
	for _, name := range benchprog.Names() {
		prog, _ := benchprog.ByName(name)
		progs = append(progs, prog)
	}
	m := provmark.Matrix{
		Tools:      []string{tool},
		Capture:    capture.Options{Fast: fast},
		Benchmarks: progs,
		Scenarios:  scenarios,
		Workers:    parallel,
		Pipeline:   []provmark.Option{provmark.WithTrials(trials)},
	}
	results, err := m.Stream(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("batch run: %s\n", tool)
	for cell := range results {
		if err := rep.cell(provmark.ToWireCell(cell)); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// runRemote submits the suite as a provmarkd job and streams its cells
// through the same reporter as a local run, so both modes produce
// identical output.
func runRemote(ctx context.Context, base, tool string, fast bool, trials int, scenarios []benchprog.Scenario, rep *reporter) error {
	c := client.New(base, nil)
	if err := c.Health(ctx); err != nil {
		return err
	}
	spec := &wire.JobSpec{
		Tools:     []string{tool},
		Capture:   &wire.CaptureOptions{Fast: fast},
		Trials:    trials,
		Scenarios: scenarios,
	}
	if len(scenarios) > 0 {
		// A scenario-only spec runs just its scenarios; name the full
		// suite explicitly so the batch still covers Table 1.
		spec.Benchmarks = benchprog.Names()
	}
	fmt.Printf("batch run: %s (remote %s)\n", tool, base)
	status, err := c.Run(ctx, spec, rep.cell)
	if err != nil {
		return err
	}
	if status.State != wire.JobDone {
		return fmt.Errorf("remote job %s ended %s (%d/%d cells, %d failed)",
			status.ID, status.State, status.Completed, status.Total, status.Failed)
	}
	return nil
}

// reporter prints one line per completed cell and feeds the optional
// sinks (regression store, HTML index, timing log). It consumes the
// wire form directly — local cells are converted once, remote cells
// arrive in it — so both modes share one path and graphs are only
// materialized when the regression store needs them.
type reporter struct {
	tool    string
	store   *provmark.Store
	index   *provmark.IndexWriter
	timeLog *os.File
	// rules/goal enable per-cell Datalog matching (-rules/-goal): every
	// non-empty benchmark graph is scanned and the bindings print under
	// the cell's line, identically for local and remote runs.
	rules []datalog.Rule
	goal  datalog.Atom
}

func (p *reporter) cell(cell *wire.MatrixResult) error {
	if cell.Err != "" {
		fmt.Printf("%-12s ERROR %s\n", cell.Benchmark, cell.Err)
		return nil
	}
	res := cell.Result
	status := "empty"
	if !res.Empty {
		status = res.Target.Summary()
	}
	if p.index != nil {
		if err := p.index.AddWire(res); err != nil {
			return err
		}
	}
	if p.timeLog != nil {
		if _, err := fmt.Fprintln(p.timeLog, provmark.TimingLogLineWire(res)); err != nil {
			return err
		}
	}
	// The regression store and the rule matcher both need the target
	// graph materialized from wire form; build it once for both.
	var target *graph.Graph
	if (p.store != nil || len(p.rules) > 0) && !res.Empty {
		var err error
		if target, err = res.Target.Build(); err != nil {
			return err
		}
	}
	regression := ""
	if p.store != nil && !res.Empty {
		diff, err := p.store.Check(p.tool, cell.Benchmark, target)
		switch {
		case errors.Is(err, provmark.ErrNoBaseline):
			if err := p.store.Save(p.tool, cell.Benchmark, target); err != nil {
				return err
			}
			regression = "baseline saved"
		case err != nil:
			return err
		case diff.Changed:
			regression = "REGRESSION: " + diff.Detail
		default:
			regression = "matches baseline"
		}
	}
	fmt.Printf("%-12s %-14s %s\n", cell.Benchmark, status, regression)
	if len(p.rules) > 0 && !res.Empty {
		db := datalog.NewDatabase()
		db.LoadGraph(target)
		if err := db.Run(p.rules); err != nil {
			return err
		}
		for _, line := range strings.Split(strings.TrimRight(datalog.FormatBindings(p.goal, db.Query(p.goal)), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}
