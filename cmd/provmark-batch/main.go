// Command provmark-batch runs the whole Table 1 benchmark suite under
// one tool and prints the per-syscall results — the equivalent of the
// paper's runTests.sh. With -store it also saves every benchmark graph
// into a regression store and reports differences from stored
// baselines (the Charlie use case).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"provmark/internal/bench"
	"provmark/internal/benchprog"
	"provmark/internal/graph"
	"provmark/internal/provmark"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "provmark-batch:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("provmark-batch", flag.ContinueOnError)
	tool := fs.String("tool", "spade", "capture tool: spade, opus, camflow, spn")
	trials := fs.Int("trials", 0, "trials per variant (0 = tool default)")
	storeDir := fs.String("store", "", "regression store directory (enables save/compare)")
	htmlDir := fs.String("html", "", "write per-benchmark HTML pages and an index to this directory")
	timeLog := fs.String("timelog", "", "append per-benchmark stage timings to this file (A.6.4 format)")
	fast := fs.Bool("fast", true, "use cheap storage costs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := bench.NewSuite(*fast)
	rec, err := suite.Recorder(*tool)
	if err != nil {
		return err
	}
	var store *provmark.Store
	if *storeDir != "" {
		store, err = provmark.NewStore(*storeDir)
		if err != nil {
			return err
		}
	}
	var index *provmark.IndexWriter
	if *htmlDir != "" {
		index, err = provmark.NewIndexWriter(*htmlDir, *tool)
		if err != nil {
			return err
		}
	}
	var timeLogFile *os.File
	if *timeLog != "" {
		timeLogFile, err = os.OpenFile(*timeLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer timeLogFile.Close()
	}
	runner := provmark.NewRunner(rec, provmark.Config{Trials: *trials})
	fmt.Printf("batch run: %s\n", *tool)
	for _, name := range benchprog.Names() {
		prog, _ := benchprog.ByName(name)
		res, err := runner.Run(prog)
		if err != nil {
			fmt.Printf("%-12s ERROR %v\n", name, err)
			continue
		}
		status := "empty"
		if !res.Empty {
			status = graph.Summarize(res.Target).String()
		}
		if index != nil {
			if err := index.Add(res); err != nil {
				return err
			}
		}
		if timeLogFile != nil {
			if _, err := fmt.Fprintln(timeLogFile, provmark.TimingLogLine(res)); err != nil {
				return err
			}
		}
		regression := ""
		if store != nil && !res.Empty {
			diff, err := store.Check(*tool, name, res.Target)
			switch {
			case errors.Is(err, provmark.ErrNoBaseline):
				if err := store.Save(*tool, name, res.Target); err != nil {
					return err
				}
				regression = "baseline saved"
			case err != nil:
				return err
			case diff.Changed:
				regression = "REGRESSION: " + diff.Detail
			default:
				regression = "matches baseline"
			}
		}
		fmt.Printf("%-12s %-14s %s\n", name, status, regression)
	}
	if index != nil {
		path, err := index.Flush()
		if err != nil {
			return err
		}
		fmt.Printf("html report: %s\n", path)
	}
	return nil
}
