// Command provmark-batch runs the whole Table 1 benchmark suite under
// one tool and prints the per-syscall results — the equivalent of the
// paper's runTests.sh. The suite executes as a streaming matrix run:
// results print as their cells complete, and -parallel bounds how many
// benchmarks are in flight at once. With -store it also saves every
// benchmark graph into a regression store and reports differences from
// stored baselines (the Charlie use case).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/provmark"

	// Backends register themselves with the capture registry.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "provmark-batch:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	// Cancel the matrix on any early return so no workers stay blocked
	// on the results channel.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fs := flag.NewFlagSet("provmark-batch", flag.ContinueOnError)
	tool := fs.String("tool", "spade", "capture backend: spade, opus, camflow, spn")
	trials := fs.Int("trials", 0, "trials per variant (0 = tool default)")
	parallel := fs.Int("parallel", 1, "benchmarks in flight at once (matrix worker pool)")
	storeDir := fs.String("store", "", "regression store directory (enables save/compare)")
	htmlDir := fs.String("html", "", "write per-benchmark HTML pages and an index to this directory")
	timeLog := fs.String("timelog", "", "append per-benchmark stage timings to this file (A.6.4 format)")
	fast := fs.Bool("fast", true, "use cheap storage costs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var store *provmark.Store
	if *storeDir != "" {
		var err error
		store, err = provmark.NewStore(*storeDir)
		if err != nil {
			return err
		}
	}
	var index *provmark.IndexWriter
	if *htmlDir != "" {
		var err error
		index, err = provmark.NewIndexWriter(*htmlDir, *tool)
		if err != nil {
			return err
		}
	}
	var timeLogFile *os.File
	if *timeLog != "" {
		var err error
		timeLogFile, err = os.OpenFile(*timeLog, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		defer timeLogFile.Close()
	}

	progs := make([]benchprog.Program, 0)
	for _, name := range benchprog.Names() {
		prog, _ := benchprog.ByName(name)
		progs = append(progs, prog)
	}
	m := provmark.Matrix{
		Tools:      []string{*tool},
		Capture:    capture.Options{Fast: *fast},
		Benchmarks: progs,
		Workers:    *parallel,
		Pipeline:   []provmark.Option{provmark.WithTrials(*trials)},
	}
	results, err := m.Stream(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("batch run: %s\n", *tool)
	for cell := range results {
		if cell.Err != nil {
			fmt.Printf("%-12s ERROR %v\n", cell.Benchmark, cell.Err)
			continue
		}
		res := cell.Result
		status := "empty"
		if !res.Empty {
			status = graph.Summarize(res.Target).String()
		}
		if index != nil {
			if err := index.Add(res); err != nil {
				return err
			}
		}
		if timeLogFile != nil {
			if _, err := fmt.Fprintln(timeLogFile, provmark.TimingLogLine(res)); err != nil {
				return err
			}
		}
		regression := ""
		if store != nil && !res.Empty {
			diff, err := store.Check(*tool, cell.Benchmark, res.Target)
			switch {
			case errors.Is(err, provmark.ErrNoBaseline):
				if err := store.Save(*tool, cell.Benchmark, res.Target); err != nil {
					return err
				}
				regression = "baseline saved"
			case err != nil:
				return err
			case diff.Changed:
				regression = "REGRESSION: " + diff.Detail
			default:
				regression = "matches baseline"
			}
		}
		fmt.Printf("%-12s %-14s %s\n", cell.Benchmark, status, regression)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if index != nil {
		path, err := index.Flush()
		if err != nil {
			return err
		}
		fmt.Printf("html report: %s\n", path)
	}
	return nil
}
