// provmark-perf writes the repo's performance snapshot: every
// counter-instrumented hot path (Datalog ancestry join probes,
// similarity-classification fingerprints and solver invocations) runs
// once, and the measurements land in BENCH_<id>.json (schema
// provmark/bench-snapshot/v1).
//
//	provmark-perf -o BENCH_9.json -gate 2
//
// With -gate set, the run fails when any counter exceeds the checked-in
// baseline by more than the given factor — the CI regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"provmark/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "provmark-perf:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("o", "BENCH_9.json", "snapshot path (- for stdout)")
	gate := flag.Float64("gate", 0, "fail when a counter exceeds baseline*factor (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments")
	}

	snap, err := bench.RunPerf()
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	for _, r := range snap.Results {
		fmt.Fprintf(os.Stderr, "provmark-perf: %-32s %12d ns %10d allocs  %v\n", r.Name, r.NsOp, r.AllocsOp, r.Counters)
	}
	if *gate > 0 {
		if err := snap.Gate(*gate); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "provmark-perf: gate passed (factor %g)\n", *gate)
	}
	return nil
}
