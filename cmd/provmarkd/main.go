// Command provmarkd serves the ProvMark (tools × benchmarks)
// expressiveness matrix over HTTP: clients submit matrix jobs in the
// versioned wire vocabulary — naming registered benchmarks and/or
// carrying inline declarative scenarios — stream cells as NDJSON while
// they complete, and share one deduplicating result store and one
// similarity-classification engine across all jobs.
//
// Endpoints:
//
//	POST /v1/jobs                submit a wire.JobSpec (benchmarks and/or inline scenarios)
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/stream    NDJSON cell stream (owner; cancels on disconnect)
//	GET  /v1/results/{cell}      stored cell result by dedup key
//	POST /v1/query               evaluate Datalog rules against a stored cell's provenance
//	GET  /v1/stats               store + query counters, retained jobs by state
//	GET  /healthz                liveness
//
// provmark-batch --remote is the matching client.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"provmark/internal/jobs"

	// Backends register themselves with the capture registry.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "provmarkd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("provmarkd", flag.ContinueOnError)
	addr := fs.String("addr", ":8177", "listen address")
	workers := fs.Int("workers", 0, "cells in flight across all jobs (0 = GOMAXPROCS)")
	storeSize := fs.Int("store-size", jobs.DefaultStoreSize, "max cached cell results")
	maxJobs := fs.Int("max-jobs", jobs.DefaultMaxJobs, "retained jobs; oldest finished jobs are evicted beyond this")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m := jobs.NewManager(jobs.Config{Workers: *workers, StoreSize: *storeSize, MaxJobs: *maxJobs})
	defer m.Close()

	srv := &http.Server{Addr: *addr, Handler: jobs.NewServer(m)}
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("provmarkd: serving /v1 on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
