// Command provmarkd serves the ProvMark (tools × benchmarks)
// expressiveness matrix over HTTP: clients submit matrix jobs in the
// versioned wire vocabulary — naming registered benchmarks and/or
// carrying inline declarative scenarios — stream cells as NDJSON while
// they complete, and share one deduplicating result store and one
// similarity-classification engine across all jobs.
//
// Endpoints:
//
//	POST /v1/jobs                submit a wire.JobSpec (benchmarks and/or inline scenarios)
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/stream    NDJSON cell stream (owner; cancels on disconnect)
//	GET  /v1/results/{cell}      stored cell result by dedup key
//	POST /v1/query               evaluate Datalog rules against a stored cell's provenance
//	GET  /v1/stats               store + query counters, retained jobs by state
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                liveness
//
// Every endpoint is served through the internal/httpmw chain: panic
// recovery, X-Request-ID correlation, structured JSON access logs,
// per-route metrics, and — when the matching flags are set — bearer
// auth (-auth-token), per-session token-bucket rate limiting
// (-rate/-burst), and lifetime session quotas (-session-quota).
//
// provmark-batch --remote is the matching client; it retries on
// 429/503 honoring Retry-After.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"provmark/internal/jobs"

	// Backends register themselves with the capture registry.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "provmarkd:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("provmarkd", flag.ContinueOnError)
	addr := fs.String("addr", ":8177", "listen address")
	workers := fs.Int("workers", 0, "cells in flight across all jobs (0 = GOMAXPROCS)")
	storeSize := fs.Int("store-size", jobs.DefaultStoreSize, "max cached cell results")
	maxJobs := fs.Int("max-jobs", jobs.DefaultMaxJobs, "retained jobs; oldest finished jobs are evicted beyond this")
	authToken := fs.String("auth-token", "", "require this bearer token on every request except /healthz (empty = auth disabled)")
	rate := fs.Float64("rate", 0, "per-session request rate in requests/second (0 = rate limiting disabled)")
	burst := fs.Int("burst", 10, "token-bucket capacity per session when -rate is set")
	sessionQuota := fs.Int64("session-quota", 0, "lifetime request quota per session (0 = unlimited)")
	logFormat := fs.String("log-format", "json", "structured log format: json or text")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want json or text)", *logFormat)
	}
	logger := slog.New(handler)

	m := jobs.NewManager(jobs.Config{Workers: *workers, StoreSize: *storeSize, MaxJobs: *maxJobs})
	defer m.Close()

	// A misordered middleware chain is a startup error by design:
	// refuse to serve rather than run with a scrambled policy stack.
	h, err := jobs.NewServer(m,
		jobs.WithAuthToken(*authToken),
		jobs.WithRateLimit(*rate, *burst),
		jobs.WithSessionQuota(*sessionQuota),
		jobs.WithLogger(logger),
	)
	if err != nil {
		return err
	}

	effectiveWorkers := *workers
	if effectiveWorkers < 1 {
		effectiveWorkers = runtime.GOMAXPROCS(0)
	}
	// The effective config, for operators — auth is reported as a
	// boolean only; the token value never reaches a log line.
	logger.LogAttrs(ctx, slog.LevelInfo, "provmarkd starting",
		slog.String("addr", *addr),
		slog.Int("workers", effectiveWorkers),
		slog.Int("store_size", *storeSize),
		slog.Int("max_jobs", *maxJobs),
		slog.Bool("auth", *authToken != ""),
		slog.Float64("rate", *rate),
		slog.Int("burst", *burst),
		slog.Int64("session_quota", *sessionQuota),
		slog.String("log_format", *logFormat),
	)

	srv := &http.Server{Addr: *addr, Handler: h}
	errc := make(chan error, 1)
	go func() {
		logger.Info("provmarkd serving /v1", "addr", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("provmarkd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	logger.Info("provmarkd stopped")
	return nil
}
