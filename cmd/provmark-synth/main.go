// provmark-synth runs a coverage-guided scenario synthesis campaign:
// it generates seeded random benchmark scenarios from the kernel's
// dispatch-table metadata, verifies each one, compares the capture
// tools' expressiveness on it, and shrinks every divergence class to a
// minimal reproducing scenario.
//
//	provmark-synth -seed 7 -budget 1000 -o report.ndjson
//
// The report is NDJSON (schema provmark/synth-report/v1): one header
// line, one line per divergence class carrying the shrunk scenario as
// canonical JSON, and a trailing summary line.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"provmark/internal/benchprog/synth"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "provmark-synth:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "synthesis seed (same seed, same campaign)")
	budget := flag.Int("budget", 100, "number of scenarios to synthesize")
	tools := flag.String("tools", "", "comma-separated capture tools to compare (default spade,opus,camflow)")
	trials := flag.Int("trials", 0, "recording trials per variant (default 2)")
	fast := flag.Bool("fast", true, "skip simulated storage warm-up costs")
	noDiff := flag.Bool("no-diff", false, "synthesize and verify only, no cross-tool comparison")
	noShrink := flag.Bool("no-shrink", false, "report divergences without minimizing them")
	out := flag.String("o", "-", "report path (- for stdout)")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()
	if flag.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " "))
	}

	var report io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		report = f
	}

	opts := synth.CampaignOptions{
		Seed:     *seed,
		Budget:   *budget,
		Trials:   *trials,
		Fast:     *fast,
		NoDiff:   *noDiff,
		NoShrink: *noShrink,
		Report:   report,
	}
	if *tools != "" {
		opts.Tools = strings.Split(*tools, ",")
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sum, _, err := synth.RunCampaign(ctx, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"provmark-synth: %d scenarios (seed %d): %d validator / %d compile / %d exec failures, %d divergent in %d classes (%d re-verified), coverage %d\n",
		sum.Scenarios, *seed, sum.ValidatorFailures, sum.CompileFailures, sum.ExecFailures,
		sum.Divergent, sum.Classes, sum.Reverified, sum.Coverage.DistinctTotal)
	if sum.ValidatorFailures+sum.CompileFailures+sum.ExecFailures > 0 {
		return fmt.Errorf("synthesized scenarios failed verification")
	}
	return nil
}
