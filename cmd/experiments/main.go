// Command experiments regenerates every table and figure of the
// paper's evaluation. Run with no arguments for the full set, or
// -run <id> for one experiment (table1, table2, table3, table4, fig1,
// fig5, fig6, fig7, fig8, fig9, fig10).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"provmark/internal/bench"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("run", "", "run a single experiment (table1..4, fig1, fig5..10, failures, spc)")
	fast := fs.Bool("fast", false, "use cheap storage costs (distorts OPUS timing shapes)")
	parallel := fs.Int("parallel", 1, "matrix worker pool for multi-cell experiments (>1 distorts timing figures)")
	root := fs.String("root", ".", "repository root (for table4 line counts)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := bench.NewSuite(*fast)
	suite.Workers = *parallel
	experiments := []struct {
		id  string
		run func() error
	}{
		{"table1", func() error {
			fmt.Println(bench.RenderTable1())
			return nil
		}},
		{"fig1", func() error {
			f, err := suite.RunFig1(ctx)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFig1(f))
			return nil
		}},
		{"table2", func() error {
			t, err := suite.RunTable2(ctx)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderTable2(t))
			return nil
		}},
		{"table3", func() error {
			t, err := suite.RunTable3(ctx)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderTable3(t))
			return nil
		}},
		{"fig5", timingExp(ctx, suite, "spade", "Figure 5. Timing results: SPADE+Graphviz")},
		{"fig6", timingExp(ctx, suite, "opus", "Figure 6. Timing results: OPUS+Neo4j")},
		{"fig7", timingExp(ctx, suite, "camflow", "Figure 7. Timing results: CamFlow+ProvJSON")},
		{"fig8", scaleExp(ctx, suite, "spade", "Figure 8. Scalability results: SPADE+Graphviz")},
		{"fig9", scaleExp(ctx, suite, "opus", "Figure 9. Scalability results: OPUS+Neo4j")},
		{"fig10", scaleExp(ctx, suite, "camflow", "Figure 10. Scalability results: CamFlow+ProvJSON")},
		{"failures", func() error {
			res, err := suite.RunFailureMatrix(ctx)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderFailureMatrix(res))
			return nil
		}},
		{"spc", func() error {
			res, err := suite.RunSpcColumn(ctx)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderSpcColumn(res))
			return nil
		}},
		{"table4", func() error {
			sizes, err := bench.Table4ModuleSizes(*root)
			if err != nil {
				return err
			}
			fmt.Println(bench.RenderTable4(sizes))
			return nil
		}},
	}
	ran := false
	for _, e := range experiments {
		if *only != "" && e.id != *only {
			continue
		}
		ran = true
		fmt.Printf("== %s ==\n", e.id)
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}

func timingExp(ctx context.Context, suite *bench.Suite, tool, title string) func() error {
	return func() error {
		rows, err := suite.RunTiming(ctx, tool)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTiming(title, rows))
		return nil
	}
}

func scaleExp(ctx context.Context, suite *bench.Suite, tool, title string) func() error {
	return func() error {
		rows, err := suite.RunScalability(ctx, tool)
		if err != nil {
			return err
		}
		fmt.Println(bench.RenderTiming(title, rows))
		return nil
	}
}
