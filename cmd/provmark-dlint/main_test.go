package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtures = "../../internal/datalog/analyze/testdata"

func runDlint(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestHumanOutputMatchesGolden(t *testing.T) {
	path := filepath.Join(fixtures, "unsafe.dl")
	code, stdout, stderr := runDlint(t, path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}
	golden, err := os.ReadFile(filepath.Join(fixtures, "unsafe.golden"))
	if err != nil {
		t.Fatal(err)
	}
	// Golden files render with the bare fixture name; the CLI prints
	// the path it was given.
	want := strings.ReplaceAll(string(golden), "unsafe.dl:", path+":")
	if stdout != want {
		t.Errorf("stdout:\n%s\nwant:\n%s", stdout, want)
	}
	if !strings.Contains(stderr, "error(s)") {
		t.Errorf("stderr lacks summary: %q", stderr)
	}
}

func TestCleanFileExitsZero(t *testing.T) {
	code, stdout, _ := runDlint(t, filepath.Join(fixtures, "clean.dl"))
	if code != 0 || stdout != "" {
		t.Errorf("exit = %d, stdout = %q; want 0 and empty", code, stdout)
	}
}

func TestWerrorPromotesWarnings(t *testing.T) {
	warnOnly := filepath.Join(fixtures, "cartesian_product.dl")
	if code, _, _ := runDlint(t, warnOnly); code != 0 {
		t.Fatalf("warnings alone must exit 0 without -Werror (got %d)", code)
	}
	if code, _, _ := runDlint(t, "-Werror", warnOnly); code != 1 {
		t.Error("-Werror must exit 1 on warnings")
	}
}

func TestGoalDirectedAnalysis(t *testing.T) {
	path := filepath.Join(fixtures, "unreachable_rule.dl")
	if code, _, _ := runDlint(t, path); code != 0 {
		t.Fatal("fixture must be clean without a goal")
	}
	code, stdout, _ := runDlint(t, "-goal", "tainted(X)", path)
	if code != 0 {
		t.Errorf("unreachable warnings are not errors (exit %d)", code)
	}
	if !strings.Contains(stdout, "unreachable-rule") {
		t.Errorf("missing unreachable-rule findings:\n%s", stdout)
	}
}

func TestNDJSONStream(t *testing.T) {
	code, stdout, _ := runDlint(t, "-format", "ndjson",
		filepath.Join(fixtures, "unsafe.dl"), filepath.Join(fixtures, "clean.dl"))
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	sc := bufio.NewScanner(strings.NewReader(stdout))
	var kinds []string
	var lastLine string
	for sc.Scan() {
		var probe struct {
			Kind     string `json:"kind"`
			Schema   string `json:"schema"`
			File     string `json:"file"`
			Severity string `json:"severity"`
			Code     string `json:"code"`
			Span     struct {
				Line int `json:"line"`
				Col  int `json:"col"`
			} `json:"span"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, probe.Kind)
		if probe.Kind == "header" && probe.Schema != ReportSchema {
			t.Errorf("header schema = %q", probe.Schema)
		}
		if probe.Kind == "diagnostic" {
			if probe.File == "" || probe.Severity == "" || probe.Code == "" || probe.Span.Line == 0 {
				t.Errorf("incomplete diagnostic record: %s", sc.Text())
			}
		}
		lastLine = sc.Text()
	}
	if kinds[0] != "header" || kinds[len(kinds)-1] != "summary" {
		t.Errorf("stream shape: %v", kinds)
	}
	var sum struct {
		Files    int `json:"files"`
		Errors   int `json:"errors"`
		Warnings int `json:"warnings"`
	}
	if err := json.Unmarshal([]byte(lastLine), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Files != 2 || sum.Errors == 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestUsageAndIOFailures(t *testing.T) {
	if code, _, _ := runDlint(t); code != 2 {
		t.Error("no files must exit 2")
	}
	if code, _, _ := runDlint(t, "-format", "xml", "x.dl"); code != 2 {
		t.Error("bad format must exit 2")
	}
	if code, _, _ := runDlint(t, "-goal", "not p(X)", "x.dl"); code != 2 {
		t.Error("bad goal must exit 2")
	}
	if code, _, _ := runDlint(t, "no-such-file.dl"); code != 2 {
		t.Error("missing file must exit 2")
	}
}
