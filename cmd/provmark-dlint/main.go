// Command provmark-dlint lints Datalog rule files with the static
// analyzer of internal/datalog/analyze: structured, positioned
// diagnostics over the rule language that /v1/query and the -rules
// flags evaluate.
//
// Usage:
//
//	provmark-dlint [-format human|ndjson] [-Werror] [-goal atom] file.dl...
//
// Human output is one conventional compiler line per finding
// ("file:line:col: severity: message [code]"); ndjson emits a header
// record, one record per diagnostic, and a summary record. With -goal
// the analysis is goal-directed: the goal's predicate and arity are
// checked and rules the goal cannot reach are reported as
// unreachable. -Werror promotes warnings to a failing exit.
//
// Exit status: 0 clean, 1 findings (errors, or warnings under
// -Werror), 2 usage or I/O failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"provmark/internal/analysis/report"
	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
)

// ReportSchema versions the NDJSON report stream.
const ReportSchema = "provmark/dlint-report/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("provmark-dlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "human", "output format: human or ndjson")
	werror := fs.Bool("Werror", false, "treat warnings as errors (exit 1 on any finding)")
	goalText := fs.String("goal", "", "goal atom for goal-directed analysis, e.g. 'suspicious(P)'")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "human" && *format != "ndjson" {
		fmt.Fprintf(stderr, "provmark-dlint: unknown format %q\n", *format)
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		fmt.Fprintln(stderr, "provmark-dlint: no rule files (usage: provmark-dlint [-format human|ndjson] [-Werror] [-goal atom] file.dl...)")
		return 2
	}
	opts := analyze.Options{}
	if *goalText != "" {
		goal, err := datalog.ParseAtom(*goalText)
		if err != nil {
			fmt.Fprintln(stderr, "provmark-dlint:", err)
			return 2
		}
		opts.Goal = &goal
	}
	var w *report.Writer
	if *format == "ndjson" {
		var err error
		if w, err = report.NewWriter(stdout, ReportSchema, len(files)); err != nil {
			fmt.Fprintln(stderr, "provmark-dlint:", err)
			return 2
		}
	}
	totalErrors, totalWarnings := 0, 0
	for _, path := range files {
		_, diags, err := analyze.CheckFile(path, opts)
		if err != nil {
			fmt.Fprintln(stderr, "provmark-dlint:", err)
			return 2
		}
		errs, warns := analyze.Count(diags)
		totalErrors += errs
		totalWarnings += warns
		switch *format {
		case "human":
			fmt.Fprint(stdout, analyze.Render(path, diags))
		case "ndjson":
			for _, d := range diags {
				if err := w.Diagnostic(path, d); err != nil {
					fmt.Fprintln(stderr, "provmark-dlint:", err)
					return 2
				}
			}
		}
	}
	if *format == "ndjson" {
		if err := w.Close(); err != nil {
			fmt.Fprintln(stderr, "provmark-dlint:", err)
			return 2
		}
	} else if totalErrors+totalWarnings > 0 {
		fmt.Fprintf(stderr, "provmark-dlint: %d error(s), %d warning(s) in %d file(s)\n", totalErrors, totalWarnings, len(files))
	}
	if totalErrors > 0 || (*werror && totalWarnings > 0) {
		return 1
	}
	return 0
}
