package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"provmark/internal/analysis/report"
)

// fixtures points at the analyzer fixture tree; the CLI tests drive
// the same packages the golden tests verify analyzer-by-analyzer.
const fixtures = "../../internal/analysis/testdata/src"

func runVet(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr strings.Builder
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestRunFindsLeak(t *testing.T) {
	root := t.TempDir()
	src := `package p
import "log/slog"
func f(authToken string) { slog.Info("x", "t", authToken) }`
	if err := os.WriteFile(filepath.Join(root, "leak.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runVet(t, "-root", root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, stderr = %s", code, stderr)
	}
	if !strings.Contains(stdout, "authToken") || !strings.Contains(stdout, "[credlog]") {
		t.Errorf("output = %q", stdout)
	}
	if !strings.Contains(stderr, "1 error(s), 0 warning(s)") {
		t.Errorf("stderr = %q", stderr)
	}
}

func TestRunFixtureFindings(t *testing.T) {
	code, stdout, _ := runVet(t, "-root", fixtures, "./contextdiscipline")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	for _, want := range []string{"[ctx-not-first]", "[ctx-in-struct]", "[ctx-background]"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output lacks %s:\n%s", want, stdout)
		}
	}
}

func TestAnalyzerDisableFlag(t *testing.T) {
	// With the owning analyzer off, the fixture's findings — and the
	// staleness check on its allow directive — disappear.
	code, stdout, stderr := runVet(t, "-root", fixtures, "-contextdiscipline=false", "./contextdiscipline")
	if code != 0 || stdout != "" {
		t.Errorf("exit = %d, output = %q, stderr = %q", code, stdout, stderr)
	}
}

func TestWerrorPromotesWarnings(t *testing.T) {
	// The determinism wire fixture yields warnings only.
	if code, _, _ := runVet(t, "-root", fixtures, "./determinism/wire"); code != 0 {
		t.Fatal("warnings alone must exit 0 without -Werror")
	}
	if code, _, _ := runVet(t, "-root", fixtures, "-Werror", "./determinism/wire"); code != 1 {
		t.Error("-Werror must exit 1 on warnings")
	}
}

func TestNDJSONStream(t *testing.T) {
	code, stdout, stderr := runVet(t, "-root", fixtures, "-format", "ndjson", "./poolsafety")
	if code != 1 {
		t.Fatalf("exit = %d, stderr = %s", code, stderr)
	}
	rep, err := report.Read(strings.NewReader(stdout))
	if err != nil {
		t.Fatalf("stream does not validate: %v\n%s", err, stdout)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Errors != 2 || rep.Warnings != 1 || len(rep.Records) != 3 {
		t.Errorf("decoded %d errors, %d warnings, %d records", rep.Errors, rep.Warnings, len(rep.Records))
	}
	for _, rec := range rep.Records {
		if !strings.Contains(rec.File, "poolsafety") {
			t.Errorf("record file = %q", rec.File)
		}
	}
}

func TestLoadErrorIsDiagnosticNotCrash(t *testing.T) {
	code, stdout, _ := runVet(t, "-root", fixtures, "./broken")
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(stdout, "[load-error]") || !strings.Contains(stdout, "undefinedIdentifier") {
		t.Errorf("output = %q", stdout)
	}
}

func TestRunCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo scan in -short mode")
	}
	// The repository itself must vet clean with every analyzer enabled
	// and warnings promoted — the same gate CI enforces.
	code, stdout, stderr := runVet(t, "-root", "../..", "-Werror", "./...")
	if code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean tree printed %q", stdout)
	}
}

func TestUsageFailures(t *testing.T) {
	if code, _, _ := runVet(t, "-root", "does-not-exist", "./..."); code != 2 {
		t.Error("missing root must exit 2")
	}
	if code, _, _ := runVet(t, "-format", "xml", "./..."); code != 2 {
		t.Error("bad format must exit 2")
	}
	if code, _, _ := runVet(t, "-no-such-flag"); code != 2 {
		t.Error("unknown flag must exit 2")
	}
}
