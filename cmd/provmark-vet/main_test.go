package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFindsLeak(t *testing.T) {
	root := t.TempDir()
	src := `package p
import "log/slog"
func f(authToken string) { slog.Info("x", "t", authToken) }`
	if err := os.WriteFile(filepath.Join(root, "leak.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-root", root, "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, stderr = %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "authToken") || !strings.Contains(out.String(), "[credlog]") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(errOut.String(), "1 finding(s)") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunCleanTree(t *testing.T) {
	// The repository itself must vet clean — the same gate CI enforces.
	var out, errOut strings.Builder
	if code := run([]string{"-root", "../..", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d\n%s%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean tree printed %q", out.String())
	}
}

func TestRunBadPath(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-root", "does-not-exist", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d", code)
	}
}
