// Command provmark-vet is the repo's project-invariant multichecker:
// it runs the internal/analysis suite — determinism,
// contextdiscipline, mworder, goroutineleak, poolsafety, credlog —
// over Go package patterns, proving at vet time the invariants PRs
// 1–9 could only enforce at runtime (canonical encoding, context-first
// APIs, middleware class order, joinable goroutines, pool discipline,
// credential-safe logging).
//
// Usage:
//
//	provmark-vet [-root dir] [-format human|ndjson] [-Werror] [-<analyzer>=false ...] [patterns...]
//	provmark-vet ./...
//	provmark-vet -mworder=false ./internal/httpmw ./internal/jobs
//
// Every analyzer is on by default and has a boolean disable flag.
// Human output is one conventional compiler line per finding
// ("file:line:col: severity: message [code]"); ndjson emits the
// shared report framing (schema provmark/vet-report/v1, same
// header/diagnostic/summary stream as provmark-dlint). Deliberate
// exceptions are suppressed in source with a checked
// `//provmark:allow <code>` directive.
//
// Exit status: 0 clean, 1 findings (errors, or warnings under
// -Werror), 2 usage or I/O failure. Packages that fail to parse or
// type-check are load-error findings, not crashes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"provmark/internal/analysis"
	"provmark/internal/analysis/report"
)

// ReportSchema versions the NDJSON report stream.
const ReportSchema = "provmark/vet-report/v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("provmark-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "directory the package patterns resolve against")
	format := fs.String("format", "human", "output format: human or ndjson")
	werror := fs.Bool("Werror", false, "treat warnings as errors (exit 1 on any finding)")
	enabled := map[string]*bool{}
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "human" && *format != "ndjson" {
		fmt.Fprintf(stderr, "provmark-vet: unknown format %q\n", *format)
		return 2
	}
	var analyzers []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "provmark-vet:", err)
		return 2
	}
	files := 0
	for _, pkg := range pkgs {
		files += len(pkg.Files)
	}
	diags := analysis.Run(pkgs, analyzers)
	errors, warnings := analysis.Count(diags)
	switch *format {
	case "human":
		if _, err := io.WriteString(stdout, analysis.Render(diags)); err != nil {
			fmt.Fprintln(stderr, "provmark-vet:", err)
			return 2
		}
		if len(diags) > 0 {
			fmt.Fprintf(stderr, "provmark-vet: %d error(s), %d warning(s) in %d file(s)\n", errors, warnings, files)
		}
	case "ndjson":
		w, err := report.NewWriter(stdout, ReportSchema, files)
		if err == nil {
			for _, d := range diags {
				if err = w.Diagnostic(d.File, d); err != nil {
					break
				}
			}
		}
		if err == nil {
			err = w.Close()
		}
		if err != nil {
			fmt.Fprintln(stderr, "provmark-vet:", err)
			return 2
		}
	}
	if errors > 0 || (*werror && warnings > 0) {
		return 1
	}
	return 0
}
