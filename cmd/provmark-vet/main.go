// Command provmark-vet runs the repo's own static checks (internal/
// lint) over Go package patterns — currently the credlog analyzer,
// which flags slog/log calls that reference raw credential-named
// identifiers (bearer tokens, Authorization headers, secrets).
//
// Usage:
//
//	provmark-vet ./...
//	provmark-vet ./internal/httpmw ./internal/jobs
//
// Findings print one per line in vet form; the exit status is 1 when
// anything is flagged, 2 on usage or I/O errors, 0 on a clean tree.
// CI runs it over ./... so a credential can never quietly reach a log
// line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"provmark/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("provmark-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "directory the package patterns resolve against")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.CheckPatterns(*root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "provmark-vet:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "provmark-vet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
