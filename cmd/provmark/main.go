// Command provmark benchmarks a single syscall under one provenance
// capture tool — the equivalent of the paper's fullAutomation.py.
//
// Usage:
//
//	provmark -tool spade -bench rename [-trials 2] [-result rb|rg|rh]
//	provmark -tool spade -scenario my-scenario.json
//	provmark -tool camflow -bench privesc -rules suspicious.dl -goal 'suspicious(P)'
//
// Tools: spade (DOT output), opus (Neo4j-sim output), camflow
// (PROV-JSON output). Benchmarks: any Table 1 syscall name, one of
// the extra programs rename-failed, privesc, scale1..scale8, or a
// declarative scenario file (-scenario) in the JSON vocabulary of
// internal/benchprog.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
	"provmark/internal/profile"
	"provmark/internal/provmark"

	// Backends register themselves with the capture registry; the CLI
	// resolves -tool by name instead of importing them concretely.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "provmark:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("provmark", flag.ContinueOnError)
	tool := fs.String("tool", "spade", "capture backend (see -backends) or profile name (spg, opu, cam)")
	configPath := fs.String("config", "", "profile configuration file (INI, Appendix A.4 format)")
	benchName := fs.String("bench", "", "benchmark name (see -list)")
	scenarioPath := fs.String("scenario", "", "run a declarative scenario from this JSON file instead of -bench")
	trials := fs.Int("trials", 0, "trials per variant (0 = tool default)")
	parallel := fs.Int("parallel", 1, "concurrent recording workers per variant")
	resultType := fs.String("result", "rb", "result type: rb (benchmark), rg (with generalized graphs), rh (html), rj (wire JSON), rd (styled Graphviz figure)")
	list := fs.Bool("list", false, "list available benchmarks and exit")
	backends := fs.Bool("backends", false, "list registered capture backends and exit")
	verbose := fs.Bool("v", false, "log per-stage progress and timings to stderr")
	fast := fs.Bool("fast", false, "use cheap storage costs (skip Neo4j warm-up simulation)")
	rulesPath := fs.String("rules", "", "Datalog rule file to evaluate against the benchmark graph (requires -goal)")
	goalText := fs.String("goal", "", "goal atom for -rules, e.g. 'suspicious(P)'")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *backends {
		for _, name := range capture.Backends() {
			fmt.Println(name)
		}
		return nil
	}
	if *list {
		for _, name := range benchprog.Names() {
			prog, _ := benchprog.ByName(name)
			fmt.Printf("%d %-12s %s\n", prog.Group, name, prog.Desc)
		}
		fmt.Println("extra: " + strings.Join(benchprog.ScenarioNames(benchprog.KindExtra), ", "))
		for _, p := range benchprog.FailureCases() {
			fmt.Printf("%d %-16s %s\n", p.Group, p.Name, p.Desc)
		}
		for _, p := range benchprog.AttackChains() {
			fmt.Printf("%d %-16s %s\n", p.Group, p.Name, p.Desc)
		}
		return nil
	}
	if (*benchName == "") == (*scenarioPath == "") {
		return fmt.Errorf("need exactly one of -bench (try -list) and -scenario")
	}
	// Parse the detection program before the pipeline runs, so a typo in
	// the rule file fails fast instead of after the recording stages.
	var rules []datalog.Rule
	var goal datalog.Atom
	if (*rulesPath == "") != (*goalText == "") {
		return fmt.Errorf("-rules and -goal go together")
	}
	if *rulesPath != "" {
		var err error
		if goal, err = datalog.ParseAtom(*goalText); err != nil {
			return err
		}
		if rules, err = loadRules(*rulesPath, goal); err != nil {
			return err
		}
		if *resultType != "rb" && *resultType != "rg" {
			return fmt.Errorf("-rules needs a textual report (-result rb or rg)")
		}
	}
	var prog benchprog.Program
	var err error
	if *scenarioPath != "" {
		prog, err = loadScenario(*scenarioPath)
	} else {
		prog, err = lookupProgram(*benchName)
	}
	if err != nil {
		return err
	}
	rec, err := resolveRecorder(*tool, *configPath, *fast)
	if err != nil {
		return err
	}
	opts := []provmark.Option{
		provmark.WithTrials(*trials),
		provmark.WithParallelism(*parallel),
	}
	if *verbose {
		opts = append(opts, provmark.WithStageObserver(func(ev provmark.StageEvent) {
			fmt.Fprintf(os.Stderr, "provmark: %s/%s: %s done in %v\n",
				ev.Tool, ev.Benchmark, ev.Stage, ev.Duration)
		}))
	}
	res, err := provmark.New(rec, opts...).RunContext(ctx, prog)
	if err != nil {
		return err
	}
	rt := provmark.BenchmarkOnly
	switch *resultType {
	case "rb":
	case "rg":
		rt = provmark.WithGeneralized
	case "rh":
		rt = provmark.HTMLPage
	case "rj":
		rt = provmark.JSON
	case "rd":
		fmt.Print(provmark.RenderFigureDOT(res))
		return nil
	default:
		return fmt.Errorf("unknown result type %q", *resultType)
	}
	fmt.Print(provmark.Render(res, rt))
	if *rulesPath != "" {
		out, err := evalRules(res, rules, goal)
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	return nil
}

// loadRules parses a rule file through the static analyzer: every
// diagnostic prints to stderr with its source position, analysis
// errors abort before the recording stages run, and the surviving
// program comes back goal-optimized (pruned to the goal's dependency
// closure, bodies reordered bound-first — binding-preserving).
func loadRules(path string, goal datalog.Atom) ([]datalog.Rule, error) {
	prog, diags, err := analyze.CheckFile(path, analyze.Options{Goal: &goal})
	if err != nil {
		return nil, err
	}
	diags = analyze.Exclude(diags, analyze.CodeUnreachableRule)
	fmt.Fprint(os.Stderr, analyze.Render(path, diags))
	if analyze.HasErrors(diags) {
		return nil, fmt.Errorf("%s: rules rejected by analysis (%s)", path, analyze.Summary(diags))
	}
	rules, _ := analyze.Optimize(prog.Rules, goal)
	return rules, nil
}

// evalRules matches a Datalog detection program against the benchmark
// result graph — the Dora use case from the command line — and renders
// the bindings through the query reporter shared with provmark-batch.
func evalRules(res *provmark.Result, rules []datalog.Rule, goal datalog.Atom) (string, error) {
	if res.Empty {
		return "", fmt.Errorf("cannot query an empty result (%s)", res.Reason)
	}
	db := datalog.NewDatabase()
	db.LoadGraph(res.Target)
	if err := db.Run(rules); err != nil {
		return "", err
	}
	return datalog.FormatBindings(goal, db.Query(goal)), nil
}

// resolveRecorder maps a -tool argument to a recorder: profile names
// (from -config or the built-in config.ini) take precedence, then the
// registered backend names of the capture registry.
func resolveRecorder(tool, configPath string, fast bool) (capture.Recorder, error) {
	profiles := profile.Default()
	if configPath != "" {
		f, err := os.Open(configPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		profiles, err = profile.Parse(f)
		if err != nil {
			return nil, err
		}
	}
	if _, ok := profiles.Profile(tool); ok {
		return profiles.Build(tool)
	}
	return capture.Open(tool, capture.Options{Fast: fast})
}

// loadScenario reads a declarative scenario file through the strict
// codec and compiles it.
func loadScenario(path string) (benchprog.Program, error) {
	s, err := benchprog.DecodeScenarioFile(path)
	if err != nil {
		return benchprog.Program{}, err
	}
	return s.Compile()
}

func lookupProgram(name string) (benchprog.Program, error) {
	// The registry resolves every named program: Table 2, the extras,
	// and the failure cases. Only the parameterized families (readsN,
	// scaleN at unregistered N) need generator fallbacks.
	if prog, ok := benchprog.ByName(name); ok {
		return prog, nil
	}
	switch {
	case strings.HasPrefix(name, "reads"):
		n, err := strconv.Atoi(name[len("reads"):])
		if err != nil || n < 1 {
			return benchprog.Program{}, fmt.Errorf("bad reads count in %q", name)
		}
		return benchprog.RepeatedReads(n), nil
	case strings.HasPrefix(name, "scale"):
		n, err := strconv.Atoi(name[len("scale"):])
		if err != nil || n < 1 {
			return benchprog.Program{}, fmt.Errorf("bad scale factor in %q", name)
		}
		return benchprog.ScaleProgram(n), nil
	}
	return benchprog.Program{}, fmt.Errorf("unknown benchmark %q (try -list)", name)
}
