package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestLookupProgram(t *testing.T) {
	cases := []struct {
		name    string
		ok      bool
		group   int
		hasName string
	}{
		{"rename", true, 1, "rename"},
		{"scale4", true, 1, "scale4"},
		{"reads8", true, 1, "reads8"},
		{"rename-failed", true, 1, "rename-failed"},
		{"open-eacces", true, 1, "open-eacces"},
		{"privesc", true, 3, "privesc"},
		{"scaleX", false, 0, ""},
		{"reads0", false, 0, ""},
		{"nonsense", false, 0, ""},
	}
	for _, tc := range cases {
		prog, err := lookupProgram(tc.name)
		if tc.ok && err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: accepted", tc.name)
			}
			continue
		}
		if prog.Name != tc.hasName {
			t.Errorf("%s resolved to %s", tc.name, prog.Name)
		}
	}
}

func TestResolveRecorder(t *testing.T) {
	for tool, wantName := range map[string]string{
		"spade": "spade", "opus": "opus", "camflow": "camflow",
		"spn": "spade", "spg": "spade", "spc": "spade", "opu": "opus", "cam": "camflow",
	} {
		rec, err := resolveRecorder(tool, "", true)
		if err != nil {
			t.Errorf("%s: %v", tool, err)
			continue
		}
		if rec.Name() != wantName {
			t.Errorf("%s resolved to %s", tool, rec.Name())
		}
	}
	if _, err := resolveRecorder("nope", "", true); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := resolveRecorder("spade", "/no/such/config.ini", true); err == nil {
		t.Error("missing config accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run(context.Background(), []string{"-tool", "spade", "-bench", "creat", "-fast"}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-list"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"-tool", "spade"}, // no bench
		{"-tool", "spade", "-bench", "creat", "-result", "xx"}, // bad result type
		{"-tool", "wat", "-bench", "creat"},                    // bad tool
	} {
		if err := run(context.Background(), bad); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
}

func TestRunScenarioFile(t *testing.T) {
	// The checked-in example scenario runs through -scenario.
	if err := run(context.Background(), []string{"-tool", "spade", "-scenario", "../../examples/customscenario/scenario.json", "-fast"}); err != nil {
		t.Fatal(err)
	}
	// A scenario the strict codec refuses is rejected up front.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"name":"x","steps":[{"op":"mount"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-tool", "spade", "-scenario", bad}); err == nil {
		t.Error("invalid scenario accepted")
	}
	// -bench and -scenario are mutually exclusive; one is required.
	for _, args := range [][]string{
		{"-tool", "spade", "-bench", "creat", "-scenario", bad},
		{"-tool", "spade"},
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}

func TestRunHTMLResult(t *testing.T) {
	// Smoke check the rh flavour goes through (output on stdout).
	if err := run(context.Background(), []string{"-tool", "camflow", "-bench", "open", "-result", "rh", "-fast"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithRules(t *testing.T) {
	// The checked-in Dora rule file matches the privesc benchmark
	// graph under camflow end to end.
	if err := run(context.Background(), []string{
		"-tool", "camflow", "-bench", "privesc",
		"-rules", "../../examples/detection/suspicious.dl", "-goal", "suspicious(P)",
	}); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.dl")
	if err := os.WriteFile(bad, []byte("this is not datalog\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-tool", "camflow", "-bench", "privesc", "-rules", "../../examples/detection/suspicious.dl"},                                            // -goal missing
		{"-tool", "camflow", "-bench", "privesc", "-goal", "suspicious(P)"},                                                                      // -rules missing
		{"-tool", "camflow", "-bench", "privesc", "-rules", bad, "-goal", "suspicious(P)"},                                                       // unparsable rules
		{"-tool", "camflow", "-bench", "privesc", "-rules", "../../examples/detection/suspicious.dl", "-goal", "not p(X)"},                       // negated goal
		{"-tool", "camflow", "-bench", "privesc", "-rules", "../../examples/detection/suspicious.dl", "-goal", "suspicious(P)", "-result", "rj"}, // JSON report cannot carry text
	} {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}
