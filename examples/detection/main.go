// Detection reproduces the paper's "Dora" use case (Section 3.1):
// using ProvMark to obtain the exact provenance-graph pattern a target
// activity produces, then using that pattern to detect the activity in
// recorded provenance. The target is a privilege-escalation step
// (setuid 0) inside a larger program.
//
// The workflow is:
//
//  1. benchmark the privilege-escalation program under CamFlow, with
//     the escalation marked as the target activity;
//
//  2. inspect the benchmark graph to learn the structure CamFlow
//     records for the escalation;
//
//  3. express that structure as a Datalog detection rule;
//
//  4. run the rule over a full (un-differenced) provenance recording
//     and flag the escalation.
//
//     go run ./examples/detection
package main

import (
	"context"
	"fmt"
	"os"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/datalog"
	"provmark/internal/provmark"

	// Register the CamFlow backend with the capture registry.
	_ "provmark/internal/capture/camflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "detection:", err)
		os.Exit(1)
	}
}

func run() error {
	ctx := context.Background()
	rec, err := capture.OpenContext("camflow", capture.Options{})
	if err != nil {
		return err
	}
	prog := benchprog.PrivilegeEscalation()

	// Step 1-2: benchmark the escalation to learn its graph pattern.
	res, err := provmark.NewContext(rec).RunContext(ctx, prog)
	if err != nil {
		return err
	}
	if res.Empty {
		return fmt.Errorf("escalation not recorded: %s", res.Reason)
	}
	fmt.Printf("benchmark graph for the escalation step (%d nodes, %d edges):\n",
		res.Target.NumNodes(), res.Target.NumEdges())
	fmt.Println(res.Target)

	// Step 3: the benchmark shows CamFlow records a credential change
	// as a fresh task activity version carrying a cf:setid property,
	// informed by the previous version. Express that as a rule. The
	// rule also checks the new uid is 0 — the escalation proper.
	rules, err := datalog.ParseRules(`
% escalation(New): a task version whose credential change set uid 0.
escalation(New) :- node(New, "activity"), prop(New, "cf:setid", "uid=0"), prop(New, "cf:uid", "0").
% chain(New, Old): the version edge connecting the escalation to its past.
chain(New, Old) :- escalation(New), edge(_, New, Old, "wasInformedBy").
`)
	if err != nil {
		return err
	}

	// Step 4: record the whole program (no differencing) and scan it.
	native, err := rec.Record(ctx, prog, benchprog.Foreground, 0)
	if err != nil {
		return err
	}
	full, err := rec.Transform(native)
	if err != nil {
		return err
	}
	db := datalog.NewDatabase()
	db.LoadGraph(full)
	if err := db.Run(rules); err != nil {
		return err
	}
	hits := db.Query(datalog.Atom{Pred: "escalation", Terms: []datalog.Term{datalog.V("N")}})
	fmt.Printf("full recording has %d nodes; detection rule matched %d escalation(s)\n",
		full.NumNodes(), len(hits))
	for _, h := range hits {
		fmt.Printf("  escalated task version: %s\n", h["N"])
		for _, c := range db.Query(datalog.Atom{
			Pred:  "chain",
			Terms: []datalog.Term{datalog.C(h["N"]), datalog.V("Old")},
		}) {
			fmt.Printf("  previous task version:  %s\n", c["Old"])
		}
	}
	if len(hits) == 0 {
		return fmt.Errorf("detection rule failed to match")
	}

	// Control: a benign run (background variant, no escalation) must
	// not trigger the rule.
	benignNative, err := rec.Record(ctx, prog, benchprog.Background, 0)
	if err != nil {
		return err
	}
	benign, err := rec.Transform(benignNative)
	if err != nil {
		return err
	}
	db2 := datalog.NewDatabase()
	db2.LoadGraph(benign)
	if err := db2.Run(rules); err != nil {
		return err
	}
	benignHits := db2.Query(datalog.Atom{Pred: "escalation", Terms: []datalog.Term{datalog.V("N")}})
	fmt.Printf("benign run: detection rule matched %d escalation(s)\n", len(benignHits))
	if len(benignHits) != 0 {
		return fmt.Errorf("false positive on benign run")
	}
	return nil
}
