// Regression reproduces the paper's "Charlie" use case (Section 3.1):
// using ProvMark for regression testing of a provenance recorder. The
// first batch run stores every benchmark graph (as Datalog) as the
// baseline; later runs are compared against the store with the same
// graph-isomorphism machinery the pipeline uses. The example then
// simulates a tool change (SPADE with versioning enabled) and shows the
// detected regressions.
//
//	go run ./examples/regression
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/provmark"

	// Register the SPADE backend with the capture registry.
	_ "provmark/internal/capture/spade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "regression:", err)
		os.Exit(1)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "provmark-regression-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	store, err := provmark.NewStore(dir)
	if err != nil {
		return err
	}
	benchmarks := []string{"creat", "open", "rename", "write", "fork"}

	fmt.Println("== baseline run (SPADE, default configuration) ==")
	if err := batch(store, capture.Options{}, benchmarks, true); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== re-run with the same configuration (expect no regressions) ==")
	if err := batch(store, capture.Options{}, benchmarks, false); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("== re-run after a tool change: versioning enabled ==")
	versioned := capture.Options{Params: map[string]string{"versioning": "true"}}
	if err := batch(store, versioned, benchmarks, false); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("write now versions its artifact, so its benchmark graph changed")
	fmt.Println("shape — expected changes would replace the baseline; unexpected")
	fmt.Println("ones are investigated as potential bugs.")
	return nil
}

func batch(store *provmark.Store, opts capture.Options, benchmarks []string, saveBaseline bool) error {
	rec, err := capture.Open("spade", opts)
	if err != nil {
		return err
	}
	runner := provmark.New(rec)
	for _, name := range benchmarks {
		prog, ok := benchprog.ByName(name)
		if !ok {
			return fmt.Errorf("unknown benchmark %s", name)
		}
		res, err := runner.RunContext(context.Background(), prog)
		if err != nil {
			return err
		}
		if res.Empty {
			fmt.Printf("%-8s empty (%s)\n", name, res.Reason)
			continue
		}
		if saveBaseline {
			if err := store.Save("spade", name, res.Target); err != nil {
				return err
			}
			fmt.Printf("%-8s baseline stored (%d nodes, %d edges)\n",
				name, res.Target.NumNodes(), res.Target.NumEdges())
			continue
		}
		diff, err := store.Check("spade", name, res.Target)
		switch {
		case errors.Is(err, provmark.ErrNoBaseline):
			fmt.Printf("%-8s no baseline\n", name)
		case err != nil:
			return err
		case diff.Changed:
			fmt.Printf("%-8s REGRESSION: %s\n", name, diff.Detail)
		default:
			fmt.Printf("%-8s matches baseline\n", name)
		}
	}
	return nil
}
