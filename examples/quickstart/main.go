// Quickstart: benchmark a single syscall (creat) under SPADE and print
// the resulting target graph — the minimal ProvMark workflow.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"os"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/datalog"
	"provmark/internal/provmark"

	// Register the SPADE backend with the capture registry.
	_ "provmark/internal/capture/spade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Open a capture tool by name through the registry (SPADE with
	//    its baseline configuration).
	recorder, err := capture.Open("spade", capture.Options{})
	if err != nil {
		return err
	}

	// 2. Pick a benchmark program: each one is a tiny program whose
	//    target syscall is wrapped in the equivalent of #ifdef TARGET.
	prog, ok := benchprog.ByName("creat")
	if !ok {
		return fmt.Errorf("benchmark creat not registered")
	}

	// 3. Run the four-stage pipeline: record fg/bg trials, transform to
	//    the common format, generalize away volatile data, and compare.
	//    Options tune the run; the context cancels it.
	runner := provmark.New(recorder, provmark.WithTrials(2))
	res, err := runner.RunContext(context.Background(), prog)
	if err != nil {
		return err
	}

	// 4. Inspect the result: the target graph is exactly the structure
	//    SPADE records for a creat call.
	if res.Empty {
		fmt.Printf("creat was not recorded: %s\n", res.Reason)
		return nil
	}
	fmt.Printf("SPADE records creat as %d nodes and %d edges:\n\n",
		res.Target.NumNodes(), res.Target.NumEdges())
	fmt.Println(res.Target)
	fmt.Println("Datalog form (the paper's common format):")
	fmt.Print(datalog.Print(res.Target, "creat"))
	return nil
}
