// Configvalidation reproduces the paper's "Bob" use case (Section 3.1):
// using ProvMark to validate SPADE configurations, which surfaced two
// real bugs.
//
//  1. Disabling the simplify flag (to track setresuid/setresgid
//     explicitly) makes a background edge property pick up a random
//     value, visible as a spurious disconnected subgraph in the
//     benchmark result.
//  2. Enabling the IORuns filter (to coalesce runs of reads/writes) has
//     no effect because of a property-name mismatch between the filter
//     and SPADE's generated graphs.
//
// Both bugs were reported and fixed upstream; the simulator models the
// benchmarked (buggy) version, with flags to switch the fixes on.
//
//	go run ./examples/configvalidation
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/provmark"

	// Register the SPADE backend with the capture registry.
	_ "provmark/internal/capture/spade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "configvalidation:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := simplifyBug(); err != nil {
		return err
	}
	return iorunsBug()
}

// simplifyBug benchmarks setresuid with simplify disabled, before and
// after the fix, counting disconnected artifact components.
func simplifyBug() error {
	fmt.Println("== bug 1: simplify off leaks a random-valued background edge ==")
	prog, _ := benchprog.ByName("setresuid")
	for _, fixed := range []bool{false, true} {
		rec, err := capture.Open("spade", capture.Options{Params: map[string]string{
			"simplify":                 "false",
			"bug_random_edge_property": strconv.FormatBool(!fixed),
		}})
		if err != nil {
			return err
		}
		res, err := provmark.New(rec).RunContext(context.Background(), prog)
		if err != nil {
			return err
		}
		label := "buggy version"
		if fixed {
			label = "fixed version"
		}
		if res.Empty {
			fmt.Printf("%s: empty result (%s)\n", label, res.Reason)
			continue
		}
		spurious := 0
		for _, n := range res.Target.Nodes() {
			if n.Label == "Artifact" && n.Props["subtype"] == "unknown" {
				spurious++
			}
		}
		fmt.Printf("%s: benchmark graph has %d nodes / %d edges, %d spurious artifact nodes\n",
			label, res.Target.NumNodes(), res.Target.NumEdges(), spurious)
	}
	fmt.Println()
	return nil
}

// iorunsBug benchmarks eight consecutive reads with the IORuns filter
// enabled, counting read edges with and without the fix.
func iorunsBug() error {
	fmt.Println("== bug 2: IORuns filter is a no-op due to a property-name mismatch ==")
	prog := benchprog.RepeatedReads(8)
	for _, fixed := range []bool{false, true} {
		rec, err := capture.Open("spade", capture.Options{Params: map[string]string{
			"ioruns":                   "true",
			"bug_ioruns_property_name": strconv.FormatBool(!fixed),
		}})
		if err != nil {
			return err
		}
		res, err := provmark.New(rec).RunContext(context.Background(), prog)
		if err != nil {
			return err
		}
		label := "buggy filter"
		if fixed {
			label = "fixed filter"
		}
		if res.Empty {
			fmt.Printf("%s: empty result (%s)\n", label, res.Reason)
			continue
		}
		reads := 0
		for _, e := range res.Target.Edges() {
			if e.Props["operation"] == "read" {
				reads++
			}
		}
		fmt.Printf("%s: %d read edges in the benchmark result (8 reads performed)\n", label, reads)
	}
	fmt.Println()
	fmt.Println("with the fix, the eight reads coalesce into a single counted edge.")
	return nil
}
