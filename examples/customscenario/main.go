// Custom scenario: define a benchmark program purely as data — no Go
// closures, no recompilation — and run it through the four-stage
// pipeline. The same JSON file runs under every CLI and over the wire:
//
//	go run ./examples/customscenario
//	go run ./cmd/provmark -tool spade -scenario examples/customscenario/scenario.json
//	curl -s -X POST localhost:8177/v1/jobs \
//	  -d "{\"tools\":[\"spade\"],\"scenarios\":[$(cat examples/customscenario/scenario.json)]}"
package main

import (
	"context"
	"fmt"
	"os"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/provmark"

	// Register the SPADE backend with the capture registry.
	_ "provmark/internal/capture/spade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "customscenario:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Load a scenario from JSON through the strict codec — or build
	//    it as a Go literal; both are the same data.
	data, err := os.ReadFile("examples/customscenario/scenario.json")
	if err != nil {
		return err
	}
	scenario, err := benchprog.DecodeScenario(data)
	if err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d background + target instructions\n", scenario.Name, len(scenario.Steps))

	// 2. Scenarios compose: generators derive new programs from data.
	//    Scale the rotation 3× (per-copy slot renaming is automatic;
	//    "{i}" in paths would separate per-copy files).
	scaled, err := benchprog.Repeat(*scenario, 3)
	if err != nil {
		return err
	}
	canonical, err := benchprog.EncodeScenario(&scaled)
	if err != nil {
		return err
	}
	fmt.Printf("generated %q (%d instructions, canonical encoding %d bytes)\n\n",
		scaled.Name, len(scaled.Steps), len(canonical))

	// 3. Run the original through the pipeline under SPADE. RunScenario
	//    validates, compiles, and executes like any built-in benchmark.
	recorder, err := capture.Open("spade", capture.Options{Fast: true})
	if err != nil {
		return err
	}
	runner := provmark.New(recorder, provmark.WithTrials(2))
	res, err := runner.RunScenario(context.Background(), *scenario)
	if err != nil {
		return err
	}
	if res.Empty {
		fmt.Printf("%s was not recorded: %s\n", scenario.Name, res.Reason)
		return nil
	}
	fmt.Printf("SPADE records %s as %d nodes and %d edges:\n\n",
		scenario.Name, res.Target.NumNodes(), res.Target.NumEdges())
	fmt.Println(res.Target)
	return nil
}
