// Failedcalls reproduces the paper's "Alice" use case (Section 3.1):
// which recorders track syscalls that fail due to access-control
// violations? The benchmark is an unprivileged rename of a file onto
// /etc/passwd, which fails with EACCES.
//
// Expected findings, matching the paper:
//
//   - SPADE's default audit rules report only successful calls, so it
//     records nothing;
//
//   - OPUS intercepts the attempted C-library call and records the same
//     structure as a successful rename, with retval -1;
//
//   - CamFlow could observe the denied permission check in principle
//     but does not record it in this configuration.
//
//     go run ./examples/failedcalls
package main

import (
	"context"
	"fmt"
	"os"

	"provmark/internal/benchprog"
	"provmark/internal/provmark"

	// Register the backends the matrix resolves by name.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failedcalls:", err)
		os.Exit(1)
	}
}

func run() error {
	prog := benchprog.FailedRename()
	fmt.Println("benchmark: unprivileged rename onto /etc/passwd (fails with EACCES)")
	fmt.Println()
	// One matrix run: the three tool columns against the one failing
	// benchmark, collected in grid order.
	m := provmark.Matrix{
		Tools:      []string{"spade", "opus", "camflow"},
		Benchmarks: []benchprog.Program{prog},
		Workers:    3,
	}
	cells, err := m.Run(context.Background())
	if err != nil {
		return err
	}
	for _, cell := range cells {
		if cell.Err != nil {
			return fmt.Errorf("%s: %w", cell.Tool, cell.Err)
		}
		res := cell.Result
		if res.Empty {
			fmt.Printf("%-8s does NOT record the failed call (%s)\n", cell.Tool, res.Reason)
			continue
		}
		fmt.Printf("%-8s records the failed call: %d nodes, %d edges\n",
			cell.Tool, res.Target.NumNodes(), res.Target.NumEdges())
		// OPUS keeps the return value, so the failure is queryable.
		for _, n := range res.Target.Nodes() {
			if rv, ok := n.Props["retval"]; ok {
				fmt.Printf("         event node %s has retval=%s\n", n.ID, rv)
			}
		}
	}
	fmt.Println()
	fmt.Println("conclusion: for auditing failed access attempts, OPUS provides")
	fmt.Println("the most useful records under baseline configurations.")
	return nil
}
