// Failedcalls reproduces the paper's "Alice" use case (Section 3.1):
// which recorders track syscalls that fail due to access-control
// violations? The benchmark is an unprivileged rename of a file onto
// /etc/passwd, which fails with EACCES.
//
// Expected findings, matching the paper:
//
//   - SPADE's default audit rules report only successful calls, so it
//     records nothing;
//
//   - OPUS intercepts the attempted C-library call and records the same
//     structure as a successful rename, with retval -1;
//
//   - CamFlow could observe the denied permission check in principle
//     but does not record it in this configuration.
//
//     go run ./examples/failedcalls
package main

import (
	"fmt"
	"os"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/capture/camflow"
	"provmark/internal/capture/opus"
	"provmark/internal/capture/spade"
	"provmark/internal/provmark"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failedcalls:", err)
		os.Exit(1)
	}
}

func run() error {
	prog := benchprog.FailedRename()
	recorders := []capture.Recorder{
		spade.New(spade.DefaultConfig()),
		opus.New(opus.DefaultConfig()),
		camflow.New(camflow.DefaultConfig()),
	}
	fmt.Println("benchmark: unprivileged rename onto /etc/passwd (fails with EACCES)")
	fmt.Println()
	for _, rec := range recorders {
		res, err := provmark.NewRunner(rec, provmark.Config{}).Run(prog)
		if err != nil {
			return fmt.Errorf("%s: %w", rec.Name(), err)
		}
		if res.Empty {
			fmt.Printf("%-8s does NOT record the failed call (%s)\n", rec.Name(), res.Reason)
			continue
		}
		fmt.Printf("%-8s records the failed call: %d nodes, %d edges\n",
			rec.Name(), res.Target.NumNodes(), res.Target.NumEdges())
		// OPUS keeps the return value, so the failure is queryable.
		for _, n := range res.Target.Nodes() {
			if rv, ok := n.Props["retval"]; ok {
				fmt.Printf("         event node %s has retval=%s\n", n.ID, rv)
			}
		}
	}
	fmt.Println()
	fmt.Println("conclusion: for auditing failed access attempts, OPUS provides")
	fmt.Println("the most useful records under baseline configurations.")
	return nil
}
