module provmark

go 1.22
