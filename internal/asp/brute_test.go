package asp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteMin enumerates every complete selection (one atom per group) and
// returns the minimum cost among those satisfying all conflicts and
// implications, or -1 when unsatisfiable. Exponential — used only on
// tiny random instances as an oracle for the solver.
func bruteMin(p *Problem) int {
	n := p.NumGroups()
	selected := make([]AtomID, n)
	best := -1
	var rec func(g int)
	rec = func(g int) {
		if g == n {
			cost := 0
			chosen := map[AtomID]bool{}
			for _, a := range selected {
				chosen[a] = true
				cost += p.Atom(a).Weight
			}
			for _, a := range selected {
				for _, c := range p.conflicts[a] {
					if chosen[c] {
						return
					}
				}
				for _, imp := range p.implies[a] {
					if !chosen[imp] {
						return
					}
				}
			}
			if best < 0 || cost < best {
				best = cost
			}
			return
		}
		for _, a := range p.groups[g] {
			selected[g] = a
			rec(g + 1)
		}
	}
	rec(0)
	return best
}

// randomProblem builds a small random instance with groups, shared-
// target conflicts and a few implications.
func randomProblem(rng *rand.Rand) *Problem {
	p := NewProblem()
	nGroups := 2 + rng.Intn(4)
	nTargets := 2 + rng.Intn(4)
	atomsByTarget := make([][]AtomID, nTargets)
	var all []AtomID
	for g := 0; g < nGroups; g++ {
		gi := p.AddGroup("g")
		nCands := 1 + rng.Intn(nTargets)
		perm := rng.Perm(nTargets)
		for c := 0; c < nCands; c++ {
			y := perm[c]
			a := p.AddAtom(gi, "x", "y", rng.Intn(4))
			atomsByTarget[y] = append(atomsByTarget[y], a)
			all = append(all, a)
		}
	}
	// Injectivity over shared targets.
	for _, atoms := range atomsByTarget {
		for i := 0; i < len(atoms); i++ {
			for j := i + 1; j < len(atoms); j++ {
				if p.Atom(atoms[i]).Group != p.Atom(atoms[j]).Group {
					p.AddConflict(atoms[i], atoms[j])
				}
			}
		}
	}
	// A few random implications between atoms of different groups.
	for i := 0; i < rng.Intn(3); i++ {
		a := all[rng.Intn(len(all))]
		b := all[rng.Intn(len(all))]
		if p.Atom(a).Group != p.Atom(b).Group {
			p.AddImplication(a, b)
		}
	}
	return p
}

// TestSolverMatchesBruteForce: on random tiny instances, SolveMin must
// agree with exhaustive enumeration on both satisfiability and optimum.
func TestSolverMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		want := bruteMin(p)
		sol, err := p.SolveMin()
		if want < 0 {
			return err != nil
		}
		if err != nil {
			t.Logf("seed %d: solver unsat but brute force found cost %d", seed, want)
			return false
		}
		if sol.Cost != want {
			t.Logf("seed %d: solver cost %d, brute force %d", seed, sol.Cost, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSolveAgreesWithSolveMinOnSatisfiability: the non-optimizing entry
// point must find a model exactly when one exists.
func TestSolveAgreesWithSolveMinOnSatisfiability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		_, err1 := p.Solve()
		_, err2 := p.SolveMin()
		return (err1 == nil) == (err2 == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
