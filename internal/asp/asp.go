// Package asp implements the answer-set-programming fragment ProvMark
// needs to solve its two graph-matching listings (Listing 3, graph
// similarity; Listing 4, approximate subgraph isomorphism with a
// #minimize objective). The paper uses the clingo solver; this package
// is a self-contained replacement covering the same program class:
//
//   - cardinality-1 choice rules  {h(X,Y) : ...} = 1 :- item(X)
//     become selection groups: exactly one atom per group is true;
//   - integrity constraints between two atoms (the injectivity rules
//     :- X<>Y, h(X,Z), h(Y,Z)) become conflict pairs;
//   - constraints of the form :- h(E1,E2), not h(X,Y) (edge endpoint
//     preservation) become implications h(E1,E2) -> h(X,Y);
//   - #minimize { PC,X,K : cost(X,K,PC) } becomes per-atom integer
//     weights whose selected sum is minimized.
//
// Label-preservation constraints are handled at grounding time: atoms
// whose labels disagree are simply never generated, exactly as a
// grounder would delete rules with unsatisfiable bodies.
//
// The solver is a depth-first search with unit propagation over groups
// (minimum-remaining-values ordering) and branch-and-bound pruning on
// the weight objective. It is deterministic: given the same problem it
// explores candidates in construction order.
package asp

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// AtomID indexes an atom within a Problem.
type AtomID int

// Atom is one ground instance h(X, Y) of the matching relation, carrying
// an optional weight contributed to the objective when selected.
type Atom struct {
	X, Y   string // element of G1, element of G2 (for rendering)
	Group  int    // selection group this atom belongs to
	Weight int    // objective contribution when selected
}

// Problem is a ground matching program.
type Problem struct {
	atoms     []Atom
	groups    [][]AtomID // exactly one atom per group must hold
	conflicts [][]AtomID // conflicts[a] = atoms that cannot hold with a
	implies   [][]AtomID // implies[a] = atoms forced when a holds
	groupName []string
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{}
}

// AddGroup creates a selection group (one X that must be matched) and
// returns its index. name is used only for rendering.
func (p *Problem) AddGroup(name string) int {
	p.groups = append(p.groups, nil)
	p.groupName = append(p.groupName, name)
	return len(p.groups) - 1
}

// AddAtom adds a candidate atom to a group and returns its id.
func (p *Problem) AddAtom(group int, x, y string, weight int) AtomID {
	id := AtomID(len(p.atoms))
	p.atoms = append(p.atoms, Atom{X: x, Y: y, Group: group, Weight: weight})
	p.groups[group] = append(p.groups[group], id)
	p.conflicts = append(p.conflicts, nil)
	p.implies = append(p.implies, nil)
	return id
}

// AddConflict forbids a and b from holding together.
func (p *Problem) AddConflict(a, b AtomID) {
	p.conflicts[a] = append(p.conflicts[a], b)
	p.conflicts[b] = append(p.conflicts[b], a)
}

// AddImplication records that selecting a forces selecting b.
func (p *Problem) AddImplication(a, b AtomID) {
	p.implies[a] = append(p.implies[a], b)
}

// Atom returns the atom with the given id.
func (p *Problem) Atom(id AtomID) Atom { return p.atoms[id] }

// NumAtoms reports how many ground atoms the problem has.
func (p *Problem) NumAtoms() int { return len(p.atoms) }

// NumGroups reports how many selection groups the problem has.
func (p *Problem) NumGroups() int { return len(p.groups) }

// ErrUnsat is returned when no model exists.
var ErrUnsat = errors.New("asp: unsatisfiable")

// solveInvocations counts Solve/SolveMin searches process-wide; see
// SolveInvocations.
var solveInvocations atomic.Uint64

// SolveInvocations reports the process-wide number of Solve/SolveMin
// searches started since process start. Benchmarks and instrumented
// tests diff this counter to measure how many solver calls a
// classification strategy avoids.
func SolveInvocations() uint64 { return solveInvocations.Load() }

// Solution maps each group index to the selected atom.
type Solution struct {
	Selected []AtomID // indexed by group
	Cost     int
}

// Solve finds any model (ignoring weights). It is equivalent to
// SolveMin with an immediate-accept bound, but skips bound bookkeeping.
func (p *Problem) Solve() (*Solution, error) {
	return p.solve(false)
}

// SolveMin finds a model of minimum total weight.
func (p *Problem) SolveMin() (*Solution, error) {
	return p.solve(true)
}

// SolveAll enumerates models, invoking fn for each (with weights
// reported but not optimized). Enumeration stops when fn returns false
// or after limit models (limit <= 0 means unbounded). It returns the
// number of models visited.
func (p *Problem) SolveAll(limit int, fn func(*Solution) bool) int {
	s := &state{
		p:        p,
		alive:    make([]bool, len(p.atoms)),
		chosen:   make([]AtomID, len(p.groups)),
		bestCost: int(^uint(0) >> 1),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	for i := range s.chosen {
		s.chosen[i] = -1
	}
	for _, g := range p.groups {
		if len(g) == 0 {
			return 0
		}
	}
	count := 0
	stopped := false
	var enumerate func()
	enumerate = func() {
		if stopped {
			return
		}
		gi := s.pickGroup()
		if gi < 0 {
			count++
			sol := &Solution{Selected: append([]AtomID(nil), s.chosen...), Cost: s.cost}
			if !fn(sol) || (limit > 0 && count >= limit) {
				stopped = true
			}
			return
		}
		var cands []AtomID
		for _, a := range s.p.groups[gi] {
			if s.alive[a] {
				cands = append(cands, a)
			}
		}
		for _, a := range cands {
			if stopped {
				return
			}
			if !s.alive[a] {
				continue
			}
			if s.choose(a) {
				enumerate()
			}
			s.undo()
		}
	}
	enumerate()
	return count
}

// state carries the mutable search data. Candidate sets are represented
// as per-group slices of still-alive atom ids; removals are trailed for
// backtracking.
type state struct {
	p         *Problem
	alive     []bool   // per atom
	chosen    []AtomID // per group, -1 if open
	nChosen   int
	cost      int
	trail     []AtomID // atoms killed, for undo
	trailMark []int
	best      *Solution
	bestCost  int
	optimize  bool
	minWeight []int // per group: min weight among alive atoms (recomputed lazily)
}

func (p *Problem) solve(optimize bool) (*Solution, error) {
	solveInvocations.Add(1)
	s := &state{
		p:        p,
		alive:    make([]bool, len(p.atoms)),
		chosen:   make([]AtomID, len(p.groups)),
		optimize: optimize,
		bestCost: int(^uint(0) >> 1),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	for i := range s.chosen {
		s.chosen[i] = -1
	}
	for gi, g := range p.groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("%w: group %s has no candidates", ErrUnsat, p.groupName[gi])
		}
	}
	s.search()
	if s.best == nil {
		return nil, ErrUnsat
	}
	return s.best, nil
}

// lowerBound sums, over open groups, the minimum weight among alive
// candidates. This is an admissible bound for branch-and-bound.
func (s *state) lowerBound() int {
	lb := s.cost
	for gi, g := range s.p.groups {
		if s.chosen[gi] >= 0 {
			continue
		}
		minW := int(^uint(0) >> 1)
		for _, a := range g {
			if s.alive[a] && s.p.atoms[a].Weight < minW {
				minW = s.p.atoms[a].Weight
			}
		}
		lb += minW
	}
	return lb
}

// pickGroup returns the open group with the fewest alive candidates
// (minimum remaining values), or -1 if all groups are decided.
func (s *state) pickGroup() int {
	best, bestN := -1, int(^uint(0)>>1)
	for gi, g := range s.p.groups {
		if s.chosen[gi] >= 0 {
			continue
		}
		n := 0
		for _, a := range g {
			if s.alive[a] {
				n++
			}
		}
		if n < bestN {
			best, bestN = gi, n
			if n <= 1 {
				break
			}
		}
	}
	return best
}

func (s *state) search() {
	if s.optimize && s.best != nil && s.lowerBound() >= s.bestCost {
		return
	}
	gi := s.pickGroup()
	if gi < 0 {
		sol := &Solution{Selected: append([]AtomID(nil), s.chosen...), Cost: s.cost}
		s.best = sol
		s.bestCost = s.cost
		return
	}
	// Copy the alive candidates for this group: selections mutate alive.
	var cands []AtomID
	for _, a := range s.p.groups[gi] {
		if s.alive[a] {
			cands = append(cands, a)
		}
	}
	if s.optimize {
		sort.SliceStable(cands, func(i, j int) bool {
			return s.p.atoms[cands[i]].Weight < s.p.atoms[cands[j]].Weight
		})
	}
	for _, a := range cands {
		if !s.alive[a] {
			continue
		}
		if s.choose(a) {
			s.search()
			if !s.optimize && s.best != nil {
				s.undo()
				return
			}
		}
		s.undo()
	}
}

// choose selects atom a and propagates: kill conflicting atoms, kill the
// group's other candidates, and force implications (recursively). It
// returns false if propagation wipes out some group or contradicts an
// earlier choice; the caller must still undo.
func (s *state) choose(a AtomID) bool {
	s.trailMark = append(s.trailMark, len(s.trail))
	return s.propagate(a)
}

func (s *state) propagate(a AtomID) bool {
	at := s.p.atoms[a]
	if s.chosen[at.Group] == a {
		return true // already selected via an earlier implication
	}
	if s.chosen[at.Group] >= 0 || !s.alive[a] {
		return false
	}
	s.chosen[at.Group] = a
	s.nChosen++
	s.cost += at.Weight
	s.trail = append(s.trail, -a-1000000) // selection marker, see undo
	for _, other := range s.p.groups[at.Group] {
		if other != a && s.alive[other] {
			s.kill(other)
		}
	}
	for _, c := range s.p.conflicts[a] {
		if s.alive[c] {
			ca := s.p.atoms[c]
			if s.chosen[ca.Group] == c {
				return false // conflict with an earlier selection
			}
			s.kill(c)
		} else if s.chosen[s.p.atoms[c].Group] == c {
			return false
		}
	}
	for _, imp := range s.p.implies[a] {
		ia := s.p.atoms[imp]
		if s.chosen[ia.Group] == imp {
			continue
		}
		if !s.alive[imp] || s.chosen[ia.Group] >= 0 {
			return false
		}
		if !s.propagate(imp) {
			return false
		}
	}
	// Fail fast if any open group lost all candidates.
	for gi, g := range s.p.groups {
		if s.chosen[gi] >= 0 {
			continue
		}
		any := false
		for _, x := range g {
			if s.alive[x] {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	return true
}

func (s *state) kill(a AtomID) {
	s.alive[a] = false
	s.trail = append(s.trail, a)
}

func (s *state) undo() {
	mark := s.trailMark[len(s.trailMark)-1]
	s.trailMark = s.trailMark[:len(s.trailMark)-1]
	for len(s.trail) > mark {
		x := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		if x <= -1000000 {
			a := AtomID(-(x + 1000000))
			at := s.p.atoms[a]
			s.chosen[at.Group] = -1
			s.nChosen--
			s.cost -= at.Weight
		} else {
			s.alive[x] = true
		}
	}
}

// Render prints the ground program in a clingo-like concrete syntax,
// useful for debugging and for comparing against the paper's listings.
func (p *Problem) Render() string {
	var b strings.Builder
	for gi, g := range p.groups {
		names := make([]string, 0, len(g))
		for _, a := range g {
			names = append(names, fmt.Sprintf("h(%s,%s)", p.atoms[a].X, p.atoms[a].Y))
		}
		fmt.Fprintf(&b, "{ %s } = 1. %% group %s\n", strings.Join(names, "; "), p.groupName[gi])
	}
	seen := map[[2]AtomID]bool{}
	for a, cs := range p.conflicts {
		for _, c := range cs {
			k := [2]AtomID{AtomID(a), c}
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			if seen[k] {
				continue
			}
			seen[k] = true
			fmt.Fprintf(&b, ":- h(%s,%s), h(%s,%s).\n",
				p.atoms[k[0]].X, p.atoms[k[0]].Y, p.atoms[k[1]].X, p.atoms[k[1]].Y)
		}
	}
	for a, imps := range p.implies {
		for _, i := range imps {
			fmt.Fprintf(&b, ":- h(%s,%s), not h(%s,%s).\n",
				p.atoms[a].X, p.atoms[a].Y, p.atoms[i].X, p.atoms[i].Y)
		}
	}
	var costs []string
	for _, a := range p.atoms {
		if a.Weight > 0 {
			costs = append(costs, fmt.Sprintf("%d,%s,%s : h(%s,%s)", a.Weight, a.X, a.Y, a.X, a.Y))
		}
	}
	if len(costs) > 0 {
		fmt.Fprintf(&b, "#minimize { %s }.\n", strings.Join(costs, "; "))
	}
	return b.String()
}
