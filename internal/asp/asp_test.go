package asp

import (
	"errors"
	"strings"
	"testing"
)

// buildAssignment makes a problem with two groups x1, x2 and candidates
// y1, y2 for each, plus the injectivity conflicts of a matching.
func buildAssignment(w11, w12, w21, w22 int) (*Problem, [4]AtomID) {
	p := NewProblem()
	g1 := p.AddGroup("x1")
	g2 := p.AddGroup("x2")
	a11 := p.AddAtom(g1, "x1", "y1", w11)
	a12 := p.AddAtom(g1, "x1", "y2", w12)
	a21 := p.AddAtom(g2, "x2", "y1", w21)
	a22 := p.AddAtom(g2, "x2", "y2", w22)
	p.AddConflict(a11, a21) // both map to y1
	p.AddConflict(a12, a22) // both map to y2
	return p, [4]AtomID{a11, a12, a21, a22}
}

func TestSolveFindsAModel(t *testing.T) {
	p, _ := buildAssignment(0, 0, 0, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	y1 := p.Atom(sol.Selected[0]).Y
	y2 := p.Atom(sol.Selected[1]).Y
	if y1 == y2 {
		t.Errorf("injectivity violated: both groups map to %s", y1)
	}
}

func TestSolveMinPicksCheapestMatching(t *testing.T) {
	// x1->y1 costs 5, x1->y2 costs 0; x2->y1 costs 0, x2->y2 costs 5.
	// The cheap diagonal (x1->y2, x2->y1) has total 0.
	p, atoms := buildAssignment(5, 0, 0, 5)
	sol, err := p.SolveMin()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Errorf("cost = %d, want 0", sol.Cost)
	}
	if sol.Selected[0] != atoms[1] || sol.Selected[1] != atoms[2] {
		t.Errorf("wrong atoms selected: %v", sol.Selected)
	}
}

func TestSolveMinForcedExpensiveChoice(t *testing.T) {
	// Only one matching exists after conflicts; its cost must be
	// reported faithfully.
	p := NewProblem()
	g1 := p.AddGroup("x1")
	a := p.AddAtom(g1, "x1", "y1", 7)
	sol, err := p.SolveMin()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 7 || sol.Selected[0] != a {
		t.Errorf("sol = %+v", sol)
	}
}

func TestUnsatEmptyGroup(t *testing.T) {
	p := NewProblem()
	p.AddGroup("x1") // no candidates
	if _, err := p.Solve(); !errors.Is(err, ErrUnsat) {
		t.Errorf("want ErrUnsat, got %v", err)
	}
}

func TestUnsatByConflicts(t *testing.T) {
	// Two groups, one shared candidate each: pigeonhole.
	p := NewProblem()
	g1 := p.AddGroup("x1")
	g2 := p.AddGroup("x2")
	a1 := p.AddAtom(g1, "x1", "y", 0)
	a2 := p.AddAtom(g2, "x2", "y", 0)
	p.AddConflict(a1, a2)
	if _, err := p.Solve(); !errors.Is(err, ErrUnsat) {
		t.Errorf("want ErrUnsat, got %v", err)
	}
}

func TestImplicationsPropagate(t *testing.T) {
	// Selecting e->f forces x->y; x->z conflicts with that.
	p := NewProblem()
	gx := p.AddGroup("x")
	ge := p.AddGroup("e")
	xy := p.AddAtom(gx, "x", "y", 1)
	xz := p.AddAtom(gx, "x", "z", 0)
	ef := p.AddAtom(ge, "e", "f", 0)
	p.AddImplication(ef, xy)
	sol, err := p.SolveMin()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[gx] != xy {
		t.Errorf("implication not enforced: got atom %d, want %d (xz=%d)", sol.Selected[gx], xy, xz)
	}
	if sol.Cost != 1 {
		t.Errorf("cost = %d, want 1 (the forced xy)", sol.Cost)
	}
}

func TestChainedImplications(t *testing.T) {
	p := NewProblem()
	ga := p.AddGroup("a")
	gb := p.AddGroup("b")
	gc := p.AddGroup("c")
	a1 := p.AddAtom(ga, "a", "1", 0)
	b1 := p.AddAtom(gb, "b", "1", 0)
	c1 := p.AddAtom(gc, "c", "1", 0)
	// Extra candidates so the groups are not forced trivially.
	p.AddAtom(gb, "b", "2", 0)
	p.AddAtom(gc, "c", "2", 0)
	p.AddImplication(a1, b1)
	p.AddImplication(b1, c1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Selected[ga] == a1 {
		if sol.Selected[gb] != b1 || sol.Selected[gc] != c1 {
			t.Error("implication chain not propagated")
		}
	}
}

func TestConflictWithForcedAtomIsUnsat(t *testing.T) {
	// Group a has one candidate a1; a1 conflicts with the only
	// candidate of group b.
	p := NewProblem()
	ga := p.AddGroup("a")
	gb := p.AddGroup("b")
	a1 := p.AddAtom(ga, "a", "1", 0)
	b1 := p.AddAtom(gb, "b", "1", 0)
	p.AddConflict(a1, b1)
	if _, err := p.Solve(); !errors.Is(err, ErrUnsat) {
		t.Errorf("want ErrUnsat, got %v", err)
	}
}

func TestBranchAndBoundOptimality(t *testing.T) {
	// 3x3 assignment with a cost matrix whose greedy row-wise choice is
	// suboptimal; optimum is 1+2+1 = 4 on the anti-diagonal-ish pattern.
	cost := [3][3]int{
		{0, 9, 9}, // x0 wants y0
		{0, 9, 9}, // x1 also wants y0 -> conflict forces rethink
		{9, 0, 9},
	}
	p := NewProblem()
	var atoms [3][3]AtomID
	for i := 0; i < 3; i++ {
		gi := p.AddGroup("x")
		for j := 0; j < 3; j++ {
			atoms[i][j] = p.AddAtom(gi, "x", "y", cost[i][j])
		}
	}
	for j := 0; j < 3; j++ {
		for i1 := 0; i1 < 3; i1++ {
			for i2 := i1 + 1; i2 < 3; i2++ {
				p.AddConflict(atoms[i1][j], atoms[i2][j])
			}
		}
	}
	sol, err := p.SolveMin()
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: one of x0/x1 takes y0 (0), x2 takes y1 (0), the loser of
	// x0/x1 takes y2 (9). Total 9.
	if sol.Cost != 9 {
		t.Errorf("cost = %d, want 9", sol.Cost)
	}
}

func TestRenderShowsProgram(t *testing.T) {
	p, _ := buildAssignment(1, 0, 0, 1)
	out := p.Render()
	for _, want := range []string{"{ h(x1,y1); h(x1,y2) } = 1", ":- h(x1,y1), h(x2,y1).", "#minimize"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSolveAllCountsModels(t *testing.T) {
	// Two groups, two targets, full bipartite with injectivity: exactly
	// the 2 permutation matchings.
	p, _ := buildAssignment(0, 0, 0, 0)
	got := p.SolveAll(0, func(*Solution) bool { return true })
	if got != 2 {
		t.Errorf("models = %d, want 2", got)
	}
	// Limit respected.
	if got := p.SolveAll(1, func(*Solution) bool { return true }); got != 1 {
		t.Errorf("limited models = %d, want 1", got)
	}
	// Callback stop respected.
	calls := 0
	p.SolveAll(0, func(*Solution) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("callback stop: %d calls", calls)
	}
	// Unsatisfiable: zero models.
	q := NewProblem()
	g1 := q.AddGroup("x1")
	g2 := q.AddGroup("x2")
	a1 := q.AddAtom(g1, "x1", "y", 0)
	a2 := q.AddAtom(g2, "x2", "y", 0)
	q.AddConflict(a1, a2)
	if got := q.SolveAll(0, func(*Solution) bool { return true }); got != 0 {
		t.Errorf("unsat models = %d", got)
	}
}

func TestDeterministicSolutions(t *testing.T) {
	p1, _ := buildAssignment(1, 2, 2, 1)
	p2, _ := buildAssignment(1, 2, 2, 1)
	s1, err := p1.SolveMin()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p2.SolveMin()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cost != s2.Cost || s1.Selected[0] != s2.Selected[0] || s1.Selected[1] != s2.Selected[1] {
		t.Error("solver is not deterministic")
	}
}
