package asp

// The paper's two ASP programs, verbatim (Listings 3 and 4). They are
// the ground truth the Problem encoding in match must correspond to:
//
//   - a selection group per element of G1 with candidates in G2 realizes
//     the cardinality-1 choice rules;
//   - label mismatches are pruned during grounding, realizing the
//     label-preservation constraints;
//   - conflicts realize the injectivity constraints;
//   - implications realize the endpoint-preservation constraints;
//   - atom weights realize cost/3 with the #minimize directive.
//
// TestEncodingRealizesListings in listings_test.go checks the
// correspondence on concrete graphs by solving both encodings of small
// instances and comparing against hand-computed answers.

// Listing3GraphSimilarity is the paper's graph-similarity program: an
// exact isomorphism on structure and labels (Section 3.4).
const Listing3GraphSimilarity = `{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : n1(X,_)} = 1 :- n2(Y,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
{h(X,Y) : e1(X,_,_,_)} = 1 :- e2(Y,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- n2(Y,L), h(X,Y), not n1(X,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e2(E2,_,_,L), h(E1,E2), not e1(E1,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).`

// Listing4SubgraphIsomorphism is the paper's approximate subgraph
// isomorphism program with the property-mismatch cost minimization
// (Section 3.5).
const Listing4SubgraphIsomorphism = `{h(X,Y) : n2(Y,_)} = 1 :- n1(X,_).
{h(X,Y) : e2(Y,_,_,_)} = 1 :- e1(X,_,_,_).
:- X <> Y, h(X,Z), h(Y,Z).
:- X <> Y, h(Z,Y), h(Z,X).
:- n1(X,L), h(X,Y), not n2(Y,L).
:- e1(E1,_,_,L), h(E1,E2), not e2(E2,_,_,L).
:- e1(E1,X,_,_), h(E1,E2), e2(E2,Y,_,_), not h(X,Y).
:- e1(E1,_,X,_), h(E1,E2), e2(E2,_,Y,_), not h(X,Y).
cost(X,K,0) :- p1(X,K,V), h(X,Y), p2(Y,K,V).
cost(X,K,1) :- p1(X,K,V), h(X,Y), p2(Y,K,W), V <> W.
cost(X,K,1) :- p1(X,K,V), h(X,Y), not p2(Y,K,_).
#minimize { PC,X,K : cost(X,K,PC) }.`
