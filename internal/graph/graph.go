// Package graph implements the labelled property-graph model used
// throughout ProvMark: G = (V, E, src, tgt, lab, prop) where V and E are
// disjoint identifier sets, every node and edge carries a label from a
// finite alphabet, and prop is a partial map from (element, key) to a
// string value (Section 3.3 of the paper).
//
// Graphs are mutable builders with deterministic iteration order: nodes
// and edges are reported in insertion order so that repeated pipeline
// runs over the same activity yield byte-identical serializations.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ElemID identifies a node or an edge within one graph. Node and edge
// identifier spaces are disjoint by construction (nodes are "n<k>",
// edges are "e<k>" when allocated by the graph; parsers may install
// arbitrary disjoint names).
type ElemID string

// Properties is a key-value dictionary attached to a node or edge.
type Properties map[string]string

// Node is a labelled vertex with properties.
type Node struct {
	ID    ElemID
	Label string
	Props Properties
}

// Edge is a directed labelled edge with properties.
type Edge struct {
	ID    ElemID
	Src   ElemID
	Tgt   ElemID
	Label string
	Props Properties
}

// Graph is a property graph. The zero value is not usable; call New.
type Graph struct {
	nodes    map[ElemID]*Node
	edges    map[ElemID]*Edge
	nodeIDs  []ElemID // insertion order
	edgeIDs  []ElemID // insertion order
	nextNode int
	nextEdge int
	// outAdj / inAdj index incident edge ids per node, in insertion
	// order, so neighbourhood scans (WL refinement, degree checks) do
	// not traverse the full edge list.
	outAdj map[ElemID][]ElemID
	inAdj  map[ElemID][]ElemID
	canon  canonCache
}

// canonCache memoizes the canonical WL refinement of the graph: the
// round-`canonRounds` colours and the shape fingerprint derived from
// them. It is invalidated on every structural mutation (node/edge
// insertion or removal). Property edits do not invalidate it — the
// fingerprint is property-insensitive by design. Mutating labels
// directly through pointers returned by Node/Nodes bypasses the cache;
// all in-tree code mutates labels only before first fingerprint use.
type canonCache struct {
	mu    sync.Mutex
	valid bool
	fp    string
	// colors64 holds the canonical-depth colours indexed by node
	// insertion order; colors is the string rendering, produced lazily
	// on the first WLColors request at canonical depth.
	colors64 []uint64
	colors   map[ElemID]string
}

// New returns an empty property graph.
func New() *Graph {
	return &Graph{
		nodes:  make(map[ElemID]*Node),
		edges:  make(map[ElemID]*Edge),
		outAdj: make(map[ElemID][]ElemID),
		inAdj:  make(map[ElemID][]ElemID),
	}
}

// invalidateCanon drops the memoized canonical refinement after a
// structural mutation.
func (g *Graph) invalidateCanon() {
	g.canon.mu.Lock()
	g.canon.valid = false
	g.canon.fp = ""
	g.canon.colors64 = g.canon.colors64[:0]
	g.canon.colors = nil
	g.canon.mu.Unlock()
}

// AddNode appends a node with a fresh identifier and returns its ID.
func (g *Graph) AddNode(label string, props Properties) ElemID {
	g.nextNode++
	id := ElemID(fmt.Sprintf("n%d", g.nextNode))
	for g.nodes[id] != nil { // skip ids already taken by InsertNode
		g.nextNode++
		id = ElemID(fmt.Sprintf("n%d", g.nextNode))
	}
	g.insertNode(&Node{ID: id, Label: label, Props: cloneProps(props)})
	return id
}

// InsertNode adds a node with a caller-chosen identifier. It returns an
// error if the identifier is already present (as a node or an edge).
func (g *Graph) InsertNode(id ElemID, label string, props Properties) error {
	if g.nodes[id] != nil || g.edges[id] != nil {
		return fmt.Errorf("graph: duplicate element id %q", id)
	}
	g.insertNode(&Node{ID: id, Label: label, Props: cloneProps(props)})
	return nil
}

func (g *Graph) insertNode(n *Node) {
	g.nodes[n.ID] = n
	g.nodeIDs = append(g.nodeIDs, n.ID)
	g.invalidateCanon()
}

// AddEdge appends an edge with a fresh identifier from src to tgt and
// returns its ID. It returns an error if either endpoint is missing.
func (g *Graph) AddEdge(src, tgt ElemID, label string, props Properties) (ElemID, error) {
	if g.nodes[src] == nil {
		return "", fmt.Errorf("graph: edge source %q not present", src)
	}
	if g.nodes[tgt] == nil {
		return "", fmt.Errorf("graph: edge target %q not present", tgt)
	}
	g.nextEdge++
	id := ElemID(fmt.Sprintf("e%d", g.nextEdge))
	for g.edges[id] != nil {
		g.nextEdge++
		id = ElemID(fmt.Sprintf("e%d", g.nextEdge))
	}
	g.insertEdge(&Edge{ID: id, Src: src, Tgt: tgt, Label: label, Props: cloneProps(props)})
	return id, nil
}

// InsertEdge adds an edge with a caller-chosen identifier.
func (g *Graph) InsertEdge(id, src, tgt ElemID, label string, props Properties) error {
	if g.nodes[id] != nil || g.edges[id] != nil {
		return fmt.Errorf("graph: duplicate element id %q", id)
	}
	if g.nodes[src] == nil {
		return fmt.Errorf("graph: edge source %q not present", src)
	}
	if g.nodes[tgt] == nil {
		return fmt.Errorf("graph: edge target %q not present", tgt)
	}
	g.insertEdge(&Edge{ID: id, Src: src, Tgt: tgt, Label: label, Props: cloneProps(props)})
	return nil
}

func (g *Graph) insertEdge(e *Edge) {
	g.edges[e.ID] = e
	g.edgeIDs = append(g.edgeIDs, e.ID)
	g.outAdj[e.Src] = append(g.outAdj[e.Src], e.ID)
	g.inAdj[e.Tgt] = append(g.inAdj[e.Tgt], e.ID)
	g.invalidateCanon()
}

// SetProp sets property key=value on the node or edge with the given id.
// It returns an error if no such element exists.
func (g *Graph) SetProp(id ElemID, key, value string) error {
	if n := g.nodes[id]; n != nil {
		if n.Props == nil {
			n.Props = Properties{}
		}
		n.Props[key] = value
		return nil
	}
	if e := g.edges[id]; e != nil {
		if e.Props == nil {
			e.Props = Properties{}
		}
		e.Props[key] = value
		return nil
	}
	return fmt.Errorf("graph: no element %q", id)
}

// DeleteProp removes a property from an element, if present.
func (g *Graph) DeleteProp(id ElemID, key string) {
	if n := g.nodes[id]; n != nil {
		delete(n.Props, key)
		return
	}
	if e := g.edges[id]; e != nil {
		delete(e.Props, key)
	}
}

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id ElemID) *Node { return g.nodes[id] }

// Edge returns the edge with the given id, or nil.
func (g *Graph) Edge(id ElemID) *Edge { return g.edges[id] }

// Nodes returns the graph's nodes in insertion order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodeIDs))
	for _, id := range g.nodeIDs {
		out = append(out, g.nodes[id])
	}
	return out
}

// Edges returns the graph's edges in insertion order.
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edgeIDs))
	for _, id := range g.edgeIDs {
		out = append(out, g.edges[id])
	}
	return out
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.nodeIDs) }

// NumEdges reports the edge count.
func (g *Graph) NumEdges() int { return len(g.edgeIDs) }

// Size reports nodes+edges, the element count used when ranking trial
// graphs by size in the generalization stage.
func (g *Graph) Size() int { return len(g.nodeIDs) + len(g.edgeIDs) }

// Clone returns a deep copy of the graph preserving identifiers and
// insertion order.
func (g *Graph) Clone() *Graph {
	out := New()
	out.nextNode = g.nextNode
	out.nextEdge = g.nextEdge
	for _, n := range g.Nodes() {
		out.insertNode(&Node{ID: n.ID, Label: n.Label, Props: cloneProps(n.Props)})
	}
	for _, e := range g.Edges() {
		out.insertEdge(&Edge{ID: e.ID, Src: e.Src, Tgt: e.Tgt, Label: e.Label, Props: cloneProps(e.Props)})
	}
	return out
}

// InEdges returns the edges whose target is id, in insertion order.
func (g *Graph) InEdges(id ElemID) []*Edge {
	ids := g.inAdj[id]
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Edge, len(ids))
	for i, eid := range ids {
		out[i] = g.edges[eid]
	}
	return out
}

// OutEdges returns the edges whose source is id, in insertion order.
func (g *Graph) OutEdges(id ElemID) []*Edge {
	ids := g.outAdj[id]
	if len(ids) == 0 {
		return nil
	}
	out := make([]*Edge, len(ids))
	for i, eid := range ids {
		out[i] = g.edges[eid]
	}
	return out
}

// Degree returns in-degree plus out-degree of a node (self-loops count
// twice).
func (g *Graph) Degree(id ElemID) int {
	return len(g.inAdj[id]) + len(g.outAdj[id])
}

// RemoveEdge deletes an edge. It is a no-op for unknown ids.
func (g *Graph) RemoveEdge(id ElemID) {
	e := g.edges[id]
	if e == nil {
		return
	}
	delete(g.edges, id)
	g.edgeIDs = deleteID(g.edgeIDs, id)
	g.outAdj[e.Src] = deleteID(g.outAdj[e.Src], id)
	g.inAdj[e.Tgt] = deleteID(g.inAdj[e.Tgt], id)
	g.invalidateCanon()
}

// RemoveNode deletes a node and all edges incident to it.
func (g *Graph) RemoveNode(id ElemID) {
	if g.nodes[id] == nil {
		return
	}
	incident := make([]ElemID, 0, len(g.outAdj[id])+len(g.inAdj[id]))
	incident = append(incident, g.outAdj[id]...)
	incident = append(incident, g.inAdj[id]...)
	for _, eid := range incident {
		g.RemoveEdge(eid)
	}
	delete(g.outAdj, id)
	delete(g.inAdj, id)
	delete(g.nodes, id)
	g.nodeIDs = deleteID(g.nodeIDs, id)
	g.invalidateCanon()
}

func deleteID(ids []ElemID, id ElemID) []ElemID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	return out
}

func cloneProps(p Properties) Properties {
	if p == nil {
		return nil
	}
	out := make(Properties, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// PropKeys returns an element's property keys in sorted order.
func PropKeys(p Properties) []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact human-readable description, stable across runs.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{%d nodes, %d edges}\n", g.NumNodes(), g.NumEdges())
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  node %s [%s]%s\n", n.ID, n.Label, propString(n.Props))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  edge %s: %s -%s-> %s%s\n", e.ID, e.Src, e.Label, e.Tgt, propString(e.Props))
	}
	return b.String()
}

func propString(p Properties) string {
	if len(p) == 0 {
		return ""
	}
	parts := make([]string, 0, len(p))
	for _, k := range PropKeys(p) {
		parts = append(parts, fmt.Sprintf("%s=%q", k, p[k]))
	}
	return " {" + strings.Join(parts, ", ") + "}"
}
