package graph

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// randomGraph builds a pseudo-random labelled graph.
func randomGraph(rng *rand.Rand, nodes, edges int) *Graph {
	g := New()
	labels := []string{"Process", "Artifact", "entity", "activity"}
	ids := make([]ElemID, 0, nodes)
	for i := 0; i < nodes; i++ {
		ids = append(ids, g.AddNode(labels[rng.Intn(len(labels))], Properties{
			"idx": strconv.Itoa(i),
		}))
	}
	edgeLabels := []string{"used", "wasGeneratedBy", "rel"}
	for i := 0; i < edges; i++ {
		src := ids[rng.Intn(len(ids))]
		tgt := ids[rng.Intn(len(ids))]
		if _, err := g.AddEdge(src, tgt, edgeLabels[rng.Intn(len(edgeLabels))], nil); err != nil {
			panic(err)
		}
	}
	return g
}

// renameElements produces an isomorphic copy with fresh identifiers,
// inserted in a permuted order.
func renameElements(g *Graph, rng *rand.Rand) *Graph {
	out := New()
	nodes := g.Nodes()
	perm := rng.Perm(len(nodes))
	rename := make(map[ElemID]ElemID, len(nodes))
	for i, pi := range perm {
		id := ElemID("m" + strconv.Itoa(i+1))
		rename[nodes[pi].ID] = id
		if err := out.InsertNode(id, nodes[pi].Label, nodes[pi].Props); err != nil {
			panic(err)
		}
	}
	edges := g.Edges()
	eperm := rng.Perm(len(edges))
	for i, pi := range eperm {
		e := edges[pi]
		id := ElemID("f" + strconv.Itoa(i+1))
		if err := out.InsertEdge(id, rename[e.Src], rename[e.Tgt], e.Label, e.Props); err != nil {
			panic(err)
		}
	}
	return out
}

// TestShapeFingerprintInvariantUnderRenaming is the key property: the
// fingerprint must not depend on identifiers or insertion order.
func TestShapeFingerprintInvariantUnderRenaming(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(8), rng.Intn(12))
		h := renameElements(g, rng)
		return ShapeFingerprint(g) == ShapeFingerprint(h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestShapeFingerprintSensitiveToLabels(t *testing.T) {
	g := New()
	a := g.AddNode("X", nil)
	b := g.AddNode("Y", nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	h.Node(a).Label = "Z"
	if ShapeFingerprint(g) == ShapeFingerprint(h) {
		t.Error("fingerprint ignored a node label change")
	}
}

func TestShapeFingerprintSensitiveToEdgeDirection(t *testing.T) {
	g := New()
	ga := g.AddNode("X", nil)
	gb := g.AddNode("Y", nil)
	if _, err := g.AddEdge(ga, gb, "E", nil); err != nil {
		t.Fatal(err)
	}
	h := New()
	ha := h.AddNode("X", nil)
	hb := h.AddNode("Y", nil)
	if _, err := h.AddEdge(hb, ha, "E", nil); err != nil {
		t.Fatal(err)
	}
	if ShapeFingerprint(g) == ShapeFingerprint(h) {
		t.Error("fingerprint ignored edge direction")
	}
}

func TestSameLabelCounts(t *testing.T) {
	g := New()
	g.AddNode("X", nil)
	g.AddNode("X", nil)
	h := New()
	h.AddNode("X", nil)
	if SameLabelCounts(g, h) {
		t.Error("different multiplicities reported equal")
	}
	h.AddNode("X", nil)
	if !SameLabelCounts(g, h) {
		t.Error("equal multisets reported different")
	}
	h.AddNode("Y", nil)
	if SameLabelCounts(g, h) {
		t.Error("extra label reported equal")
	}
}

func TestEqualDetectsPropDifferences(t *testing.T) {
	g := New()
	a := g.AddNode("X", Properties{"k": "v"})
	h := g.Clone()
	if !Equal(g, h) {
		t.Fatal("clone not equal")
	}
	if err := h.SetProp(a, "k", "w"); err != nil {
		t.Fatal(err)
	}
	if Equal(g, h) {
		t.Error("property change not detected")
	}
}

func TestSummarize(t *testing.T) {
	g := New()
	a := g.AddNode("X", Properties{"k": "v", "j": "w"})
	b := g.AddNode("Y", nil)
	if _, err := g.AddEdge(a, b, "E", Properties{"p": "q"}); err != nil {
		t.Fatal(err)
	}
	s := Summarize(g)
	if s.Nodes != 2 || s.Edges != 1 || s.Props != 3 {
		t.Errorf("stats wrong: %+v", s)
	}
	if s.String() != "2n/1e/3p" {
		t.Errorf("stats rendering: %s", s)
	}
}

func TestWLColorsDistinguishNeighbourhoods(t *testing.T) {
	// a -> b -> c: with identical labels, a (source only), b (middle),
	// c (sink only) must get distinct refined colours.
	g := New()
	a := g.AddNode("N", nil)
	b := g.AddNode("N", nil)
	c := g.AddNode("N", nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(b, c, "E", nil); err != nil {
		t.Fatal(err)
	}
	colors := WLColors(g, 3)
	if colors[a] == colors[b] || colors[b] == colors[c] || colors[a] == colors[c] {
		t.Errorf("WL colours failed to separate path positions: %v", colors)
	}
}
