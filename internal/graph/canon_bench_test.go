package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkWLColors measures one full refinement (the fingerprint's
// inner loop) at increasing graph sizes, under both the frozen
// string-based implementation and the pooled integer engine that
// replaced it. The interned variant reports ~zero allocations per
// refinement once the pool is warm.
func BenchmarkWLColors(b *testing.B) {
	for _, size := range []int{16, 64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(size)))
		g := randomGraph(rng, size, 2*size)
		b.Run(fmt.Sprintf("legacy/n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				wlColorsLegacy(g, 3)
			}
		})
		b.Run(fmt.Sprintf("interned/n%d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ws := wlGet()
				wlRefine(g, 3, ws)
				wlPut(ws)
			}
		})
	}
}

// BenchmarkShapeFingerprint contrasts a cold fingerprint computation
// with the memoized path a pipeline run takes after classification has
// warmed the cache.
func BenchmarkShapeFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	b.Run("cold", func(b *testing.B) {
		g := randomGraph(rng, 128, 256)
		for i := 0; i < b.N; i++ {
			g.invalidateCanon()
			ShapeFingerprint(g)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		g := randomGraph(rng, 128, 256)
		ShapeFingerprint(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ShapeFingerprint(g)
		}
	})
}
