package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkWLColors measures one full refinement (the fingerprint's
// inner loop) at increasing graph sizes. The adjacency-indexed
// implementation visits only incident edges per node per round; the
// seed implementation rescanned the entire edge list for every node.
func BenchmarkWLColors(b *testing.B) {
	for _, size := range []int{16, 64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(size)))
		g := randomGraph(rng, size, 2*size)
		b.Run(fmt.Sprintf("n%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wlColors(g, 3)
			}
		})
	}
}

// BenchmarkShapeFingerprint contrasts a cold fingerprint computation
// with the memoized path a pipeline run takes after classification has
// warmed the cache.
func BenchmarkShapeFingerprint(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	b.Run("cold", func(b *testing.B) {
		g := randomGraph(rng, 128, 256)
		for i := 0; i < b.N; i++ {
			g.invalidateCanon()
			ShapeFingerprint(g)
		}
	})
	b.Run("memoized", func(b *testing.B) {
		g := randomGraph(rng, 128, 256)
		ShapeFingerprint(g)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ShapeFingerprint(g)
		}
	})
}
