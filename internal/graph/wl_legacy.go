package graph

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strings"
)

// wlColorsLegacy is the original string-based WL refinement, frozen
// when wl.go replaced it on the production path. Each round renders
// every incident edge as "label<colour"/"label>colour", sorts the
// strings, concatenates and sha256-hashes per node — allocation-heavy,
// but simple enough to audit by eye. It is kept as the reference the
// partition-equivalence test and the wl-refine benchmarks compare the
// integer refinement against; do not use it outside tests and
// benchmarks.
func wlColorsLegacy(g *Graph, rounds int) map[ElemID]string {
	colors := make(map[ElemID]string, g.NumNodes())
	for _, n := range g.Nodes() {
		colors[n.ID] = n.Label
	}
	for r := 0; r < rounds; r++ {
		next := make(map[ElemID]string, len(colors))
		for _, n := range g.Nodes() {
			in := make([]string, 0, len(g.inAdj[n.ID]))
			for _, eid := range g.inAdj[n.ID] {
				e := g.edges[eid]
				in = append(in, e.Label+"<"+colors[e.Src])
			}
			out := make([]string, 0, len(g.outAdj[n.ID]))
			for _, eid := range g.outAdj[n.ID] {
				e := g.edges[eid]
				out = append(out, e.Label+">"+colors[e.Tgt])
			}
			sort.Strings(in)
			sort.Strings(out)
			raw := colors[n.ID] + "#" + strings.Join(in, ",") + "#" + strings.Join(out, ",")
			sum := sha256.Sum256([]byte(raw))
			next[n.ID] = hex.EncodeToString(sum[:6])
		}
		colors = next
	}
	return colors
}

// WLColorsLegacy exposes the frozen string-based refinement so
// benchmarks and differential tests outside this package can compare
// it against the integer engine.
func WLColorsLegacy(g *Graph, rounds int) map[ElemID]string {
	return wlColorsLegacy(g, rounds)
}
