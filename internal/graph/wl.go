package graph

// Integer Weisfeiler–Leman refinement — the engine behind
// ShapeFingerprint and WLColors.
//
// The legacy refinement (wl_legacy.go) built a string per node per
// round: format every incident edge as "label<colour", sort the
// strings, concatenate, sha256, hex — a storm of small allocations on
// the hottest path of every classification. This implementation keeps
// colours as uint64 hashes end to end: adjacency is flattened once per
// computation into (edge-label hash, neighbour index) pairs, each
// round sorts a reusable []uint64 multiset per node, and the combined
// fingerprint hashes sorted integer items. All scratch lives in a
// sync.Pool workspace, so refinement after warm-up allocates almost
// nothing beyond the memoized result itself.
//
// Every hash here is deterministic arithmetic (FNV-1a over labels,
// splitmix64-style mixing) — NOT a per-process seeded hash — because
// WL colours order the Normalize output that the regression store
// persists across processes.

import (
	"crypto/sha256"
	"encoding/hex"
	"slices"
	"sync"
)

// Direction and element tags keep in/out neighbour contributions and
// node/edge fingerprint items in disjoint hash families.
const (
	wlInTag   = 0x9ae16a3b2f90404f
	wlOutTag  = 0xc3a5c85c97cb3127
	wlNodeTag = 0x2545f4914f6cdd1d
	wlEdgeTag = 0x8a5cd789635d2dff
)

// mix64 is the splitmix64 finalizer: a bijective avalanche over one
// 64-bit word.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashLabel is FNV-1a over a label string — process-stable, unlike
// maphash.
func hashLabel(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// wlWorkspace is the pooled scratch of one refinement computation:
// node index, flattened tagged adjacency, two colour slabs, the
// per-node neighbour multiset, and the fingerprint item/byte buffers.
type wlWorkspace struct {
	idx      map[ElemID]int32
	colors   []uint64
	next     []uint64
	adjOff   []int32
	adjVal   []uint64 // mix64(labelHash ^ directionTag) per incident edge
	adjNbr   []int32
	multiset []uint64
	items    []uint64
	bytes    []byte
}

var wlPool = sync.Pool{New: func() any { return &wlWorkspace{idx: map[ElemID]int32{}} }}

func wlGet() *wlWorkspace   { return wlPool.Get().(*wlWorkspace) }
func wlPut(ws *wlWorkspace) { wlPool.Put(ws) }

// grow returns s with length n, reusing capacity.
func grow[T int32 | uint64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// wlRefine runs `rounds` of WL colour refinement and returns the
// colour of every node, indexed by the graph's node insertion order.
// The returned slice aliases the workspace — callers copy out anything
// they keep past wlPut.
func wlRefine(g *Graph, rounds int, ws *wlWorkspace) []uint64 {
	n := len(g.nodeIDs)
	clear(ws.idx)
	for i, id := range g.nodeIDs {
		ws.idx[id] = int32(i)
	}
	// Flatten the adjacency once: node i's incident edges occupy
	// adj[off[i]:off[i+1]], each entry a (tagged label hash, neighbour
	// index) pair, so rounds never touch maps or strings.
	ws.adjOff = grow(ws.adjOff, n+1)
	ws.adjOff[0] = 0
	for i, id := range g.nodeIDs {
		ws.adjOff[i+1] = ws.adjOff[i] + int32(len(g.inAdj[id])+len(g.outAdj[id]))
	}
	total := int(ws.adjOff[n])
	ws.adjVal = grow(ws.adjVal, total)
	ws.adjNbr = grow(ws.adjNbr, total)
	for i, id := range g.nodeIDs {
		k := ws.adjOff[i]
		for _, eid := range g.inAdj[id] {
			e := g.edges[eid]
			ws.adjVal[k] = mix64(hashLabel(e.Label) ^ wlInTag)
			ws.adjNbr[k] = ws.idx[e.Src]
			k++
		}
		for _, eid := range g.outAdj[id] {
			e := g.edges[eid]
			ws.adjVal[k] = mix64(hashLabel(e.Label) ^ wlOutTag)
			ws.adjNbr[k] = ws.idx[e.Tgt]
			k++
		}
	}
	ws.colors = grow(ws.colors, n)
	ws.next = grow(ws.next, n)
	colors, next := ws.colors, ws.next
	for i, id := range g.nodeIDs {
		colors[i] = mix64(hashLabel(g.nodes[id].Label))
	}
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			ms := ws.multiset[:0]
			for k := ws.adjOff[i]; k < ws.adjOff[i+1]; k++ {
				ms = append(ms, mix64(ws.adjVal[k]^colors[ws.adjNbr[k]]))
			}
			slices.Sort(ms)
			h := mix64(colors[i] + 0x9e3779b97f4a7c15)
			for _, c := range ms {
				h = mix64(h ^ c)
			}
			next[i] = h
			ws.multiset = ms
		}
		colors, next = next, colors
	}
	ws.colors, ws.next = colors, next
	return colors
}

// wlFingerprint hashes the refined colours into the shape fingerprint:
// one item per node colour, one per (src colour, edge label, tgt
// colour) triple, sorted and fed through sha256. The first 8 bytes in
// hex form the fingerprint, the same shape the legacy implementation
// produced.
func wlFingerprint(g *Graph, colors []uint64, ws *wlWorkspace) string {
	items := ws.items[:0]
	for i := range g.nodeIDs {
		items = append(items, mix64(colors[i]^wlNodeTag))
	}
	for _, eid := range g.edgeIDs {
		e := g.edges[eid]
		h := mix64(wlEdgeTag ^ colors[ws.idx[e.Src]])
		h = mix64(h ^ hashLabel(e.Label))
		h = mix64(h ^ colors[ws.idx[e.Tgt]])
		items = append(items, h)
	}
	slices.Sort(items)
	buf := ws.bytes[:0]
	for _, it := range items {
		buf = append(buf, byte(it), byte(it>>8), byte(it>>16), byte(it>>24),
			byte(it>>32), byte(it>>40), byte(it>>48), byte(it>>56))
	}
	ws.items, ws.bytes = items, buf
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}
