package graph

import (
	"fmt"
	"sync/atomic"
)

// CanonRounds is the refinement depth used by the canonical fingerprint
// and by the matching engines' colour pruning. The memoized canonCache
// stores colours at exactly this depth.
const CanonRounds = 3

// fingerprintComputes counts actual (cache-missing) fingerprint
// computations process-wide; see FingerprintComputations.
var fingerprintComputes atomic.Uint64

// FingerprintComputations reports how many times a shape fingerprint
// has actually been computed (cache misses only) since process start.
// Instrumented tests and benchmarks diff this counter to prove each
// trial graph is fingerprinted at most once per pipeline run.
func FingerprintComputations() uint64 { return fingerprintComputes.Load() }

// ShapeFingerprint returns a hash that is invariant under renaming of
// node and edge identifiers and under property values, but sensitive to
// labels and to the multiset of (srcLabel, edgeLabel, tgtLabel) triples
// refined by iterated neighbourhood colouring (a Weisfeiler–Leman style
// refinement). Two graphs with different fingerprints are guaranteed not
// to be similar in the sense of Section 3.4; equal fingerprints are a
// fast necessary condition checked before running the full solver.
//
// The result is memoized on the graph and recomputed only after a
// structural mutation, so repeated classification passes fingerprint
// each graph exactly once.
func ShapeFingerprint(g *Graph) string { return g.Fingerprint() }

// Fingerprint is ShapeFingerprint as a method; it serves the memoized
// value when the graph is structurally unchanged. It is safe for
// concurrent use provided no goroutine mutates the graph concurrently.
func (g *Graph) Fingerprint() string {
	g.canon.mu.Lock()
	defer g.canon.mu.Unlock()
	g.ensureCanonLocked()
	return g.canon.fp
}

// ensureCanonLocked fills the canonical cache; callers hold canon.mu.
// The refinement runs on the pooled integer engine (wl.go); only the
// fingerprint string and a copy of the colour slab outlive the
// workspace, so a (cache-missing) fingerprint computation costs a
// handful of allocations, and a cache hit costs none.
func (g *Graph) ensureCanonLocked() {
	if g.canon.valid {
		return
	}
	ws := wlGet()
	colors := wlRefine(g, CanonRounds, ws)
	g.canon.fp = wlFingerprint(g, colors, ws)
	g.canon.colors64 = append(g.canon.colors64[:0], colors...)
	g.canon.colors = nil
	g.canon.valid = true
	wlPut(ws)
	fingerprintComputes.Add(1)
}

// renderColors exposes integer colours under the exported string API:
// 16 hex digits per colour, fixed width so colour strings sort like
// the integers they render.
func renderColors(g *Graph, colors []uint64) map[ElemID]string {
	out := make(map[ElemID]string, len(g.nodeIDs))
	for i, id := range g.nodeIDs {
		var b [16]byte
		c := colors[i]
		for j := 15; j >= 0; j-- {
			b[j] = "0123456789abcdef"[c&0xf]
			c >>= 4
		}
		out[id] = string(b[:])
	}
	return out
}

// WLColors exposes the refinement used by ShapeFingerprint so that
// matching engines can prune candidate pairs: nodes mapped to each other
// by any label-preserving isomorphism necessarily share a WL colour. At
// the canonical depth the colours come from the graph's memoized cache
// (rendered to strings on first request); the returned map is a copy
// the caller may retain.
func WLColors(g *Graph, rounds int) map[ElemID]string {
	if rounds != CanonRounds {
		ws := wlGet()
		colors := wlRefine(g, rounds, ws)
		out := renderColors(g, colors)
		wlPut(ws)
		return out
	}
	g.canon.mu.Lock()
	g.ensureCanonLocked()
	if g.canon.colors == nil {
		g.canon.colors = renderColors(g, g.canon.colors64)
	}
	cached := g.canon.colors
	g.canon.mu.Unlock()
	out := make(map[ElemID]string, len(cached))
	for k, v := range cached {
		out[k] = v
	}
	return out
}

// LabelCounts returns the multiset of node and edge labels, a cheap
// invariant used to discard non-similar trial pairs before solving.
func LabelCounts(g *Graph) map[string]int {
	out := make(map[string]int)
	for _, n := range g.Nodes() {
		out["n:"+n.Label]++
	}
	for _, e := range g.Edges() {
		out["e:"+e.Label]++
	}
	return out
}

// SameLabelCounts reports whether two graphs have identical label multisets.
func SameLabelCounts(a, b *Graph) bool {
	ca, cb := LabelCounts(a), LabelCounts(b)
	if len(ca) != len(cb) {
		return false
	}
	for k, v := range ca {
		if cb[k] != v {
			return false
		}
	}
	return true
}

// Equal reports whether two graphs are identical including identifiers,
// labels, endpoints and all properties. This is stricter than
// isomorphism and is what the regression store uses after normalizing
// identifiers via the Datalog round trip.
func Equal(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for _, n := range a.Nodes() {
		m := b.Node(n.ID)
		if m == nil || m.Label != n.Label || !propsEqual(n.Props, m.Props) {
			return false
		}
	}
	for _, e := range a.Edges() {
		f := b.Edge(e.ID)
		if f == nil || f.Label != e.Label || f.Src != e.Src || f.Tgt != e.Tgt || !propsEqual(e.Props, f.Props) {
			return false
		}
	}
	return true
}

func propsEqual(a, b Properties) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Stats summarizes a graph for table rendering.
type Stats struct {
	Nodes int
	Edges int
	Props int
}

// Summarize computes element and property counts.
func Summarize(g *Graph) Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for _, n := range g.Nodes() {
		s.Props += len(n.Props)
	}
	for _, e := range g.Edges() {
		s.Props += len(e.Props)
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%dn/%de/%dp", s.Nodes, s.Edges, s.Props)
}
