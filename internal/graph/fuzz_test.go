package graph

import (
	"math/rand"
	"testing"
)

// graphFromFuzzBytes deterministically decodes an arbitrary byte string
// into a small labelled graph: byte 0 sizes the node set, following
// bytes pick labels and edge endpoints (indices wrap around the data).
func graphFromFuzzBytes(data []byte) *Graph {
	if len(data) == 0 {
		return nil
	}
	at := func(i int) int { return int(data[i%len(data)]) }
	nodeLabels := []string{"entity", "activity", "agent", "P"}
	edgeLabels := []string{"used", "ran", "E"}
	g := New()
	n := 1 + at(0)%12
	ids := make([]ElemID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(nodeLabels[at(i+1)%len(nodeLabels)], nil)
	}
	m := at(n+1) % (2 * n)
	for e := 0; e < m; e++ {
		src := ids[at(n+2+2*e)%n]
		tgt := ids[at(n+3+2*e)%n]
		if _, err := g.AddEdge(src, tgt, edgeLabels[at(n+4+3*e)%len(edgeLabels)], nil); err != nil {
			panic(err) // endpoints exist by construction
		}
	}
	return g
}

// FuzzShapeFingerprintInvariance checks the fingerprint's contract on
// arbitrary graphs: invariant under identifier renaming and insertion
// reordering, sensitive to label changes, and correctly invalidated by
// structural mutation.
func FuzzShapeFingerprintInvariance(f *testing.F) {
	f.Add([]byte{4, 0, 1, 2, 3, 6, 0, 1, 1, 2, 2, 3, 0, 3})
	f.Add([]byte{1, 7})
	f.Add([]byte{11, 250, 3, 9, 27, 81, 243, 5, 6, 7, 8, 9, 10, 11, 12, 13})
	f.Add([]byte("provenance graphs all the way down"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromFuzzBytes(data)
		if g == nil || g.NumNodes() == 0 {
			t.Skip()
		}
		seed := int64(len(data))
		for _, b := range data {
			seed = seed*31 + int64(b)
		}
		h := renameElements(g, rand.New(rand.NewSource(seed)))
		if ShapeFingerprint(g) != ShapeFingerprint(h) {
			t.Fatalf("fingerprint not invariant under renaming:\n%s\n%s", g, h)
		}

		// Sensitivity: one node relabelled to a fresh label changes the
		// label multiset and must change the fingerprint.
		mut := g.Clone()
		node := mut.Nodes()[int(data[0])%mut.NumNodes()]
		node.Label += "_mutant"
		if ShapeFingerprint(g) == ShapeFingerprint(mut) {
			t.Fatalf("fingerprint ignored a label change on %s:\n%s", node.ID, g)
		}

		// Cache invalidation: fingerprinting, then removing a node,
		// must yield a different (recomputed) fingerprint.
		if g.NumNodes() > 1 {
			rm := g.Clone()
			before := ShapeFingerprint(rm)
			rm.RemoveNode(rm.Nodes()[0].ID)
			if after := ShapeFingerprint(rm); after == before {
				t.Fatalf("fingerprint unchanged after node removal:\n%s", g)
			}
		}
	})
}
