package graph

import (
	"strings"
	"testing"
)

func TestAddNodeAssignsFreshIDs(t *testing.T) {
	g := New()
	a := g.AddNode("X", nil)
	b := g.AddNode("Y", nil)
	if a == b {
		t.Fatalf("ids collide: %s", a)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("want 2 nodes, got %d", g.NumNodes())
	}
	if g.Node(a).Label != "X" || g.Node(b).Label != "Y" {
		t.Error("labels not stored")
	}
}

func TestInsertNodeRejectsDuplicates(t *testing.T) {
	g := New()
	if err := g.InsertNode("n1", "X", nil); err != nil {
		t.Fatal(err)
	}
	if err := g.InsertNode("n1", "Y", nil); err == nil {
		t.Error("duplicate node id accepted")
	}
	// AddNode must skip over manually inserted ids.
	id := g.AddNode("Z", nil)
	if id == "n1" {
		t.Error("AddNode reused a taken id")
	}
}

func TestAddEdgeValidatesEndpoints(t *testing.T) {
	g := New()
	a := g.AddNode("X", nil)
	if _, err := g.AddEdge(a, "missing", "E", nil); err == nil {
		t.Error("edge to missing node accepted")
	}
	if _, err := g.AddEdge("missing", a, "E", nil); err == nil {
		t.Error("edge from missing node accepted")
	}
	b := g.AddNode("Y", nil)
	id, err := g.AddEdge(a, b, "E", Properties{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edge(id)
	if e.Src != a || e.Tgt != b || e.Label != "E" || e.Props["k"] != "v" {
		t.Errorf("edge fields wrong: %+v", e)
	}
}

func TestPropsAreCopiedAtBoundaries(t *testing.T) {
	g := New()
	props := Properties{"k": "v"}
	a := g.AddNode("X", props)
	props["k"] = "mutated"
	if g.Node(a).Props["k"] != "v" {
		t.Error("AddNode aliased the caller's map")
	}
}

func TestSetAndDeleteProp(t *testing.T) {
	g := New()
	a := g.AddNode("X", nil)
	b := g.AddNode("Y", nil)
	e, err := g.AddEdge(a, b, "E", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetProp(a, "k", "v"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetProp(e, "ek", "ev"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetProp("nope", "k", "v"); err == nil {
		t.Error("SetProp on missing element accepted")
	}
	if g.Node(a).Props["k"] != "v" || g.Edge(e).Props["ek"] != "ev" {
		t.Error("props not set")
	}
	g.DeleteProp(a, "k")
	g.DeleteProp(e, "ek")
	if len(g.Node(a).Props) != 0 || len(g.Edge(e).Props) != 0 {
		t.Error("props not deleted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New()
	a := g.AddNode("X", Properties{"k": "v"})
	b := g.AddNode("Y", nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if err := c.SetProp(a, "k", "changed"); err != nil {
		t.Fatal(err)
	}
	c.AddNode("Z", nil)
	if g.Node(a).Props["k"] != "v" {
		t.Error("clone shares property maps")
	}
	if g.NumNodes() != 2 {
		t.Error("clone shares node list")
	}
}

func TestRemoveNodeCascades(t *testing.T) {
	g := New()
	a := g.AddNode("X", nil)
	b := g.AddNode("Y", nil)
	c := g.AddNode("Z", nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	e2, err := g.AddEdge(b, c, "E", nil)
	if err != nil {
		t.Fatal(err)
	}
	g.RemoveNode(a)
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("after remove: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Edge(e2) == nil {
		t.Error("unrelated edge removed")
	}
	g.RemoveEdge(e2)
	if g.NumEdges() != 0 {
		t.Error("edge not removed")
	}
	g.RemoveEdge("nonexistent") // must not panic
}

func TestDegreeAndIncidence(t *testing.T) {
	g := New()
	a := g.AddNode("X", nil)
	b := g.AddNode("Y", nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(a, a, "Self", nil); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(a); d != 3 { // out to b, self counts twice
		t.Errorf("degree(a) = %d, want 3", d)
	}
	if len(g.OutEdges(a)) != 2 || len(g.InEdges(b)) != 1 {
		t.Error("incidence lists wrong")
	}
}

func TestInsertionOrderIsStable(t *testing.T) {
	g := New()
	want := []string{"C", "A", "B"}
	for _, l := range want {
		g.AddNode(l, nil)
	}
	for i, n := range g.Nodes() {
		if n.Label != want[i] {
			t.Fatalf("order violated at %d: %s", i, n.Label)
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := New()
	a := g.AddNode("X", Properties{"b": "2", "a": "1"})
	b := g.AddNode("Y", nil)
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if !strings.Contains(s, `a="1", b="2"`) {
		t.Errorf("props not sorted in rendering:\n%s", s)
	}
	if !strings.Contains(s, "-E->") {
		t.Errorf("edge missing in rendering:\n%s", s)
	}
}
