package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestWLPartitionEquivalence: the integer refinement must induce
// exactly the colour partition the frozen string refinement induces —
// two nodes share an interned colour iff they share a legacy colour.
// This is the property the matching engines rely on (colour classes
// prune candidate pairs), so it pins the rewrite to the reference
// implementation without fixing the colour values themselves.
func TestWLPartitionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 30; trial++ {
		nodes := 2 + rng.Intn(40)
		g := randomGraph(rng, nodes, rng.Intn(3*nodes))
		for rounds := 0; rounds <= 4; rounds++ {
			legacy := wlColorsLegacy(g, rounds)
			interned := WLColors(g, rounds)
			if len(legacy) != len(interned) {
				t.Fatalf("trial %d rounds %d: %d legacy colours vs %d interned", trial, rounds, len(legacy), len(interned))
			}
			// Equal partition: the (legacy, interned) pairing must be a
			// bijection between colour classes.
			l2i := map[string]string{}
			i2l := map[string]string{}
			for id, lc := range legacy {
				ic := interned[id]
				if prev, ok := l2i[lc]; ok && prev != ic {
					t.Fatalf("trial %d rounds %d: legacy colour %s split across interned colours %s and %s", trial, rounds, lc, prev, ic)
				}
				if prev, ok := i2l[ic]; ok && prev != lc {
					t.Fatalf("trial %d rounds %d: interned colour %s merges legacy colours %s and %s", trial, rounds, ic, prev, lc)
				}
				l2i[lc] = ic
				i2l[ic] = lc
			}
		}
	}
}

// TestWLColorsProcessStable: colours are pure arithmetic over labels
// and structure, so rebuilding the same graph must reproduce them
// exactly — the regression store sorts Normalize output by these
// colours across process boundaries.
func TestWLColorsProcessStable(t *testing.T) {
	build := func() *Graph {
		rng := rand.New(rand.NewSource(7))
		return randomGraph(rng, 20, 35)
	}
	a, b := WLColors(build(), CanonRounds), WLColors(build(), CanonRounds)
	if len(a) != len(b) {
		t.Fatalf("colour counts differ: %d vs %d", len(a), len(b))
	}
	for id, c := range a {
		if b[id] != c {
			t.Errorf("colour of %s differs across identical builds: %s vs %s", id, c, b[id])
		}
	}
}

// TestMemoizedFingerprintAllocFree: after the first computation,
// serving the fingerprint and the canonical colours from the cache
// must not allocate — the pipeline fingerprints every trial graph many
// times and the cache hit is its hottest path.
func TestMemoizedFingerprintAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomGraph(rng, 64, 128)
	want := ShapeFingerprint(g)
	if allocs := testing.AllocsPerRun(100, func() {
		if got := g.Fingerprint(); got != want {
			t.Fatalf("fingerprint changed: %s vs %s", got, want)
		}
	}); allocs != 0 {
		t.Errorf("memoized Fingerprint allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWLRefineWarmAllocFree: a full refinement with a warm pooled
// workspace performs zero heap allocations, so even cache-missing
// fingerprints stay off the allocator's hot path.
func TestWLRefineWarmAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(rng, 64, 128)
	ws := wlGet()
	wlRefine(g, CanonRounds, ws) // warm the workspace for this size
	if allocs := testing.AllocsPerRun(100, func() {
		wlRefine(g, CanonRounds, ws)
	}); allocs != 0 {
		t.Errorf("warm wlRefine allocates %.1f objects/op, want 0", allocs)
	}
	wlPut(ws)
}

// TestFingerprintMatchesLegacyPartitionOnClasses: graphs the legacy
// refinement separates must stay separated, and isomorphic renamings
// must stay fused — spot-checked over a small corpus of structural
// variants.
func TestFingerprintMatchesLegacyPartitionOnClasses(t *testing.T) {
	mk := func(mutate func(g *Graph)) *Graph {
		g := New()
		a := g.AddNode("P", nil)
		b := g.AddNode("F", nil)
		c := g.AddNode("S", nil)
		if _, err := g.AddEdge(a, b, "Used", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g.AddEdge(b, c, "WasGeneratedBy", nil); err != nil {
			t.Fatal(err)
		}
		if mutate != nil {
			mutate(g)
		}
		return g
	}
	base := mk(nil)
	same := mk(nil)
	if ShapeFingerprint(base) != ShapeFingerprint(same) {
		t.Error("identical graphs fingerprint differently")
	}
	variants := []func(*Graph){
		func(g *Graph) { g.AddNode("P", nil) },
		func(g *Graph) { g.Node("n2").Label = "X"; g.invalidateCanon() },
		func(g *Graph) {
			if _, err := g.AddEdge("n3", "n1", "Used", nil); err != nil {
				t.Fatal(err)
			}
		},
	}
	for i, mutate := range variants {
		v := mk(mutate)
		if ShapeFingerprint(base) == ShapeFingerprint(v) {
			t.Errorf("variant %d fingerprints equal to base %s", i, fmt.Sprint(ShapeFingerprint(base)))
		}
	}
}
