package oskernel

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"
)

// TestVFSInvariantsUnderRandomOps drives a random sequence of file
// operations and then checks core VFS invariants:
//
//   - every dentry resolves to a live inode;
//   - every file inode's Nlink equals its dentry count;
//   - no inode with Nlink <= 0 survives in the inode table (except
//     pipes, which live as long as their descriptors).
func TestVFSInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := New()
		p, err := k.Launch("/usr/bin/bench", nil, Cred{UID: 1000, EUID: 1000, GID: 1000, EGID: 1000})
		if err != nil {
			return false
		}
		names := []string{"/stage/a", "/stage/b", "/stage/c", "/stage/d"}
		var fds []int
		for op := 0; op < 60; op++ {
			name := names[rng.Intn(len(names))]
			other := names[rng.Intn(len(names))]
			switch rng.Intn(8) {
			case 0:
				if fd, errno := k.Open(p, name, OCreat|ORdwr); errno == OK {
					fds = append(fds, int(fd))
				}
			case 1:
				k.Unlink(p, name)
			case 2:
				k.Link(p, name, other)
			case 3:
				k.Rename(p, name, other)
			case 4:
				if len(fds) > 0 {
					i := rng.Intn(len(fds))
					k.Close(p, fds[i])
					fds = append(fds[:i], fds[i+1:]...)
				}
			case 5:
				if len(fds) > 0 {
					k.Write(p, fds[rng.Intn(len(fds))], int64(rng.Intn(100)))
				}
			case 6:
				k.Symlink(p, name, other)
			case 7:
				k.Truncate(p, name, int64(rng.Intn(10)))
			}
		}
		return vfsInvariantsHold(t, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// vfsInvariantsHold checks the documented invariants directly against
// the internal tables (white-box: same package).
func vfsInvariantsHold(t *testing.T, k *Kernel) bool {
	t.Helper()
	counts := map[uint64]int{}
	for path, id := range k.vfs.dentries {
		ino, ok := k.vfs.inodes[id]
		if !ok {
			t.Logf("dangling dentry %s -> %d", path, id)
			return false
		}
		counts[ino.ID]++
	}
	for id, ino := range k.vfs.inodes {
		if ino.Type == TypePipe {
			continue // pipes have no dentries
		}
		if ino.Type == TypeDir {
			continue // directories are created once, never unlinked here
		}
		if ino.Nlink != counts[id] {
			t.Logf("inode %d (%s): nlink=%d dentries=%d", id, ino.Type, ino.Nlink, counts[id])
			return false
		}
		if ino.Nlink <= 0 {
			t.Logf("inode %d survives with nlink=%d", id, ino.Nlink)
			return false
		}
	}
	return true
}

// TestEventStreamDeterminism: two kernels driven identically produce
// identical event streams (the basis of trial-to-trial structural
// stability).
func TestEventStreamDeterminism(t *testing.T) {
	run := func() ([]AuditEvent, []LibcEvent, []LSMEvent) {
		k := New()
		tap := &TapBuffer{}
		k.Register(tap)
		p, err := k.Launch("/usr/bin/bench", []string{"x"}, Cred{UID: 1000, EUID: 1000})
		if err != nil {
			t.Fatal(err)
		}
		fd, _ := k.Open(p, "/stage/f", OCreat|ORdwr)
		k.Write(p, int(fd), 10)
		k.Rename(p, "/stage/f", "/stage/g")
		k.Exit(p, 0)
		return tap.AuditEvents, tap.LibcEvents, tap.LSMEvents
	}
	a1, l1, s1 := run()
	a2, l2, s2 := run()
	if len(a1) != len(a2) || len(l1) != len(l2) || len(s1) != len(s2) {
		t.Fatal("event counts differ between identical runs")
	}
	for i := range a1 {
		x, y := a1[i], a2[i]
		if x.Syscall != y.Syscall || x.Exit != y.Exit || x.PID != y.PID {
			t.Errorf("audit event %d differs: %+v vs %+v", i, a1[i], a2[i])
		}
	}
	for i := range s1 {
		if s1[i].Hook != s2[i].Hook || s1[i].Inode != s2[i].Inode {
			t.Errorf("lsm event %d differs", i)
		}
	}
}

// TestInodeNumbersStableAcrossKernels: fresh kernels allocate the same
// inode numbers for the same operations, which is what lets non-volatile
// properties match between foreground and background runs.
func TestInodeNumbersStableAcrossKernels(t *testing.T) {
	get := func() uint64 {
		k := New()
		p, err := k.Launch("/usr/bin/bench", nil, Cred{UID: 1000, EUID: 1000})
		if err != nil {
			t.Fatal(err)
		}
		if _, errno := k.Creat(p, "/stage/x"+strconv.Itoa(1)); errno != OK {
			t.Fatal(errno)
		}
		ino, _ := k.Lookup("/stage/x1")
		return ino.ID
	}
	if get() != get() {
		t.Error("inode allocation not deterministic")
	}
}
