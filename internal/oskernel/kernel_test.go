package oskernel

import (
	"testing"
)

// launch boots a kernel with a tap and an unprivileged benchmark process.
func launch(t *testing.T) (*Kernel, *Process, *TapBuffer) {
	t.Helper()
	k := New()
	tap := &TapBuffer{}
	k.Register(tap)
	cred := Cred{UID: 1000, EUID: 1000, SUID: 1000, GID: 1000, EGID: 1000, SGID: 1000}
	p, err := k.Launch("/usr/bin/bench", []string{"test"}, cred)
	if err != nil {
		t.Fatal(err)
	}
	return k, p, tap
}

func lastAudit(tap *TapBuffer) AuditEvent {
	return tap.AuditEvents[len(tap.AuditEvents)-1]
}

func TestOpenCreatesAndOpensFiles(t *testing.T) {
	k, p, _ := launch(t)
	// Opening a missing file without O_CREAT fails.
	ret, errno := k.Open(p, "/stage/missing.txt", ORdonly)
	if errno != ENOENT || ret != -1 {
		t.Errorf("open missing: ret=%d errno=%v", ret, errno)
	}
	// Creating works and yields a usable fd.
	ret, errno = k.Open(p, "/stage/a.txt", OCreat|OWronly)
	if errno != OK || ret < 3 {
		t.Fatalf("create: ret=%d errno=%v", ret, errno)
	}
	ino, ok := p.FD(int(ret))
	if !ok || ino.Type != TypeFile {
		t.Fatal("fd not installed")
	}
	if ino.UID != 1000 {
		t.Errorf("created file owned by %d", ino.UID)
	}
}

func TestOpenPermissionChecks(t *testing.T) {
	k, p, tap := launch(t)
	// /etc/passwd is root-owned 0644: read ok, write denied.
	if _, errno := k.Open(p, "/etc/passwd", ORdonly); errno != OK {
		t.Errorf("read open of /etc/passwd: %v", errno)
	}
	before := len(tap.LSMEvents)
	ret, errno := k.Open(p, "/etc/passwd", OWronly)
	if errno != EACCES || ret != -1 {
		t.Errorf("write open of /etc/passwd: ret=%d errno=%v", ret, errno)
	}
	// The denied attempt must still fire an LSM hook (Allowed=false).
	denied := false
	for _, ev := range tap.LSMEvents[before:] {
		if ev.Hook == HookFileOpen && !ev.Allowed {
			denied = true
		}
	}
	if !denied {
		t.Error("denied open fired no LSM hook")
	}
	// And an audit record with Success=false.
	if ev := lastAudit(tap); ev.Success || ev.Syscall != "open" {
		t.Errorf("audit record for failed open: %+v", ev)
	}
}

func TestCloseAndBadFD(t *testing.T) {
	k, p, _ := launch(t)
	ret, _ := k.Open(p, "/stage/a.txt", OCreat|ORdwr)
	if _, errno := k.Close(p, int(ret)); errno != OK {
		t.Fatalf("close: %v", errno)
	}
	if _, errno := k.Close(p, int(ret)); errno != EBADF {
		t.Errorf("double close: %v, want EBADF", errno)
	}
	if _, errno := k.Read(p, 99, 10); errno != EBADF {
		t.Errorf("read bad fd: %v", errno)
	}
}

func TestDupSharesDescription(t *testing.T) {
	k, p, tap := launch(t)
	fd, _ := k.Open(p, "/stage/a.txt", OCreat|ORdwr)
	before := len(tap.LSMEvents)
	nfd, errno := k.Dup(p, int(fd))
	if errno != OK {
		t.Fatalf("dup: %v", errno)
	}
	i1, _ := p.FD(int(fd))
	i2, _ := p.FD(int(nfd))
	if i1 != i2 {
		t.Error("dup does not share the open file description")
	}
	// dup is fd-table-only: no LSM hook fires.
	if len(tap.LSMEvents) != before {
		t.Error("dup fired an LSM hook")
	}
	// dup2 onto an existing fd replaces it.
	fd2, _ := k.Open(p, "/stage/b.txt", OCreat|ORdwr)
	if _, errno := k.Dup2(p, int(fd), int(fd2)); errno != OK {
		t.Fatalf("dup2: %v", errno)
	}
	i3, _ := p.FD(int(fd2))
	if i3 != i1 {
		t.Error("dup2 did not replace the target fd")
	}
}

func TestWriteBumpsVersion(t *testing.T) {
	k, p, _ := launch(t)
	fd, _ := k.Open(p, "/stage/a.txt", OCreat|ORdwr)
	ino, _ := p.FD(int(fd))
	v0 := ino.Version
	if _, errno := k.Write(p, int(fd), 10); errno != OK {
		t.Fatalf("write: %v", errno)
	}
	if ino.Version != v0+1 || ino.Size != 10 {
		t.Errorf("version=%d size=%d", ino.Version, ino.Size)
	}
	n, errno := k.Read(p, int(fd), 100)
	if errno != OK || n != 10 {
		t.Errorf("read clamped: n=%d errno=%v", n, errno)
	}
}

func TestLinkSemantics(t *testing.T) {
	k, p, _ := launch(t)
	k.MkFile("/stage/orig.txt", 1000, 0o644)
	if _, errno := k.Link(p, "/stage/orig.txt", "/stage/hard.txt"); errno != OK {
		t.Fatalf("link: %v", errno)
	}
	i1, _ := k.Lookup("/stage/orig.txt")
	i2, _ := k.Lookup("/stage/hard.txt")
	if i1 != i2 {
		t.Error("hard link resolves to a different inode")
	}
	if i1.Nlink != 2 {
		t.Errorf("nlink = %d, want 2", i1.Nlink)
	}
	// Linking onto an existing name fails.
	if _, errno := k.Link(p, "/stage/orig.txt", "/stage/hard.txt"); errno != EEXIST {
		t.Errorf("link onto existing: %v", errno)
	}
	// Unlink one name: inode survives.
	if _, errno := k.Unlink(p, "/stage/orig.txt"); errno != OK {
		t.Fatalf("unlink: %v", errno)
	}
	if _, ok := k.Lookup("/stage/orig.txt"); ok {
		t.Error("unlinked name still resolves")
	}
	if _, ok := k.Lookup("/stage/hard.txt"); !ok {
		t.Error("surviving link lost")
	}
}

func TestSymlinkResolution(t *testing.T) {
	k, p, _ := launch(t)
	k.MkFile("/stage/target.txt", 1000, 0o644)
	if _, errno := k.Symlink(p, "/stage/target.txt", "/stage/soft.txt"); errno != OK {
		t.Fatalf("symlink: %v", errno)
	}
	ino, ok := k.Lookup("/stage/soft.txt")
	if !ok || ino.Type != TypeFile {
		t.Error("symlink did not resolve to target file")
	}
	// Opening through the symlink reaches the target.
	fd, errno := k.Open(p, "/stage/soft.txt", ORdonly)
	if errno != OK {
		t.Fatalf("open via symlink: %v", errno)
	}
	got, _ := p.FD(int(fd))
	want, _ := k.Lookup("/stage/target.txt")
	if got != want {
		t.Error("open via symlink opened the wrong inode")
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	k, p, _ := launch(t)
	k.MkFile("/stage/a.txt", 1000, 0o644)
	k.MkFile("/stage/b.txt", 1000, 0o644)
	aIno, _ := k.Lookup("/stage/a.txt")
	if _, errno := k.Rename(p, "/stage/a.txt", "/stage/b.txt"); errno != OK {
		t.Fatalf("rename: %v", errno)
	}
	if _, ok := k.Lookup("/stage/a.txt"); ok {
		t.Error("old name survives rename")
	}
	got, _ := k.Lookup("/stage/b.txt")
	if got != aIno {
		t.Error("target does not resolve to the renamed inode")
	}
}

func TestRenameDeniedOnPrivilegedTarget(t *testing.T) {
	k, p, tap := launch(t)
	k.MkFile("/stage/evil.txt", 1000, 0o644)
	ret, errno := k.Rename(p, "/stage/evil.txt", "/etc/passwd")
	if errno != EACCES || ret != -1 {
		t.Fatalf("rename onto /etc/passwd: ret=%d errno=%v", ret, errno)
	}
	// The libc tap must still carry the attempt (what OPUS sees).
	found := false
	for _, ev := range tap.LibcEvents {
		if ev.Call == "rename" && ev.Ret == -1 && ev.Errno == EACCES {
			found = true
		}
	}
	if !found {
		t.Error("failed rename missing from libc tap")
	}
	// /etc/passwd unharmed.
	if ino, ok := k.Lookup("/etc/passwd"); !ok || ino.UID != 0 {
		t.Error("/etc/passwd was clobbered")
	}
}

func TestForkCopiesDescriptors(t *testing.T) {
	k, p, _ := launch(t)
	fd, _ := k.Open(p, "/stage/a.txt", OCreat|ORdwr)
	child, pid, errno := k.Fork(p)
	if errno != OK || pid != int64(child.PID) {
		t.Fatalf("fork: %v", errno)
	}
	ci, ok := child.FD(int(fd))
	pi, _ := p.FD(int(fd))
	if !ok || ci != pi {
		t.Error("child fd table not copied")
	}
	if child.Cred != p.Cred || child.PPID != p.PID {
		t.Error("child identity wrong")
	}
}

// TestVforkAuditOrdering reproduces the Section 4.2 quirk: the parent's
// vfork audit record must be delivered after the child's records.
func TestVforkAuditOrdering(t *testing.T) {
	k, p, tap := launch(t)
	n := len(tap.AuditEvents)
	child, _, errno := k.Vfork(p)
	if errno != OK {
		t.Fatal(errno)
	}
	// Parent suspended: the vfork record is deferred.
	if len(tap.AuditEvents) != n {
		t.Fatalf("vfork record emitted while parent suspended (%d new events)",
			len(tap.AuditEvents)-n)
	}
	k.Exit(child, 0)
	var calls []string
	for _, ev := range tap.AuditEvents[n:] {
		calls = append(calls, ev.Syscall)
	}
	if len(calls) < 2 || calls[0] != "exit_group" || calls[len(calls)-1] != "vfork" {
		t.Errorf("audit order = %v, want child exit_group before parent vfork", calls)
	}
}

func TestCloneBypassesLibc(t *testing.T) {
	k, p, tap := launch(t)
	n := len(tap.LibcEvents)
	child, _, errno := k.Clone(p)
	if errno != OK {
		t.Fatal(errno)
	}
	if len(tap.LibcEvents) != n {
		t.Error("raw clone produced a libc event")
	}
	// The clone child's own calls are also invisible to libc.
	k.Exit(child, 0)
	for _, ev := range tap.LibcEvents[n:] {
		if ev.PID == child.PID {
			t.Errorf("clone child leaked libc event %s", ev.Call)
		}
	}
	// But audit and LSM see everything.
	seen := false
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "clone" {
			seen = true
		}
	}
	if !seen {
		t.Error("clone missing from audit tap")
	}
}

func TestKillPermissions(t *testing.T) {
	k, p, _ := launch(t)
	child, _, _ := k.Fork(p)
	if _, errno := k.Kill(p, child.PID, 9); errno != OK {
		t.Fatalf("kill own child: %v", errno)
	}
	if child.Alive {
		t.Error("victim still alive")
	}
	if _, errno := k.Kill(p, child.PID, 9); errno != ESRCH {
		t.Errorf("kill dead process: %v", errno)
	}
	if _, errno := k.Kill(p, 1, 9); errno != EPERM {
		t.Errorf("kill init as uid 1000: %v, want EPERM", errno)
	}
}

func TestSetidChangeDetection(t *testing.T) {
	k := New()
	tap := &TapBuffer{}
	k.Register(tap)
	p, err := k.Launch("/usr/bin/bench", nil, Cred{}) // root
	if err != nil {
		t.Fatal(err)
	}
	// Setting ids to their current value is a no-op: changed=0.
	if _, errno := k.Setresgid(p, 0, 0, 0); errno != OK {
		t.Fatal(errno)
	}
	ev := lastAuditSyscall(tap, "setresgid")
	if !contains(ev.Args, "changed=0") {
		t.Errorf("no-op setresgid args = %v", ev.Args)
	}
	// A real change flips the flag.
	if _, errno := k.Setresuid(p, 1001, 1001, 1001); errno != OK {
		t.Fatal(errno)
	}
	ev = lastAuditSyscall(tap, "setresuid")
	if !contains(ev.Args, "changed=1") {
		t.Errorf("real setresuid args = %v", ev.Args)
	}
	if p.Cred.UID != 1001 || p.Cred.EUID != 1001 || p.Cred.SUID != 1001 {
		t.Errorf("cred = %+v", p.Cred)
	}
}

func TestSetuidUnprivilegedRestrictions(t *testing.T) {
	k, p, _ := launch(t) // uid 1000
	if _, errno := k.Setuid(p, 0); errno != EPERM {
		t.Errorf("unprivileged setuid 0: %v, want EPERM", errno)
	}
	if _, errno := k.Setuid(p, 1000); errno != OK {
		t.Errorf("setuid to own uid: %v", errno)
	}
}

func TestPipesAndTee(t *testing.T) {
	k, p, _ := launch(t)
	rd, wr, errno := k.Pipe(p)
	if errno != OK {
		t.Fatal(errno)
	}
	ri, _ := p.FD(int(rd))
	wi, _ := p.FD(int(wr))
	if ri != wi || ri.Type != TypePipe {
		t.Error("pipe ends disagree")
	}
	rd2, wr2, _ := k.Pipe2(p)
	if _, errno := k.Write(p, int(wr), 8); errno != OK {
		t.Fatal(errno)
	}
	n, errno := k.Tee(p, int(rd), int(wr2), 8)
	if errno != OK || n != 8 {
		t.Errorf("tee: n=%d errno=%v", n, errno)
	}
	out, _ := p.FD(int(rd2))
	if out.Size != 8 {
		t.Errorf("tee target size = %d", out.Size)
	}
	// tee on a regular file is EINVAL.
	ffd, _ := k.Open(p, "/stage/f.txt", OCreat|ORdwr)
	if _, errno := k.Tee(p, int(ffd), int(wr2), 1); errno != EINVAL {
		t.Errorf("tee on file: %v", errno)
	}
}

func TestChmodChownPermissions(t *testing.T) {
	k, p, _ := launch(t)
	k.MkFile("/stage/mine.txt", 1000, 0o644)
	if _, errno := k.Chmod(p, "/stage/mine.txt", 0o600); errno != OK {
		t.Errorf("chmod own file: %v", errno)
	}
	ino, _ := k.Lookup("/stage/mine.txt")
	if ino.Mode != 0o600 {
		t.Errorf("mode = %o", ino.Mode)
	}
	if _, errno := k.Chmod(p, "/etc/passwd", 0o777); errno != EPERM {
		t.Errorf("chmod other's file: %v", errno)
	}
	if _, errno := k.Chown(p, "/stage/mine.txt", 1001, 1001); errno != EPERM {
		t.Errorf("chown as non-root: %v", errno)
	}
	// Root can chown.
	root, err := k.Launch("/usr/bin/bench", nil, Cred{})
	if err != nil {
		t.Fatal(err)
	}
	if _, errno := k.Chown(root, "/stage/mine.txt", 1001, 1001); errno != OK {
		t.Errorf("chown as root: %v", errno)
	}
	if ino.UID != 1001 {
		t.Errorf("uid = %d", ino.UID)
	}
}

func TestTruncate(t *testing.T) {
	k, p, _ := launch(t)
	k.MkFile("/stage/t.txt", 1000, 0o644)
	if _, errno := k.Truncate(p, "/stage/t.txt", 4); errno != OK {
		t.Fatal(errno)
	}
	ino, _ := k.Lookup("/stage/t.txt")
	if ino.Size != 4 {
		t.Errorf("size = %d", ino.Size)
	}
	if _, errno := k.Truncate(p, "/etc/passwd", 0); errno != EACCES {
		t.Errorf("truncate /etc/passwd: %v", errno)
	}
	if _, errno := k.Truncate(p, "/stage/none", 0); errno != ENOENT {
		t.Errorf("truncate missing: %v", errno)
	}
}

func TestMknodAndUnlinkat(t *testing.T) {
	k, p, _ := launch(t)
	if _, errno := k.Mknod(p, "/stage/dev0", 0o600); errno != OK {
		t.Fatal(errno)
	}
	ino, _ := k.Lookup("/stage/dev0")
	if ino.Type != TypeDevice {
		t.Errorf("type = %v", ino.Type)
	}
	if _, errno := k.Mknodat(p, "/stage/dev0", 0o600); errno != EEXIST {
		t.Errorf("mknodat existing: %v", errno)
	}
	if _, errno := k.Unlinkat(p, "/stage/dev0"); errno != OK {
		t.Fatal(errno)
	}
	if _, ok := k.Lookup("/stage/dev0"); ok {
		t.Error("device survives unlinkat")
	}
}

func TestExecveEventStream(t *testing.T) {
	k, p, tap := launch(t)
	n := len(tap.AuditEvents)
	if _, errno := k.Execve(p, "/usr/bin/helper", []string{"helper"}); errno != OK {
		t.Fatal(errno)
	}
	if p.Exe != "/usr/bin/helper" || p.Comm != "helper" {
		t.Errorf("image not swapped: %s %s", p.Exe, p.Comm)
	}
	// Loader activity follows: execve + opens + mmaps.
	var calls []string
	for _, ev := range tap.AuditEvents[n:] {
		calls = append(calls, ev.Syscall)
	}
	if calls[0] != "execve" || len(calls) < 7 {
		t.Errorf("execve stream = %v", calls)
	}
	if _, errno := k.Execve(p, "/no/such/file", nil); errno != ENOENT {
		t.Errorf("execve missing file: %v", errno)
	}
}

func TestUnregisterStopsDelivery(t *testing.T) {
	k, p, tap := launch(t)
	k.Unregister(tap)
	n := len(tap.AuditEvents)
	if _, errno := k.Open(p, "/stage/x.txt", OCreat|ORdwr); errno != OK {
		t.Fatal(errno)
	}
	if len(tap.AuditEvents) != n {
		t.Error("events delivered after unregister")
	}
}

func TestClockIsMonotonic(t *testing.T) {
	k := New()
	t1 := k.Now()
	t2 := k.Now()
	if !t2.After(t1) {
		t.Error("clock not monotonic")
	}
}

func lastAuditSyscall(tap *TapBuffer, name string) AuditEvent {
	for i := len(tap.AuditEvents) - 1; i >= 0; i-- {
		if tap.AuditEvents[i].Syscall == name {
			return tap.AuditEvents[i]
		}
	}
	return AuditEvent{}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
