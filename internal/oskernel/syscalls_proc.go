package oskernel

import "strconv"

// Syscalls in this file cover Table 1 groups 2 (processes), 3
// (permissions) and 4 (pipes).

// Fork creates a child process sharing the parent's open files (the
// descriptions are duplicated, not shared offsets — close enough for
// provenance purposes).
func (k *Kernel) Fork(p *Process) (*Process, int64, Errno) {
	return k.forkInternal(p, "fork", false)
}

// Vfork creates a child and suspends the parent until the child exits.
// Linux Audit reports syscalls on exit, so the parent's vfork record is
// only seen after the child's own records (Section 4.2: SPADE shows the
// vforked child as a disconnected node).
func (k *Kernel) Vfork(p *Process) (*Process, int64, Errno) {
	return k.forkInternal(p, "vfork", true)
}

// Clone creates a child via the raw clone(2) interface. glibc's fork
// wrapper is not used, so the libc tap stays silent (OPUS does not
// observe clone — Table 2).
func (k *Kernel) Clone(p *Process) (*Process, int64, Errno) {
	child := k.spawnChild(p)
	child.noLibc = true
	k.emitLSM(p, HookTaskCreate, "", nil, "", true, "clone pid="+strconv.Itoa(child.PID))
	k.emitAudit(p, "clone", nil, int64(child.PID), OK, nil)
	// No libc event: raw syscall.
	return child, int64(child.PID), OK
}

func (k *Kernel) forkInternal(p *Process, callName string, vfork bool) (*Process, int64, Errno) {
	child := k.spawnChild(p)
	k.emitLSM(p, HookTaskCreate, "", nil, "", true, callName+" pid="+strconv.Itoa(child.PID))
	if vfork {
		// Parent suspends: defer its audit records (including this one)
		// until the child exits.
		p.vforkParent = child
		k.emitAudit(p, callName, nil, int64(child.PID), OK, nil)
		k.emitLibc(p, callName, nil, int64(child.PID), OK)
	} else {
		k.emitAudit(p, callName, nil, int64(child.PID), OK, nil)
		k.emitLibc(p, callName, nil, int64(child.PID), OK)
	}
	return child, int64(child.PID), OK
}

func (k *Kernel) spawnChild(p *Process) *Process {
	child := k.newProcess(p.PID, p.Cred, p.Comm, p.Exe, p.Argv, p.Env)
	for fd, d := range p.fds {
		d.refs++
		child.fds[fd] = d
	}
	child.nextFD = p.nextFD
	return child
}

// Execve replaces the process image.
func (k *Kernel) Execve(p *Process, exe string, argv []string) (int64, Errno) {
	if errno := k.doExecve(p, exe, argv); errno != OK {
		return -1, errno
	}
	return 0, OK
}

// Exit terminates a process. A process always exits implicitly at the
// end of its program, so foreground and background graphs both contain
// it — the exit benchmark is empty for every tool (LP in Table 2).
func (k *Kernel) Exit(p *Process, code int) {
	p.Alive = false
	k.emitLSM(p, HookTaskExit, "", nil, "", true, strconv.Itoa(code))
	k.emitAudit(p, "exit_group", []string{strconv.Itoa(code)}, int64(code), OK, nil)
	k.emitLibc(p, "exit", []string{strconv.Itoa(code)}, int64(code), OK)
	// Release any vfork parent waiting on this child.
	for _, proc := range k.procs {
		if proc.vforkParent == p {
			k.flushVfork(proc)
		}
	}
}

// Kill delivers a signal. The victim terminates without running its own
// exit path (LP: the killed process's absence cannot be diffed).
func (k *Kernel) Kill(p *Process, pid, sig int) (int64, Errno) {
	args := []string{strconv.Itoa(pid), strconv.Itoa(sig)}
	victim, ok := k.procs[pid]
	if !ok || !victim.Alive {
		k.emitAudit(p, "kill", args, -1, ESRCH, nil)
		k.emitLibc(p, "kill", args, -1, ESRCH)
		return -1, ESRCH
	}
	if p.Cred.EUID != 0 && p.Cred.EUID != victim.Cred.UID {
		k.emitLSM(p, HookTaskKill, "", nil, "", false, "sig="+strconv.Itoa(sig))
		k.emitAudit(p, "kill", args, -1, EPERM, nil)
		k.emitLibc(p, "kill", args, -1, EPERM)
		return -1, EPERM
	}
	victim.Alive = false
	k.emitLSM(p, HookTaskKill, "", nil, "", true, "sig="+strconv.Itoa(sig))
	k.emitAudit(p, "kill", args, 0, OK, nil)
	k.emitLibc(p, "kill", args, 0, OK)
	return 0, OK
}

// Chmod changes a file mode by path.
func (k *Kernel) Chmod(p *Process, path string, mode uint32) (int64, Errno) {
	return k.chmodInternal(p, "chmod", path, mode)
}

// Fchmodat changes a file mode by path relative to a directory fd.
func (k *Kernel) Fchmodat(p *Process, path string, mode uint32) (int64, Errno) {
	return k.chmodInternal(p, "fchmodat", path, mode)
}

func (k *Kernel) chmodInternal(p *Process, callName, path string, mode uint32) (int64, Errno) {
	args := []string{path, strconv.FormatUint(uint64(mode), 8)}
	ino, ok := k.vfs.lookup(path)
	var errno Errno
	switch {
	case !ok:
		errno = ENOENT
	case p.Cred.EUID != 0 && p.Cred.EUID != ino.UID:
		k.emitLSM(p, HookInodeSetattr, "write", ino, path, false, "mode")
		errno = EPERM
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		ino.Mode = mode
		k.emitLSM(p, HookInodeSetattr, "write", ino, path, true, "mode="+strconv.FormatUint(uint64(mode), 8))
		ret = 0
		paths = []PathRecord{{Name: path, Inode: ino.ID, Mode: ino.Mode}}
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Fchmod changes a file mode by descriptor. From OPUS's perspective this
// is read/write-like activity on an already-open fd (NR in Table 2), so
// its libc record is tagged as an fd-only operation the recorder skips.
func (k *Kernel) Fchmod(p *Process, fd int, mode uint32) (int64, Errno) {
	args := []string{fdString(fd), strconv.FormatUint(uint64(mode), 8)}
	d, ok := p.fds[fd]
	if !ok {
		k.emitAudit(p, "fchmod", args, -1, EBADF, nil)
		k.emitLibc(p, "fchmod", args, -1, EBADF)
		return -1, EBADF
	}
	d.inode.Mode = mode
	k.emitLSM(p, HookInodeSetattr, "write", d.inode, d.path, true, "mode="+strconv.FormatUint(uint64(mode), 8))
	k.emitAudit(p, "fchmod", args, 0, OK, []PathRecord{{Name: d.path, Inode: d.inode.ID, Mode: d.inode.Mode}})
	k.emitLibc(p, "fchmod", args, 0, OK)
	return 0, OK
}

// Chown changes file ownership by path.
func (k *Kernel) Chown(p *Process, path string, uid, gid int) (int64, Errno) {
	return k.chownInternal(p, "chown", path, uid, gid)
}

// Fchownat changes ownership by path relative to a directory fd.
func (k *Kernel) Fchownat(p *Process, path string, uid, gid int) (int64, Errno) {
	return k.chownInternal(p, "fchownat", path, uid, gid)
}

func (k *Kernel) chownInternal(p *Process, callName, path string, uid, gid int) (int64, Errno) {
	args := []string{path, strconv.Itoa(uid), strconv.Itoa(gid)}
	ino, ok := k.vfs.lookup(path)
	var errno Errno
	switch {
	case !ok:
		errno = ENOENT
	case p.Cred.EUID != 0:
		k.emitLSM(p, HookInodeSetattr, "write", ino, path, false, "owner")
		errno = EPERM
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		ino.UID, ino.GID = uid, gid
		k.emitLSM(p, HookInodeSetattr, "write", ino, path, true,
			"owner="+strconv.Itoa(uid)+":"+strconv.Itoa(gid))
		ret = 0
		paths = []PathRecord{{Name: path, Inode: ino.ID, Mode: ino.Mode}}
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Fchown changes ownership by descriptor.
func (k *Kernel) Fchown(p *Process, fd int, uid, gid int) (int64, Errno) {
	args := []string{fdString(fd), strconv.Itoa(uid), strconv.Itoa(gid)}
	d, ok := p.fds[fd]
	if !ok {
		k.emitAudit(p, "fchown", args, -1, EBADF, nil)
		k.emitLibc(p, "fchown", args, -1, EBADF)
		return -1, EBADF
	}
	if p.Cred.EUID != 0 {
		k.emitLSM(p, HookInodeSetattr, "write", d.inode, d.path, false, "owner")
		k.emitAudit(p, "fchown", args, -1, EPERM, nil)
		k.emitLibc(p, "fchown", args, -1, EPERM)
		return -1, EPERM
	}
	d.inode.UID, d.inode.GID = uid, gid
	k.emitLSM(p, HookInodeSetattr, "write", d.inode, d.path, true,
		"owner="+strconv.Itoa(uid)+":"+strconv.Itoa(gid))
	k.emitAudit(p, "fchown", args, 0, OK, []PathRecord{{Name: d.path, Inode: d.inode.ID, Mode: d.inode.Mode}})
	k.emitLibc(p, "fchown", args, 0, OK)
	return 0, OK
}

// credChanged reports whether the id-change syscall actually modified
// the credential set. SPADE's baseline only monitors *changes* to these
// attributes (SC in Table 2): setting an id to its current value is
// invisible to it.
type credChange struct {
	changed bool
	detail  string
}

// Setuid sets the effective (and for root, real and saved) user id.
func (k *Kernel) Setuid(p *Process, uid int) (int64, Errno) {
	old := p.Cred
	if p.Cred.EUID != 0 && uid != p.Cred.UID && uid != p.Cred.SUID {
		return k.setidResult(p, "setuid", []string{strconv.Itoa(uid)}, EPERM, credChange{})
	}
	p.Cred.UID, p.Cred.EUID, p.Cred.SUID = uid, uid, uid
	ch := credChange{changed: old != p.Cred, detail: "uid=" + strconv.Itoa(uid)}
	return k.setidResult(p, "setuid", []string{strconv.Itoa(uid)}, OK, ch)
}

// Setreuid sets real and effective user ids.
func (k *Kernel) Setreuid(p *Process, ruid, euid int) (int64, Errno) {
	old := p.Cred
	if ruid >= 0 {
		p.Cred.UID = ruid
	}
	if euid >= 0 {
		p.Cred.EUID = euid
	}
	ch := credChange{changed: old != p.Cred, detail: "ruid=" + strconv.Itoa(ruid) + " euid=" + strconv.Itoa(euid)}
	return k.setidResult(p, "setreuid", []string{strconv.Itoa(ruid), strconv.Itoa(euid)}, OK, ch)
}

// Setresuid sets real, effective and saved user ids.
func (k *Kernel) Setresuid(p *Process, ruid, euid, suid int) (int64, Errno) {
	old := p.Cred
	if ruid >= 0 {
		p.Cred.UID = ruid
	}
	if euid >= 0 {
		p.Cred.EUID = euid
	}
	if suid >= 0 {
		p.Cred.SUID = suid
	}
	ch := credChange{changed: old != p.Cred,
		detail: "ruid=" + strconv.Itoa(ruid) + " euid=" + strconv.Itoa(euid) + " suid=" + strconv.Itoa(suid)}
	return k.setidResult(p, "setresuid", []string{strconv.Itoa(ruid), strconv.Itoa(euid), strconv.Itoa(suid)}, OK, ch)
}

// Setgid sets the group ids.
func (k *Kernel) Setgid(p *Process, gid int) (int64, Errno) {
	old := p.Cred
	p.Cred.GID, p.Cred.EGID, p.Cred.SGID = gid, gid, gid
	ch := credChange{changed: old != p.Cred, detail: "gid=" + strconv.Itoa(gid)}
	return k.setidResult(p, "setgid", []string{strconv.Itoa(gid)}, OK, ch)
}

// Setregid sets real and effective group ids.
func (k *Kernel) Setregid(p *Process, rgid, egid int) (int64, Errno) {
	old := p.Cred
	if rgid >= 0 {
		p.Cred.GID = rgid
	}
	if egid >= 0 {
		p.Cred.EGID = egid
	}
	ch := credChange{changed: old != p.Cred, detail: "rgid=" + strconv.Itoa(rgid) + " egid=" + strconv.Itoa(egid)}
	return k.setidResult(p, "setregid", []string{strconv.Itoa(rgid), strconv.Itoa(egid)}, OK, ch)
}

// Setresgid sets real, effective and saved group ids.
func (k *Kernel) Setresgid(p *Process, rgid, egid, sgid int) (int64, Errno) {
	old := p.Cred
	if rgid >= 0 {
		p.Cred.GID = rgid
	}
	if egid >= 0 {
		p.Cred.EGID = egid
	}
	if sgid >= 0 {
		p.Cred.SGID = sgid
	}
	ch := credChange{changed: old != p.Cred,
		detail: "rgid=" + strconv.Itoa(rgid) + " egid=" + strconv.Itoa(egid) + " sgid=" + strconv.Itoa(sgid)}
	return k.setidResult(p, "setresgid", []string{strconv.Itoa(rgid), strconv.Itoa(egid), strconv.Itoa(sgid)}, OK, ch)
}

func (k *Kernel) setidResult(p *Process, callName string, args []string, errno Errno, ch credChange) (int64, Errno) {
	hook := HookTaskFixSetuid
	if callName[3] == 'g' || callName[5] == 'g' { // set*gid
		hook = HookTaskFixSetgid
	}
	var ret int64
	if errno != OK {
		ret = -1
		k.emitLSM(p, hook, "", nil, "", false, ch.detail)
	} else {
		k.emitLSM(p, hook, "", nil, "", true, ch.detail)
	}
	// The audit record carries whether the credential set actually
	// changed; SPADE's baseline keys off this (SC note).
	auditArgs := append([]string{}, args...)
	if ch.changed {
		auditArgs = append(auditArgs, "changed=1")
	} else {
		auditArgs = append(auditArgs, "changed=0")
	}
	k.emitAudit(p, callName, auditArgs, ret, errno, nil)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Pipe creates a pipe and returns its two descriptors.
func (k *Kernel) Pipe(p *Process) (int64, int64, Errno) {
	return k.pipeInternal(p, "pipe")
}

// Pipe2 is pipe with flags.
func (k *Kernel) Pipe2(p *Process) (int64, int64, Errno) {
	return k.pipeInternal(p, "pipe2")
}

func (k *Kernel) pipeInternal(p *Process, callName string) (int64, int64, Errno) {
	ino := k.vfs.alloc(TypePipe, p.Cred.EUID, p.Cred.EGID, 0o600)
	ino.Nlink = 1
	rd := p.installFD(&filDesc{inode: ino, path: "pipe:[" + strconv.FormatUint(ino.ID, 10) + "]"})
	wr := p.installFD(&filDesc{inode: ino, path: "pipe:[" + strconv.FormatUint(ino.ID, 10) + "]"})
	k.emitLSM(p, HookPipeCreate, "", ino, "", true, "")
	k.emitAudit(p, callName, []string{fdString(rd), fdString(wr)}, 0, OK, nil)
	k.emitLibc(p, callName, []string{fdString(rd), fdString(wr)}, 0, OK)
	return int64(rd), int64(wr), OK
}

// Tee duplicates data between two pipes without consuming it. Only
// CamFlow's splice hook observes it (Table 2: SPADE and OPUS miss tee).
func (k *Kernel) Tee(p *Process, fdIn, fdOut int, n int64) (int64, Errno) {
	args := []string{fdString(fdIn), fdString(fdOut), strconv.FormatInt(n, 10)}
	din, okIn := p.fds[fdIn]
	dout, okOut := p.fds[fdOut]
	if !okIn || !okOut {
		k.emitAudit(p, "tee", args, -1, EBADF, nil)
		return -1, EBADF
	}
	if din.inode.Type != TypePipe || dout.inode.Type != TypePipe {
		k.emitAudit(p, "tee", args, -1, EINVAL, nil)
		return -1, EINVAL
	}
	dout.inode.Size += n
	dout.inode.Version++
	k.emitLSM2(p, HookPipeSplice, din.inode, din.path, dout.inode, dout.path, true, "tee")
	k.emitAudit(p, "tee", args, n, OK, nil)
	// glibc provides a tee wrapper but OPUS's interposition list does
	// not cover it; the libc tap stays silent to match Table 2.
	return n, OK
}
