package oskernel

import (
	"fmt"
	"strconv"
	"time"
)

// Cred is a process credential set (real, effective and saved ids, as
// the setres* family needs all three).
type Cred struct {
	UID, EUID, SUID int
	GID, EGID, SGID int
}

// filDesc is an open file description, shared between fds after dup or
// fork (as in the kernel: dup'd descriptors share offset and flags).
type filDesc struct {
	inode  *Inode
	path   string
	flags  int
	offset int64
	refs   int
}

// Open flags understood by the simulator.
const (
	ORdonly  = 0x0
	OWronly  = 0x1
	ORdwr    = 0x2
	OCreat   = 0x40
	OTrunc   = 0x200
	OAppend  = 0x400
	OCloexec = 0x80000
)

// Process is a simulated task.
type Process struct {
	PID    int
	PPID   int
	Cred   Cred
	Comm   string
	Exe    string
	Argv   []string
	Env    []string
	fds    map[int]*filDesc
	nextFD int
	Alive  bool
	// noLibc marks children created by raw clone(2): the interposition
	// runtime is never initialized in them, so the libc tap stays
	// silent for their calls (and OPUS is blind to them).
	noLibc bool
	// vforkParent, when non-nil, is a parent whose audit records are
	// deferred until this child exits (the Section 4.2 quirk).
	vforkPending []AuditEvent
	vforkParent  *Process
}

// Kernel is the simulated operating system.
type Kernel struct {
	vfs      *vfs
	procs    map[int]*Process
	nextPID  int
	clock    time.Time
	tick     time.Duration
	tracers  []Tracer
	seq      uint64
	initProc *Process
}

// New boots a kernel with an init process (PID 1) and a shell-like
// launcher process, and a populated /lib, /etc and /usr/bin.
func New() *Kernel {
	k := &Kernel{
		vfs:     newVFS(),
		procs:   make(map[int]*Process),
		nextPID: 1,
		clock:   time.Date(2019, 9, 24, 12, 0, 0, 0, time.UTC),
		tick:    time.Millisecond,
	}
	// Standard files the launcher and benchmarks reference.
	for _, f := range []struct {
		p    string
		mode uint32
		uid  int
	}{
		{"/lib/ld-linux.so", 0o755, 0},
		{"/lib/libc.so.6", 0o755, 0},
		{"/etc/passwd", 0o644, 0},
		{"/etc/ld.so.cache", 0o644, 0},
		{"/usr/bin/bench", 0o755, 0},
		{"/usr/bin/helper", 0o755, 0},
		{"/usr/bin/sh", 0o755, 0},
	} {
		ino := k.vfs.createFile(f.p, f.uid, 0, f.mode)
		ino.Size = 4096
	}
	k.initProc = k.newProcess(0, Cred{}, "init", "/usr/bin/sh", nil, nil)
	return k
}

// Register attaches a tracer; all subsequent events are delivered to it.
func (k *Kernel) Register(t Tracer) { k.tracers = append(k.tracers, t) }

// Unregister detaches a tracer.
func (k *Kernel) Unregister(t Tracer) {
	out := k.tracers[:0]
	for _, x := range k.tracers {
		if x != t {
			out = append(out, x)
		}
	}
	k.tracers = out
}

// Now returns the kernel clock, advancing it one tick per call so that
// every event has a distinct timestamp (the volatile data the
// generalization stage must discard).
func (k *Kernel) Now() time.Time {
	k.clock = k.clock.Add(k.tick)
	return k.clock
}

func (k *Kernel) nextSeq() uint64 {
	k.seq++
	return k.seq
}

func (k *Kernel) newProcess(ppid int, cred Cred, comm, exe string, argv, env []string) *Process {
	p := &Process{
		PID:    k.nextPID,
		PPID:   ppid,
		Cred:   cred,
		Comm:   comm,
		Exe:    exe,
		Argv:   argv,
		Env:    env,
		fds:    make(map[int]*filDesc),
		nextFD: 3, // 0,1,2 reserved for std streams
		Alive:  true,
	}
	k.nextPID++
	k.procs[p.PID] = p
	return p
}

// Process returns the task with the given pid, or nil.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// Lookup resolves a path in the VFS (exported for recorder tests).
func (k *Kernel) Lookup(p string) (*Inode, bool) { return k.vfs.lookup(p) }

// MkFile creates a file directly (staging-directory setup), owned by
// the given uid with the given mode, and returns its inode.
func (k *Kernel) MkFile(path string, uid int, mode uint32) *Inode {
	ino := k.vfs.createFile(path, uid, 0, mode)
	ino.Size = 12
	return ino
}

// MkDir creates a directory directly (staging setup).
func (k *Kernel) MkDir(path string, uid int, mode uint32) *Inode {
	return k.vfs.mkdir(path, uid, 0, mode)
}

// emitAudit delivers (or defers, under vfork suspension) an audit record.
func (k *Kernel) emitAudit(p *Process, syscall string, args []string, ret int64, errno Errno, paths []PathRecord) {
	ev := AuditEvent{
		Seq:     k.nextSeq(),
		Time:    k.Now(),
		Syscall: syscall,
		Args:    args,
		Exit:    ret,
		Success: errno == OK,
		PID:     p.PID,
		PPID:    p.PPID,
		UID:     p.Cred.UID,
		EUID:    p.Cred.EUID,
		GID:     p.Cred.GID,
		EGID:    p.Cred.EGID,
		Comm:    p.Comm,
		Exe:     p.Exe,
		Paths:   paths,
	}
	if p.vforkPending != nil || p.suspendedByVfork() {
		p.vforkPending = append(p.vforkPending, ev)
		return
	}
	for _, t := range k.tracers {
		t.Audit(ev)
	}
}

// suspendedByVfork reports whether p is a vfork parent still waiting on
// its child: its records must queue behind the child's.
func (p *Process) suspendedByVfork() bool { return p.vforkParent != nil }

// flushVfork releases a parent's deferred audit records after the vfork
// child exits.
func (k *Kernel) flushVfork(parent *Process) {
	pend := parent.vforkPending
	parent.vforkPending = nil
	parent.vforkParent = nil
	for _, ev := range pend {
		for _, t := range k.tracers {
			t.Audit(ev)
		}
	}
}

// emitLibc delivers a libc interposition record.
func (k *Kernel) emitLibc(p *Process, call string, args []string, ret int64, errno Errno) {
	if p.noLibc {
		return
	}
	ev := LibcEvent{
		Seq:     k.nextSeq(),
		Time:    k.Now(),
		Call:    call,
		Args:    args,
		Ret:     ret,
		Errno:   errno,
		PID:     p.PID,
		Comm:    p.Comm,
		Exe:     p.Exe,
		Environ: p.Env,
	}
	for _, t := range k.tracers {
		t.Libc(ev)
	}
}

// emitLSM delivers a security-hook record.
func (k *Kernel) emitLSM(p *Process, hook HookKind, access string, ino *Inode, pathName string, allowed bool, detail string) {
	ev := LSMEvent{
		Seq:     k.nextSeq(),
		Time:    k.Now(),
		Hook:    hook,
		Access:  access,
		PID:     p.PID,
		Cred:    p.Cred,
		Comm:    p.Comm,
		Path:    pathName,
		Allowed: allowed,
		Detail:  detail,
	}
	if ino != nil {
		ev.Inode = ino.ID
		ev.ObjType = ino.Type.String()
	}
	for _, t := range k.tracers {
		t.LSM(ev)
	}
}

// emitLSM2 delivers a security-hook record with a secondary object.
func (k *Kernel) emitLSM2(p *Process, hook HookKind, ino *Inode, pathName string, aux *Inode, auxPath string, allowed bool, detail string) {
	ev := LSMEvent{
		Seq:     k.nextSeq(),
		Time:    k.Now(),
		Hook:    hook,
		PID:     p.PID,
		Cred:    p.Cred,
		Comm:    p.Comm,
		Path:    pathName,
		AuxPath: auxPath,
		Allowed: allowed,
		Detail:  detail,
	}
	if ino != nil {
		ev.Inode = ino.ID
		ev.ObjType = ino.Type.String()
	}
	if aux != nil {
		ev.AuxInode = aux.ID
	}
	for _, t := range k.tracers {
		t.LSM(ev)
	}
}

// mayWrite checks the classic owner/other write permission bit for the
// process's effective uid (root passes everything).
func mayWrite(c Cred, ino *Inode) bool {
	if c.EUID == 0 {
		return true
	}
	if ino.UID == c.EUID {
		return ino.Mode&0o200 != 0
	}
	return ino.Mode&0o002 != 0
}

func mayRead(c Cred, ino *Inode) bool {
	if c.EUID == 0 {
		return true
	}
	if ino.UID == c.EUID {
		return ino.Mode&0o400 != 0
	}
	return ino.Mode&0o004 != 0
}

// Launch simulates a shell starting a benchmark executable: fork from
// init, execve the program (opening the loader, libc and the program
// file), leaving the new process ready to run benchmark operations.
// This is the "boilerplate provenance" that background programs share
// with foreground programs.
func (k *Kernel) Launch(exe string, argv []string, cred Cred) (*Process, error) {
	parent := k.initProc
	child := k.newProcess(parent.PID, cred, comm(exe), parent.Exe, argv, defaultEnv())
	k.emitLSM(child, HookTaskCreate, "", nil, "", true, "fork")
	k.emitAudit(parent, "fork", nil, int64(child.PID), OK, nil)
	k.emitLibc(parent, "fork", nil, int64(child.PID), OK)
	if err := k.doExecve(child, exe, argv); err != OK {
		return nil, fmt.Errorf("oskernel: launch %s: %s", exe, err.Error())
	}
	return child, nil
}

// doExecve performs the execve bookkeeping and event stream shared by
// Launch and the Execve syscall: check + swap the image, then open the
// loader/libc (the startup accesses every recorder sees).
func (k *Kernel) doExecve(p *Process, exe string, argv []string) Errno {
	ino, ok := k.vfs.lookup(exe)
	if !ok {
		k.emitAudit(p, "execve", []string{exe}, -1, ENOENT, nil)
		k.emitLibc(p, "execve", []string{exe}, -1, ENOENT)
		return ENOENT
	}
	k.emitLSM(p, HookBprmCheck, "exec", ino, exe, true, "")
	p.Exe = exe
	p.Comm = comm(exe)
	p.Argv = argv
	k.emitAudit(p, "execve", append([]string{exe}, argv...), 0, OK, []PathRecord{{Name: exe, Inode: ino.ID, Mode: ino.Mode}})
	k.emitLibc(p, "execve", append([]string{exe}, argv...), 0, OK)
	// Loader activity: the dynamic linker maps ld.so.cache, libc, and
	// the executable itself. Audit reports these as open+read+mmap;
	// they make SPADE's execve benchmark graph large (Section 4.2).
	for _, lib := range []string{"/etc/ld.so.cache", "/lib/ld-linux.so", "/lib/libc.so.6"} {
		lino, _ := k.vfs.lookup(lib)
		k.emitLSM(lino2proc(p), HookFileOpen, "read", lino, lib, true, "")
		k.emitAudit(p, "open", []string{lib, "O_RDONLY"}, 3, OK, []PathRecord{{Name: lib, Inode: lino.ID, Mode: lino.Mode}})
		k.emitAudit(p, "mmap", []string{lib}, 0, OK, []PathRecord{{Name: lib, Inode: lino.ID, Mode: lino.Mode}})
		k.emitLSM(p, HookFilePermission, "read", lino, lib, true, "")
	}
	return OK
}

func lino2proc(p *Process) *Process { return p }

func comm(exe string) string {
	for i := len(exe) - 1; i >= 0; i-- {
		if exe[i] == '/' {
			return exe[i+1:]
		}
	}
	return exe
}

func defaultEnv() []string {
	return []string{
		"PATH=/usr/bin:/bin",
		"HOME=/root",
		"LANG=C.UTF-8",
		"PWD=/stage",
		"SHELL=/usr/bin/sh",
		"TERM=xterm",
		"USER=bench",
		"LOGNAME=bench",
		"OPUS_INTERPOSE=1",
		"LD_PRELOAD=libopusinterpose.so",
	}
}

// fdString renders an fd for audit args.
func fdString(fd int) string { return strconv.Itoa(fd) }

// installFD places a description into the process table at the next
// free slot and returns the fd number.
func (p *Process) installFD(d *filDesc) int {
	fd := p.nextFD
	p.nextFD++
	d.refs++
	p.fds[fd] = d
	return fd
}

// FD returns the inode behind an open descriptor (for tests).
func (p *Process) FD(fd int) (*Inode, bool) {
	d, ok := p.fds[fd]
	if !ok {
		return nil, false
	}
	return d.inode, true
}

// NumFDs reports how many descriptors the process has open.
func (p *Process) NumFDs() int { return len(p.fds) }
