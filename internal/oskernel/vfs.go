package oskernel

import (
	"path"
	"sort"
	"strings"
)

// InodeType distinguishes the object kinds the VFS models.
type InodeType int

// Inode kinds.
const (
	TypeFile InodeType = iota + 1
	TypeDir
	TypeSymlink
	TypePipe
	TypeDevice
)

func (t InodeType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	case TypePipe:
		return "pipe"
	case TypeDevice:
		return "device"
	}
	return "unknown"
}

// Inode is a filesystem object. Names are kept in the dentry table, so
// an inode can have several hard links (Nlink tracks them).
type Inode struct {
	ID      uint64
	Type    InodeType
	Mode    uint32
	UID     int
	GID     int
	Size    int64
	Nlink   int
	Target  string // symlink target
	Version int    // bumped on content writes, used by versioning recorders
}

// vfs is the virtual filesystem: an inode table plus a dentry map from
// absolute cleaned paths to inode ids.
type vfs struct {
	inodes   map[uint64]*Inode
	dentries map[string]uint64
	nextIno  uint64
}

func newVFS() *vfs {
	v := &vfs{
		inodes:   make(map[uint64]*Inode),
		dentries: make(map[string]uint64),
		nextIno:  1,
	}
	// Root and the few directories the benchmarks and launcher touch.
	for _, dir := range []string{"/", "/etc", "/lib", "/usr", "/usr/bin", "/dev"} {
		v.mkdir(dir, 0, 0, 0o755)
	}
	// World-writable scratch areas: benchmark programs run as an
	// unprivileged user inside the staging directory.
	for _, dir := range []string{"/tmp", "/stage"} {
		v.mkdir(dir, 0, 0, 0o777)
	}
	return v
}

func (v *vfs) alloc(t InodeType, uid, gid int, mode uint32) *Inode {
	ino := &Inode{ID: v.nextIno, Type: t, Mode: mode, UID: uid, GID: gid, Nlink: 0}
	v.nextIno++
	v.inodes[ino.ID] = ino
	return ino
}

func (v *vfs) mkdir(p string, uid, gid int, mode uint32) *Inode {
	p = clean(p)
	if id, ok := v.dentries[p]; ok {
		return v.inodes[id]
	}
	ino := v.alloc(TypeDir, uid, gid, mode)
	ino.Nlink = 1
	v.dentries[p] = ino.ID
	return ino
}

// createFile makes a regular file at path p. The caller has verified
// that no dentry exists there.
func (v *vfs) createFile(p string, uid, gid int, mode uint32) *Inode {
	ino := v.alloc(TypeFile, uid, gid, mode)
	ino.Nlink = 1
	v.dentries[clean(p)] = ino.ID
	return ino
}

// lookup resolves a path to an inode, following one level of symlink
// indirection (enough for the benchmark programs).
func (v *vfs) lookup(p string) (*Inode, bool) {
	id, ok := v.dentries[clean(p)]
	if !ok {
		return nil, false
	}
	ino := v.inodes[id]
	if ino.Type == TypeSymlink {
		if tid, ok := v.dentries[clean(ino.Target)]; ok {
			return v.inodes[tid], true
		}
	}
	return ino, true
}

// lookupNoFollow resolves a path without following symlinks.
func (v *vfs) lookupNoFollow(p string) (*Inode, bool) {
	id, ok := v.dentries[clean(p)]
	if !ok {
		return nil, false
	}
	return v.inodes[id], true
}

// parentDir returns the inode of the directory containing p.
func (v *vfs) parentDir(p string) (*Inode, bool) {
	dir := path.Dir(clean(p))
	ino, ok := v.dentries[dir]
	if !ok {
		return nil, false
	}
	d := v.inodes[ino]
	if d.Type != TypeDir {
		return nil, false
	}
	return d, true
}

// link adds a new dentry for an existing inode.
func (v *vfs) link(ino *Inode, p string) {
	v.dentries[clean(p)] = ino.ID
	ino.Nlink++
}

// unlink removes a dentry; the inode survives while Nlink > 0.
func (v *vfs) unlink(p string) {
	p = clean(p)
	id, ok := v.dentries[p]
	if !ok {
		return
	}
	delete(v.dentries, p)
	ino := v.inodes[id]
	ino.Nlink--
	if ino.Nlink <= 0 {
		delete(v.inodes, id)
	}
}

// rename moves the dentry at old to new, dropping any dentry already at
// new (rename(2) replaces the target). When both names already refer to
// the same inode, POSIX specifies a successful no-op.
func (v *vfs) rename(oldp, newp string) {
	oldp, newp = clean(oldp), clean(newp)
	if oldp == newp || v.dentries[oldp] == 0 {
		return
	}
	if tgt, ok := v.dentries[newp]; ok {
		if tgt == v.dentries[oldp] {
			return // same file: nothing to do
		}
		v.unlink(newp)
	}
	id := v.dentries[oldp]
	delete(v.dentries, oldp)
	v.dentries[newp] = id
}

// pathsOf returns all dentries referring to an inode, sorted.
func (v *vfs) pathsOf(id uint64) []string {
	var out []string
	for p, i := range v.dentries {
		if i == id {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

func clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/stage/" + p // benchmark programs run inside the staging dir
	}
	return path.Clean(p)
}
