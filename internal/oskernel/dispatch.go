package oskernel

import (
	"fmt"
	"sort"
)

// This file is the syscall dispatch table: every syscall the simulator
// implements as a typed Kernel method is also invokable by name with a
// typed argument record. The table is what makes benchmark programs
// expressible as data (internal/benchprog's scenario instruction set)
// instead of Go closures: an instruction names an op, the table
// validates its arguments and routes the call.

// Args is the typed argument record of a dispatched syscall. Each
// syscall consumes only the fields its table entry declares; Dispatch
// callers can use the entry's Fields list to reject stray arguments.
type Args struct {
	Path  string
	Path2 string
	FD    int
	FD2   int
	NewFD int
	DirFD int
	Flags int
	Mode  uint32
	N     int64
	Off   int64
	Len   int64
	UID   int
	EUID  int
	SUID  int
	GID   int
	EGID  int
	SGID  int
	PID   int
	Sig   int
	Exe   string
	Argv  []string
	Code  int
}

// Outcome is the result of a dispatched syscall. Ret2 is only set by
// fd-pair calls (pipe); Child only by process-creating calls.
type Outcome struct {
	Ret   int64
	Ret2  int64
	Errno Errno
	Child *Process
}

// Field names one Args field a syscall consumes.
type Field string

// The argument-field vocabulary of the dispatch table.
const (
	FPath  Field = "path"
	FPath2 Field = "path2"
	FFD    Field = "fd"
	FFD2   Field = "fd2"
	FNewFD Field = "new_fd"
	FDirFD Field = "dir_fd"
	FFlags Field = "flags"
	FMode  Field = "mode"
	FN     Field = "n"
	FOff   Field = "off"
	FLen   Field = "len"
	FUID   Field = "uid"
	FEUID  Field = "euid"
	FSUID  Field = "suid"
	FGID   Field = "gid"
	FEGID  Field = "egid"
	FSGID  Field = "sgid"
	FPID   Field = "pid"
	FSig   Field = "sig"
	FExe   Field = "exe"
	FArgv  Field = "argv"
	FCode  Field = "code"
)

// Return classifies what a syscall's Outcome carries beyond the errno,
// so callers know which result slots an invocation may bind.
type Return int

// Return kinds.
const (
	// RNone: Ret is a plain value (byte count, zero), never a handle.
	RNone Return = iota
	// RFD: Ret is a file descriptor on success.
	RFD
	// RFDPair: Ret and Ret2 are the two descriptors of a pipe.
	RFDPair
	// RProc: Child is the created process on success.
	RProc
)

// Syscall is one dispatch-table entry.
type Syscall struct {
	Name    string
	Fields  []Field
	Returns Return
	call    func(k *Kernel, p *Process, a Args) Outcome
}

// Takes reports whether the syscall consumes the given argument field.
func (s Syscall) Takes(f Field) bool {
	for _, x := range s.Fields {
		if x == f {
			return true
		}
	}
	return false
}

// Invoke runs the syscall on process p in kernel k.
func (s Syscall) Invoke(k *Kernel, p *Process, a Args) Outcome {
	return s.call(k, p, a)
}

// Dispatch looks a syscall up by name.
func Dispatch(name string) (Syscall, bool) {
	s, ok := dispatchTable[name]
	return s, ok
}

// Syscalls lists every dispatchable syscall name, sorted.
func Syscalls() []string {
	out := make([]string, 0, len(dispatchTable))
	for name := range dispatchTable {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Errnos lists every errno value the simulator distinguishes, OK
// first — the outcome vocabulary of the dispatch table, exported so
// scenario synthesis can enumerate expected-errno coverage targets.
func Errnos() []Errno {
	return []Errno{OK, EPERM, ENOENT, ESRCH, EBADF, EACCES, EEXIST, ENOTDIR, EISDIR, EINVAL, ESPIPE}
}

// ErrnoByName parses a symbolic errno name ("EACCES", "ok") back to
// its value — the inverse of Errno.Error for every errno the simulator
// distinguishes.
func ErrnoByName(name string) (Errno, bool) {
	for _, e := range Errnos() {
		if e.Error() == name {
			return e, true
		}
	}
	return 0, false
}

// ret wraps a plain (ret, errno) kernel call result.
func ret(r int64, e Errno) Outcome { return Outcome{Ret: r, Errno: e} }

var dispatchTable = buildDispatchTable()

func buildDispatchTable() map[string]Syscall {
	entries := []Syscall{
		// ---- files ---------------------------------------------------------
		{Name: "open", Fields: []Field{FPath, FFlags}, Returns: RFD,
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Open(p, a.Path, a.Flags)) }},
		{Name: "openat", Fields: []Field{FDirFD, FPath, FFlags}, Returns: RFD,
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Openat(p, a.DirFD, a.Path, a.Flags)) }},
		{Name: "creat", Fields: []Field{FPath}, Returns: RFD,
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Creat(p, a.Path)) }},
		{Name: "close", Fields: []Field{FFD},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Close(p, a.FD)) }},
		{Name: "dup", Fields: []Field{FFD}, Returns: RFD,
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Dup(p, a.FD)) }},
		{Name: "dup2", Fields: []Field{FFD, FNewFD}, Returns: RFD,
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Dup2(p, a.FD, a.NewFD)) }},
		{Name: "dup3", Fields: []Field{FFD, FNewFD}, Returns: RFD,
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Dup3(p, a.FD, a.NewFD)) }},
		{Name: "read", Fields: []Field{FFD, FN},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Read(p, a.FD, a.N)) }},
		{Name: "pread", Fields: []Field{FFD, FN, FOff},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Pread(p, a.FD, a.N, a.Off)) }},
		{Name: "write", Fields: []Field{FFD, FN},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Write(p, a.FD, a.N)) }},
		{Name: "pwrite", Fields: []Field{FFD, FN, FOff},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Pwrite(p, a.FD, a.N, a.Off)) }},
		{Name: "link", Fields: []Field{FPath, FPath2},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Link(p, a.Path, a.Path2)) }},
		{Name: "linkat", Fields: []Field{FPath, FPath2},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Linkat(p, a.Path, a.Path2)) }},
		{Name: "symlink", Fields: []Field{FPath, FPath2},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Symlink(p, a.Path, a.Path2)) }},
		{Name: "symlinkat", Fields: []Field{FPath, FPath2},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Symlinkat(p, a.Path, a.Path2)) }},
		{Name: "mknod", Fields: []Field{FPath, FMode},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Mknod(p, a.Path, a.Mode)) }},
		{Name: "mknodat", Fields: []Field{FPath, FMode},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Mknodat(p, a.Path, a.Mode)) }},
		{Name: "rename", Fields: []Field{FPath, FPath2},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Rename(p, a.Path, a.Path2)) }},
		{Name: "renameat", Fields: []Field{FPath, FPath2},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Renameat(p, a.Path, a.Path2)) }},
		{Name: "truncate", Fields: []Field{FPath, FLen},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Truncate(p, a.Path, a.Len)) }},
		{Name: "ftruncate", Fields: []Field{FFD, FLen},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Ftruncate(p, a.FD, a.Len)) }},
		{Name: "unlink", Fields: []Field{FPath},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Unlink(p, a.Path)) }},
		{Name: "unlinkat", Fields: []Field{FPath},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Unlinkat(p, a.Path)) }},

		// ---- processes -----------------------------------------------------
		{Name: "fork", Returns: RProc,
			call: func(k *Kernel, p *Process, a Args) Outcome {
				child, r, e := k.Fork(p)
				return Outcome{Ret: r, Errno: e, Child: child}
			}},
		{Name: "vfork", Returns: RProc,
			call: func(k *Kernel, p *Process, a Args) Outcome {
				child, r, e := k.Vfork(p)
				return Outcome{Ret: r, Errno: e, Child: child}
			}},
		{Name: "clone", Returns: RProc,
			call: func(k *Kernel, p *Process, a Args) Outcome {
				child, r, e := k.Clone(p)
				return Outcome{Ret: r, Errno: e, Child: child}
			}},
		{Name: "execve", Fields: []Field{FExe, FArgv},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Execve(p, a.Exe, a.Argv)) }},
		{Name: "exit", Fields: []Field{FCode},
			call: func(k *Kernel, p *Process, a Args) Outcome {
				k.Exit(p, a.Code)
				return Outcome{}
			}},
		{Name: "kill", Fields: []Field{FPID, FSig},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Kill(p, a.PID, a.Sig)) }},

		// ---- permissions ---------------------------------------------------
		{Name: "chmod", Fields: []Field{FPath, FMode},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Chmod(p, a.Path, a.Mode)) }},
		{Name: "fchmod", Fields: []Field{FFD, FMode},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Fchmod(p, a.FD, a.Mode)) }},
		{Name: "fchmodat", Fields: []Field{FPath, FMode},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Fchmodat(p, a.Path, a.Mode)) }},
		{Name: "chown", Fields: []Field{FPath, FUID, FGID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Chown(p, a.Path, a.UID, a.GID)) }},
		{Name: "fchown", Fields: []Field{FFD, FUID, FGID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Fchown(p, a.FD, a.UID, a.GID)) }},
		{Name: "fchownat", Fields: []Field{FPath, FUID, FGID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Fchownat(p, a.Path, a.UID, a.GID)) }},
		{Name: "setuid", Fields: []Field{FUID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Setuid(p, a.UID)) }},
		{Name: "setreuid", Fields: []Field{FUID, FEUID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Setreuid(p, a.UID, a.EUID)) }},
		{Name: "setresuid", Fields: []Field{FUID, FEUID, FSUID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Setresuid(p, a.UID, a.EUID, a.SUID)) }},
		{Name: "setgid", Fields: []Field{FGID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Setgid(p, a.GID)) }},
		{Name: "setregid", Fields: []Field{FGID, FEGID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Setregid(p, a.GID, a.EGID)) }},
		{Name: "setresgid", Fields: []Field{FGID, FEGID, FSGID},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Setresgid(p, a.GID, a.EGID, a.SGID)) }},

		// ---- pipes ---------------------------------------------------------
		{Name: "pipe", Returns: RFDPair,
			call: func(k *Kernel, p *Process, a Args) Outcome {
				rd, wr, e := k.Pipe(p)
				return Outcome{Ret: rd, Ret2: wr, Errno: e}
			}},
		{Name: "pipe2", Returns: RFDPair,
			call: func(k *Kernel, p *Process, a Args) Outcome {
				rd, wr, e := k.Pipe2(p)
				return Outcome{Ret: rd, Ret2: wr, Errno: e}
			}},
		{Name: "tee", Fields: []Field{FFD, FFD2, FN},
			call: func(k *Kernel, p *Process, a Args) Outcome { return ret(k.Tee(p, a.FD, a.FD2, a.N)) }},
	}
	table := make(map[string]Syscall, len(entries))
	for _, e := range entries {
		if _, dup := table[e.Name]; dup {
			panic(fmt.Sprintf("oskernel: duplicate dispatch entry %q", e.Name))
		}
		table[e.Name] = e
	}
	return table
}
