package oskernel

import "strconv"

// Syscalls in this file are the Table 1 group 1 (files) operations.
// Every call emits its libc record (OPUS's view, present even on
// failure), its LSM hooks (CamFlow's view, fired during the call), and
// its audit record at exit (SPADE's view).

// Open opens a path, optionally creating it.
func (k *Kernel) Open(p *Process, path string, flags int) (int64, Errno) {
	return k.openInternal(p, "open", path, flags, 0o644)
}

// Openat is open relative to a directory fd; the simulator resolves
// benchmark paths absolutely, so dirfd only affects the audit record.
func (k *Kernel) Openat(p *Process, dirfd int, path string, flags int) (int64, Errno) {
	return k.openInternal(p, "openat", path, flags, 0o644)
}

// Creat is open(path, O_CREAT|O_WRONLY|O_TRUNC).
func (k *Kernel) Creat(p *Process, path string) (int64, Errno) {
	return k.openInternal(p, "creat", path, OCreat|OWronly|OTrunc, 0o644)
}

func (k *Kernel) openInternal(p *Process, callName, path string, flags int, mode uint32) (int64, Errno) {
	args := []string{path, flagString(flags)}
	ino, exists := k.vfs.lookup(path)
	var errno Errno
	created := false
	switch {
	case !exists && flags&OCreat == 0:
		errno = ENOENT
	case !exists:
		if dir, ok := k.vfs.parentDir(path); !ok {
			errno = ENOENT
		} else if !mayWrite(p.Cred, dir) {
			k.emitLSM(p, HookInodeCreate, "write", dir, path, false, "")
			errno = EACCES
		} else {
			ino = k.vfs.createFile(path, p.Cred.EUID, p.Cred.EGID, mode)
			k.emitLSM(p, HookInodeCreate, "write", ino, path, true, "")
			created = true
		}
	case ino.Type == TypeDir && flags&(OWronly|ORdwr) != 0:
		errno = EISDIR
	default:
		wantWrite := flags&(OWronly|ORdwr) != 0
		if wantWrite && !mayWrite(p.Cred, ino) {
			k.emitLSM(p, HookFileOpen, "write", ino, path, false, "")
			errno = EACCES
		} else if !wantWrite && !mayRead(p.Cred, ino) {
			k.emitLSM(p, HookFileOpen, "read", ino, path, false, "")
			errno = EACCES
		}
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		if !created {
			access := "read"
			if flags&(OWronly|ORdwr) != 0 {
				access = "write"
			}
			k.emitLSM(p, HookFileOpen, access, ino, path, true, "")
		}
		if flags&OTrunc != 0 && !created {
			ino.Size = 0
			ino.Version++
		}
		fd := p.installFD(&filDesc{inode: ino, path: path, flags: flags})
		ret = int64(fd)
		paths = []PathRecord{{Name: path, Inode: ino.ID, Mode: ino.Mode}}
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Close releases a descriptor. The underlying kernel structures are
// freed only when the last reference drops (CamFlow's close behaviour:
// the object free happens later, which ProvMark cannot reliably observe
// — Section 4.1).
func (k *Kernel) Close(p *Process, fd int) (int64, Errno) {
	args := []string{fdString(fd)}
	d, ok := p.fds[fd]
	if !ok {
		k.emitAudit(p, "close", args, -1, EBADF, nil)
		k.emitLibc(p, "close", args, -1, EBADF)
		return -1, EBADF
	}
	delete(p.fds, fd)
	d.refs--
	// No LSM hook: the eventual kfree is asynchronous and not
	// attributable to the close call (LP in Table 2).
	k.emitAudit(p, "close", args, 0, OK, []PathRecord{{Name: d.path, Inode: d.inode.ID, Mode: d.inode.Mode}})
	k.emitLibc(p, "close", args, 0, OK)
	return 0, OK
}

// Dup duplicates a descriptor. Only the fd table changes: audit reports
// the call but SPADE's baseline treats it as a state change only (SC),
// and no LSM hook fires (NR for CamFlow).
func (k *Kernel) Dup(p *Process, fd int) (int64, Errno) {
	return k.dupInternal(p, "dup", fd, -1)
}

// Dup2 duplicates onto a chosen descriptor number.
func (k *Kernel) Dup2(p *Process, fd, newfd int) (int64, Errno) {
	return k.dupInternal(p, "dup2", fd, newfd)
}

// Dup3 is dup2 with flags (ignored by the simulator).
func (k *Kernel) Dup3(p *Process, fd, newfd int) (int64, Errno) {
	return k.dupInternal(p, "dup3", fd, newfd)
}

func (k *Kernel) dupInternal(p *Process, callName string, fd, newfd int) (int64, Errno) {
	args := []string{fdString(fd)}
	if newfd >= 0 {
		args = append(args, fdString(newfd))
	}
	d, ok := p.fds[fd]
	if !ok {
		k.emitAudit(p, callName, args, -1, EBADF, nil)
		k.emitLibc(p, callName, args, -1, EBADF)
		return -1, EBADF
	}
	var ret int
	if newfd >= 0 {
		if old, ok := p.fds[newfd]; ok {
			old.refs--
		}
		d.refs++
		p.fds[newfd] = d
		ret = newfd
	} else {
		ret = p.installFD(d)
		d.refs-- // installFD already counted; keep single increment
		d.refs++
	}
	k.emitAudit(p, callName, args, int64(ret), OK, []PathRecord{{Name: d.path, Inode: d.inode.ID, Mode: d.inode.Mode}})
	k.emitLibc(p, callName, args, int64(ret), OK)
	return int64(ret), OK
}

// Read consumes bytes from a descriptor.
func (k *Kernel) Read(p *Process, fd int, n int64) (int64, Errno) {
	return k.rwInternal(p, "read", fd, n, false, -1)
}

// Pread reads at an offset.
func (k *Kernel) Pread(p *Process, fd int, n, off int64) (int64, Errno) {
	return k.rwInternal(p, "pread", fd, n, false, off)
}

// Write appends bytes to a descriptor, bumping the inode version.
func (k *Kernel) Write(p *Process, fd int, n int64) (int64, Errno) {
	return k.rwInternal(p, "write", fd, n, true, -1)
}

// Pwrite writes at an offset.
func (k *Kernel) Pwrite(p *Process, fd int, n, off int64) (int64, Errno) {
	return k.rwInternal(p, "pwrite", fd, n, true, off)
}

func (k *Kernel) rwInternal(p *Process, callName string, fd int, n int64, write bool, off int64) (int64, Errno) {
	args := []string{fdString(fd), strconv.FormatInt(n, 10)}
	if off >= 0 {
		args = append(args, strconv.FormatInt(off, 10))
	}
	d, ok := p.fds[fd]
	if !ok {
		k.emitAudit(p, callName, args, -1, EBADF, nil)
		k.emitLibc(p, callName, args, -1, EBADF)
		return -1, EBADF
	}
	access := "read"
	if write {
		access = "write"
		d.inode.Size += n
		d.inode.Version++
	} else if d.inode.Size < n {
		n = d.inode.Size
	}
	k.emitLSM(p, HookFilePermission, access, d.inode, d.path, true, "")
	k.emitAudit(p, callName, args, n, OK, []PathRecord{{Name: d.path, Inode: d.inode.ID, Mode: d.inode.Mode}})
	k.emitLibc(p, callName, args, n, OK)
	return n, OK
}

// Link creates a hard link.
func (k *Kernel) Link(p *Process, oldpath, newpath string) (int64, Errno) {
	return k.linkInternal(p, "link", oldpath, newpath)
}

// Linkat is link with directory fds (resolved absolutely here).
func (k *Kernel) Linkat(p *Process, oldpath, newpath string) (int64, Errno) {
	return k.linkInternal(p, "linkat", oldpath, newpath)
}

func (k *Kernel) linkInternal(p *Process, callName, oldpath, newpath string) (int64, Errno) {
	args := []string{oldpath, newpath}
	ino, ok := k.vfs.lookupNoFollow(oldpath)
	var errno Errno
	switch {
	case !ok:
		errno = ENOENT
	default:
		if _, exists := k.vfs.lookupNoFollow(newpath); exists {
			errno = EEXIST
		} else if dir, ok := k.vfs.parentDir(newpath); !ok {
			errno = ENOENT
		} else if !mayWrite(p.Cred, dir) {
			k.emitLSM2(p, HookInodeLink, ino, oldpath, dir, newpath, false, "")
			errno = EACCES
		}
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		k.vfs.link(ino, newpath)
		k.emitLSM2(p, HookInodeLink, ino, oldpath, nil, newpath, true, "")
		ret = 0
		paths = []PathRecord{
			{Name: oldpath, Inode: ino.ID, Mode: ino.Mode},
			{Name: newpath, Inode: ino.ID, Mode: ino.Mode},
		}
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Symlink creates a symbolic link.
func (k *Kernel) Symlink(p *Process, target, linkpath string) (int64, Errno) {
	return k.symlinkInternal(p, "symlink", target, linkpath)
}

// Symlinkat is symlink relative to a directory fd.
func (k *Kernel) Symlinkat(p *Process, target, linkpath string) (int64, Errno) {
	return k.symlinkInternal(p, "symlinkat", target, linkpath)
}

func (k *Kernel) symlinkInternal(p *Process, callName, target, linkpath string) (int64, Errno) {
	args := []string{target, linkpath}
	var errno Errno
	if _, exists := k.vfs.lookupNoFollow(linkpath); exists {
		errno = EEXIST
	} else if dir, ok := k.vfs.parentDir(linkpath); !ok {
		errno = ENOENT
	} else if !mayWrite(p.Cred, dir) {
		errno = EACCES
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		ino := k.vfs.alloc(TypeSymlink, p.Cred.EUID, p.Cred.EGID, 0o777)
		ino.Target = target
		ino.Nlink = 1
		k.vfs.dentries[clean(linkpath)] = ino.ID
		k.emitLSM(p, HookInodeSymlink, "write", ino, linkpath, true, target)
		ret = 0
		paths = []PathRecord{{Name: linkpath, Inode: ino.ID, Mode: ino.Mode}}
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Mknod creates a device node.
func (k *Kernel) Mknod(p *Process, path string, mode uint32) (int64, Errno) {
	return k.mknodInternal(p, "mknod", path, mode)
}

// Mknodat is mknod relative to a directory fd.
func (k *Kernel) Mknodat(p *Process, path string, mode uint32) (int64, Errno) {
	return k.mknodInternal(p, "mknodat", path, mode)
}

func (k *Kernel) mknodInternal(p *Process, callName, path string, mode uint32) (int64, Errno) {
	args := []string{path, strconv.FormatUint(uint64(mode), 8)}
	var errno Errno
	if _, exists := k.vfs.lookupNoFollow(path); exists {
		errno = EEXIST
	} else if dir, ok := k.vfs.parentDir(path); !ok {
		errno = ENOENT
	} else if !mayWrite(p.Cred, dir) {
		errno = EACCES
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		ino := k.vfs.alloc(TypeDevice, p.Cred.EUID, p.Cred.EGID, mode)
		ino.Nlink = 1
		k.vfs.dentries[clean(path)] = ino.ID
		k.emitLSM(p, HookInodeMknod, "write", ino, path, true, "")
		ret = 0
		paths = []PathRecord{{Name: path, Inode: ino.ID, Mode: ino.Mode}}
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Rename moves a file to a new name, replacing any existing target.
func (k *Kernel) Rename(p *Process, oldpath, newpath string) (int64, Errno) {
	return k.renameInternal(p, "rename", oldpath, newpath)
}

// Renameat is rename relative to directory fds.
func (k *Kernel) Renameat(p *Process, oldpath, newpath string) (int64, Errno) {
	return k.renameInternal(p, "renameat", oldpath, newpath)
}

func (k *Kernel) renameInternal(p *Process, callName, oldpath, newpath string) (int64, Errno) {
	args := []string{oldpath, newpath}
	ino, ok := k.vfs.lookupNoFollow(oldpath)
	var errno Errno
	var tgtDir *Inode
	switch {
	case !ok:
		errno = ENOENT
	default:
		dir, dirOK := k.vfs.parentDir(newpath)
		tgtDir = dir
		if !dirOK {
			errno = ENOENT
		} else if !mayWrite(p.Cred, dir) {
			errno = EACCES
		} else if tgt, exists := k.vfs.lookupNoFollow(newpath); exists && !mayWrite(p.Cred, tgt) {
			errno = EACCES
		}
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		k.vfs.rename(oldpath, newpath)
		k.emitLSM2(p, HookInodeRename, ino, oldpath, tgtDir, newpath, true, "")
		ret = 0
		paths = []PathRecord{
			{Name: oldpath, Inode: ino.ID, Mode: ino.Mode},
			{Name: newpath, Inode: ino.ID, Mode: ino.Mode},
		}
	} else if ino != nil {
		// Denied rename still trips the permission hook on the target.
		k.emitLSM2(p, HookInodeRename, ino, oldpath, tgtDir, newpath, false, "")
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

// Truncate cuts a file to a length by path.
func (k *Kernel) Truncate(p *Process, path string, length int64) (int64, Errno) {
	args := []string{path, strconv.FormatInt(length, 10)}
	ino, ok := k.vfs.lookup(path)
	var errno Errno
	switch {
	case !ok:
		errno = ENOENT
	case !mayWrite(p.Cred, ino):
		k.emitLSM(p, HookInodeSetattr, "write", ino, path, false, "size")
		errno = EACCES
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		ino.Size = length
		ino.Version++
		k.emitLSM(p, HookInodeSetattr, "write", ino, path, true, "size="+strconv.FormatInt(length, 10))
		ret = 0
		paths = []PathRecord{{Name: path, Inode: ino.ID, Mode: ino.Mode}}
	}
	k.emitAudit(p, "truncate", args, ret, errno, paths)
	k.emitLibc(p, "truncate", args, ret, errno)
	return ret, errno
}

// Ftruncate cuts a file to a length by descriptor.
func (k *Kernel) Ftruncate(p *Process, fd int, length int64) (int64, Errno) {
	args := []string{fdString(fd), strconv.FormatInt(length, 10)}
	d, ok := p.fds[fd]
	if !ok {
		k.emitAudit(p, "ftruncate", args, -1, EBADF, nil)
		k.emitLibc(p, "ftruncate", args, -1, EBADF)
		return -1, EBADF
	}
	d.inode.Size = length
	d.inode.Version++
	k.emitLSM(p, HookInodeSetattr, "write", d.inode, d.path, true, "size="+strconv.FormatInt(length, 10))
	k.emitAudit(p, "ftruncate", args, 0, OK, []PathRecord{{Name: d.path, Inode: d.inode.ID, Mode: d.inode.Mode}})
	k.emitLibc(p, "ftruncate", args, 0, OK)
	return 0, OK
}

// Unlink removes a directory entry.
func (k *Kernel) Unlink(p *Process, path string) (int64, Errno) {
	return k.unlinkInternal(p, "unlink", path)
}

// Unlinkat is unlink relative to a directory fd.
func (k *Kernel) Unlinkat(p *Process, path string) (int64, Errno) {
	return k.unlinkInternal(p, "unlinkat", path)
}

func (k *Kernel) unlinkInternal(p *Process, callName, path string) (int64, Errno) {
	args := []string{path}
	ino, ok := k.vfs.lookupNoFollow(path)
	var errno Errno
	switch {
	case !ok:
		errno = ENOENT
	default:
		if dir, ok := k.vfs.parentDir(path); !ok {
			errno = ENOENT
		} else if !mayWrite(p.Cred, dir) {
			k.emitLSM(p, HookInodeUnlink, "write", ino, path, false, "")
			errno = EACCES
		}
	}
	var ret int64 = -1
	var paths []PathRecord
	if errno == OK {
		paths = []PathRecord{{Name: path, Inode: ino.ID, Mode: ino.Mode}}
		k.emitLSM(p, HookInodeUnlink, "write", ino, path, true, "")
		k.vfs.unlink(path)
		ret = 0
	}
	k.emitAudit(p, callName, args, ret, errno, paths)
	k.emitLibc(p, callName, args, ret, errno)
	return ret, errno
}

func flagString(flags int) string {
	switch {
	case flags&OCreat != 0 && flags&OTrunc != 0:
		return "O_CREAT|O_TRUNC|O_WRONLY"
	case flags&OCreat != 0:
		return "O_CREAT|O_WRONLY"
	case flags&ORdwr != 0:
		return "O_RDWR"
	case flags&OWronly != 0:
		return "O_WRONLY"
	}
	return "O_RDONLY"
}
