package oskernel

import (
	"reflect"
	"testing"
)

func launchTest(t *testing.T, k *Kernel) *Process {
	t.Helper()
	p, err := k.Launch("/usr/bin/bench", []string{"bench"}, Cred{UID: 1000, EUID: 1000, GID: 1000, EGID: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDispatchMatchesDirectCalls: a dispatched call must produce the
// same event stream and outcome as the typed kernel method.
func TestDispatchMatchesDirectCalls(t *testing.T) {
	k1 := oskernelWithTap(t)
	p1 := launchTest(t, k1.Kernel)
	ret, errno := k1.Open(p1, "/etc/passwd", ORdonly)

	k2 := oskernelWithTap(t)
	p2 := launchTest(t, k2.Kernel)
	sys, ok := Dispatch("open")
	if !ok {
		t.Fatal("open not dispatchable")
	}
	out := sys.Invoke(k2.Kernel, p2, Args{Path: "/etc/passwd"})
	if out.Ret != ret || out.Errno != errno {
		t.Errorf("dispatched open: (%d,%v), direct (%d,%v)", out.Ret, out.Errno, ret, errno)
	}
	if !reflect.DeepEqual(k1.tap.AuditEvents, k2.tap.AuditEvents) {
		t.Error("dispatched open produced a different audit stream")
	}
}

type kernelWithTap struct {
	*Kernel
	tap *TapBuffer
}

func oskernelWithTap(t *testing.T) kernelWithTap {
	t.Helper()
	k := New()
	tap := &TapBuffer{}
	k.Register(tap)
	return kernelWithTap{k, tap}
}

// TestDispatchChildAndPair: process-creating and fd-pair calls bind
// their extra results.
func TestDispatchChildAndPair(t *testing.T) {
	k := New()
	p := launchTest(t, k)
	fork, _ := Dispatch("fork")
	out := fork.Invoke(k, p, Args{})
	if out.Errno != OK || out.Child == nil || out.Child.PID != int(out.Ret) {
		t.Fatalf("dispatched fork: ret=%d errno=%v child=%v", out.Ret, out.Errno, out.Child)
	}
	pipe, _ := Dispatch("pipe")
	out = pipe.Invoke(k, p, Args{})
	if out.Errno != OK || out.Ret == 0 || out.Ret2 == 0 || out.Ret == out.Ret2 {
		t.Fatalf("dispatched pipe: (%d,%d,%v)", out.Ret, out.Ret2, out.Errno)
	}
}

func TestDispatchUnknownOp(t *testing.T) {
	if _, ok := Dispatch("mount"); ok {
		t.Error("unknown syscall resolved")
	}
}

// TestDispatchTableCoversTable1: every Table 1 syscall family member
// is dispatchable and declares coherent metadata.
func TestDispatchTableCoversTable1(t *testing.T) {
	names := Syscalls()
	if len(names) != 44 {
		t.Errorf("dispatch table has %d entries, want 44", len(names))
	}
	for _, name := range names {
		sys, ok := Dispatch(name)
		if !ok || sys.Name != name {
			t.Errorf("%s: lookup broken", name)
		}
		for _, f := range sys.Fields {
			if !sys.Takes(f) {
				t.Errorf("%s: Takes(%s) false for declared field", name, f)
			}
		}
		if sys.Takes("no-such-field") {
			t.Errorf("%s: Takes accepts undeclared field", name)
		}
	}
}

func TestErrnoByName(t *testing.T) {
	for _, e := range []Errno{OK, EPERM, ENOENT, ESRCH, EBADF, EACCES, EEXIST, ENOTDIR, EISDIR, EINVAL, ESPIPE} {
		got, ok := ErrnoByName(e.Error())
		if !ok || got != e {
			t.Errorf("ErrnoByName(%q) = (%v,%v)", e.Error(), got, ok)
		}
	}
	if _, ok := ErrnoByName("EWOULDBLOCK"); ok {
		t.Error("unknown errno resolved")
	}
}
