// Package oskernel simulates the Linux substrate that the three
// provenance recorders observe. It maintains a process table, a virtual
// filesystem (inodes, paths, hard and symbolic links, pipes), per-process
// file-descriptor tables and credentials, and executes the syscall
// families that the paper benchmarks (Table 1).
//
// Every syscall is visible through up to three taps, mirroring Figure 2
// of the paper:
//
//   - the audit tap emits one record per syscall at syscall *exit*
//     (Linux Audit semantics: SPADE's reporter consumes this; the vfork
//     suspension quirk of Section 4.2 is reproduced — the parent's vfork
//     record is emitted only after the child exits);
//   - the libc tap emits one record per intercepted C-library call,
//     including failed calls (OPUS's interposition layer consumes this;
//     raw clone(2) does not pass through libc interposition);
//   - the LSM tap emits security-hook records (CamFlow consumes this;
//     hooks fire for permission-relevant operations, including denied
//     ones, but not for fd-table-only operations such as dup).
package oskernel

import "time"

// Errno models the kernel error numbers the simulator distinguishes.
type Errno int

// Error numbers used by the simulated syscalls.
const (
	OK      Errno = 0
	EPERM   Errno = 1
	ENOENT  Errno = 2
	ESRCH   Errno = 3
	EBADF   Errno = 9
	EACCES  Errno = 13
	EEXIST  Errno = 17
	ENOTDIR Errno = 20
	EISDIR  Errno = 21
	EINVAL  Errno = 22
	ESPIPE  Errno = 29
)

func (e Errno) Error() string {
	switch e {
	case OK:
		return "ok"
	case EPERM:
		return "EPERM"
	case ENOENT:
		return "ENOENT"
	case ESRCH:
		return "ESRCH"
	case EBADF:
		return "EBADF"
	case EACCES:
		return "EACCES"
	case EEXIST:
		return "EEXIST"
	case ENOTDIR:
		return "ENOTDIR"
	case EISDIR:
		return "EISDIR"
	case EINVAL:
		return "EINVAL"
	case ESPIPE:
		return "ESPIPE"
	}
	return "E?"
}

// PathRecord is one resolved path attached to an audit record (the
// PATH= lines of Linux Audit).
type PathRecord struct {
	Name  string
	Inode uint64
	Mode  uint32
}

// AuditEvent is a syscall-exit record as the audit service reports it.
type AuditEvent struct {
	Seq     uint64
	Time    time.Time
	Syscall string
	Args    []string
	Exit    int64
	Success bool
	PID     int
	PPID    int
	UID     int
	EUID    int
	GID     int
	EGID    int
	Comm    string
	Exe     string
	Paths   []PathRecord
}

// LibcEvent is one intercepted C-library call.
type LibcEvent struct {
	Seq     uint64
	Time    time.Time
	Call    string
	Args    []string
	Ret     int64
	Errno   Errno
	PID     int
	Comm    string
	Exe     string
	Environ []string
}

// HookKind names an LSM security hook.
type HookKind string

// The hook vocabulary emitted by the simulator. It covers the hooks
// CamFlow 0.4.5 attaches to plus a few it does not (inode_symlink,
// inode_mknod, pipe_create) so that recorder-side coverage gaps stay in
// the recorder, where they belong.
const (
	HookFileOpen       HookKind = "file_open"
	HookFilePermission HookKind = "file_permission" // read or write, see Access
	HookInodeCreate    HookKind = "inode_create"
	HookInodeLink      HookKind = "inode_link"
	HookInodeSymlink   HookKind = "inode_symlink"
	HookInodeMknod     HookKind = "inode_mknod"
	HookInodeRename    HookKind = "inode_rename"
	HookInodeUnlink    HookKind = "inode_unlink"
	HookInodeSetattr   HookKind = "inode_setattr" // chmod/chown/truncate
	HookTaskFixSetuid  HookKind = "task_fix_setuid"
	HookTaskFixSetgid  HookKind = "task_fix_setgid"
	HookBprmCheck      HookKind = "bprm_check_security" // execve
	HookTaskCreate     HookKind = "task_create"         // fork/vfork/clone
	HookTaskKill       HookKind = "task_kill"
	HookTaskExit       HookKind = "task_exit"
	HookPipeCreate     HookKind = "pipe_create"
	HookPipeSplice     HookKind = "pipe_splice" // tee
)

// LSMEvent is one security-hook firing.
type LSMEvent struct {
	Seq      uint64
	Time     time.Time
	Hook     HookKind
	Access   string // "read"/"write"/"exec"/"" (file_permission detail)
	PID      int
	Cred     Cred
	Comm     string
	Inode    uint64
	Path     string
	ObjType  string // "file", "dir", "pipe", "device", "process"
	Allowed  bool
	AuxInode uint64 // second object (rename target dir, link target, child pid)
	AuxPath  string
	Detail   string // e.g. new mode/owner for setattr, new uid for setuid
}

// Tracer receives kernel events. Recorders register one tracer each.
type Tracer interface {
	Audit(AuditEvent)
	Libc(LibcEvent)
	LSM(LSMEvent)
}

// TapBuffer is a Tracer that stores every event, used by recorders and
// tests that want to replay a run.
type TapBuffer struct {
	AuditEvents []AuditEvent
	LibcEvents  []LibcEvent
	LSMEvents   []LSMEvent
}

var _ Tracer = (*TapBuffer)(nil)

// Audit implements Tracer.
func (t *TapBuffer) Audit(e AuditEvent) { t.AuditEvents = append(t.AuditEvents, e) }

// Libc implements Tracer.
func (t *TapBuffer) Libc(e LibcEvent) { t.LibcEvents = append(t.LibcEvents, e) }

// LSM implements Tracer.
func (t *TapBuffer) LSM(e LSMEvent) { t.LSMEvents = append(t.LSMEvents, e) }

// Reset clears all buffered events.
func (t *TapBuffer) Reset() {
	t.AuditEvents = t.AuditEvents[:0]
	t.LibcEvents = t.LibcEvents[:0]
	t.LSMEvents = t.LSMEvents[:0]
}
