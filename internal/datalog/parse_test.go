package datalog

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestSplitAtomsEscapedBackslash: a constant ending in an escaped
// backslash ("x\\") used to leave the scanner stuck in-string (it
// looked one byte back instead of consuming the escape), so the body
// failed to split. Both scanners now share one quoted-string lexer.
func TestSplitAtomsEscapedBackslash(t *testing.T) {
	r, err := ParseRule(`h(X) :- p("x\\"), q(X).`)
	if err != nil {
		t.Fatalf("escaped-backslash body failed to parse: %v", err)
	}
	if len(r.Body) != 2 {
		t.Fatalf("body split into %d atoms, want 2: %s", len(r.Body), r)
	}
	if got := r.Body[0].Terms[0].Const; got != `x\` {
		t.Errorf("constant = %q, want %q", got, `x\`)
	}
	// Round trip: the rendered rule re-escapes the backslash.
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", r.String(), err)
	}
	if r2.String() != r.String() {
		t.Errorf("unstable: %s vs %s", r, r2)
	}
}

// TestParseRuleQuotedSpecials: ":-" and "." inside quoted constants
// must not confuse the head/body split or the dot strip.
func TestParseRuleQuotedSpecials(t *testing.T) {
	cases := []struct {
		in        string
		wantHead  string
		wantBody  int
		wantConst string
	}{
		{`p(":-").`, "p", 0, ":-"},
		{`p(".").`, "p", 0, "."},
		{`p("a :- b.") :- q(X), r(X).`, "p", 2, "a :- b."},
		{`h(X) :- p(X, ":-").`, "h", 1, ""},
		{`p("").`, "p", 0, ""},
	}
	for _, tc := range cases {
		r, err := ParseRule(tc.in)
		if err != nil {
			t.Errorf("ParseRule(%q): %v", tc.in, err)
			continue
		}
		if r.Head.Pred != tc.wantHead || len(r.Body) != tc.wantBody {
			t.Errorf("ParseRule(%q) = %s (head %q, %d body atoms)", tc.in, r, r.Head.Pred, len(r.Body))
			continue
		}
		if tc.wantConst != "" || tc.in == `p("").` {
			if got := r.Head.Terms[0].Const; got != tc.wantConst {
				t.Errorf("ParseRule(%q) head constant = %q, want %q", tc.in, got, tc.wantConst)
			}
		}
		r2, err := ParseRule(r.String())
		if err != nil {
			t.Errorf("reparse of %q -> %q: %v", tc.in, r.String(), err)
			continue
		}
		if r2.String() != r.String() {
			t.Errorf("unstable render of %q: %q vs %q", tc.in, r.String(), r2.String())
		}
	}
}

// TestFactRuleRendering: a body-less rule renders as "head." and
// round-trips (the old renderer emitted a dangling " :- ").
func TestFactRuleRendering(t *testing.T) {
	r, err := ParseRule(`seed("a").`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String(); got != `seed("a").` {
		t.Errorf("fact rule renders as %q", got)
	}
	if _, err := ParseRule(r.String()); err != nil {
		t.Errorf("fact rule does not round-trip: %v", err)
	}
}

// TestStringEscapesInRendering: constants with quotes, backslashes and
// newlines render escaped and survive a parse round trip.
func TestStringEscapesInRendering(t *testing.T) {
	r := Rule{
		Head: Atom{Pred: "p", Terms: []Term{C(`a"b`), C(`c\d`), C("e\nf")}},
		Body: []Atom{{Pred: "q", Terms: []Term{W()}}},
	}
	s := r.String()
	r2, err := ParseRule(s)
	if err != nil {
		t.Fatalf("reparse %q: %v", s, err)
	}
	for i, want := range []string{`a"b`, `c\d`, "e\nf"} {
		if got := r2.Head.Terms[i].Const; got != want {
			t.Errorf("term %d = %q, want %q", i, got, want)
		}
	}
	if r2.String() != s {
		t.Errorf("unstable: %q vs %q", s, r2.String())
	}
}

// TestParseAtomGoal: the exported goal parser accepts positive atoms
// and rejects negation.
func TestParseAtomGoal(t *testing.T) {
	a, err := ParseAtom(` suspicious(P) `)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred != "suspicious" || len(a.Terms) != 1 || a.Terms[0].Var != "P" {
		t.Errorf("goal = %v", a)
	}
	if _, err := ParseAtom(`not suspicious(P)`); err == nil {
		t.Error("negated goal accepted")
	}
	if _, err := ParseAtom(`garbage`); err == nil {
		t.Error("malformed goal accepted")
	}
}

// TestQueryDedupsWildcardBindings is the regression test for the
// duplicate-rows bug: a goal with wildcard terms used to yield one
// identical binding per matching fact.
func TestQueryDedupsWildcardBindings(t *testing.T) {
	db := NewDatabase()
	db.Assert(Fact{Pred: "q", Args: []string{"a", "b"}})
	db.Assert(Fact{Pred: "q", Args: []string{"a", "c"}})
	db.Assert(Fact{Pred: "q", Args: []string{"d", "e"}})
	res := db.Query(Atom{Pred: "q", Terms: []Term{V("X"), W()}})
	if len(res) != 2 {
		t.Fatalf("bindings = %v, want exactly [{X:a} {X:d}]", res)
	}
	if res[0]["X"] != "a" || res[1]["X"] != "d" {
		t.Errorf("bindings = %v, want sorted [{X:a} {X:d}]", res)
	}
	// Fully-wild goal: one empty binding, however many facts match.
	all := db.Query(Atom{Pred: "q", Terms: []Term{W(), W()}})
	if len(all) != 1 || len(all[0]) != 0 {
		t.Errorf("wildcard-only goal = %v, want one empty binding", all)
	}
}

// TestFormatBindings: the shared query reporter renders
// deterministically.
func TestFormatBindings(t *testing.T) {
	goal, err := ParseAtom("suspicious(P)")
	if err != nil {
		t.Fatal(err)
	}
	out := FormatBindings(goal, []map[string]string{{"P": "n16"}, {"P": "n3"}})
	want := "query suspicious(P): 2 match(es)\n  P=\"n16\"\n  P=\"n3\"\n"
	if out != want {
		t.Errorf("FormatBindings = %q, want %q", out, want)
	}
	if got := FormatBindings(goal, nil); got != "query suspicious(P): no matches\n" {
		t.Errorf("empty FormatBindings = %q", got)
	}
	ground, _ := ParseAtom(`suspicious("n16")`)
	if got := FormatBindings(ground, []map[string]string{{}}); !strings.Contains(got, "1 match(es)") {
		t.Errorf("ground FormatBindings = %q", got)
	}
}

// TestCheckedInRulesParse guards the shipped rule artifacts against
// parser drift: the example Dora rule file and the README's prolog
// block must always parse (and the README block must run within the
// supported fragment).
func TestCheckedInRulesParse(t *testing.T) {
	rules, err := ParseRulesFile("../../examples/detection/suspicious.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("rule file parsed to nothing")
	}
	md, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile("(?s)```prolog\n(.*?)```").FindSubmatch(md)
	if m == nil {
		t.Fatal("README has no ```prolog block")
	}
	readmeRules, err := ParseRules(string(m[1]))
	if err != nil {
		t.Fatalf("README prolog block does not parse: %v", err)
	}
	if err := NewDatabase().Run(readmeRules); err != nil {
		t.Fatalf("README prolog block is outside the supported fragment: %v", err)
	}
}
