package datalog

// The string-tuple semi-naive engine: a stratified fixpoint over
// per-predicate bound-position indexes, operating on Fact values and
// map[string]string bindings.
//
//   - Stratum ordering. Rules are grouped by the stratum of their head
//     predicate (Ullman's algorithm over the predicate dependency
//     graph), so non-recursive predicates finalize once and negation
//     over derived-but-finalized predicates from lower strata is sound.
//     Only recursion *through negation* is rejected.
//   - Delta relations. Within a stratum, after the initial round a
//     rule only re-joins against the facts derived in the previous
//     round: each recursive body atom in turn is restricted to the
//     delta while the others join the full relations. Deriving nothing
//     new ends the stratum.
//   - Bound-position indexes. A join with at least one bound argument
//     (a constant, or a variable bound by an earlier atom) probes a
//     hash index keyed by the bound positions' values instead of
//     scanning the predicate's full extent. Indexes are built on first
//     probe and extended lazily as facts arrive.
//
// This engine is no longer the production path: Run (interned.go)
// evaluates the same language over interned uint32 columns with
// round-barrier parallel delta joins, and the differential corpus
// proves the two derive byte-identical fact sets. RunStrings stays as
// the frozen mid-fidelity reference between Run and the naive oracle
// (naive.go), and as the fallback for mixed-arity predicates the
// columnar layout cannot hold.
//
// Every candidate fact an evaluation examines — an index bucket entry
// or a full-scan element — counts one JoinProbe, which is how the
// asymptotic win over the frozen naive reference is measured.

import (
	"fmt"
	"strconv"
	"strings"
)

// EvalStats counts the work an evaluation performed.
type EvalStats struct {
	// JoinProbes is the number of candidate facts examined while
	// joining body atoms (and checking negations) across Run, RunNaive
	// and Query calls on this database.
	JoinProbes int64
	// Derived is the number of new facts asserted by rule evaluation.
	Derived int64
	// Iterations counts fixpoint rounds across all strata.
	Iterations int64
	// Strata is the number of strata of the last Run program.
	Strata int
}

// Stats returns a snapshot of the database's evaluation counters.
func (db *Database) Stats() EvalStats { return db.stats }

// predIndex is one hash index of a predicate's facts, keyed by the
// values at a fixed set of argument positions. built tracks how many
// of the predicate's facts have been indexed so far, so the index
// extends incrementally as evaluation derives new facts.
type predIndex struct {
	positions []int
	built     int
	m         map[string][]int // value key -> fact indices
}

// indexFor returns the (lazily built, incrementally extended) index of
// pred keyed by the given argument positions.
func (db *Database) indexFor(pred string, positions []int) *predIndex {
	rel := db.rels[pred]
	if rel == nil {
		return &predIndex{positions: positions, m: map[string][]int{}}
	}
	sig := positionSig(positions)
	if rel.strIdx == nil {
		rel.strIdx = map[string]*predIndex{}
	}
	ix := rel.strIdx[sig]
	if ix == nil {
		ix = &predIndex{positions: positions, m: map[string][]int{}}
		rel.strIdx[sig] = ix
	}
	facts := rel.strings(db)
	for ; ix.built < len(facts); ix.built++ {
		f := facts[ix.built]
		if len(ix.positions) > 0 && ix.positions[len(ix.positions)-1] >= len(f.Args) {
			continue // arity mismatch; unify would reject it anyway
		}
		k := factKeyAt(f, ix.positions)
		ix.m[k] = append(ix.m[k], ix.built)
	}
	return ix
}

func positionSig(positions []int) string {
	parts := make([]string, len(positions))
	for i, p := range positions {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, ",")
}

func factKeyAt(f Fact, positions []int) string {
	vals := make([]string, len(positions))
	for i, p := range positions {
		vals[i] = f.Args[p]
	}
	return strings.Join(vals, "\x00")
}

// boundPositions lists the atom's argument positions whose value is
// fixed under the binding (constants, and variables bound by earlier
// atoms), together with those values.
func boundPositions(a Atom, b binding) (positions []int, values []string) {
	for i, t := range a.Terms {
		switch {
		case t.Wild:
		case t.Var == "":
			positions = append(positions, i)
			values = append(values, t.Const)
		default:
			if v, ok := b[t.Var]; ok {
				positions = append(positions, i)
				values = append(values, v)
			}
		}
	}
	return positions, values
}

// joinPositive extends each binding in turn by matching atom a against
// the database, probing a bound-position index when any argument is
// bound and scanning the predicate's extent otherwise.
func (db *Database) joinPositive(a Atom, b binding, out []binding) []binding {
	facts := db.stringFacts(a.Pred)
	positions, values := boundPositions(a, b)
	if len(positions) == 0 {
		db.stats.JoinProbes += int64(len(facts))
		for i := range facts {
			if nb, ok := unify(a, facts[i], b); ok {
				out = append(out, nb)
			}
		}
		return out
	}
	ix := db.indexFor(a.Pred, positions)
	cand := ix.m[strings.Join(values, "\x00")]
	db.stats.JoinProbes += int64(len(cand))
	for _, i := range cand {
		if nb, ok := unify(a, facts[i], b); ok {
			out = append(out, nb)
		}
	}
	return out
}

// negHolds reports whether any fact matches the (fully bound, modulo
// wildcards) negated atom under the binding.
func (db *Database) negHolds(a Atom, b binding) bool {
	pos := Atom{Pred: a.Pred, Terms: a.Terms}
	facts := db.stringFacts(a.Pred)
	positions, values := boundPositions(pos, b)
	if len(positions) == 0 {
		for i := range facts {
			db.stats.JoinProbes++
			if _, ok := unify(pos, facts[i], b); ok {
				return true
			}
		}
		return false
	}
	ix := db.indexFor(a.Pred, positions)
	cand := ix.m[strings.Join(values, "\x00")]
	for _, i := range cand {
		db.stats.JoinProbes++
		if _, ok := unify(pos, facts[i], b); ok {
			return true
		}
	}
	return false
}

// RunStrings evaluates the rules with the original string-tuple
// semi-naive engine this package used before the interned columnar
// rewrite. It accepts exactly the same programs as Run and derives
// byte-identical fact sets (the differential corpus proves it); it is
// kept as a frozen reference point between Run and RunNaive, and as
// the evaluation path for strata touching mixed-arity predicates.
func (db *Database) RunStrings(rules []Rule) error {
	if err := checkRules(rules); err != nil {
		return err
	}
	strata, err := stratify(rules)
	if err != nil {
		return err
	}
	db.stats.Strata = len(strata)
	for _, stratum := range strata {
		if err := db.runStratum(stratum); err != nil {
			return err
		}
	}
	return nil
}

// checkRules statically enforces rule safety, so unsafe rules fail
// loudly even when no facts would reach them at run time:
//
//   - heads carry no wildcards and no negation;
//   - every head variable is bound by a positive body atom;
//   - every variable under negation is bound by a preceding positive
//     body atom (range restriction — negation as failure is only safe
//     on ground atoms).
func checkRules(rules []Rule) error {
	for _, r := range rules {
		if r.Head.Negated {
			return fmt.Errorf("datalog: negated rule head in %s", r)
		}
		bound := map[string]bool{}
		for _, a := range r.Body {
			if a.Negated {
				if err := checkNegBound(a, bound); err != nil {
					return err
				}
				continue
			}
			for _, t := range a.Terms {
				if t.Var != "" {
					bound[t.Var] = true
				}
			}
		}
		for _, t := range r.Head.Terms {
			switch {
			case t.Wild:
				return fmt.Errorf("datalog: wildcard in rule head %s", r.Head)
			case t.Var != "" && !bound[t.Var]:
				return fmt.Errorf("datalog: unbound head variable %s in %s", t.Var, r.Head)
			}
		}
	}
	return nil
}

// checkNegBound rejects negated atoms with variables not bound by a
// preceding positive atom.
func checkNegBound(a Atom, bound map[string]bool) error {
	for _, t := range a.Terms {
		if t.Var != "" && !bound[t.Var] {
			return fmt.Errorf("datalog: unbound variable %s under negation in %s", t.Var, a)
		}
	}
	return nil
}

// stratify assigns every derived predicate a stratum such that a
// positive dependency never decreases the stratum and a negative
// dependency strictly increases it, then groups the rules by their
// head's stratum in ascending order. Programs where no such assignment
// exists (recursion through negation) are rejected.
func stratify(rules []Rule) ([][]Rule, error) {
	derived := map[string]bool{}
	for _, r := range rules {
		derived[r.Head.Pred] = true
	}
	stratum := map[string]int{}
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			h := r.Head.Pred
			for _, a := range r.Body {
				if !derived[a.Pred] {
					continue // base predicates sit below every stratum
				}
				min := stratum[a.Pred]
				if a.Negated {
					min++
				}
				if stratum[h] < min {
					stratum[h] = min
					if stratum[h] > len(derived) {
						return nil, fmt.Errorf("datalog: unstratified negation of derived predicate %s in %s", a.Pred, r)
					}
					changed = true
				}
			}
		}
	}
	maxStratum := 0
	for _, s := range stratum {
		if s > maxStratum {
			maxStratum = s
		}
	}
	out := make([][]Rule, maxStratum+1)
	for _, r := range rules {
		s := stratum[r.Head.Pred]
		out[s] = append(out[s], r)
	}
	// Drop empty strata (possible when stratum numbers are sparse).
	kept := out[:0]
	for _, s := range out {
		if len(s) > 0 {
			kept = append(kept, s)
		}
	}
	return kept, nil
}

// runStratum evaluates one stratum's rules to a fixed point: an
// initial naive round over the current database seeds the delta, then
// each following round re-joins every recursive body atom against the
// previous round's delta only.
func (db *Database) runStratum(rules []Rule) error {
	cur := map[string]bool{}
	for _, r := range rules {
		cur[r.Head.Pred] = true
	}
	delta := map[string][]Fact{}
	assert := func(f Fact) {
		if db.Assert(f) {
			db.stats.Derived++
			delta[f.Pred] = append(delta[f.Pred], f)
		}
	}
	db.stats.Iterations++
	for _, r := range rules {
		if err := db.evalRule(r, nil, -1, assert); err != nil {
			return err
		}
	}
	for len(delta) > 0 {
		db.stats.Iterations++
		prev := delta
		delta = map[string][]Fact{}
		for _, r := range rules {
			for pos, a := range r.Body {
				if a.Negated || !cur[a.Pred] || len(prev[a.Pred]) == 0 {
					continue
				}
				if err := db.evalRule(r, prev[a.Pred], pos, assert); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// evalRule joins the rule body left to right and asserts the
// instantiated heads. When deltaPos >= 0, the body atom at that
// position matches only the delta facts — the semi-naive restriction —
// while every other atom joins the full relations.
func (db *Database) evalRule(r Rule, deltaFacts []Fact, deltaPos int, assert func(Fact)) error {
	bindings := []binding{{}}
	for i, atom := range r.Body {
		var next []binding
		if atom.Negated {
			for _, b := range bindings {
				if !db.negHolds(atom, b) {
					next = append(next, b)
				}
			}
		} else if i == deltaPos {
			db.stats.JoinProbes += int64(len(deltaFacts)) * int64(len(bindings))
			for _, b := range bindings {
				for _, f := range deltaFacts {
					if nb, ok := unify(atom, f, b); ok {
						next = append(next, nb)
					}
				}
			}
		} else {
			for _, b := range bindings {
				next = db.joinPositive(atom, b, next)
			}
		}
		bindings = next
		if len(bindings) == 0 {
			return nil
		}
	}
	for _, b := range bindings {
		f, err := substitute(r.Head, b)
		if err != nil {
			return err // unreachable after checkRules; kept for safety
		}
		assert(f)
	}
	return nil
}
