package datalog

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"provmark/internal/graph"
)

func sampleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	a := g.AddNode("File", graph.Properties{"Userid": "1", "Name": "text"})
	b := g.AddNode("Process", nil)
	if _, err := g.AddEdge(a, b, "Used", graph.Properties{"op": "read"}); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPrintMatchesListingFormat checks the Listing 1/2 fact syntax.
func TestPrintMatchesListingFormat(t *testing.T) {
	g := sampleGraph(t)
	out := Print(g, "g2")
	for _, want := range []string{
		`ng2(n1,"File").`,
		`ng2(n2,"Process").`,
		`eg2(e1,n1,n2,"Used").`,
		`pg2(n1,"Userid","1").`,
		`pg2(n1,"Name","text").`,
		`pg2(e1,"op","read").`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing fact %q in output:\n%s", want, out)
		}
	}
}

func TestRoundTripPreservesGraph(t *testing.T) {
	g := sampleGraph(t)
	text := Print(g, "x")
	h, gid, err := ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	if gid != "x" {
		t.Errorf("gid = %q, want x", gid)
	}
	if !graph.Equal(g, h) {
		t.Errorf("round trip changed graph:\n%s\nvs\n%s", g, h)
	}
}

func TestRoundTripEscaping(t *testing.T) {
	g := graph.New()
	a := g.AddNode(`la"bel\with`, graph.Properties{
		"key\"q": "value with, comma and \"quotes\" and \\backslash",
		"multi":  "line1\nline2",
	})
	b := g.AddNode("plain", nil)
	if _, err := g.AddEdge(a, b, "e,dge", nil); err != nil {
		t.Fatal(err)
	}
	h, _, err := ParseString(Print(g, "esc"))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, h) {
		t.Errorf("escaping round trip failed:\n%s\nvs\n%s", g, h)
	}
}

// TestRoundTripProperty: Print->Parse is the identity on random graphs.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := graph.New()
		n := 1 + rng.Intn(10)
		var ids []graph.ElemID
		for i := 0; i < n; i++ {
			props := graph.Properties{}
			for p := 0; p < rng.Intn(4); p++ {
				props["k"+strconv.Itoa(p)] = "v" + strconv.Itoa(rng.Intn(100))
			}
			ids = append(ids, g.AddNode("L"+strconv.Itoa(rng.Intn(3)), props))
		}
		for i := 0; i < rng.Intn(15); i++ {
			if _, err := g.AddEdge(ids[rng.Intn(n)], ids[rng.Intn(n)], "E"+strconv.Itoa(rng.Intn(2)), nil); err != nil {
				return false
			}
		}
		h, _, err := ParseString(Print(g, "q"))
		if err != nil {
			return false
		}
		return graph.Equal(g, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 75}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"no dot", `ng(n1,"X")`},
		{"bad predicate", `xg(n1,"X").`},
		{"no gid", `n(n1,"X").`},
		{"wrong arity node", `ng(n1).`},
		{"wrong arity edge", `eg(e1,n1,"X").`},
		{"unterminated string", `ng(n1,"X).`},
		{"mixed gids", "ng1(n1,\"X\").\nng2(n2,\"Y\")."},
		{"prop for unknown element", `pg(n9,"k","v").`},
		{"edge endpoint missing", `eg(e1,n1,n2,"E").`},
	}
	for _, tc := range cases {
		if _, _, err := ParseString(tc.input); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.input)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	input := "% comment\n\nng(n1,\"X\").\n"
	g, _, err := ParseString(input)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 1 {
		t.Errorf("got %d nodes", g.NumNodes())
	}
}

func TestParseOutOfOrderFacts(t *testing.T) {
	// Properties and edges before the nodes they reference.
	input := `pg(e1,"k","v").
eg(e1,n1,n2,"E").
ng(n2,"Y").
ng(n1,"X").`
	g, _, err := ParseString(input)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("parsed %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Edge("e1").Props["k"] != "v" {
		t.Error("edge property lost")
	}
}

func TestNormalizeGivesCanonicalIDs(t *testing.T) {
	g := sampleGraph(t)
	n := Normalize(g)
	var ids []string
	for _, node := range n.Nodes() {
		ids = append(ids, string(node.ID))
	}
	if len(ids) != 2 || ids[0] != "n1" || ids[1] != "n2" {
		t.Errorf("ids not canonical: %v", ids)
	}
}

// TestNormalizeIsomorphismInvariant: renaming elements must not change
// the normalized graph.
func TestNormalizeIsomorphismInvariant(t *testing.T) {
	g := graph.New()
	a := g.AddNode("X", graph.Properties{"p": "1"})
	b := g.AddNode("Y", nil)
	c := g.AddNode("X", graph.Properties{"p": "2"})
	if _, err := g.AddEdge(a, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(c, b, "E", nil); err != nil {
		t.Fatal(err)
	}
	// Same graph, inserted in a different order with different ids.
	h := graph.New()
	hc := graph.ElemID("zz3")
	hb := graph.ElemID("zz2")
	ha := graph.ElemID("zz1")
	if err := h.InsertNode(hc, "X", graph.Properties{"p": "2"}); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertNode(hb, "Y", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertNode(ha, "X", graph.Properties{"p": "1"}); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertEdge("ee2", hc, hb, "E", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.InsertEdge("ee1", ha, hb, "E", nil); err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(Normalize(g), Normalize(h)) {
		t.Errorf("normalization not invariant:\n%s\nvs\n%s", Normalize(g), Normalize(h))
	}
}
