//go:build race

package datalog

// raceDetector lets probe-heavy tests shrink their workloads when the
// race detector multiplies the cost of every memory access.
const raceDetector = true
