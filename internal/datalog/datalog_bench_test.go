package datalog

import "testing"

// BenchmarkDatalogAncestry measures transitive-closure (ancestry)
// evaluation over 2000-e-fact graphs and reports the join-probe
// counters alongside wall clock, so the semi-naive vs naive gap is
// visible as a number, not just a feeling:
//
//   - flat:      400 chains x 5 edges — shallow recursion, a shape the
//     naive reference can still finish, benchmarked under both engines.
//   - deep:      one chain of 2000 edges with a single-source ancestry
//     goal — recursion 2000 deep. Semi-naive only: the naive reference
//     needs ~4e9 probes here (hours), which is exactly the
//     super-quadratic blowup the rewrite removes.
func BenchmarkDatalogAncestry(b *testing.B) {
	b.Run("seminaive-flat", func(b *testing.B) {
		benchAncestry(b, (*Database).Run)
	})
	b.Run("naive-flat", func(b *testing.B) {
		benchAncestry(b, (*Database).RunNaive)
	})
	b.Run("seminaive-deep", func(b *testing.B) {
		g := ancestryGraph(b, 1, 2000)
		rules, err := ParseRules(`
anc(Y) :- edge(_, "n1", Y, _).
anc(Z) :- anc(Y), edge(_, Y, Z, _).
`)
		if err != nil {
			b.Fatal(err)
		}
		var probes int64
		for i := 0; i < b.N; i++ {
			db := NewDatabase()
			db.LoadGraph(g)
			if err := db.Run(rules); err != nil {
				b.Fatal(err)
			}
			if got := len(db.Facts("anc")); got != 2000 {
				b.Fatalf("anc facts = %d, want 2000", got)
			}
			probes = db.Stats().JoinProbes
		}
		b.ReportMetric(float64(probes), "probes/op")
	})
}

func benchAncestry(b *testing.B, eval func(*Database, []Rule) error) {
	g := ancestryGraph(b, 400, 5)
	b.ResetTimer()
	var probes int64
	for i := 0; i < b.N; i++ {
		db := runAncestry(b, g, eval)
		if got := len(db.Facts("anc")); got != 400*15 {
			b.Fatalf("anc facts = %d, want %d", got, 400*15)
		}
		probes = db.Stats().JoinProbes
	}
	b.ReportMetric(float64(probes), "probes/op")
}
