package datalog

import (
	"strings"
	"testing"

	"provmark/internal/graph"
)

func negSample(t *testing.T) *Database {
	t.Helper()
	g := graph.New()
	p1 := g.AddNode("Process", graph.Properties{"pid": "1"})
	p2 := g.AddNode("Process", graph.Properties{"pid": "2"})
	f := g.AddNode("Artifact", graph.Properties{"path": "/secret"})
	if _, err := g.AddEdge(p1, f, "Used", nil); err != nil {
		t.Fatal(err)
	}
	_ = p2 // p2 never touches the file
	db := NewDatabase()
	db.LoadGraph(g)
	return db
}

// TestNegationAsFailure: find processes that never used any artifact.
func TestNegationAsFailure(t *testing.T) {
	db := negSample(t)
	rules, err := ParseRules(`
proc(P) :- node(P, "Process").
idle(P) :- proc(P), not edge(_, P, _, "Used").
`)
	if err != nil {
		t.Fatal(err)
	}
	// "idle" negates a base predicate (edge), "proc" is positive: this
	// is within the semipositive fragment... but edge has a wildcard
	// under negation, which is allowed (wildcards match anything).
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	res := db.Query(Atom{Pred: "idle", Terms: []Term{V("P")}})
	if len(res) != 1 || res[0]["P"] != "n2" {
		t.Errorf("idle = %v, want [n2]", res)
	}
}

func TestNegationParsing(t *testing.T) {
	r, err := ParseRule(`lonely(X) :- node(X, _), not edge(_, X, _, _).`)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Body[1].Negated {
		t.Error("negation not parsed")
	}
	if !strings.Contains(r.String(), "not edge") {
		t.Errorf("rendering lost negation: %s", r)
	}
	// Round trip.
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() != r.String() {
		t.Errorf("%s vs %s", r, r2)
	}
}

// TestUnstratifiedNegationRejected: negating a derived predicate is
// outside the supported fragment and must be rejected loudly.
func TestUnstratifiedNegationRejected(t *testing.T) {
	db := negSample(t)
	rules, err := ParseRules(`
p(X) :- node(X, _), not q(X).
q(X) :- node(X, _), not p(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err == nil {
		t.Error("unstratified negation accepted")
	}
}

// TestUnboundNegationRejected: negated atoms must be range-restricted.
func TestUnboundNegationRejected(t *testing.T) {
	db := negSample(t)
	rules, err := ParseRules(`
bad(X) :- not node(X, "Process").
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err == nil {
		t.Error("unbound variable under negation accepted")
	}
}

// TestNegationDetectionUseCase: the Dora pattern refined with negation —
// escalations that were never followed by a privilege drop.
func TestNegationDetectionUseCase(t *testing.T) {
	g := graph.New()
	v1 := g.AddNode("activity", graph.Properties{"cf:setid": "uid=0", "cf:uid": "0"})
	v0 := g.AddNode("activity", nil)
	v2 := g.AddNode("activity", graph.Properties{"cf:setid": "uid=1000", "cf:uid": "1000"})
	if _, err := g.AddEdge(v1, v0, "wasInformedBy", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(v2, v1, "wasInformedBy", nil); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.LoadGraph(g)
	rules, err := ParseRules(`
escalated(X) :- prop(X, "cf:setid", "uid=0").
undropped(X) :- escalated(X), not edge(_, _, X, "wasInformedBy").
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	// v1 escalated but v2 (the drop) descends from it, so nothing is
	// "undropped" here.
	if res := db.Query(Atom{Pred: "undropped", Terms: []Term{V("X")}}); len(res) != 0 {
		t.Errorf("undropped = %v, want none", res)
	}
	// Remove the drop edge: now the escalation is unmitigated.
	g2 := graph.New()
	w1 := g2.AddNode("activity", graph.Properties{"cf:setid": "uid=0", "cf:uid": "0"})
	w0 := g2.AddNode("activity", nil)
	if _, err := g2.AddEdge(w1, w0, "wasInformedBy", nil); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase()
	db2.LoadGraph(g2)
	if err := db2.Run(rules); err != nil {
		t.Fatal(err)
	}
	if res := db2.Query(Atom{Pred: "undropped", Terms: []Term{V("X")}}); len(res) != 1 {
		t.Errorf("undropped = %v, want one", res)
	}
}
