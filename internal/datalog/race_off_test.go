//go:build !race

package datalog

const raceDetector = false
