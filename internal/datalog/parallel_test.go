package datalog

import (
	"fmt"
	"testing"
)

// hammerProgram is a multi-stratum recursive program exercising every
// parallel-engine surface at once: two mutually recursive closures in
// the bottom stratum (several delta tasks per round), a negation
// stratum above them, and a final stratum recursing over the negated
// result.
const hammerProgram = `
anc(X, Y) :- edge(_, X, Y, _).
anc(X, Z) :- anc(X, Y), edge(_, Y, Z, _).
desc(X, Y) :- edge(_, Y, X, _).
desc(X, Z) :- desc(X, Y), edge(_, Z, Y, _).
linked(X, Y) :- anc(X, Y), desc(Y, X).
root(X) :- node(X, _), not desc(X, X).
isolated(X) :- root(X), not anc(X, X).
spread(X) :- isolated(X).
spread(Y) :- spread(X), anc(X, Y).
`

// TestParallelCountersExact: RunParallel must produce identical fact
// sets AND identical EvalStats counters at every worker width — the
// per-task counter buffers merged at round barriers are exact, not
// approximate. Run under -race in CI, this doubles as the data-race
// hammer for the worker pool.
func TestParallelCountersExact(t *testing.T) {
	rules, err := ParseRules(hammerProgram)
	if err != nil {
		t.Fatal(err)
	}
	chains, length := 30, 6
	if testing.Short() {
		chains = 8
	}
	g := ancestryGraph(t, chains, length)
	var wantFacts string
	var wantStats EvalStats
	for width := 1; width <= 4; width++ {
		db := NewDatabase()
		db.LoadGraph(g)
		if err := db.RunParallel(rules, width); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		facts, stats := dumpFacts(db), db.Stats()
		if width == 1 {
			wantFacts, wantStats = facts, stats
			if stats.Strata < 2 {
				t.Fatalf("hammer program has %d strata, want >= 2", stats.Strata)
			}
			continue
		}
		if facts != wantFacts {
			t.Errorf("width %d: fact set differs from width 1", width)
		}
		if stats != wantStats {
			t.Errorf("width %d: stats = %+v, want %+v (width 1)", width, stats, wantStats)
		}
	}
}

// TestParallelDerivationOrderDeterministic: the columnar fact order —
// not just the sorted fact set — must be identical at every width,
// since deterministic merge order is what makes the parallel engine's
// counters and Facts() output reproducible.
func TestParallelDerivationOrderDeterministic(t *testing.T) {
	rules, err := ParseRules(hammerProgram)
	if err != nil {
		t.Fatal(err)
	}
	g := ancestryGraph(t, 10, 5)
	order := func(width int) string {
		db := NewDatabase()
		db.LoadGraph(g)
		if err := db.RunParallel(rules, width); err != nil {
			t.Fatal(err)
		}
		var s string
		for _, pred := range db.Predicates() {
			for _, f := range db.Facts(pred) {
				s += f.String() + "\n"
			}
		}
		return s
	}
	want := order(1)
	for width := 2; width <= 4; width++ {
		if got := order(width); got != want {
			t.Errorf("width %d: derivation order differs from width 1", width)
		}
	}
}

// TestSetParallelismWidths: the SetParallelism knob drives Run itself,
// and concurrent Query traffic after a parallel Run sees a consistent
// database.
func TestSetParallelismWidths(t *testing.T) {
	rules, err := ParseRules(hammerProgram)
	if err != nil {
		t.Fatal(err)
	}
	g := ancestryGraph(t, 12, 4)
	var want string
	for _, width := range []int{0, 1, 2, 8} {
		db := NewDatabase()
		db.LoadGraph(g)
		db.SetParallelism(width)
		if err := db.Run(rules); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		got := dumpFacts(db)
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("width %d: fact set differs", width)
		}
		rows := db.Query(Atom{Pred: "spread", Terms: []Term{V("X")}})
		if len(rows) == 0 {
			t.Fatalf("width %d: spread query empty", width)
		}
	}
}

func BenchmarkParallelAncestry(b *testing.B) {
	g := ancestryGraph(b, 400, 5)
	rules, err := ParseRules(ancestryRules)
	if err != nil {
		b.Fatal(err)
	}
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := NewDatabase()
				db.LoadGraph(g)
				if err := db.RunParallel(rules, width); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
