package datalog

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// The differential harness: generate randomized rule/fact programs
// inside the fragment both engines speak (semipositive Datalog —
// negation over base predicates only, since the frozen naive reference
// rejects negation of derived predicates), run the semi-naive engine
// and the naive reference on separate databases, and require the
// byte-identical sorted fact transcript from both. Recursion arises
// naturally whenever a derived predicate lands in a rule body.

// diffConfig spans the generator's vocabulary.
var (
	diffConsts   = []string{"a", "b", "c", "d", "e"}
	diffVars     = []string{"X", "Y", "Z", "W"}
	diffBase     = []string{"b0", "b1", "b2"}
	diffBaseAr   = map[string]int{"b0": 1, "b1": 2, "b2": 2}
	diffDerived  = []string{"d0", "d1", "d2", "d3"}
	diffDerive   = map[string]int{"d0": 1, "d1": 1, "d2": 2, "d3": 2}
	diffPrograms = 150
)

// genTerm picks a term: mostly variables from the pool, sometimes a
// constant, occasionally a wildcard.
func genTerm(rng *rand.Rand) Term {
	switch rng.Intn(10) {
	case 0:
		return C(diffConsts[rng.Intn(len(diffConsts))])
	case 1:
		return W()
	default:
		return V(diffVars[rng.Intn(len(diffVars))])
	}
}

// genAtom builds a body atom for the given predicate.
func genAtom(rng *rand.Rand, pred string, arity int) Atom {
	terms := make([]Term, arity)
	for i := range terms {
		terms[i] = genTerm(rng)
	}
	return Atom{Pred: pred, Terms: terms}
}

// genRule builds one safe rule: 1-3 positive body atoms over base and
// derived predicates, an optional negated base atom over already-bound
// variables, and a head whose variables are all bound.
func genRule(rng *rand.Rand) Rule {
	nBody := 1 + rng.Intn(3)
	var body []Atom
	bound := map[string]bool{}
	for i := 0; i < nBody; i++ {
		var pred string
		var arity int
		if rng.Intn(3) == 0 {
			pred = diffDerived[rng.Intn(len(diffDerived))]
			arity = diffDerive[pred]
		} else {
			pred = diffBase[rng.Intn(len(diffBase))]
			arity = diffBaseAr[pred]
		}
		a := genAtom(rng, pred, arity)
		for _, t := range a.Terms {
			if t.Var != "" {
				bound[t.Var] = true
			}
		}
		body = append(body, a)
	}
	// Optional negated base atom, restricted to bound variables,
	// constants and wildcards, appended last so it is range-restricted.
	if len(bound) > 0 && rng.Intn(3) == 0 {
		pred := diffBase[rng.Intn(len(diffBase))]
		terms := make([]Term, diffBaseAr[pred])
		var boundVars []string
		for v := range bound {
			boundVars = append(boundVars, v)
		}
		sort.Strings(boundVars) // map order must not leak into the program
		for i := range terms {
			switch rng.Intn(3) {
			case 0:
				terms[i] = C(diffConsts[rng.Intn(len(diffConsts))])
			case 1:
				terms[i] = W()
			default:
				terms[i] = V(boundVars[rng.Intn(len(boundVars))])
			}
		}
		body = append(body, Atom{Pred: pred, Terms: terms, Negated: true})
	}
	// Head: a derived predicate over bound variables and constants.
	headPred := diffDerived[rng.Intn(len(diffDerived))]
	headTerms := make([]Term, diffDerive[headPred])
	var boundVars []string
	for v := range bound {
		boundVars = append(boundVars, v)
	}
	sort.Strings(boundVars)
	for i := range headTerms {
		if len(boundVars) > 0 && rng.Intn(4) != 0 {
			headTerms[i] = V(boundVars[rng.Intn(len(boundVars))])
		} else {
			headTerms[i] = C(diffConsts[rng.Intn(len(diffConsts))])
		}
	}
	return Rule{Head: Atom{Pred: headPred, Terms: headTerms}, Body: body}
}

// genProgram builds a random program and its base facts.
func genProgram(rng *rand.Rand) ([]Rule, []Fact) {
	nRules := 2 + rng.Intn(5)
	rules := make([]Rule, 0, nRules)
	for i := 0; i < nRules; i++ {
		rules = append(rules, genRule(rng))
	}
	// A few ground fact-rules exercise the empty-body path.
	if rng.Intn(2) == 0 {
		pred := diffDerived[rng.Intn(len(diffDerived))]
		terms := make([]Term, diffDerive[pred])
		for i := range terms {
			terms[i] = C(diffConsts[rng.Intn(len(diffConsts))])
		}
		rules = append(rules, Rule{Head: Atom{Pred: pred, Terms: terms}})
	}
	var facts []Fact
	nFacts := 5 + rng.Intn(15)
	for i := 0; i < nFacts; i++ {
		pred := diffBase[rng.Intn(len(diffBase))]
		args := make([]string, diffBaseAr[pred])
		for j := range args {
			args[j] = diffConsts[rng.Intn(len(diffConsts))]
		}
		facts = append(facts, Fact{Pred: pred, Args: args})
	}
	return rules, facts
}

// TestDifferentialSemiNaiveVsNaive is the acceptance gate of the
// engine rewrites: on the randomized corpus, the full engine lineup —
// interned sequential (Run at width 1), interned parallel
// (RunParallel at width 3), the frozen string engine (RunStrings) and
// the frozen naive oracle (RunNaive) — must either fail identically or
// derive byte-identical sorted fact sets. The two interned variants
// must additionally agree on every evaluation counter, the exactness
// guarantee of the round-barrier design.
func TestDifferentialSemiNaiveVsNaive(t *testing.T) {
	engines := []struct {
		name string
		eval func(*Database, []Rule) error
	}{
		{"interned-seq", func(db *Database, rules []Rule) error { return db.RunParallel(rules, 1) }},
		{"interned-par", func(db *Database, rules []Rule) error { return db.RunParallel(rules, 3) }},
		{"strings", (*Database).RunStrings},
		{"naive", (*Database).RunNaive},
	}
	rng := rand.New(rand.NewSource(20260728))
	for p := 0; p < diffPrograms; p++ {
		rules, facts := genProgram(rng)
		name := fmt.Sprintf("program-%03d", p)
		dbs := make([]*Database, len(engines))
		errs := make([]error, len(engines))
		for i, eng := range engines {
			dbs[i] = NewDatabase()
			for _, f := range facts {
				dbs[i].Assert(f)
			}
			errs[i] = eng.eval(dbs[i], rules)
		}
		for i := 1; i < len(engines); i++ {
			if (errs[0] == nil) != (errs[i] == nil) {
				t.Fatalf("%s: engines disagree on acceptance: %s=%v %s=%v\nprogram:\n%s",
					name, engines[0].name, errs[0], engines[i].name, errs[i], renderProgram(rules, facts))
			}
		}
		if errs[0] != nil {
			continue
		}
		want := dumpFacts(dbs[0])
		for i := 1; i < len(engines); i++ {
			if got := dumpFacts(dbs[i]); got != want {
				t.Fatalf("%s: fact sets differ\n%s:\n%s\n%s:\n%s\nprogram:\n%s",
					name, engines[0].name, want, engines[i].name, got, renderProgram(rules, facts))
			}
		}
		if seq, par := dbs[0].Stats(), dbs[1].Stats(); seq != par {
			t.Fatalf("%s: interned counters diverge across widths: seq=%+v par=%+v\nprogram:\n%s",
				name, seq, par, renderProgram(rules, facts))
		}
	}
}

// TestDifferentialMixedArityFallback pins the mixed-arity escape
// hatch: predicates asserted (or derived) at more than one arity push
// their strata onto the string engine, and every engine still agrees.
func TestDifferentialMixedArityFallback(t *testing.T) {
	programs := []string{
		// p asserted at arity 1 and 2 before evaluation.
		"q(X) :- p(X).\nr(X, Y) :- p(X, Y).",
		// Rules themselves derive p at two arities.
		"p(X) :- b(X).\np(X, X) :- b(X).\nq(Y) :- p(Y, Y).",
		// Mixed-arity predicate under negation.
		"q(X) :- b(X), not p(X).",
	}
	baseFacts := []Fact{
		{Pred: "p", Args: []string{"a"}},
		{Pred: "p", Args: []string{"a", "b"}},
		{Pred: "b", Args: []string{"a"}},
		{Pred: "b", Args: []string{"c"}},
	}
	for i, text := range programs {
		rules, err := ParseRules(text)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		run := func(eval func(*Database, []Rule) error) (*Database, error) {
			db := NewDatabase()
			for _, f := range baseFacts {
				db.Assert(f)
			}
			return db, eval(db, rules)
		}
		interned, errI := run((*Database).Run)
		str, errS := run((*Database).RunStrings)
		if (errI == nil) != (errS == nil) {
			t.Fatalf("program %d: acceptance differs: interned=%v strings=%v", i, errI, errS)
		}
		if errI != nil {
			continue
		}
		if got, want := dumpFacts(interned), dumpFacts(str); got != want {
			t.Errorf("program %d: fact sets differ\ninterned:\n%s\nstrings:\n%s", i, got, want)
		}
	}
}

// TestDifferentialParseRoundTrip re-parses every generated program
// from its rendered text and reruns it, proving the concrete syntax
// can carry everything the generator produces.
func TestDifferentialParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for p := 0; p < 25; p++ {
		rules, facts := genProgram(rng)
		var text string
		for _, r := range rules {
			text += r.String() + "\n"
		}
		reparsed, err := ParseRules(text)
		if err != nil {
			t.Fatalf("reparse:\n%s\n%v", text, err)
		}
		direct, viaText := NewDatabase(), NewDatabase()
		for _, f := range facts {
			direct.Assert(f)
			viaText.Assert(f)
		}
		errA, errB := direct.Run(rules), viaText.Run(reparsed)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("parse round trip changes acceptance: %v vs %v\n%s", errA, errB, text)
		}
		if errA == nil && dumpFacts(direct) != dumpFacts(viaText) {
			t.Fatalf("parse round trip changes derivation:\n%s", text)
		}
	}
}

func renderProgram(rules []Rule, facts []Fact) string {
	var s string
	for _, f := range facts {
		s += f.String() + "\n"
	}
	for _, r := range rules {
		s += r.String() + "\n"
	}
	return s
}
