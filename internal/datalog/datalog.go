// Package datalog implements the common Datalog property-graph format of
// Listing 1 in the paper:
//
//	Node     n<gid>(<nodeID>,<label>)
//	Edge     e<gid>(<edgeID>,<srcID>,<tgtID>,<label>)
//	Property p<gid>(<nodeID/edgeID>,<key>,<value>)
//
// Every tool-specific output format is translated into this form by the
// transformation stage; all later stages (generalization, comparison,
// regression storage) operate on it exclusively.
package datalog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"provmark/internal/graph"
)

// Print renders a graph as Datalog facts under the given graph id.
// Output order is deterministic: nodes, then edges, then properties, each
// in insertion order with property keys sorted.
func Print(g *graph.Graph, gid string) string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "n%s(%s,%s).\n", gid, n.ID, quote(n.Label))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "e%s(%s,%s,%s,%s).\n", gid, e.ID, e.Src, e.Tgt, quote(e.Label))
	}
	for _, n := range g.Nodes() {
		for _, k := range graph.PropKeys(n.Props) {
			fmt.Fprintf(&b, "p%s(%s,%s,%s).\n", gid, n.ID, quote(k), quote(n.Props[k]))
		}
	}
	for _, e := range g.Edges() {
		for _, k := range graph.PropKeys(e.Props) {
			fmt.Fprintf(&b, "p%s(%s,%s,%s).\n", gid, e.ID, quote(k), quote(e.Props[k]))
		}
	}
	return b.String()
}

// quote renders a Datalog string constant with escaping for embedded
// quotes and backslashes.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// SyntaxError reports a malformed Datalog fact with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("datalog: line %d: %s", e.Line, e.Msg)
}

// Parse reads Datalog facts and rebuilds the property graph they encode.
// All facts must share a single graph id; Parse returns that id alongside
// the graph. Facts may arrive in any order: properties and edges may
// precede the nodes they reference, so parsing is two-pass.
func Parse(r io.Reader) (*graph.Graph, string, error) {
	type edgeFact struct{ id, src, tgt, label string }
	type propFact struct{ id, key, value string }
	var (
		gid       string
		nodeFacts []struct{ id, label string }
		edgeFacts []edgeFact
		propFacts []propFact
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		kind, factGid, args, err := parseFact(line)
		if err != nil {
			return nil, "", &SyntaxError{Line: lineNo, Msg: err.Error()}
		}
		if gid == "" {
			gid = factGid
		} else if factGid != gid {
			return nil, "", &SyntaxError{Line: lineNo, Msg: fmt.Sprintf("mixed graph ids %q and %q", gid, factGid)}
		}
		switch kind {
		case 'n':
			if len(args) != 2 {
				return nil, "", &SyntaxError{Line: lineNo, Msg: "node fact needs 2 arguments"}
			}
			nodeFacts = append(nodeFacts, struct{ id, label string }{args[0], args[1]})
		case 'e':
			if len(args) != 4 {
				return nil, "", &SyntaxError{Line: lineNo, Msg: "edge fact needs 4 arguments"}
			}
			edgeFacts = append(edgeFacts, edgeFact{args[0], args[1], args[2], args[3]})
		case 'p':
			if len(args) != 3 {
				return nil, "", &SyntaxError{Line: lineNo, Msg: "property fact needs 3 arguments"}
			}
			propFacts = append(propFacts, propFact{args[0], args[1], args[2]})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", fmt.Errorf("datalog: read: %w", err)
	}

	g := graph.New()
	for _, n := range nodeFacts {
		if err := g.InsertNode(graph.ElemID(n.id), n.label, nil); err != nil {
			return nil, "", fmt.Errorf("datalog: %w", err)
		}
	}
	for _, e := range edgeFacts {
		if err := g.InsertEdge(graph.ElemID(e.id), graph.ElemID(e.src), graph.ElemID(e.tgt), e.label, nil); err != nil {
			return nil, "", fmt.Errorf("datalog: %w", err)
		}
	}
	for _, p := range propFacts {
		if err := g.SetProp(graph.ElemID(p.id), p.key, p.value); err != nil {
			return nil, "", fmt.Errorf("datalog: property for unknown element %q", p.id)
		}
	}
	return g, gid, nil
}

// ParseString is Parse over an in-memory string.
func ParseString(s string) (*graph.Graph, string, error) {
	return Parse(strings.NewReader(s))
}

// parseFact splits one fact "k<gid>(a1,...,an)." into its kind rune,
// graph id, and argument list. String arguments are unquoted.
func parseFact(line string) (byte, string, []string, error) {
	if !strings.HasSuffix(line, ".") {
		return 0, "", nil, fmt.Errorf("fact %q does not end with '.'", line)
	}
	line = line[:len(line)-1]
	open := strings.IndexByte(line, '(')
	if open < 2 {
		return 0, "", nil, fmt.Errorf("fact %q has no predicate arguments", line)
	}
	head := line[:open]
	kind := head[0]
	if kind != 'n' && kind != 'e' && kind != 'p' {
		return 0, "", nil, fmt.Errorf("unknown predicate %q", head)
	}
	gid := head[1:]
	if gid == "" {
		return 0, "", nil, fmt.Errorf("predicate %q lacks a graph id", head)
	}
	if !strings.HasSuffix(line, ")") {
		return 0, "", nil, fmt.Errorf("fact %q is not closed", line)
	}
	args, err := splitArgs(line[open+1 : len(line)-1])
	if err != nil {
		return 0, "", nil, err
	}
	return kind, gid, args, nil
}

// splitArgs splits a comma-separated argument list, honouring quoted
// strings with backslash escapes.
func splitArgs(s string) ([]string, error) {
	var args []string
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("trailing comma in %q", s)
		}
		if s[i] == '"' {
			val, rest, err := scanQuoted(s[i:])
			if err != nil {
				return nil, err
			}
			args = append(args, val)
			i = len(s) - len(rest)
		} else {
			j := i
			for j < len(s) && s[j] != ',' {
				j++
			}
			args = append(args, strings.TrimSpace(s[i:j]))
			i = j
		}
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("expected ',' at %q", s[i:])
			}
			i++
		}
	}
	return args, nil
}

// scanQuoted consumes a leading quoted string and returns its unescaped
// value and the remainder of the input.
func scanQuoted(s string) (string, string, error) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string at %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i+1])
			}
			i += 2
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated string in %q", s)
}

// Normalize renumbers a graph's node and edge identifiers to the
// canonical n1..nk / e1..em sequence in a deterministic order derived
// from WL colours, labels and sorted properties. Two Equal-after-
// Normalize graphs are isomorphic with identical properties; the
// regression store normalizes before diffing so that volatile identifier
// allocation between tool versions does not trigger false regressions.
func Normalize(g *graph.Graph) *graph.Graph {
	colors := graph.WLColors(g, 3)
	nodeKey := func(n *graph.Node) string {
		return colors[n.ID] + "|" + n.Label + "|" + propSig(n.Props)
	}
	nodes := g.Nodes()
	sort.SliceStable(nodes, func(i, j int) bool { return nodeKey(nodes[i]) < nodeKey(nodes[j]) })
	rename := make(map[graph.ElemID]graph.ElemID, len(nodes))
	out := graph.New()
	for i, n := range nodes {
		id := graph.ElemID("n" + strconv.Itoa(i+1))
		rename[n.ID] = id
		if err := out.InsertNode(id, n.Label, n.Props); err != nil {
			panic("datalog: normalize node: " + err.Error()) // fresh ids cannot collide
		}
	}
	edges := g.Edges()
	edgeKey := func(e *graph.Edge) string {
		return string(rename[e.Src]) + "|" + e.Label + "|" + string(rename[e.Tgt]) + "|" + propSig(e.Props)
	}
	sort.SliceStable(edges, func(i, j int) bool { return edgeKey(edges[i]) < edgeKey(edges[j]) })
	for i, e := range edges {
		id := graph.ElemID("e" + strconv.Itoa(i+1))
		if err := out.InsertEdge(id, rename[e.Src], rename[e.Tgt], e.Label, e.Props); err != nil {
			panic("datalog: normalize edge: " + err.Error())
		}
	}
	return out
}

func propSig(p graph.Properties) string {
	parts := make([]string, 0, len(p))
	for _, k := range graph.PropKeys(p) {
		parts = append(parts, k+"="+p[k])
	}
	return strings.Join(parts, ";")
}
