package analyze

import (
	"fmt"
	"strings"
)

// Human renders one diagnostic in the conventional compiler shape:
// "file:line:col: severity: message [code]". Program-level findings
// (zero span) carry no line:col.
func (d Diagnostic) Human(file string) string {
	pos := file
	if d.Span.Line > 0 {
		pos = fmt.Sprintf("%s:%d:%d", file, d.Span.Line, d.Span.Col)
	}
	return fmt.Sprintf("%s: %s: %s [%s]", pos, d.Severity, d.Message, d.Code)
}

// Render joins the human form of every diagnostic, one per line —
// what the CLIs print to stderr.
func Render(file string, diags []Diagnostic) string {
	if len(diags) == 0 {
		return ""
	}
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.Human(file))
		b.WriteByte('\n')
	}
	return b.String()
}

// Exclude returns diags without the findings of one code — e.g. the
// evaluation surfaces drop unreachable-rule warnings, which describe
// the optimizer's pruning rather than a defect, while provmark-dlint
// -goal keeps them.
func Exclude(diags []Diagnostic, code Code) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Code != code {
			out = append(out, d)
		}
	}
	return out
}

// Count tallies diagnostics by severity.
func Count(diags []Diagnostic) (errors, warnings int) {
	for _, d := range diags {
		if d.Severity == Error {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// Summary renders "N error(s), M warning(s)" for CLI status lines.
func Summary(diags []Diagnostic) string {
	errors, warnings := Count(diags)
	return fmt.Sprintf("%d error(s), %d warning(s)", errors, warnings)
}
