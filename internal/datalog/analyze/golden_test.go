package analyze_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// goldenGoals maps fixtures that are analyzed goal-directed to their
// goal atom; everything else runs the no-goal passes.
var goldenGoals = map[string]string{
	"unreachable_rule.dl": "tainted(X)",
}

// TestGoldenDiagnostics checks the full human-rendered diagnostic
// output of every .dl fixture against its .golden file — one fixture
// per diagnostic class, pinning spans, severities, codes and message
// wording. Regenerate with: go test ./internal/datalog/analyze -run Golden -update
func TestGoldenDiagnostics(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.dl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures in testdata")
	}
	covered := map[analyze.Code]bool{}
	for _, path := range fixtures {
		name := filepath.Base(path)
		t.Run(name, func(t *testing.T) {
			opts := analyze.Options{}
			if goalText, ok := goldenGoals[name]; ok {
				goal, err := datalog.ParseAtom(goalText)
				if err != nil {
					t.Fatal(err)
				}
				opts.Goal = &goal
			}
			_, diags, err := analyze.CheckFile(path, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				covered[d.Code] = true
			}
			got := analyze.Render(name, diags)
			goldenPath := strings.TrimSuffix(path, ".dl") + ".golden"
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics drifted from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
	if *update {
		return
	}
	// Every catalogued diagnostic class must appear in some fixture, so
	// a new code cannot land without a golden example.
	for _, entry := range analyze.Catalogue() {
		if !covered[entry.Code] {
			t.Errorf("diagnostic class %s has no golden fixture", entry.Code)
		}
	}
}
