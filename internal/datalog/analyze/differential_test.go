package analyze_test

import (
	"fmt"
	"io/fs"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
)

// The optimizer's differential oracle: pruning and reordering must be
// invisible in the answers. Over the randomized corpus (the same
// generator shape and seed as the engine's semi-naive-vs-naive
// harness) and over every checked-in rule file, the optimized program
// must return byte-identical formatted bindings for every derived
// goal, and reordering alone must leave the full fact transcript
// byte-identical.

var (
	diffConsts  = []string{"a", "b", "c", "d", "e"}
	diffVars    = []string{"X", "Y", "Z", "W"}
	diffBase    = []string{"b0", "b1", "b2"}
	diffBaseAr  = map[string]int{"b0": 1, "b1": 2, "b2": 2}
	diffDerived = []string{"d0", "d1", "d2", "d3"}
	diffDerive  = map[string]int{"d0": 1, "d1": 1, "d2": 2, "d3": 2}
)

func genTerm(rng *rand.Rand) datalog.Term {
	switch rng.Intn(10) {
	case 0:
		return datalog.C(diffConsts[rng.Intn(len(diffConsts))])
	case 1:
		return datalog.W()
	default:
		return datalog.V(diffVars[rng.Intn(len(diffVars))])
	}
}

func genAtom(rng *rand.Rand, pred string, arity int) datalog.Atom {
	terms := make([]datalog.Term, arity)
	for i := range terms {
		terms[i] = genTerm(rng)
	}
	return datalog.Atom{Pred: pred, Terms: terms}
}

func genRule(rng *rand.Rand) datalog.Rule {
	nBody := 1 + rng.Intn(3)
	var body []datalog.Atom
	bound := map[string]bool{}
	for i := 0; i < nBody; i++ {
		var pred string
		var arity int
		if rng.Intn(3) == 0 {
			pred = diffDerived[rng.Intn(len(diffDerived))]
			arity = diffDerive[pred]
		} else {
			pred = diffBase[rng.Intn(len(diffBase))]
			arity = diffBaseAr[pred]
		}
		a := genAtom(rng, pred, arity)
		for _, t := range a.Terms {
			if t.Var != "" {
				bound[t.Var] = true
			}
		}
		body = append(body, a)
	}
	if len(bound) > 0 && rng.Intn(3) == 0 {
		pred := diffBase[rng.Intn(len(diffBase))]
		terms := make([]datalog.Term, diffBaseAr[pred])
		var boundVars []string
		for v := range bound {
			boundVars = append(boundVars, v)
		}
		sort.Strings(boundVars)
		for i := range terms {
			switch rng.Intn(3) {
			case 0:
				terms[i] = datalog.C(diffConsts[rng.Intn(len(diffConsts))])
			case 1:
				terms[i] = datalog.W()
			default:
				terms[i] = datalog.V(boundVars[rng.Intn(len(boundVars))])
			}
		}
		body = append(body, datalog.Atom{Pred: pred, Terms: terms, Negated: true})
	}
	headPred := diffDerived[rng.Intn(len(diffDerived))]
	headTerms := make([]datalog.Term, diffDerive[headPred])
	var boundVars []string
	for v := range bound {
		boundVars = append(boundVars, v)
	}
	sort.Strings(boundVars)
	for i := range headTerms {
		if len(boundVars) > 0 && rng.Intn(4) != 0 {
			headTerms[i] = datalog.V(boundVars[rng.Intn(len(boundVars))])
		} else {
			headTerms[i] = datalog.C(diffConsts[rng.Intn(len(diffConsts))])
		}
	}
	return datalog.Rule{Head: datalog.Atom{Pred: headPred, Terms: headTerms}, Body: body}
}

func genProgram(rng *rand.Rand) ([]datalog.Rule, []datalog.Fact) {
	nRules := 2 + rng.Intn(5)
	rules := make([]datalog.Rule, 0, nRules)
	for i := 0; i < nRules; i++ {
		rules = append(rules, genRule(rng))
	}
	if rng.Intn(2) == 0 {
		pred := diffDerived[rng.Intn(len(diffDerived))]
		terms := make([]datalog.Term, diffDerive[pred])
		for i := range terms {
			terms[i] = datalog.C(diffConsts[rng.Intn(len(diffConsts))])
		}
		rules = append(rules, datalog.Rule{Head: datalog.Atom{Pred: pred, Terms: terms}})
	}
	var facts []datalog.Fact
	nFacts := 5 + rng.Intn(15)
	for i := 0; i < nFacts; i++ {
		pred := diffBase[rng.Intn(len(diffBase))]
		args := make([]string, diffBaseAr[pred])
		for j := range args {
			args[j] = diffConsts[rng.Intn(len(diffConsts))]
		}
		facts = append(facts, datalog.Fact{Pred: pred, Args: args})
	}
	return rules, facts
}

// goalFor builds a fresh-variable goal atom for a predicate.
func goalFor(pred string, arity int) datalog.Atom {
	terms := make([]datalog.Term, arity)
	for i := range terms {
		terms[i] = datalog.V(fmt.Sprintf("G%d", i))
	}
	return datalog.Atom{Pred: pred, Terms: terms}
}

// dumpAll renders every predicate's facts sorted — the full-transcript
// equality check for the reorder-only pass.
func dumpAll(db *datalog.Database, preds []string) string {
	var lines []string
	for _, p := range preds {
		for _, f := range db.Facts(p) {
			lines = append(lines, f.String())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func runOn(t *testing.T, facts []datalog.Fact, rules []datalog.Rule) *datalog.Database {
	t.Helper()
	db := datalog.NewDatabase()
	for _, f := range facts {
		db.Assert(f)
	}
	if err := db.Run(rules); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return db
}

// engineLineup is every evaluation strategy the database exposes; the
// corpus negates base predicates only, so even the naive semipositive
// oracle accepts the generated (and goal-pruned) programs.
var engineLineup = []struct {
	name string
	eval func(*datalog.Database, []datalog.Rule) error
}{
	{"interned-seq", func(db *datalog.Database, rs []datalog.Rule) error { return db.RunParallel(rs, 1) }},
	{"interned-par", func(db *datalog.Database, rs []datalog.Rule) error { return db.RunParallel(rs, 3) }},
	{"strings", (*datalog.Database).RunStrings},
	{"naive", (*datalog.Database).RunNaive},
}

// TestOptimizeDifferentialCorpus is the optimizer's acceptance gate:
// over the 150-program randomized corpus, (1) the analyzer accepts
// exactly what the engine accepts, (2) reordering alone leaves the
// full derived fact set byte-identical, and (3) pruning + reordering
// for each derived goal leaves that goal's formatted bindings
// byte-identical.
func TestOptimizeDifferentialCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	allPreds := append(append([]string{}, diffBase...), diffDerived...)
	for p := 0; p < 150; p++ {
		rules, facts := genProgram(rng)
		name := fmt.Sprintf("program-%03d", p)
		if diags := analyze.FromRules(rules).Analyze(analyze.Options{Base: diffBaseAr}); analyze.HasErrors(diags) {
			t.Fatalf("%s: generator produced an engine-safe program the analyzer rejects: %v", name, diags)
		}
		base := runOn(t, facts, rules)

		reordered, _ := analyze.ReorderBodies(rules)
		reDB := runOn(t, facts, reordered)
		if got, want := dumpAll(reDB, allPreds), dumpAll(base, allPreds); got != want {
			t.Fatalf("%s: reordering changed the fact set\ngot:\n%s\nwant:\n%s", name, got, want)
		}

		for _, pred := range diffDerived {
			goal := goalFor(pred, diffDerive[pred])
			want := datalog.FormatBindings(goal, base.Query(goal))
			optimized, _ := analyze.Optimize(rules, goal)
			// The goal-pruned program must produce the same bindings on
			// every engine in the lineup, not just the default one —
			// pruning interacts with stratification and delta seeding, so
			// this is where an interned-engine bug would surface.
			for _, eng := range engineLineup {
				db := datalog.NewDatabase()
				for _, f := range facts {
					db.Assert(f)
				}
				if err := eng.eval(db, optimized); err != nil {
					t.Fatalf("%s: %s rejected the goal-pruned program for %s: %v", name, eng.name, goal, err)
				}
				if got := datalog.FormatBindings(goal, db.Query(goal)); got != want {
					t.Fatalf("%s: %s bindings differ for goal %s\ngot:\n%s\nwant:\n%s", name, eng.name, goal, got, want)
				}
			}
		}
	}
}

// provFacts is a synthetic provenance graph in base-fact form: two
// wasInformedBy lineages (one escalated at the root, one not), with
// uid properties that exercise escalation, recursive taint and the
// stratified privilege-drop negation of the checked-in rules.
func provFacts() []datalog.Fact {
	n := func(id, label string) datalog.Fact {
		return datalog.Fact{Pred: "node", Args: []string{id, label}}
	}
	e := func(id, src, tgt, label string) datalog.Fact {
		return datalog.Fact{Pred: "edge", Args: []string{id, src, tgt, label}}
	}
	p := func(elem, key, val string) datalog.Fact {
		return datalog.Fact{Pred: "prop", Args: []string{elem, key, val}}
	}
	return []datalog.Fact{
		n("a1", "activity"), n("a2", "activity"), n("a3", "activity"),
		n("a4", "activity"), n("b1", "activity"), n("b2", "activity"),
		n("f1", "entity"), n("f2", "entity"),
		p("a1", "cf:uid", "0"), p("a2", "cf:uid", "0"),
		p("a3", "cf:uid", "1000"), p("a4", "cf:uid", "1000"),
		p("b1", "cf:uid", "1000"), p("b2", "cf:uid", "1000"),
		e("e1", "a1", "a2", "wasInformedBy"),
		e("e2", "a2", "a3", "wasInformedBy"),
		e("e3", "a3", "a4", "wasInformedBy"),
		e("e4", "b1", "b2", "wasInformedBy"),
		e("e5", "a2", "f1", "used"),
		e("e6", "b2", "f2", "used"),
	}
}

// TestOptimizeCheckedInRuleFiles proves two things about every .dl
// file in the tree (outside the deliberately-dirty analyzer
// fixtures): the file is lint-clean, and optimizing it for each of
// its derived predicates preserves the bindings on a real-shaped
// provenance fact set.
func TestOptimizeCheckedInRuleFiles(t *testing.T) {
	var files []string
	root := filepath.Join("..", "..", "..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".dl") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no checked-in .dl files found")
	}
	for _, path := range files {
		rel, _ := filepath.Rel(root, path)
		t.Run(rel, func(t *testing.T) {
			prog, diags, err := analyze.CheckFile(path, analyze.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != 0 {
				t.Fatalf("checked-in rule file is not lint-clean:\n%s", analyze.Render(rel, diags))
			}
			arity := map[string]int{}
			var preds []string
			for _, r := range prog.Rules {
				if _, ok := arity[r.Head.Pred]; !ok {
					arity[r.Head.Pred] = len(r.Head.Terms)
					preds = append(preds, r.Head.Pred)
				}
			}
			facts := provFacts()
			base := runOn(t, facts, prog.Rules)
			nonEmpty := 0
			for _, pred := range preds {
				goal := goalFor(pred, arity[pred])
				rows := base.Query(goal)
				if len(rows) > 0 {
					nonEmpty++
				}
				want := datalog.FormatBindings(goal, rows)
				optimized, _ := analyze.Optimize(prog.Rules, goal)
				got := datalog.FormatBindings(goal, runOn(t, facts, optimized).Query(goal))
				if got != want {
					t.Errorf("goal %s: optimized bindings differ\ngot:\n%s\nwant:\n%s", goal, got, want)
				}
			}
			// The proof is vacuous if the fact set derives nothing.
			if nonEmpty == 0 {
				t.Error("no derived predicate matched the synthetic provenance facts")
			}
		})
	}
}
