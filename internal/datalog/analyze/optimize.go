package analyze

import (
	"provmark/internal/datalog"
)

// The optimizer: two semantics-preserving program transforms run
// before evaluation. Both leave the engine untouched — they only
// rewrite the rule list — and both are proven equivalent by the
// differential tests (byte-identical goal bindings on the randomized
// corpus and the checked-in rule files).

// OptStats reports what Optimize did to a program.
type OptStats struct {
	// RulesIn / RulesOut count rules before and after pruning.
	RulesIn  int `json:"rules_in"`
	RulesOut int `json:"rules_out"`
	// PrunedRules counts rules dropped as unreachable from the goal.
	PrunedRules int `json:"pruned_rules"`
	// ReorderedRules counts rules whose body order changed.
	ReorderedRules int `json:"reordered_rules"`
}

// Optimize prunes the program down to the goal's dependency closure
// and reorders each surviving body bound-first. The result derives
// exactly the same extent for the goal predicate (and every predicate
// it depends on) as the input program.
func Optimize(rules []datalog.Rule, goal datalog.Atom) ([]datalog.Rule, OptStats) {
	pruned := PruneForGoal(rules, goal.Pred)
	out, reordered := ReorderBodies(pruned)
	return out, OptStats{
		RulesIn:        len(rules),
		RulesOut:       len(out),
		PrunedRules:    len(rules) - len(pruned),
		ReorderedRules: reordered,
	}
}

// PruneForGoal keeps only the rules whose head predicate lies in the
// goal predicate's dependency closure — the magic-set-lite relevance
// cut. Rules outside the closure can never contribute a fact any
// goal-relevant join reads (negated dependencies count as reads, so
// negation stays correct), and dropping whole strata shrinks the
// fixpoint the engine must run. Rule order is preserved.
func PruneForGoal(rules []datalog.Rule, goalPred string) []datalog.Rule {
	relevant := reachable(rules, map[string]bool{goalPred: true})
	out := make([]datalog.Rule, 0, len(rules))
	for _, r := range rules {
		if relevant[r.Head.Pred] {
			out = append(out, r)
		}
	}
	return out
}

// ReorderBodies rewrites each rule body bound-first: greedily pick the
// positive literal with the most bound argument positions (constants
// plus variables bound by already-placed literals), so every join
// probes a selective index instead of scanning a full relation.
// Negated literals are placed as early as their variables are all
// bound — never before, which preserves the engine's safety invariant
// that negation only evaluates ground atoms. Ties break on original
// position, so the rewrite is deterministic and a program that is
// already bound-first is returned unchanged. Returns the new rules and
// how many bodies changed order.
func ReorderBodies(rules []datalog.Rule) ([]datalog.Rule, int) {
	out := make([]datalog.Rule, len(rules))
	changed := 0
	for i, r := range rules {
		body, moved := reorderBody(r.Body)
		out[i] = datalog.Rule{Head: r.Head, Body: body}
		if moved {
			changed++
		}
	}
	return out, changed
}

func reorderBody(body []datalog.Atom) ([]datalog.Atom, bool) {
	if len(body) < 2 {
		return body, false
	}
	order := make([]int, 0, len(body))
	placed := make([]bool, len(body))
	bound := map[string]bool{}
	// flush places every pending negated literal whose variables are
	// all bound, in original order.
	flush := func() {
		for ai, at := range body {
			if placed[ai] || !at.Negated {
				continue
			}
			ready := true
			for _, t := range at.Terms {
				if t.Var != "" && !bound[t.Var] {
					ready = false
					break
				}
			}
			if ready {
				placed[ai] = true
				order = append(order, ai)
			}
		}
	}
	flush()
	for {
		best, bestScore := -1, -1
		for ai, at := range body {
			if placed[ai] || at.Negated {
				continue
			}
			score := 0
			for _, t := range at.Terms {
				switch {
				case t.Wild:
				case t.Var == "":
					score++
				case bound[t.Var]:
					score++
				}
			}
			if score > bestScore {
				best, bestScore = ai, score
			}
		}
		if best < 0 {
			break
		}
		placed[best] = true
		order = append(order, best)
		for _, t := range body[best].Terms {
			if t.Var != "" {
				bound[t.Var] = true
			}
		}
		flush()
	}
	// Any leftover negated literal has an unbound variable — the
	// program is unsafe and the engine will reject it; keep such
	// literals in original order rather than losing them.
	for ai := range body {
		if !placed[ai] {
			order = append(order, ai)
		}
	}
	moved := false
	out := make([]datalog.Atom, len(body))
	for pos, ai := range order {
		out[pos] = body[ai]
		if pos != ai {
			moved = true
		}
	}
	return out, moved
}
