package analyze_test

// The README's "Linting and optimizing rules" section carries the
// diagnostic catalogue between <!-- dlint-catalogue:begin/end -->
// markers. This drift guard regenerates the table from the live
// Catalogue() and fails when the document and the analyzer disagree —
// same pattern as the benchmark-registry guard in internal/benchprog.

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"provmark/internal/datalog/analyze"
)

func catalogueMarkdown() string {
	var b strings.Builder
	b.WriteString("| code | severity | meaning |\n|---|---|---|\n")
	for _, e := range analyze.Catalogue() {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", e.Code, e.Severity, e.Summary)
	}
	return b.String()
}

func TestReadmeDiagnosticCatalogue(t *testing.T) {
	data, err := os.ReadFile("../../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- dlint-catalogue:begin -->", "<!-- dlint-catalogue:end -->"
	doc := string(data)
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s/%s markers", begin, end)
	}
	got := strings.TrimSpace(doc[i+len(begin) : j])
	want := strings.TrimSpace(catalogueMarkdown())
	if got != want {
		t.Errorf("README diagnostic catalogue drifted from analyze.Catalogue().\n--- README ---\n%s\n--- catalogue ---\n%s", got, want)
	}
}
