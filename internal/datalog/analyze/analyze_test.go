package analyze_test

import (
	"encoding/json"
	"strings"
	"testing"

	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
)

func mustParse(t *testing.T, src string) *analyze.Program {
	t.Helper()
	prog, diags := analyze.ParseSource(src)
	if len(diags) != 0 {
		t.Fatalf("unexpected parse diagnostics: %v", diags)
	}
	return prog
}

// TestSpans pins the scanner's byte attribution on a line with the
// hostile cases: quoted ":-", quoted comma, quoted dot, leading space.
func TestSpans(t *testing.T) {
	src := `  out(X) :- prop(X, ":-", "a,b"), node(X, "end.").` + "\n"
	prog := mustParse(t, src)
	if len(prog.Rules) != 1 || len(prog.Rules[0].Body) != 2 {
		t.Fatalf("parsed %+v", prog.Rules)
	}
	s := prog.Sources[0]
	line := strings.TrimRight(src, "\n")
	if got := line[s.Head.Col-1 : s.Head.EndCol-1]; got != "out(X)" {
		t.Errorf("head span = %q", got)
	}
	if got := line[s.Body[0].Col-1 : s.Body[0].EndCol-1]; got != `prop(X, ":-", "a,b")` {
		t.Errorf("body[0] span = %q", got)
	}
	if got := line[s.Body[1].Col-1 : s.Body[1].EndCol-1]; got != `node(X, "end.")` {
		t.Errorf("body[1] span = %q", got)
	}
	if s.Line != 1 {
		t.Errorf("line = %d", s.Line)
	}
}

// TestSpanLineNumbers: diagnostics land on the right source lines when
// comments and blanks are interleaved.
func TestSpanLineNumbers(t *testing.T) {
	src := "% comment\n\nout(X) :- ghost(X).\n"
	_, diags := analyze.Check(src, analyze.Options{})
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	for _, d := range diags {
		if d.Span.Line != 3 {
			t.Errorf("diagnostic %s on line %d, want 3", d.Code, d.Span.Line)
		}
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, sev := range []analyze.Severity{analyze.Warning, analyze.Error} {
		data, err := json.Marshal(sev)
		if err != nil {
			t.Fatal(err)
		}
		var back analyze.Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != sev {
			t.Errorf("round trip %v -> %s -> %v", sev, data, back)
		}
	}
	var bad analyze.Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &bad); err == nil {
		t.Error("unknown severity accepted")
	}
}

// TestGoalArityAndUndefined: goal-level checks have no rule position.
func TestGoalArityAndUndefined(t *testing.T) {
	src := "out(X) :- node(X, \"a\").\n"
	goal, _ := datalog.ParseAtom("out(X, Y)")
	_, diags := analyze.Check(src, analyze.Options{Goal: &goal})
	if !analyze.HasErrors(diags) {
		t.Fatalf("wrong-arity goal not an error: %v", diags)
	}
	ghost, _ := datalog.ParseAtom("ghost(X)")
	_, diags = analyze.Check(src, analyze.Options{Goal: &ghost})
	found := false
	for _, d := range diags {
		if d.Code == analyze.CodeUndefinedPredicate && d.Pred == "ghost" {
			found = true
		}
	}
	if !found {
		t.Errorf("undefined goal predicate not reported: %v", diags)
	}
}

// TestReorderBodies pins the bound-first rewrite on the canonical
// shape: a selective constant-bearing atom moves ahead of a full scan,
// and negation floats to the earliest point where it is ground.
func TestReorderBodies(t *testing.T) {
	rules, err := datalog.ParseRules(`start(P) :- edge(_, P, _, _), node(P, "root").
guard(P) :- edge(_, P, Q, _), not node(Q, "ok"), node(P, "root").
stable(X, Y) :- edge(_, X, Y, _), node(X, "a").
`)
	if err != nil {
		t.Fatal(err)
	}
	out, changed := analyze.ReorderBodies(rules)
	if changed != 3 {
		t.Fatalf("changed = %d, want 3", changed)
	}
	// Rule 1: node(P, "root") has one bound position (the constant),
	// edge has zero — node comes first.
	if got := out[0].String(); got != `start(P) :- node(P,"root"), edge(_,P,_,_).` {
		t.Errorf("rule 1 reordered to %s", got)
	}
	// Rule 2: node(P,"root") first, then the negation is still not
	// ground (Q unbound) so edge joins next, then the negation.
	if got := out[1].String(); got != `guard(P) :- node(P,"root"), edge(_,P,Q,_), not node(Q,"ok").` {
		t.Errorf("rule 2 reordered to %s", got)
	}
	// Rule 3: initial scores are edge=0, node=1 (the constant), so
	// node fronts here too.
	if got := out[2].String(); got != `stable(X,Y) :- node(X,"a"), edge(_,X,Y,_).` {
		t.Errorf("rule 3 reordered to %s", got)
	}
	// Already bound-first input comes back unchanged.
	again, changed := analyze.ReorderBodies(out)
	if changed != 0 {
		t.Errorf("reordering is not idempotent: %d rules changed", changed)
	}
	for i := range again {
		if again[i].String() != out[i].String() {
			t.Errorf("rule %d drifted on second pass: %s", i, again[i])
		}
	}
}

// TestPruneForGoal: rules outside the goal closure go, and negated
// dependencies keep their defining rules.
func TestPruneForGoal(t *testing.T) {
	rules, err := datalog.ParseRules(`esc(P) :- node(P, "activity").
blocked(P) :- prop(P, "k", "v").
safe(P) :- esc(P), not blocked(P).
noise(X) :- edge(_, X, _, _).
`)
	if err != nil {
		t.Fatal(err)
	}
	pruned := analyze.PruneForGoal(rules, "safe")
	if len(pruned) != 3 {
		t.Fatalf("kept %d rules, want 3 (esc, blocked, safe): %v", len(pruned), pruned)
	}
	for _, r := range pruned {
		if r.Head.Pred == "noise" {
			t.Error("noise survived pruning")
		}
	}
	// Pruning for a base-predicate goal keeps nothing.
	if got := analyze.PruneForGoal(rules, "node"); len(got) != 0 {
		t.Errorf("base goal kept %d rules", len(got))
	}
}

// TestCatalogueCoversCodes: the catalogue and the analyzer agree on
// the closed code set (every code constant appears exactly once).
func TestCatalogueCoversCodes(t *testing.T) {
	seen := map[analyze.Code]bool{}
	for _, e := range analyze.Catalogue() {
		if seen[e.Code] {
			t.Errorf("duplicate catalogue entry %s", e.Code)
		}
		seen[e.Code] = true
		if e.Summary == "" {
			t.Errorf("catalogue entry %s lacks a summary", e.Code)
		}
	}
	if len(seen) != 12 {
		t.Errorf("catalogue has %d entries, want 12", len(seen))
	}
}

// TestAnalysisMatchesEngineAcceptance: on each unsafe fixture shape the
// analyzer reports an error exactly when the engine rejects Run.
func TestAnalysisMatchesEngineAcceptance(t *testing.T) {
	cases := []string{
		`not bad(X) :- node(X, "a").`,
		`head(_) :- node(X, "a").`,
		`orphan(Y) :- node(X, "a").`,
		`neg(X) :- not node(X, "a").`,
		`move(X, Y) :- edge(_, X, Y, _).
win(X) :- move(X, Y), not win(Y).`,
		// Negation bound by a *later* positive atom: engine requires
		// written-order boundness, so this must be an error too.
		`late(X) :- not ghost(X), node(X, "a").
ghost(X) :- node(X, "g").`,
	}
	for _, src := range cases {
		prog, diags := analyze.Check(src, analyze.Options{})
		if !analyze.HasErrors(diags) {
			t.Errorf("no analysis error for:\n%s", src)
		}
		db := datalog.NewDatabase()
		if err := db.Run(prog.Rules); err == nil {
			t.Errorf("engine accepted what analysis rejects:\n%s", src)
		}
	}
}
