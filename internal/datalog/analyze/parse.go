package analyze

import (
	"os"
	"strings"

	"provmark/internal/datalog"
)

// This file parses rule sources with positions. The datalog package's
// parser produces the Rule values; the scanner here re-walks each line
// with the same quoted-string discipline (a backslash consumes the
// next byte) to attribute a byte span to the head and to every body
// atom, so diagnostics can point at the offending atom rather than
// the whole line.

// Program is a parsed rule set with per-rule source positions.
// Rules[i] corresponds to Sources[i].
type Program struct {
	Rules   []datalog.Rule
	Sources []RuleSource
}

// RuleSource locates one rule in its source text.
type RuleSource struct {
	// Line is the 1-based source line.
	Line int
	// Text is the trimmed rule text.
	Text string
	// Head spans the head atom; Body spans each body atom in order.
	Head Span
	Body []Span
}

// ParseSource parses one rule per non-empty, non-comment line —
// exactly the grammar of datalog.ParseRules — but collects every
// malformed line as a positioned parse-error diagnostic instead of
// stopping at the first, and records head/body spans for each rule.
func ParseSource(src string) (*Program, []Diagnostic) {
	prog := &Program{}
	var diags []Diagnostic
	for li, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "%") {
			continue
		}
		lineNo := li + 1
		r, err := datalog.ParseRule(trimmed)
		if err != nil {
			start := strings.Index(line, trimmed)
			diags = append(diags, Diagnostic{
				Severity: Error,
				Code:     CodeParseError,
				Message:  strings.TrimPrefix(err.Error(), "datalog: "),
				Rule:     -1,
				Span:     Span{Line: lineNo, Col: start + 1, EndCol: start + len(trimmed) + 1},
			})
			continue
		}
		head, body := spanLine(line, lineNo, len(r.Body))
		prog.Rules = append(prog.Rules, r)
		prog.Sources = append(prog.Sources, RuleSource{Line: lineNo, Text: trimmed, Head: head, Body: body})
	}
	return prog, diags
}

// ParseFile reads and parses a rule file; the error is I/O-only —
// syntax problems come back as diagnostics.
func ParseFile(path string) (*Program, []Diagnostic, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	prog, diags := ParseSource(string(text))
	return prog, diags, nil
}

// CheckFile is Check over a file: parse + analyze, combined sorted
// diagnostics, I/O errors separate.
func CheckFile(path string, opts Options) (*Program, []Diagnostic, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	prog, diags := Check(string(text), opts)
	return prog, diags, nil
}

// FromRules wraps already-parsed rules in a Program with synthetic
// (zero) source positions, for analyzing programmatically built rule
// sets.
func FromRules(rules []datalog.Rule) *Program {
	return &Program{Rules: rules, Sources: make([]RuleSource, len(rules))}
}

// spanLine attributes byte spans within one source line to the rule's
// head and each of its nBody body atoms, using the same quote/paren
// discipline as the rule parser. If the scan disagrees with the parsed
// body count (it should not), every atom falls back to the full span.
func spanLine(line string, lineNo, nBody int) (Span, []Span) {
	start := 0
	for start < len(line) && (line[start] == ' ' || line[start] == '\t') {
		start++
	}
	end := len(line)
	for end > start && (line[end-1] == ' ' || line[end-1] == '\t' || line[end-1] == '\r') {
		end--
	}
	// Strip the terminating dot when it lies outside quotes, mirroring
	// splitRule's first pass.
	lastOutside := -1
	for i := start; i < end; {
		if line[i] == '"' {
			next, ok := skipQuotedSpan(line, i)
			if !ok {
				i = end
				break
			}
			i = next
			continue
		}
		lastOutside = i
		i++
	}
	if lastOutside == end-1 && end > start && line[end-1] == '.' {
		end--
	}
	// Find the first top-level ":-".
	op := -1
	depth := 0
	for i := start; i < end && op < 0; {
		switch line[i] {
		case '"':
			next, ok := skipQuotedSpan(line, i)
			if !ok {
				i = end
				continue
			}
			i = next
		case '(':
			depth++
			i++
		case ')':
			depth--
			i++
		case ':':
			if depth == 0 && i+1 < end && line[i+1] == '-' {
				op = i
				continue
			}
			i++
		default:
			i++
		}
	}
	whole := trimSpan(line, lineNo, start, end)
	if op < 0 {
		if nBody != 0 {
			return whole, fallbackSpans(whole, nBody)
		}
		return whole, nil
	}
	head := trimSpan(line, lineNo, start, op)
	pieces := splitSpan(line, lineNo, op+2, end)
	if len(pieces) != nBody {
		return head, fallbackSpans(trimSpan(line, lineNo, op+2, end), nBody)
	}
	return head, pieces
}

// splitSpan splits line[start:end] at top-level commas (outside quotes
// and parentheses) into trimmed spans.
func splitSpan(line string, lineNo, start, end int) []Span {
	var out []Span
	depth := 0
	pieceStart := start
	for i := start; i < end; {
		switch c := line[i]; {
		case c == '"':
			next, ok := skipQuotedSpan(line, i)
			if !ok {
				i = end
				continue
			}
			i = next
		case c == '(':
			depth++
			i++
		case c == ')':
			depth--
			i++
		case c == ',' && depth == 0:
			out = append(out, trimSpan(line, lineNo, pieceStart, i))
			pieceStart = i + 1
			i++
		default:
			i++
		}
	}
	out = append(out, trimSpan(line, lineNo, pieceStart, end))
	return out
}

// trimSpan shrinks [start, end) past surrounding spaces and returns it
// as a 1-based Span.
func trimSpan(line string, lineNo, start, end int) Span {
	for start < end && (line[start] == ' ' || line[start] == '\t') {
		start++
	}
	for end > start && (line[end-1] == ' ' || line[end-1] == '\t') {
		end--
	}
	return Span{Line: lineNo, Col: start + 1, EndCol: end + 1}
}

func fallbackSpans(whole Span, n int) []Span {
	out := make([]Span, n)
	for i := range out {
		out[i] = whole
	}
	return out
}

// skipQuotedSpan mirrors the datalog lexer's skipQuoted: from
// line[i] == '"', return the index just past the closing quote; a
// backslash consumes the following byte.
func skipQuotedSpan(line string, i int) (int, bool) {
	i++
	for i < len(line) {
		switch line[i] {
		case '\\':
			i += 2
		case '"':
			return i + 1, true
		default:
			i++
		}
	}
	return i, false
}
