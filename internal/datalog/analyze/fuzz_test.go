package analyze_test

import (
	"testing"

	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
)

// FuzzAnalyzeRules drives the analyzer with arbitrary rule text and
// enforces its two contracts: it never panics, and a program it
// passes as error-free is never rejected by the engine — neither as
// written nor after goal-directed optimization, and the optimized
// bindings match the unoptimized ones on a small fact set.
func FuzzAnalyzeRules(f *testing.F) {
	seeds := []string{
		"",
		"% only a comment\n",
		`anc(X, Y) :- edge(_, X, Y, _).` + "\n" + `anc(X, Z) :- anc(X, Y), edge(_, Y, Z, _).`,
		`safe(X) :- node(X, "a"), not bad(X).` + "\n" + `bad(X) :- prop(X, "k", "v").`,
		`not bad(X) :- node(X, "a").`,
		`win(X) :- move(X, Y), not win(Y).` + "\n" + `move(X, Y) :- edge(_, X, Y, _).`,
		`p(X) :- q(X, X, X).` + "\n" + `q(A) :- node(A, "a").`,
		`pair(X, Y) :- node(X, "a"), node(Y, "b").`,
		`p("\\") :- node(":-", "a,b").`,
		"broken(X :- node(X).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	facts := []datalog.Fact{
		{Pred: "node", Args: []string{"n1", "a"}},
		{Pred: "node", Args: []string{"n2", "b"}},
		{Pred: "edge", Args: []string{"e1", "n1", "n2", "x"}},
		{Pred: "prop", Args: []string{"n1", "k", "v"}},
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Bound the program so adversarial inputs cannot blow up the
		// fixpoint inside the fuzz budget; the analyzer itself must
		// survive anything.
		if len(src) > 2048 {
			return
		}
		prog, diags := analyze.Check(src, analyze.Options{})
		if analyze.HasErrors(diags) || len(prog.Rules) == 0 {
			return
		}
		if len(prog.Rules) > 6 {
			return
		}
		for _, r := range prog.Rules {
			if len(r.Head.Terms) > 3 || len(r.Body) > 4 {
				return
			}
		}
		run := func(rules []datalog.Rule) *datalog.Database {
			db := datalog.NewDatabase()
			for _, fa := range facts {
				db.Assert(fa)
			}
			if err := db.Run(rules); err != nil {
				t.Fatalf("engine rejected an analysis-clean program: %v\n%s", err, src)
			}
			return db
		}
		base := run(prog.Rules)
		// Optimize for the first rule's head predicate and compare.
		goal := prog.Rules[0].Head
		goal.Negated = false
		want := datalog.FormatBindings(goal, base.Query(goal))
		optimized, _ := analyze.Optimize(prog.Rules, goal)
		got := datalog.FormatBindings(goal, run(optimized).Query(goal))
		if got != want {
			t.Fatalf("optimized bindings differ for %s\ngot:\n%s\nwant:\n%s\nprogram:\n%s", goal, got, want, src)
		}
		// The goal-pruned program must also yield identical bindings on
		// the interned parallel and frozen string engines; analysis-clean
		// programs may still use stratified negation of derived
		// predicates, which only the stratified engines accept.
		for _, eng := range []struct {
			name string
			eval func(*datalog.Database, []datalog.Rule) error
		}{
			{"interned-par", func(db *datalog.Database, rs []datalog.Rule) error { return db.RunParallel(rs, 3) }},
			{"strings", (*datalog.Database).RunStrings},
		} {
			db := datalog.NewDatabase()
			for _, fa := range facts {
				db.Assert(fa)
			}
			if err := eng.eval(db, optimized); err != nil {
				t.Fatalf("%s rejected an analysis-clean goal-pruned program: %v\n%s", eng.name, err, src)
			}
			if got := datalog.FormatBindings(goal, db.Query(goal)); got != want {
				t.Fatalf("%s bindings differ for %s\ngot:\n%s\nwant:\n%s\nprogram:\n%s", eng.name, goal, got, want, src)
			}
		}
	})
}
