// Package analyze is the static analyzer and optimizer for Datalog
// rule programs. It treats the rule language of internal/datalog as a
// compilation target with its own pass pipeline: parse once with
// source positions, diagnose precisely (structured, positioned
// diagnostics instead of the engine's first-error-wins strings), then
// hand a provably-equivalent optimized program to the engine.
//
// Two kinds of output:
//
//   - Diagnostics. Error-severity findings are exactly the programs
//     the evaluation engine rejects (unsafe rules, unstratified
//     negation) plus defects that make a program meaningless even
//     though the engine would accept it (inconsistent arities — a
//     typo'd arity silently joins nothing). Warning-severity findings
//     are suspicious but evaluable: undefined or dead predicates,
//     always-empty rules, cartesian products, goal-unreachable rules.
//     A program with no Error diagnostics always Runs without error.
//
//   - Optimized programs (optimize.go). Goal-directed relevance
//     pruning drops rules that cannot contribute to a query goal, and
//     bound-first body reordering fronts literals whose arguments are
//     already bound. Both passes are semantics-preserving: the goal's
//     bindings are byte-identical to the unoptimized evaluation.
package analyze

import (
	"encoding/json"
	"fmt"
	"sort"

	"provmark/internal/datalog"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// Warning marks a suspicious construct the engine still accepts.
	Warning Severity = iota
	// Error marks a defect: the engine rejects the program, or the
	// construct is meaningless (inconsistent arities never join).
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its name, the stable wire form.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON accepts the names MarshalJSON emits.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	switch name {
	case "warning":
		*s = Warning
	case "error":
		*s = Error
	default:
		return fmt.Errorf("analyze: unknown severity %q", name)
	}
	return nil
}

// Code identifies a diagnostic class; the catalogue below is the
// closed set.
type Code string

const (
	// CodeParseError: the line is not a rule in the concrete syntax.
	CodeParseError Code = "parse-error"
	// CodeNegatedHead: the rule head is negated.
	CodeNegatedHead Code = "negated-head"
	// CodeWildcardHead: the rule head contains the _ wildcard.
	CodeWildcardHead Code = "wildcard-head"
	// CodeUnboundHeadVar: a head variable no positive body atom binds.
	CodeUnboundHeadVar Code = "unbound-head-var"
	// CodeUnboundNegationVar: a variable under negation not bound by a
	// preceding positive atom (negation is only safe on ground atoms).
	CodeUnboundNegationVar Code = "unbound-negation-var"
	// CodeUnstratifiedNegation: recursion through negation.
	CodeUnstratifiedNegation Code = "unstratified-negation"
	// CodeArityMismatch: a predicate used with inconsistent arities.
	CodeArityMismatch Code = "arity-mismatch"
	// CodeUndefinedPredicate: a body (or goal) predicate that no rule
	// derives and that is not a base predicate.
	CodeUndefinedPredicate Code = "undefined-predicate"
	// CodeUnusedPredicate: a derived predicate unreachable from every
	// output (a predicate no rule body consumes) — dead code.
	CodeUnusedPredicate Code = "unused-predicate"
	// CodeAlwaysEmptyRule: a rule that can never fire because a
	// positive body atom's predicate is provably empty.
	CodeAlwaysEmptyRule Code = "always-empty-rule"
	// CodeUnreachableRule: a rule the query goal cannot reach;
	// goal-directed evaluation prunes it.
	CodeUnreachableRule Code = "unreachable-rule"
	// CodeCartesianProduct: a body atom sharing no variables with the
	// rest of the body — the join degenerates to a cross product.
	CodeCartesianProduct Code = "cartesian-product"
)

// CatalogueEntry documents one diagnostic class — the source of the
// README's catalogue table (drift-guarded by readme_test.go).
type CatalogueEntry struct {
	Code     Code
	Severity Severity
	Summary  string
}

// Catalogue lists every diagnostic class the analyzer can emit, in
// documentation order: errors first, then warnings.
func Catalogue() []CatalogueEntry {
	return []CatalogueEntry{
		{CodeParseError, Error, "line is not a rule in the concrete syntax"},
		{CodeNegatedHead, Error, "rule head is negated"},
		{CodeWildcardHead, Error, "rule head contains the `_` wildcard"},
		{CodeUnboundHeadVar, Error, "head variable not bound by any positive body atom"},
		{CodeUnboundNegationVar, Error, "variable under negation not bound by a preceding positive atom"},
		{CodeUnstratifiedNegation, Error, "recursion through negation (no stratification exists)"},
		{CodeArityMismatch, Error, "predicate used with inconsistent arities (such atoms can never join)"},
		{CodeUndefinedPredicate, Warning, "predicate is neither derived by any rule nor a base predicate"},
		{CodeUnusedPredicate, Warning, "derived predicate unreachable from every output predicate (dead code)"},
		{CodeAlwaysEmptyRule, Warning, "rule can never fire: a positive body atom is provably empty"},
		{CodeUnreachableRule, Warning, "rule unreachable from the query goal (goal-directed evaluation prunes it)"},
		{CodeCartesianProduct, Warning, "body atom shares no variables with the rest of the body (cross product)"},
	}
}

// Span locates a diagnostic in the rule source: 1-based line and byte
// columns, EndCol exclusive. A zero Line means program-level (no
// single source position).
type Span struct {
	Line   int `json:"line"`
	Col    int `json:"col"`
	EndCol int `json:"end_col"`
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Severity Severity `json:"severity"`
	Code     Code     `json:"code"`
	Message  string   `json:"message"`
	// Pred names the subject predicate when the finding is about one.
	Pred string `json:"pred,omitempty"`
	// Rule indexes Program.Rules; -1 for program-level findings.
	Rule int  `json:"rule"`
	Span Span `json:"span"`
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// DefaultBase is the base-fact vocabulary of provenance graphs:
// node/2 (id, label), edge/4 (id, src, tgt, label), prop/3 (elem,
// key, value) — what Database.LoadGraph asserts.
func DefaultBase() map[string]int {
	return map[string]int{"node": 2, "edge": 4, "prop": 3}
}

// Options configures an analysis.
type Options struct {
	// Base maps base predicates to their arities; nil means
	// DefaultBase(). Base predicates are assumed non-empty.
	Base map[string]int
	// Goal, when set, is the query goal: its predicate and arity are
	// checked, and rules the goal cannot reach are reported as
	// unreachable (the predicate-level unused pass is skipped — the
	// goal is the only output).
	Goal *datalog.Atom
}

func (o Options) base() map[string]int {
	if o.Base != nil {
		return o.Base
	}
	return DefaultBase()
}

// Check parses and analyzes a rule source in one call, returning the
// program alongside the combined, position-sorted diagnostics — the
// entry point shared by provmark-dlint, the CLIs and /v1/query.
func Check(src string, opts Options) (*Program, []Diagnostic) {
	prog, diags := ParseSource(src)
	diags = append(diags, prog.Analyze(opts)...)
	sortDiagnostics(diags)
	return prog, diags
}

// Analyze runs every analysis pass over the program and returns the
// position-sorted diagnostics. Parse diagnostics (from ParseSource)
// are not repeated here; Check combines both.
func (p *Program) Analyze(opts Options) []Diagnostic {
	a := &analysis{prog: p, base: opts.base(), goal: opts.Goal}
	a.checkSafety()
	a.checkArities()
	a.checkDefined()
	a.checkStratification()
	a.checkAlwaysEmpty()
	a.checkCartesian()
	if opts.Goal != nil {
		a.checkReachable()
	} else {
		a.checkUnused()
	}
	sortDiagnostics(a.diags)
	return a.diags
}

// analysis carries the shared pass state.
type analysis struct {
	prog  *Program
	base  map[string]int
	goal  *datalog.Atom
	diags []Diagnostic
}

// report files a diagnostic for rule ri. atom >= 0 addresses a body
// atom, atomHead the head, atomNone the whole rule.
const (
	atomHead = -1
	atomNone = -2
)

func (a *analysis) report(sev Severity, code Code, ri, atom int, pred, msg string) {
	d := Diagnostic{Severity: sev, Code: code, Message: msg, Pred: pred, Rule: ri}
	if ri >= 0 && ri < len(a.prog.Sources) {
		src := a.prog.Sources[ri]
		switch {
		case atom == atomHead || atom == atomNone:
			d.Span = src.Head
		case atom >= 0 && atom < len(src.Body):
			d.Span = src.Body[atom]
		default:
			d.Span = src.Head
		}
		if d.Span.Line == 0 {
			d.Span.Line = src.Line
		}
	}
	a.diags = append(a.diags, d)
}

// checkSafety mirrors the engine's checkRules exactly — the same
// violations, atom by atom, so an analysis-clean program can never be
// rejected by Run for safety.
func (a *analysis) checkSafety() {
	for ri, r := range a.prog.Rules {
		if r.Head.Negated {
			a.report(Error, CodeNegatedHead, ri, atomHead, r.Head.Pred,
				fmt.Sprintf("rule head %s is negated", r.Head))
		}
		bound := map[string]bool{}
		for ai, at := range r.Body {
			if at.Negated {
				for _, t := range at.Terms {
					if t.Var != "" && !bound[t.Var] {
						a.report(Error, CodeUnboundNegationVar, ri, ai, at.Pred,
							fmt.Sprintf("variable %s under negation in %s is not bound by a preceding positive atom", t.Var, at))
					}
				}
				continue
			}
			for _, t := range at.Terms {
				if t.Var != "" {
					bound[t.Var] = true
				}
			}
		}
		for _, t := range r.Head.Terms {
			switch {
			case t.Wild:
				a.report(Error, CodeWildcardHead, ri, atomHead, r.Head.Pred,
					fmt.Sprintf("wildcard in rule head %s", r.Head))
			case t.Var != "" && !bound[t.Var]:
				a.report(Error, CodeUnboundHeadVar, ri, atomHead, r.Head.Pred,
					fmt.Sprintf("head variable %s in %s is not bound by any positive body atom", t.Var, r.Head))
			}
		}
	}
}

// checkArities enforces one arity per predicate. Base predicates are
// fixed by Options; every other predicate's first use (heads before
// bodies, rule order) is canonical.
func (a *analysis) checkArities() {
	type first struct {
		arity int
		line  int
	}
	seen := map[string]first{}
	for pred, arity := range a.base {
		seen[pred] = first{arity: arity, line: 0}
	}
	check := func(ri, atom int, at datalog.Atom) {
		f, ok := seen[at.Pred]
		if !ok {
			line := 0
			if ri < len(a.prog.Sources) {
				line = a.prog.Sources[ri].Line
			}
			seen[at.Pred] = first{arity: len(at.Terms), line: line}
			return
		}
		if len(at.Terms) == f.arity {
			return
		}
		if f.line == 0 && a.base[at.Pred] == f.arity {
			a.report(Error, CodeArityMismatch, ri, atom, at.Pred,
				fmt.Sprintf("%s used with arity %d, but %s is a base predicate with arity %d", at.Pred, len(at.Terms), at.Pred, f.arity))
			return
		}
		a.report(Error, CodeArityMismatch, ri, atom, at.Pred,
			fmt.Sprintf("%s used with arity %d, but arity %d at line %d", at.Pred, len(at.Terms), f.arity, f.line))
	}
	for ri, r := range a.prog.Rules {
		check(ri, atomHead, r.Head)
	}
	for ri, r := range a.prog.Rules {
		for ai, at := range r.Body {
			check(ri, ai, at)
		}
	}
	if a.goal != nil {
		if f, ok := seen[a.goal.Pred]; ok && len(a.goal.Terms) != f.arity {
			a.diags = append(a.diags, Diagnostic{
				Severity: Error, Code: CodeArityMismatch, Pred: a.goal.Pred, Rule: -1,
				Message: fmt.Sprintf("goal %s has arity %d, but %s has arity %d", a.goal, len(a.goal.Terms), a.goal.Pred, f.arity),
			})
		}
	}
}

// checkDefined flags body predicates that no rule derives and that are
// not base predicates — their extent is empty by construction, so any
// positive use can never match (and any negated use always holds).
// Each predicate is reported once, at its first use.
func (a *analysis) checkDefined() {
	defined := map[string]bool{}
	for _, r := range a.prog.Rules {
		defined[r.Head.Pred] = true
	}
	reported := map[string]bool{}
	for ri, r := range a.prog.Rules {
		for ai, at := range r.Body {
			if defined[at.Pred] || a.base[at.Pred] != 0 || reported[at.Pred] {
				continue
			}
			reported[at.Pred] = true
			msg := fmt.Sprintf("%s is never defined: no rule derives it and it is not a base predicate", at.Pred)
			if at.Negated {
				msg += " (this negation always holds)"
			}
			a.report(Warning, CodeUndefinedPredicate, ri, ai, at.Pred, msg)
		}
	}
	if a.goal != nil && !defined[a.goal.Pred] && a.base[a.goal.Pred] == 0 {
		a.diags = append(a.diags, Diagnostic{
			Severity: Warning, Code: CodeUndefinedPredicate, Pred: a.goal.Pred, Rule: -1,
			Message: fmt.Sprintf("goal predicate %s is never defined: no rule derives it and it is not a base predicate", a.goal.Pred),
		})
	}
}

// checkStratification mirrors the engine's stratify: a positive
// dependency never decreases the stratum, a negative one strictly
// increases it; when no assignment exists, the program recurses
// through negation and Run rejects it.
func (a *analysis) checkStratification() {
	derived := map[string]bool{}
	for _, r := range a.prog.Rules {
		derived[r.Head.Pred] = true
	}
	stratum := map[string]int{}
	for changed := true; changed; {
		changed = false
		for ri, r := range a.prog.Rules {
			h := r.Head.Pred
			for ai, at := range r.Body {
				if !derived[at.Pred] {
					continue
				}
				min := stratum[at.Pred]
				if at.Negated {
					min++
				}
				if stratum[h] < min {
					stratum[h] = min
					if stratum[h] > len(derived) {
						a.report(Error, CodeUnstratifiedNegation, ri, ai, at.Pred,
							fmt.Sprintf("recursion through negation: %s cannot be stratified", at.Pred))
						return
					}
					changed = true
				}
			}
		}
	}
}

// checkAlwaysEmpty computes the least fixpoint of "possibly derives a
// fact": base predicates and heads of rules whose positive body atoms
// are all derivable. Rules outside the fixpoint can never fire.
func (a *analysis) checkAlwaysEmpty() {
	derivable := map[string]bool{}
	for pred := range a.base {
		derivable[pred] = true
	}
	fires := func(r datalog.Rule) (bool, int) {
		for ai, at := range r.Body {
			if !at.Negated && !derivable[at.Pred] {
				return false, ai
			}
		}
		return true, -1
	}
	for changed := true; changed; {
		changed = false
		for _, r := range a.prog.Rules {
			if ok, _ := fires(r); ok && !derivable[r.Head.Pred] {
				derivable[r.Head.Pred] = true
				changed = true
			}
		}
	}
	for ri, r := range a.prog.Rules {
		if ok, ai := fires(r); !ok {
			a.report(Warning, CodeAlwaysEmptyRule, ri, ai, r.Head.Pred,
				fmt.Sprintf("rule for %s can never fire: %s is always empty", r.Head.Pred, r.Body[ai].Pred))
		}
	}
}

// checkCartesian flags body atoms that share no variables with the
// rest of the body: the join degenerates to a cross product. Sharing
// is transitive (a(X), b(Y) connect through c(X,Y)), so atoms are
// grouped into components by union-find over their variables first.
func (a *analysis) checkCartesian() {
	for ri, r := range a.prog.Rules {
		// Union-find over the positive, variable-bearing atoms.
		var idx []int // body indices of participating atoms
		parent := map[int]int{}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		varAtom := map[string]int{}
		for ai, at := range r.Body {
			if at.Negated {
				continue
			}
			hasVar := false
			for _, t := range at.Terms {
				if t.Var != "" {
					hasVar = true
				}
			}
			if !hasVar {
				continue
			}
			idx = append(idx, ai)
			parent[ai] = ai
			for _, t := range at.Terms {
				if t.Var == "" {
					continue
				}
				if prev, ok := varAtom[t.Var]; ok {
					parent[find(ai)] = find(prev)
				} else {
					varAtom[t.Var] = ai
				}
			}
		}
		if len(idx) < 2 {
			continue
		}
		seen := map[int]bool{}
		for _, ai := range idx {
			root := find(ai)
			if seen[root] {
				continue
			}
			if len(seen) > 0 {
				a.report(Warning, CodeCartesianProduct, ri, ai, r.Body[ai].Pred,
					fmt.Sprintf("%s shares no variables with the rest of the body of %s (cartesian product)", r.Body[ai], r.Head.Pred))
			}
			seen[root] = true
		}
	}
}

// checkUnused (no goal): outputs are the derived predicates no rule
// body consumes; a derived predicate unreachable from every output is
// dead code — only possible inside consumer-less cycles. Reported once
// per predicate, at its first defining rule.
func (a *analysis) checkUnused() {
	used := map[string]bool{}
	for _, r := range a.prog.Rules {
		for _, at := range r.Body {
			used[at.Pred] = true
		}
	}
	outputs := map[string]bool{}
	for _, r := range a.prog.Rules {
		if !used[r.Head.Pred] {
			outputs[r.Head.Pred] = true
		}
	}
	relevant := reachable(a.prog.Rules, outputs)
	reported := map[string]bool{}
	for ri, r := range a.prog.Rules {
		pred := r.Head.Pred
		if relevant[pred] || reported[pred] {
			continue
		}
		reported[pred] = true
		a.report(Warning, CodeUnusedPredicate, ri, atomHead, pred,
			fmt.Sprintf("derived predicate %s is unreachable from every output predicate (dead code)", pred))
	}
}

// checkReachable (goal given): rules whose head the goal's dependency
// closure does not contain cannot contribute to the answer;
// goal-directed evaluation prunes them.
func (a *analysis) checkReachable() {
	closure := reachable(a.prog.Rules, map[string]bool{a.goal.Pred: true})
	for ri, r := range a.prog.Rules {
		if closure[r.Head.Pred] {
			continue
		}
		a.report(Warning, CodeUnreachableRule, ri, atomHead, r.Head.Pred,
			fmt.Sprintf("rule for %s is unreachable from goal %s: goal-directed evaluation prunes it", r.Head.Pred, a.goal))
	}
}

// reachable computes the predicate dependency closure of a seed set:
// every predicate a seed can read, transitively, through rule bodies
// (positive and negated — negation still reads the extent).
func reachable(rules []datalog.Rule, seeds map[string]bool) map[string]bool {
	out := make(map[string]bool, len(seeds))
	for s := range seeds {
		out[s] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			if !out[r.Head.Pred] {
				continue
			}
			for _, at := range r.Body {
				if !out[at.Pred] {
					out[at.Pred] = true
					changed = true
				}
			}
		}
	}
	return out
}

// sortDiagnostics orders findings for deterministic output: by source
// position, then severity (errors first), code, and message.
func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Span.Line != b.Span.Line {
			return a.Span.Line < b.Span.Line
		}
		if a.Span.Col != b.Span.Col {
			return a.Span.Col < b.Span.Col
		}
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}
