package datalog

import (
	"testing"

	"provmark/internal/graph"
)

func loadSample(t *testing.T) *Database {
	t.Helper()
	g := graph.New()
	p := g.AddNode("Process", graph.Properties{"pid": "7", "uid": "1000"})
	f := g.AddNode("Artifact", graph.Properties{"path": "/etc/passwd"})
	q := g.AddNode("Process", graph.Properties{"pid": "8", "uid": "0"})
	if _, err := g.AddEdge(p, f, "Used", graph.Properties{"operation": "open"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(q, p, "WasTriggeredBy", graph.Properties{"operation": "setuid"}); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.LoadGraph(g)
	return db
}

func TestLoadGraphFacts(t *testing.T) {
	db := loadSample(t)
	if got := len(db.Facts("node")); got != 3 {
		t.Errorf("node facts = %d", got)
	}
	if got := len(db.Facts("edge")); got != 2 {
		t.Errorf("edge facts = %d", got)
	}
	// 5 node props plus 2 edge operation props.
	if got := len(db.Facts("prop")); got != 7 {
		t.Errorf("prop facts = %d", got)
	}
}

func TestAssertDeduplicates(t *testing.T) {
	db := NewDatabase()
	f := Fact{Pred: "p", Args: []string{"a", "b"}}
	if !db.Assert(f) {
		t.Error("first assert not new")
	}
	if db.Assert(f) {
		t.Error("duplicate assert reported new")
	}
	if len(db.Facts("p")) != 1 {
		t.Error("duplicate stored")
	}
}

func TestQueryWithConstantsAndVars(t *testing.T) {
	db := loadSample(t)
	// Which processes used /etc/passwd?
	rules, err := ParseRules(`
% accessed(Proc, Path) holds when Proc has a Used edge to a file at Path.
accessed(P, Path) :- edge(_, P, F, "Used"), prop(F, "path", Path).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	res := db.Query(Atom{Pred: "accessed", Terms: []Term{V("P"), C("/etc/passwd")}})
	if len(res) != 1 || res[0]["P"] != "n1" {
		t.Errorf("query result = %v", res)
	}
}

func TestRecursiveReachability(t *testing.T) {
	// Build a chain of Used edges and compute transitive reachability.
	g := graph.New()
	var prev graph.ElemID
	for i := 0; i < 5; i++ {
		id := g.AddNode("N", nil)
		if i > 0 {
			if _, err := g.AddEdge(prev, id, "E", nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	db := NewDatabase()
	db.LoadGraph(g)
	rules, err := ParseRules(`
reach(X, Y) :- edge(_, X, Y, _).
reach(X, Z) :- reach(X, Y), edge(_, Y, Z, _).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	// n1 reaches n2..n5: 4 tuples; total pairs = 4+3+2+1 = 10.
	if got := len(db.Facts("reach")); got != 10 {
		t.Errorf("reach facts = %d, want 10", got)
	}
	res := db.Query(Atom{Pred: "reach", Terms: []Term{C("n1"), V("Y")}})
	if len(res) != 4 {
		t.Errorf("n1 reaches %d nodes, want 4", len(res))
	}
}

func TestRuleParsing(t *testing.T) {
	r, err := ParseRule(`suspicious(P) :- prop(P, "uid", "0"), node(P, "Process").`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Head.Pred != "suspicious" || len(r.Body) != 2 {
		t.Fatalf("rule = %s", r)
	}
	if r.Body[0].Terms[1].Const != "uid" {
		t.Errorf("quoted constant parsed as %v", r.Body[0].Terms[1])
	}
	if r.Body[0].Terms[0].Var != "P" {
		t.Errorf("variable parsed as %v", r.Body[0].Terms[0])
	}
	// Round trip through String.
	r2, err := ParseRule(r.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", r.String(), err)
	}
	if r2.String() != r.String() {
		t.Errorf("rule not stable: %s vs %s", r, r2)
	}
}

func TestParseRuleErrors(t *testing.T) {
	for _, bad := range []string{
		`head :- body(X).`,        // malformed head
		`h(X) :- b(X`,             // unbalanced
		`h(X) :- b("unterminated`, // bad string
		`h(_) :- b(X).`,           // wildcard in head (caught at run)
	} {
		r, err := ParseRule(bad)
		if err == nil {
			// The wildcard-in-head case parses; it must fail at Run.
			db := NewDatabase()
			db.Assert(Fact{Pred: "b", Args: []string{"x"}})
			if err := db.Run([]Rule{r}); err == nil {
				t.Errorf("accepted %q", bad)
			}
		}
	}
}

func TestUnboundHeadVariableFails(t *testing.T) {
	db := NewDatabase()
	db.Assert(Fact{Pred: "b", Args: []string{"x"}})
	r, err := ParseRule(`h(Y) :- b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run([]Rule{r}); err == nil {
		t.Error("unbound head variable accepted")
	}
}

func TestFactsAreCopied(t *testing.T) {
	db := NewDatabase()
	db.Assert(Fact{Pred: "p", Args: []string{"a"}})
	facts := db.Facts("p")
	facts[0].Pred = "mutated"
	if db.Facts("p")[0].Pred != "p" {
		t.Error("Facts exposed internal slice")
	}
}

// TestDetectPrivilegeEscalationPattern is the Dora use case in
// miniature: a rule matching a credential-change edge whose new process
// state has uid 0.
func TestDetectPrivilegeEscalationPattern(t *testing.T) {
	db := loadSample(t)
	rules, err := ParseRules(`
escalation(New, Old) :- edge(_, New, Old, "WasTriggeredBy"), prop(New, "uid", "0").
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	res := db.Query(Atom{Pred: "escalation", Terms: []Term{V("N"), V("O")}})
	if len(res) != 1 || res[0]["N"] != "n3" {
		t.Errorf("escalation match = %v", res)
	}
}
