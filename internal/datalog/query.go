package datalog

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"provmark/internal/graph"
)

// This file defines the rule language of the Datalog evaluator over
// the n/e/p fact representation of provenance graphs: terms, atoms,
// rules, the fact database, and the concrete-syntax parser. The
// evaluation engines live in engine.go (the production semi-naive
// engine) and naive.go (the frozen naive reference).
//
// The paper stores benchmark results as Datalog precisely so that they
// can be queried; the Dora use case (Section 3.1, suspicious-activity
// detection) writes attack patterns as rules and matches them against
// recorded provenance.
//
// The supported language is Datalog with stratified negation: facts
// node/2, edge/4 and prop/3 are loaded from a graph, rules have a
// single head atom and a conjunctive body over the fact predicates and
// derived predicates. Terms are variables (capitalized), string
// constants ("..."), or the wildcard _. "not p(...)" holds when no
// matching fact is derivable; a negated predicate must be fully
// derivable before the negation is evaluated, so programs whose
// negations cannot be stratified are rejected.

// Term is a variable, constant, or wildcard in a rule atom.
type Term struct {
	// Var holds the variable name when the term is a variable.
	Var string
	// Const holds the constant value when the term is a constant.
	Const string
	// Wild marks the wildcard term.
	Wild bool
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(value string) Term { return Term{Const: value} }

// W makes the wildcard term.
func W() Term { return Term{Wild: true} }

func (t Term) String() string {
	switch {
	case t.Wild:
		return "_"
	case t.Var != "":
		return t.Var
	default:
		return quote(t.Const)
	}
}

// Atom is a predicate applied to terms, possibly negated (negation as
// failure: "not p(...)" holds when no matching fact is derivable).
// Negated atoms must have all their variables bound by earlier positive
// body atoms, and the program's negations must be stratifiable: a
// predicate may only be negated once every rule deriving it has run to
// completion, so recursion through negation is rejected.
type Atom struct {
	Pred    string
	Terms   []Term
	Negated bool
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	s := a.Pred + "(" + strings.Join(parts, ",") + ")"
	if a.Negated {
		return "not " + s
	}
	return s
}

// Rule derives head facts from a conjunction of body atoms. An empty
// body makes the rule an unconditional fact.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Fact is a derived or base tuple.
type Fact struct {
	Pred string
	Args []string
}

func (f Fact) String() string {
	quoted := make([]string, len(f.Args))
	for i, a := range f.Args {
		quoted[i] = quote(a)
	}
	return f.Pred + "(" + strings.Join(quoted, ",") + ")."
}

// relation is the columnar store of one predicate's facts: every
// constant is interned into the database's symbol table and each
// argument position lives in its own dense []uint32 column, so the
// interned engine joins integers, never strings. The string-facing
// surfaces (Facts, the frozen string engines, Query formatting)
// materialize Fact values lazily from the columns through the symbol
// table, extending a per-relation watermark cache — columns are
// append-only, so the cache never invalidates.
//
// Predicates asserted with more than one arity (legal, if exotic)
// flip the relation into mixed mode: a plain []Fact list that the
// string engines evaluate as before, while the interned engine falls
// back to the string path for any stratum touching it.
type relation struct {
	pred  string
	arity int
	cols  [][]uint32 // one column per argument position; nil when mixed
	rows  int
	// htab dedups regular relations without per-fact allocation: an
	// open-addressing table of row indices whose keys ARE the column
	// values (compare-on-probe), grown at 3/4 load. Mixed relations
	// fall back to dedup, a packed-tuple map (tuple byte length encodes
	// arity, so arities cannot collide).
	htab  []int32
	dedup map[string]struct{}
	// strFacts lazily mirrors the columns as Fact values; in mixed mode
	// it is the authoritative (and complete) fact list.
	strFacts []Fact
	mixed    bool
	// listed records whether the predicate has entered db.preds — it
	// does on the first stored row, not on relation creation, so
	// pre-created head relations that never derive stay invisible.
	listed bool
	// strIdx holds the string engines' bound-position indexes, intIdx
	// the interned engine's integer-keyed ones; both build on first
	// probe and extend lazily as rows arrive.
	strIdx map[string]*predIndex
	intIdx map[string]*intIndex
}

// Database holds base and derived facts, interned and stored columnar
// per predicate, plus the bound-position join indexes the engines
// probe.
type Database struct {
	syms  []string          // id -> constant
	symID map[string]uint32 // constant -> id
	rels  map[string]*relation
	preds []string // predicates in first-assert order
	stats EvalStats
	// workers is the Run worker-pool width; 0 selects automatically.
	workers int
	keyBuf  []byte      // scratch for packed dedup/index keys
	tupBuf  []uint32    // scratch for interned tuples
	ws      *iWorkspace // sequential evaluation scratch, reused across runs
}

// NewDatabase creates an empty fact database.
func NewDatabase() *Database {
	return &Database{
		symID: map[string]uint32{},
		rels:  map[string]*relation{},
	}
}

// intern returns the dense id of a constant, assigning the next id on
// first sight. The id->string direction is a plain slice lookup, so
// rendering bindings and materializing facts never re-hash.
func (db *Database) intern(s string) uint32 {
	if id, ok := db.symID[s]; ok {
		return id
	}
	id := uint32(len(db.syms))
	db.syms = append(db.syms, s)
	db.symID[s] = id
	return id
}

// packTuple appends the 4-byte little-endian encoding of each value —
// the canonical map key for dedup and integer indexes.
func packTuple(buf []byte, vals []uint32) []byte {
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// Assert adds a fact if not already present; it reports whether the
// fact was new.
func (db *Database) Assert(f Fact) bool {
	rel := db.getRel(f.Pred, len(f.Args))
	db.tupBuf = db.tupBuf[:0]
	for _, a := range f.Args {
		db.tupBuf = append(db.tupBuf, db.intern(a))
	}
	if !rel.mixed && len(f.Args) != rel.arity {
		rel.toMixed(db)
	}
	if rel.mixed {
		db.keyBuf = packTuple(db.keyBuf[:0], db.tupBuf)
		if _, dup := rel.dedup[string(db.keyBuf)]; dup {
			return false
		}
		rel.dedup[string(db.keyBuf)] = struct{}{}
		rel.strFacts = append(rel.strFacts, Fact{Pred: f.Pred, Args: append([]string(nil), f.Args...)})
		rel.rows++
		db.list(rel)
		return true
	}
	return db.assertInterned(rel, db.tupBuf)
}

// getRel returns the predicate's relation, creating an empty (and
// unlisted) columnar one of the given arity when absent.
func (db *Database) getRel(pred string, arity int) *relation {
	rel := db.rels[pred]
	if rel == nil {
		rel = &relation{
			pred:  pred,
			arity: arity,
			cols:  make([][]uint32, arity),
		}
		db.rels[pred] = rel
	}
	return rel
}

// list enters the predicate into first-assert order on its first row.
func (db *Database) list(rel *relation) {
	if !rel.listed && rel.rows > 0 {
		rel.listed = true
		db.preds = append(db.preds, rel.pred)
	}
}

// assertInterned is Assert for an already-interned tuple — the
// interned engine's merge path, which never touches strings. The
// relation must be regular (non-mixed) with matching arity; the
// engine's compiler guarantees both.
func (db *Database) assertInterned(rel *relation, tuple []uint32) bool {
	if !rel.insertTuple(tuple) {
		return false
	}
	for i, v := range tuple {
		rel.cols[i] = append(rel.cols[i], v)
	}
	rel.rows++
	db.list(rel)
	return true
}

// hashTuple mixes an interned tuple into the open-addressing hash —
// splitmix64-style finalizers over each value, seeded by the arity.
func hashTuple(vals []uint32) uint64 {
	h := uint64(len(vals))*0x9e3779b97f4a7c15 + 0x85ebca6b
	for _, v := range vals {
		x := uint64(v) * 0xbf58476d1ce4e5b9
		x ^= x >> 31
		h = (h ^ x) * 0x94d049bb133111eb
	}
	return h ^ h>>29
}

// insertTuple claims the tuple's slot in the dedup table, recording
// the next row index; it reports false when an equal row exists. The
// caller must append the tuple to the columns immediately after a true
// return, as the claimed slot already points at that row.
func (rel *relation) insertTuple(tuple []uint32) bool {
	if rel.rows*4 >= len(rel.htab)*3 {
		rel.grow()
	}
	mask := uint64(len(rel.htab) - 1)
	slot := hashTuple(tuple) & mask
	for {
		ri := rel.htab[slot]
		if ri < 0 {
			rel.htab[slot] = int32(rel.rows)
			return true
		}
		if rel.rowEq(int(ri), tuple) {
			return false
		}
		slot = (slot + 1) & mask
	}
}

// rowEq compares a stored row against an interned tuple.
func (rel *relation) rowEq(row int, tuple []uint32) bool {
	for i, v := range tuple {
		if rel.cols[i][row] != v {
			return false
		}
	}
	return true
}

// grow doubles (or seeds) the dedup table and rehashes every row.
func (rel *relation) grow() {
	n := 2 * len(rel.htab)
	if n < 16 {
		n = 16
	}
	rel.htab = make([]int32, n)
	for i := range rel.htab {
		rel.htab[i] = -1
	}
	mask := uint64(n - 1)
	tuple := make([]uint32, rel.arity)
	for r := 0; r < rel.rows; r++ {
		for i := range tuple {
			tuple[i] = rel.cols[i][r]
		}
		slot := hashTuple(tuple) & mask
		for rel.htab[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		rel.htab[slot] = int32(r)
	}
}

// toMixed converts a columnar relation to a plain fact list after a
// mixed-arity assert; the interned engine refuses mixed relations and
// evaluates such strata through the string path instead.
func (rel *relation) toMixed(db *Database) {
	rel.strings(db) // materialize every row first
	rel.dedup = make(map[string]struct{}, rel.rows)
	tuple := make([]uint32, rel.arity)
	for r := 0; r < rel.rows; r++ {
		for i := range tuple {
			tuple[i] = rel.cols[i][r]
		}
		rel.dedup[string(packTuple(nil, tuple))] = struct{}{}
	}
	rel.mixed = true
	rel.cols = nil
	rel.htab = nil
	rel.intIdx = nil
}

// strings materializes (and caches) the relation's facts as string
// tuples; in mixed mode the cache is the store itself.
func (rel *relation) strings(db *Database) []Fact {
	if rel.mixed {
		return rel.strFacts
	}
	for r := len(rel.strFacts); r < rel.rows; r++ {
		args := make([]string, rel.arity)
		for i := range args {
			args[i] = db.syms[rel.cols[i][r]]
		}
		rel.strFacts = append(rel.strFacts, Fact{Pred: rel.pred, Args: args})
	}
	return rel.strFacts
}

// stringFacts returns a predicate's facts as string tuples in
// assertion order — the view the frozen string engines and the query
// formatter share. The returned slice is the cache; callers must not
// mutate it.
func (db *Database) stringFacts(pred string) []Fact {
	rel := db.rels[pred]
	if rel == nil {
		return nil
	}
	return rel.strings(db)
}

// Facts returns the tuples of a predicate in assertion order.
func (db *Database) Facts(pred string) []Fact {
	return append([]Fact(nil), db.stringFacts(pred)...)
}

// Predicates returns every predicate with at least one fact, in
// first-assert order.
func (db *Database) Predicates() []string {
	return append([]string(nil), db.preds...)
}

// NumFacts reports the number of facts stored for a predicate without
// materializing them.
func (db *Database) NumFacts(pred string) int {
	rel := db.rels[pred]
	if rel == nil {
		return 0
	}
	return rel.rows
}

// SetParallelism fixes the worker-pool width Run uses for per-stratum
// delta joins: 1 forces sequential evaluation, 0 (the default) picks
// min(GOMAXPROCS, 8). Counters and derived-fact order are identical
// at every width — parallel rounds merge per-worker buffers in a
// deterministic task order at each round barrier.
func (db *Database) SetParallelism(n int) { db.workers = n }

// LoadGraph asserts a property graph as base facts under the standard
// predicates node/2 (id, label), edge/4 (id, src, tgt, label) and
// prop/3 (elem, key, value).
func (db *Database) LoadGraph(g *graph.Graph) {
	for _, n := range g.Nodes() {
		db.Assert(Fact{Pred: "node", Args: []string{string(n.ID), n.Label}})
		for _, k := range graph.PropKeys(n.Props) {
			db.Assert(Fact{Pred: "prop", Args: []string{string(n.ID), k, n.Props[k]}})
		}
	}
	for _, e := range g.Edges() {
		db.Assert(Fact{Pred: "edge", Args: []string{string(e.ID), string(e.Src), string(e.Tgt), e.Label}})
		for _, k := range graph.PropKeys(e.Props) {
			db.Assert(Fact{Pred: "prop", Args: []string{string(e.ID), k, e.Props[k]}})
		}
	}
}

// binding maps variable names to values.
type binding map[string]string

func (b binding) clone() binding {
	out := make(binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// unify extends a binding by matching an atom's terms against a fact.
func unify(a Atom, f Fact, b binding) (binding, bool) {
	if a.Pred != f.Pred || len(a.Terms) != len(f.Args) {
		return nil, false
	}
	out := b
	copied := false
	for i, t := range a.Terms {
		val := f.Args[i]
		switch {
		case t.Wild:
		case t.Var == "":
			if t.Const != val {
				return nil, false
			}
		default:
			if bound, ok := out[t.Var]; ok {
				if bound != val {
					return nil, false
				}
			} else {
				if !copied {
					out = out.clone()
					copied = true
				}
				out[t.Var] = val
			}
		}
	}
	return out, true
}

// substitute instantiates the head atom under a binding.
func substitute(head Atom, b binding) (Fact, error) {
	args := make([]string, len(head.Terms))
	for i, t := range head.Terms {
		switch {
		case t.Wild:
			return Fact{}, fmt.Errorf("datalog: wildcard in rule head %s", head)
		case t.Var != "":
			v, ok := b[t.Var]
			if !ok {
				return Fact{}, fmt.Errorf("datalog: unbound head variable %s in %s", t.Var, head)
			}
			args[i] = v
		default:
			args[i] = t.Const
		}
	}
	return Fact{Pred: head.Pred, Args: args}, nil
}

// Query evaluates a single goal atom against the database and returns
// the matching bindings, deduplicated and sorted for determinism.
// Deduplication matters for goals with wildcards: q(X, _) over q(a,b)
// and q(a,c) yields {X:a} once, not once per matching fact.
func (db *Database) Query(goal Atom) []map[string]string {
	var out []map[string]string
	dedup := map[string]bool{}
	for _, b := range db.joinPositive(Atom{Pred: goal.Pred, Terms: goal.Terms}, binding{}, nil) {
		k := bindingKey(b)
		if dedup[k] {
			continue
		}
		dedup[k] = true
		m := make(map[string]string, len(b))
		for k, v := range b {
			m[k] = v
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return bindingKey(out[i]) < bindingKey(out[j])
	})
	return out
}

func bindingKey[M ~map[string]string](m M) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(';')
	}
	return b.String()
}

// FormatBindings renders a goal's query bindings deterministically —
// the query reporter shared by provmark -goal and provmark-batch
// -goal, so every surface prints match sets identically.
func FormatBindings(goal Atom, rows []map[string]string) string {
	var b strings.Builder
	if len(rows) == 0 {
		fmt.Fprintf(&b, "query %s: no matches\n", goal)
		return b.String()
	}
	fmt.Fprintf(&b, "query %s: %d match(es)\n", goal, len(rows))
	for _, m := range rows {
		if len(m) == 0 {
			b.WriteString("  (holds)\n")
			continue
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + quote(m[k])
		}
		b.WriteString("  " + strings.Join(parts, " ") + "\n")
	}
	return b.String()
}

// ParseRule parses the concrete syntax "head(...) :- a(...), b(...)."
// with quoted-string constants, capitalized variables, and _ wildcards.
// The head/body split happens at the first top-level ":-" (outside
// quotes and parentheses) and the terminating dot is only stripped
// outside quotes, so constants like ":-" and "." parse correctly.
func ParseRule(s string) (Rule, error) {
	headText, bodyText, hasBody := splitRule(strings.TrimSpace(s))
	head, err := parseAtom(strings.TrimSpace(headText))
	if err != nil {
		return Rule{}, err
	}
	var body []Atom
	if hasBody {
		bodyAtoms, err := splitAtoms(strings.TrimSpace(bodyText))
		if err != nil {
			return Rule{}, err
		}
		for _, ba := range bodyAtoms {
			a, err := parseAtom(ba)
			if err != nil {
				return Rule{}, err
			}
			body = append(body, a)
		}
	}
	return Rule{Head: head, Body: body}, nil
}

// ParseAtom parses one positive goal atom, e.g. `suspicious(P)` — the
// goal syntax of provmark -goal and the /v1/query wire request.
func ParseAtom(s string) (Atom, error) {
	a, err := parseAtom(strings.TrimSpace(s))
	if err != nil {
		return Atom{}, err
	}
	if a.Negated {
		return Atom{}, fmt.Errorf("datalog: negated goal %q", s)
	}
	return a, nil
}

// ParseRulesFile reads and parses a rule file, wrapping parse errors
// with the path — the -rules flag loader shared by the CLIs.
func ParseRulesFile(path string) ([]Rule, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rules, err := ParseRules(string(text))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

// ParseRules parses one rule per non-empty, non-comment line.
func ParseRules(text string) ([]Rule, error) {
	var out []Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// skipQuoted scans a quoted string starting at s[i] == '"' and returns
// the index just past the closing quote. It is the one quoted-string
// lexer every scanner in this file shares: a backslash consumes the
// following byte, so escaped quotes and escaped backslashes ("x\\")
// cannot confuse the in-string state.
func skipQuoted(s string, i int) (int, bool) {
	i++ // opening quote
	for i < len(s) {
		switch s[i] {
		case '\\':
			i += 2
		case '"':
			return i + 1, true
		default:
			i++
		}
	}
	return i, false
}

// splitRule splits a rule's text into head and body at the first
// top-level ":-" and strips a terminating dot when it lies outside
// quotes.
func splitRule(s string) (head, body string, hasBody bool) {
	// First pass: trim the trailing dot only when the final byte is not
	// inside a quoted constant (`p(".").` keeps its constant).
	lastOutside := -1
	for i := 0; i < len(s); {
		if s[i] == '"' {
			next, ok := skipQuoted(s, i)
			if !ok {
				// Unterminated string: everything to the end is
				// in-string; the atom parsers report the error.
				i = len(s)
				break
			}
			i = next
			continue
		}
		lastOutside = i
		i++
	}
	if lastOutside == len(s)-1 && strings.HasSuffix(s, ".") {
		s = s[:len(s)-1]
	}
	// Second pass: find the first ":-" outside quotes and parentheses.
	depth := 0
	for i := 0; i < len(s); {
		switch s[i] {
		case '"':
			next, ok := skipQuoted(s, i)
			if !ok {
				return s, "", false
			}
			i = next
		case '(':
			depth++
			i++
		case ')':
			depth--
			i++
		case ':':
			if depth == 0 && i+1 < len(s) && s[i+1] == '-' {
				return s[:i], s[i+2:], true
			}
			i++
		default:
			i++
		}
	}
	return s, "", false
}

// splitAtoms splits "a(...), b(...)" on top-level commas, honouring
// quoted strings (via the shared lexer) and nested parentheses.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); {
		switch c := s[i]; {
		case c == '"':
			next, ok := skipQuoted(s, i)
			if !ok {
				return nil, fmt.Errorf("datalog: unterminated body in %q", s)
			}
			i = next
		case c == '(':
			depth++
			i++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("datalog: unbalanced parens in %q", s)
			}
			i++
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
			i++
		default:
			i++
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("datalog: unterminated body in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func parseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	negated := false
	if strings.HasPrefix(s, "not ") {
		negated = true
		s = strings.TrimSpace(s[len("not "):])
	}
	a, err := parsePositiveAtom(s)
	if err != nil {
		return Atom{}, err
	}
	a.Negated = negated
	return a, nil
}

func parsePositiveAtom(s string) (Atom, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("datalog: malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	if !validPred(pred) {
		return Atom{}, fmt.Errorf("datalog: invalid predicate name %q in %q", pred, s)
	}
	argsText := s[open+1 : len(s)-1]
	args, err := splitRawArgs(argsText)
	if err != nil {
		return Atom{}, err
	}
	terms := make([]Term, 0, len(args))
	for _, raw := range args {
		t, err := parseTerm(raw)
		if err != nil {
			return Atom{}, err
		}
		terms = append(terms, t)
	}
	return Atom{Pred: pred, Terms: terms}, nil
}

// validPred restricts predicate names to identifiers. Anything looser
// (quotes, parens, separators inside a name) renders ambiguously and
// breaks the parse/String round trip the fuzzer enforces.
func validPred(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case i > 0 && (c >= '0' && c <= '9' || c == '_'):
		default:
			return false
		}
	}
	return true
}

// splitRawArgs splits a comma-separated argument list WITHOUT
// unquoting, so parseTerm can tell quoted constants from variables.
func splitRawArgs(s string) ([]string, error) {
	var out []string
	start := 0
	for i := 0; i < len(s); {
		switch s[i] {
		case '"':
			next, ok := skipQuoted(s, i)
			if !ok {
				return nil, fmt.Errorf("datalog: unterminated string in %q", s)
			}
			i = next
		case ',':
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
			i++
		default:
			i++
		}
	}
	if last := strings.TrimSpace(s[start:]); last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out, nil
}

func parseTerm(raw string) (Term, error) {
	raw = strings.TrimSpace(raw)
	switch {
	case raw == "_":
		return W(), nil
	case strings.HasPrefix(raw, `"`):
		val, rest, err := scanQuoted(raw)
		if err != nil {
			return Term{}, err
		}
		if strings.TrimSpace(rest) != "" {
			return Term{}, fmt.Errorf("datalog: trailing input after constant in %q", raw)
		}
		return C(val), nil
	case len(raw) > 0 && raw[0] >= 'A' && raw[0] <= 'Z':
		// Variables render bare, so their names must stay unambiguous
		// under re-parsing: identifiers only.
		for i := 1; i < len(raw); i++ {
			c := raw[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				return Term{}, fmt.Errorf("datalog: invalid variable name %q", raw)
			}
		}
		return V(raw), nil
	case raw == "":
		return Term{}, fmt.Errorf("datalog: empty term")
	default:
		// Lowercase bare atoms are treated as constants (Prolog style).
		return C(raw), nil
	}
}
