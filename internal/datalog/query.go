package datalog

import (
	"fmt"
	"sort"
	"strings"

	"provmark/internal/graph"
)

// This file implements a small Datalog evaluator over the n/e/p fact
// representation of provenance graphs. The paper stores benchmark
// results as Datalog precisely so that they can be queried; the Dora
// use case (Section 3.1, suspicious-activity detection) writes attack
// patterns as rules and matches them against recorded provenance.
//
// The supported language is positive Datalog with stratified-free
// recursion: facts n(gid)/e(gid)/p(gid) are loaded from a graph, rules
// have a single head atom and a conjunctive body over the three fact
// predicates and previously derived predicates. Terms are variables
// (capitalized), string constants ("..."), or the wildcard _.
// Evaluation is semi-naive to a fixed point.

// Term is a variable, constant, or wildcard in a rule atom.
type Term struct {
	// Var holds the variable name when the term is a variable.
	Var string
	// Const holds the constant value when the term is a constant.
	Const string
	// Wild marks the wildcard term.
	Wild bool
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(value string) Term { return Term{Const: value} }

// W makes the wildcard term.
func W() Term { return Term{Wild: true} }

func (t Term) String() string {
	switch {
	case t.Wild:
		return "_"
	case t.Var != "":
		return t.Var
	default:
		return `"` + t.Const + `"`
	}
}

// Atom is a predicate applied to terms, possibly negated (negation as
// failure: "not p(...)" holds when no matching fact is derivable).
// Negated atoms must have all their variables bound by earlier positive
// body atoms, and a program using negation on a predicate must not
// also derive that predicate from it (the evaluator runs rules to a
// fixed point, so unstratified negation would be unsound; Run rejects
// rules whose head predicate appears negated in any body).
type Atom struct {
	Pred    string
	Terms   []Term
	Negated bool
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	s := a.Pred + "(" + strings.Join(parts, ",") + ")"
	if a.Negated {
		return "not " + s
	}
	return s
}

// Rule derives head facts from a conjunction of body atoms.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Fact is a derived or base tuple.
type Fact struct {
	Pred string
	Args []string
}

func (f Fact) String() string {
	quoted := make([]string, len(f.Args))
	for i, a := range f.Args {
		quoted[i] = `"` + a + `"`
	}
	return f.Pred + "(" + strings.Join(quoted, ",") + ")."
}

func (f Fact) key() string {
	return f.Pred + "\x00" + strings.Join(f.Args, "\x00")
}

// Database holds base and derived facts indexed by predicate.
type Database struct {
	facts map[string][]Fact // pred -> tuples
	seen  map[string]bool
}

// NewDatabase creates an empty fact database.
func NewDatabase() *Database {
	return &Database{facts: map[string][]Fact{}, seen: map[string]bool{}}
}

// Assert adds a fact if not already present; it reports whether the
// fact was new.
func (db *Database) Assert(f Fact) bool {
	k := f.key()
	if db.seen[k] {
		return false
	}
	db.seen[k] = true
	db.facts[f.Pred] = append(db.facts[f.Pred], f)
	return true
}

// Facts returns the tuples of a predicate in assertion order.
func (db *Database) Facts(pred string) []Fact {
	return append([]Fact(nil), db.facts[pred]...)
}

// LoadGraph asserts a property graph as base facts under the standard
// predicates node/2 (id, label), edge/4 (id, src, tgt, label) and
// prop/3 (elem, key, value).
func (db *Database) LoadGraph(g *graph.Graph) {
	for _, n := range g.Nodes() {
		db.Assert(Fact{Pred: "node", Args: []string{string(n.ID), n.Label}})
		for _, k := range graph.PropKeys(n.Props) {
			db.Assert(Fact{Pred: "prop", Args: []string{string(n.ID), k, n.Props[k]}})
		}
	}
	for _, e := range g.Edges() {
		db.Assert(Fact{Pred: "edge", Args: []string{string(e.ID), string(e.Src), string(e.Tgt), e.Label}})
		for _, k := range graph.PropKeys(e.Props) {
			db.Assert(Fact{Pred: "prop", Args: []string{string(e.ID), k, e.Props[k]}})
		}
	}
}

// binding maps variable names to values.
type binding map[string]string

func (b binding) clone() binding {
	out := make(binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// unify extends a binding by matching an atom's terms against a fact.
func unify(a Atom, f Fact, b binding) (binding, bool) {
	if a.Pred != f.Pred || len(a.Terms) != len(f.Args) {
		return nil, false
	}
	out := b
	copied := false
	for i, t := range a.Terms {
		val := f.Args[i]
		switch {
		case t.Wild:
		case t.Const != "" || (t.Var == "" && t.Const == ""):
			if t.Const != val {
				return nil, false
			}
		default:
			if bound, ok := out[t.Var]; ok {
				if bound != val {
					return nil, false
				}
			} else {
				if !copied {
					out = out.clone()
					copied = true
				}
				out[t.Var] = val
			}
		}
	}
	return out, true
}

// substitute instantiates the head atom under a binding.
func substitute(head Atom, b binding) (Fact, error) {
	args := make([]string, len(head.Terms))
	for i, t := range head.Terms {
		switch {
		case t.Wild:
			return Fact{}, fmt.Errorf("datalog: wildcard in rule head %s", head)
		case t.Var != "":
			v, ok := b[t.Var]
			if !ok {
				return Fact{}, fmt.Errorf("datalog: unbound head variable %s in %s", t.Var, head)
			}
			args[i] = v
		default:
			args[i] = t.Const
		}
	}
	return Fact{Pred: head.Pred, Args: args}, nil
}

// Run evaluates the rules over the database to a fixed point
// (semi-naive: each iteration only re-joins when the previous one
// derived something new). Negated body atoms are evaluated by negation
// as failure against the current fact set; to keep that sound, Run
// rejects programs where a predicate derived by some rule head appears
// negated in any rule body (the supported fragment is semipositive
// Datalog: negation only over base or already-final predicates).
func (db *Database) Run(rules []Rule) error {
	heads := map[string]bool{}
	for _, r := range rules {
		heads[r.Head.Pred] = true
	}
	for _, r := range rules {
		for _, a := range r.Body {
			if a.Negated && heads[a.Pred] {
				return fmt.Errorf("datalog: unstratified negation of derived predicate %s in %s", a.Pred, r)
			}
		}
	}
	for {
		derived := false
		for _, r := range rules {
			bindings := []binding{{}}
			for _, atom := range r.Body {
				var next []binding
				if atom.Negated {
					for _, b := range bindings {
						if err := checkNegBound(atom, b); err != nil {
							return err
						}
						matched := false
						for _, f := range db.facts[atom.Pred] {
							if _, ok := unify(Atom{Pred: atom.Pred, Terms: atom.Terms}, f, b); ok {
								matched = true
								break
							}
						}
						if !matched {
							next = append(next, b)
						}
					}
					bindings = next
					if len(bindings) == 0 {
						break
					}
					continue
				}
				for _, b := range bindings {
					for _, f := range db.facts[atom.Pred] {
						if nb, ok := unify(atom, f, b); ok {
							next = append(next, nb)
						}
					}
				}
				bindings = next
				if len(bindings) == 0 {
					break
				}
			}
			for _, b := range bindings {
				f, err := substitute(r.Head, b)
				if err != nil {
					return err
				}
				if db.Assert(f) {
					derived = true
				}
			}
		}
		if !derived {
			return nil
		}
	}
}

// Query evaluates a single goal atom against the database and returns
// the matching bindings, sorted for determinism.
func (db *Database) Query(goal Atom) []map[string]string {
	var out []map[string]string
	for _, f := range db.facts[goal.Pred] {
		if b, ok := unify(goal, f, binding{}); ok {
			m := make(map[string]string, len(b))
			for k, v := range b {
				m[k] = v
			}
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return bindingKey(out[i]) < bindingKey(out[j])
	})
	return out
}

// checkNegBound rejects negated atoms with unbound variables: negation
// as failure is only safe on ground (range-restricted) atoms.
func checkNegBound(a Atom, b binding) error {
	for _, t := range a.Terms {
		if t.Var != "" {
			if _, ok := b[t.Var]; !ok {
				return fmt.Errorf("datalog: unbound variable %s under negation in %s", t.Var, a)
			}
		}
	}
	return nil
}

func bindingKey(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(';')
	}
	return b.String()
}

// ParseRule parses the concrete syntax "head(...) :- a(...), b(...)."
// with quoted-string constants, capitalized variables, and _ wildcards.
func ParseRule(s string) (Rule, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, ".")
	parts := strings.SplitN(s, ":-", 2)
	head, err := parseAtom(strings.TrimSpace(parts[0]))
	if err != nil {
		return Rule{}, err
	}
	var body []Atom
	if len(parts) == 2 {
		bodyAtoms, err := splitAtoms(strings.TrimSpace(parts[1]))
		if err != nil {
			return Rule{}, err
		}
		for _, ba := range bodyAtoms {
			a, err := parseAtom(ba)
			if err != nil {
				return Rule{}, err
			}
			body = append(body, a)
		}
	}
	return Rule{Head: head, Body: body}, nil
}

// ParseRules parses one rule per non-empty, non-comment line.
func ParseRules(text string) ([]Rule, error) {
	var out []Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// splitAtoms splits "a(...), b(...)" on top-level commas.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '"' && s[i-1] != '\\' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("datalog: unbalanced parens in %q", s)
			}
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if depth != 0 || inStr {
		return nil, fmt.Errorf("datalog: unterminated body in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func parseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	negated := false
	if strings.HasPrefix(s, "not ") {
		negated = true
		s = strings.TrimSpace(s[len("not "):])
	}
	a, err := parsePositiveAtom(s)
	if err != nil {
		return Atom{}, err
	}
	a.Negated = negated
	return a, nil
}

func parsePositiveAtom(s string) (Atom, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("datalog: malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	argsText := s[open+1 : len(s)-1]
	args, err := splitRawArgs(argsText)
	if err != nil {
		return Atom{}, err
	}
	terms := make([]Term, 0, len(args))
	for _, raw := range args {
		t, err := parseTerm(raw)
		if err != nil {
			return Atom{}, err
		}
		terms = append(terms, t)
	}
	return Atom{Pred: pred, Terms: terms}, nil
}

// splitRawArgs splits a comma-separated argument list WITHOUT
// unquoting, so parseTerm can tell quoted constants from variables.
func splitRawArgs(s string) ([]string, error) {
	var out []string
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == ',':
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	if inStr {
		return nil, fmt.Errorf("datalog: unterminated string in %q", s)
	}
	if last := strings.TrimSpace(s[start:]); last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out, nil
}

func parseTerm(raw string) (Term, error) {
	raw = strings.TrimSpace(raw)
	switch {
	case raw == "_":
		return W(), nil
	case strings.HasPrefix(raw, `"`):
		val, rest, err := scanQuoted(raw)
		if err != nil {
			return Term{}, err
		}
		if strings.TrimSpace(rest) != "" {
			return Term{}, fmt.Errorf("datalog: trailing input after constant in %q", raw)
		}
		return C(val), nil
	case len(raw) > 0 && raw[0] >= 'A' && raw[0] <= 'Z':
		return V(raw), nil
	case raw == "":
		return Term{}, fmt.Errorf("datalog: empty term")
	default:
		// Lowercase bare atoms are treated as constants (Prolog style).
		return C(raw), nil
	}
}
