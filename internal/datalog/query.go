package datalog

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"provmark/internal/graph"
)

// This file defines the rule language of the Datalog evaluator over
// the n/e/p fact representation of provenance graphs: terms, atoms,
// rules, the fact database, and the concrete-syntax parser. The
// evaluation engines live in engine.go (the production semi-naive
// engine) and naive.go (the frozen naive reference).
//
// The paper stores benchmark results as Datalog precisely so that they
// can be queried; the Dora use case (Section 3.1, suspicious-activity
// detection) writes attack patterns as rules and matches them against
// recorded provenance.
//
// The supported language is Datalog with stratified negation: facts
// node/2, edge/4 and prop/3 are loaded from a graph, rules have a
// single head atom and a conjunctive body over the fact predicates and
// derived predicates. Terms are variables (capitalized), string
// constants ("..."), or the wildcard _. "not p(...)" holds when no
// matching fact is derivable; a negated predicate must be fully
// derivable before the negation is evaluated, so programs whose
// negations cannot be stratified are rejected.

// Term is a variable, constant, or wildcard in a rule atom.
type Term struct {
	// Var holds the variable name when the term is a variable.
	Var string
	// Const holds the constant value when the term is a constant.
	Const string
	// Wild marks the wildcard term.
	Wild bool
}

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// C makes a constant term.
func C(value string) Term { return Term{Const: value} }

// W makes the wildcard term.
func W() Term { return Term{Wild: true} }

func (t Term) String() string {
	switch {
	case t.Wild:
		return "_"
	case t.Var != "":
		return t.Var
	default:
		return quote(t.Const)
	}
}

// Atom is a predicate applied to terms, possibly negated (negation as
// failure: "not p(...)" holds when no matching fact is derivable).
// Negated atoms must have all their variables bound by earlier positive
// body atoms, and the program's negations must be stratifiable: a
// predicate may only be negated once every rule deriving it has run to
// completion, so recursion through negation is rejected.
type Atom struct {
	Pred    string
	Terms   []Term
	Negated bool
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	s := a.Pred + "(" + strings.Join(parts, ",") + ")"
	if a.Negated {
		return "not " + s
	}
	return s
}

// Rule derives head facts from a conjunction of body atoms. An empty
// body makes the rule an unconditional fact.
type Rule struct {
	Head Atom
	Body []Atom
}

func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, a := range r.Body {
		parts[i] = a.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Fact is a derived or base tuple.
type Fact struct {
	Pred string
	Args []string
}

func (f Fact) String() string {
	quoted := make([]string, len(f.Args))
	for i, a := range f.Args {
		quoted[i] = quote(a)
	}
	return f.Pred + "(" + strings.Join(quoted, ",") + ")."
}

func (f Fact) key() string {
	return f.Pred + "\x00" + strings.Join(f.Args, "\x00")
}

// Database holds base and derived facts indexed by predicate, plus the
// bound-position join indexes the semi-naive engine probes.
type Database struct {
	facts map[string][]Fact // pred -> tuples, assertion order
	seen  map[string]bool
	// idx maps pred -> bound-position signature -> index. Indexes are
	// built on first probe and extended lazily as facts arrive, so
	// asserting never pays for signatures nobody joins on.
	idx   map[string]map[string]*predIndex
	stats EvalStats
}

// NewDatabase creates an empty fact database.
func NewDatabase() *Database {
	return &Database{
		facts: map[string][]Fact{},
		seen:  map[string]bool{},
		idx:   map[string]map[string]*predIndex{},
	}
}

// Assert adds a fact if not already present; it reports whether the
// fact was new.
func (db *Database) Assert(f Fact) bool {
	k := f.key()
	if db.seen[k] {
		return false
	}
	db.seen[k] = true
	db.facts[f.Pred] = append(db.facts[f.Pred], f)
	return true
}

// Facts returns the tuples of a predicate in assertion order.
func (db *Database) Facts(pred string) []Fact {
	return append([]Fact(nil), db.facts[pred]...)
}

// LoadGraph asserts a property graph as base facts under the standard
// predicates node/2 (id, label), edge/4 (id, src, tgt, label) and
// prop/3 (elem, key, value).
func (db *Database) LoadGraph(g *graph.Graph) {
	for _, n := range g.Nodes() {
		db.Assert(Fact{Pred: "node", Args: []string{string(n.ID), n.Label}})
		for _, k := range graph.PropKeys(n.Props) {
			db.Assert(Fact{Pred: "prop", Args: []string{string(n.ID), k, n.Props[k]}})
		}
	}
	for _, e := range g.Edges() {
		db.Assert(Fact{Pred: "edge", Args: []string{string(e.ID), string(e.Src), string(e.Tgt), e.Label}})
		for _, k := range graph.PropKeys(e.Props) {
			db.Assert(Fact{Pred: "prop", Args: []string{string(e.ID), k, e.Props[k]}})
		}
	}
}

// binding maps variable names to values.
type binding map[string]string

func (b binding) clone() binding {
	out := make(binding, len(b)+1)
	for k, v := range b {
		out[k] = v
	}
	return out
}

// unify extends a binding by matching an atom's terms against a fact.
func unify(a Atom, f Fact, b binding) (binding, bool) {
	if a.Pred != f.Pred || len(a.Terms) != len(f.Args) {
		return nil, false
	}
	out := b
	copied := false
	for i, t := range a.Terms {
		val := f.Args[i]
		switch {
		case t.Wild:
		case t.Var == "":
			if t.Const != val {
				return nil, false
			}
		default:
			if bound, ok := out[t.Var]; ok {
				if bound != val {
					return nil, false
				}
			} else {
				if !copied {
					out = out.clone()
					copied = true
				}
				out[t.Var] = val
			}
		}
	}
	return out, true
}

// substitute instantiates the head atom under a binding.
func substitute(head Atom, b binding) (Fact, error) {
	args := make([]string, len(head.Terms))
	for i, t := range head.Terms {
		switch {
		case t.Wild:
			return Fact{}, fmt.Errorf("datalog: wildcard in rule head %s", head)
		case t.Var != "":
			v, ok := b[t.Var]
			if !ok {
				return Fact{}, fmt.Errorf("datalog: unbound head variable %s in %s", t.Var, head)
			}
			args[i] = v
		default:
			args[i] = t.Const
		}
	}
	return Fact{Pred: head.Pred, Args: args}, nil
}

// Query evaluates a single goal atom against the database and returns
// the matching bindings, deduplicated and sorted for determinism.
// Deduplication matters for goals with wildcards: q(X, _) over q(a,b)
// and q(a,c) yields {X:a} once, not once per matching fact.
func (db *Database) Query(goal Atom) []map[string]string {
	var out []map[string]string
	dedup := map[string]bool{}
	for _, b := range db.joinPositive(Atom{Pred: goal.Pred, Terms: goal.Terms}, binding{}, nil) {
		k := bindingKey(b)
		if dedup[k] {
			continue
		}
		dedup[k] = true
		m := make(map[string]string, len(b))
		for k, v := range b {
			m[k] = v
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return bindingKey(out[i]) < bindingKey(out[j])
	})
	return out
}

func bindingKey[M ~map[string]string](m M) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(';')
	}
	return b.String()
}

// FormatBindings renders a goal's query bindings deterministically —
// the query reporter shared by provmark -goal and provmark-batch
// -goal, so every surface prints match sets identically.
func FormatBindings(goal Atom, rows []map[string]string) string {
	var b strings.Builder
	if len(rows) == 0 {
		fmt.Fprintf(&b, "query %s: no matches\n", goal)
		return b.String()
	}
	fmt.Fprintf(&b, "query %s: %d match(es)\n", goal, len(rows))
	for _, m := range rows {
		if len(m) == 0 {
			b.WriteString("  (holds)\n")
			continue
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = k + "=" + quote(m[k])
		}
		b.WriteString("  " + strings.Join(parts, " ") + "\n")
	}
	return b.String()
}

// ParseRule parses the concrete syntax "head(...) :- a(...), b(...)."
// with quoted-string constants, capitalized variables, and _ wildcards.
// The head/body split happens at the first top-level ":-" (outside
// quotes and parentheses) and the terminating dot is only stripped
// outside quotes, so constants like ":-" and "." parse correctly.
func ParseRule(s string) (Rule, error) {
	headText, bodyText, hasBody := splitRule(strings.TrimSpace(s))
	head, err := parseAtom(strings.TrimSpace(headText))
	if err != nil {
		return Rule{}, err
	}
	var body []Atom
	if hasBody {
		bodyAtoms, err := splitAtoms(strings.TrimSpace(bodyText))
		if err != nil {
			return Rule{}, err
		}
		for _, ba := range bodyAtoms {
			a, err := parseAtom(ba)
			if err != nil {
				return Rule{}, err
			}
			body = append(body, a)
		}
	}
	return Rule{Head: head, Body: body}, nil
}

// ParseAtom parses one positive goal atom, e.g. `suspicious(P)` — the
// goal syntax of provmark -goal and the /v1/query wire request.
func ParseAtom(s string) (Atom, error) {
	a, err := parseAtom(strings.TrimSpace(s))
	if err != nil {
		return Atom{}, err
	}
	if a.Negated {
		return Atom{}, fmt.Errorf("datalog: negated goal %q", s)
	}
	return a, nil
}

// ParseRulesFile reads and parses a rule file, wrapping parse errors
// with the path — the -rules flag loader shared by the CLIs.
func ParseRulesFile(path string) ([]Rule, error) {
	text, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rules, err := ParseRules(string(text))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rules, nil
}

// ParseRules parses one rule per non-empty, non-comment line.
func ParseRules(text string) ([]Rule, error) {
	var out []Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		r, err := ParseRule(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// skipQuoted scans a quoted string starting at s[i] == '"' and returns
// the index just past the closing quote. It is the one quoted-string
// lexer every scanner in this file shares: a backslash consumes the
// following byte, so escaped quotes and escaped backslashes ("x\\")
// cannot confuse the in-string state.
func skipQuoted(s string, i int) (int, bool) {
	i++ // opening quote
	for i < len(s) {
		switch s[i] {
		case '\\':
			i += 2
		case '"':
			return i + 1, true
		default:
			i++
		}
	}
	return i, false
}

// splitRule splits a rule's text into head and body at the first
// top-level ":-" and strips a terminating dot when it lies outside
// quotes.
func splitRule(s string) (head, body string, hasBody bool) {
	// First pass: trim the trailing dot only when the final byte is not
	// inside a quoted constant (`p(".").` keeps its constant).
	lastOutside := -1
	for i := 0; i < len(s); {
		if s[i] == '"' {
			next, ok := skipQuoted(s, i)
			if !ok {
				// Unterminated string: everything to the end is
				// in-string; the atom parsers report the error.
				i = len(s)
				break
			}
			i = next
			continue
		}
		lastOutside = i
		i++
	}
	if lastOutside == len(s)-1 && strings.HasSuffix(s, ".") {
		s = s[:len(s)-1]
	}
	// Second pass: find the first ":-" outside quotes and parentheses.
	depth := 0
	for i := 0; i < len(s); {
		switch s[i] {
		case '"':
			next, ok := skipQuoted(s, i)
			if !ok {
				return s, "", false
			}
			i = next
		case '(':
			depth++
			i++
		case ')':
			depth--
			i++
		case ':':
			if depth == 0 && i+1 < len(s) && s[i+1] == '-' {
				return s[:i], s[i+2:], true
			}
			i++
		default:
			i++
		}
	}
	return s, "", false
}

// splitAtoms splits "a(...), b(...)" on top-level commas, honouring
// quoted strings (via the shared lexer) and nested parentheses.
func splitAtoms(s string) ([]string, error) {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); {
		switch c := s[i]; {
		case c == '"':
			next, ok := skipQuoted(s, i)
			if !ok {
				return nil, fmt.Errorf("datalog: unterminated body in %q", s)
			}
			i = next
		case c == '(':
			depth++
			i++
		case c == ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("datalog: unbalanced parens in %q", s)
			}
			i++
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
			i++
		default:
			i++
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("datalog: unterminated body in %q", s)
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out, nil
}

func parseAtom(s string) (Atom, error) {
	s = strings.TrimSpace(s)
	negated := false
	if strings.HasPrefix(s, "not ") {
		negated = true
		s = strings.TrimSpace(s[len("not "):])
	}
	a, err := parsePositiveAtom(s)
	if err != nil {
		return Atom{}, err
	}
	a.Negated = negated
	return a, nil
}

func parsePositiveAtom(s string) (Atom, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return Atom{}, fmt.Errorf("datalog: malformed atom %q", s)
	}
	pred := strings.TrimSpace(s[:open])
	if !validPred(pred) {
		return Atom{}, fmt.Errorf("datalog: invalid predicate name %q in %q", pred, s)
	}
	argsText := s[open+1 : len(s)-1]
	args, err := splitRawArgs(argsText)
	if err != nil {
		return Atom{}, err
	}
	terms := make([]Term, 0, len(args))
	for _, raw := range args {
		t, err := parseTerm(raw)
		if err != nil {
			return Atom{}, err
		}
		terms = append(terms, t)
	}
	return Atom{Pred: pred, Terms: terms}, nil
}

// validPred restricts predicate names to identifiers. Anything looser
// (quotes, parens, separators inside a name) renders ambiguously and
// breaks the parse/String round trip the fuzzer enforces.
func validPred(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case i > 0 && (c >= '0' && c <= '9' || c == '_'):
		default:
			return false
		}
	}
	return true
}

// splitRawArgs splits a comma-separated argument list WITHOUT
// unquoting, so parseTerm can tell quoted constants from variables.
func splitRawArgs(s string) ([]string, error) {
	var out []string
	start := 0
	for i := 0; i < len(s); {
		switch s[i] {
		case '"':
			next, ok := skipQuoted(s, i)
			if !ok {
				return nil, fmt.Errorf("datalog: unterminated string in %q", s)
			}
			i = next
		case ',':
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
			i++
		default:
			i++
		}
	}
	if last := strings.TrimSpace(s[start:]); last != "" || len(out) > 0 {
		out = append(out, last)
	}
	return out, nil
}

func parseTerm(raw string) (Term, error) {
	raw = strings.TrimSpace(raw)
	switch {
	case raw == "_":
		return W(), nil
	case strings.HasPrefix(raw, `"`):
		val, rest, err := scanQuoted(raw)
		if err != nil {
			return Term{}, err
		}
		if strings.TrimSpace(rest) != "" {
			return Term{}, fmt.Errorf("datalog: trailing input after constant in %q", raw)
		}
		return C(val), nil
	case len(raw) > 0 && raw[0] >= 'A' && raw[0] <= 'Z':
		// Variables render bare, so their names must stay unambiguous
		// under re-parsing: identifiers only.
		for i := 1; i < len(raw); i++ {
			c := raw[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				return Term{}, fmt.Errorf("datalog: invalid variable name %q", raw)
			}
		}
		return V(raw), nil
	case raw == "":
		return Term{}, fmt.Errorf("datalog: empty term")
	default:
		// Lowercase bare atoms are treated as constants (Prolog style).
		return C(raw), nil
	}
}
