package datalog

import "testing"

// FuzzParseRule fuzzes the rule parser for the canonical-form
// round-trip invariant: any input ParseRule accepts must render
// (String) to a form that re-parses to the identical rendering —
// parse-then-render is a normalization whose fixed point is reached
// after one step. The checked-in corpus under testdata/fuzz seeds
// escapes, negation, wildcards and nested quotes.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		`suspicious(P) :- prop(P, "uid", "0"), node(P, "Process").`,
		`reach(X, Z) :- reach(X, Y), edge(_, Y, Z, _).`,
		`lonely(X) :- node(X, _), not edge(_, X, _, _).`,
		`h(X) :- p("x\\"), q(X).`,
		`p(":-").`,
		`p("a :- b.") :- q(X).`,
		`p("quote \" inside", "newline\nhere") :- q(_).`,
		`seed("a").`,
		`p(bare, Mixed, "const") :- q(bare).`,
		`escalation(New, Old) :- edge(_, New, Old, "wasInformedBy"), prop(New, "uid", "0").`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ParseRule(input)
		if err != nil {
			return // rejected inputs are fine; we only check accepted ones
		}
		rendered := r.String()
		r2, err := ParseRule(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not re-parse\ninput:    %q\nrendered: %q\nerr: %v", input, rendered, err)
		}
		if again := r2.String(); again != rendered {
			t.Fatalf("rendering is not a fixed point\ninput: %q\nfirst: %q\nsecond: %q", input, rendered, again)
		}
	})
}
