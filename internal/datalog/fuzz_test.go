package datalog

import "testing"

// fuzzBaseFacts ground the fuzzed rules: every predicate the seed
// corpus mentions gets a few facts, so accepted rules actually derive
// something and engine divergence has material to surface in.
var fuzzBaseFacts = []Fact{
	{Pred: "edge", Args: []string{"e1", "n1", "n2", "wasInformedBy"}},
	{Pred: "edge", Args: []string{"e2", "n2", "n3", "used"}},
	{Pred: "edge", Args: []string{"e3", "n3", "n1", "used"}},
	{Pred: "node", Args: []string{"n1", "Process"}},
	{Pred: "node", Args: []string{"n2", "Process"}},
	{Pred: "node", Args: []string{"n3", "Entity"}},
	{Pred: "prop", Args: []string{"n1", "uid", "0"}},
	{Pred: "prop", Args: []string{"n2", "uid", "1000"}},
	{Pred: "q", Args: []string{"n1"}},
	{Pred: "q", Args: []string{"bare"}},
	{Pred: "reach", Args: []string{"n1", "n2"}},
}

// FuzzParseRule fuzzes the rule parser for the canonical-form
// round-trip invariant: any input ParseRule accepts must render
// (String) to a form that re-parses to the identical rendering —
// parse-then-render is a normalization whose fixed point is reached
// after one step. The checked-in corpus under testdata/fuzz seeds
// escapes, negation, wildcards and nested quotes.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		`suspicious(P) :- prop(P, "uid", "0"), node(P, "Process").`,
		`reach(X, Z) :- reach(X, Y), edge(_, Y, Z, _).`,
		`lonely(X) :- node(X, _), not edge(_, X, _, _).`,
		`h(X) :- p("x\\"), q(X).`,
		`p(":-").`,
		`p("a :- b.") :- q(X).`,
		`p("quote \" inside", "newline\nhere") :- q(_).`,
		`seed("a").`,
		`p(bare, Mixed, "const") :- q(bare).`,
		`escalation(New, Old) :- edge(_, New, Old, "wasInformedBy"), prop(New, "uid", "0").`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		r, err := ParseRule(input)
		if err != nil {
			return // rejected inputs are fine; we only check accepted ones
		}
		rendered := r.String()
		r2, err := ParseRule(rendered)
		if err != nil {
			t.Fatalf("rendering of accepted input does not re-parse\ninput:    %q\nrendered: %q\nerr: %v", input, rendered, err)
		}
		if again := r2.String(); again != rendered {
			t.Fatalf("rendering is not a fixed point\ninput: %q\nfirst: %q\nsecond: %q", input, rendered, again)
		}
		// Cross-engine invariant: every accepted rule, evaluated over a
		// small fixed fact base, must behave identically on the interned
		// sequential, interned parallel and frozen string engines —
		// acceptance, derived fact set and (across interned widths)
		// evaluation counters. The naive oracle only speaks the
		// semipositive fragment, so it is compared when it accepts.
		if len(r.Body) > 6 {
			return // keep cross products over the fact base bounded
		}
		rules := []Rule{r}
		run := func(eval func(*Database, []Rule) error) (*Database, error) {
			db := NewDatabase()
			for _, f := range fuzzBaseFacts {
				db.Assert(f)
			}
			return db, eval(db, rules)
		}
		seqDB, errSeq := run(func(db *Database, rs []Rule) error { return db.RunParallel(rs, 1) })
		parDB, errPar := run(func(db *Database, rs []Rule) error { return db.RunParallel(rs, 3) })
		strDB, errStr := run((*Database).RunStrings)
		naiveDB, errNaive := run((*Database).RunNaive)
		if (errSeq == nil) != (errPar == nil) || (errSeq == nil) != (errStr == nil) {
			t.Fatalf("engines disagree on acceptance of %q: seq=%v par=%v strings=%v", rendered, errSeq, errPar, errStr)
		}
		if errSeq != nil {
			if errNaive == nil {
				t.Fatalf("naive accepts rule the stratified engines reject: %q (stratified err: %v)", rendered, errSeq)
			}
			return
		}
		want := dumpFacts(seqDB)
		if got := dumpFacts(parDB); got != want {
			t.Fatalf("parallel fact set differs for %q\nseq:\n%s\npar:\n%s", rendered, want, got)
		}
		if got := dumpFacts(strDB); got != want {
			t.Fatalf("string-engine fact set differs for %q\nseq:\n%s\nstrings:\n%s", rendered, want, got)
		}
		if errNaive == nil {
			if got := dumpFacts(naiveDB); got != want {
				t.Fatalf("naive fact set differs for %q\nseq:\n%s\nnaive:\n%s", rendered, want, got)
			}
		}
		if seq, par := seqDB.Stats(), parDB.Stats(); seq != par {
			t.Fatalf("interned counters diverge across widths for %q: seq=%+v par=%+v", rendered, seq, par)
		}
	})
}
