package datalog

import "fmt"

// RunNaive evaluates the rules with the original naive fixpoint
// strategy this package shipped with: every iteration re-joins every
// rule against the entire fact set, with no delta relations and no
// indexes, and negation is limited to the semipositive fragment (only
// base or never-derived predicates may be negated).
//
// It is frozen deliberately: the differential tests prove the
// semi-naive engine (Run) derives identical fact sets, and
// BenchmarkDatalogAncestry measures the join-probe gap between the
// two. Do not use it outside tests and benchmarks.
func (db *Database) RunNaive(rules []Rule) error {
	heads := map[string]bool{}
	for _, r := range rules {
		heads[r.Head.Pred] = true
	}
	for _, r := range rules {
		for _, a := range r.Body {
			if a.Negated && heads[a.Pred] {
				return fmt.Errorf("datalog: unstratified negation of derived predicate %s in %s", a.Pred, r)
			}
		}
	}
	for {
		derived := false
		for _, r := range rules {
			bindings := []binding{{}}
			for _, atom := range r.Body {
				var next []binding
				if atom.Negated {
					for _, b := range bindings {
						for _, t := range atom.Terms {
							if t.Var != "" {
								if _, ok := b[t.Var]; !ok {
									return fmt.Errorf("datalog: unbound variable %s under negation in %s", t.Var, atom)
								}
							}
						}
						matched := false
						for _, f := range db.stringFacts(atom.Pred) {
							db.stats.JoinProbes++
							if _, ok := unify(Atom{Pred: atom.Pred, Terms: atom.Terms}, f, b); ok {
								matched = true
								break
							}
						}
						if !matched {
							next = append(next, b)
						}
					}
					bindings = next
					if len(bindings) == 0 {
						break
					}
					continue
				}
				facts := db.stringFacts(atom.Pred)
				db.stats.JoinProbes += int64(len(facts)) * int64(len(bindings))
				for _, b := range bindings {
					for _, f := range facts {
						if nb, ok := unify(atom, f, b); ok {
							next = append(next, nb)
						}
					}
				}
				bindings = next
				if len(bindings) == 0 {
					break
				}
			}
			for _, b := range bindings {
				f, err := substitute(r.Head, b)
				if err != nil {
					return err
				}
				if db.Assert(f) {
					db.stats.Derived++
					derived = true
				}
			}
		}
		db.stats.Iterations++
		if !derived {
			return nil
		}
	}
}
