package datalog

// The interned columnar engine — the production evaluation path behind
// Run and RunParallel.
//
// Instead of joining Fact values through map[string]string bindings,
// each stratum is compiled once against the database's interned
// columns: variables become dense slots in a flat []uint32 binding
// row, every body atom becomes a short op list (check a constant id,
// check a slot, set a slot) plus, when any argument position is bound,
// a packed-integer index probe. Evaluation then never touches a string
// — constants were interned at Assert time and bindings round-trip
// through the symbol table only when the caller formats results.
//
// Rounds run under a barrier: every (rule, delta-position) pair of a
// round is an independent task joining against the relation extents
// frozen at the round start, with derivations accumulated in per-task
// buffers and JoinProbes in per-task counters. At the barrier the
// buffers merge into the columns in deterministic task order and the
// counters sum, so the derived fact order and every EvalStats counter
// are bit-identical at any worker-pool width — parallelism is purely a
// wall-clock lever. (The string engine asserts mid-round, so its
// JoinProbes/Iterations can differ from the barrier engine's; the
// differential corpus pins the derived fact sets to byte equality
// across all engines.)
//
// Strata touching a mixed-arity predicate — or whose atoms disagree
// with a relation's arity — fall back to the frozen string engine
// (runStratum), which handles the general case bit-for-bit as before.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// intIndex is a bound-position hash index over a relation's columns,
// keyed by the packed little-endian bytes of the values at a fixed set
// of argument positions. Like predIndex it extends incrementally via a
// row watermark, but extension happens only at round starts (never
// mid-round), so parallel workers read it without locks.
type intIndex struct {
	positions []int
	built     int
	m         map[string][]int32 // packed value key -> row indices
}

// extend indexes rows [built, rel.rows), returning the (possibly
// grown) scratch key buffer.
func (ix *intIndex) extend(rel *relation, buf []byte) []byte {
	for ; ix.built < rel.rows; ix.built++ {
		buf = buf[:0]
		for _, p := range ix.positions {
			v := rel.cols[p][ix.built]
			buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		ix.m[string(buf)] = append(ix.m[string(buf)], int32(ix.built))
	}
	return buf
}

// intIndexFor returns the relation's (lazily created) integer index
// over the given positions.
func (rel *relation) intIndexFor(positions []int) *intIndex {
	sig := positionSig(positions)
	if rel.intIdx == nil {
		rel.intIdx = map[string]*intIndex{}
	}
	ix := rel.intIdx[sig]
	if ix == nil {
		ix = &intIndex{positions: append([]int(nil), positions...), m: map[string][]int32{}}
		rel.intIdx[sig] = ix
	}
	return ix
}

// iOp is one compiled action at an argument position: compare the
// column value against an interned constant, compare it against a
// binding slot (a variable bound earlier), or write it into a slot (a
// variable's first occurrence). Wildcards compile to nothing.
type iOp struct {
	pos  int
	kind uint8
	val  uint32 // constant id (opCheckConst) or slot index otherwise
}

const (
	opCheckConst uint8 = iota
	opCheckSlot
	opSetSlot
)

// keyPart produces one value of an index-probe key or a head tuple:
// either an interned constant or the current value of a binding slot.
type keyPart struct {
	slot bool
	val  uint32
}

// cAtom is one compiled body atom.
type cAtom struct {
	pred    string
	rel     *relation // nil when the predicate has no facts and never will
	negated bool
	// keyPos/keyParts/idx describe the index probe used when any
	// position is bound before the atom; probeOps verify and bind the
	// remaining positions. scanOps cover every position, for full scans
	// and delta scans.
	keyPos   []int
	keyParts []keyPart
	idx      *intIndex
	probeOps []iOp
	scanOps  []iOp
}

// cRule is one compiled rule.
type cRule struct {
	atoms     []cAtom
	numSlots  int
	headRel   *relation
	headParts []keyPart
}

// headState tracks one head relation's row growth across rounds: prev
// snapshots the extent before a barrier merge, [dLo, dHi) is the fresh
// delta feeding the next round.
type headState struct {
	rel            *relation
	prev, dLo, dHi int
}

// compiledStratum is one stratum's rules compiled against the
// database. Round state — head extents, seed and delta task templates,
// the active-task scratch — is allocated once here and reused every
// round, so a round's fixed overhead is O(rules), not O(allocations).
type compiledStratum struct {
	rules      []cRule
	heads      []headState
	headIdx    map[string]int
	seedTasks  []*iTask // round 0: one per rule, no delta restriction
	deltaTasks []*iTask // one per (rule, recursive body position)
	active     []*iTask // per-round scratch
}

// iTask is one unit of round work: evaluate a rule with the body atom
// at deltaPos (or none, when -1) restricted to delta rows [dLo, dHi).
// Tasks are allocated at compile time and recycled across rounds;
// headIdx locates the delta source for deltaPos tasks.
type iTask struct {
	rule         *cRule
	deltaPos     int
	headIdx      int
	dLo, dHi     int
	derived      []uint32 // flat head tuples, stride = head arity
	derivedCount int
	probes       int64
}

// iWorkspace is one evaluator's scratch: two flat binding slabs, a key
// buffer for probes, reused across tasks and rounds.
type iWorkspace struct {
	cur, next []uint32
	key       []byte
}

// Run evaluates the rules with the interned columnar engine, using the
// parallelism configured by SetParallelism (by default
// min(GOMAXPROCS, 8) workers). It accepts exactly the programs
// RunStrings accepts and derives byte-identical fact sets; counters
// and fact order are identical at every worker width.
func (db *Database) Run(rules []Rule) error {
	return db.RunParallel(rules, db.workers)
}

// RunParallel is Run with an explicit worker-pool width for the
// per-stratum delta joins: 1 evaluates the round tasks inline, 0
// selects min(GOMAXPROCS, 8).
func (db *Database) RunParallel(rules []Rule, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	if err := checkRules(rules); err != nil {
		return err
	}
	strata, err := stratify(rules)
	if err != nil {
		return err
	}
	db.stats.Strata = len(strata)
	for _, stratum := range strata {
		cs, ok := db.compileStratum(stratum)
		if !ok {
			// Mixed-arity territory: the string engine speaks it.
			if err := db.runStratum(stratum); err != nil {
				return err
			}
			continue
		}
		db.runStratumInterned(cs, workers)
	}
	return nil
}

// compileStratum compiles one stratum's rules against the database's
// relations. It reports ok=false — meaning the caller must use the
// string engine — when any touched relation is mixed or any atom/head
// arity disagrees with a relation (existing or implied), since the
// columnar layout is strictly fixed-arity.
func (db *Database) compileStratum(rules []Rule) (*compiledStratum, bool) {
	// Arity consistency across every predicate the stratum touches.
	arity := map[string]int{}
	check := func(pred string, n int) bool {
		if rel := db.rels[pred]; rel != nil {
			if rel.mixed || rel.arity != n {
				return false
			}
			return true
		}
		if a, seen := arity[pred]; seen && a != n {
			return false
		}
		arity[pred] = n
		return true
	}
	for _, r := range rules {
		if !check(r.Head.Pred, len(r.Head.Terms)) {
			return nil, false
		}
		for _, a := range r.Body {
			if !check(a.Pred, len(a.Terms)) {
				return nil, false
			}
		}
	}
	cs := &compiledStratum{headIdx: map[string]int{}}
	heads := map[string]*relation{}
	for _, r := range rules {
		if _, ok := heads[r.Head.Pred]; !ok {
			rel := db.getRel(r.Head.Pred, len(r.Head.Terms))
			heads[r.Head.Pred] = rel
			cs.headIdx[r.Head.Pred] = len(cs.heads)
			cs.heads = append(cs.heads, headState{rel: rel})
		}
	}
	for _, r := range rules {
		cs.rules = append(cs.rules, db.compileRule(r, heads))
	}
	// Pre-build every task the stratum can ever run: the round-0 seeds
	// and one recycled task per (rule, recursive body position), in the
	// rule-then-position order rounds schedule them.
	for i := range cs.rules {
		cs.seedTasks = append(cs.seedTasks, &iTask{rule: &cs.rules[i], deltaPos: -1})
	}
	for i := range cs.rules {
		cr := &cs.rules[i]
		for pos := range cr.atoms {
			a := &cr.atoms[pos]
			if a.negated {
				continue
			}
			if hi, ok := cs.headIdx[a.pred]; ok {
				cs.deltaTasks = append(cs.deltaTasks, &iTask{rule: cr, deltaPos: pos, headIdx: hi})
			}
		}
	}
	return cs, true
}

// compileRule lowers one rule: variables map to slots in first-binding
// order, and each atom's bound-position set — static, because every
// binding reaching an atom binds exactly the variables of the earlier
// positive atoms — selects between an index probe and a full scan.
func (db *Database) compileRule(r Rule, heads map[string]*relation) cRule {
	cr := cRule{}
	slots := map[string]uint32{}
	slot := func(v string) (uint32, bool) {
		s, ok := slots[v]
		if !ok {
			s = uint32(len(slots))
			slots[v] = s
		}
		return s, ok
	}
	for _, a := range r.Body {
		ca := cAtom{pred: a.Pred, negated: a.Negated}
		if rel, ok := heads[a.Pred]; ok {
			ca.rel = rel
		} else {
			ca.rel = db.rels[a.Pred]
		}
		// Mirror boundPositions: positions with a constant or an
		// already-bound variable form the probe key, in term order.
		atomSeen := map[string]uint32{}
		for i, t := range a.Terms {
			switch {
			case t.Wild:
				// no ops anywhere
			case t.Var == "":
				id := db.intern(t.Const)
				ca.keyPos = append(ca.keyPos, i)
				ca.keyParts = append(ca.keyParts, keyPart{val: id})
				ca.scanOps = append(ca.scanOps, iOp{pos: i, kind: opCheckConst, val: id})
			default:
				if s, bound := slots[t.Var]; bound {
					ca.keyPos = append(ca.keyPos, i)
					ca.keyParts = append(ca.keyParts, keyPart{slot: true, val: s})
					ca.scanOps = append(ca.scanOps, iOp{pos: i, kind: opCheckSlot, val: s})
				} else if s, seen := atomSeen[t.Var]; seen {
					// Repeated new variable within the atom: the first
					// occurrence sets the slot, later ones check it.
					ca.probeOps = append(ca.probeOps, iOp{pos: i, kind: opCheckSlot, val: s})
					ca.scanOps = append(ca.scanOps, iOp{pos: i, kind: opCheckSlot, val: s})
				} else {
					s := uint32(len(slots) + len(atomSeen))
					atomSeen[t.Var] = s
					ca.probeOps = append(ca.probeOps, iOp{pos: i, kind: opSetSlot, val: s})
					ca.scanOps = append(ca.scanOps, iOp{pos: i, kind: opSetSlot, val: s})
				}
			}
		}
		if !a.Negated {
			// Negated atoms never bind (checkRules enforced it); positive
			// atoms commit their new variables to the slot map.
			for v, s := range atomSeen {
				slots[v] = s
			}
		}
		if len(ca.keyPos) > 0 && ca.rel != nil {
			ca.idx = ca.rel.intIndexFor(ca.keyPos)
		}
		cr.atoms = append(cr.atoms, ca)
	}
	cr.numSlots = len(slots)
	cr.headRel = heads[r.Head.Pred]
	for _, t := range r.Head.Terms {
		if t.Var != "" {
			s, _ := slot(t.Var)
			cr.headParts = append(cr.headParts, keyPart{slot: true, val: s})
		} else {
			cr.headParts = append(cr.headParts, keyPart{val: db.intern(t.Const)})
		}
	}
	return cr
}

// runStratumInterned evaluates one compiled stratum to fixpoint with
// round barriers: an initial round over the current extents seeds the
// deltas, then each following round re-joins every recursive body atom
// against the previous round's delta rows only.
func (db *Database) runStratumInterned(cs *compiledStratum, workers int) {
	tasks := cs.seedTasks
	for {
		db.stats.Iterations++
		db.runRound(cs, tasks, workers)
		// Barrier: snapshot head extents, merge per-task buffers in
		// task order, then read the next deltas off the row growth.
		for i := range cs.heads {
			cs.heads[i].prev = cs.heads[i].rel.rows
		}
		for _, t := range tasks {
			db.stats.JoinProbes += t.probes
			rel := t.rule.headRel
			ar := rel.arity
			for j := 0; j < t.derivedCount; j++ {
				if db.assertInterned(rel, t.derived[j*ar:(j+1)*ar]) {
					db.stats.Derived++
				}
			}
			t.derived = t.derived[:0]
			t.derivedCount = 0
			t.probes = 0
		}
		fresh := false
		for i := range cs.heads {
			h := &cs.heads[i]
			h.dLo, h.dHi = h.prev, h.rel.rows
			if h.dHi > h.dLo {
				fresh = true
			}
		}
		if !fresh {
			return
		}
		// Semi-naive rounds: activate the template task of every (rule,
		// recursive body position) whose predicate grew this round.
		tasks = cs.active[:0]
		for _, t := range cs.deltaTasks {
			h := &cs.heads[t.headIdx]
			if h.dHi > h.dLo {
				t.dLo, t.dHi = h.dLo, h.dHi
				tasks = append(tasks, t)
			}
		}
		cs.active = tasks
	}
}

// runRound evaluates one round's tasks — inline when the pool width or
// task count is 1, otherwise across a bounded worker pool pulling
// tasks from an atomic counter. Indexes extend before any worker
// starts, and every task writes only its own buffers, so the round
// body is data-race-free by construction.
func (db *Database) runRound(cs *compiledStratum, tasks []*iTask, workers int) {
	for i := range cs.rules {
		for _, a := range cs.rules[i].atoms {
			if a.idx != nil {
				db.keyBuf = a.idx.extend(a.rel, db.keyBuf)
			}
		}
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		if db.ws == nil {
			db.ws = &iWorkspace{}
		}
		for _, t := range tasks {
			db.evalTask(t, db.ws)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := &iWorkspace{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				db.evalTask(tasks[i], ws)
			}
		}()
	}
	wg.Wait()
}

// evalTask joins the rule body left to right over flat integer binding
// rows and appends the instantiated head tuples to the task's buffer.
// It reads only column extents frozen at the round start and writes
// only task-local state, so tasks run concurrently without locks.
func (db *Database) evalTask(t *iTask, ws *iWorkspace) {
	cr := t.rule
	stride := cr.numSlots
	cur, next := ws.cur[:0], ws.next[:0]
	// Seed one binding row; its slots are write-before-read (the
	// compiler orders opSetSlot ahead of every read of a slot), so the
	// scratch needs no zeroing.
	if cap(cur) < stride {
		cur = make([]uint32, stride)
	} else {
		cur = cur[:stride]
	}
	nRows := 1
	for ai := range cr.atoms {
		a := &cr.atoms[ai]
		next = next[:0]
		nextRows := 0
		switch {
		case a.negated:
			for r := 0; r < nRows; r++ {
				row := cur[r*stride : (r+1)*stride]
				if !negHoldsInterned(a, row, ws, &t.probes) {
					next = append(next, row...)
					nextRows++
				}
			}
		case ai == t.deltaPos:
			t.probes += int64(t.dHi-t.dLo) * int64(nRows)
			for r := 0; r < nRows; r++ {
				row := cur[r*stride : (r+1)*stride]
				for ri := t.dLo; ri < t.dHi; ri++ {
					var ok bool
					next, ok = applyOps(a.rel.cols, ri, a.scanOps, row, next)
					if ok {
						nextRows++
					}
				}
			}
		case a.rel == nil || a.rel.rows == 0:
			// Empty relation: no probes, no bindings survive.
		case len(a.keyPos) == 0:
			rows := a.rel.rows
			t.probes += int64(rows) * int64(nRows)
			for r := 0; r < nRows; r++ {
				row := cur[r*stride : (r+1)*stride]
				for ri := 0; ri < rows; ri++ {
					var ok bool
					next, ok = applyOps(a.rel.cols, ri, a.scanOps, row, next)
					if ok {
						nextRows++
					}
				}
			}
		default:
			for r := 0; r < nRows; r++ {
				row := cur[r*stride : (r+1)*stride]
				ws.key = buildKey(ws.key[:0], a.keyParts, row)
				bucket := a.idx.m[string(ws.key)]
				t.probes += int64(len(bucket))
				for _, ri := range bucket {
					var ok bool
					next, ok = applyOps(a.rel.cols, int(ri), a.probeOps, row, next)
					if ok {
						nextRows++
					}
				}
			}
		}
		cur, next = next, cur
		nRows = nextRows
		if nRows == 0 {
			break
		}
	}
	for r := 0; r < nRows; r++ {
		row := cur[r*stride : (r+1)*stride]
		for _, p := range cr.headParts {
			v := p.val
			if p.slot {
				v = row[v]
			}
			t.derived = append(t.derived, v)
		}
		t.derivedCount++
	}
	ws.cur, ws.next = cur, next
}

// applyOps extends next with a copy of row updated by matching columns
// at row index ri against the ops; it reports whether the row matched.
// Set-then-check ordering inside the op list makes repeated variables
// within an atom compare correctly.
func applyOps(cols [][]uint32, ri int, ops []iOp, row, next []uint32) ([]uint32, bool) {
	base := len(next)
	next = append(next, row...)
	nrow := next[base:]
	for _, op := range ops {
		v := cols[op.pos][ri]
		switch op.kind {
		case opCheckConst:
			if v != op.val {
				return next[:base], false
			}
		case opCheckSlot:
			if v != nrow[op.val] {
				return next[:base], false
			}
		default: // opSetSlot
			nrow[op.val] = v
		}
	}
	return next, true
}

// buildKey packs the probe-key values (constants and bound slots) for
// an index lookup.
func buildKey(buf []byte, parts []keyPart, row []uint32) []byte {
	for _, p := range parts {
		v := p.val
		if p.slot {
			v = row[v]
		}
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// negHoldsInterned reports whether any fact matches the negated atom
// under the binding row, counting one probe per candidate examined —
// the same early-exit convention as the string engine's negHolds.
func negHoldsInterned(a *cAtom, row []uint32, ws *iWorkspace, probes *int64) bool {
	if a.rel == nil || a.rel.rows == 0 {
		return false
	}
	if len(a.keyPos) == 0 {
		// All-wildcard (or zero-arity) negation: any fact matches.
		rows := a.rel.rows
		for ri := 0; ri < rows; ri++ {
			*probes++
			if matchOps(a.rel.cols, ri, a.scanOps, row) {
				return true
			}
		}
		return false
	}
	ws.key = buildKey(ws.key[:0], a.keyParts, row)
	for _, ri := range a.idx.m[string(ws.key)] {
		*probes++
		if matchOps(a.rel.cols, int(ri), a.probeOps, row) {
			return true
		}
	}
	return false
}

// matchOps is applyOps without binding output — negated atoms never
// bind, so their op lists contain only checks.
func matchOps(cols [][]uint32, ri int, ops []iOp, row []uint32) bool {
	for _, op := range ops {
		v := cols[op.pos][ri]
		switch op.kind {
		case opCheckConst:
			if v != op.val {
				return false
			}
		case opCheckSlot:
			if v != row[op.val] {
				return false
			}
		}
	}
	return true
}
