package datalog

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"provmark/internal/graph"
)

// TestStratifiedNegationOverDerived: negating a derived predicate from
// a lower stratum is sound (the stratum finalizes first) and was
// rejected outright by the naive engine — the headline semantic win of
// the stratified rewrite.
func TestStratifiedNegationOverDerived(t *testing.T) {
	db := negSample(t)
	rules, err := ParseRules(`
used(P) :- edge(_, P, _, "Used").
proc(P) :- node(P, "Process").
idle(P) :- proc(P), not used(P).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RunNaive(rules); err == nil {
		t.Fatal("naive reference unexpectedly accepts negation of a derived predicate")
	}
	db = negSample(t)
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	res := db.Query(Atom{Pred: "idle", Terms: []Term{V("P")}})
	if len(res) != 1 || res[0]["P"] != "n2" {
		t.Errorf("idle = %v, want [n2]", res)
	}
}

// TestStratumOrdering: a three-stratum chain (base -> derived ->
// negation of derived -> negation of that) evaluates bottom-up.
func TestStratumOrdering(t *testing.T) {
	db := NewDatabase()
	for _, x := range []string{"a", "b", "c"} {
		db.Assert(Fact{Pred: "item", Args: []string{x}})
	}
	db.Assert(Fact{Pred: "flagged", Args: []string{"a"}})
	rules, err := ParseRules(`
bad(X) :- item(X), flagged(X).
good(X) :- item(X), not bad(X).
allgood(X) :- good(X), not bad(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Facts("good")); got != 2 {
		t.Errorf("good facts = %d, want 2", got)
	}
	if got := len(db.Facts("allgood")); got != 2 {
		t.Errorf("allgood facts = %d, want 2", got)
	}
	if db.Stats().Strata < 2 {
		t.Errorf("strata = %d, want >= 2", db.Stats().Strata)
	}
}

// TestSafetyRejections is the table test over the static safety
// checks: checkNegBound range restriction, unstratified negation, and
// malformed heads. Both engines must reject each program (the naive
// reference may reject a superset, e.g. stratified-but-derived
// negation).
func TestSafetyRejections(t *testing.T) {
	cases := []struct {
		name    string
		program string
		wantErr string
	}{
		{
			name:    "unbound variable under negation",
			program: `bad(X) :- not node(X, "Process").`,
			wantErr: "under negation",
		},
		{
			name: "unbound negation after unrelated atom",
			program: `bad(X) :- node(X, _), not prop(Y, "k", "v").
`,
			wantErr: "under negation",
		},
		{
			name: "negation bound only by later atom",
			program: `bad(X) :- not prop(X, "k", "v"), node(X, _).
`,
			wantErr: "under negation",
		},
		{
			name: "mutual recursion through negation",
			program: `p(X) :- node(X, _), not q(X).
q(X) :- node(X, _), not p(X).
`,
			wantErr: "unstratified",
		},
		{
			name: "self recursion through negation",
			program: `p(X) :- node(X, _), not p(X).
`,
			wantErr: "unstratified",
		},
		{
			name: "recursion through negation via a cycle",
			program: `p(X) :- q(X).
q(X) :- node(X, _), not p(X).
`,
			wantErr: "unstratified",
		},
		{
			name:    "wildcard in head",
			program: `h(_) :- node(X, _).`,
			wantErr: "wildcard in rule head",
		},
		{
			name:    "unbound head variable",
			program: `h(Y) :- node(X, _).`,
			wantErr: "unbound head variable",
		},
		{
			name:    "head variable bound only under negation",
			program: `h(Y) :- node(X, _), not prop(X, Y, _).`,
			wantErr: "under negation",
		},
		{
			name:    "negated head",
			program: `not h(X) :- node(X, _).`,
			wantErr: "negated rule head",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules, err := ParseRules(tc.program)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			db := negSample(t)
			err = db.Run(rules)
			if err == nil {
				t.Fatalf("Run accepted %q", tc.program)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Run error = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

// TestStaticSafetyWithoutFacts: the rewritten engine rejects unsafe
// rules even when no facts would reach them at run time (the naive
// engine only tripped over unbound negation dynamically).
func TestStaticSafetyWithoutFacts(t *testing.T) {
	db := NewDatabase() // empty: the naive engine would accept these
	for _, program := range []string{
		`h(Y) :- b(X).`,
		`h(_) :- b(X).`,
		`bad(X) :- b(X), not c(Y).`,
	} {
		rules, err := ParseRules(program)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Run(rules); err == nil {
			t.Errorf("Run accepted unsafe %q on empty database", program)
		}
	}
}

// ancestryGraph builds `chains` parallel chains of `length` edges each
// — chains*length e-facts in total.
func ancestryGraph(t testing.TB, chains, length int) *graph.Graph {
	g := graph.New()
	for c := 0; c < chains; c++ {
		prev := g.AddNode("N", nil)
		for i := 0; i < length; i++ {
			next := g.AddNode("N", nil)
			if _, err := g.AddEdge(prev, next, "E", nil); err != nil {
				t.Fatal(err)
			}
			prev = next
		}
	}
	return g
}

var ancestryRules = `
anc(X, Y) :- edge(_, X, Y, _).
anc(X, Z) :- anc(X, Y), edge(_, Y, Z, _).
`

// runAncestry loads the graph, runs the transitive-closure program
// under eval, and returns the database.
func runAncestry(t testing.TB, g *graph.Graph, eval func(*Database, []Rule) error) *Database {
	rules, err := ParseRules(ancestryRules)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.LoadGraph(g)
	if err := eval(db, rules); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAncestryProbeReduction: counter-instrumented proof of the
// asymptotic win. On a 2000-e-fact graph the semi-naive engine must
// issue at least 10x fewer join probes than the frozen naive reference
// while deriving the identical ancestry relation. (The 2000 edges are
// split across parallel chains to keep the naive reference's
// super-quadratic run affordable in a unit test; BenchmarkDatalogAncestry
// measures the same program at deeper recursion.)
func TestAncestryProbeReduction(t *testing.T) {
	chains, length := 400, 5
	if testing.Short() || raceDetector {
		chains = 40
	}
	g := ancestryGraph(t, chains, length)
	semi := runAncestry(t, g, (*Database).Run)
	naive := runAncestry(t, g, (*Database).RunNaive)
	if got, want := dumpFacts(semi), dumpFacts(naive); got != want {
		t.Fatalf("engines disagree on derived facts:\nsemi-naive:\n%s\nnaive:\n%s", got, want)
	}
	sp, np := semi.Stats().JoinProbes, naive.Stats().JoinProbes
	t.Logf("join probes on %d edges: semi-naive=%d naive=%d (%.1fx)", chains*length, sp, np, float64(np)/float64(sp))
	if sp == 0 || np < 10*sp {
		t.Errorf("semi-naive probes = %d, naive probes = %d; want >= 10x reduction", sp, np)
	}
}

// dumpFacts renders every derived and base fact of the database,
// sorted, one per line — the byte-comparable evaluation transcript the
// differential tests diff.
func dumpFacts(db *Database) string {
	var lines []string
	for _, pred := range db.Predicates() {
		for _, f := range db.stringFacts(pred) {
			lines = append(lines, f.String())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// TestIndexExtension: indexes built before new facts arrive must see
// facts asserted afterwards (they extend lazily on the next probe).
func TestIndexExtension(t *testing.T) {
	db := NewDatabase()
	db.Assert(Fact{Pred: "e", Args: []string{"a", "b"}})
	// Force an index on position 0 via a query with a bound first arg.
	if n := len(db.Query(Atom{Pred: "e", Terms: []Term{C("a"), V("X")}})); n != 1 {
		t.Fatalf("initial probe = %d matches", n)
	}
	db.Assert(Fact{Pred: "e", Args: []string{"a", "c"}})
	if n := len(db.Query(Atom{Pred: "e", Terms: []Term{C("a"), V("X")}})); n != 2 {
		t.Errorf("post-assert probe = %d matches, want 2 (stale index)", n)
	}
}

// TestArityMismatchIndexing: facts of the same predicate with
// different arities must neither crash index building nor unify.
func TestArityMismatchIndexing(t *testing.T) {
	db := NewDatabase()
	db.Assert(Fact{Pred: "p", Args: []string{"a"}})
	db.Assert(Fact{Pred: "p", Args: []string{"a", "b"}})
	res := db.Query(Atom{Pred: "p", Terms: []Term{C("a"), V("X")}})
	if len(res) != 1 || res[0]["X"] != "b" {
		t.Errorf("query = %v, want [{X:b}]", res)
	}
}

// TestFactRules: body-less rules assert their ground head once.
func TestFactRules(t *testing.T) {
	db := NewDatabase()
	rules, err := ParseRules(`
seed("a").
seed("b").
copy(X) :- seed(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	if got := len(db.Facts("copy")); got != 2 {
		t.Errorf("copy facts = %d, want 2", got)
	}
}

// TestDerivedStatsCount: Stats().Derived counts newly asserted facts.
func TestDerivedStatsCount(t *testing.T) {
	db := NewDatabase()
	db.Assert(Fact{Pred: "b", Args: []string{"x"}})
	rules, err := ParseRules(`d(X) :- b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Run(rules); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Derived; got != 1 {
		t.Errorf("derived = %d, want 1", got)
	}
}

func ExampleDatabase_Run() {
	db := NewDatabase()
	db.Assert(Fact{Pred: "edge", Args: []string{"e1", "a", "b", "E"}})
	db.Assert(Fact{Pred: "edge", Args: []string{"e2", "b", "c", "E"}})
	rules, _ := ParseRules(`
reach(X, Y) :- edge(_, X, Y, _).
reach(X, Z) :- reach(X, Y), edge(_, Y, Z, _).
`)
	_ = db.Run(rules)
	for _, m := range db.Query(Atom{Pred: "reach", Terms: []Term{C("a"), V("Y")}}) {
		fmt.Println(m["Y"])
	}
	// Output:
	// b
	// c
}
