package provmark

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"provmark/internal/wire"
)

// IndexWriter collects per-benchmark HTML reports during a batch run
// and writes an index page linking them — the equivalent of the
// paper's finalResult/index.html produced by runTests.sh.
type IndexWriter struct {
	dir     string
	tool    string
	entries []indexEntry
}

type indexEntry struct {
	benchmark string
	file      string
	summary   string
	empty     bool
}

// NewIndexWriter prepares an output directory for a batch report.
func NewIndexWriter(dir, tool string) (*IndexWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("provmark: index: %w", err)
	}
	return &IndexWriter{dir: dir, tool: tool}, nil
}

// Add writes one benchmark's HTML page and records it for the index.
func (w *IndexWriter) Add(res *Result) error {
	return w.AddWire(ToWire(res))
}

// AddWire is Add for a result already in wire form (e.g. a decoded
// provmarkd stream cell): both the page and the index row render from
// the wire encoding.
func (w *IndexWriter) AddWire(res *wire.Result) error {
	file := fmt.Sprintf("%s_%s.html", w.tool, res.Benchmark)
	page := RenderWire(res, HTMLPage)
	if err := os.WriteFile(filepath.Join(w.dir, file), []byte(page), 0o644); err != nil {
		return fmt.Errorf("provmark: index: %w", err)
	}
	summary := "empty (" + res.Reason + ")"
	if !res.Empty {
		summary = res.Target.Summary()
	}
	w.entries = append(w.entries, indexEntry{
		benchmark: res.Benchmark,
		file:      file,
		summary:   summary,
		empty:     res.Empty,
	})
	return nil
}

// Flush writes index.html and returns its path.
func (w *IndexWriter) Flush() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>ProvMark results: %s</title></head><body>\n", htmlEscape(w.tool))
	fmt.Fprintf(&b, "<h1>ProvMark benchmark results — %s</h1>\n", htmlEscape(w.tool))
	b.WriteString("<table border=\"1\"><tr><th>benchmark</th><th>result</th></tr>\n")
	for _, e := range w.entries {
		fmt.Fprintf(&b, "<tr><td><a href=%q>%s</a></td><td>%s</td></tr>\n",
			e.file, htmlEscape(e.benchmark), htmlEscape(e.summary))
	}
	b.WriteString("</table></body></html>\n")
	path := filepath.Join(w.dir, "index.html")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", fmt.Errorf("provmark: index: %w", err)
	}
	return path, nil
}
