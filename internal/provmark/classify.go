package provmark

import (
	"sort"
	"sync"

	"provmark/internal/graph"
	"provmark/internal/match"
)

// Classifier is the fingerprint-indexed similarity classification
// engine behind SimilarityClasses. Instead of testing every trial
// against every class representative with the full matcher, it hashes
// trials into buckets by their memoized shape fingerprint and runs the
// confirming matcher only on within-bucket collisions (fingerprint
// equality is a necessary condition for similarity, never a
// certificate). Confirmed verdicts land in a pairwise cache keyed by
// graph identity, so a classifier that sees the same trial graphs
// again — regression flows re-checking a stored corpus, repeated
// experiments over one recording — answers from cache instead of
// re-confirming. Fresh recordings produce fresh graphs and always
// confirm anew; the cache is size-bounded so a long-lived classifier
// (the bench suite holds one for its lifetime) cannot grow without
// limit.
//
// A Classifier is safe for concurrent use; buckets of one Classes call
// are themselves classified over a bounded worker pool.
type Classifier struct {
	mu       sync.Mutex
	verdicts map[graphPair]bool
	stats    ClassifierStats
}

// maxVerdictEntries bounds the verdict cache. Identity-keyed entries
// are only useful while their graphs are re-classified, so once the
// cache fills — after many runs over fresh recordings — it is simply
// reset rather than evicted entry-by-entry.
const maxVerdictEntries = 1 << 16

type graphPair struct{ a, b *graph.Graph }

// ClassifierStats counts the engine's work for instrumentation.
type ClassifierStats struct {
	// Graphs is how many trial graphs have been bucketed.
	Graphs uint64
	// Confirms is how many matcher confirmations actually ran.
	Confirms uint64
	// CacheHits is how many pairwise verdicts were served from cache.
	CacheHits uint64
}

// NewClassifier returns an empty classification engine.
func NewClassifier() *Classifier {
	return &Classifier{verdicts: make(map[graphPair]bool)}
}

// Stats snapshots the engine's instrumentation counters.
func (c *Classifier) Stats() ClassifierStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Classes partitions trials into similarity classes and returns the
// member indices of each class, classes ordered by first member and
// members ascending — the same deterministic shape the linear-scan
// implementation produced. parallelism bounds the worker pool used to
// classify fingerprint buckets concurrently; values <= 1 run
// sequentially.
func (c *Classifier) Classes(trials []*graph.Graph, parallelism int) [][]int {
	// Bucket by fingerprint. Fingerprints are memoized on the graphs,
	// so this pass computes each trial's canonical refinement at most
	// once — and warms the WL-colour cache the confirming matchers
	// read, making the parallel phase below read-only on the graphs.
	var order []string
	buckets := make(map[string][]int, len(trials))
	for i, g := range trials {
		fp := g.Fingerprint()
		if _, seen := buckets[fp]; !seen {
			order = append(order, fp)
		}
		buckets[fp] = append(buckets[fp], i)
	}
	c.mu.Lock()
	c.stats.Graphs += uint64(len(trials))
	c.mu.Unlock()

	// Classify each bucket independently: a linear scan against class
	// representatives, confirming with the cached pairwise matcher.
	perBucket := make([][][]int, len(order))
	classifyBucket := func(bi int) {
		members := buckets[order[bi]]
		var classes [][]int
		for _, i := range members {
			placed := false
			for ci, cl := range classes {
				if c.similar(trials[cl[0]], trials[i]) {
					classes[ci] = append(classes[ci], i)
					placed = true
					break
				}
			}
			if !placed {
				classes = append(classes, []int{i})
			}
		}
		perBucket[bi] = classes
	}

	if workers := boundWorkers(parallelism, len(order)); workers > 1 {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for bi := range next {
					classifyBucket(bi)
				}
			}()
		}
		for bi := range order {
			next <- bi
		}
		close(next)
		wg.Wait()
	} else {
		for bi := range order {
			classifyBucket(bi)
		}
	}

	var classes [][]int
	for _, bc := range perBucket {
		classes = append(classes, bc...)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return classes
}

// boundWorkers clamps a parallelism setting to the available work.
func boundWorkers(parallelism, tasks int) int {
	if parallelism < 1 {
		parallelism = 1
	}
	if parallelism > tasks {
		parallelism = tasks
	}
	return parallelism
}

// similar answers one pairwise similarity query through the verdict
// cache, confirming cache misses with match.Similar. Concurrent misses
// on the same pair may both confirm; they reach the same verdict, so
// the race is benign.
func (c *Classifier) similar(a, b *graph.Graph) bool {
	c.mu.Lock()
	if v, hit := c.verdicts[graphPair{a, b}]; hit {
		c.stats.CacheHits++
		c.mu.Unlock()
		return v
	}
	c.mu.Unlock()

	_, ok := match.Similar(a, b)

	c.mu.Lock()
	if len(c.verdicts) >= maxVerdictEntries {
		c.verdicts = make(map[graphPair]bool)
	}
	c.verdicts[graphPair{a, b}] = ok
	c.verdicts[graphPair{b, a}] = ok
	c.stats.Confirms++
	c.mu.Unlock()
	return ok
}
