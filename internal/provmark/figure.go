package provmark

import (
	"fmt"
	"strings"

	"provmark/internal/wire"
)

// RenderFigureDOT renders a benchmark result graph in the styling of
// the paper's figures: blue rectangles for processes/activities,
// yellow ovals for artifacts/entities and other resources, and green
// (dummy) ovals for pre-existing graph parts retained by the
// comparison stage. The output is self-contained Graphviz DOT suitable
// for dot -Tsvg.
func RenderFigureDOT(res *Result) string {
	return RenderFigureDOTWire(ToWire(res))
}

// RenderFigureDOTWire is RenderFigureDOT for a result already in wire
// form (e.g. a decoded provmarkd stream cell).
func RenderFigureDOTWire(w *wire.Result) string {
	var b strings.Builder
	name := sanitize(w.Tool + "_" + w.Benchmark)
	fmt.Fprintf(&b, "digraph %s {\n", name)
	fmt.Fprintf(&b, "  graph [rankdir=\"TB\" label=%q];\n", w.Tool+": "+w.Benchmark)
	fmt.Fprintf(&b, "  node [style=\"filled\"];\n")
	if w.Empty {
		fmt.Fprintf(&b, "  \"empty\" [label=%q shape=\"plaintext\" style=\"\"];\n", "empty: "+w.Reason)
		b.WriteString("}\n")
		return b.String()
	}
	if w.Target != nil {
		for _, n := range w.Target.Nodes {
			shape, color := styleFor(n)
			fmt.Fprintf(&b, "  %q [label=%q shape=%q fillcolor=%q];\n",
				n.ID, nodeCaption(n), shape, color)
		}
		for _, e := range w.Target.Edges {
			caption := e.Label
			if op := e.Props["operation"]; op != "" {
				caption += "\n" + op
			} else if op := e.Props["cf:type"]; op != "" {
				caption += "\n" + op
			}
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.Src, e.Tgt, caption)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// styleFor maps the three tools' vocabularies onto the paper's visual
// language.
func styleFor(n wire.Node) (shape, color string) {
	switch n.Label {
	case "Process", "activity", "SyscallEvent":
		return "box", "lightblue"
	case "dummy":
		return "ellipse", "palegreen"
	case "agent":
		return "house", "lightgrey"
	default: // Artifact, entity, Global, Local, Version, ...
		return "ellipse", "lightyellow"
	}
}

// nodeCaption picks the most informative identity line per node kind.
func nodeCaption(n wire.Node) string {
	parts := []string{n.Label}
	for _, key := range []string{"path", "cf:pathname", "name", "pid", "cf:pid", "call", "fd", "of", "prov:type", "stands_for"} {
		if v, ok := n.Props[key]; ok {
			parts = append(parts, key+": "+v)
		}
	}
	if len(parts) > 3 {
		parts = parts[:3]
	}
	return strings.Join(parts, "\n")
}

func sanitize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "g"
	}
	return string(out)
}

// TimingLogLine renders one /tmp/time.log record in the format the
// paper's appendix documents (A.6.4): tool, syscall, then the four
// per-subsystem durations in seconds as floating-point numbers, comma
// separated. (Classification is a sub-stage of generalization and is
// already contained in the third figure.)
func TimingLogLine(res *Result) string {
	return TimingLogLineWire(ToWire(res))
}

// TimingLogLineWire is TimingLogLine for a result in wire form.
func TimingLogLineWire(w *wire.Result) string {
	t := w.Times
	const nsPerSec = 1e9
	return fmt.Sprintf("%s,%s,%.6f,%.6f,%.6f,%.6f",
		w.Tool, w.Benchmark,
		float64(t.RecordingNS)/nsPerSec,
		float64(t.TransformationNS)/nsPerSec,
		float64(t.GeneralizationNS)/nsPerSec,
		float64(t.ComparisonNS)/nsPerSec)
}
