package provmark

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"provmark/internal/datalog"
	"provmark/internal/graph"
	"provmark/internal/match"
)

// Store persists benchmark result graphs as Datalog files for
// regression testing (the Charlie use case): each (tool, benchmark)
// pair maps to one file; comparing a new run against the stored graph
// uses the same isomorphism machinery as the pipeline itself.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) a regression store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("provmark: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// ErrNoBaseline is returned by Check when no stored graph exists yet.
var ErrNoBaseline = errors.New("provmark: no stored baseline")

func (s *Store) path(tool, benchmark string) string {
	return filepath.Join(s.dir, tool+"__"+benchmark+".dl")
}

// Save stores a benchmark result graph as the baseline, normalizing
// identifiers so future comparisons are insensitive to allocation order.
func (s *Store) Save(tool, benchmark string, g *graph.Graph) error {
	norm := datalog.Normalize(g)
	text := datalog.Print(norm, "base")
	if err := os.WriteFile(s.path(tool, benchmark), []byte(text), 0o644); err != nil {
		return fmt.Errorf("provmark: store save: %w", err)
	}
	return nil
}

// Load retrieves the stored baseline graph.
func (s *Store) Load(tool, benchmark string) (*graph.Graph, error) {
	data, err := os.ReadFile(s.path(tool, benchmark))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoBaseline
		}
		return nil, fmt.Errorf("provmark: store load: %w", err)
	}
	g, _, err := datalog.ParseString(string(data))
	if err != nil {
		return nil, fmt.Errorf("provmark: store load: %w", err)
	}
	return g, nil
}

// Diff describes how a new benchmark graph deviates from the baseline.
type Diff struct {
	Changed bool
	Detail  string
}

// Check compares a fresh benchmark graph against the stored baseline
// using graph similarity (structure and labels): a structural change is
// a regression candidate.
func (s *Store) Check(tool, benchmark string, fresh *graph.Graph) (Diff, error) {
	base, err := s.Load(tool, benchmark)
	if err != nil {
		return Diff{}, err
	}
	if _, ok := match.Similar(base, fresh); ok {
		return Diff{}, nil
	}
	return Diff{
		Changed: true,
		Detail: fmt.Sprintf("baseline %s vs current %s",
			graph.Summarize(base), graph.Summarize(fresh)),
	}, nil
}

// Entries lists the (tool, benchmark) pairs with stored baselines.
func (s *Store) Entries() ([][2]string, error) {
	files, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("provmark: store list: %w", err)
	}
	var out [][2]string
	for _, f := range files {
		name := strings.TrimSuffix(f.Name(), ".dl")
		parts := strings.SplitN(name, "__", 2)
		if len(parts) == 2 {
			out = append(out, [2]string{parts[0], parts[1]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, nil
}
