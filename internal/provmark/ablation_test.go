package provmark_test

import (
	"errors"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture/camflow"
	"provmark/internal/provmark"
)

// jitteryCamflow returns a CamFlow recorder whose every other trial
// carries extra relay structure, so trials split into a small class and
// a large class — the setting in which the Section 3.4 pair-selection
// remarks apply.
func jitteryCamflow() *camflow.Recorder {
	cfg := camflow.DefaultConfig()
	cfg.JitterPeriod = 2
	cfg.FilterGraphs = false
	return camflow.New(cfg)
}

// TestPairSelectionDefaultSucceeds: smallest/smallest (the paper's
// choice) produces a clean benchmark.
func TestPairSelectionDefaultSucceeds(t *testing.T) {
	prog, _ := benchprog.ByName("open")
	res, err := provmark.NewRunner(jitteryCamflow(), provmark.Config{Trials: 6}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Fatalf("open empty under camflow: %s", res.Reason)
	}
	for _, n := range res.Target.Nodes() {
		if n.Props["prov:type"] == "boot" {
			t.Error("jitter structure leaked into the default result")
		}
	}
}

// TestPairSelectionLargestBothSucceeds: "picking the two largest graphs
// also seems to work" (Section 3.4) — both variants pick the jittered
// class, and the extra structure cancels in the comparison.
func TestPairSelectionLargestBothSucceeds(t *testing.T) {
	prog, _ := benchprog.ByName("open")
	cfg := provmark.Config{Trials: 6, BGPair: provmark.Largest, FGPair: provmark.Largest}
	res, err := provmark.NewRunner(jitteryCamflow(), cfg).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Fatalf("open empty with largest/largest: %s", res.Reason)
	}
}

// TestPairSelectionMaxBgMinFgFails: "picking the largest background
// graph and the smallest foreground graph leads to failure if the extra
// background structure is not found in the foreground" (Section 3.4).
func TestPairSelectionMaxBgMinFgFails(t *testing.T) {
	prog, _ := benchprog.ByName("open")
	cfg := provmark.Config{Trials: 6, BGPair: provmark.Largest, FGPair: provmark.Smallest}
	res, err := provmark.NewRunner(jitteryCamflow(), cfg).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty || res.Reason != provmark.ReasonNotEmbeddable {
		t.Errorf("want not-embeddable failure, got empty=%v reason=%q", res.Empty, res.Reason)
	}
}

// TestPairSelectionMinBgMaxFgLeaksStructure: "making the opposite
// choice leads to extra structure being found in the difference"
// (Section 3.4) — the jitter boot entity shows up in the result.
func TestPairSelectionMinBgMaxFgLeaksStructure(t *testing.T) {
	prog, _ := benchprog.ByName("open")
	cfg := provmark.Config{Trials: 6, BGPair: provmark.Smallest, FGPair: provmark.Largest}
	res, err := provmark.NewRunner(jitteryCamflow(), cfg).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Fatalf("unexpected empty result: %s", res.Reason)
	}
	leaked := false
	for _, n := range res.Target.Nodes() {
		if n.Props["prov:type"] == "boot" {
			leaked = true
		}
	}
	if !leaked {
		t.Error("expected the jitter boot entity to leak into the result")
	}
}

// TestFilterGraphsDropsCorruptTrials: failure injection — every other
// trial loses its machine agent; with filtering on the pipeline works,
// with filtering off the corrupt trials form their own class and can
// poison pair selection.
func TestFilterGraphsDropsCorruptTrials(t *testing.T) {
	cfg := camflow.DefaultConfig()
	cfg.JitterPeriod = 0
	cfg.CorruptPeriod = 2
	cfg.FilterGraphs = true
	prog, _ := benchprog.ByName("rename")
	res, err := provmark.NewRunner(camflow.New(cfg), provmark.Config{Trials: 6}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Fatalf("rename empty with filtering: %s", res.Reason)
	}
	// The generalized graphs must contain the machine agent: only
	// complete trials were used.
	hasAgent := false
	for _, n := range res.FG.Nodes() {
		if n.Label == "agent" {
			hasAgent = true
		}
	}
	if !hasAgent {
		t.Error("filtered pipeline used a corrupt (machine-less) trial")
	}

	// Filtering off: the corrupt class (smaller: it lost a node) wins
	// smallest-pair selection, demonstrating why filtering exists.
	off := false
	res2, err := provmark.NewRunner(camflow.New(cfg), provmark.Config{
		Trials:       6,
		FilterGraphs: &off,
	}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	hasAgent2 := false
	for _, n := range res2.FG.Nodes() {
		if n.Label == "agent" {
			hasAgent2 = true
		}
	}
	if hasAgent2 {
		t.Error("without filtering, the smaller corrupt class should win pair selection")
	}
}

// TestAllTrialsCorruptFails: when every trial is corrupt and filtering
// is on, recording must fail loudly rather than produce a result.
func TestAllTrialsCorruptFails(t *testing.T) {
	cfg := camflow.DefaultConfig()
	cfg.JitterPeriod = 0
	cfg.CorruptPeriod = 1 // every trial
	prog, _ := benchprog.ByName("open")
	_, err := provmark.NewRunner(camflow.New(cfg), provmark.Config{Trials: 3}).Run(prog)
	if !errors.Is(err, provmark.ErrInconsistentTrials) {
		t.Errorf("want ErrInconsistentTrials, got %v", err)
	}
}
