package provmark_test

import (
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture/spade"
	"provmark/internal/graph"
	"provmark/internal/match"
	"provmark/internal/provmark"
)

// TestParallelRecordingMatchesSequential: recording trials concurrently
// must yield the same benchmark result as sequential recording (each
// trial runs in its own kernel, so trial index fully determines the
// output). Run with -race to check recorder thread safety.
func TestParallelRecordingMatchesSequential(t *testing.T) {
	prog, _ := benchprog.ByName("rename")
	seq, err := provmark.NewRunner(spade.New(spade.DefaultConfig()), provmark.Config{Trials: 4}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	par, err := provmark.NewRunner(spade.New(spade.DefaultConfig()), provmark.Config{
		Trials:   4,
		Parallel: true,
	}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Empty != par.Empty {
		t.Fatalf("empty mismatch: seq=%v par=%v", seq.Empty, par.Empty)
	}
	if !seq.Empty {
		if _, ok := match.Similar(seq.Target, par.Target); !ok {
			t.Errorf("parallel target differs: %s vs %s",
				graph.Summarize(seq.Target), graph.Summarize(par.Target))
		}
	}
}

func TestParallelAcrossAllTools(t *testing.T) {
	for tool, rec := range fastRecorders() {
		prog, _ := benchprog.ByName("open")
		res, err := provmark.NewRunner(rec, provmark.Config{Parallel: true}).Run(prog)
		if err != nil {
			t.Errorf("%s: %v", tool, err)
			continue
		}
		if res.Empty {
			t.Errorf("%s: open empty under parallel recording", tool)
		}
	}
}
