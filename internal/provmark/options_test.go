package provmark_test

import (
	"context"
	"sync"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
	"provmark/internal/match"
	"provmark/internal/provmark"
)

// TestOptionsMatchLegacyConfig: a runner built from functional options
// produces the same result as the legacy Config struct path.
func TestOptionsMatchLegacyConfig(t *testing.T) {
	prog, _ := benchprog.ByName("rename")
	legacy, err := provmark.NewRunner(fastRecorders()["spade"], provmark.Config{Trials: 3}).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := provmark.New(fastRecorders()["spade"],
		provmark.WithTrials(3),
		provmark.WithParallelism(2),
	).RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Empty != opt.Empty || legacy.Trials != opt.Trials {
		t.Fatalf("legacy=%+v options=%+v", legacy, opt)
	}
	if !legacy.Empty {
		if _, ok := match.Similar(legacy.Target, opt.Target); !ok {
			t.Errorf("targets differ: %s vs %s",
				graph.Summarize(legacy.Target), graph.Summarize(opt.Target))
		}
	}
}

// TestStageObserverSeesAllStages: one pipeline run emits exactly one
// event per stage, in order, with the run's identity on each event.
func TestStageObserverSeesAllStages(t *testing.T) {
	var mu sync.Mutex
	var events []provmark.StageEvent
	prog, _ := benchprog.ByName("open")
	runner := provmark.New(fastRecorders()["camflow"],
		provmark.WithStageObserver(func(ev provmark.StageEvent) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, ev)
		}),
	)
	res, err := runner.RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	// The classification sub-step reports once per variant (bg, fg)
	// inside the generalization stage; its durations are part of the
	// generalization total and are excluded from the duration check.
	want := []provmark.Stage{
		provmark.StageRecording,
		provmark.StageTransformation,
		provmark.StageClassification,
		provmark.StageClassification,
		provmark.StageGeneralization,
		provmark.StageComparison,
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(events), len(want), events)
	}
	var total int64
	for i, ev := range events {
		if ev.Stage != want[i] {
			t.Errorf("event %d stage = %v, want %v", i, ev.Stage, want[i])
		}
		if ev.Benchmark != "open" || ev.Tool != "camflow" {
			t.Errorf("event %d identity = %s/%s", i, ev.Tool, ev.Benchmark)
		}
		if ev.Err != nil {
			t.Errorf("event %d err = %v", i, ev.Err)
		}
		if !ev.Stage.Substage() {
			total += int64(ev.Duration)
		}
	}
	// Observer durations must account for the result's stage times.
	if total != int64(res.Times.Total()) {
		t.Errorf("observed total %d != result total %d", total, int64(res.Times.Total()))
	}
}

// TestStageObserverSeesFailure: a failing generalization reports the
// error on its stage event.
func TestStageObserverSeesFailure(t *testing.T) {
	var events []provmark.StageEvent
	// Trials=1 cannot form a consistent pair, so generalization fails.
	runner := provmark.New(fastRecorders()["spade"],
		provmark.WithTrials(1),
		provmark.WithStageObserver(func(ev provmark.StageEvent) {
			events = append(events, ev)
		}),
	)
	prog, _ := benchprog.ByName("open")
	if _, err := runner.RunContext(context.Background(), prog); err == nil {
		t.Fatal("single-trial run succeeded")
	}
	if len(events) == 0 {
		t.Fatal("no events observed")
	}
	last := events[len(events)-1]
	if last.Stage != provmark.StageGeneralization || last.Err == nil {
		t.Errorf("last event = %+v, want failed generalization", last)
	}
}

// TestStageObserversChain: installing two observers runs both.
func TestStageObserversChain(t *testing.T) {
	var first, second int
	runner := provmark.New(fastRecorders()["spade"],
		provmark.WithStageObserver(func(provmark.StageEvent) { first++ }),
		provmark.WithStageObserver(func(provmark.StageEvent) { second++ }),
	)
	prog, _ := benchprog.ByName("creat")
	if _, err := runner.RunContext(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	// Four paper stages plus the two classification sub-step events.
	if first != 6 || second != 6 {
		t.Errorf("observer calls = %d/%d, want 6/6", first, second)
	}
}

// TestWithPairExtremes: the option reaches the pair-selection logic
// (mirrors the ablation test's use of BGPair/FGPair).
func TestWithPairExtremes(t *testing.T) {
	prog, _ := benchprog.ByName("rename")
	res, err := provmark.New(fastRecorders()["camflow"],
		provmark.WithTrials(6),
		provmark.WithPairExtremes(provmark.Largest, provmark.Largest),
	).RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty {
		t.Error("rename empty under largest-pair selection")
	}
}

// TestBoundedParallelismMatchesSequential: a bounded worker pool yields
// the same benchmark result as sequential recording (trial index fully
// determines output). Run with -race to check pool safety.
func TestBoundedParallelismMatchesSequential(t *testing.T) {
	prog, _ := benchprog.ByName("rename")
	seq, err := provmark.New(fastRecorders()["spade"], provmark.WithTrials(6)).
		RunContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 6, 16} {
		par, err := provmark.New(fastRecorders()["spade"],
			provmark.WithTrials(6),
			provmark.WithParallelism(workers),
		).RunContext(context.Background(), prog)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if seq.Empty != par.Empty {
			t.Fatalf("workers=%d: empty mismatch", workers)
		}
		if !seq.Empty {
			if _, ok := match.Similar(seq.Target, par.Target); !ok {
				t.Errorf("workers=%d: target differs: %s vs %s", workers,
					graph.Summarize(seq.Target), graph.Summarize(par.Target))
			}
		}
	}
}
