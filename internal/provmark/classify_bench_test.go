package provmark_test

// Micro-benchmarks for the similarity classification engine, reporting
// ASP solver invocations per classification alongside wall-clock time
// so the speedup over the seed linear scan is directly measurable:
//
//	go test ./internal/provmark -bench SimilarityClasses -benchtime 10x
//
// "engine" is the fingerprint-bucketing classifier; "seed" replicates
// the pre-engine decision pattern (linear scan, every fingerprint
// collision confirmed by the ASP solver). Corpora vary trial count and
// symmetry: symmetric shapes (interchangeable star leaves) deny the
// engine its forced-mapping shortcut and force within-bucket solves.

import (
	"fmt"
	"math/rand"
	"testing"

	"provmark/internal/asp"
	"provmark/internal/graph"
	"provmark/internal/provmark"
)

// symCorpus builds trials of star graphs (hub plus interchangeable
// leaves): classes differ by leaf count, members are permuted copies.
func symCorpus(b *testing.B, trials, classes int, seed int64) []*graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, trials)
	for i := 0; i < trials; i++ {
		leaves := 3 + i%classes
		base := graph.New()
		hub := base.AddNode("hub", nil)
		for l := 0; l < leaves; l++ {
			leaf := base.AddNode("leaf", nil)
			if _, err := base.AddEdge(hub, leaf, "spoke", nil); err != nil {
				b.Fatal(err)
			}
		}
		out = append(out, permutedCopy(b, base, rng, fmt.Sprintf("t%d", i)))
	}
	return out
}

// asymCorpus builds permuted copies of distinct labelled chains (the
// classCorpus shape, parameterized).
func asymCorpus(b *testing.B, trials, classes int, seed int64) []*graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, trials)
	for i := 0; i < trials; i++ {
		shape := i % classes
		base := graph.New()
		var prev graph.ElemID
		for p := 0; p <= shape+2; p++ {
			id := base.AddNode(fmt.Sprintf("s%dp%d", shape, p), nil)
			if p > 0 {
				if _, err := base.AddEdge(prev, id, "next", nil); err != nil {
					b.Fatal(err)
				}
			}
			prev = id
		}
		out = append(out, permutedCopy(b, base, rng, fmt.Sprintf("t%d", i)))
	}
	return out
}

func benchClassify(b *testing.B, corpus []*graph.Graph, classify func([]*graph.Graph) [][]int) {
	b.Helper()
	startSolves := asp.SolveInvocations()
	startPrints := graph.FingerprintComputations()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if classes := classify(corpus); len(classes) == 0 {
			b.Fatal("empty classification")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(asp.SolveInvocations()-startSolves)/float64(b.N), "solves/op")
	b.ReportMetric(float64(graph.FingerprintComputations()-startPrints)/float64(b.N), "fingerprints/op")
}

// BenchmarkSimilarityClasses measures classification across trial
// counts and symmetry, engine vs seed path.
func BenchmarkSimilarityClasses(b *testing.B) {
	cases := []struct {
		name   string
		corpus func(*testing.B) []*graph.Graph
	}{
		{"asym/8x2", func(b *testing.B) []*graph.Graph { return asymCorpus(b, 8, 2, 1) }},
		{"asym/32x4", func(b *testing.B) []*graph.Graph { return asymCorpus(b, 32, 4, 2) }},
		{"sym/8x2", func(b *testing.B) []*graph.Graph { return symCorpus(b, 8, 2, 3) }},
		{"sym/32x4", func(b *testing.B) []*graph.Graph { return symCorpus(b, 32, 4, 4) }},
	}
	for _, tc := range cases {
		b.Run(tc.name+"/engine", func(b *testing.B) {
			benchClassify(b, tc.corpus(b), provmark.SimilarityClasses)
		})
		b.Run(tc.name+"/seed", func(b *testing.B) {
			benchClassify(b, tc.corpus(b), seedSimilarityClasses)
		})
	}
}

// BenchmarkClassifierSharedAcrossRuns measures the verdict cache: one
// engine classifying the same corpus repeatedly (the Matrix-run sharing
// pattern) against a fresh engine per call.
func BenchmarkClassifierSharedAcrossRuns(b *testing.B) {
	corpus := symCorpus(b, 32, 4, 5)
	b.Run("shared", func(b *testing.B) {
		c := provmark.NewClassifier()
		benchClassify(b, corpus, func(trials []*graph.Graph) [][]int {
			return c.Classes(trials, 1)
		})
	})
	b.Run("fresh", func(b *testing.B) {
		benchClassify(b, corpus, provmark.SimilarityClasses)
	})
}
