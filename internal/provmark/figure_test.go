package provmark

import (
	"strings"
	"testing"
	"time"

	"provmark/internal/graph"
)

func figureFixture() *Result {
	g := graph.New()
	p := g.AddNode("Process", graph.Properties{"pid": "42", "name": "bench"})
	a := g.AddNode("Artifact", graph.Properties{"path": "/stage/x"})
	d := g.AddNode("dummy", graph.Properties{"stands_for": "Process"})
	if _, err := g.AddEdge(p, a, "Used", graph.Properties{"operation": "open"}); err != nil {
		panic(err)
	}
	if _, err := g.AddEdge(a, d, "WasGeneratedBy", nil); err != nil {
		panic(err)
	}
	return &Result{Benchmark: "open", Tool: "spade", Target: g, FG: g, BG: graph.New()}
}

func TestRenderFigureDOTStyling(t *testing.T) {
	out := RenderFigureDOT(figureFixture())
	for _, want := range []string{
		"digraph spade_open",
		`shape="box" fillcolor="lightblue"`,       // process
		`shape="ellipse" fillcolor="lightyellow"`, // artifact
		`shape="ellipse" fillcolor="palegreen"`,   // dummy
		`label="Used\nopen"`,
		"path: /stage/x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
}

func TestRenderFigureDOTEmpty(t *testing.T) {
	res := &Result{Benchmark: "dup", Tool: "spade", Empty: true, Reason: ReasonNoNewStructure}
	out := RenderFigureDOT(res)
	if !strings.Contains(out, "empty:") {
		t.Errorf("empty figure:\n%s", out)
	}
}

func TestTimingLogLineFormat(t *testing.T) {
	res := figureFixture()
	res.Times = StageTimes{
		Recording:      1500 * time.Millisecond,
		Transformation: 250 * time.Millisecond,
		Generalization: 30 * time.Millisecond,
		Comparison:     4 * time.Millisecond,
	}
	line := TimingLogLine(res)
	if line != "spade,open,1.500000,0.250000,0.030000,0.004000" {
		t.Errorf("line = %q", line)
	}
}
