package provmark_test

import (
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/capture/camflow"
	"provmark/internal/capture/opus"
	"provmark/internal/capture/spade"
	"provmark/internal/neo4jsim"
	"provmark/internal/provmark"
)

// fastRecorders returns the three tools with storage costs tuned down
// for unit testing.
func fastRecorders() map[string]capture.Recorder {
	return map[string]capture.Recorder{
		"spade": spade.New(spade.DefaultConfig()),
		"opus": opus.New(opus.Config{
			DB: neo4jsim.Options{WarmupPages: 1, ScanRoundsPerRow: 1},
		}),
		"camflow": camflow.New(camflow.DefaultConfig()),
	}
}

func runBenchmark(t *testing.T, tool, benchName string) *provmark.Result {
	t.Helper()
	rec := fastRecorders()[tool]
	if rec == nil {
		t.Fatalf("unknown tool %q", tool)
	}
	prog, ok := benchprog.ByName(benchName)
	if !ok {
		t.Fatalf("unknown benchmark %q", benchName)
	}
	res, err := provmark.NewRunner(rec, provmark.Config{}).Run(prog)
	if err != nil {
		t.Fatalf("run %s under %s: %v", benchName, tool, err)
	}
	return res
}

func TestRenameRecordedByAllTools(t *testing.T) {
	for tool := range fastRecorders() {
		res := runBenchmark(t, tool, "rename")
		if res.Empty {
			t.Errorf("%s: rename should be recorded, got empty (%s)", tool, res.Reason)
			continue
		}
		if res.Target.NumNodes() == 0 {
			t.Errorf("%s: rename target graph has no nodes", tool)
		}
	}
}

func TestTable2SpotChecks(t *testing.T) {
	cases := []struct {
		tool, bench string
		wantEmpty   bool
	}{
		{"spade", "open", false},
		{"spade", "dup", true},   // SC: state change only
		{"spade", "mknod", true}, // NR
		{"spade", "chown", true}, // NR
		{"spade", "pipe", true},  // NR
		{"spade", "setresgid", true},
		{"spade", "setresuid", false}, // actual change observed
		{"spade", "vfork", false},
		{"opus", "read", true},  // NR by default config
		{"opus", "write", true}, // NR
		{"opus", "dup", false},
		{"opus", "mknod", false},
		{"opus", "mknodat", true}, // NR
		{"opus", "clone", true},   // NR: raw clone bypasses libc
		{"opus", "pipe", false},
		{"opus", "tee", true},        // NR
		{"camflow", "close", true},   // LP
		{"camflow", "dup", true},     // NR
		{"camflow", "symlink", true}, // NR in 0.4.5
		{"camflow", "tee", false},
		{"camflow", "chown", false},
		{"camflow", "setresgid", false},
		{"camflow", "read", false},
	}
	for _, tc := range cases {
		res := runBenchmark(t, tc.tool, tc.bench)
		if res.Empty != tc.wantEmpty {
			t.Errorf("%s/%s: empty=%v (reason %q), want empty=%v",
				tc.tool, tc.bench, res.Empty, res.Reason, tc.wantEmpty)
		}
	}
}

func TestExitAndKillAreProvMarkLimitations(t *testing.T) {
	for tool := range fastRecorders() {
		for _, bench := range []string{"exit", "kill"} {
			res := runBenchmark(t, tool, bench)
			if !res.Empty {
				t.Errorf("%s/%s: want empty (LP), got %d-element target",
					tool, bench, res.Target.Size())
			}
		}
	}
}

func TestVforkDisconnectedUnderSpade(t *testing.T) {
	res := runBenchmark(t, "spade", "vfork")
	if res.Empty {
		t.Fatalf("vfork under spade should be non-empty, got %s", res.Reason)
	}
	// The DV observation: the child process vertex is present but no
	// edge connects it to the parent (dummy nodes excluded).
	for _, e := range res.Target.Edges() {
		if e.Label == "WasTriggeredBy" {
			t.Errorf("vfork target graph has a WasTriggeredBy edge; expected disconnected child (DV)")
		}
	}
	procs := 0
	for _, n := range res.Target.Nodes() {
		if n.Label == "Process" {
			procs++
		}
	}
	if procs != 1 {
		t.Errorf("vfork target should contain exactly the child process vertex, got %d", procs)
	}
}

func TestForkConnectedUnderSpade(t *testing.T) {
	res := runBenchmark(t, "spade", "fork")
	if res.Empty {
		t.Fatalf("fork under spade should be non-empty, got %s", res.Reason)
	}
	found := false
	for _, e := range res.Target.Edges() {
		if e.Label == "WasTriggeredBy" {
			found = true
		}
	}
	if !found {
		t.Error("fork target graph should contain a WasTriggeredBy edge to the parent")
	}
}
