package provmark_test

import (
	"strings"
	"testing"
	"time"

	"provmark/internal/benchprog"
	"provmark/internal/graph"
	"provmark/internal/provmark"
	"provmark/internal/wire"
)

// TestWireRoundTripPreservesResult runs a real pipeline and checks the
// internal→wire→internal round trip preserves everything the wire
// schema covers, byte-for-byte at the rendering layer.
func TestWireRoundTripPreservesResult(t *testing.T) {
	res := runBenchmark(t, "spade", "creat")
	w := provmark.ToWire(res)
	back, err := provmark.FromWire(w)
	if err != nil {
		t.Fatalf("FromWire: %v", err)
	}
	if back.Benchmark != res.Benchmark || back.Tool != res.Tool || back.Trials != res.Trials ||
		back.Empty != res.Empty || back.Reason != res.Reason || back.Cost != res.Cost {
		t.Fatalf("scalar fields changed: %+v vs %+v", back, res)
	}
	if !graph.Equal(res.Target, back.Target) || !graph.Equal(res.FG, back.FG) || !graph.Equal(res.BG, back.BG) {
		t.Fatal("graphs changed across the wire round trip")
	}
	if back.Times != res.Times {
		t.Fatalf("times changed: %+v vs %+v", back.Times, res.Times)
	}
	// Every report flavour renders identically from the original and
	// the round-tripped result.
	for _, rt := range []provmark.ResultType{provmark.BenchmarkOnly, provmark.WithGeneralized, provmark.HTMLPage, provmark.JSON} {
		if provmark.Render(res, rt) != provmark.Render(back, rt) {
			t.Errorf("render flavour %d diverges across the wire", rt)
		}
	}
	if provmark.RenderFigureDOT(res) != provmark.RenderFigureDOT(back) {
		t.Error("figure DOT diverges across the wire")
	}
	if provmark.TimingLogLine(res) != provmark.TimingLogLine(back) {
		t.Error("timing log line diverges across the wire")
	}
}

// TestRenderJSON checks the JSON result type is exactly the canonical
// wire encoding plus one newline, and strict-decodes back.
func TestRenderJSON(t *testing.T) {
	res := runBenchmark(t, "spade", "creat")
	out := provmark.Render(res, provmark.JSON)
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Fatalf("JSON render is not one NDJSON line: %q", out)
	}
	enc, err := wire.EncodeResult(provmark.ToWire(res))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(enc)+"\n" {
		t.Fatalf("JSON render is not the canonical wire encoding:\n%s\nvs\n%s", out, enc)
	}
	w, err := wire.DecodeResult([]byte(strings.TrimSuffix(out, "\n")))
	if err != nil {
		t.Fatalf("JSON render does not strict-decode: %v", err)
	}
	if w.Benchmark != "creat" || w.Tool != "spade" {
		t.Fatalf("decoded JSON render = %+v", w)
	}
}

// TestStageTimesAccountClassification is the PR-2 stage audit: the
// classification sub-stage must be recorded, contained in the
// generalization stage it is part of, and not double-counted in Total.
func TestStageTimesAccountClassification(t *testing.T) {
	var observed []provmark.StageEvent
	rec := fastRecorders()["spade"]
	prog := mustProg(t, "creat")
	res, err := provmark.New(rec,
		provmark.WithTrials(2),
		provmark.WithStageObserver(func(ev provmark.StageEvent) { observed = append(observed, ev) }),
	).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	tms := res.Times
	if tms.Classification <= 0 {
		t.Error("classification sub-stage not recorded in StageTimes")
	}
	if tms.Classification > tms.Generalization {
		t.Errorf("classification (%v) exceeds its containing generalization stage (%v)", tms.Classification, tms.Generalization)
	}
	if got, want := tms.Total(), tms.Recording+tms.Transformation+tms.Generalization+tms.Comparison; got != want {
		t.Errorf("Total() = %v double-counts sub-stages (top-level sum %v)", got, want)
	}

	// Observer view: summing top-level events must reproduce Total();
	// sub-stage events are flagged so observers can skip them.
	var topSum, subSum time.Duration
	for _, ev := range observed {
		if ev.Stage.Substage() {
			subSum += ev.Duration
		} else {
			topSum += ev.Duration
		}
	}
	if topSum != tms.Total() {
		t.Errorf("top-level observer sum %v != Total() %v", topSum, tms.Total())
	}
	if subSum != tms.Classification {
		t.Errorf("sub-stage observer sum %v != Times.Classification %v", subSum, tms.Classification)
	}

	// The wire form carries the sub-stage explicitly with the same
	// containment guarantees.
	wt := provmark.ToWire(res).Times
	if wt.ClassificationNS != tms.Classification.Nanoseconds() {
		t.Errorf("wire classification %d != %d", wt.ClassificationNS, tms.Classification.Nanoseconds())
	}
	if wt.TotalNS != tms.Total().Nanoseconds() {
		t.Errorf("wire total %d != %d", wt.TotalNS, tms.Total().Nanoseconds())
	}
	// The rendered report accounts every stage, including the
	// sub-stage and the recording stage the pre-wire renderer dropped.
	text := provmark.Render(res, provmark.BenchmarkOnly)
	for _, want := range []string{"record=", "transform=", "generalize=", "classify=", "compare=", "total="} {
		if !strings.Contains(text, want) {
			t.Errorf("text report does not account %q:\n%s", want, text)
		}
	}
}

func mustProg(t *testing.T, name string) benchprog.Program {
	t.Helper()
	p, ok := benchprog.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return p
}
