package provmark

import (
	"fmt"
	"strings"

	"provmark/internal/datalog"
	"provmark/internal/graph"
)

// ResultType selects what a report includes, mirroring the CLI's rb /
// rg / rh parameter.
type ResultType int

// Report flavours.
const (
	// BenchmarkOnly prints just the benchmark (target) graph.
	BenchmarkOnly ResultType = iota + 1
	// WithGeneralized adds the generalized fg and bg graphs.
	WithGeneralized
	// HTMLPage renders a minimal HTML page with all three graphs.
	HTMLPage
)

// Render produces the textual (or HTML) report for a result.
func Render(res *Result, rt ResultType) string {
	var b strings.Builder
	switch rt {
	case HTMLPage:
		renderHTML(&b, res)
	case WithGeneralized:
		renderText(&b, res, true)
	default:
		renderText(&b, res, false)
	}
	return b.String()
}

func renderText(b *strings.Builder, res *Result, withGeneralized bool) {
	fmt.Fprintf(b, "benchmark %s under %s (%d trials)\n", res.Benchmark, res.Tool, res.Trials)
	if res.Empty {
		fmt.Fprintf(b, "result: EMPTY — %s\n", res.Reason)
	} else {
		fmt.Fprintf(b, "result: %s (embedding cost %d)\n", graph.Summarize(res.Target), res.Cost)
		b.WriteString(indent(res.Target.String()))
		b.WriteString("datalog:\n")
		b.WriteString(indent(datalog.Print(res.Target, "result")))
	}
	if withGeneralized {
		fmt.Fprintf(b, "generalized foreground: %s\n", graph.Summarize(res.FG))
		b.WriteString(indent(res.FG.String()))
		fmt.Fprintf(b, "generalized background: %s\n", graph.Summarize(res.BG))
		b.WriteString(indent(res.BG.String()))
	}
	fmt.Fprintf(b, "stage times: transform=%v generalize=%v compare=%v\n",
		res.Times.Transformation, res.Times.Generalization, res.Times.Comparison)
}

func renderHTML(b *strings.Builder, res *Result) {
	fmt.Fprintf(b, "<html><head><title>ProvMark: %s / %s</title></head><body>\n", res.Tool, res.Benchmark)
	fmt.Fprintf(b, "<h1>%s under %s</h1>\n", htmlEscape(res.Benchmark), htmlEscape(res.Tool))
	if res.Empty {
		fmt.Fprintf(b, "<p><b>Empty result:</b> %s</p>\n", htmlEscape(string(res.Reason)))
	} else {
		fmt.Fprintf(b, "<h2>Benchmark graph (%s)</h2><pre>%s</pre>\n",
			graph.Summarize(res.Target), htmlEscape(res.Target.String()))
	}
	fmt.Fprintf(b, "<h2>Generalized foreground (%s)</h2><pre>%s</pre>\n",
		graph.Summarize(res.FG), htmlEscape(res.FG.String()))
	fmt.Fprintf(b, "<h2>Generalized background (%s)</h2><pre>%s</pre>\n",
		graph.Summarize(res.BG), htmlEscape(res.BG.String()))
	b.WriteString("</body></html>\n")
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
