package provmark

import (
	"fmt"
	"strings"
	"time"

	"provmark/internal/datalog"
	"provmark/internal/wire"
)

// ResultType selects what a report includes, mirroring the CLI's rb /
// rg / rh parameter.
type ResultType int

// Report flavours.
const (
	// BenchmarkOnly prints just the benchmark (target) graph.
	BenchmarkOnly ResultType = iota + 1
	// WithGeneralized adds the generalized fg and bg graphs.
	WithGeneralized
	// HTMLPage renders a minimal HTML page with all three graphs.
	HTMLPage
	// JSON renders the canonical wire encoding (one line, trailing
	// newline) — byte-identical to the cell payload provmarkd serves.
	JSON
)

// Render produces the textual, HTML or JSON report for a result. All
// flavours render from the versioned wire form, so a report generated
// locally and one generated from a decoded provmarkd stream agree
// byte for byte.
func Render(res *Result, rt ResultType) string {
	return RenderWire(ToWire(res), rt)
}

// RenderWire is Render for a result already in wire form (e.g. a
// decoded provmarkd stream cell).
func RenderWire(w *wire.Result, rt ResultType) string {
	var b strings.Builder
	switch rt {
	case JSON:
		// Encoding a schema-stamped wire value cannot fail: the value
		// contains only maps, slices and scalars.
		data, err := wire.EncodeResult(w)
		if err != nil {
			return ""
		}
		b.Write(data)
		b.WriteByte('\n')
	case HTMLPage:
		renderHTML(&b, w)
	case WithGeneralized:
		renderText(&b, w, true)
	default:
		renderText(&b, w, false)
	}
	return b.String()
}

// generalizedGraphs is the shared traversal order of the generalized
// graphs in a wire result, used by both the text and HTML renderers.
func generalizedGraphs(w *wire.Result) []struct {
	title string
	g     *wire.Graph
} {
	return []struct {
		title string
		g     *wire.Graph
	}{
		{"generalized foreground", w.FG},
		{"generalized background", w.BG},
	}
}

func renderText(b *strings.Builder, w *wire.Result, withGeneralized bool) {
	fmt.Fprintf(b, "benchmark %s under %s (%d trials)\n", w.Benchmark, w.Tool, w.Trials)
	if w.Empty {
		fmt.Fprintf(b, "result: EMPTY — %s\n", w.Reason)
	} else {
		fmt.Fprintf(b, "result: %s (embedding cost %d)\n", w.Target.Summary(), w.Cost)
		b.WriteString(indent(w.Target.String()))
		b.WriteString("datalog:\n")
		b.WriteString(indent(datalogText(w.Target)))
	}
	if withGeneralized {
		for _, sec := range generalizedGraphs(w) {
			fmt.Fprintf(b, "%s: %s\n", sec.title, sec.g.Summary())
			b.WriteString(indent(sec.g.String()))
		}
	}
	t := w.Times
	fmt.Fprintf(b, "stage times: record=%v transform=%v generalize=%v (classify=%v) compare=%v total=%v\n",
		time.Duration(t.RecordingNS), time.Duration(t.TransformationNS),
		time.Duration(t.GeneralizationNS), time.Duration(t.ClassificationNS),
		time.Duration(t.ComparisonNS), time.Duration(t.TotalNS))
}

func renderHTML(b *strings.Builder, w *wire.Result) {
	fmt.Fprintf(b, "<html><head><title>ProvMark: %s / %s</title></head><body>\n", w.Tool, w.Benchmark)
	fmt.Fprintf(b, "<h1>%s under %s</h1>\n", htmlEscape(w.Benchmark), htmlEscape(w.Tool))
	if w.Empty {
		fmt.Fprintf(b, "<p><b>Empty result:</b> %s</p>\n", htmlEscape(w.Reason))
	} else {
		fmt.Fprintf(b, "<h2>Benchmark graph (%s)</h2><pre>%s</pre>\n",
			w.Target.Summary(), htmlEscape(w.Target.String()))
	}
	for _, sec := range generalizedGraphs(w) {
		fmt.Fprintf(b, "<h2>%s (%s)</h2><pre>%s</pre>\n",
			titleCase(sec.title), sec.g.Summary(), htmlEscape(sec.g.String()))
	}
	b.WriteString("</body></html>\n")
}

// datalogText renders the Datalog view of a wire graph. The datalog
// printer operates on the property-graph model, so the wire graph is
// materialized first; wire graphs decoded by the strict decoder (and
// all graphs produced by ToWire) build cleanly.
func datalogText(w *wire.Graph) string {
	g, err := w.Build()
	if err != nil {
		return "error: " + err.Error() + "\n"
	}
	return datalog.Print(g, "result")
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
