// Package provmark orchestrates the four-stage benchmarking pipeline of
// Figure 3: (1) recording — run foreground and background variants of a
// benchmark several times under a capture tool; (2) transformation —
// convert each native recording to the common Datalog property-graph
// format; (3) generalization — pick two consistent trials per variant
// and unify them, discarding volatile properties; (4) comparison —
// embed the background graph in the foreground graph and subtract,
// leaving the target graph.
package provmark

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/match"
)

// Extreme picks which end of the size ordering a trial pair comes from.
type Extreme int

// Pair-size preferences.
const (
	// Smallest selects the consistent pair of smallest size (default;
	// Section 3.4 notes either end works when used for both variants).
	Smallest Extreme = iota + 1
	// Largest selects the consistent pair of largest size.
	Largest
)

// Config is the pipeline's internal configuration. Public callers do
// not build it directly: they pass functional options (WithTrials,
// WithParallelism, …) to New; the struct remains exported only for
// the legacy NewRunner constructor kept for internal tests.
type Config struct {
	// Trials per variant; zero selects the recorder's default.
	Trials int
	// FilterGraphs overrides the recorder's default graph-filtering
	// behaviour when non-nil.
	FilterGraphs *bool
	// KeepNative retains the native artifacts in the result (used by
	// examples that want to show raw tool output).
	KeepNative bool
	// Parallel records trials concurrently. Each trial runs in its own
	// simulated kernel, so trials are independent; recorders must be
	// safe for concurrent Record calls (the built-in ones are, except
	// CamFlow under SerializeOnce, which mutates cross-session state).
	// Legacy flag: when set with Parallelism zero, every trial gets its
	// own goroutine.
	Parallel bool
	// Parallelism bounds the number of concurrent recording workers;
	// values <= 1 record sequentially (unless the legacy Parallel flag
	// asks for one goroutine per trial).
	Parallelism int
	// Observer, when non-nil, receives a StageEvent as each pipeline
	// stage completes.
	Observer StageObserver
	// BGPair / FGPair choose the trial-pair size preference per variant
	// (zero values mean Smallest). Section 3.4: picking the largest
	// background with the smallest foreground fails when the extra
	// background structure is absent from the foreground; the opposite
	// mix leaks extra structure into the result. Exposed for the
	// ablation benchmarks.
	BGPair, FGPair Extreme
	// Classifier is the similarity classification engine used by the
	// generalization stage. Nil gets a private engine per runner; the
	// Matrix runner injects one shared engine so pairwise verdicts and
	// fingerprint work are reused across cells.
	Classifier *Classifier
}

// StageTimes records per-stage wall-clock durations (Figures 5–10).
type StageTimes struct {
	Recording      time.Duration
	Transformation time.Duration
	Generalization time.Duration
	Comparison     time.Duration
	// Classification is the similarity-classification sub-stage of
	// generalization (both variants summed). Its time is contained in
	// Generalization, so Total must not add it a second time; it is
	// recorded separately so reports can show where generalization
	// time goes.
	Classification time.Duration
}

// Total sums the four top-level stages. Sub-stage durations
// (Classification) are already contained in their parent stage and
// are not added again.
func (t StageTimes) Total() time.Duration {
	return t.Recording + t.Transformation + t.Generalization + t.Comparison
}

// EmptyReason classifies why a benchmark produced an empty result.
type EmptyReason string

// Empty-result classifications.
const (
	// NotEmpty marks a benchmark with a non-empty target graph.
	NotEmpty EmptyReason = ""
	// ReasonNoNewStructure: foreground and background generalized to
	// similar graphs — the tool did not record the target activity.
	ReasonNoNewStructure EmptyReason = "fg similar to bg (activity not recorded)"
	// ReasonNotEmbeddable: the background could not be embedded in the
	// foreground — the target violates ProvMark's monotonicity
	// assumption (the paper's LP cells, e.g. exit and kill).
	ReasonNotEmbeddable EmptyReason = "bg not embeddable in fg (ProvMark limitation)"
)

// Result is the outcome of benchmarking one syscall under one tool.
type Result struct {
	Benchmark string
	Tool      string
	Trials    int
	// Target is the benchmark result graph (nil when Empty).
	Target *graph.Graph
	Empty  bool
	Reason EmptyReason
	// FG and BG are the generalized foreground and background graphs.
	FG, BG *graph.Graph
	// Cost is the property-mismatch cost of the bg->fg embedding.
	Cost  int
	Times StageTimes
	// FGNative holds the foreground trial-1 native artifact when
	// Config.KeepNative is set.
	FGNative capture.Native
}

// ErrInconsistentTrials is returned when no two trial graphs of some
// variant are similar (all runs failed or garbled).
var ErrInconsistentTrials = errors.New("provmark: no two consistent trial graphs")

// Runner binds a recorder to a pipeline configuration.
type Runner struct {
	rec capture.RecorderContext
	cfg Config
	cls *Classifier
}

// New builds a pipeline runner for a recorder, configured by
// functional options:
//
//	runner := provmark.New(rec, provmark.WithTrials(4), provmark.WithParallelism(2))
//	res, err := runner.RunContext(ctx, prog)
func New(rec capture.Recorder, opts ...Option) *Runner {
	return NewContext(capture.WithContext(rec), opts...)
}

// NewContext is New for a natively context-aware recorder.
func NewContext(rec capture.RecorderContext, opts ...Option) *Runner {
	cfg := Config{}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &Runner{rec: rec, cfg: cfg, cls: orNewClassifier(cfg.Classifier)}
}

// NewRunner builds a pipeline runner from a raw Config. Legacy
// constructor kept for internal tests; new call sites use New with
// functional options.
func NewRunner(rec capture.Recorder, cfg Config) *Runner {
	return &Runner{rec: capture.WithContext(rec), cfg: cfg, cls: orNewClassifier(cfg.Classifier)}
}

func orNewClassifier(c *Classifier) *Classifier {
	if c == nil {
		return NewClassifier()
	}
	return c
}

// observe reports a completed (or failed) stage to the observer.
func (r *Runner) observe(prog benchprog.Program, s Stage, d time.Duration, err error) {
	if r.cfg.Observer == nil {
		return
	}
	r.cfg.Observer(StageEvent{
		Benchmark: prog.Name,
		Tool:      r.rec.Name(),
		Stage:     s,
		Duration:  d,
		Err:       err,
	})
}

// Run benchmarks one program: the full Figure 3 pipeline. It is the
// context-free compatibility wrapper over RunContext.
func (r *Runner) Run(prog benchprog.Program) (*Result, error) {
	//provmark:allow ctx-background -- compatibility wrapper; callers that have a context use RunContext
	return r.RunContext(context.Background(), prog)
}

// RunScenario benchmarks a declarative scenario: the scenario is
// validated, compiled to a program, and run through the full pipeline.
// Registered and inline scenarios take the same path as the built-in
// closure-era suite.
func (r *Runner) RunScenario(ctx context.Context, s benchprog.Scenario) (*Result, error) {
	prog, err := s.Compile()
	if err != nil {
		return nil, fmt.Errorf("provmark: scenario: %w", err)
	}
	return r.RunContext(ctx, prog)
}

// RunContext benchmarks one program, honoring ctx: cancellation or
// deadline expiry aborts the run between trials (and within a trial
// for context-aware recorders) with ctx's error.
func (r *Runner) RunContext(ctx context.Context, prog benchprog.Program) (*Result, error) {
	res := &Result{Benchmark: prog.Name, Tool: r.rec.Name()}
	trials := r.cfg.Trials
	if trials <= 0 {
		trials = r.rec.DefaultTrials()
	}
	res.Trials = trials

	// Stage 1: recording.
	start := time.Now()
	bgNative, err := r.record(ctx, prog, benchprog.Background, trials)
	if err == nil {
		var fgNative []capture.Native
		fgNative, err = r.record(ctx, prog, benchprog.Foreground, trials)
		if err == nil {
			res.Times.Recording = time.Since(start)
			r.observe(prog, StageRecording, res.Times.Recording, nil)
			if r.cfg.KeepNative && len(fgNative) > 0 {
				res.FGNative = fgNative[0]
			}
			return r.finish(ctx, prog, res, bgNative, fgNative)
		}
	}
	r.observe(prog, StageRecording, time.Since(start), err)
	return nil, err
}

// finish runs stages 2–4 on recorded natives.
func (r *Runner) finish(ctx context.Context, prog benchprog.Program, res *Result, bgNative, fgNative []capture.Native) (*Result, error) {
	// Stage 2: transformation.
	start := time.Now()
	bgGraphs, err := r.transform(ctx, bgNative)
	if err == nil {
		var fgGraphs []*graph.Graph
		fgGraphs, err = r.transform(ctx, fgNative)
		if err == nil {
			res.Times.Transformation = time.Since(start)
			r.observe(prog, StageTransformation, res.Times.Transformation, nil)
			return r.generalizeAndCompare(prog, res, bgGraphs, fgGraphs)
		}
	}
	r.observe(prog, StageTransformation, time.Since(start), err)
	return nil, err
}

// generalizeAndCompare runs stages 3 and 4.
func (r *Runner) generalizeAndCompare(prog benchprog.Program, res *Result, bgGraphs, fgGraphs []*graph.Graph) (*Result, error) {
	// Stage 3: generalization.
	start := time.Now()
	bg, err := r.generalize(prog, bgGraphs, orSmallest(r.cfg.BGPair), &res.Times)
	if err != nil {
		err = fmt.Errorf("%w (bg of %s)", err, prog.Name)
		r.observe(prog, StageGeneralization, time.Since(start), err)
		return nil, err
	}
	fg, err := r.generalize(prog, fgGraphs, orSmallest(r.cfg.FGPair), &res.Times)
	if err != nil {
		err = fmt.Errorf("%w (fg of %s)", err, prog.Name)
		r.observe(prog, StageGeneralization, time.Since(start), err)
		return nil, err
	}
	res.Times.Generalization = time.Since(start)
	r.observe(prog, StageGeneralization, res.Times.Generalization, nil)
	res.BG, res.FG = bg, fg

	// Stage 4: comparison.
	start = time.Now()
	r.compare(res)
	res.Times.Comparison = time.Since(start)
	r.observe(prog, StageComparison, res.Times.Comparison, nil)
	return res, nil
}

// workers resolves the recording concurrency for a trial count.
func (r *Runner) workers(trials int) int {
	w := r.cfg.Parallelism
	if w <= 0 && r.cfg.Parallel {
		w = trials // legacy flag: one goroutine per trial
	}
	if w < 1 {
		w = 1
	}
	if w > trials {
		w = trials
	}
	return w
}

func (r *Runner) record(ctx context.Context, prog benchprog.Program, v benchprog.Variant, trials int) ([]capture.Native, error) {
	out := make([]capture.Native, trials)
	if workers := r.workers(trials); workers > 1 {
		return r.recordParallel(ctx, prog, v, out, workers)
	}
	for t := 0; t < trials; t++ {
		n, err := r.rec.Record(ctx, prog, v, t)
		if err != nil {
			return nil, fmt.Errorf("provmark: recording: %w", err)
		}
		out[t] = n
	}
	return out, nil
}

// recordParallel fans trials out over a bounded worker pool. A
// cancelled context stops workers from claiming further trials; the
// context-aware recorder aborts the trials already claimed.
func (r *Runner) recordParallel(ctx context.Context, prog benchprog.Program, v benchprog.Variant, out []capture.Native, workers int) ([]capture.Native, error) {
	trials := len(out)
	errs := make([]error, trials)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				out[t], errs[t] = r.rec.Record(ctx, prog, v, t)
			}
		}()
	}
feed:
	for t := 0; t < trials; t++ {
		select {
		case next <- t:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("provmark: recording: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("provmark: recording: %w", err)
		}
	}
	return out, nil
}

func (r *Runner) transform(ctx context.Context, natives []capture.Native) ([]*graph.Graph, error) {
	out := make([]*graph.Graph, 0, len(natives))
	for _, n := range natives {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("provmark: transformation: %w", err)
		}
		g, err := r.rec.Transform(n)
		if err != nil {
			return nil, fmt.Errorf("provmark: transformation: %w", err)
		}
		out = append(out, g)
	}
	return out, nil
}

func orSmallest(e Extreme) Extreme {
	if e == 0 {
		return Smallest
	}
	return e
}

// generalize implements the Section 3.4 strategy: optionally filter
// obviously incomplete graphs, partition trials into similarity
// classes, discard singleton classes (failed runs), pick the pair at
// the configured size extreme, and unify it.
func (r *Runner) generalize(prog benchprog.Program, trials []*graph.Graph, extreme Extreme, times *StageTimes) (*graph.Graph, error) {
	filter := r.rec.FilterGraphs()
	if r.cfg.FilterGraphs != nil {
		filter = *r.cfg.FilterGraphs
	}
	if filter {
		if c, ok := capture.AsComplete(r.rec); ok {
			// Filter into a fresh slice: reusing the caller's backing
			// array (trials[:0]) would overwrite graphs the caller may
			// still hold.
			kept := make([]*graph.Graph, 0, len(trials))
			for _, g := range trials {
				if c.CompleteGraph(g) {
					kept = append(kept, g)
				}
			}
			trials = kept
		}
	}
	g1, g2, err := r.selectPair(prog, trials, extreme, times)
	if err != nil {
		return nil, err
	}
	gen, _, err := match.GeneralizePair(g1, g2)
	if err != nil {
		return nil, fmt.Errorf("provmark: generalization: %w", err)
	}
	return gen, nil
}

// selectPair classifies the trials through the runner's engine —
// fanning fingerprint buckets out over the WithParallelism worker
// bound — reports the classification sub-step to the observer, and
// accumulates its duration into the result's StageTimes (both
// variants' classifications sum into one Classification figure).
func (r *Runner) selectPair(prog benchprog.Program, trials []*graph.Graph, extreme Extreme, times *StageTimes) (*graph.Graph, *graph.Graph, error) {
	start := time.Now()
	classes := r.cls.Classes(trials, r.cfg.Parallelism)
	d := time.Since(start)
	if times != nil {
		times.Classification += d
	}
	r.observe(prog, StageClassification, d, nil)
	return pairFromClasses(trials, classes, extreme)
}

// SelectPair partitions trial graphs into similarity classes, discards
// classes with a single member, and returns the two smallest graphs of
// the smallest remaining class.
func SelectPair(trials []*graph.Graph) (*graph.Graph, *graph.Graph, error) {
	return SelectPairExtreme(trials, Smallest)
}

// SelectPairExtreme is SelectPair with a configurable size preference.
func SelectPairExtreme(trials []*graph.Graph, extreme Extreme) (*graph.Graph, *graph.Graph, error) {
	return pairFromClasses(trials, SimilarityClasses(trials), extreme)
}

// pairFromClasses picks the consistent class at the configured size
// extreme and returns its first two members.
func pairFromClasses(trials []*graph.Graph, classes [][]int, extreme Extreme) (*graph.Graph, *graph.Graph, error) {
	best := -1
	for i, c := range classes {
		if len(c) < 2 {
			continue // failed run
		}
		if best < 0 {
			best = i
			continue
		}
		size, bestSize := trials[c[0]].Size(), trials[classes[best][0]].Size()
		if (extreme == Largest && size > bestSize) || (extreme != Largest && size < bestSize) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil, ErrInconsistentTrials
	}
	c := classes[best]
	return trials[c[0]], trials[c[1]], nil
}

// SimilarityClasses groups trial indices by graph similarity: classes
// ordered by first member, members ascending. It routes through a
// throwaway classification engine; pipeline runs use the runner's
// persistent engine so verdicts are cached across stages and cells.
func SimilarityClasses(trials []*graph.Graph) [][]int {
	return NewClassifier().Classes(trials, 1)
}

// compare performs stage 4 on a result whose FG/BG are set.
func (r *Runner) compare(res *Result) {
	if _, similar := match.Similar(res.FG, res.BG); similar {
		res.Empty = true
		res.Reason = ReasonNoNewStructure
		return
	}
	m, cost, err := match.SubgraphEmbed(res.BG, res.FG)
	if err != nil {
		res.Empty = true
		res.Reason = ReasonNotEmbeddable
		return
	}
	res.Cost = cost
	target := match.Subtract(res.FG, m)
	if target.Size() == 0 {
		res.Empty = true
		res.Reason = ReasonNoNewStructure
		return
	}
	res.Target = target
}
