package provmark_test

// Differential test harness for the similarity classification engine:
// a randomized corpus of seeded permutations and label/edge mutations,
// asserting that every decision path — the production match.Similar,
// the pure-ASP oracle match.SimilarASP, the VF2-style backtracker
// match.SimilarDirect, and fingerprint bucketing through the
// classifier — reaches the same verdict on every pair. Plus the
// instrumented acceptance tests: trial graphs fingerprint at most once
// per pipeline run, and the engine spends at least 3x fewer ASP solver
// invocations than the seed linear scan on a 32-trial corpus.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"provmark/internal/asp"
	"provmark/internal/benchprog"
	"provmark/internal/graph"
	"provmark/internal/match"
	"provmark/internal/provmark"
)

var (
	corpusNodeLabels = []string{"process", "file", "socket"}
	corpusEdgeLabels = []string{"read", "write", "fork"}
)

// randomBase builds a connected pseudo-random graph: a labelled chain
// plus extra random edges.
func randomBase(t *testing.T, rng *rand.Rand) *graph.Graph {
	t.Helper()
	g := graph.New()
	n := 3 + rng.Intn(6)
	ids := make([]graph.ElemID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, g.AddNode(corpusNodeLabels[rng.Intn(len(corpusNodeLabels))],
			graph.Properties{"pos": strconv.Itoa(i)}))
	}
	for i := 1; i < n; i++ {
		mustEdge(t, g, ids[i-1], ids[i], corpusEdgeLabels[rng.Intn(len(corpusEdgeLabels))])
	}
	for extra := rng.Intn(n); extra > 0; extra-- {
		mustEdge(t, g, ids[rng.Intn(n)], ids[rng.Intn(n)], corpusEdgeLabels[rng.Intn(len(corpusEdgeLabels))])
	}
	return g
}

func mustEdge(t *testing.T, g *graph.Graph, src, tgt graph.ElemID, label string) {
	t.Helper()
	if _, err := g.AddEdge(src, tgt, label, nil); err != nil {
		t.Fatal(err)
	}
}

// permutedCopy is an isomorphic copy: fresh identifiers, permuted
// insertion order, properties preserved.
func permutedCopy(t testing.TB, g *graph.Graph, rng *rand.Rand, prefix string) *graph.Graph {
	t.Helper()
	out := graph.New()
	nodes := g.Nodes()
	rename := make(map[graph.ElemID]graph.ElemID, len(nodes))
	for i, pi := range rng.Perm(len(nodes)) {
		n := nodes[pi]
		id := graph.ElemID(fmt.Sprintf("%s_n%d", prefix, i))
		rename[n.ID] = id
		if err := out.InsertNode(id, n.Label, n.Props); err != nil {
			t.Fatal(err)
		}
	}
	edges := g.Edges()
	for i, pi := range rng.Perm(len(edges)) {
		e := edges[pi]
		id := graph.ElemID(fmt.Sprintf("%s_e%d", prefix, i))
		if err := out.InsertEdge(id, rename[e.Src], rename[e.Tgt], e.Label, e.Props); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// labelMutatedCopy relabels one node to a label outside the corpus
// alphabet. The label multiset changes, so the pair can never be
// similar — every engine must say no.
func labelMutatedCopy(t *testing.T, g *graph.Graph, rng *rand.Rand) *graph.Graph {
	t.Helper()
	out := graph.New()
	nodes := g.Nodes()
	k := rng.Intn(len(nodes))
	for i, n := range nodes {
		label := n.Label
		if i == k {
			label = "mutant"
		}
		if err := out.InsertNode(n.ID, label, n.Props); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range g.Edges() {
		if err := out.InsertEdge(e.ID, e.Src, e.Tgt, e.Label, e.Props); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// rewiredCopy re-targets one edge at random. The result may or may not
// stay isomorphic (symmetries can absorb the rewire), so callers assert
// only that all engines agree on the verdict.
func rewiredCopy(t *testing.T, g *graph.Graph, rng *rand.Rand) *graph.Graph {
	t.Helper()
	out := graph.New()
	nodes := g.Nodes()
	for _, n := range nodes {
		if err := out.InsertNode(n.ID, n.Label, n.Props); err != nil {
			t.Fatal(err)
		}
	}
	edges := g.Edges()
	k := rng.Intn(len(edges))
	for i, e := range edges {
		tgt := e.Tgt
		if i == k {
			tgt = nodes[rng.Intn(len(nodes))].ID
		}
		if err := out.InsertEdge(e.ID, e.Src, tgt, e.Label, e.Props); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// engineVerdicts runs one pair through all four decision paths.
func engineVerdicts(t *testing.T, a, b *graph.Graph) map[string]bool {
	t.Helper()
	verdicts := make(map[string]bool, 4)

	m, ok := match.Similar(a, b)
	if ok && !match.VerifyMapping(a, b, m) {
		t.Fatalf("Similar returned an invalid witness mapping")
	}
	verdicts["similar"] = ok

	m, ok = match.SimilarASP(a, b)
	if ok && !match.VerifyMapping(a, b, m) {
		t.Fatalf("SimilarASP returned an invalid witness mapping")
	}
	verdicts["asp"] = ok

	m, ok = match.SimilarDirect(a, b)
	if ok && !match.VerifyMapping(a, b, m) {
		t.Fatalf("SimilarDirect returned an invalid witness mapping")
	}
	verdicts["direct"] = ok

	classes := provmark.SimilarityClasses([]*graph.Graph{a, b})
	verdicts["bucketing"] = len(classes) == 1

	return verdicts
}

func assertVerdicts(t *testing.T, a, b *graph.Graph, want bool, kind string) {
	t.Helper()
	for engine, got := range engineVerdicts(t, a, b) {
		if got != want {
			t.Errorf("%s pair: engine %s said %v, want %v\nG1:\n%s\nG2:\n%s",
				kind, engine, got, want, a, b)
		}
	}
}

func assertVerdictsAgree(t *testing.T, a, b *graph.Graph, kind string) {
	t.Helper()
	verdicts := engineVerdicts(t, a, b)
	ref, refEngine := verdicts["asp"], "asp"
	for engine, got := range verdicts {
		if got != ref {
			t.Errorf("%s pair: engine %s said %v but %s said %v\nG1:\n%s\nG2:\n%s",
				kind, engine, got, refEngine, ref, a, b)
		}
	}
}

// TestDifferentialSimilarityEngines is the randomized differential
// harness: 70 seeded base graphs x 3 pair kinds = 210 pairs, each
// decided by all four paths.
func TestDifferentialSimilarityEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs := 0
	for i := 0; i < 70; i++ {
		base := randomBase(t, rng)
		perm := permutedCopy(t, base, rng, fmt.Sprintf("perm%d", i))
		assertVerdicts(t, base, perm, true, "permuted")
		pairs++

		mut := labelMutatedCopy(t, base, rng)
		assertVerdicts(t, base, mut, false, "label-mutated")
		pairs++

		rew := rewiredCopy(t, base, rng)
		assertVerdictsAgree(t, base, rew, "rewired")
		pairs++
	}
	if pairs < 200 {
		t.Fatalf("differential corpus covered %d pairs, want >= 200", pairs)
	}
}

// TestDifferentialCorpusClassification throws permuted families into
// one classification call: permuted copies must land in one class per
// family, label mutants in classes of their own.
func TestDifferentialCorpusClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var trials []*graph.Graph
	wantClassOf := make(map[int]string) // trial index -> family key
	for fam := 0; fam < 6; fam++ {
		base := randomBase(t, rng)
		for c := 0; c < 3; c++ {
			wantClassOf[len(trials)] = fmt.Sprintf("fam%d", fam)
			trials = append(trials, permutedCopy(t, base, rng, fmt.Sprintf("f%dc%d", fam, c)))
		}
		wantClassOf[len(trials)] = fmt.Sprintf("fam%d-mutant", fam)
		trials = append(trials, labelMutatedCopy(t, base, rng))
	}
	classes := provmark.SimilarityClasses(trials)
	for _, class := range classes {
		for _, i := range class[1:] {
			if wantClassOf[i] != wantClassOf[class[0]] {
				t.Errorf("trial %d (%s) classified with trial %d (%s)",
					i, wantClassOf[i], class[0], wantClassOf[class[0]])
			}
		}
	}
	byFamily := make(map[string]int)
	for _, class := range classes {
		byFamily[wantClassOf[class[0]]]++
	}
	for fam, n := range byFamily {
		if n != 1 {
			t.Errorf("family %s split across %d classes", fam, n)
		}
	}
}

// classCorpus builds an asymmetric 32-trial corpus in exactly 4
// similarity classes: 4 distinct chain shapes x 8 permuted copies, with
// volatile property noise, shuffled.
func classCorpus(t testing.TB, seed int64) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var trials []*graph.Graph
	for s := 0; s < 4; s++ {
		base := graph.New()
		var prev graph.ElemID
		for i := 0; i <= s+2; i++ {
			id := base.AddNode(fmt.Sprintf("s%dp%d", s, i), nil)
			if i > 0 {
				if _, err := base.AddEdge(prev, id, "next", nil); err != nil {
					t.Fatal(err)
				}
			}
			prev = id
		}
		for c := 0; c < 8; c++ {
			cp := permutedCopy(t, base, rng, fmt.Sprintf("s%dc%d", s, c))
			if err := cp.SetProp(cp.Nodes()[0].ID, "ts", strconv.Itoa(rng.Int())); err != nil {
				t.Fatal(err)
			}
			trials = append(trials, cp)
		}
	}
	rng.Shuffle(len(trials), func(i, j int) { trials[i], trials[j] = trials[j], trials[i] })
	return trials
}

// seedSimilarityClasses replicates the seed implementation's decision
// pattern: a linear scan over class representatives where every
// fingerprint-passing candidate pair goes to the ASP solver.
func seedSimilarityClasses(trials []*graph.Graph) [][]int {
	var classes [][]int
	for i, g := range trials {
		placed := false
		for ci, c := range classes {
			rep := trials[c[0]]
			if graph.ShapeFingerprint(rep) != graph.ShapeFingerprint(g) {
				continue
			}
			if _, ok := match.SimilarASP(rep, g); ok {
				classes[ci] = append(classes[ci], i)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []int{i})
		}
	}
	return classes
}

// TestClassifierSolverInvocationReduction is the acceptance criterion:
// on a 32-trial corpus with 4 similarity classes the engine must invoke
// the ASP solver at least 3x less often than the seed path.
func TestClassifierSolverInvocationReduction(t *testing.T) {
	trials := classCorpus(t, 11)

	engineStart := asp.SolveInvocations()
	engineClasses := provmark.SimilarityClasses(trials)
	engineSolves := asp.SolveInvocations() - engineStart

	seedStart := asp.SolveInvocations()
	seedClasses := seedSimilarityClasses(trials)
	seedSolves := asp.SolveInvocations() - seedStart

	if !reflect.DeepEqual(engineClasses, seedClasses) {
		t.Fatalf("engine and seed disagree:\nengine: %v\nseed:   %v", engineClasses, seedClasses)
	}
	if len(engineClasses) < 4 {
		t.Fatalf("corpus produced %d classes, want >= 4", len(engineClasses))
	}
	// The seed confirms every joining member through the solver (32
	// trials - 4 class openers = 28 solves); the asymmetric corpus lets
	// the engine confirm every pair through the forced-mapping verifier.
	if seedSolves < 3*engineSolves || seedSolves == 0 {
		t.Errorf("engine used %d ASP solves vs seed %d; want >= 3x reduction",
			engineSolves, seedSolves)
	}
}

// TestTrialGraphsFingerprintedOncePerRun is the memoization acceptance
// criterion: a pipeline run fingerprints each trial graph at most once
// (8 trial graphs at WithTrials(4)), plus the two generalized graphs
// checked in the comparison stage.
func TestTrialGraphsFingerprintedOncePerRun(t *testing.T) {
	rec := fastRecorders()["spade"]
	prog, ok := benchprog.ByName("rename")
	if !ok {
		t.Fatal("unknown benchmark rename")
	}
	runner := provmark.New(rec, provmark.WithTrials(4))
	before := graph.FingerprintComputations()
	if _, err := runner.RunContext(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	delta := graph.FingerprintComputations() - before
	const maxComputes = 2*4 + 2 // bg+fg trial graphs, once each + generalized FG/BG
	if delta > maxComputes {
		t.Errorf("pipeline run computed %d fingerprints, want <= %d (each graph at most once)",
			delta, maxComputes)
	}
	if delta == 0 {
		t.Error("pipeline run computed no fingerprints; instrumentation broken?")
	}
}

// TestClassifierParallelMatchesSequential: classifying buckets over a
// worker pool must produce the identical deterministic partition.
func TestClassifierParallelMatchesSequential(t *testing.T) {
	trials := classCorpus(t, 29)
	seq := provmark.NewClassifier().Classes(trials, 1)
	par := provmark.NewClassifier().Classes(trials, 4)
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel classification diverged:\nseq: %v\npar: %v", seq, par)
	}
}

// TestClassifierVerdictCache: re-classifying the same graphs through
// one engine serves every pairwise verdict from cache.
func TestClassifierVerdictCache(t *testing.T) {
	trials := classCorpus(t, 31)
	c := provmark.NewClassifier()
	first := c.Classes(trials, 1)
	s1 := c.Stats()
	second := c.Classes(trials, 1)
	s2 := c.Stats()
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("re-classification changed the partition")
	}
	if s1.Confirms == 0 {
		t.Fatal("first classification confirmed nothing; corpus degenerate?")
	}
	if s2.Confirms != s1.Confirms {
		t.Errorf("re-classification re-confirmed pairs: %d -> %d confirms", s1.Confirms, s2.Confirms)
	}
	if s2.CacheHits <= s1.CacheHits {
		t.Errorf("re-classification did not hit the verdict cache (hits %d -> %d)", s1.CacheHits, s2.CacheHits)
	}
}

// TestClassifierSymmetricFallsBackToSolver: on graphs whose WL
// refinement is not discrete (interchangeable star leaves) the forced
// path must stand aside and the ASP solver confirm.
func TestClassifierSymmetricFallsBackToSolver(t *testing.T) {
	star := func(out, in int) *graph.Graph {
		g := graph.New()
		hub := g.AddNode("hub", nil)
		for i := 0; i < out; i++ {
			leaf := g.AddNode("leaf", nil)
			mustEdge(t, g, hub, leaf, "spoke")
		}
		for i := 0; i < in; i++ {
			leaf := g.AddNode("leaf", nil)
			mustEdge(t, g, leaf, hub, "spoke")
		}
		return g
	}
	rng := rand.New(rand.NewSource(3))
	s1 := star(3, 1)
	s2 := permutedCopy(t, s1, rng, "s2")
	s3 := star(2, 2) // same counts and labels, different orientation

	before := asp.SolveInvocations()
	classes := provmark.SimilarityClasses([]*graph.Graph{s1, s2, s3})
	delta := asp.SolveInvocations() - before

	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2: %v", len(classes), classes)
	}
	if !reflect.DeepEqual(classes[0], []int{0, 1}) {
		t.Errorf("permuted stars not classified together: %v", classes)
	}
	if delta == 0 {
		t.Error("symmetric confirmation ran no ASP solves; forced path overreached")
	}
}
