package provmark

import "time"

// Stage identifies one of the four Figure 3 pipeline stages.
type Stage int

// Pipeline stages, in execution order.
const (
	StageRecording Stage = iota + 1
	StageTransformation
	StageGeneralization
	StageComparison
	// StageClassification is the similarity-classification sub-step of
	// the generalization stage (appended after the paper's four stages
	// so existing stage numbering is stable). Its durations are already
	// included in the StageGeneralization totals; observers that sum
	// stages must skip sub-stages (see Substage).
	StageClassification
)

// Substage reports whether the stage is a sub-step whose duration is
// contained in a top-level stage's event. Observers summing stage
// durations to a pipeline total must skip sub-stage events or the
// contained time is double-counted.
func (s Stage) Substage() bool { return s == StageClassification }

// String names the stage as the paper does.
func (s Stage) String() string {
	switch s {
	case StageRecording:
		return "recording"
	case StageTransformation:
		return "transformation"
	case StageGeneralization:
		return "generalization"
	case StageComparison:
		return "comparison"
	case StageClassification:
		return "classification"
	}
	return "unknown"
}

// StageEvent is one observer notification: a pipeline stage finished
// (or failed) for one benchmark under one tool.
type StageEvent struct {
	// Benchmark and Tool identify the matrix cell.
	Benchmark string
	Tool      string
	// Stage is the pipeline stage that just completed.
	Stage Stage
	// Duration is the stage's wall-clock time.
	Duration time.Duration
	// Err is non-nil when the stage failed (the run aborts after a
	// failed stage, so at most one event per cell carries an error).
	Err error
}

// StageObserver receives stage-completion events. Observers are called
// synchronously from the pipeline goroutine of the cell, so a matrix
// run with parallel workers invokes the observer concurrently — it
// must be safe for concurrent use and should return quickly.
type StageObserver func(StageEvent)

// Option configures a pipeline Runner (and, through Matrix.Pipeline,
// every cell of a matrix run).
type Option func(*Config)

// WithTrials sets the number of recording trials per variant; n <= 0
// selects the recorder's default.
func WithTrials(n int) Option {
	return func(c *Config) { c.Trials = n }
}

// WithParallelism bounds the number of concurrent recording workers
// within one pipeline run; k <= 1 records sequentially. Each trial
// runs in its own simulated kernel, so trials are independent;
// recorders must be safe for concurrent Record calls.
func WithParallelism(k int) Option {
	return func(c *Config) { c.Parallelism = k }
}

// WithFilterGraphs overrides the recorder's default graph-filtering
// behaviour (the config.ini filtergraphs flag).
func WithFilterGraphs(filter bool) Option {
	return func(c *Config) { c.FilterGraphs = &filter }
}

// WithKeepNative retains the foreground trial-1 native artifact in the
// result, for callers that want to show raw tool output.
func WithKeepNative(keep bool) Option {
	return func(c *Config) { c.KeepNative = keep }
}

// WithPairExtremes chooses the trial-pair size preference per variant
// (Section 3.4); zero values mean Smallest.
func WithPairExtremes(bg, fg Extreme) Option {
	return func(c *Config) { c.BGPair, c.FGPair = bg, fg }
}

// WithClassifier installs a shared similarity classification engine.
// Runners created with the same engine reuse fingerprint work and
// pairwise similarity verdicts; the Matrix runner injects one engine
// across all cells of a run. A nil engine is ignored (each runner then
// gets a private one).
func WithClassifier(c *Classifier) Option {
	return func(cfg *Config) {
		if c != nil {
			cfg.Classifier = c
		}
	}
}

// WithStageObserver installs a per-stage completion hook; successive
// calls chain, all installed observers run.
func WithStageObserver(fn StageObserver) Option {
	return func(c *Config) {
		if fn == nil {
			return
		}
		prev := c.Observer
		if prev == nil {
			c.Observer = fn
			return
		}
		c.Observer = func(ev StageEvent) {
			prev(ev)
			fn(ev)
		}
	}
}
