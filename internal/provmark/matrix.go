package provmark

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
)

// Matrix describes a (tools × benchmarks) grid of pipeline runs — the
// unit of work behind the paper's Table 2/3 and timing experiments,
// and the execution path the CLIs and bench suite share. Cells fan out
// over a bounded worker pool and results stream back as they complete:
//
//	m := provmark.Matrix{
//		Tools:      []string{"spade", "opus", "camflow"},
//		Benchmarks: progs,
//		Workers:    4,
//		Pipeline:   []provmark.Option{provmark.WithTrials(2)},
//	}
//	results, err := m.Stream(ctx)
//	for r := range results { ... }
type Matrix struct {
	// Tools names registry backends, opened with Capture options.
	Tools []string
	// Capture configures the registry backends named in Tools.
	Capture capture.Options
	// Recorders lists explicit recorder instances, appended after the
	// Tools columns — for recorders with configurations the registry
	// vocabulary cannot express.
	Recorders []capture.Recorder
	// ContextRecorders lists natively context-aware recorders, appended
	// after Recorders. Unlike adapted legacy recorders, these can abort
	// a trial already in flight when the run's context is cancelled.
	ContextRecorders []capture.RecorderContext
	// Benchmarks are the grid rows.
	Benchmarks []benchprog.Program
	// Scenarios are additional grid rows given as declarative scenario
	// specs (registered-by-value or inline); they are validated and
	// compiled during setup and appended after Benchmarks.
	Scenarios []benchprog.Scenario
	// Workers bounds the number of cells in flight; values < 1 use
	// GOMAXPROCS. Within a cell, recording concurrency is governed
	// separately by WithParallelism in Pipeline.
	Workers int
	// Pipeline options apply to every cell's runner (WithTrials,
	// WithStageObserver, ...).
	Pipeline []Option
}

// MatrixResult is one completed cell of a matrix run.
type MatrixResult struct {
	// Index is the cell's position in row-major grid order (tool-major:
	// all benchmarks of the first tool come first).
	Index int
	// Tool and Benchmark identify the cell.
	Tool      string
	Benchmark string
	// Result is the pipeline outcome; nil when Err is set.
	Result *Result
	// Err is the cell's pipeline error, including ctx.Err() for cells
	// aborted by cancellation. Cells never started are not reported.
	Err error
}

// cells resolves the grid into its recorder columns and benchmark
// rows, compiling any declarative scenarios into programs.
func (m Matrix) cells() ([]capture.RecorderContext, []benchprog.Program, error) {
	recs := make([]capture.RecorderContext, 0, len(m.Tools)+len(m.Recorders)+len(m.ContextRecorders))
	for _, name := range m.Tools {
		rec, err := capture.OpenContext(name, m.Capture)
		if err != nil {
			return nil, nil, fmt.Errorf("provmark: matrix: %w", err)
		}
		recs = append(recs, rec)
	}
	for _, rec := range m.Recorders {
		recs = append(recs, capture.WithContext(rec))
	}
	recs = append(recs, m.ContextRecorders...)
	if len(recs) == 0 {
		return nil, nil, fmt.Errorf("provmark: matrix: no tools")
	}
	progs := make([]benchprog.Program, 0, len(m.Benchmarks)+len(m.Scenarios))
	progs = append(progs, m.Benchmarks...)
	for _, s := range m.Scenarios {
		prog, err := s.Compile()
		if err != nil {
			return nil, nil, fmt.Errorf("provmark: matrix: %w", err)
		}
		progs = append(progs, prog)
	}
	if len(progs) == 0 {
		return nil, nil, fmt.Errorf("provmark: matrix: no benchmarks")
	}
	return recs, progs, nil
}

// Stream starts the matrix run and returns a channel of cell results
// in completion order; the channel closes when every started cell has
// reported or the context is cancelled. Setup errors (unknown tool,
// empty grid) are reported before any work starts.
func (m Matrix) Stream(ctx context.Context) (<-chan MatrixResult, error) {
	recs, progs, err := m.cells()
	if err != nil {
		return nil, err
	}
	workers := m.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := len(recs) * len(progs)
	if workers > total {
		workers = total
	}

	// Every cell of the run shares one classification engine; callers
	// that re-run a matrix over retained graphs reuse its verdicts. A
	// WithClassifier in m.Pipeline (applied later) wins.
	pipeline := make([]Option, 0, len(m.Pipeline)+1)
	pipeline = append(pipeline, WithClassifier(NewClassifier()))
	pipeline = append(pipeline, m.Pipeline...)

	out := make(chan MatrixResult)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rec := recs[i/len(progs)]
				prog := progs[i%len(progs)]
				res, err := NewContext(rec, pipeline...).RunContext(ctx, prog)
				cell := MatrixResult{
					Index:     i,
					Tool:      rec.Name(),
					Benchmark: prog.Name,
					Result:    res,
					Err:       err,
				}
				select {
				case out <- cell:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		defer close(out)
	feed:
		for i := 0; i < total; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}()
	return out, nil
}

// Run executes the matrix and collects every completed cell, ordered
// by grid index. It returns ctx's error when the run was cancelled
// before all cells completed; per-cell pipeline failures stay on the
// individual MatrixResult.
func (m Matrix) Run(ctx context.Context) ([]MatrixResult, error) {
	stream, err := m.Stream(ctx)
	if err != nil {
		return nil, err
	}
	var out []MatrixResult
	for cell := range stream {
		out = append(out, cell)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
