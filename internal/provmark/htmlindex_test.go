package provmark

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"provmark/internal/graph"
)

func TestIndexWriterProducesLinkedPages(t *testing.T) {
	dir := t.TempDir()
	w, err := NewIndexWriter(dir, "spade")
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	g.AddNode("Artifact", graph.Properties{"path": "/x"})
	if err := w.Add(&Result{Benchmark: "open", Tool: "spade", Target: g, FG: g, BG: graph.New()}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(&Result{Benchmark: "dup", Tool: "spade", Empty: true,
		Reason: ReasonNoNewStructure, FG: g, BG: g}); err != nil {
		t.Fatal(err)
	}
	path, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	index := string(data)
	for _, want := range []string{"spade_open.html", "spade_dup.html", "1n/0e/1p", "empty"} {
		if !strings.Contains(index, want) {
			t.Errorf("index missing %q", want)
		}
	}
	page, err := os.ReadFile(filepath.Join(dir, "spade_open.html"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(page), "Benchmark graph") {
		t.Error("benchmark page incomplete")
	}
}
