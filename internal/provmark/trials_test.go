package provmark

import (
	"errors"
	"strconv"
	"testing"

	"provmark/internal/graph"
)

// mkChain builds a labelled chain with an optional volatile property on
// the first node.
func mkChain(t *testing.T, volatile string, labels ...string) *graph.Graph {
	t.Helper()
	g := graph.New()
	var prev graph.ElemID
	for i, l := range labels {
		id := g.AddNode(l, nil)
		if i == 0 && volatile != "" {
			if err := g.SetProp(id, "ts", volatile); err != nil {
				t.Fatal(err)
			}
		}
		if i > 0 {
			if _, err := g.AddEdge(prev, id, "E", nil); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	return g
}

func TestSimilarityClassesGroupByShape(t *testing.T) {
	trials := []*graph.Graph{
		mkChain(t, "1", "A", "B"),
		mkChain(t, "2", "A", "B"),
		mkChain(t, "", "A", "B", "C"),
		mkChain(t, "", "A", "B", "C"),
		mkChain(t, "", "X"),
	}
	classes := SimilarityClasses(trials)
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3", len(classes))
	}
	sizes := map[int]bool{}
	for _, c := range classes {
		sizes[len(c)] = true
	}
	if !sizes[2] || !sizes[1] {
		t.Errorf("class sizes wrong: %v", classes)
	}
}

// TestSelectPairPrefersSmallestClass: the Section 3.4 strategy — among
// consistent classes, the smallest graphs win (the jittered bigger
// variants lose).
func TestSelectPairPrefersSmallestClass(t *testing.T) {
	small1 := mkChain(t, "1", "A", "B")
	small2 := mkChain(t, "2", "A", "B")
	big1 := mkChain(t, "", "A", "B", "C")
	big2 := mkChain(t, "", "A", "B", "C")
	lone := mkChain(t, "", "X")
	g1, g2, err := SelectPair([]*graph.Graph{big1, lone, small1, big2, small2})
	if err != nil {
		t.Fatal(err)
	}
	if g1.Size() != small1.Size() || g2.Size() != small1.Size() {
		t.Errorf("selected sizes %d/%d, want the small class", g1.Size(), g2.Size())
	}
}

func TestSelectPairAllSingletonsFails(t *testing.T) {
	trials := []*graph.Graph{
		mkChain(t, "", "A"),
		mkChain(t, "", "A", "B"),
		mkChain(t, "", "A", "B", "C"),
	}
	if _, _, err := SelectPair(trials); !errors.Is(err, ErrInconsistentTrials) {
		t.Errorf("want ErrInconsistentTrials, got %v", err)
	}
}

func TestSelectPairManyClasses(t *testing.T) {
	// Ten trials in three classes; the pair must come from the class
	// with the smallest graphs even if it is not the largest class.
	var trials []*graph.Graph
	for i := 0; i < 5; i++ {
		trials = append(trials, mkChain(t, strconv.Itoa(i), "A", "B", "C", "D"))
	}
	for i := 0; i < 3; i++ {
		trials = append(trials, mkChain(t, strconv.Itoa(i), "A", "B", "C"))
	}
	for i := 0; i < 2; i++ {
		trials = append(trials, mkChain(t, strconv.Itoa(i), "A", "B"))
	}
	g1, _, err := SelectPair(trials)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != 2 {
		t.Errorf("selected class with %d nodes, want 2", g1.NumNodes())
	}
}
