package provmark_test

import (
	"context"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/provmark"
)

// customScenario is an inline program not present in the registry.
func customScenario() benchprog.Scenario {
	return benchprog.Scenario{
		Name: "chmod-then-unlink",
		Desc: "restrict a file's mode, then remove it",
		Setup: []benchprog.SetupOp{
			{Kind: "file", Path: "/stage/victim.txt", UID: 1000, Mode: 0o644},
		},
		Steps: []benchprog.Instr{
			{Op: "chmod", Path: "/stage/victim.txt", Mode: 0o600, Target: true},
			{Op: "unlink", Path: "/stage/victim.txt", Target: true},
		},
	}
}

// TestRunnerRunScenario: an inline scenario runs the full pipeline and
// produces the same result as its pre-compiled program.
func TestRunnerRunScenario(t *testing.T) {
	rec, err := capture.Open("spade", capture.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	runner := provmark.New(rec, provmark.WithTrials(2))
	res, err := runner.RunScenario(context.Background(), customScenario())
	if err != nil {
		t.Fatal(err)
	}
	if res.Empty || res.Target == nil {
		t.Fatalf("inline scenario produced an empty benchmark graph: %s", res.Reason)
	}
	prog, err := customScenario().Compile()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runner.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if graph.ShapeFingerprint(res.Target) != graph.ShapeFingerprint(direct.Target) {
		t.Error("RunScenario and Run(Compile()) disagree")
	}
	if _, err := runner.RunScenario(context.Background(), benchprog.Scenario{Name: "broken"}); err == nil {
		t.Error("invalid scenario ran")
	}
}

// TestMatrixScenarios: scenario rows join benchmark rows in the grid.
func TestMatrixScenarios(t *testing.T) {
	m := provmark.Matrix{
		Tools:      []string{"spade", "opus"},
		Capture:    capture.Options{Fast: true},
		Benchmarks: testPrograms(t, "creat"),
		Scenarios:  []benchprog.Scenario{customScenario()},
		Workers:    2,
		Pipeline:   []provmark.Option{provmark.WithTrials(2)},
	}
	results, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d cells, want 4 (2 tools × (1 benchmark + 1 scenario))", len(results))
	}
	perTool := map[string]map[string]bool{}
	for _, cell := range results {
		if cell.Err != nil {
			t.Errorf("%s/%s: %v", cell.Tool, cell.Benchmark, cell.Err)
			continue
		}
		if perTool[cell.Tool] == nil {
			perTool[cell.Tool] = map[string]bool{}
		}
		perTool[cell.Tool][cell.Benchmark] = true
	}
	for _, tool := range []string{"spade", "opus"} {
		if !perTool[tool]["creat"] || !perTool[tool]["chmod-then-unlink"] {
			t.Errorf("%s: missing rows: %v", tool, perTool[tool])
		}
	}

	// An invalid scenario fails matrix setup, before any cell runs.
	bad := m
	bad.Scenarios = []benchprog.Scenario{{Name: "nope"}}
	if _, err := bad.Stream(context.Background()); err == nil {
		t.Error("matrix accepted an invalid scenario")
	}
}
