package provmark

import (
	"errors"
	"time"

	"provmark/internal/wire"
)

// ToWire converts a pipeline result to its versioned wire form — the
// serialization boundary shared by provmarkd, the report renderers and
// the JSON result type. The FGNative artifact (Config.KeepNative) is a
// local-process convenience and is not part of the wire schema.
func ToWire(res *Result) *wire.Result {
	if res == nil {
		return nil
	}
	return &wire.Result{
		Schema:    wire.SchemaVersion,
		Tool:      res.Tool,
		Benchmark: res.Benchmark,
		Trials:    res.Trials,
		Empty:     res.Empty,
		Reason:    string(res.Reason),
		Cost:      res.Cost,
		Times:     toWireTimes(res.Times),
		Target:    wire.FromGraph(res.Target),
		FG:        wire.FromGraph(res.FG),
		BG:        wire.FromGraph(res.BG),
	}
}

// FromWire materializes a wire result back into the internal form,
// validating the embedded graphs. TotalNS is informational on the
// wire; internally StageTimes.Total is always recomputed.
func FromWire(w *wire.Result) (*Result, error) {
	if w == nil {
		return nil, errors.New("provmark: nil wire result")
	}
	// The schema invariant (target present iff non-empty) is what lets
	// every consumer dereference Target unguarded; re-check it here so
	// hand-built wire values are as safe as decoded ones.
	if !w.Empty && w.Target == nil {
		return nil, errors.New("provmark: non-empty wire result lacks a target graph")
	}
	target, err := w.Target.Build()
	if err != nil {
		return nil, err
	}
	fg, err := w.FG.Build()
	if err != nil {
		return nil, err
	}
	bg, err := w.BG.Build()
	if err != nil {
		return nil, err
	}
	return &Result{
		Benchmark: w.Benchmark,
		Tool:      w.Tool,
		Trials:    w.Trials,
		Target:    target,
		Empty:     w.Empty,
		Reason:    EmptyReason(w.Reason),
		FG:        fg,
		BG:        bg,
		Cost:      w.Cost,
		Times:     fromWireTimes(w.Times),
	}, nil
}

func toWireTimes(t StageTimes) wire.StageTimes {
	return wire.StageTimes{
		RecordingNS:      t.Recording.Nanoseconds(),
		TransformationNS: t.Transformation.Nanoseconds(),
		GeneralizationNS: t.Generalization.Nanoseconds(),
		ClassificationNS: t.Classification.Nanoseconds(),
		ComparisonNS:     t.Comparison.Nanoseconds(),
		TotalNS:          t.Total().Nanoseconds(),
	}
}

func fromWireTimes(t wire.StageTimes) StageTimes {
	return StageTimes{
		Recording:      time.Duration(t.RecordingNS),
		Transformation: time.Duration(t.TransformationNS),
		Generalization: time.Duration(t.GeneralizationNS),
		Classification: time.Duration(t.ClassificationNS),
		Comparison:     time.Duration(t.ComparisonNS),
	}
}

// ToWireCell converts a completed matrix cell to its wire form. The
// dedup key (Cell) and the Cached flag belong to the jobs layer and
// are left zero here.
func ToWireCell(cell MatrixResult) *wire.MatrixResult {
	w := &wire.MatrixResult{
		Schema:    wire.SchemaVersion,
		Index:     cell.Index,
		Tool:      cell.Tool,
		Benchmark: cell.Benchmark,
		Result:    ToWire(cell.Result),
	}
	if cell.Err != nil {
		w.Err = cell.Err.Error()
	}
	return w
}

// FromWireCell materializes a wire matrix cell. Wire errors come back
// as opaque error values: the error chain does not cross the wire.
func FromWireCell(w *wire.MatrixResult) (MatrixResult, error) {
	if w == nil {
		return MatrixResult{}, errors.New("provmark: nil wire matrix result")
	}
	cell := MatrixResult{
		Index:     w.Index,
		Tool:      w.Tool,
		Benchmark: w.Benchmark,
	}
	if w.Result != nil {
		res, err := FromWire(w.Result)
		if err != nil {
			return MatrixResult{}, err
		}
		cell.Result = res
	}
	if w.Err != "" {
		cell.Err = errors.New(w.Err)
	}
	return cell, nil
}
