package provmark

import (
	"errors"
	"strings"
	"testing"

	"provmark/internal/graph"
)

func storeFixture(t *testing.T) (*Store, *graph.Graph) {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New()
	a := g.AddNode("Process", graph.Properties{"pid": "1"})
	b := g.AddNode("Artifact", graph.Properties{"path": "/x"})
	if _, err := g.AddEdge(a, b, "Used", nil); err != nil {
		t.Fatal(err)
	}
	return store, g
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	store, g := storeFixture(t)
	if err := store.Save("spade", "open", g); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.Load("spade", "open")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != 2 || loaded.NumEdges() != 1 {
		t.Errorf("loaded %d nodes %d edges", loaded.NumNodes(), loaded.NumEdges())
	}
}

func TestStoreCheckNoBaseline(t *testing.T) {
	store, g := storeFixture(t)
	if _, err := store.Check("spade", "open", g); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("want ErrNoBaseline, got %v", err)
	}
}

func TestStoreCheckDetectsStructureChange(t *testing.T) {
	store, g := storeFixture(t)
	if err := store.Save("spade", "open", g); err != nil {
		t.Fatal(err)
	}
	// Same structure: no regression, even with renamed ids.
	same := g.Clone()
	diff, err := store.Check("spade", "open", same)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Changed {
		t.Errorf("false positive: %s", diff.Detail)
	}
	// Extra node: regression.
	changed := g.Clone()
	changed.AddNode("Artifact", nil)
	diff, err = store.Check("spade", "open", changed)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Changed {
		t.Error("structure change not detected")
	}
}

func TestStoreEntries(t *testing.T) {
	store, g := storeFixture(t)
	if err := store.Save("spade", "open", g); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("camflow", "rename", g); err != nil {
		t.Fatal(err)
	}
	entries, err := store.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %v", entries)
	}
	if entries[0][0] != "camflow" || entries[1][1] != "open" {
		t.Errorf("entries order = %v", entries)
	}
}

func TestRenderFlavours(t *testing.T) {
	g := graph.New()
	g.AddNode("Artifact", graph.Properties{"path": "/x"})
	res := &Result{
		Benchmark: "open",
		Tool:      "spade",
		Trials:    2,
		Target:    g,
		FG:        g,
		BG:        graph.New(),
	}
	rb := Render(res, BenchmarkOnly)
	if !contains(rb, "benchmark open under spade") || !contains(rb, "nresult(") {
		t.Errorf("rb rendering:\n%s", rb)
	}
	rg := Render(res, WithGeneralized)
	if !contains(rg, "generalized foreground") || !contains(rg, "generalized background") {
		t.Errorf("rg rendering:\n%s", rg)
	}
	rh := Render(res, HTMLPage)
	if !contains(rh, "<html>") || !contains(rh, "Benchmark graph") {
		t.Errorf("rh rendering:\n%s", rh)
	}
	// Empty result rendering.
	empty := &Result{Benchmark: "dup", Tool: "spade", Empty: true,
		Reason: ReasonNoNewStructure, FG: g, BG: g}
	if !contains(Render(empty, BenchmarkOnly), "EMPTY") {
		t.Error("empty rendering lacks marker")
	}
	if !contains(Render(empty, HTMLPage), "Empty result") {
		t.Error("empty html rendering lacks marker")
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
