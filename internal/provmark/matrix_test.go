package provmark_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/provmark"
)

func testPrograms(t *testing.T, names ...string) []benchprog.Program {
	t.Helper()
	out := make([]benchprog.Program, 0, len(names))
	for _, name := range names {
		prog, ok := benchprog.ByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		out = append(out, prog)
	}
	return out
}

// TestMatrixGrid: a (2 tools × 3 benchmarks) matrix run over a bounded
// pool yields one result per cell, addressable by grid index. Run with
// -race to check the worker pool and observer plumbing.
func TestMatrixGrid(t *testing.T) {
	recs := fastRecorders()
	m := provmark.Matrix{
		Recorders:  []capture.Recorder{recs["spade"], recs["opus"]},
		Benchmarks: testPrograms(t, "creat", "open", "rename"),
		Workers:    2,
	}
	cells, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	wantTool := []string{"spade", "spade", "spade", "opus", "opus", "opus"}
	wantBench := []string{"creat", "open", "rename", "creat", "open", "rename"}
	for i, cell := range cells {
		if cell.Index != i {
			t.Errorf("cell %d has index %d", i, cell.Index)
		}
		if cell.Tool != wantTool[i] || cell.Benchmark != wantBench[i] {
			t.Errorf("cell %d = %s/%s, want %s/%s", i, cell.Tool, cell.Benchmark, wantTool[i], wantBench[i])
		}
		if cell.Err != nil {
			t.Errorf("cell %s/%s: %v", cell.Tool, cell.Benchmark, cell.Err)
		} else if cell.Result == nil {
			t.Errorf("cell %s/%s has no result", cell.Tool, cell.Benchmark)
		}
	}
}

// TestMatrixRegistryTools: tools resolve through the capture registry,
// and unknown names fail before any work starts.
func TestMatrixRegistryTools(t *testing.T) {
	m := provmark.Matrix{
		Tools:      []string{"spade", "camflow"},
		Capture:    capture.Options{Fast: true},
		Benchmarks: testPrograms(t, "open"),
		Workers:    2,
	}
	cells, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, cell := range cells {
		if cell.Err != nil {
			t.Errorf("%s/%s: %v", cell.Tool, cell.Benchmark, cell.Err)
		}
	}

	bad := provmark.Matrix{Tools: []string{"no-such-tool"}, Benchmarks: testPrograms(t, "open")}
	if _, err := bad.Stream(context.Background()); err == nil {
		t.Error("unknown tool accepted")
	}
	empty := provmark.Matrix{Tools: []string{"spade"}}
	if _, err := empty.Stream(context.Background()); err == nil {
		t.Error("empty benchmark list accepted")
	}
}

// TestMatrixStreamYieldsIncrementally: results arrive on the stream as
// cells complete — the fast column's cell is delivered while the gated
// column is still blocked mid-recording.
func TestMatrixStreamYieldsIncrementally(t *testing.T) {
	gated := &gatedRecorder{gate: make(chan struct{})}
	m := provmark.Matrix{
		Recorders:        []capture.Recorder{fastRecorders()["spade"]},
		ContextRecorders: []capture.RecorderContext{gated},
		Benchmarks:       testPrograms(t, "creat"),
		Workers:          2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := m.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case cell, ok := <-stream:
		if !ok || cell.Err != nil || cell.Tool != "spade" {
			t.Fatalf("first streamed cell = %+v (ok=%v), want a spade result", cell, ok)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("no streamed result within 30s while gated cell blocks")
	}
	cancel() // releases the gated cell via ctx
	for range stream {
	}
}

// gatedRecorder blocks Record until its gate closes or ctx is done —
// the instrument for cancellation tests.
type gatedRecorder struct {
	gate    chan struct{}
	started atomic.Int32
}

func (r *gatedRecorder) Name() string       { return "gated" }
func (r *gatedRecorder) DefaultTrials() int { return 2 }
func (r *gatedRecorder) FilterGraphs() bool { return false }
func (r *gatedRecorder) Record(ctx context.Context, prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	r.started.Add(1)
	select {
	case <-r.gate:
		return gatedNative{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
func (r *gatedRecorder) Transform(n capture.Native) (*graph.Graph, error) {
	return graph.New(), nil
}

type gatedNative struct{}

func (gatedNative) Format() string { return "gated" }

// TestMatrixCancellationAbortsPromptly: cancelling the context mid-
// recording ends a matrix run well before the recorder would have
// finished on its own (the gate never opens).
func TestMatrixCancellationAbortsPromptly(t *testing.T) {
	rec := &gatedRecorder{gate: make(chan struct{})}
	m := provmark.Matrix{
		Recorders:        []capture.Recorder{fastRecorders()["spade"]},
		ContextRecorders: []capture.RecorderContext{rec},
		Benchmarks:       testPrograms(t, "creat", "open", "rename", "write"),
		Workers:          2,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := m.Stream(ctx)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for range stream {
		}
		close(done)
	}()
	// Wait until at least one gated recording is in flight, then cancel.
	for rec.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("matrix stream did not close promptly after cancellation")
	}
}

// TestRunContextCancellationMidRecording: with a natively context-aware
// recorder, cancellation interrupts a trial that is already blocked
// inside Record, and the pipeline returns context.Canceled.
func TestRunContextCancellationMidRecording(t *testing.T) {
	rec := &gatedRecorder{gate: make(chan struct{})}
	runner := provmark.NewContext(rec, provmark.WithTrials(3), provmark.WithParallelism(2))
	ctx, cancel := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	var runErr error
	start := time.Now()
	go func() {
		defer wg.Done()
		_, runErr = runner.RunContext(ctx, benchprog.Program{Name: "gated-bench"})
	}()
	for rec.started.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", runErr)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
