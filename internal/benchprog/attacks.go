package benchprog

// Long attack-chain scenarios (KindAttack): staged intrusions built
// from the same declarative vocabulary as the Table 2 suite, but many
// steps deep — privilege escalation followed by the activity it
// enables. They exist to be *detected*: the Datalog rules in
// examples/detection/suspicious.dl must flag the escalated task
// version and everything it taints in the provenance ProvMark derives
// for each chain (attacks_test.go holds that contract).
//
// All chains start root-capable (Cred "root", like privesc) so the
// setuid escalation succeeds, and every step from the credential
// change onward is target activity: a credential change hangs the rest
// of the process history off a new task version, so leaving later
// steps in the background would break ProvMark's monotonic-containment
// assumption (the same limitation the paper notes for exit/kill).

func init() {
	mustRegister(Scenario{
		Name:  "attack-exfil",
		Group: 3,
		Desc:  "escalate, read a secret, stage a world-readable copy",
		Cred:  CredRoot,
		Setup: []SetupOp{{Kind: "file", Path: "/stage/secret.txt", UID: 1000, Mode: 0o600}},
		Steps: []Instr{
			{Op: "open", Path: "/stage/secret.txt", Flags: []string{"rdwr"}, SaveFD: "sec"},
			{Op: "read", FD: "sec", N: 64},
			{Op: "setuid", Target: true, UID: 0},
			{Op: "read", Target: true, FD: "sec", N: 64},
			{Op: "creat", Target: true, Path: "/stage/exfil.txt", SaveFD: "out"},
			{Op: "write", Target: true, FD: "out", N: 64},
			{Op: "chmod", Target: true, Path: "/stage/exfil.txt", Mode: 0o444},
			{Op: "close", Target: true, FD: "out"},
		},
	}, KindAttack)

	mustRegister(Scenario{
		Name:  "attack-fork-taint",
		Group: 2,
		Desc:  "forked child escalates and taints a shared file",
		Cred:  CredRoot,
		Setup: []SetupOp{{Kind: "file", Path: "/stage/shared.txt", UID: 1000, Mode: 0o644}},
		Steps: []Instr{
			{Op: "fork", SaveProc: "p1"},
			{Op: "open", Proc: "p1", Path: "/stage/shared.txt", Flags: []string{"rdwr"}, SaveFD: "sh"},
			{Op: "setuid", Target: true, Proc: "p1", UID: 0},
			{Op: "write", Target: true, Proc: "p1", FD: "sh", N: 32},
			{Op: "fchmod", Target: true, Proc: "p1", FD: "sh", Mode: 0o666},
			{Op: "creat", Target: true, Proc: "p1", Path: "/stage/loot.txt", SaveFD: "lt"},
			{Op: "write", Target: true, Proc: "p1", FD: "lt", N: 32},
			{Op: "exit", Target: true, Proc: "p1"},
		},
	}, KindAttack)

	// The whole chain — fork included — is target activity, so the
	// background variant never creates the child at all and every child
	// task version survives graph subtraction as a real node. With a
	// background child present, its implicit task-end node would embed
	// onto the first foreground-only task version (the escalated one),
	// generalizing the cf:uid="0" property into a dummy boundary node
	// that the detection rules cannot match.
	mustRegister(Scenario{
		Name:  "attack-cover-tracks",
		Group: 3,
		Desc:  "forked child escalates, dumps a secret, unlinks the dump, drops privileges",
		Cred:  CredRoot,
		Setup: []SetupOp{{Kind: "file", Path: "/stage/secret.txt", UID: 1000, Mode: 0o600}},
		Steps: []Instr{
			{Op: "fork", Target: true, SaveProc: "p1"},
			{Op: "open", Target: true, Proc: "p1", Path: "/stage/secret.txt", Flags: []string{"rdwr"}, SaveFD: "sec"},
			{Op: "read", Target: true, Proc: "p1", FD: "sec", N: 64},
			{Op: "setuid", Target: true, Proc: "p1", UID: 0},
			{Op: "creat", Target: true, Proc: "p1", Path: "/stage/dump.txt", SaveFD: "dmp"},
			{Op: "write", Target: true, Proc: "p1", FD: "dmp", N: 64},
			{Op: "close", Target: true, Proc: "p1", FD: "dmp"},
			{Op: "unlink", Target: true, Proc: "p1", Path: "/stage/dump.txt"},
			// Dropping back to uid 1000 is what the detection rules'
			// stratified negation probes: dropped(P) holds, so the chain
			// is suspicious but not unmitigated.
			{Op: "setuid", Target: true, Proc: "p1", UID: 1000},
		},
	}, KindAttack)
}

// AttackChains returns the attack-chain suite compiled from the
// registry in registration order.
func AttackChains() []Program {
	names := ScenarioNames(KindAttack)
	out := make([]Program, 0, len(names))
	for _, name := range names {
		p, _ := ByName(name)
		out = append(out, p)
	}
	return out
}
