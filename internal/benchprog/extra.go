package benchprog

import (
	"fmt"
	"strconv"

	"provmark/internal/oskernel"
)

// SeedScaleProgram is the frozen closure form of the scalability
// benchmark of Section 5.2 (reference for differential tests): the
// target is a create-then-unlink pair repeated `repeat` times (scale1,
// scale2, scale4, scale8 in Figures 8–10).
func SeedScaleProgram(repeat int) Program {
	steps := make([]Step, 0, repeat)
	for i := 0; i < repeat; i++ {
		path := "/stage/scale" + strconv.Itoa(i) + ".txt"
		steps = append(steps, step(true, func(w *World) error {
			ret, errno := w.K.Creat(w.Main, path)
			if errno != oskernel.OK {
				return expectOK(ret, errno)
			}
			ret, errno = w.K.Unlink(w.Main, path)
			return expectOK(ret, errno)
		}))
	}
	return Program{
		Name:  "scale" + strconv.Itoa(repeat),
		Group: 1,
		Desc:  fmt.Sprintf("create+unlink repeated %d times", repeat),
		Steps: steps,
	}
}

// SeedFailedRename is the frozen closure form of the Section 3.1
// "Alice" benchmark: an unprivileged
// user attempts to overwrite /etc/passwd by renaming another file. The
// call fails with EACCES; which tools record the attempt is exactly
// what the use case probes.
func SeedFailedRename() Program {
	return Program{
		Name:  "rename-failed",
		Group: 1,
		Desc:  "unprivileged rename onto /etc/passwd (EACCES expected)",
		Setup: setupFile("/stage/evil.txt"),
		Steps: []Step{
			step(true, func(w *World) error {
				ret, errno := w.K.Rename(w.Main, "/stage/evil.txt", "/etc/passwd")
				if errno == oskernel.OK {
					return fmt.Errorf("rename unexpectedly succeeded (ret=%d)", ret)
				}
				return nil // failure is the intended behaviour
			}),
		},
	}
}

// SeedRepeatedReads is the frozen closure form of the Section 3.1
// "Bob" benchmark used to probe
// SPADE's IORuns filter: the target performs `count` consecutive reads
// of the same file, which the filter should coalesce into one edge.
func SeedRepeatedReads(count int) Program {
	return Program{
		Name:  "reads" + strconv.Itoa(count),
		Group: 1,
		Desc:  fmt.Sprintf("%d consecutive reads of one file", count),
		Setup: setupFile("/stage/test.txt"),
		Steps: []Step{
			step(false, func(w *World) error {
				ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
				w.FD["id"] = int(ret)
				return expectOK(ret, errno)
			}),
			step(true, func(w *World) error {
				for i := 0; i < count; i++ {
					if ret, errno := w.K.Read(w.Main, w.FD["id"], 4); errno != oskernel.OK {
						return expectOK(ret, errno)
					}
				}
				return nil
			}),
		},
	}
}

// SeedPrivilegeEscalation is the frozen closure form of the Section
// 3.1 "Dora" benchmark: a process
// reads a sensitive file, then escalates privilege (setuid 0) as the
// target activity, then overwrites the file.
func SeedPrivilegeEscalation() Program {
	return Program{
		Name:  "privesc",
		Group: 3,
		Desc:  "privilege escalation step inside a larger activity",
		Setup: func(k *oskernel.Kernel) { k.MkFile("/stage/secret.txt", 1000, 0o644) },
		Cred:  &oskernel.Cred{}, // starts root-capable so setuid succeeds
		Steps: []Step{
			step(false, func(w *World) error {
				ret, errno := w.K.Open(w.Main, "/stage/secret.txt", oskernel.ORdwr)
				w.FD["id"] = int(ret)
				if errno != oskernel.OK {
					return expectOK(ret, errno)
				}
				n, rerr := w.K.Read(w.Main, w.FD["id"], 16)
				return expectOK(n, rerr)
			}),
			// The escalation and the write it enables are both target
			// activity: anything after a credential change hangs off a
			// new task version, so leaving it in the background would
			// break ProvMark's monotonic-containment assumption (the
			// same limitation the paper notes for exit/kill).
			step(true, func(w *World) error {
				ret, errno := w.K.Setuid(w.Main, 0)
				return expectOK(ret, errno)
			}),
			step(true, func(w *World) error {
				n, errno := w.K.Write(w.Main, w.FD["id"], 16)
				return expectOK(n, errno)
			}),
		},
	}
}
