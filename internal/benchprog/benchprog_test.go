package benchprog

import (
	"testing"

	"provmark/internal/oskernel"
)

// TestAllProgramsRunBothVariants: every registered benchmark must
// execute successfully as foreground and background in a fresh kernel.
func TestAllProgramsRunBothVariants(t *testing.T) {
	for _, name := range Names() {
		prog, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%s) failed", name)
		}
		for _, v := range []Variant{Background, Foreground} {
			k := oskernel.New()
			if err := Run(k, prog, v); err != nil {
				t.Errorf("%s/%s: %v", name, v, err)
			}
		}
	}
}

func TestBenchmarkCountMatchesTable2(t *testing.T) {
	if got := len(Names()); got != 44 {
		t.Errorf("registered %d benchmarks, Table 2 has 44", got)
	}
}

func TestGroupsMatchTable1(t *testing.T) {
	counts := map[int]int{}
	for _, name := range Names() {
		prog, _ := ByName(name)
		counts[prog.Group]++
	}
	want := map[int]int{1: 23, 2: 6, 3: 12, 4: 3}
	for g, n := range want {
		if counts[g] != n {
			t.Errorf("group %d has %d benchmarks, want %d", g, counts[g], n)
		}
	}
}

// TestBackgroundSkipsTargetSteps: the background variant of close must
// leave the descriptor open (the close step is the target).
func TestBackgroundSkipsTargetSteps(t *testing.T) {
	prog, _ := ByName("close")
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Background); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "close" {
			t.Error("background run performed the target close")
		}
	}
	// Foreground performs it.
	k2 := oskernel.New()
	tap2 := &oskernel.TapBuffer{}
	k2.Register(tap2)
	if err := Run(k2, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tap2.AuditEvents {
		if ev.Syscall == "close" && ev.Success {
			found = true
		}
	}
	if !found {
		t.Error("foreground run did not perform the target close")
	}
}

func TestVariantString(t *testing.T) {
	if Background.String() != "bg" || Foreground.String() != "fg" {
		t.Error("variant names wrong")
	}
}

func TestScaleProgram(t *testing.T) {
	prog := ScaleProgram(4)
	// One instruction per syscall: 4 creat+unlink pairs.
	if prog.Name != "scale4" || len(prog.Steps) != 8 {
		t.Fatalf("scale program: %s with %d steps", prog.Name, len(prog.Steps))
	}
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	creats, unlinks := 0, 0
	for _, ev := range tap.AuditEvents {
		switch ev.Syscall {
		case "creat":
			creats++
		case "unlink":
			unlinks++
		}
	}
	if creats != 4 || unlinks != 4 {
		t.Errorf("creats=%d unlinks=%d, want 4/4", creats, unlinks)
	}
}

func TestFailedRenameActuallyFails(t *testing.T) {
	prog := FailedRename()
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "rename" {
			seen = true
			if ev.Success {
				t.Error("rename unexpectedly succeeded")
			}
		}
	}
	if !seen {
		t.Error("rename never attempted")
	}
	if ino, ok := k.Lookup("/etc/passwd"); !ok || ino.UID != 0 {
		t.Error("/etc/passwd was replaced")
	}
}

func TestRepeatedReads(t *testing.T) {
	prog := RepeatedReads(5)
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "read" {
			reads++
		}
	}
	if reads != 5 {
		t.Errorf("reads = %d, want 5", reads)
	}
}

func TestPrivilegeEscalationProgram(t *testing.T) {
	prog := PrivilegeEscalation()
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	setuidSeen := false
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "setuid" && ev.Success {
			setuidSeen = true
		}
	}
	if !setuidSeen {
		t.Error("privilege escalation target not executed")
	}
	// Background variant must skip only the setuid.
	k2 := oskernel.New()
	tap2 := &oskernel.TapBuffer{}
	k2.Register(tap2)
	if err := Run(k2, prog, Background); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tap2.AuditEvents {
		if ev.Syscall == "setuid" {
			t.Error("background variant performed the target setuid")
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("unknown benchmark resolved")
	}
}
