package benchprog

import (
	"fmt"

	"provmark/internal/oskernel"
)

// A Scenario is a benchmark program expressed as data instead of Go
// closures: a list of syscall instructions, each flagged background or
// target exactly like the paper's #ifdef TARGET convention. Because a
// scenario is pure data it can be validated, generated, composed,
// serialized to JSON, and shipped over the /v1 wire as part of a job
// spec — then compiled into a Program and run through the unchanged
// four-stage pipeline.
type Scenario struct {
	Name  string `json:"name"`
	Group int    `json:"group,omitempty"`
	Desc  string `json:"desc,omitempty"`
	// Cred selects the benchmark process credentials: "" or CredUser
	// for the default unprivileged user, CredRoot for root (privileged
	// operations such as chown).
	Cred  string    `json:"cred,omitempty"`
	Setup []SetupOp `json:"setup,omitempty"`
	Steps []Instr   `json:"steps"`
}

// Credential vocabulary for Scenario.Cred.
const (
	CredUser = "user"
	CredRoot = "root"
)

// SetupOp stages one filesystem object before the benchmark process
// launches (the staging-directory preparation of Section 4).
type SetupOp struct {
	// Kind is "file" or "dir".
	Kind string `json:"kind"`
	Path string `json:"path"`
	UID  int    `json:"uid"`
	Mode uint32 `json:"mode"`
}

// Instr is one instruction of a scenario: an op from the kernel's
// syscall dispatch table plus the arguments that op consumes. File
// descriptors and processes created by one instruction are carried to
// later ones through named slots (save_fd / fd, save_proc / proc) —
// the reified "local variables" of the closure programs.
type Instr struct {
	// Op names a dispatch-table syscall.
	Op string `json:"op"`
	// Target marks the instruction as target activity (#ifdef TARGET):
	// skipped in the background variant.
	Target bool `json:"target,omitempty"`
	// Proc names the process slot executing the call ("", "main", or a
	// save_proc slot).
	Proc string `json:"proc,omitempty"`
	// Count repeats the call (consecutive identical calls, e.g. the
	// repeated-reads probe); 0 and 1 both mean once.
	Count int `json:"count,omitempty"`

	Path  string `json:"path,omitempty"`
	Path2 string `json:"path2,omitempty"`
	// FD / FD2 reference descriptor slots by name; SaveFD / SaveFD2
	// bind the returned descriptor(s).
	FD      string   `json:"fd,omitempty"`
	FD2     string   `json:"fd2,omitempty"`
	SaveFD  string   `json:"save_fd,omitempty"`
	SaveFD2 string   `json:"save_fd2,omitempty"`
	NewFD   int      `json:"new_fd,omitempty"`
	DirFD   int      `json:"dir_fd,omitempty"`
	Flags   []string `json:"flags,omitempty"`
	Mode    uint32   `json:"mode,omitempty"`
	N       int64    `json:"n,omitempty"`
	Off     int64    `json:"off,omitempty"`
	Len     int64    `json:"len,omitempty"`
	UID     int      `json:"uid,omitempty"`
	EUID    int      `json:"euid,omitempty"`
	SUID    int      `json:"suid,omitempty"`
	GID     int      `json:"gid,omitempty"`
	EGID    int      `json:"egid,omitempty"`
	SGID    int      `json:"sgid,omitempty"`
	// PID is a literal pid; PIDOf resolves a process slot's pid.
	PID   int      `json:"pid,omitempty"`
	PIDOf string   `json:"pid_of,omitempty"`
	Sig   int      `json:"sig,omitempty"`
	Exe   string   `json:"exe,omitempty"`
	Argv  []string `json:"argv,omitempty"`
	Code  int      `json:"code,omitempty"`
	// SaveProc names the slot a process-creating op binds its child to
	// (default "child").
	SaveProc string `json:"save_proc,omitempty"`
	// Errno is the expected outcome: "" means the call must succeed,
	// ErrnoAny that it must fail with any errno, and a symbolic errno
	// name ("EACCES", …) that it must fail with exactly that errno.
	Errno string `json:"errno,omitempty"`
}

// ErrnoAny marks an instruction that must fail, with any errno.
const ErrnoAny = "any"

// openFlagNames maps symbolic open-flag names to kernel flag bits, in
// canonical encoding order. "rdonly" is zero and normalizes away.
var openFlagOrder = []string{"wronly", "rdwr", "creat", "trunc", "append", "cloexec"}

var openFlagBits = map[string]int{
	"rdonly":  oskernel.ORdonly,
	"wronly":  oskernel.OWronly,
	"rdwr":    oskernel.ORdwr,
	"creat":   oskernel.OCreat,
	"trunc":   oskernel.OTrunc,
	"append":  oskernel.OAppend,
	"cloexec": oskernel.OCloexec,
}

// OpenFlagNames lists the symbolic open-flag vocabulary in canonical
// encoding order (the zero-valued "rdonly" is not included: it
// normalizes away in the codec). Exported for scenario synthesis,
// which samples flag sets from this vocabulary.
func OpenFlagNames() []string {
	return append([]string(nil), openFlagOrder...)
}

// OpenFlagBits maps a symbolic flag list to the kernel's open-flag
// bits — the compiler's flag parsing, exported so synthesized and
// shadow-executed instructions resolve flags identically.
func OpenFlagBits(flags []string) (int, error) {
	bits := 0
	for _, f := range flags {
		b, ok := openFlagBits[f]
		if !ok {
			return 0, fmt.Errorf("benchprog: unknown open flag %q", f)
		}
		bits |= b
	}
	return bits, nil
}

// saveProcSlot resolves the effective save_proc slot name of a
// process-creating instruction.
func (in Instr) saveProcSlot() string {
	if in.SaveProc != "" {
		return in.SaveProc
	}
	return "child"
}

// argFields maps the set fields of an instruction onto the dispatch
// table's argument-field vocabulary (zero-valued fields are
// indistinguishable from absent ones and never reported).
func (in Instr) argFields() []oskernel.Field {
	var out []oskernel.Field
	add := func(set bool, f oskernel.Field) {
		if set {
			out = append(out, f)
		}
	}
	add(in.Path != "", oskernel.FPath)
	add(in.Path2 != "", oskernel.FPath2)
	add(in.FD != "", oskernel.FFD)
	add(in.FD2 != "", oskernel.FFD2)
	add(in.NewFD != 0, oskernel.FNewFD)
	add(in.DirFD != 0, oskernel.FDirFD)
	add(len(in.Flags) > 0, oskernel.FFlags)
	add(in.Mode != 0, oskernel.FMode)
	add(in.N != 0, oskernel.FN)
	add(in.Off != 0, oskernel.FOff)
	add(in.Len != 0, oskernel.FLen)
	add(in.UID != 0, oskernel.FUID)
	add(in.EUID != 0, oskernel.FEUID)
	add(in.SUID != 0, oskernel.FSUID)
	add(in.GID != 0, oskernel.FGID)
	add(in.EGID != 0, oskernel.FEGID)
	add(in.SGID != 0, oskernel.FSGID)
	add(in.PID != 0 || in.PIDOf != "", oskernel.FPID)
	add(in.Sig != 0, oskernel.FSig)
	add(in.Exe != "", oskernel.FExe)
	add(len(in.Argv) > 0, oskernel.FArgv)
	add(in.Code != 0, oskernel.FCode)
	return out
}

// Validate checks the scenario against the dispatch table: every op
// must exist, carry only arguments its table entry consumes, bind
// result slots only when the op returns them, and reference fd/proc
// slots that an earlier instruction of the same variant defines (a
// background instruction cannot depend on a slot only a skipped target
// instruction would have bound).
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	for _, r := range s.Name {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.') {
			return fmt.Errorf("scenario %q: name may only contain letters, digits, '-', '_' and '.'", s.Name)
		}
	}
	if s.Group < 0 || s.Group > 4 {
		return fmt.Errorf("scenario %q: group %d outside Table 1 range 0..4", s.Name, s.Group)
	}
	switch s.Cred {
	case "", CredUser, CredRoot:
	default:
		return fmt.Errorf("scenario %q: unknown cred %q (want %q or %q)", s.Name, s.Cred, CredUser, CredRoot)
	}
	for i, op := range s.Setup {
		if op.Kind != "file" && op.Kind != "dir" {
			return fmt.Errorf("scenario %q: setup %d: unknown kind %q (want file or dir)", s.Name, i, op.Kind)
		}
		if op.Path == "" {
			return fmt.Errorf("scenario %q: setup %d: missing path", s.Name, i)
		}
	}
	if len(s.Steps) == 0 {
		return fmt.Errorf("scenario %q: no steps", s.Name)
	}

	// Slot discipline: track which fd and proc slots each variant has
	// bound so far. Background instructions see only background
	// definitions; target instructions see everything before them.
	type defs struct{ bgFD, fgFD, bgProc, fgProc map[string]bool }
	d := defs{map[string]bool{}, map[string]bool{}, map[string]bool{"main": true}, map[string]bool{"main": true}}
	fdDefined := func(slot string, target bool) bool {
		if target {
			return d.fgFD[slot]
		}
		return d.bgFD[slot]
	}
	procDefined := func(slot string, target bool) bool {
		if slot == "" {
			return true
		}
		if target {
			return d.fgProc[slot]
		}
		return d.bgProc[slot]
	}
	for i, in := range s.Steps {
		sys, ok := oskernel.Dispatch(in.Op)
		if !ok {
			return fmt.Errorf("scenario %q: step %d: unknown op %q", s.Name, i, in.Op)
		}
		for _, f := range in.argFields() {
			if !sys.Takes(f) {
				return fmt.Errorf("scenario %q: step %d: op %q does not take %q", s.Name, i, in.Op, f)
			}
		}
		for _, flag := range in.Flags {
			if _, ok := openFlagBits[flag]; !ok {
				return fmt.Errorf("scenario %q: step %d: unknown open flag %q", s.Name, i, flag)
			}
		}
		if in.Count < 0 {
			return fmt.Errorf("scenario %q: step %d: negative count", s.Name, i)
		}
		// A repeated process-creating call would rebind one proc slot,
		// leaving all but the last child without an exit sweep entry.
		if in.Count > 1 && sys.Returns == oskernel.RProc {
			return fmt.Errorf("scenario %q: step %d: op %q cannot repeat (each child needs its own save_proc slot)", s.Name, i, in.Op)
		}
		switch in.Errno {
		case "", ErrnoAny:
		default:
			e, ok := oskernel.ErrnoByName(in.Errno)
			if !ok || e == oskernel.OK {
				return fmt.Errorf("scenario %q: step %d: unknown errno %q", s.Name, i, in.Errno)
			}
		}
		if in.Op == "exit" && in.Errno != "" {
			return fmt.Errorf("scenario %q: step %d: exit has no errno to expect", s.Name, i)
		}
		if in.SaveFD != "" && sys.Returns != oskernel.RFD && sys.Returns != oskernel.RFDPair {
			return fmt.Errorf("scenario %q: step %d: op %q does not return a descriptor to save", s.Name, i, in.Op)
		}
		if in.SaveFD2 != "" && sys.Returns != oskernel.RFDPair {
			return fmt.Errorf("scenario %q: step %d: op %q does not return a descriptor pair", s.Name, i, in.Op)
		}
		if in.SaveProc != "" && sys.Returns != oskernel.RProc {
			return fmt.Errorf("scenario %q: step %d: op %q does not create a process to save", s.Name, i, in.Op)
		}
		if !procDefined(in.Proc, in.Target) {
			return fmt.Errorf("scenario %q: step %d: undefined process slot %q", s.Name, i, in.Proc)
		}
		if in.PIDOf != "" && in.PID != 0 {
			return fmt.Errorf("scenario %q: step %d: pid and pid_of are mutually exclusive", s.Name, i)
		}
		if in.PIDOf != "" && in.PIDOf != "main" && !procDefined(in.PIDOf, in.Target) {
			return fmt.Errorf("scenario %q: step %d: undefined process slot %q", s.Name, i, in.PIDOf)
		}
		for _, slot := range []string{in.FD, in.FD2} {
			if slot != "" && !fdDefined(slot, in.Target) {
				return fmt.Errorf("scenario %q: step %d: undefined fd slot %q", s.Name, i, slot)
			}
		}
		if sys.Takes(oskernel.FFD) && in.FD == "" {
			return fmt.Errorf("scenario %q: step %d: op %q requires an fd slot", s.Name, i, in.Op)
		}
		if sys.Takes(oskernel.FFD2) && in.FD2 == "" {
			return fmt.Errorf("scenario %q: step %d: op %q requires an fd2 slot", s.Name, i, in.Op)
		}
		// Record this instruction's bindings. A successful outcome is
		// required for a binding (expectOK semantics), so instructions
		// expected to fail define nothing.
		if in.Errno == "" {
			for _, slot := range []string{in.SaveFD, in.SaveFD2} {
				if slot == "" {
					continue
				}
				d.fgFD[slot] = true
				if !in.Target {
					d.bgFD[slot] = true
				}
			}
			if sys.Returns == oskernel.RProc {
				slot := in.saveProcSlot()
				d.fgProc[slot] = true
				if !in.Target {
					d.bgProc[slot] = true
				}
			}
		}
	}
	return nil
}

// Compile translates the scenario into a runnable Program. The
// compiled steps dispatch through the kernel's syscall table and keep
// all run state in the per-run World, so one compiled Program can be
// run repeatedly without sharing state between trials.
func (s Scenario) Compile() (Program, error) {
	if err := s.Validate(); err != nil {
		return Program{}, fmt.Errorf("benchprog: compile: %w", err)
	}
	prog := Program{Name: s.Name, Group: s.Group, Desc: s.Desc}
	if s.Cred == CredRoot {
		prog.Cred = &oskernel.Cred{}
	}
	if len(s.Setup) > 0 {
		setup := append([]SetupOp(nil), s.Setup...)
		prog.Setup = func(k *oskernel.Kernel) {
			for _, op := range setup {
				if op.Kind == "dir" {
					k.MkDir(op.Path, op.UID, op.Mode)
				} else {
					k.MkFile(op.Path, op.UID, op.Mode)
				}
			}
		}
	}
	prog.Steps = make([]Step, 0, len(s.Steps))
	for _, in := range s.Steps {
		prog.Steps = append(prog.Steps, Step{Target: in.Target, Do: compileInstr(in)})
	}
	return prog, nil
}

// MustCompile is Compile for registered (pre-validated) scenarios.
func (s Scenario) MustCompile() Program {
	prog, err := s.Compile()
	if err != nil {
		panic(err)
	}
	return prog
}

// compileInstr lowers one instruction to a step closure. Argument
// parsing happens once at compile time; slot resolution happens at run
// time against the World.
func compileInstr(in Instr) func(w *World) error {
	sys, _ := oskernel.Dispatch(in.Op)
	flags := 0
	for _, f := range in.Flags {
		flags |= openFlagBits[f]
	}
	wantAny := in.Errno == ErrnoAny
	var wantErrno oskernel.Errno
	if !wantAny && in.Errno != "" {
		wantErrno, _ = oskernel.ErrnoByName(in.Errno)
	}
	count := in.Count
	if count < 1 {
		count = 1
	}
	return func(w *World) error {
		p, err := w.Proc(in.Proc)
		if err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			a := oskernel.Args{
				Path: in.Path, Path2: in.Path2,
				NewFD: in.NewFD, DirFD: in.DirFD,
				Flags: flags, Mode: in.Mode,
				N: in.N, Off: in.Off, Len: in.Len,
				UID: in.UID, EUID: in.EUID, SUID: in.SUID,
				GID: in.GID, EGID: in.EGID, SGID: in.SGID,
				PID: in.PID, Sig: in.Sig,
				Exe: in.Exe, Argv: in.Argv, Code: in.Code,
			}
			if in.FD != "" {
				fd, ok := w.FD[in.FD]
				if !ok {
					return fmt.Errorf("unknown fd slot %q", in.FD)
				}
				a.FD = fd
			}
			if in.FD2 != "" {
				fd, ok := w.FD[in.FD2]
				if !ok {
					return fmt.Errorf("unknown fd slot %q", in.FD2)
				}
				a.FD2 = fd
			}
			if in.PIDOf != "" {
				victim, err := w.Proc(in.PIDOf)
				if err != nil {
					return err
				}
				a.PID = victim.PID
			}
			out := sys.Invoke(w.K, p, a)
			switch {
			case in.Op == "exit":
				// exit does not return; nothing to check.
			case wantAny:
				if out.Errno == oskernel.OK {
					return fmt.Errorf("%s unexpectedly succeeded (ret=%d)", in.Op, out.Ret)
				}
			case wantErrno != oskernel.OK:
				if out.Errno == oskernel.OK {
					return fmt.Errorf("%s unexpectedly succeeded (ret=%d)", in.Op, out.Ret)
				}
				if out.Errno != wantErrno {
					return fmt.Errorf("%s failed with %s, want %s", in.Op, out.Errno.Error(), wantErrno.Error())
				}
			default:
				if out.Errno != oskernel.OK {
					return fmt.Errorf("syscall failed: %s", out.Errno.Error())
				}
			}
			if out.Errno == oskernel.OK {
				if in.SaveFD != "" {
					w.FD[in.SaveFD] = int(out.Ret)
				}
				if in.SaveFD2 != "" {
					w.FD[in.SaveFD2] = int(out.Ret2)
				}
				if out.Child != nil {
					w.SetProc(in.saveProcSlot(), out.Child)
				}
			}
		}
		return nil
	}
}
