package synth

import (
	"fmt"
	"math/rand"

	"provmark/internal/benchprog"
	"provmark/internal/oskernel"
)

// Options bounds the shape of synthesized scenarios.
type Options struct {
	// MinSteps / MaxSteps bound the instruction count (defaults 4, 12).
	MinSteps, MaxSteps int
	// MaxProcs caps the child processes a scenario may create
	// (default 2).
	MaxProcs int
	// Candidates is the per-step tournament size: how many candidate
	// instructions are trialed before the highest-novelty one is
	// accepted (default 6).
	Candidates int
}

func (o Options) withDefaults() Options {
	if o.MinSteps <= 0 {
		o.MinSteps = 4
	}
	if o.MaxSteps < o.MinSteps {
		o.MaxSteps = o.MinSteps + 8
	}
	if o.MaxProcs <= 0 {
		o.MaxProcs = 2
	}
	if o.Candidates <= 0 {
		o.Candidates = 6
	}
	return o
}

// Stats counts the synthesizer's work.
type Stats struct {
	// Emitted is how many scenarios Next returned.
	Emitted int `json:"emitted"`
	// Attempts is how many generation attempts ran (retries included).
	Attempts int `json:"attempts"`
	// CandidateRejects counts candidate instructions dropped by the
	// shadow trial (unresolvable slots, variant-dependent errnos,
	// non-uniform repeat outcomes).
	CandidateRejects int `json:"candidate_rejects"`
}

// Synthesizer is a seeded, deterministic scenario generator. The same
// seed and options replay the same scenario sequence; coverage state
// accumulates across Next calls, so a campaign's later scenarios steer
// away from shapes its earlier ones already exercised.
type Synthesizer struct {
	seed  int64
	rng   *rand.Rand
	opts  Options
	cov   *Coverage
	seq   int
	stats Stats
}

// New builds a synthesizer. Determinism contract: New(seed, opts)
// followed by n Next calls yields the same n scenarios on every run
// and platform.
func New(seed int64, opts Options) *Synthesizer {
	return &Synthesizer{
		seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
		opts: opts.withDefaults(),
		cov:  NewCoverage(),
	}
}

// Coverage exposes the accumulated coverage map.
func (s *Synthesizer) Coverage() *Coverage { return s.cov }

// Stats snapshots the synthesizer counters.
func (s *Synthesizer) Stats() Stats { return s.stats }

// Next synthesizes one scenario. The result is guaranteed — by shadow
// execution during generation plus a final compile-and-run check — to
// pass the static validator, compile, and execute cleanly in both
// variants. An error here means generation itself is wedged (it does
// not happen for any seed in practice; the retry bound is a backstop).
func (s *Synthesizer) Next() (benchprog.Scenario, error) {
	for attempt := 0; attempt < 64; attempt++ {
		s.stats.Attempts++
		scn, ok := s.generate()
		if !ok {
			continue
		}
		if err := Verify(scn); err != nil {
			// The shadow and the compiler disagreed — should be
			// impossible; regenerate rather than emit a broken scenario.
			continue
		}
		s.seq++
		s.stats.Emitted++
		return scn, nil
	}
	return benchprog.Scenario{}, fmt.Errorf("synth: no viable scenario after 64 attempts (seed %d, #%d)", s.seed, s.seq)
}

// Verify is the full acceptance check a synthesized scenario must
// pass: static validation, compilation, and a clean execution of both
// variants in a fresh bare kernel.
func Verify(scn benchprog.Scenario) error {
	if err := scn.Validate(); err != nil {
		return err
	}
	prog, err := scn.Compile()
	if err != nil {
		return err
	}
	for _, v := range []benchprog.Variant{benchprog.Background, benchprog.Foreground} {
		if err := benchprog.Run(oskernel.New(), prog, v); err != nil {
			return fmt.Errorf("%s variant: %w", v, err)
		}
	}
	return nil
}

// variantState tracks the slots one variant has available: fd slots
// ever bound (a closed slot stays usable — EBADF outcomes are coverage
// too), child proc slots ever bound, and the subset still alive.
type variantState struct {
	fds       []string
	procsAll  []string
	procsLive []string
}

func (v *variantState) liveIndex(slot string) int {
	for i, p := range v.procsLive {
		if p == slot {
			return i
		}
	}
	return -1
}

func (v *variantState) dropLive(slot string) {
	if i := v.liveIndex(slot); i >= 0 {
		v.procsLive = append(v.procsLive[:i], v.procsLive[i+1:]...)
	}
}

// genState is one in-progress scenario.
type genState struct {
	cred      string
	setup     []benchprog.SetupOp
	steps     []benchprog.Instr
	bg, fg    variantState
	paths     []string
	fdSeq     int
	procSeq   int
	lastOp    string
	lastClass string
}

// opPool is the weighted op vocabulary: every dispatch-table op once,
// with the structurally central ops (descriptor producers and users)
// repeated so random rolls find runnable candidates quickly. The pool
// is derived from the live dispatch table, so a new syscall in the
// table automatically enters the synthesis vocabulary.
var opPool = buildOpPool()

func buildOpPool() []string {
	weights := map[string]int{
		"open": 4, "creat": 3, "read": 3, "write": 3, "close": 2,
		"dup": 2, "pipe": 2, "unlink": 2, "rename": 2, "fork": 2,
	}
	var pool []string
	for _, op := range oskernel.Syscalls() {
		w := weights[op]
		if w == 0 {
			w = 1
		}
		for i := 0; i < w; i++ {
			pool = append(pool, op)
		}
	}
	return pool
}

var flagSets = [][]string{
	nil, // rdonly
	{"wronly"},
	{"rdwr"},
	{"wronly", "creat"},
	{"rdwr", "creat"},
	{"wronly", "creat", "trunc"},
	{"wronly", "append"},
	{"cloexec"},
}

var modePool = []uint32{0, 0o600, 0o644, 0o755, 0o444}

var idPool = []int{0, 1000, 1001}

// generate runs one scenario attempt: roll a skeleton (setup, cred,
// length), then grow the step list one tournament-selected instruction
// at a time, shadow-trialing every candidate so each accepted step
// carries its true expected errno.
func (s *Synthesizer) generate() (benchprog.Scenario, bool) {
	g := s.skeleton()
	n := s.opts.MinSteps + s.rng.Intn(s.opts.MaxSteps-s.opts.MinSteps+1)
	for len(g.steps) < n {
		last := len(g.steps) == n-1
		in, keys, ok := s.tournament(g, last)
		if !ok {
			if len(g.steps) >= s.opts.MinSteps {
				// Force the final step to be target activity and stop
				// growing; an earlier stall means the attempt failed.
				if in, keys, ok = s.tournament(g, true); !ok {
					break
				}
				s.accept(g, in, keys)
				break
			}
			return benchprog.Scenario{}, false
		}
		s.accept(g, in, keys)
	}
	if len(g.steps) < s.opts.MinSteps || !hasTarget(g.steps) {
		return benchprog.Scenario{}, false
	}
	return benchprog.Scenario{
		Name:  fmt.Sprintf("synth-s%d-%d", s.seed, s.seq),
		Desc:  fmt.Sprintf("synthesized scenario (seed %d, #%d)", s.seed, s.seq),
		Cred:  g.cred,
		Setup: g.setup,
		Steps: g.steps,
	}, true
}

func hasTarget(steps []benchprog.Instr) bool {
	for _, in := range steps {
		if in.Target {
			return true
		}
	}
	return false
}

// skeleton rolls the scenario frame: staged files, credentials, and
// the path vocabulary the steps will draw from.
func (s *Synthesizer) skeleton() *genState {
	g := &genState{lastOp: "^", lastClass: "m"}
	add := func(kind, path string, uid int, mode uint32) {
		g.setup = append(g.setup, benchprog.SetupOp{Kind: kind, Path: path, UID: uid, Mode: mode})
		g.paths = append(g.paths, path)
	}
	add("file", "/stage/a.txt", 1000, 0o644)
	if s.rng.Float64() < 0.6 {
		add("file", "/stage/b.txt", 1000, 0o644)
	}
	if s.rng.Float64() < 0.3 {
		// Root-owned, unreadable by the default user: EACCES territory.
		add("file", "/stage/locked.txt", 0, 0o600)
	}
	if s.rng.Float64() < 0.2 {
		add("dir", "/stage/d", 1000, 0o755)
		g.paths = append(g.paths, "/stage/d/in.txt")
	}
	// Paths that do not (yet) exist, a shared system file, and a path
	// with a missing parent round out the vocabulary.
	g.paths = append(g.paths, "/stage/n1.txt", "/stage/n2.txt", "/stage/missing.txt", "/etc/passwd")
	if s.rng.Float64() < 0.25 {
		g.cred = benchprog.CredRoot
	}
	return g
}

// tournament trials up to Candidates viable candidate instructions and
// returns the one whose coverage keys score highest (first wins ties —
// rng order keeps selection deterministic).
func (s *Synthesizer) tournament(g *genState, forceTarget bool) (benchprog.Instr, []string, bool) {
	var (
		best      benchprog.Instr
		bestKeys  []string
		bestScore = -1.0
	)
	rolls := s.opts.Candidates * 4
	found := 0
	for r := 0; r < rolls && found < s.opts.Candidates; r++ {
		in, ok := s.roll(g, forceTarget)
		if !ok {
			continue
		}
		errno, ok := s.trial(g, in)
		if !ok {
			s.stats.CandidateRejects++
			continue
		}
		if errno != "" {
			if _, known := oskernel.ErrnoByName(errno); !known {
				s.stats.CandidateRejects++
				continue
			}
			// A failed call binds nothing; drop the save slots so the
			// scenario's slot discipline matches what actually happens.
			in.SaveFD, in.SaveFD2, in.SaveProc = "", "", ""
		}
		in.Errno = errno
		found++
		keys := s.coverageKeys(g, in)
		if score := s.cov.score(keys); score > bestScore {
			best, bestKeys, bestScore = in, keys, score
		}
	}
	if bestScore < 0 {
		return benchprog.Instr{}, nil, false
	}
	return best, bestKeys, true
}

// coverageKeys derives the coverage features one instruction would
// contribute.
func (s *Synthesizer) coverageKeys(g *genState, in benchprog.Instr) []string {
	out := "ok"
	if in.Errno != "" {
		out = in.Errno
	}
	role := "B"
	if in.Target {
		role = "T"
	}
	return []string{
		coverPair + g.lastOp + ">" + in.Op,
		coverOut + in.Op + "/" + out,
		coverProc + g.lastClass + ">" + procClass(in.Proc),
		coverRole + in.Op + "/" + role,
	}
}

func procClass(proc string) string {
	if proc == "" || proc == "main" {
		return "m"
	}
	return "c"
}

// trial replays the accepted prefix in fresh shadow kernels and
// executes the candidate on top, reporting the errno it produces. A
// background candidate must observe the same errno in both variants —
// its expectation has to hold whether or not the target steps ran.
func (s *Synthesizer) trial(g *genState, in benchprog.Instr) (string, bool) {
	fg, err := newShadow(g.cred, g.setup)
	if err != nil || !fg.replay(g.steps, true) {
		return "", false
	}
	e, ok := fg.exec(in)
	if !ok {
		return "", false
	}
	if !in.Target {
		bg, err := newShadow(g.cred, g.setup)
		if err != nil || !bg.replay(g.steps, false) {
			return "", false
		}
		eb, ok := bg.exec(in)
		if !ok || eb != e {
			return "", false
		}
	}
	return errnoName(e), true
}

// accept appends the instruction and folds its effects into the slot
// state of the variants that execute it.
func (s *Synthesizer) accept(g *genState, in benchprog.Instr, keys []string) {
	s.cov.note(keys)
	g.steps = append(g.steps, in)
	g.lastOp = in.Op
	g.lastClass = procClass(in.Proc)
	views := []*variantState{&g.fg}
	if !in.Target {
		views = append(views, &g.bg)
	}
	if in.Errno == "" {
		for _, v := range views {
			if in.SaveFD != "" {
				v.fds = append(v.fds, in.SaveFD)
			}
			if in.SaveFD2 != "" {
				v.fds = append(v.fds, in.SaveFD2)
			}
			if in.SaveProc != "" {
				v.procsAll = append(v.procsAll, in.SaveProc)
				v.procsLive = append(v.procsLive, in.SaveProc)
			}
		}
		if in.SaveFD != "" {
			g.fdSeq++
		}
		if in.SaveFD2 != "" {
			g.fdSeq++
		}
		if in.SaveProc != "" {
			g.procSeq++
		}
		// A proc that exits or is killed in either variant is retired
		// from both live sets, so no later instruction runs on (or
		// re-exits) a process that may already be dead in one variant.
		switch in.Op {
		case "exit":
			g.bg.dropLive(in.Proc)
			g.fg.dropLive(in.Proc)
		case "kill":
			g.bg.dropLive(in.PIDOf)
			g.fg.dropLive(in.PIDOf)
		}
	}
}

// roll builds one structurally valid candidate instruction against the
// current slot state, or reports that the rolled op is not satisfiable
// right now (no descriptor to consume, proc budget exhausted, …).
func (s *Synthesizer) roll(g *genState, forceTarget bool) (benchprog.Instr, bool) {
	target := forceTarget || s.rng.Float64() < 0.4
	view := &g.fg
	if !target {
		view = &g.bg
	}
	op := opPool[s.rng.Intn(len(opPool))]
	sys, _ := oskernel.Dispatch(op)
	in := benchprog.Instr{Op: op, Target: target}

	// Executing process: mostly main, sometimes a live child.
	if len(view.procsLive) > 0 && s.rng.Float64() < 0.4 {
		in.Proc = view.procsLive[s.rng.Intn(len(view.procsLive))]
	}

	switch op {
	case "exit":
		// Never exit main (later steps and the final sweep need it).
		if len(view.procsLive) == 0 {
			return in, false
		}
		in.Proc = view.procsLive[s.rng.Intn(len(view.procsLive))]
		return in, true
	case "kill":
		if len(view.procsAll) == 0 {
			return in, false
		}
		in.Proc = "" // the killer is main
		in.PIDOf = view.procsAll[s.rng.Intn(len(view.procsAll))]
		in.Sig = []int{9, 15}[s.rng.Intn(2)]
		return in, true
	case "fork", "vfork", "clone":
		if len(g.fg.procsAll) >= s.opts.MaxProcs {
			return in, false
		}
		in.SaveProc = fmt.Sprintf("p%d", g.procSeq+1)
		return in, true
	case "execve":
		in.Exe = "/usr/bin/helper"
		in.Argv = []string{"helper"}
		return in, true
	}

	for _, f := range sys.Fields {
		switch f {
		case oskernel.FPath:
			in.Path = g.paths[s.rng.Intn(len(g.paths))]
		case oskernel.FPath2:
			in.Path2 = g.paths[s.rng.Intn(len(g.paths))]
		case oskernel.FFD:
			if len(view.fds) == 0 {
				return in, false
			}
			in.FD = view.fds[s.rng.Intn(len(view.fds))]
		case oskernel.FFD2:
			if len(view.fds) == 0 {
				return in, false
			}
			in.FD2 = view.fds[s.rng.Intn(len(view.fds))]
		case oskernel.FNewFD:
			in.NewFD = s.rng.Intn(8)
		case oskernel.FDirFD:
			// AT_FDCWD-style zero: paths in the pool are absolute.
		case oskernel.FFlags:
			in.Flags = append([]string(nil), flagSets[s.rng.Intn(len(flagSets))]...)
		case oskernel.FMode:
			in.Mode = modePool[s.rng.Intn(len(modePool))]
		case oskernel.FN:
			in.N = int64(1 + s.rng.Intn(64))
		case oskernel.FOff:
			in.Off = int64(s.rng.Intn(128))
		case oskernel.FLen:
			in.Len = int64(s.rng.Intn(128))
		case oskernel.FUID:
			in.UID = idPool[s.rng.Intn(len(idPool))]
		case oskernel.FEUID:
			in.EUID = idPool[s.rng.Intn(len(idPool))]
		case oskernel.FSUID:
			in.SUID = idPool[s.rng.Intn(len(idPool))]
		case oskernel.FGID:
			in.GID = idPool[s.rng.Intn(len(idPool))]
		case oskernel.FEGID:
			in.EGID = idPool[s.rng.Intn(len(idPool))]
		case oskernel.FSGID:
			in.SGID = idPool[s.rng.Intn(len(idPool))]
		}
	}
	switch sys.Returns {
	case oskernel.RFD:
		in.SaveFD = fmt.Sprintf("f%d", g.fdSeq+1)
	case oskernel.RFDPair:
		in.SaveFD = fmt.Sprintf("f%d", g.fdSeq+1)
		in.SaveFD2 = fmt.Sprintf("f%d", g.fdSeq+2)
	}
	// Repeated identical calls (the IORuns probe shape) for plain
	// read/write ops only — repeats of binding or state-toggling ops
	// cannot carry one uniform expectation.
	switch op {
	case "read", "write", "pread", "pwrite":
		if s.rng.Float64() < 0.15 {
			in.Count = 2 + s.rng.Intn(3)
		}
	}
	return in, true
}
