package synth

import (
	"bytes"
	"testing"

	"provmark/internal/benchprog"
)

// TestSynthDeterminism: the same seed and options replay byte-identical
// scenario sequences — the contract campaigns, CI smoke runs, and
// divergence reports all build on.
func TestSynthDeterminism(t *testing.T) {
	const n = 25
	a, b := New(5, Options{}), New(5, Options{})
	for i := 0; i < n; i++ {
		sa, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		sb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		ea, err := benchprog.EncodeScenario(&sa)
		if err != nil {
			t.Fatal(err)
		}
		eb, err := benchprog.EncodeScenario(&sb)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ea, eb) {
			t.Fatalf("scenario #%d differs between identical synthesizers:\n%s\n%s", i, ea, eb)
		}
	}
}

// TestSynthScenariosClean: every synthesized scenario passes the static
// validator, compiles, executes cleanly in both variants, respects the
// step bounds, and contains target activity.
func TestSynthScenariosClean(t *testing.T) {
	n := 150
	if testing.Short() || raceDetector {
		n = 40
	}
	opts := Options{}.withDefaults()
	syn := New(11, Options{})
	for i := 0; i < n; i++ {
		scn, err := syn.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(scn); err != nil {
			data, _ := benchprog.EncodeScenario(&scn)
			t.Fatalf("scenario #%d fails verification: %v\n%s", i, err, data)
		}
		if len(scn.Steps) < opts.MinSteps || len(scn.Steps) > opts.MaxSteps {
			t.Errorf("scenario #%d has %d steps, want %d..%d", i, len(scn.Steps), opts.MinSteps, opts.MaxSteps)
		}
		hasTarget := false
		for _, in := range scn.Steps {
			if in.Target {
				hasTarget = true
			}
		}
		if !hasTarget {
			t.Errorf("scenario #%d has no target step", i)
		}
	}
	stats := syn.Stats()
	if stats.Emitted != n {
		t.Errorf("stats.Emitted = %d, want %d", stats.Emitted, n)
	}
}

// TestSynthStepBoundsRespectOptions: custom bounds flow through.
func TestSynthStepBoundsRespectOptions(t *testing.T) {
	syn := New(3, Options{MinSteps: 2, MaxSteps: 5})
	for i := 0; i < 15; i++ {
		scn, err := syn.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(scn.Steps) < 2 || len(scn.Steps) > 5 {
			t.Fatalf("scenario #%d has %d steps, want 2..5", i, len(scn.Steps))
		}
	}
}

// TestSynthCoverageGrows: coverage accumulates across Next calls — a
// later batch of scenarios must have strictly expanded the distinct
// key set, or the guidance loop is dead.
func TestSynthCoverageGrows(t *testing.T) {
	syn := New(2, Options{})
	for i := 0; i < 5; i++ {
		if _, err := syn.Next(); err != nil {
			t.Fatal(err)
		}
	}
	after5 := len(syn.Coverage().Keys())
	for i := 0; i < 20; i++ {
		if _, err := syn.Next(); err != nil {
			t.Fatal(err)
		}
	}
	after25 := len(syn.Coverage().Keys())
	if after5 == 0 {
		t.Fatal("no coverage keys after 5 scenarios")
	}
	if after25 <= after5 {
		t.Errorf("coverage stalled: %d distinct keys after 5 scenarios, %d after 25", after5, after25)
	}
	sum := syn.Coverage().Summarize()
	if sum.DistinctTotal != after25 {
		t.Errorf("Summarize().DistinctTotal = %d, want %d", sum.DistinctTotal, after25)
	}
	if sum.OpPairs == 0 || sum.Outcomes == 0 || sum.Roles == 0 {
		t.Errorf("coverage axes empty: %+v", sum)
	}
}

// FuzzSynthScenario: any (seed, budget) yields scenarios that pass the
// validator, compile, and execute without panicking — the synthesizer
// has no bad seeds.
func FuzzSynthScenario(f *testing.F) {
	f.Add(int64(7), byte(20))
	f.Add(int64(0), byte(1))
	f.Add(int64(-1), byte(3))
	f.Add(int64(1<<62), byte(5))
	f.Fuzz(func(t *testing.T, seed int64, budget byte) {
		n := int(budget%4) + 1
		syn := New(seed, Options{})
		for i := 0; i < n; i++ {
			scn, err := syn.Next()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if err := Verify(scn); err != nil {
				data, _ := benchprog.EncodeScenario(&scn)
				t.Fatalf("seed %d scenario #%d: %v\n%s", seed, i, err, data)
			}
		}
	})
}

// TestVerifyRejectsBrokenScenario: Verify is a real check, not a
// formality — a scenario with an impossible expectation fails it.
func TestVerifyRejectsBrokenScenario(t *testing.T) {
	scn := benchprog.Scenario{
		Name: "broken",
		Steps: []benchprog.Instr{
			{Op: "open", Path: "/stage/missing.txt", SaveFD: "f1", Errno: ""}, // actually ENOENT
			{Op: "close", Target: true, FD: "f1"},
		},
	}
	if err := Verify(scn); err == nil {
		t.Fatal("Verify accepted a scenario whose expectations cannot hold")
	}
}
