//go:build !race

package synth

const raceDetector = false
