package synth

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/provmark"

	// The differ resolves its tools through the capture registry.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

// DefaultTools is the paper's Table 2 tool column order.
var DefaultTools = []string{"spade", "opus", "camflow"}

// Tool-outcome statuses. Cross-tool fingerprints always differ (each
// tool has its own node/edge vocabulary), so expressiveness agreement
// is judged the way Table 2 judges it: did the tool record the target
// activity at all, did it come back empty, or did the pipeline fail.
const (
	StatusRecorded = "recorded"
	StatusEmpty    = "empty"
	StatusError    = "error"
)

// ToolOutcome is one tool's verdict on one scenario.
type ToolOutcome struct {
	Tool   string `json:"tool"`
	Status string `json:"status"`
	// Detail carries the empty-reason or pipeline error text.
	Detail string `json:"detail,omitempty"`
	// Nodes/Edges size the target graph when Status is "recorded".
	Nodes int `json:"nodes,omitempty"`
	Edges int `json:"edges,omitempty"`
}

// Verdict is the cross-tool expressiveness comparison of one scenario.
type Verdict struct {
	Scenario  string        `json:"scenario"`
	Outcomes  []ToolOutcome `json:"outcomes"`
	Divergent bool          `json:"divergent"`
}

// Signature renders the status vector as a stable string,
// tool-alphabetical ("camflow=empty;opus=recorded;spade=recorded") —
// the identity the shrinker must preserve and the campaign dedups on.
func (v *Verdict) Signature() string {
	parts := make([]string, 0, len(v.Outcomes))
	for _, o := range v.Outcomes {
		parts = append(parts, o.Tool+"="+o.Status)
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// DifferOptions configures a Differ.
type DifferOptions struct {
	// Tools to compare (default DefaultTools).
	Tools []string
	// Trials per variant (default 2 — the simulated kernel is
	// deterministic, so two trials always form a consistent pair).
	Trials int
	// Fast selects cheap storage costs (skip the Neo4j warm-up
	// simulation); campaigns run thousands of cells and want it on.
	Fast bool
}

// Differ runs one scenario through every configured capture tool via
// the unchanged four-stage pipeline and classifies agreement. All
// runners share one Classifier so fingerprint work and pairwise
// verdicts are reused across scenarios of a campaign.
type Differ struct {
	tools   []string
	runners []*provmark.Runner
}

// NewDiffer opens the configured tools through the capture registry.
func NewDiffer(opts DifferOptions) (*Differ, error) {
	tools := opts.Tools
	if len(tools) == 0 {
		tools = DefaultTools
	}
	trials := opts.Trials
	if trials <= 0 {
		trials = 2
	}
	cls := provmark.NewClassifier()
	d := &Differ{tools: append([]string(nil), tools...)}
	for _, tool := range tools {
		rec, err := capture.OpenContext(tool, capture.Options{Fast: opts.Fast})
		if err != nil {
			return nil, fmt.Errorf("synth: differ: %w", err)
		}
		d.runners = append(d.runners, provmark.NewContext(rec,
			provmark.WithTrials(trials), provmark.WithClassifier(cls)))
	}
	return d, nil
}

// Tools lists the differ's tool columns in configured order.
func (d *Differ) Tools() []string { return append([]string(nil), d.tools...) }

// Diff compiles the scenario once (a compile failure is the caller's
// bug, not a tool divergence) and benchmarks it under every tool. A
// per-tool pipeline failure becomes a StatusError outcome rather than
// aborting the comparison — a tool whose pipeline cannot digest a
// scenario that the others record fine is itself an expressiveness
// divergence. Only context cancellation aborts.
func (d *Differ) Diff(ctx context.Context, scn benchprog.Scenario) (*Verdict, error) {
	if _, err := scn.Compile(); err != nil {
		return nil, err
	}
	v := &Verdict{Scenario: scn.Name}
	for i, tool := range d.tools {
		res, err := d.runners[i].RunScenario(ctx, scn)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		out := ToolOutcome{Tool: tool}
		switch {
		case err != nil:
			out.Status = StatusError
			out.Detail = err.Error()
		case res.Empty:
			out.Status = StatusEmpty
			out.Detail = string(res.Reason)
		default:
			out.Status = StatusRecorded
			out.Nodes = res.Target.NumNodes()
			out.Edges = res.Target.NumEdges()
		}
		v.Outcomes = append(v.Outcomes, out)
	}
	for _, o := range v.Outcomes[1:] {
		if o.Status != v.Outcomes[0].Status {
			v.Divergent = true
			break
		}
	}
	return v, nil
}
