//go:build race

package synth

// raceDetector lets campaign-scale tests shrink their budgets when the
// race detector multiplies the cost of every memory access.
const raceDetector = true
