package synth

import (
	"context"
	"testing"

	"provmark/internal/benchprog"
)

// knownDiverging lists registered Table 2 scenarios the paper's Table 2
// reports as divergent across the three tools (one tool records where
// another comes back empty). They are the shrinker's ground-truth
// fixtures: real divergences with known shape, independent of the
// synthesizer.
var knownDiverging = []string{"dup", "tee", "clone", "pipe", "read"}

// TestShrinkPreservesVerdictOnKnownDivergences: for each fixture, the
// differ must report divergence, and the shrunk scenario must be (a)
// validator-clean, (b) no larger than the input, and (c) carry the
// exact same divergence signature.
func TestShrinkPreservesVerdictOnKnownDivergences(t *testing.T) {
	differ, err := NewDiffer(DifferOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range knownDiverging {
		t.Run(name, func(t *testing.T) {
			scn, ok := benchprog.ScenarioByName(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			v, err := differ.Diff(ctx, scn)
			if err != nil {
				t.Fatal(err)
			}
			if !v.Divergent {
				t.Fatalf("%s is not divergent (Table 2 says it is): %s", name, v.Signature())
			}
			sig := v.Signature()
			shrunk := Shrink(scn, func(c benchprog.Scenario) bool {
				vc, err := differ.Diff(ctx, c)
				return err == nil && vc.Signature() == sig
			})
			if err := shrunk.Validate(); err != nil {
				t.Errorf("shrunk %s fails the validator: %v", name, err)
			}
			if len(shrunk.Steps) > len(scn.Steps) {
				t.Errorf("shrunk %s grew: %d steps from %d", name, len(shrunk.Steps), len(scn.Steps))
			}
			if len(shrunk.Setup) > len(scn.Setup) {
				t.Errorf("shrunk %s setup grew: %d ops from %d", name, len(shrunk.Setup), len(scn.Setup))
			}
			v2, err := differ.Diff(ctx, shrunk)
			if err != nil {
				t.Fatalf("shrunk %s does not diff: %v", name, err)
			}
			if v2.Signature() != sig {
				t.Errorf("shrunk %s changed verdict: %s, want %s", name, v2.Signature(), sig)
			}
		})
	}
}

// TestShrinkMinimizesSyntheticPadding: a known-diverging fixture padded
// with irrelevant background steps shrinks back below the padded size —
// ddmin actually removes work, it does not just re-validate the input.
func TestShrinkMinimizesSyntheticPadding(t *testing.T) {
	differ, err := NewDiffer(DifferOptions{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	scn, ok := benchprog.ScenarioByName("pipe")
	if !ok {
		t.Fatal("pipe not registered")
	}
	padded := scn.Clone()
	padded.Name = "pipe-padded"
	padded.Setup = append(padded.Setup, benchprog.SetupOp{Kind: "file", Path: "/stage/pad.txt", UID: 1000, Mode: 0o644})
	pad := []benchprog.Instr{
		{Op: "open", Path: "/stage/pad.txt", Flags: []string{"rdwr"}, SaveFD: "padfd"},
		{Op: "read", FD: "padfd", N: 8},
		{Op: "close", FD: "padfd"},
	}
	padded.Steps = append(pad, padded.Steps...)
	if err := padded.Validate(); err != nil {
		t.Fatalf("padded fixture invalid: %v", err)
	}
	v, err := differ.Diff(ctx, padded)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Divergent {
		t.Fatalf("padded pipe not divergent: %s", v.Signature())
	}
	sig := v.Signature()
	shrunk := Shrink(padded, func(c benchprog.Scenario) bool {
		vc, err := differ.Diff(ctx, c)
		return err == nil && vc.Signature() == sig
	})
	if len(shrunk.Steps) >= len(padded.Steps) {
		t.Errorf("shrink removed nothing: %d steps of %d remain", len(shrunk.Steps), len(padded.Steps))
	}
	if len(shrunk.Setup) >= len(padded.Setup) {
		t.Errorf("shrink kept the padding setup: %d ops of %d remain", len(shrunk.Setup), len(padded.Setup))
	}
}

// TestShrinkNeverShowsInvalidCandidates: the keep predicate only ever
// sees validator-clean scenarios, so callers may run them directly.
func TestShrinkNeverShowsInvalidCandidates(t *testing.T) {
	scn, ok := benchprog.ScenarioByName("dup")
	if !ok {
		t.Fatal("dup not registered")
	}
	seen := 0
	Shrink(scn, func(c benchprog.Scenario) bool {
		seen++
		if err := c.Validate(); err != nil {
			t.Fatalf("keep saw an invalid candidate: %v", err)
		}
		return false // force the shrinker to try everything
	})
	if seen == 0 {
		t.Fatal("keep was never called")
	}
}
