package synth

import (
	"provmark/internal/benchprog"
	"provmark/internal/oskernel"
)

// A shadow executes scenario instructions in a bare kernel (no tracers
// attached) and reports the errno each call actually produced. The
// synthesizer keeps one shadow per variant: because the kernel is
// fully deterministic, the errno a candidate instruction observes in
// the shadow is exactly the errno the compiled scenario will observe
// in the pipeline — which is how synthesized scenarios carry correct
// expected-errno annotations by construction instead of by guessing.
type shadow struct {
	k     *oskernel.Kernel
	main  *oskernel.Process
	fd    map[string]int
	procs map[string]*oskernel.Process
}

// newShadow boots a fresh kernel, applies the scenario's setup ops and
// launches the benchmark process under the scenario's credentials —
// mirroring benchprog.Run's launch sequence.
func newShadow(cred string, setup []benchprog.SetupOp) (*shadow, error) {
	k := oskernel.New()
	for _, op := range setup {
		if op.Kind == "dir" {
			k.MkDir(op.Path, op.UID, op.Mode)
		} else {
			k.MkFile(op.Path, op.UID, op.Mode)
		}
	}
	c := oskernel.Cred{UID: 1000, EUID: 1000, SUID: 1000, GID: 1000, EGID: 1000, SGID: 1000}
	if cred == benchprog.CredRoot {
		c = oskernel.Cred{}
	}
	main, err := k.Launch("/usr/bin/bench", []string{"synth", "1"}, c)
	if err != nil {
		return nil, err
	}
	return &shadow{k: k, main: main, fd: map[string]int{}, procs: map[string]*oskernel.Process{}}, nil
}

// proc resolves an instruction's process slot.
func (sh *shadow) proc(name string) (*oskernel.Process, bool) {
	if name == "" || name == "main" {
		return sh.main, true
	}
	p, ok := sh.procs[name]
	return p, ok
}

// exec runs one instruction (Count times) and reports the observed
// errno. ok is false when a slot is unresolvable or repeated calls
// disagree on their errno — either way the instruction cannot carry a
// single truthful expectation and the candidate must be dropped.
func (sh *shadow) exec(in benchprog.Instr) (oskernel.Errno, bool) {
	sys, found := oskernel.Dispatch(in.Op)
	if !found {
		return 0, false
	}
	p, ok := sh.proc(in.Proc)
	if !ok {
		return 0, false
	}
	flags, err := benchprog.OpenFlagBits(in.Flags)
	if err != nil {
		return 0, false
	}
	count := in.Count
	if count < 1 {
		count = 1
	}
	var first oskernel.Errno
	for i := 0; i < count; i++ {
		a := oskernel.Args{
			Path: in.Path, Path2: in.Path2,
			NewFD: in.NewFD, DirFD: in.DirFD,
			Flags: flags, Mode: in.Mode,
			N: in.N, Off: in.Off, Len: in.Len,
			UID: in.UID, EUID: in.EUID, SUID: in.SUID,
			GID: in.GID, EGID: in.EGID, SGID: in.SGID,
			PID: in.PID, Sig: in.Sig,
			Exe: in.Exe, Argv: in.Argv, Code: in.Code,
		}
		if in.FD != "" {
			fd, ok := sh.fd[in.FD]
			if !ok {
				return 0, false
			}
			a.FD = fd
		}
		if in.FD2 != "" {
			fd, ok := sh.fd[in.FD2]
			if !ok {
				return 0, false
			}
			a.FD2 = fd
		}
		if in.PIDOf != "" {
			victim, ok := sh.proc(in.PIDOf)
			if !ok {
				return 0, false
			}
			a.PID = victim.PID
		}
		out := sys.Invoke(sh.k, p, a)
		if in.Op == "exit" {
			// exit does not return; the scenario compiler treats it as
			// expectation-free success.
			out.Errno = oskernel.OK
		}
		if i == 0 {
			first = out.Errno
		} else if out.Errno != first {
			return 0, false
		}
		if out.Errno == oskernel.OK {
			if in.SaveFD != "" {
				sh.fd[in.SaveFD] = int(out.Ret)
			}
			if in.SaveFD2 != "" {
				sh.fd[in.SaveFD2] = int(out.Ret2)
			}
			if out.Child != nil {
				slot := in.SaveProc
				if slot == "" {
					slot = "child"
				}
				sh.procs[slot] = out.Child
			}
		}
	}
	return first, true
}

// replay re-executes accepted steps of one variant and checks each
// observation against the recorded expectation. A mismatch means the
// shadow and the recorded history disagree — the candidate trial that
// follows would be meaningless — so replay reports failure and the
// synthesizer abandons the attempt.
func (sh *shadow) replay(steps []benchprog.Instr, target bool) bool {
	for _, in := range steps {
		if in.Target && !target {
			continue
		}
		e, ok := sh.exec(in)
		if !ok {
			return false
		}
		if errnoName(e) != in.Errno {
			return false
		}
	}
	return true
}

// errnoName renders an observed errno in the scenario expectation
// vocabulary: success is the empty string, failure its symbolic name.
func errnoName(e oskernel.Errno) string {
	if e == oskernel.OK {
		return ""
	}
	return e.Error()
}
