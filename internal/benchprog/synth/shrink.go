package synth

import "provmark/internal/benchprog"

// Shrink minimizes a scenario while the keep predicate still accepts
// it: delta-debugging (ddmin) over the step list, then greedy removal
// of setup ops, then collapsing repeat counts. Candidates that fail
// the static validator are never shown to keep — removal that breaks
// slot discipline is rejected structurally, so the output is
// validator-clean by construction and never larger than the input.
//
// keep is typically "the divergence signature is unchanged": the
// shrunk scenario is the smallest instruction sequence found that
// still makes the tools disagree the same way.
func Shrink(scn benchprog.Scenario, keep func(benchprog.Scenario) bool) benchprog.Scenario {
	cur := scn.Clone()
	accept := func(c benchprog.Scenario) bool {
		return c.Validate() == nil && keep(c)
	}
	cur.Steps = ddmin(cur, cur.Steps, accept)
	cur.Setup = shrinkSetup(cur, accept)
	cur.Steps = shrinkCounts(cur, accept)
	return cur
}

// with returns the scenario with a replaced step list.
func with(scn benchprog.Scenario, steps []benchprog.Instr) benchprog.Scenario {
	c := scn.Clone()
	c.Steps = steps
	return c
}

// ddmin is the classic minimizing delta debugging loop over steps:
// split into n chunks, try dropping each chunk, refine granularity
// until single-step removals no longer help.
func ddmin(scn benchprog.Scenario, steps []benchprog.Instr, accept func(benchprog.Scenario) bool) []benchprog.Instr {
	n := 2
	for len(steps) >= 2 && n <= len(steps) {
		chunk := (len(steps) + n - 1) / n
		reduced := false
		for start := 0; start < len(steps); start += chunk {
			end := start + chunk
			if end > len(steps) {
				end = len(steps)
			}
			cand := make([]benchprog.Instr, 0, len(steps)-(end-start))
			cand = append(cand, steps[:start]...)
			cand = append(cand, steps[end:]...)
			if len(cand) == 0 {
				continue
			}
			if accept(with(scn, cand)) {
				steps = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(steps) {
				break
			}
			n = min(n*2, len(steps))
		}
	}
	return steps
}

// shrinkSetup greedily drops setup ops that the verdict does not need.
func shrinkSetup(scn benchprog.Scenario, accept func(benchprog.Scenario) bool) []benchprog.SetupOp {
	setup := append([]benchprog.SetupOp(nil), scn.Setup...)
	for i := 0; i < len(setup); {
		cand := scn.Clone()
		cand.Setup = append(append([]benchprog.SetupOp(nil), setup[:i]...), setup[i+1:]...)
		if accept(cand) {
			setup = cand.Setup
		} else {
			i++
		}
	}
	return setup
}

// shrinkCounts collapses repeat counts to single calls where the
// verdict survives.
func shrinkCounts(scn benchprog.Scenario, accept func(benchprog.Scenario) bool) []benchprog.Instr {
	steps := append([]benchprog.Instr(nil), scn.Steps...)
	for i := range steps {
		if steps[i].Count > 1 {
			cand := with(scn, append([]benchprog.Instr(nil), steps...))
			cand.Steps[i].Count = 0
			if accept(cand) {
				steps[i].Count = 0
			}
		}
	}
	return steps
}
