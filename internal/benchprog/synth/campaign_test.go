package synth

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"provmark/internal/benchprog"
)

// campaignBudget scales the acceptance campaign: the full thousand
// scenarios normally, a slice of it when the race detector (which
// multiplies the cost of every pipeline run) or -short is in effect.
func campaignBudget() int {
	if raceDetector || testing.Short() {
		return 120
	}
	return 1000
}

// TestCampaignAcceptance is the PR's acceptance bar: a fixed-seed
// campaign completes with zero validator / compile / execution
// failures, and every reported divergence still reproduces its exact
// signature after shrinking.
func TestCampaignAcceptance(t *testing.T) {
	budget := campaignBudget()
	var report bytes.Buffer
	sum, divs, err := RunCampaign(context.Background(), CampaignOptions{
		Seed:   7,
		Budget: budget,
		Fast:   true,
		Report: &report,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Scenarios != budget {
		t.Errorf("ran %d scenarios, want %d", sum.Scenarios, budget)
	}
	if sum.ValidatorFailures != 0 || sum.CompileFailures != 0 || sum.ExecFailures != 0 {
		t.Errorf("synthesized scenarios failed verification: %d validator, %d compile, %d exec",
			sum.ValidatorFailures, sum.CompileFailures, sum.ExecFailures)
	}
	if len(divs) == 0 {
		t.Fatal("campaign found no divergences — Table 2 guarantees they exist")
	}
	if sum.Classes != len(divs) {
		t.Errorf("summary reports %d classes but %d divergences returned", sum.Classes, len(divs))
	}
	if sum.Reverified != len(divs) {
		t.Errorf("only %d of %d divergences re-verified after shrinking", sum.Reverified, len(divs))
	}
	if sum.Divergent < sum.Classes {
		t.Errorf("divergent total %d below class count %d", sum.Divergent, sum.Classes)
	}
	if sum.Coverage.DistinctTotal == 0 || sum.Synth.Emitted != budget {
		t.Errorf("summary counters inconsistent: %+v", sum)
	}
	for _, d := range divs {
		if !d.Reverified {
			t.Errorf("%s (%s) did not re-verify after shrinking", d.Name, d.Signature)
		}
		if d.ShrunkSteps > d.Steps {
			t.Errorf("%s grew while shrinking: %d steps from %d", d.Name, d.ShrunkSteps, d.Steps)
		}
		scn, err := benchprog.DecodeScenario(d.Scenario)
		if err != nil {
			t.Errorf("%s: embedded scenario does not decode: %v", d.Name, err)
			continue
		}
		if err := scn.Validate(); err != nil {
			t.Errorf("%s: embedded scenario fails the validator: %v", d.Name, err)
		}
	}
	checkReport(t, report.Bytes(), sum, len(divs))
}

// checkReport asserts the NDJSON report's shape: header first, one
// divergence line per class, summary last.
func checkReport(t *testing.T, raw []byte, sum *CampaignSummary, classes int) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != classes+2 {
		t.Fatalf("report has %d lines, want header + %d divergences + summary", len(lines), classes)
	}
	var hdr reportHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Schema != ReportSchema {
		t.Errorf("header schema = %q, want %q", hdr.Schema, ReportSchema)
	}
	for _, line := range lines[1 : len(lines)-1] {
		var d Divergence
		if err := json.Unmarshal(line, &d); err != nil {
			t.Fatalf("divergence line: %v", err)
		}
		if d.Kind != "divergence" || d.Signature == "" || len(d.TargetOps) == 0 {
			t.Errorf("malformed divergence line: %s", line)
		}
	}
	var tail CampaignSummary
	if err := json.Unmarshal(lines[len(lines)-1], &tail); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if tail.Kind != "summary" || tail.Scenarios != sum.Scenarios || tail.Classes != sum.Classes {
		t.Errorf("summary line disagrees with returned summary: %s", lines[len(lines)-1])
	}
}

// TestCampaignNoDiff: verification-only campaigns report no divergences
// and still measure the failure counters.
func TestCampaignNoDiff(t *testing.T) {
	sum, divs, err := RunCampaign(context.Background(), CampaignOptions{
		Seed: 3, Budget: 10, NoDiff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != 0 || sum.Divergent != 0 {
		t.Errorf("no-diff campaign reported divergences: %+v", sum)
	}
	if sum.Scenarios != 10 || sum.ValidatorFailures+sum.CompileFailures+sum.ExecFailures != 0 {
		t.Errorf("no-diff campaign counters: %+v", sum)
	}
}

// TestCampaignCancellation: a cancelled context aborts the campaign
// with its error instead of running the full budget.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := RunCampaign(ctx, CampaignOptions{Seed: 1, Budget: 5}); err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
}

// TestCampaignDeterminism: two campaigns with the same seed produce
// identical reports byte for byte.
func TestCampaignDeterminism(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		if _, _, err := RunCampaign(context.Background(), CampaignOptions{
			Seed: 9, Budget: 15, Fast: true, Report: &buf,
		}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Errorf("same-seed campaigns produced different reports:\n%s\n---\n%s", a, b)
	}
}
