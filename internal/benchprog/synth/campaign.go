package synth

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"provmark/internal/benchprog"
	"provmark/internal/oskernel"
)

// ReportSchema versions the campaign's NDJSON report: one header line,
// one "divergence" line per divergence class, one trailing "summary"
// line.
const ReportSchema = "provmark/synth-report/v1"

// CampaignOptions configures a synthesis campaign.
type CampaignOptions struct {
	Seed   int64
	Budget int
	// Tools / Trials / Fast configure the differ (see DifferOptions).
	Tools  []string
	Trials int
	Fast   bool
	// Synth bounds the synthesizer (see Options).
	Synth Options
	// NoDiff synthesizes and verifies only (no pipeline runs).
	NoDiff bool
	// NoShrink reports divergences unminimized.
	NoShrink bool
	// Report receives the NDJSON report (nil discards it).
	Report io.Writer
	// Logf receives progress lines (nil is silent).
	Logf func(format string, args ...any)
}

// Divergence is one reported divergence class: the first scenario of
// the class, shrunk to the smallest sequence preserving the signature,
// re-verified, and embedded as canonical scenario JSON ready for the
// registry.
type Divergence struct {
	Kind        string          `json:"kind"`
	Name        string          `json:"name"`
	Signature   string          `json:"signature"`
	TargetOps   []string        `json:"target_ops"`
	Outcomes    []ToolOutcome   `json:"outcomes"`
	Steps       int             `json:"steps"`
	ShrunkSteps int             `json:"shrunk_steps"`
	Reverified  bool            `json:"reverified"`
	Scenario    json.RawMessage `json:"scenario"`
}

// CampaignSummary is the trailing NDJSON summary line.
type CampaignSummary struct {
	Kind      string `json:"kind"`
	Scenarios int    `json:"scenarios"`
	// The three failure counters are measured independently of the
	// synthesizer's own guarantees; the acceptance bar is all-zero.
	ValidatorFailures int `json:"validator_failures"`
	CompileFailures   int `json:"compile_failures"`
	ExecFailures      int `json:"exec_failures"`
	// Divergent counts scenarios whose tools disagreed; Classes the
	// distinct (signature, target-op-set) classes among them. Only the
	// first scenario of each class is shrunk and reported — the rest
	// are counted here, not silently dropped.
	Divergent         int     `json:"divergent"`
	Classes           int     `json:"classes"`
	DuplicatesSkipped int     `json:"duplicates_skipped"`
	Reverified        int     `json:"reverified"`
	Coverage          Summary `json:"coverage"`
	Synth             Stats   `json:"synth"`
}

type reportHeader struct {
	Schema string   `json:"schema"`
	Seed   int64    `json:"seed"`
	Budget int      `json:"budget"`
	Tools  []string `json:"tools"`
}

// targetOps lists the distinct ops of a scenario's target steps,
// sorted — the second half of the divergence class identity.
func targetOps(scn benchprog.Scenario) []string {
	seen := map[string]bool{}
	for _, in := range scn.Steps {
		if in.Target {
			seen[in.Op] = true
		}
	}
	out := make([]string, 0, len(seen))
	for op := range seen {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// RunCampaign synthesizes Budget scenarios, measures the validator /
// compile / execution failure counters, diffs every scenario across
// the tools, and shrinks + re-verifies the first scenario of each
// divergence class. It returns the summary and the reported
// divergences; the NDJSON report mirrors both.
func RunCampaign(ctx context.Context, opts CampaignOptions) (*CampaignSummary, []Divergence, error) {
	if opts.Budget <= 0 {
		return nil, nil, fmt.Errorf("synth: campaign: budget must be positive")
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var differ *Differ
	if !opts.NoDiff {
		var err error
		differ, err = NewDiffer(DifferOptions{Tools: opts.Tools, Trials: opts.Trials, Fast: opts.Fast})
		if err != nil {
			return nil, nil, err
		}
	}
	var enc *json.Encoder
	if opts.Report != nil {
		enc = json.NewEncoder(opts.Report)
		tools := opts.Tools
		if len(tools) == 0 {
			tools = DefaultTools
		}
		if err := enc.Encode(reportHeader{Schema: ReportSchema, Seed: opts.Seed, Budget: opts.Budget, Tools: tools}); err != nil {
			return nil, nil, err
		}
	}

	syn := New(opts.Seed, opts.Synth)
	sum := &CampaignSummary{Kind: "summary"}
	classes := map[string]bool{}
	var divergences []Divergence
	for i := 0; i < opts.Budget; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		scn, err := syn.Next()
		if err != nil {
			return nil, nil, err
		}
		sum.Scenarios++
		// Measure the guarantees instead of trusting them: the summary's
		// zero counters are evidence, not assumption.
		if err := scn.Validate(); err != nil {
			sum.ValidatorFailures++
			logf("synth: %s: validator: %v", scn.Name, err)
			continue
		}
		prog, err := scn.Compile()
		if err != nil {
			sum.CompileFailures++
			logf("synth: %s: compile: %v", scn.Name, err)
			continue
		}
		execOK := true
		for _, v := range []benchprog.Variant{benchprog.Background, benchprog.Foreground} {
			if err := benchprog.Run(oskernel.New(), prog, v); err != nil {
				sum.ExecFailures++
				logf("synth: %s: %s exec: %v", scn.Name, v, err)
				execOK = false
				break
			}
		}
		if !execOK || differ == nil {
			continue
		}
		verdict, err := differ.Diff(ctx, scn)
		if err != nil {
			return nil, nil, err
		}
		if !verdict.Divergent {
			continue
		}
		sum.Divergent++
		sig := verdict.Signature()
		ops := targetOps(scn)
		classKey := sig + "|" + strings.Join(ops, ",")
		if classes[classKey] {
			sum.DuplicatesSkipped++
			continue
		}
		classes[classKey] = true
		logf("synth: divergence class %d: %s (targets: %s)", len(classes), sig, strings.Join(ops, ","))

		shrunk := scn
		if !opts.NoShrink {
			shrunk = Shrink(scn, func(c benchprog.Scenario) bool {
				v, err := differ.Diff(ctx, c)
				return err == nil && v.Signature() == sig
			})
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
		}
		// Re-verify: the shrunk scenario must still execute cleanly and
		// reproduce the exact divergence signature.
		reverified := false
		var outcomes []ToolOutcome
		if Verify(shrunk) == nil {
			if v2, err := differ.Diff(ctx, shrunk); err == nil && v2.Signature() == sig {
				reverified = true
				outcomes = v2.Outcomes
			}
		}
		if !reverified {
			outcomes = verdict.Outcomes
		} else {
			sum.Reverified++
		}
		raw, err := benchprog.EncodeScenario(&shrunk)
		if err != nil {
			return nil, nil, fmt.Errorf("synth: campaign: encode %s: %w", shrunk.Name, err)
		}
		d := Divergence{
			Kind:        "divergence",
			Name:        scn.Name,
			Signature:   sig,
			TargetOps:   ops,
			Outcomes:    outcomes,
			Steps:       len(scn.Steps),
			ShrunkSteps: len(shrunk.Steps),
			Reverified:  reverified,
			Scenario:    raw,
		}
		divergences = append(divergences, d)
		if enc != nil {
			if err := enc.Encode(d); err != nil {
				return nil, nil, err
			}
		}
	}
	sum.Classes = len(classes)
	sum.Coverage = syn.Coverage().Summarize()
	sum.Synth = syn.Stats()
	if enc != nil {
		if err := enc.Encode(sum); err != nil {
			return nil, nil, err
		}
	}
	return sum, divergences, nil
}
