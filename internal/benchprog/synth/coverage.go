// Package synth generates benchmark scenarios automatically: a seeded,
// deterministic synthesizer draws ops from the kernel's syscall
// dispatch-table metadata and maintains fd/proc slot state so every
// emitted scenario passes the static validator — and executes cleanly
// in both variants — by construction. Generation is steered by
// coverage counters (op-pair transitions, expected-errno outcomes,
// multi-process interleavings) so a campaign keeps finding new shapes
// instead of resampling the same ones.
//
// On top of the synthesizer sit an expressiveness differ (run one
// scenario through all three capture tools and classify agreement vs
// divergence — the automated form of the paper's hand-curated Table 2
// search), a delta-debugging shrinker that minimizes a diverging
// scenario while preserving its verdict, and a campaign driver that
// ties the three together behind cmd/provmark-synth.
package synth

import "sort"

// Coverage key prefixes. Each accepted instruction contributes one key
// per axis; the synthesizer scores candidates by how rare their keys
// are, so generation drifts toward uncovered transitions, outcomes and
// interleavings.
const (
	// coverPair tracks op-pair transitions: "pair:<prev>><op>".
	coverPair = "pair:"
	// coverOut tracks expected-errno outcomes: "out:<op>/<errno|ok>".
	coverOut = "out:"
	// coverProc tracks process interleavings: which process class
	// (main or child) follows which: "proc:<m|c>><m|c>".
	coverProc = "proc:"
	// coverRole tracks which ops have appeared as background vs target
	// activity: "role:<op>/<B|T>".
	coverRole = "role:"
)

// Coverage counts how often each generation feature has been emitted.
// The zero score of a feature decays as its count grows, so candidates
// exercising unseen features win the per-step tournament.
type Coverage struct {
	counts map[string]int
}

// NewCoverage returns an empty coverage map.
func NewCoverage() *Coverage {
	return &Coverage{counts: make(map[string]int)}
}

// score sums the novelty of a key set: an unseen key is worth 1, a key
// seen n times 1/(1+n).
func (c *Coverage) score(keys []string) float64 {
	var s float64
	for _, k := range keys {
		s += 1 / float64(1+c.counts[k])
	}
	return s
}

// note records one emission of each key.
func (c *Coverage) note(keys []string) {
	for _, k := range keys {
		c.counts[k]++
	}
}

// Distinct counts the distinct keys seen under one prefix (coverPair,
// coverOut, coverProc, coverRole).
func (c *Coverage) Distinct(prefix string) int {
	n := 0
	for k := range c.counts {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}

// Summary is the coverage snapshot a campaign reports.
type Summary struct {
	OpPairs       int `json:"op_pairs"`
	Outcomes      int `json:"outcomes"`
	Interleavings int `json:"interleavings"`
	Roles         int `json:"roles"`
	DistinctTotal int `json:"distinct_total"`
	Emitted       int `json:"emitted"`
}

// Summarize snapshots the distinct-key counts per axis.
func (c *Coverage) Summarize() Summary {
	total := 0
	for _, n := range c.counts {
		total += n
	}
	return Summary{
		OpPairs:       c.Distinct(coverPair),
		Outcomes:      c.Distinct(coverOut),
		Interleavings: c.Distinct(coverProc),
		Roles:         c.Distinct(coverRole),
		DistinctTotal: len(c.counts),
		Emitted:       total,
	}
}

// Keys lists every seen key, sorted — for tests asserting coverage
// actually grows with budget.
func (c *Coverage) Keys() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
