package benchprog

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestCodecRoundTripRegistered: every registered scenario encodes
// canonically and survives a round trip.
func TestCodecRoundTripRegistered(t *testing.T) {
	for _, kind := range []Kind{KindTable2, KindExtra, KindFailure, KindAttack} {
		for _, name := range ScenarioNames(kind) {
			s, _ := ScenarioByName(name)
			data, err := EncodeScenario(&s)
			if err != nil {
				t.Fatalf("%s: encode: %v", name, err)
			}
			data2, err := EncodeScenario(&s)
			if err != nil || !bytes.Equal(data, data2) {
				t.Fatalf("%s: encoding not deterministic", name)
			}
			dec, err := DecodeScenario(data)
			if err != nil {
				t.Fatalf("%s: decode: %v", name, err)
			}
			if !reflect.DeepEqual(*dec, s) {
				t.Errorf("%s: round trip drift:\n got %+v\nwant %+v", name, *dec, s)
			}
		}
	}
}

func TestCodecStrict(t *testing.T) {
	if _, err := DecodeScenario([]byte(`{"name":"x","steps":[{"op":"creat","path":"/stage/f","target":true}],"bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := DecodeScenario([]byte(`{"name":"x","steps":[{"op":"creat","path":"/stage/f","target":true}]} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := DecodeScenario([]byte(`{"name":"x","steps":[{"op":"mount"}]}`)); err == nil {
		t.Error("invalid scenario accepted")
	}
	if _, err := EncodeScenario(nil); err == nil {
		t.Error("nil scenario encoded")
	}
}

// TestCodecNormalizesFlags: flag lists canonicalize (order, dedup,
// rdonly dropped) so equal scenarios share one encoding.
func TestCodecNormalizesFlags(t *testing.T) {
	s := Scenario{Name: "flags", Steps: []Instr{
		{Op: "open", Path: "/etc/passwd", Flags: []string{"rdonly", "trunc", "wronly", "trunc"}, Errno: "EACCES", Target: true},
	}}
	data, err := EncodeScenario(&s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"flags":["wronly","trunc"]`) {
		t.Errorf("flags not canonicalized: %s", data)
	}
	if len(s.Steps[0].Flags) != 4 {
		t.Error("EncodeScenario mutated its input")
	}
	// Count 1, cred "user", and save_proc "child" are defaults and
	// normalize away — spelling a default out must not change the
	// canonical bytes dedup keys hash.
	s2 := Scenario{Name: "defaults", Cred: CredUser, Steps: []Instr{
		{Op: "fork", SaveProc: "child", Target: true},
		{Op: "creat", Path: "/stage/f", Count: 1, Target: true},
	}}
	data2, err := EncodeScenario(&s2)
	if err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"count", "cred", "save_proc"} {
		if strings.Contains(string(data2), needle) {
			t.Errorf("default %q not normalized away: %s", needle, data2)
		}
	}
	implicit := Scenario{Name: "defaults", Steps: []Instr{
		{Op: "fork", Target: true},
		{Op: "creat", Path: "/stage/f", Target: true},
	}}
	data3, err := EncodeScenario(&implicit)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data2, data3) {
		t.Errorf("explicit defaults encode differently:\n%s\n%s", data2, data3)
	}
}

// FuzzScenarioRoundTrip: any scenario the strict decoder accepts must
// re-encode canonically and decode back to the same value — the
// invariant dedup cell keys rely on.
func FuzzScenarioRoundTrip(f *testing.F) {
	for _, kind := range []Kind{KindTable2, KindExtra, KindFailure, KindAttack} {
		for _, name := range ScenarioNames(kind) {
			s, _ := ScenarioByName(name)
			data, err := EncodeScenario(&s)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"x","steps":[{"op":"pipe","save_fd":"r","save_fd2":"w"},{"op":"tee","fd":"r","fd2":"w","n":1,"target":true}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeScenario(data)
		if err != nil {
			return
		}
		enc, err := EncodeScenario(s)
		if err != nil {
			t.Fatalf("decoded scenario failed to encode: %v", err)
		}
		s2, err := DecodeScenario(enc)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, enc)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip drift:\n got %+v\nwant %+v", s2, s)
		}
		enc2, err := EncodeScenario(s2)
		if err != nil || !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding not a fixpoint:\n%s\n%s", enc, enc2)
		}
	})
}
