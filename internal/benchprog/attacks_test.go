package benchprog_test

// Attack-chain contract tests. These live in the external test package
// because they drive the chains through the capture + pipeline layers,
// which import benchprog.

import (
	"context"
	"os"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/datalog"
	"provmark/internal/oskernel"
	"provmark/internal/provmark"

	_ "provmark/internal/capture/camflow"
)

// TestAttackChainsExecute: every registered attack chain validates,
// compiles, and executes cleanly in both variants.
func TestAttackChainsExecute(t *testing.T) {
	names := benchprog.ScenarioNames(benchprog.KindAttack)
	want := []string{"attack-exfil", "attack-fork-taint", "attack-cover-tracks"}
	if len(names) != len(want) {
		t.Fatalf("registered attack chains = %v, want %v", names, want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("registered attack chains = %v, want %v", names, want)
		}
	}
	for _, name := range names {
		scn, ok := benchprog.ScenarioByName(name)
		if !ok {
			t.Fatalf("%s: not in registry", name)
		}
		prog, err := scn.Compile()
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		for _, v := range []benchprog.Variant{benchprog.Background, benchprog.Foreground} {
			if err := benchprog.Run(oskernel.New(), prog, v); err != nil {
				t.Errorf("%s: %s: %v", name, v, err)
			}
		}
	}
}

// loadDetectionRules parses examples/detection/suspicious.dl — the
// attack chains exist to be caught by exactly those rules, so the test
// reads the shipped file rather than a private copy.
func loadDetectionRules(t *testing.T) []datalog.Rule {
	t.Helper()
	src, err := os.ReadFile("../../examples/detection/suspicious.dl")
	if err != nil {
		t.Fatal(err)
	}
	rules, err := datalog.ParseRules(string(src))
	if err != nil {
		t.Fatalf("suspicious.dl: %v", err)
	}
	return rules
}

// TestSuspiciousRulesFlagAttackChains: benchmark each chain under
// CamFlow and evaluate the shipped detection rules over the derived
// target graph. The escalated task version must be flagged suspicious
// in every chain; only the chain that never drops privileges may be
// unmitigated.
func TestSuspiciousRulesFlagAttackChains(t *testing.T) {
	rules := loadDetectionRules(t)
	rec, err := capture.OpenContext("camflow", capture.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	runner := provmark.NewContext(rec)

	cases := []struct {
		name        string
		unmitigated bool
	}{
		{"attack-exfil", true},
		{"attack-fork-taint", true},
		{"attack-cover-tracks", false}, // ends with setuid 1000: dropped(P) holds
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scn, ok := benchprog.ScenarioByName(tc.name)
			if !ok {
				t.Fatalf("%s not registered", tc.name)
			}
			res, err := runner.RunScenario(context.Background(), scn)
			if err != nil {
				t.Fatal(err)
			}
			if res.Empty {
				t.Fatalf("chain not recorded: %s", res.Reason)
			}
			db := datalog.NewDatabase()
			db.LoadGraph(res.Target)
			if err := db.Run(rules); err != nil {
				t.Fatal(err)
			}
			sus := db.Query(datalog.Atom{Pred: "suspicious", Terms: []datalog.Term{datalog.V("P")}})
			if len(sus) == 0 {
				t.Fatalf("suspicious(P) matched nothing in the %s target graph (%d nodes, %d edges)",
					tc.name, res.Target.NumNodes(), res.Target.NumEdges())
			}
			tainted := db.Query(datalog.Atom{Pred: "tainted", Terms: []datalog.Term{datalog.V("X")}})
			if len(tainted) == 0 {
				t.Errorf("tainted(X) matched nothing — escalation flagged but taint did not propagate")
			}
			unmit := db.Query(datalog.Atom{Pred: "unmitigated", Terms: []datalog.Term{datalog.V("P")}})
			if tc.unmitigated && len(unmit) == 0 {
				t.Errorf("unmitigated(P) empty, but %s never drops privileges", tc.name)
			}
			if !tc.unmitigated && len(unmit) != 0 {
				t.Errorf("unmitigated(P) matched %d — the privilege drop should mitigate via stratified negation", len(unmit))
			}
		})
	}
}
