package benchprog

import (
	"provmark/internal/oskernel"
)

// SeedSuite returns the original closure implementation of the full
// Table 2 benchmark suite. The production suite is now compiled from
// the declarative scenario registry (see table2.go); this closure form
// is frozen as the reference implementation that the scenario
// compiler's differential tests compare against. Programs are built
// fresh on every call so steps can be run repeatedly without sharing
// state between trials.
func SeedSuite() []Program {
	return []Program{
		// ---- Group 1: files ------------------------------------------------
		{
			Name: "close", Group: 1, Desc: "close an open descriptor",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(false, func(w *World) error {
					ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
					w.FD["id"] = int(ret)
					return expectOK(ret, errno)
				}),
				step(true, func(w *World) error {
					ret, errno := w.K.Close(w.Main, w.FD["id"])
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "creat", Group: 1, Desc: "create a new file",
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Creat(w.Main, "/stage/new.txt")
					return expectOK(ret, errno)
				}),
			},
		},
		dupProgram("dup", func(w *World) (int64, oskernel.Errno) {
			return w.K.Dup(w.Main, w.FD["id"])
		}),
		dupProgram("dup2", func(w *World) (int64, oskernel.Errno) {
			return w.K.Dup2(w.Main, w.FD["id"], 9)
		}),
		dupProgram("dup3", func(w *World) (int64, oskernel.Errno) {
			return w.K.Dup3(w.Main, w.FD["id"], 9)
		}),
		linkProgram("link", func(w *World) (int64, oskernel.Errno) {
			return w.K.Link(w.Main, "/stage/test.txt", "/stage/hard.txt")
		}),
		linkProgram("linkat", func(w *World) (int64, oskernel.Errno) {
			return w.K.Linkat(w.Main, "/stage/test.txt", "/stage/hard.txt")
		}),
		linkProgram("symlink", func(w *World) (int64, oskernel.Errno) {
			return w.K.Symlink(w.Main, "/stage/test.txt", "/stage/soft.txt")
		}),
		linkProgram("symlinkat", func(w *World) (int64, oskernel.Errno) {
			return w.K.Symlinkat(w.Main, "/stage/test.txt", "/stage/soft.txt")
		}),
		{
			Name: "mknod", Group: 1, Desc: "create a device node",
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Mknod(w.Main, "/stage/node", 0o644)
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "mknodat", Group: 1, Desc: "create a device node (at)",
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Mknodat(w.Main, "/stage/node", 0o644)
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "open", Group: 1, Desc: "open an existing file",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "openat", Group: 1, Desc: "open an existing file (at)",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Openat(w.Main, 0, "/stage/test.txt", oskernel.ORdwr)
					return expectOK(ret, errno)
				}),
			},
		},
		rwProgram("read", func(w *World) (int64, oskernel.Errno) {
			return w.K.Read(w.Main, w.FD["id"], 8)
		}),
		rwProgram("pread", func(w *World) (int64, oskernel.Errno) {
			return w.K.Pread(w.Main, w.FD["id"], 8, 0)
		}),
		rwProgram("write", func(w *World) (int64, oskernel.Errno) {
			return w.K.Write(w.Main, w.FD["id"], 8)
		}),
		rwProgram("pwrite", func(w *World) (int64, oskernel.Errno) {
			return w.K.Pwrite(w.Main, w.FD["id"], 8, 0)
		}),
		{
			Name: "rename", Group: 1, Desc: "rename a file",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Rename(w.Main, "/stage/test.txt", "/stage/renamed.txt")
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "renameat", Group: 1, Desc: "rename a file (at)",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Renameat(w.Main, "/stage/test.txt", "/stage/renamed.txt")
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "truncate", Group: 1, Desc: "truncate by path",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Truncate(w.Main, "/stage/test.txt", 4)
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "ftruncate", Group: 1, Desc: "truncate by descriptor",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(false, func(w *World) error {
					ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
					w.FD["id"] = int(ret)
					return expectOK(ret, errno)
				}),
				step(true, func(w *World) error {
					ret, errno := w.K.Ftruncate(w.Main, w.FD["id"], 4)
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "unlink", Group: 1, Desc: "remove a file",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Unlink(w.Main, "/stage/test.txt")
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "unlinkat", Group: 1, Desc: "remove a file (at)",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Unlinkat(w.Main, "/stage/test.txt")
					return expectOK(ret, errno)
				}),
			},
		},

		// ---- Group 2: processes --------------------------------------------
		{
			Name: "clone", Group: 2, Desc: "spawn a thread-like child via raw clone",
			Steps: []Step{
				step(true, func(w *World) error {
					child, ret, errno := w.K.Clone(w.Main)
					w.Child = child
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "execve", Group: 2, Desc: "replace the process image",
			Steps: []Step{
				step(true, func(w *World) error {
					ret, errno := w.K.Execve(w.Main, "/usr/bin/helper", []string{"helper"})
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "exit", Group: 2, Desc: "terminate normally (implicit in bg too)",
			Steps: []Step{
				step(true, func(w *World) error {
					w.K.Exit(w.Main, 0)
					return nil
				}),
			},
		},
		{
			Name: "fork", Group: 2, Desc: "fork a child that exits",
			Steps: []Step{
				step(true, func(w *World) error {
					child, ret, errno := w.K.Fork(w.Main)
					if errno != oskernel.OK {
						return expectOK(ret, errno)
					}
					w.K.Exit(child, 0)
					return nil
				}),
			},
		},
		{
			Name: "kill", Group: 2, Desc: "kill a forked child",
			Steps: []Step{
				step(false, func(w *World) error {
					child, ret, errno := w.K.Fork(w.Main)
					w.Child = child
					return expectOK(ret, errno)
				}),
				step(true, func(w *World) error {
					ret, errno := w.K.Kill(w.Main, w.Child.PID, 9)
					return expectOK(ret, errno)
				}),
			},
		},
		{
			Name: "vfork", Group: 2, Desc: "vfork a child; parent suspends until child exit",
			Steps: []Step{
				step(true, func(w *World) error {
					child, ret, errno := w.K.Vfork(w.Main)
					if errno != oskernel.OK {
						return expectOK(ret, errno)
					}
					w.K.Exit(child, 0)
					return nil
				}),
			},
		},

		// ---- Group 3: permissions ------------------------------------------
		chmodProgram("chmod", func(w *World) (int64, oskernel.Errno) {
			return w.K.Chmod(w.Main, "/stage/test.txt", 0o600)
		}),
		{
			Name: "fchmod", Group: 3, Desc: "chmod by descriptor",
			Setup: setupFile("/stage/test.txt"),
			Steps: []Step{
				step(false, func(w *World) error {
					ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
					w.FD["id"] = int(ret)
					return expectOK(ret, errno)
				}),
				step(true, func(w *World) error {
					ret, errno := w.K.Fchmod(w.Main, w.FD["id"], 0o600)
					return expectOK(ret, errno)
				}),
			},
		},
		chmodProgram("fchmodat", func(w *World) (int64, oskernel.Errno) {
			return w.K.Fchmodat(w.Main, "/stage/test.txt", 0o600)
		}),
		chownProgram("chown", func(w *World) (int64, oskernel.Errno) {
			return w.K.Chown(w.Main, "/stage/test.txt", 1001, 1001)
		}),
		{
			Name: "fchown", Group: 3, Desc: "chown by descriptor (run as root)",
			Setup: setupFile("/stage/test.txt"),
			Cred:  &oskernel.Cred{}, // root
			Steps: []Step{
				step(false, func(w *World) error {
					ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
					w.FD["id"] = int(ret)
					return expectOK(ret, errno)
				}),
				step(true, func(w *World) error {
					ret, errno := w.K.Fchown(w.Main, w.FD["id"], 1001, 1001)
					return expectOK(ret, errno)
				}),
			},
		},
		chownProgram("fchownat", func(w *World) (int64, oskernel.Errno) {
			return w.K.Fchownat(w.Main, "/stage/test.txt", 1001, 1001)
		}),
		setidProgram("setgid", func(w *World) (int64, oskernel.Errno) {
			return w.K.Setgid(w.Main, 1001)
		}),
		setidProgram("setregid", func(w *World) (int64, oskernel.Errno) {
			return w.K.Setregid(w.Main, 1001, 1001)
		}),
		// setresgid sets the group id to its *current* value: the kernel
		// accepts it but nothing changes, so change-triggered recorders
		// stay silent (the paper's SC observation for SPADE).
		setidProgram("setresgid", func(w *World) (int64, oskernel.Errno) {
			return w.K.Setresgid(w.Main, 0, 0, 0)
		}),
		setidProgram("setuid", func(w *World) (int64, oskernel.Errno) {
			return w.K.Setuid(w.Main, 1001)
		}),
		setidProgram("setreuid", func(w *World) (int64, oskernel.Errno) {
			return w.K.Setreuid(w.Main, 1001, 1001)
		}),
		// setresuid performs an actual change of user id, so SPADE's
		// attribute-change monitoring notices it (ok (SC) in Table 2).
		setidProgram("setresuid", func(w *World) (int64, oskernel.Errno) {
			return w.K.Setresuid(w.Main, 1001, 1001, 1001)
		}),

		// ---- Group 4: pipes --------------------------------------------------
		{
			Name: "pipe", Group: 4, Desc: "create a pipe",
			Steps: []Step{
				step(true, func(w *World) error {
					_, _, errno := w.K.Pipe(w.Main)
					return expectOK(0, errno)
				}),
			},
		},
		{
			Name: "pipe2", Group: 4, Desc: "create a pipe with flags",
			Steps: []Step{
				step(true, func(w *World) error {
					_, _, errno := w.K.Pipe2(w.Main)
					return expectOK(0, errno)
				}),
			},
		},
		{
			Name: "tee", Group: 4, Desc: "duplicate data between two pipes",
			Steps: []Step{
				step(false, func(w *World) error {
					rd, wr, errno := w.K.Pipe(w.Main)
					if errno != oskernel.OK {
						return expectOK(0, errno)
					}
					w.FD["in_r"], w.FD["in_w"] = int(rd), int(wr)
					rd2, wr2, errno := w.K.Pipe(w.Main)
					w.FD["out_r"], w.FD["out_w"] = int(rd2), int(wr2)
					if errno != oskernel.OK {
						return expectOK(0, errno)
					}
					n, werr := w.K.Write(w.Main, w.FD["in_w"], 8)
					return expectOK(n, werr)
				}),
				step(true, func(w *World) error {
					ret, errno := w.K.Tee(w.Main, w.FD["in_r"], w.FD["out_w"], 8)
					return expectOK(ret, errno)
				}),
			},
		},
	}
}

func step(target bool, do func(w *World) error) Step {
	return Step{Target: target, Do: do}
}

func dupProgram(name string, call func(w *World) (int64, oskernel.Errno)) Program {
	return Program{
		Name: name, Group: 1, Desc: "duplicate a file descriptor",
		Setup: setupFile("/stage/test.txt"),
		Steps: []Step{
			step(false, func(w *World) error {
				ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
				w.FD["id"] = int(ret)
				return expectOK(ret, errno)
			}),
			step(true, func(w *World) error {
				ret, errno := call(w)
				return expectOK(ret, errno)
			}),
		},
	}
}

func linkProgram(name string, call func(w *World) (int64, oskernel.Errno)) Program {
	return Program{
		Name: name, Group: 1, Desc: "create a link to an existing file",
		Setup: setupFile("/stage/test.txt"),
		Steps: []Step{
			step(true, func(w *World) error {
				ret, errno := call(w)
				return expectOK(ret, errno)
			}),
		},
	}
}

func rwProgram(name string, call func(w *World) (int64, oskernel.Errno)) Program {
	return Program{
		Name: name, Group: 1, Desc: "read or write an open file",
		Setup: setupFile("/stage/test.txt"),
		Steps: []Step{
			step(false, func(w *World) error {
				ret, errno := w.K.Open(w.Main, "/stage/test.txt", oskernel.ORdwr)
				w.FD["id"] = int(ret)
				return expectOK(ret, errno)
			}),
			step(true, func(w *World) error {
				ret, errno := call(w)
				return expectOK(ret, errno)
			}),
		},
	}
}

func chmodProgram(name string, call func(w *World) (int64, oskernel.Errno)) Program {
	return Program{
		Name: name, Group: 3, Desc: "change file mode",
		Setup: setupFile("/stage/test.txt"),
		Steps: []Step{
			step(true, func(w *World) error {
				ret, errno := call(w)
				return expectOK(ret, errno)
			}),
		},
	}
}

func chownProgram(name string, call func(w *World) (int64, oskernel.Errno)) Program {
	return Program{
		Name: name, Group: 3, Desc: "change file ownership (run as root)",
		Setup: setupFile("/stage/test.txt"),
		Cred:  &oskernel.Cred{}, // root: chown requires privilege
		Steps: []Step{
			step(true, func(w *World) error {
				ret, errno := call(w)
				return expectOK(ret, errno)
			}),
		},
	}
}

func setidProgram(name string, call func(w *World) (int64, oskernel.Errno)) Program {
	return Program{
		Name: name, Group: 3, Desc: "change process credentials (run as root)",
		Cred: &oskernel.Cred{}, // root may set arbitrary ids
		Steps: []Step{
			step(true, func(w *World) error {
				ret, errno := call(w)
				return expectOK(ret, errno)
			}),
		},
	}
}
