package benchprog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"provmark/internal/oskernel"
)

// The scenario codec is strict and canonical in the internal/wire
// sense: encoding the same scenario twice yields byte-identical JSON
// (struct fields in declaration order, flags normalized, empties
// omitted), and decoding rejects unknown fields, trailing data, and
// scenarios the validator refuses. decode(encode(x)) == x holds for
// every scenario a decoder accepts, which is what makes scenario
// content safe to hash into dedup cell keys.

// EncodeScenario renders the canonical JSON encoding of a scenario.
// The scenario is validated and normalized (the receiver is not
// mutated) before encoding.
func EncodeScenario(s *Scenario) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("benchprog: encode: nil scenario")
	}
	v := s.Clone()
	v.normalize()
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("benchprog: encode: %w", err)
	}
	return json.Marshal(&v)
}

// DecodeScenario strictly parses a scenario encoding: unknown fields,
// trailing data, and invalid scenarios are errors. The decoded value
// is normalized to canonical form.
func DecodeScenario(data []byte) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("benchprog: decode scenario: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("benchprog: decode scenario: trailing data after JSON value")
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("benchprog: decode scenario: %w", err)
	}
	return &s, nil
}

// DecodeScenarioFile reads one scenario file through the strict codec
// — the shared loader behind the CLIs' -scenario flags.
func DecodeScenarioFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := DecodeScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Canonicalize normalizes the scenario in place to canonical form and
// validates it — what DecodeScenario does after parsing, exported for
// embedders (the wire job-spec decoder) that parse scenarios as part
// of a larger strict document.
func (s *Scenario) Canonicalize() error {
	s.normalize()
	return s.Validate()
}

// Clone deep-copies the scenario (slices are not shared).
func (s *Scenario) Clone() Scenario {
	v := *s
	v.Setup = append([]SetupOp(nil), s.Setup...)
	v.Steps = append([]Instr(nil), s.Steps...)
	for i := range v.Steps {
		v.Steps[i].Flags = append([]string(nil), v.Steps[i].Flags...)
		v.Steps[i].Argv = append([]string(nil), v.Steps[i].Argv...)
	}
	return v
}

// normalize rewrites the scenario into canonical form: empty slices
// collapse to nil, CredUser (the default) to "", Count 1 (the default)
// to 0, and flag lists to deduplicated canonical order with the
// zero-valued "rdonly" dropped.
func (s *Scenario) normalize() {
	if s.Cred == CredUser {
		s.Cred = ""
	}
	if len(s.Setup) == 0 {
		s.Setup = nil
	}
	if len(s.Steps) == 0 {
		s.Steps = nil
	}
	for i := range s.Steps {
		in := &s.Steps[i]
		if in.Proc == "main" {
			in.Proc = ""
		}
		if in.Count == 1 {
			in.Count = 0
		}
		// "child" is the documented save_proc default: spelling it out
		// must not change the canonical bytes (dedup keys hash them).
		if in.SaveProc == "child" {
			if sys, ok := oskernel.Dispatch(in.Op); ok && sys.Returns == oskernel.RProc {
				in.SaveProc = ""
			}
		}
		in.Flags = canonicalFlags(in.Flags)
		if len(in.Argv) == 0 {
			in.Argv = nil
		}
	}
}

// canonicalFlags returns the flag list in canonical order, deduplicated,
// with "rdonly" (zero) removed; unknown names are preserved at the end
// in input order for the validator to reject with a precise message.
func canonicalFlags(flags []string) []string {
	if len(flags) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(flags))
	for _, f := range flags {
		seen[f] = true
	}
	out := make([]string, 0, len(flags))
	for _, f := range openFlagOrder {
		if seen[f] {
			out = append(out, f)
			delete(seen, f)
		}
	}
	delete(seen, "rdonly")
	for _, f := range flags {
		if seen[f] {
			out = append(out, f)
			delete(seen, f)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
