package benchprog

import (
	"fmt"
	"sort"
	"sync"
)

// Kind classifies registered scenarios.
type Kind string

// Registry kinds.
const (
	// KindTable2 marks the Table 2 benchmark suite (the default grid of
	// batch runs and jobs).
	KindTable2 Kind = "table2"
	// KindExtra marks the Section 3.1/5.2 extra programs (rename-failed,
	// privesc, readsN, scaleN).
	KindExtra Kind = "extra"
	// KindFailure marks the failure-case suite (target expected to fail).
	KindFailure Kind = "failure"
	// KindAttack marks long attack-chain scenarios (attacks.go): staged
	// intrusions whose provenance the detection rules in
	// examples/detection must flag.
	KindAttack Kind = "attack"
)

type regEntry struct {
	scn  Scenario
	kind Kind
}

// registry is the process-wide scenario registry. Registration happens
// at init (table2.go) and optionally from callers embedding custom
// suites; lookups are concurrent. The sorted metadata views are cached
// and rebuilt on registration — the fix for Names()/ByName() formerly
// rebuilding every program on every call.
var registry = struct {
	mu      sync.RWMutex
	byName  map[string]regEntry
	order   []string // registration order
	table2  []string // cached Table 2 names, group-then-name order
	failure []string // cached failure names, registration order
}{byName: make(map[string]regEntry)}

// RegisterScenario validates a scenario and adds it to the registry.
// Names are unique across kinds.
func RegisterScenario(s Scenario, kind Kind) error {
	switch kind {
	case KindTable2, KindExtra, KindFailure, KindAttack:
	default:
		return fmt.Errorf("benchprog: register %q: unknown kind %q", s.Name, kind)
	}
	v := s.Clone()
	v.normalize()
	if err := v.Validate(); err != nil {
		return fmt.Errorf("benchprog: register: %w", err)
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byName[v.Name]; dup {
		return fmt.Errorf("benchprog: register %q: already registered", v.Name)
	}
	registry.byName[v.Name] = regEntry{scn: v, kind: kind}
	registry.order = append(registry.order, v.Name)
	switch kind {
	case KindTable2:
		registry.table2 = append(registry.table2, v.Name)
		sort.SliceStable(registry.table2, func(i, j int) bool {
			a, b := registry.byName[registry.table2[i]].scn, registry.byName[registry.table2[j]].scn
			if a.Group != b.Group {
				return a.Group < b.Group
			}
			return a.Name < b.Name
		})
	case KindFailure:
		registry.failure = append(registry.failure, v.Name)
	}
	return nil
}

func mustRegister(s Scenario, kind Kind) {
	if err := RegisterScenario(s, kind); err != nil {
		panic(err)
	}
}

// ScenarioByName returns a copy of a registered scenario of any kind.
func ScenarioByName(name string) (Scenario, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	e, ok := registry.byName[name]
	if !ok {
		return Scenario{}, false
	}
	return e.scn.Clone(), true
}

// ScenarioNames lists registered scenario names of one kind: Table 2
// in group-then-name order, other kinds in registration order.
func ScenarioNames(kind Kind) []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	var src []string
	switch kind {
	case KindTable2:
		src = registry.table2
	case KindFailure:
		src = registry.failure
	default:
		for _, name := range registry.order {
			if registry.byName[name].kind == kind {
				src = append(src, name)
			}
		}
		return src
	}
	return append([]string(nil), src...)
}

// Names lists the Table 2 benchmark names sorted by group then name,
// the order Table 2 uses. The list is maintained by the registry —
// metadata is built once at registration, not on every call.
func Names() []string {
	return ScenarioNames(KindTable2)
}

// ByName returns the benchmark program with the given name, compiled
// fresh from its registered scenario (any kind), so steps can be run
// repeatedly without sharing state between trials.
func ByName(name string) (Program, bool) {
	s, ok := ScenarioByName(name)
	if !ok {
		return Program{}, false
	}
	return s.MustCompile(), true
}

// All returns the full Table 2 benchmark suite compiled from the
// scenario registry, in Table 2 order.
func All() []Program {
	names := Names()
	out := make([]Program, 0, len(names))
	for _, name := range names {
		p, _ := ByName(name)
		out = append(out, p)
	}
	return out
}

// FailureCases returns the failure-scenario benchmark suite, compiled
// from the registry in registration order.
func FailureCases() []Program {
	names := ScenarioNames(KindFailure)
	out := make([]Program, 0, len(names))
	for _, name := range names {
		p, _ := ByName(name)
		out = append(out, p)
	}
	return out
}

// FailureCaseByName looks up one failure benchmark.
func FailureCaseByName(name string) (Program, bool) {
	registry.mu.RLock()
	e, ok := registry.byName[name]
	registry.mu.RUnlock()
	if !ok || e.kind != KindFailure {
		return Program{}, false
	}
	return e.scn.MustCompile(), true
}
