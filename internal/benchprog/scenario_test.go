package benchprog

import (
	"strings"
	"testing"

	"provmark/internal/oskernel"
)

func validScenario() Scenario {
	return Scenario{
		Name:  "copy-then-clean",
		Group: 1,
		Desc:  "open+read a source, creat+write a copy, unlink the source",
		Setup: []SetupOp{{Kind: "file", Path: "/stage/src.txt", UID: 1000, Mode: 0o644}},
		Steps: []Instr{
			{Op: "open", Path: "/stage/src.txt", Flags: []string{"rdwr"}, SaveFD: "src"},
			{Op: "read", FD: "src", N: 8},
			{Op: "creat", Path: "/stage/copy.txt", SaveFD: "dst", Target: true},
			{Op: "write", FD: "dst", N: 8, Target: true},
			{Op: "unlink", Path: "/stage/src.txt", Target: true},
		},
	}
}

func TestScenarioCompileAndRun(t *testing.T) {
	prog, err := validScenario().Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{Background, Foreground} {
		k := oskernel.New()
		tap := &oskernel.TapBuffer{}
		k.Register(tap)
		if err := Run(k, prog, v); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		creats := 0
		for _, ev := range tap.AuditEvents {
			if ev.Syscall == "creat" {
				creats++
			}
		}
		if want := map[Variant]int{Background: 0, Foreground: 1}[v]; creats != want {
			t.Errorf("%s: %d creats, want %d", v, creats, want)
		}
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		errPart string
	}{
		{"missing name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"bad name chars", func(s *Scenario) { s.Name = "a b" }, "may only contain"},
		{"bad group", func(s *Scenario) { s.Group = 9 }, "group"},
		{"bad cred", func(s *Scenario) { s.Cred = "wheel" }, "unknown cred"},
		{"bad setup kind", func(s *Scenario) { s.Setup[0].Kind = "socket" }, "unknown kind"},
		{"setup path", func(s *Scenario) { s.Setup[0].Path = "" }, "missing path"},
		{"no steps", func(s *Scenario) { s.Steps = nil }, "no steps"},
		{"unknown op", func(s *Scenario) { s.Steps[0].Op = "mount" }, "unknown op"},
		{"stray arg", func(s *Scenario) { s.Steps[0].Sig = 9 }, "does not take"},
		{"unknown flag", func(s *Scenario) { s.Steps[0].Flags = []string{"direct"} }, "unknown open flag"},
		{"negative count", func(s *Scenario) { s.Steps[1].Count = -1 }, "negative count"},
		{
			"repeated fork",
			func(s *Scenario) { s.Steps[0] = Instr{Op: "fork", Count: 2} },
			"cannot repeat",
		},
		{"unknown errno", func(s *Scenario) { s.Steps[0].Errno = "EIO" }, "unknown errno"},
		{"save on non-fd op", func(s *Scenario) { s.Steps[4].SaveFD = "x" }, "does not return a descriptor"},
		{"save pair on fd op", func(s *Scenario) { s.Steps[0].SaveFD2 = "x" }, "descriptor pair"},
		{"save proc on fd op", func(s *Scenario) { s.Steps[0].SaveProc = "c" }, "does not create a process"},
		{"undefined fd slot", func(s *Scenario) { s.Steps[1].FD = "nope" }, "undefined fd slot"},
		{"undefined proc slot", func(s *Scenario) { s.Steps[1].Proc = "ghost" }, "undefined process slot"},
		{"missing fd slot", func(s *Scenario) { s.Steps[1].FD = "" }, "requires an fd slot"},
		{
			"bg use of target-bound slot",
			func(s *Scenario) { s.Steps[3].Target = false },
			"undefined fd slot",
		},
		{
			"failed call binds nothing",
			func(s *Scenario) { s.Steps[0].Errno = "ENOENT" },
			"undefined fd slot",
		},
	}
	for _, tc := range cases {
		s := validScenario()
		tc.mutate(&s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.errPart) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.errPart)
		}
	}
}

// TestScenarioExpectedErrno: instructions expecting a specific errno
// fail the run when the call succeeds or fails differently.
func TestScenarioExpectedErrno(t *testing.T) {
	run := func(s Scenario) error {
		prog, err := s.Compile()
		if err != nil {
			return err
		}
		return Run(oskernel.New(), prog, Foreground)
	}
	s := Scenario{Name: "expect-enoent", Steps: []Instr{
		{Op: "open", Path: "/stage/missing", Errno: "ENOENT", Target: true},
	}}
	if err := run(s); err != nil {
		t.Errorf("expected-errno scenario failed: %v", err)
	}
	s.Steps[0].Errno = "EACCES" // wrong expectation
	if err := run(s); err == nil || !strings.Contains(err.Error(), "want EACCES") {
		t.Errorf("mismatched errno not reported: %v", err)
	}
	s.Steps[0].Path = "/etc/passwd" // open rdonly succeeds
	s.Steps[0].Errno = ErrnoAny
	if err := run(s); err == nil || !strings.Contains(err.Error(), "unexpectedly succeeded") {
		t.Errorf("unexpected success not reported: %v", err)
	}
}

// TestScenarioCount: count repeats the call.
func TestScenarioCount(t *testing.T) {
	s := Scenario{
		Name:  "count-reads",
		Setup: setupFileOp(stageFile),
		Steps: []Instr{openID(), target(Instr{Op: "read", FD: "id", N: 4, Count: 3})},
	}
	prog, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	reads := 0
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "read" {
			reads++
		}
	}
	if reads != 3 {
		t.Errorf("reads = %d, want 3", reads)
	}
}

// TestScenarioProcSlots: save_proc/proc thread work through children,
// and children alive at the end exit implicitly in creation order.
func TestScenarioProcSlots(t *testing.T) {
	s := Scenario{
		Name: "two-children",
		Steps: []Instr{
			{Op: "fork", SaveProc: "a"},
			{Op: "fork", SaveProc: "b"},
			target(Instr{Op: "creat", Path: "/stage/by-a.txt", Proc: "a"}),
		},
	}
	prog, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatal(err)
	}
	exits := 0
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == "exit_group" {
			exits++
		}
	}
	// main + both children exit implicitly.
	if exits != 3 {
		t.Errorf("exit_group records = %d, want 3", exits)
	}
}

func TestRegistryRejectsDuplicatesAndInvalid(t *testing.T) {
	if err := RegisterScenario(Scenario{Name: "close"}, KindExtra); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterScenario(Scenario{Name: "fresh-but-broken"}, KindExtra); err == nil {
		t.Error("invalid scenario registered")
	}
	if err := RegisterScenario(validScenario(), "bogus-kind"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestNamesStableAndCheap: Names returns the Table 2 order and does
// not rebuild programs (metadata comes from the registry cache).
func TestNamesStableAndCheap(t *testing.T) {
	a, b := Names(), Names()
	if len(a) != 44 {
		t.Fatalf("Names() = %d entries", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Names() unstable at %d: %q vs %q", i, a[i], b[i])
		}
	}
	a[0] = "mutated"
	if Names()[0] == "mutated" {
		t.Error("Names() returns an aliased slice")
	}
	allocs := testing.AllocsPerRun(100, func() { Names() })
	if allocs > 3 {
		t.Errorf("Names() allocates %.0f objects per call; registry cache not used", allocs)
	}
}
