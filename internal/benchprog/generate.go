package benchprog

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"provmark/internal/oskernel"
)

// Scenario generators: because benchmark programs are data, new ones
// can be derived from existing ones. Each combinator returns a fresh,
// validated scenario; the input is never mutated. Paths may contain
// the placeholders "{i}" (repeat index) and "{p}" (process index),
// substituted by the combinators that introduce those dimensions.

// ScaleScenario builds the Section 5.2 scalability benchmark as data:
// `repeat` create-then-unlink pairs, all target activity.
func ScaleScenario(repeat int) Scenario {
	steps := make([]Instr, 0, 2*repeat)
	for i := 0; i < repeat; i++ {
		path := "/stage/scale" + strconv.Itoa(i) + ".txt"
		steps = append(steps,
			target(Instr{Op: "creat", Path: path}),
			target(Instr{Op: "unlink", Path: path}),
		)
	}
	return Scenario{
		Name:  "scale" + strconv.Itoa(repeat),
		Group: 1,
		Desc:  fmt.Sprintf("create+unlink repeated %d times", repeat),
		Steps: steps,
	}
}

// RepeatedReadsScenario builds the Section 3.1 "Bob" benchmark as
// data: `count` consecutive reads of one open file.
func RepeatedReadsScenario(count int) Scenario {
	return Scenario{
		Name:  "reads" + strconv.Itoa(count),
		Group: 1,
		Desc:  fmt.Sprintf("%d consecutive reads of one file", count),
		Setup: setupFileOp(stageFile),
		Steps: []Instr{openID(), target(Instr{Op: "read", FD: "id", N: 4, Count: count})},
	}
}

// Repeat scales a scenario by repeating its target block n times: the
// background prologue runs once, then n copies of the target
// instructions. Slots bound inside the target block are renamed per
// copy so the copies stay independent; references to background slots
// are shared. "{i}" in paths is replaced by the copy index.
func Repeat(s Scenario, n int) (Scenario, error) {
	if n < 1 {
		return Scenario{}, fmt.Errorf("benchprog: repeat %q: n must be >= 1", s.Name)
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s-x%d", s.Name, n)
	out.Desc = fmt.Sprintf("%s (target repeated %d times)", s.Desc, n)
	var bg, tgt []Instr
	for i, in := range out.Steps {
		if in.Target {
			tgt = append(tgt, in)
		} else {
			// Repeat partitions into prologue-then-targets; a background
			// instruction *after* a target step (e.g. cleanup) would be
			// silently hoisted before every copy, changing the program's
			// meaning. Refuse rather than reorder.
			if len(tgt) > 0 {
				return Scenario{}, fmt.Errorf("benchprog: repeat %q: step %d: background instruction after the target block", s.Name, i)
			}
			bg = append(bg, in)
		}
	}
	local := localSlots(tgt)
	steps := append([]Instr(nil), bg...)
	for i := 0; i < n; i++ {
		for _, in := range tgt {
			steps = append(steps, rewriteInstr(in, local, "#"+strconv.Itoa(i), "{i}", strconv.Itoa(i)))
		}
	}
	out.Steps = steps
	if err := out.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("benchprog: repeat: %w", err)
	}
	return out, nil
}

// MultiProcess fans a scenario out over n forked children: for each
// child the main process forks (background scaffolding), then the
// whole instruction list runs inside that child, slots renamed per
// child and "{p}" in paths replaced by the child index. Forked
// children inherit descriptor tables, so per-child slot renaming keeps
// the copies independent.
func MultiProcess(s Scenario, n int) (Scenario, error) {
	if n < 1 {
		return Scenario{}, fmt.Errorf("benchprog: multiprocess %q: n must be >= 1", s.Name)
	}
	out := s.Clone()
	out.Name = fmt.Sprintf("%s-mp%d", s.Name, n)
	out.Desc = fmt.Sprintf("%s (in %d forked processes)", s.Desc, n)
	local := localSlots(out.Steps)
	var steps []Instr
	for p := 0; p < n; p++ {
		proc := "p" + strconv.Itoa(p)
		steps = append(steps, Instr{Op: "fork", SaveProc: proc})
		for _, in := range out.Steps {
			r := rewriteInstr(in, local, "#"+proc, "{p}", strconv.Itoa(p))
			if r.Proc == "" || r.Proc == "main" {
				r.Proc = proc
			}
			steps = append(steps, r)
		}
	}
	out.Steps = steps
	if err := out.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("benchprog: multiprocess: %w", err)
	}
	return out, nil
}

// ExpectFailure derives the failure-injection variant of a scenario:
// run under the given credentials with every target instruction
// expected to fail with the given errno (or ErrnoAny). The combinator
// behind Alice-style "which recorders keep a trace of the denied
// attempt" suites.
func ExpectFailure(s Scenario, errno, cred string) (Scenario, error) {
	if errno == "" {
		return Scenario{}, fmt.Errorf("benchprog: expectfailure %q: missing errno", s.Name)
	}
	out := s.Clone()
	suffix := errno
	if e, ok := oskernel.ErrnoByName(errno); ok {
		suffix = strings.ToLower(e.Error())
	}
	out.Name = fmt.Sprintf("%s-%s", s.Name, suffix)
	out.Desc = fmt.Sprintf("%s (expected to fail: %s)", s.Desc, errno)
	out.Cred = cred
	for i := range out.Steps {
		if out.Steps[i].Target {
			out.Steps[i].Errno = errno
		}
	}
	out.normalize()
	if err := out.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("benchprog: expectfailure: %w", err)
	}
	return out, nil
}

// Shuffle permutes the target instructions of a scenario with a
// deterministic seed (background order is preserved — prerequisites
// stay put). It generates order-sensitivity probes; scenarios whose
// target instructions depend on each other fail validation rather
// than producing a silently broken program.
func Shuffle(s Scenario, seed int64) (Scenario, error) {
	out := s.Clone()
	out.Name = fmt.Sprintf("%s-shuf%d", s.Name, seed)
	out.Desc = fmt.Sprintf("%s (target order shuffled, seed %d)", s.Desc, seed)
	var idx []int
	for i, in := range out.Steps {
		if in.Target {
			idx = append(idx, i)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(idx))
	steps := append([]Instr(nil), out.Steps...)
	for i, p := range perm {
		steps[idx[i]] = out.Steps[idx[p]]
	}
	out.Steps = steps
	if err := out.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("benchprog: shuffle: %w", err)
	}
	return out, nil
}

// localSlots collects the fd and proc slots bound inside an
// instruction block — the slots a copying combinator must rename.
func localSlots(block []Instr) map[string]bool {
	local := make(map[string]bool)
	for _, in := range block {
		if in.SaveFD != "" {
			local[in.SaveFD] = true
		}
		if in.SaveFD2 != "" {
			local[in.SaveFD2] = true
		}
		if sys, ok := oskernel.Dispatch(in.Op); ok && sys.Returns == oskernel.RProc {
			local[in.saveProcSlot()] = true
		}
	}
	return local
}

// rewriteInstr renames block-local slots with a suffix and substitutes
// a path placeholder.
func rewriteInstr(in Instr, local map[string]bool, suffix, placeholder, value string) Instr {
	ren := func(slot string) string {
		if slot != "" && local[slot] {
			return slot + suffix
		}
		return slot
	}
	out := in
	out.FD, out.FD2 = ren(in.FD), ren(in.FD2)
	out.SaveFD, out.SaveFD2 = ren(in.SaveFD), ren(in.SaveFD2)
	out.Proc, out.PIDOf = ren(in.Proc), ren(in.PIDOf)
	if sys, ok := oskernel.Dispatch(in.Op); ok && sys.Returns == oskernel.RProc {
		out.SaveProc = in.saveProcSlot() + suffix
	}
	out.Path = strings.ReplaceAll(in.Path, placeholder, value)
	out.Path2 = strings.ReplaceAll(in.Path2, placeholder, value)
	return out
}
