package benchprog

import (
	"reflect"
	"strings"
	"testing"

	"provmark/internal/oskernel"
)

func countAudit(t *testing.T, prog Program, syscall string) int {
	t.Helper()
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := Run(k, prog, Foreground); err != nil {
		t.Fatalf("%s: %v", prog.Name, err)
	}
	n := 0
	for _, ev := range tap.AuditEvents {
		if ev.Syscall == syscall {
			n++
		}
	}
	return n
}

func TestRepeatCombinator(t *testing.T) {
	base, _ := ScenarioByName("creat")
	rep, err := Repeat(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "creat-x3" {
		t.Errorf("name = %q", rep.Name)
	}
	// creat of a fixed path repeated 3 times: with {i} templating the
	// paths separate and every call succeeds.
	for i := range rep.Steps {
		rep.Steps[i].Path = strings.Replace(rep.Steps[i].Path, "new.txt", "new{i}.txt", 1)
	}
	rep2, err := Repeat(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rep2.Steps {
		rep2.Steps[i].Path = strings.Replace(rep2.Steps[i].Path, "new.txt", "new{i}.txt", 1)
	}
	_ = rep2
	templated := base.Clone()
	templated.Steps[0].Path = "/stage/new{i}.txt"
	rep3, err := Repeat(templated, 3)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := rep3.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := countAudit(t, prog, "creat"); got != 3 {
		t.Errorf("creats = %d, want 3", got)
	}
}

// TestRepeatRenamesLocalSlots: slots bound inside the target block are
// per-copy; references to background slots are shared.
func TestRepeatRenamesLocalSlots(t *testing.T) {
	s := Scenario{
		Name:  "open-close",
		Setup: setupFileOp(stageFile),
		Steps: []Instr{
			target(Instr{Op: "open", Path: stageFile, Flags: []string{"rdwr"}, SaveFD: "fd"}),
			target(Instr{Op: "close", FD: "fd"}),
		},
	}
	rep, err := Repeat(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps[0].SaveFD != "fd#0" || rep.Steps[1].FD != "fd#0" ||
		rep.Steps[2].SaveFD != "fd#1" || rep.Steps[3].FD != "fd#1" {
		t.Errorf("local slots not renamed per copy: %+v", rep.Steps)
	}
	prog, err := rep.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := countAudit(t, prog, "close"); got != 2 {
		t.Errorf("closes = %d, want 2", got)
	}
}

// TestRepeatRejectsTrailingBackground: a background instruction after
// the target block would be hoisted before every copy; Repeat refuses
// instead of silently reordering the program.
func TestRepeatRejectsTrailingBackground(t *testing.T) {
	s := Scenario{
		Name: "with-cleanup",
		Steps: []Instr{
			{Op: "creat", Path: "/stage/f.txt"},
			target(Instr{Op: "chmod", Path: "/stage/f.txt", Mode: 0o600}),
			{Op: "unlink", Path: "/stage/f.txt"}, // bg cleanup after targets
		},
	}
	if _, err := Repeat(s, 2); err == nil || !strings.Contains(err.Error(), "after the target block") {
		t.Errorf("trailing background instruction accepted: %v", err)
	}
}

func TestMultiProcessCombinator(t *testing.T) {
	base := Scenario{
		Name:  "creat-one",
		Group: 1,
		Steps: []Instr{target(Instr{Op: "creat", Path: "/stage/mp{p}.txt"})},
	}
	mp, err := MultiProcess(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Name != "creat-one-mp3" {
		t.Errorf("name = %q", mp.Name)
	}
	prog, err := mp.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := countAudit(t, prog, "creat"); got != 3 {
		t.Errorf("creats = %d, want 3", got)
	}
	// 3 scaffold forks; each creat runs in its own child.
	if got := countAudit(t, prog, "fork"); got != 3+1 { // +1: Launch's fork
		t.Errorf("forks = %d, want 4", got)
	}
}

func TestExpectFailureCombinator(t *testing.T) {
	chown, _ := ScenarioByName("chown") // runs as root in the registry
	failing, err := ExpectFailure(chown, "EPERM", CredUser)
	if err != nil {
		t.Fatal(err)
	}
	if failing.Name != "chown-eperm" || failing.Cred != "" {
		t.Errorf("derived %q cred %q", failing.Name, failing.Cred)
	}
	prog, err := failing.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(oskernel.New(), prog, Foreground); err != nil {
		t.Errorf("failure-injected chown: %v", err)
	}
	if _, err := ExpectFailure(chown, "", CredUser); err == nil {
		t.Error("empty errno accepted")
	}
}

func TestShuffleCombinator(t *testing.T) {
	s := ScaleScenario(4)
	a, err := Shuffle(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shuffle(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Steps, b.Steps) {
		t.Error("shuffle not deterministic for one seed")
	}
	// Background steps keep their positions.
	reads := RepeatedReadsScenario(3)
	shuf, err := Shuffle(reads, 3)
	if err != nil {
		t.Fatal(err)
	}
	if shuf.Steps[0].Op != "open" || shuf.Steps[0].Target {
		t.Error("background prologue moved")
	}
	prog, err := shuf.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := Run(oskernel.New(), prog, Foreground); err != nil {
		t.Errorf("shuffled scenario run: %v", err)
	}
}

// TestGeneratedScenariosAreWireSafe: generator output round-trips
// through the strict codec like any hand-written scenario.
func TestGeneratedScenariosAreWireSafe(t *testing.T) {
	mp, err := MultiProcess(ScaleScenario(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeScenario(&mp)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := dec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := countAudit(t, prog, "creat"); got != 4 {
		t.Errorf("creats = %d, want 4", got)
	}
}
