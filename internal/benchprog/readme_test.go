package benchprog

// The README's "Scenarios" section carries the registered benchmark
// suite between <!-- benchmark-registry:begin/end --> markers. This
// drift guard regenerates that block from the live registry and fails
// when the document and the code disagree — the list is documentation
// that cannot go stale silently.

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func registryMarkdown() string {
	groups := map[int][]string{}
	for _, name := range Names() {
		p, _ := ByName(name)
		groups[p.Group] = append(groups[p.Group], name)
	}
	labels := map[int]string{1: "files", 2: "processes", 3: "permissions", 4: "pipes"}
	var b strings.Builder
	b.WriteString("| group | family | count | benchmarks |\n|---|---|---|---|\n")
	for g := 1; g <= 4; g++ {
		fmt.Fprintf(&b, "| %d | %s | %d | %s |\n", g, labels[g], len(groups[g]), strings.Join(groups[g], ", "))
	}
	fmt.Fprintf(&b, "\nextras: %s\n", strings.Join(ScenarioNames(KindExtra), ", "))
	fmt.Fprintf(&b, "\nfailures: %s\n", strings.Join(ScenarioNames(KindFailure), ", "))
	fmt.Fprintf(&b, "\nattacks: %s\n", strings.Join(ScenarioNames(KindAttack), ", "))
	return b.String()
}

func TestReadmeBenchmarkListMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- benchmark-registry:begin -->", "<!-- benchmark-registry:end -->"
	doc := string(data)
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s/%s markers", begin, end)
	}
	got := strings.TrimSpace(doc[i+len(begin) : j])
	want := strings.TrimSpace(registryMarkdown())
	if got != want {
		t.Errorf("README benchmark list drifted from the registry.\n--- README ---\n%s\n--- registry ---\n%s", got, want)
	}
}

// TestReadmeGroupCountsMatchTable1: the documented per-group counts
// are the registry's (and Table 1's) actual counts.
func TestReadmeGroupCountsMatchTable1(t *testing.T) {
	counts := map[int]int{}
	for _, name := range Names() {
		p, _ := ByName(name)
		counts[p.Group]++
	}
	want := map[int]int{1: 23, 2: 6, 3: 12, 4: 3}
	for g, n := range want {
		if counts[g] != n {
			t.Errorf("group %d has %d scenarios, want %d", g, counts[g], n)
		}
	}
}
