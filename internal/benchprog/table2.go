package benchprog

// The Table 2 benchmark suite, the Section 3.1/5.2 extra programs, and
// the failure-case suite, re-expressed on the declarative instruction
// set and registered as the production suite. The frozen closure forms
// in programs.go / extra.go / failures.go are the reference these data
// programs are differentially tested against.

const stageFile = "/stage/test.txt"

func setupFileOp(path string) []SetupOp {
	return []SetupOp{{Kind: "file", Path: path, UID: 1000, Mode: 0o644}}
}

// target flips an instruction's target flag on.
func target(in Instr) Instr {
	in.Target = true
	return in
}

// openID is the shared background prologue: open the staged file
// read-write and bind the descriptor to slot "id".
func openID() Instr {
	return Instr{Op: "open", Path: stageFile, Flags: []string{"rdwr"}, SaveFD: "id"}
}

func table2Scenarios() []Scenario {
	oneTarget := func(name string, group int, desc string, setup []SetupOp, in Instr) Scenario {
		return Scenario{Name: name, Group: group, Desc: desc, Setup: setup, Steps: []Instr{target(in)}}
	}
	prologued := func(name string, group int, desc string, in Instr) Scenario {
		return Scenario{Name: name, Group: group, Desc: desc, Setup: setupFileOp(stageFile),
			Steps: []Instr{openID(), target(in)}}
	}
	dupScn := func(name string, in Instr) Scenario {
		return prologued(name, 1, "duplicate a file descriptor", in)
	}
	linkScn := func(name string, in Instr) Scenario {
		return Scenario{Name: name, Group: 1, Desc: "create a link to an existing file",
			Setup: setupFileOp(stageFile), Steps: []Instr{target(in)}}
	}
	rwScn := func(name string, in Instr) Scenario {
		return prologued(name, 1, "read or write an open file", in)
	}
	chmodScn := func(name string, in Instr) Scenario {
		return oneTarget(name, 3, "change file mode", setupFileOp(stageFile), in)
	}
	chownScn := func(name string, in Instr) Scenario {
		s := oneTarget(name, 3, "change file ownership (run as root)", setupFileOp(stageFile), in)
		s.Cred = CredRoot
		return s
	}
	setidScn := func(name string, in Instr) Scenario {
		s := oneTarget(name, 3, "change process credentials (run as root)", nil, in)
		s.Cred = CredRoot
		return s
	}
	return []Scenario{
		// ---- Group 1: files ------------------------------------------------
		{
			Name: "close", Group: 1, Desc: "close an open descriptor",
			Setup: setupFileOp(stageFile),
			Steps: []Instr{openID(), target(Instr{Op: "close", FD: "id"})},
		},
		oneTarget("creat", 1, "create a new file", nil, Instr{Op: "creat", Path: "/stage/new.txt"}),
		dupScn("dup", Instr{Op: "dup", FD: "id"}),
		dupScn("dup2", Instr{Op: "dup2", FD: "id", NewFD: 9}),
		dupScn("dup3", Instr{Op: "dup3", FD: "id", NewFD: 9}),
		linkScn("link", Instr{Op: "link", Path: stageFile, Path2: "/stage/hard.txt"}),
		linkScn("linkat", Instr{Op: "linkat", Path: stageFile, Path2: "/stage/hard.txt"}),
		linkScn("symlink", Instr{Op: "symlink", Path: stageFile, Path2: "/stage/soft.txt"}),
		linkScn("symlinkat", Instr{Op: "symlinkat", Path: stageFile, Path2: "/stage/soft.txt"}),
		oneTarget("mknod", 1, "create a device node", nil, Instr{Op: "mknod", Path: "/stage/node", Mode: 0o644}),
		oneTarget("mknodat", 1, "create a device node (at)", nil, Instr{Op: "mknodat", Path: "/stage/node", Mode: 0o644}),
		oneTarget("open", 1, "open an existing file", setupFileOp(stageFile),
			Instr{Op: "open", Path: stageFile, Flags: []string{"rdwr"}}),
		oneTarget("openat", 1, "open an existing file (at)", setupFileOp(stageFile),
			Instr{Op: "openat", Path: stageFile, Flags: []string{"rdwr"}}),
		rwScn("read", Instr{Op: "read", FD: "id", N: 8}),
		rwScn("pread", Instr{Op: "pread", FD: "id", N: 8}),
		rwScn("write", Instr{Op: "write", FD: "id", N: 8}),
		rwScn("pwrite", Instr{Op: "pwrite", FD: "id", N: 8}),
		oneTarget("rename", 1, "rename a file", setupFileOp(stageFile),
			Instr{Op: "rename", Path: stageFile, Path2: "/stage/renamed.txt"}),
		oneTarget("renameat", 1, "rename a file (at)", setupFileOp(stageFile),
			Instr{Op: "renameat", Path: stageFile, Path2: "/stage/renamed.txt"}),
		oneTarget("truncate", 1, "truncate by path", setupFileOp(stageFile),
			Instr{Op: "truncate", Path: stageFile, Len: 4}),
		{
			Name: "ftruncate", Group: 1, Desc: "truncate by descriptor",
			Setup: setupFileOp(stageFile),
			Steps: []Instr{openID(), target(Instr{Op: "ftruncate", FD: "id", Len: 4})},
		},
		oneTarget("unlink", 1, "remove a file", setupFileOp(stageFile), Instr{Op: "unlink", Path: stageFile}),
		oneTarget("unlinkat", 1, "remove a file (at)", setupFileOp(stageFile), Instr{Op: "unlinkat", Path: stageFile}),

		// ---- Group 2: processes --------------------------------------------
		oneTarget("clone", 2, "spawn a thread-like child via raw clone", nil, Instr{Op: "clone"}),
		oneTarget("execve", 2, "replace the process image", nil,
			Instr{Op: "execve", Exe: "/usr/bin/helper", Argv: []string{"helper"}}),
		oneTarget("exit", 2, "terminate normally (implicit in bg too)", nil, Instr{Op: "exit"}),
		{
			Name: "fork", Group: 2, Desc: "fork a child that exits",
			Steps: []Instr{target(Instr{Op: "fork"}), target(Instr{Op: "exit", Proc: "child"})},
		},
		{
			Name: "kill", Group: 2, Desc: "kill a forked child",
			Steps: []Instr{{Op: "fork"}, target(Instr{Op: "kill", PIDOf: "child", Sig: 9})},
		},
		{
			Name: "vfork", Group: 2, Desc: "vfork a child; parent suspends until child exit",
			Steps: []Instr{target(Instr{Op: "vfork"}), target(Instr{Op: "exit", Proc: "child"})},
		},

		// ---- Group 3: permissions ------------------------------------------
		chmodScn("chmod", Instr{Op: "chmod", Path: stageFile, Mode: 0o600}),
		{
			Name: "fchmod", Group: 3, Desc: "chmod by descriptor",
			Setup: setupFileOp(stageFile),
			Steps: []Instr{openID(), target(Instr{Op: "fchmod", FD: "id", Mode: 0o600})},
		},
		chmodScn("fchmodat", Instr{Op: "fchmodat", Path: stageFile, Mode: 0o600}),
		chownScn("chown", Instr{Op: "chown", Path: stageFile, UID: 1001, GID: 1001}),
		{
			Name: "fchown", Group: 3, Desc: "chown by descriptor (run as root)",
			Setup: setupFileOp(stageFile), Cred: CredRoot,
			Steps: []Instr{openID(), target(Instr{Op: "fchown", FD: "id", UID: 1001, GID: 1001})},
		},
		chownScn("fchownat", Instr{Op: "fchownat", Path: stageFile, UID: 1001, GID: 1001}),
		setidScn("setgid", Instr{Op: "setgid", GID: 1001}),
		setidScn("setregid", Instr{Op: "setregid", GID: 1001, EGID: 1001}),
		// setresgid sets the group id to its *current* value: the kernel
		// accepts it but nothing changes, so change-triggered recorders
		// stay silent (the paper's SC observation for SPADE).
		setidScn("setresgid", Instr{Op: "setresgid"}),
		setidScn("setuid", Instr{Op: "setuid", UID: 1001}),
		setidScn("setreuid", Instr{Op: "setreuid", UID: 1001, EUID: 1001}),
		// setresuid performs an actual change of user id, so SPADE's
		// attribute-change monitoring notices it (ok (SC) in Table 2).
		setidScn("setresuid", Instr{Op: "setresuid", UID: 1001, EUID: 1001, SUID: 1001}),

		// ---- Group 4: pipes ------------------------------------------------
		oneTarget("pipe", 4, "create a pipe", nil, Instr{Op: "pipe"}),
		oneTarget("pipe2", 4, "create a pipe with flags", nil, Instr{Op: "pipe2"}),
		{
			Name: "tee", Group: 4, Desc: "duplicate data between two pipes",
			Steps: []Instr{
				{Op: "pipe", SaveFD: "in_r", SaveFD2: "in_w"},
				{Op: "pipe", SaveFD: "out_r", SaveFD2: "out_w"},
				{Op: "write", FD: "in_w", N: 8},
				target(Instr{Op: "tee", FD: "in_r", FD2: "out_w", N: 8}),
			},
		},
	}
}

// FailedRenameScenario is the Section 3.1 "Alice" benchmark as data:
// an unprivileged user attempts to overwrite /etc/passwd by renaming
// another file; the call must fail.
func FailedRenameScenario() Scenario {
	return Scenario{
		Name: "rename-failed", Group: 1,
		Desc:  "unprivileged rename onto /etc/passwd (EACCES expected)",
		Setup: setupFileOp("/stage/evil.txt"),
		Steps: []Instr{target(Instr{Op: "rename", Path: "/stage/evil.txt", Path2: "/etc/passwd", Errno: ErrnoAny})},
	}
}

// PrivilegeEscalationScenario is the Section 3.1 "Dora" benchmark as
// data: read a sensitive file, escalate privilege (the target), then
// overwrite the file.
func PrivilegeEscalationScenario() Scenario {
	return Scenario{
		Name: "privesc", Group: 3,
		Desc:  "privilege escalation step inside a larger activity",
		Cred:  CredRoot,
		Setup: []SetupOp{{Kind: "file", Path: "/stage/secret.txt", UID: 1000, Mode: 0o644}},
		Steps: []Instr{
			{Op: "open", Path: "/stage/secret.txt", Flags: []string{"rdwr"}, SaveFD: "id"},
			{Op: "read", FD: "id", N: 16},
			// The escalation and the write it enables are both target
			// activity (see SeedPrivilegeEscalation for why).
			target(Instr{Op: "setuid"}),
			target(Instr{Op: "write", FD: "id", N: 16}),
		},
	}
}

func failureScenarios() []Scenario {
	return []Scenario{
		{
			Name: "open-enoent", Group: 1,
			Desc:  "open a nonexistent file (fails before any inode exists)",
			Steps: []Instr{target(Instr{Op: "open", Path: "/stage/does-not-exist", Errno: "ENOENT"})},
		},
		{
			Name: "open-eacces", Group: 1,
			Desc:  "open /etc/passwd for writing as an unprivileged user",
			Steps: []Instr{target(Instr{Op: "open", Path: "/etc/passwd", Flags: []string{"wronly"}, Errno: "EACCES"})},
		},
		{
			Name: "rename-eacces", Group: 1,
			Desc:  "rename onto /etc/passwd as an unprivileged user",
			Setup: setupFileOp("/stage/evil.txt"),
			Steps: []Instr{target(Instr{Op: "rename", Path: "/stage/evil.txt", Path2: "/etc/passwd", Errno: "EACCES"})},
		},
		{
			Name: "unlink-eacces", Group: 1,
			Desc:  "unlink /etc/passwd as an unprivileged user",
			Steps: []Instr{target(Instr{Op: "unlink", Path: "/etc/passwd", Errno: "EACCES"})},
		},
		{
			Name: "link-eexist", Group: 1,
			Desc: "hard link onto an existing name (fails before any hook)",
			Setup: []SetupOp{
				{Kind: "file", Path: "/stage/a.txt", UID: 1000, Mode: 0o644},
				{Kind: "file", Path: "/stage/b.txt", UID: 1000, Mode: 0o644},
			},
			Steps: []Instr{target(Instr{Op: "link", Path: "/stage/a.txt", Path2: "/stage/b.txt", Errno: "EEXIST"})},
		},
		{
			Name: "truncate-eacces", Group: 1,
			Desc:  "truncate /etc/passwd as an unprivileged user",
			Steps: []Instr{target(Instr{Op: "truncate", Path: "/etc/passwd", Errno: "EACCES"})},
		},
		{
			Name: "chmod-eperm", Group: 3,
			Desc:  "chmod a root-owned file as an unprivileged user",
			Steps: []Instr{target(Instr{Op: "chmod", Path: "/etc/passwd", Mode: 0o777, Errno: "EPERM"})},
		},
		{
			Name: "chown-eperm", Group: 3,
			Desc:  "chown as an unprivileged user",
			Setup: setupFileOp("/stage/mine.txt"),
			Steps: []Instr{target(Instr{Op: "chown", Path: "/stage/mine.txt", Errno: "EPERM"})},
		},
		{
			Name: "setuid-eperm", Group: 3,
			Desc:  "setuid(0) as an unprivileged user",
			Steps: []Instr{target(Instr{Op: "setuid", Errno: "EPERM"})},
		},
		{
			Name: "kill-eperm", Group: 2,
			Desc:  "signal init as an unprivileged user",
			Steps: []Instr{target(Instr{Op: "kill", PID: 1, Sig: 9, Errno: "EPERM"})},
		},
	}
}

func init() {
	for _, s := range table2Scenarios() {
		mustRegister(s, KindTable2)
	}
	mustRegister(FailedRenameScenario(), KindExtra)
	mustRegister(PrivilegeEscalationScenario(), KindExtra)
	mustRegister(RepeatedReadsScenario(8), KindExtra)
	for _, n := range []int{1, 2, 4, 8} {
		mustRegister(ScaleScenario(n), KindExtra)
	}
	for _, s := range failureScenarios() {
		mustRegister(s, KindFailure)
	}
}

// ScaleProgram builds the scalability benchmark of Section 5.2,
// compiled from its scenario form: the target is a create-then-unlink
// pair repeated `repeat` times (scale1, scale2, scale4, scale8 in
// Figures 8–10).
func ScaleProgram(repeat int) Program {
	return ScaleScenario(repeat).MustCompile()
}

// FailedRename is the Section 3.1 "Alice" benchmark, compiled from its
// scenario form.
func FailedRename() Program {
	return FailedRenameScenario().MustCompile()
}

// RepeatedReads is the Section 3.1 "Bob" benchmark used to probe
// SPADE's IORuns filter, compiled from its scenario form: the target
// performs `count` consecutive reads of the same file.
func RepeatedReads(count int) Program {
	return RepeatedReadsScenario(count).MustCompile()
}

// PrivilegeEscalation is the Section 3.1 "Dora" benchmark, compiled
// from its scenario form.
func PrivilegeEscalation() Program {
	return PrivilegeEscalationScenario().MustCompile()
}
