package benchprog_test

// Differential tests: every benchmark re-expressed on the declarative
// instruction set must be observationally identical to its frozen
// closure form. Two levels:
//
//  1. Event-stream equality — run closure and scenario forms of every
//     program (both variants) in fresh kernels and require the exact
//     same audit/libc/LSM event streams, timestamps included. Stream
//     equality implies graph equality for every capture tool.
//  2. Graph-fingerprint equality — run the full four-stage pipeline on
//     both forms under each capture tool for a spot-check subset and
//     require identical target/fg/bg shape fingerprints.

import (
	"context"
	"reflect"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/oskernel"
	"provmark/internal/provmark"

	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

// runStreams executes one program variant in a fresh kernel and
// returns the captured event stream.
func runStreams(t *testing.T, prog benchprog.Program, v benchprog.Variant) *oskernel.TapBuffer {
	t.Helper()
	k := oskernel.New()
	tap := &oskernel.TapBuffer{}
	k.Register(tap)
	if err := benchprog.Run(k, prog, v); err != nil {
		t.Fatalf("%s/%s: %v", prog.Name, v, err)
	}
	return tap
}

func assertStreamsEqual(t *testing.T, seed, scn benchprog.Program) {
	t.Helper()
	if seed.Name != scn.Name || seed.Group != scn.Group || seed.Desc != scn.Desc {
		t.Errorf("%s: metadata drift: seed (%q,%d,%q) vs scenario (%q,%d,%q)",
			seed.Name, seed.Name, seed.Group, seed.Desc, scn.Name, scn.Group, scn.Desc)
	}
	for _, v := range []benchprog.Variant{benchprog.Background, benchprog.Foreground} {
		a := runStreams(t, seed, v)
		b := runStreams(t, scn, v)
		if !reflect.DeepEqual(a.AuditEvents, b.AuditEvents) {
			t.Errorf("%s/%s: audit stream differs (seed %d events, scenario %d)",
				seed.Name, v, len(a.AuditEvents), len(b.AuditEvents))
		}
		if !reflect.DeepEqual(a.LibcEvents, b.LibcEvents) {
			t.Errorf("%s/%s: libc stream differs (seed %d events, scenario %d)",
				seed.Name, v, len(a.LibcEvents), len(b.LibcEvents))
		}
		if !reflect.DeepEqual(a.LSMEvents, b.LSMEvents) {
			t.Errorf("%s/%s: LSM stream differs (seed %d events, scenario %d)",
				seed.Name, v, len(a.LSMEvents), len(b.LSMEvents))
		}
	}
}

// TestScenarioStreamEquivalenceTable2: all Table 2 programs rebuilt on
// the instruction set replay the seed closures' kernel event streams
// byte for byte.
func TestScenarioStreamEquivalenceTable2(t *testing.T) {
	seeds := benchprog.SeedSuite()
	if len(seeds) != len(benchprog.Names()) {
		t.Fatalf("registry has %d Table 2 scenarios, seed suite has %d", len(benchprog.Names()), len(seeds))
	}
	for _, seed := range seeds {
		scn, ok := benchprog.ByName(seed.Name)
		if !ok {
			t.Errorf("%s: in seed suite but not in scenario registry", seed.Name)
			continue
		}
		assertStreamsEqual(t, seed, scn)
	}
}

// TestScenarioStreamEquivalenceExtras: the extra and failure programs
// match their seed closures too.
func TestScenarioStreamEquivalenceExtras(t *testing.T) {
	assertStreamsEqual(t, benchprog.SeedFailedRename(), benchprog.FailedRename())
	assertStreamsEqual(t, benchprog.SeedPrivilegeEscalation(), benchprog.PrivilegeEscalation())
	assertStreamsEqual(t, benchprog.SeedRepeatedReads(8), benchprog.RepeatedReads(8))
	for _, n := range []int{1, 2, 4, 8} {
		assertStreamsEqual(t, benchprog.SeedScaleProgram(n), benchprog.ScaleProgram(n))
	}
	seedFailures := benchprog.SeedFailureCases()
	failures := benchprog.FailureCases()
	if len(seedFailures) != len(failures) {
		t.Fatalf("failure suite drift: seed %d, registry %d", len(seedFailures), len(failures))
	}
	for i := range seedFailures {
		assertStreamsEqual(t, seedFailures[i], failures[i])
	}
}

func fingerprints(t *testing.T, tool string, prog benchprog.Program) [3]string {
	t.Helper()
	rec, err := capture.Open(tool, capture.Options{Fast: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := provmark.New(rec, provmark.WithTrials(2)).RunContext(context.Background(), prog)
	if err != nil {
		t.Fatalf("%s/%s: %v", tool, prog.Name, err)
	}
	fp := func(g *graph.Graph) string {
		if g == nil {
			return "<nil>"
		}
		return graph.ShapeFingerprint(g)
	}
	return [3]string{fp(res.Target), fp(res.FG), fp(res.BG)}
}

// TestScenarioFingerprintEquivalence runs the full pipeline on both
// forms of every Table 2 program under every registered capture tool
// and requires identical benchmark-graph fingerprints — the acceptance
// bar for the instruction-set rewrite.
func TestScenarioFingerprintEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline differential is not a -short test")
	}
	tools := []string{"spade", "opus", "camflow"}
	for _, seed := range benchprog.SeedSuite() {
		scn, ok := benchprog.ByName(seed.Name)
		if !ok {
			t.Fatalf("%s: not registered", seed.Name)
		}
		for _, tool := range tools {
			got := fingerprints(t, tool, scn)
			want := fingerprints(t, tool, seed)
			if got != want {
				t.Errorf("%s/%s: fingerprint drift: scenario %v, seed %v", tool, seed.Name, got, want)
			}
		}
	}
}
