package benchprog

import (
	"fmt"

	"provmark/internal/oskernel"
)

// SeedFailureCases is the frozen closure form of the failure-scenario
// benchmark suite the Alice
// use case sketches: for each case the target syscall is *expected to
// fail*, and the interesting question is which recorders keep any
// trace. Each program asserts the failure actually happened (a
// benchmark whose "failed" call succeeds is a broken benchmark).
func SeedFailureCases() []Program {
	mustFail := func(name string, call func(w *World) (int64, oskernel.Errno), want oskernel.Errno) Step {
		return step(true, func(w *World) error {
			ret, errno := call(w)
			if errno == oskernel.OK {
				return fmt.Errorf("%s unexpectedly succeeded (ret=%d)", name, ret)
			}
			if want != 0 && errno != want {
				return fmt.Errorf("%s failed with %s, want %s", name, errno.Error(), want.Error())
			}
			return nil
		})
	}
	return []Program{
		{
			Name: "open-enoent", Group: 1,
			Desc: "open a nonexistent file (fails before any inode exists)",
			Steps: []Step{mustFail("open", func(w *World) (int64, oskernel.Errno) {
				return w.K.Open(w.Main, "/stage/does-not-exist", oskernel.ORdonly)
			}, oskernel.ENOENT)},
		},
		{
			Name: "open-eacces", Group: 1,
			Desc: "open /etc/passwd for writing as an unprivileged user",
			Steps: []Step{mustFail("open", func(w *World) (int64, oskernel.Errno) {
				return w.K.Open(w.Main, "/etc/passwd", oskernel.OWronly)
			}, oskernel.EACCES)},
		},
		{
			Name: "rename-eacces", Group: 1,
			Desc:  "rename onto /etc/passwd as an unprivileged user",
			Setup: setupFile("/stage/evil.txt"),
			Steps: []Step{mustFail("rename", func(w *World) (int64, oskernel.Errno) {
				return w.K.Rename(w.Main, "/stage/evil.txt", "/etc/passwd")
			}, oskernel.EACCES)},
		},
		{
			Name: "unlink-eacces", Group: 1,
			Desc: "unlink /etc/passwd as an unprivileged user",
			Steps: []Step{mustFail("unlink", func(w *World) (int64, oskernel.Errno) {
				return w.K.Unlink(w.Main, "/etc/passwd")
			}, oskernel.EACCES)},
		},
		{
			Name: "link-eexist", Group: 1,
			Desc: "hard link onto an existing name (fails before any hook)",
			Setup: func(k *oskernel.Kernel) {
				k.MkFile("/stage/a.txt", 1000, 0o644)
				k.MkFile("/stage/b.txt", 1000, 0o644)
			},
			Steps: []Step{mustFail("link", func(w *World) (int64, oskernel.Errno) {
				return w.K.Link(w.Main, "/stage/a.txt", "/stage/b.txt")
			}, oskernel.EEXIST)},
		},
		{
			Name: "truncate-eacces", Group: 1,
			Desc: "truncate /etc/passwd as an unprivileged user",
			Steps: []Step{mustFail("truncate", func(w *World) (int64, oskernel.Errno) {
				return w.K.Truncate(w.Main, "/etc/passwd", 0)
			}, oskernel.EACCES)},
		},
		{
			Name: "chmod-eperm", Group: 3,
			Desc: "chmod a root-owned file as an unprivileged user",
			Steps: []Step{mustFail("chmod", func(w *World) (int64, oskernel.Errno) {
				return w.K.Chmod(w.Main, "/etc/passwd", 0o777)
			}, oskernel.EPERM)},
		},
		{
			Name: "chown-eperm", Group: 3,
			Desc:  "chown as an unprivileged user",
			Setup: setupFile("/stage/mine.txt"),
			Steps: []Step{mustFail("chown", func(w *World) (int64, oskernel.Errno) {
				return w.K.Chown(w.Main, "/stage/mine.txt", 0, 0)
			}, oskernel.EPERM)},
		},
		{
			Name: "setuid-eperm", Group: 3,
			Desc: "setuid(0) as an unprivileged user",
			Steps: []Step{mustFail("setuid", func(w *World) (int64, oskernel.Errno) {
				return w.K.Setuid(w.Main, 0)
			}, oskernel.EPERM)},
		},
		{
			Name: "kill-eperm", Group: 2,
			Desc: "signal init as an unprivileged user",
			Steps: []Step{mustFail("kill", func(w *World) (int64, oskernel.Errno) {
				return w.K.Kill(w.Main, 1, 9)
			}, oskernel.EPERM)},
		},
	}
}
