package provjson

import (
	"encoding/json"
	"strings"
	"testing"

	"provmark/internal/graph"
)

func sample(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	act := g.AddNode("activity", graph.Properties{"cf:pid": "7"})
	ent := g.AddNode("entity", graph.Properties{"cf:ino": "99"})
	agt := g.AddNode("agent", graph.Properties{"prov:type": "machine"})
	mustEdge(t, g, act, ent, "used", graph.Properties{"cf:type": "open"})
	mustEdge(t, g, ent, act, "wasGeneratedBy", nil)
	mustEdge(t, g, act, agt, "wasAssociatedWith", nil)
	return g
}

func mustEdge(t *testing.T, g *graph.Graph, a, b graph.ElemID, label string, props graph.Properties) {
	t.Helper()
	if _, err := g.AddEdge(a, b, label, props); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalUsesProvRoles(t *testing.T) {
	data, err := Marshal(sample(t))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]map[string]map[string]string
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	used := doc["used"]
	if len(used) != 1 {
		t.Fatalf("used section: %v", used)
	}
	for _, entry := range used {
		if entry["prov:activity"] == "" || entry["prov:entity"] == "" {
			t.Errorf("used roles missing: %v", entry)
		}
		if entry["cf:type"] != "open" {
			t.Errorf("edge property lost: %v", entry)
		}
	}
	if _, ok := doc["wasAssociatedWith"]; !ok {
		t.Error("wasAssociatedWith section missing")
	}
}

func TestRoundTrip(t *testing.T) {
	g := sample(t)
	data, err := Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, h) {
		t.Errorf("round trip changed graph:\n%s\nvs\n%s", g, h)
	}
}

func TestUnknownRelationFallsBack(t *testing.T) {
	g := graph.New()
	a := g.AddNode("entity", nil)
	b := g.AddNode("entity", nil)
	mustEdge(t, g, a, b, "customRelation", nil)
	data, err := Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "prov:from") {
		t.Errorf("fallback roles not used:\n%s", data)
	}
	h, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, h) {
		t.Error("fallback relation round trip failed")
	}
}

func TestMarshalRejectsNonProvLabels(t *testing.T) {
	g := graph.New()
	g.AddNode("Process", nil) // SPADE vocabulary, not PROV
	if _, err := Marshal(g); err == nil {
		t.Error("non-PROV node label accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
	// Relation missing its role keys.
	bad := `{"entity": {"e1": {}}, "used": {"u1": {"cf:type": "x"}}}`
	if _, err := Unmarshal([]byte(bad)); err == nil {
		t.Error("relation without roles accepted")
	}
	// Relation referencing a missing node.
	bad2 := `{"used": {"u1": {"prov:activity": "a", "prov:entity": "e"}}}`
	if _, err := Unmarshal([]byte(bad2)); err == nil {
		t.Error("dangling relation accepted")
	}
}

func TestUnmarshalDeterministicOrder(t *testing.T) {
	data, err := Marshal(sample(t))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if h1.String() != h2.String() {
		t.Error("unmarshal order not deterministic")
	}
}
