// Package provjson reads and writes the W3C PROV-JSON subset CamFlow
// emits: the three PROV node kinds (entity, activity, agent) and the
// relation kinds CamFlow uses, each with property dictionaries. The
// mapping to the property-graph model is:
//
//   - node label  = PROV kind ("entity", "activity", "agent");
//   - edge label  = relation name ("used", "wasGeneratedBy", ...);
//   - edge endpoints use the relation's standard role keys
//     (e.g. used: prov:activity -> prov:entity).
package provjson

import (
	"encoding/json"
	"fmt"
	"sort"

	"provmark/internal/graph"
)

// relationRoles maps a PROV relation name to its (source, target) role
// keys. Unknown relations fall back to prov:from / prov:to.
var relationRoles = map[string][2]string{
	"used":              {"prov:activity", "prov:entity"},
	"wasGeneratedBy":    {"prov:entity", "prov:activity"},
	"wasInformedBy":     {"prov:informed", "prov:informant"},
	"wasAssociatedWith": {"prov:activity", "prov:agent"},
	"wasDerivedFrom":    {"prov:generatedEntity", "prov:usedEntity"},
	"wasAttributedTo":   {"prov:entity", "prov:agent"},
}

const (
	fallbackSrcRole = "prov:from"
	fallbackTgtRole = "prov:to"
)

var nodeKinds = []string{"entity", "activity", "agent"}

// Document is the top-level PROV-JSON object.
type Document map[string]map[string]map[string]string

// Marshal renders a property graph whose node labels are PROV kinds and
// whose edge labels are PROV relation names into PROV-JSON bytes.
func Marshal(g *graph.Graph) ([]byte, error) {
	doc := Document{}
	section := func(name string) map[string]map[string]string {
		if doc[name] == nil {
			doc[name] = map[string]map[string]string{}
		}
		return doc[name]
	}
	for _, n := range g.Nodes() {
		if !isNodeKind(n.Label) {
			return nil, fmt.Errorf("provjson: node %s has non-PROV label %q", n.ID, n.Label)
		}
		entry := map[string]string{}
		for k, v := range n.Props {
			entry[k] = v
		}
		section(n.Label)[string(n.ID)] = entry
	}
	for _, e := range g.Edges() {
		roles, ok := relationRoles[e.Label]
		if !ok {
			roles = [2]string{fallbackSrcRole, fallbackTgtRole}
		}
		entry := map[string]string{
			roles[0]: string(e.Src),
			roles[1]: string(e.Tgt),
		}
		for k, v := range e.Props {
			entry[k] = v
		}
		section(e.Label)[string(e.ID)] = entry
	}
	return json.MarshalIndent(doc, "", "  ")
}

// Unmarshal parses PROV-JSON bytes back into a property graph. Element
// ordering is deterministic (sorted by id within each section).
func Unmarshal(data []byte) (*graph.Graph, error) {
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("provjson: %w", err)
	}
	g := graph.New()
	// Nodes first: relations reference them.
	for _, kind := range nodeKinds {
		ids := sortedKeys(doc[kind])
		for _, id := range ids {
			props := graph.Properties{}
			for k, v := range doc[kind][id] {
				props[k] = v
			}
			if len(props) == 0 {
				props = nil
			}
			if err := g.InsertNode(graph.ElemID(id), kind, props); err != nil {
				return nil, fmt.Errorf("provjson: %w", err)
			}
		}
	}
	relNames := make([]string, 0, len(doc))
	for name := range doc {
		if !isNodeKind(name) && name != "prefix" {
			relNames = append(relNames, name)
		}
	}
	sort.Strings(relNames)
	for _, rel := range relNames {
		roles, ok := relationRoles[rel]
		if !ok {
			roles = [2]string{fallbackSrcRole, fallbackTgtRole}
		}
		for _, id := range sortedKeys(doc[rel]) {
			entry := doc[rel][id]
			src, okS := entry[roles[0]]
			tgt, okT := entry[roles[1]]
			if !okS || !okT {
				return nil, fmt.Errorf("provjson: relation %s/%s lacks %s or %s", rel, id, roles[0], roles[1])
			}
			props := graph.Properties{}
			for k, v := range entry {
				if k != roles[0] && k != roles[1] {
					props[k] = v
				}
			}
			if len(props) == 0 {
				props = nil
			}
			if err := g.InsertEdge(graph.ElemID(id), graph.ElemID(src), graph.ElemID(tgt), rel, props); err != nil {
				return nil, fmt.Errorf("provjson: %w", err)
			}
		}
	}
	return g, nil
}

func isNodeKind(s string) bool {
	for _, k := range nodeKinds {
		if s == k {
			return true
		}
	}
	return false
}

func sortedKeys(m map[string]map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
