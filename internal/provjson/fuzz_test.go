package provjson

import (
	"testing"

	"provmark/internal/graph"
)

// FuzzProvJSONRoundTrip checks that any PROV-JSON document the parser
// accepts survives a Marshal/Unmarshal round trip unchanged: the graph
// model loses no information the parser captured, and Marshal never
// emits output the parser rejects.
func FuzzProvJSONRoundTrip(f *testing.F) {
	f.Add([]byte(`{"entity":{"e1":{"prov:type":"file"}},"activity":{"a1":{}},"used":{"u1":{"prov:activity":"a1","prov:entity":"e1","ts":"3"}}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"agent":{"g":{}},"custom":{"c":{"prov:from":"g","prov:to":"g","weight":"2"}}}`))
	f.Add([]byte(`{"entity":{"a":{},"b":{}},"wasDerivedFrom":{"d":{"prov:generatedEntity":"a","prov:usedEntity":"b"}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		g1, err := Unmarshal(data)
		if err != nil {
			t.Skip() // not a parseable document
		}
		out, err := Marshal(g1)
		if err != nil {
			t.Fatalf("marshal of parsed graph failed: %v\ninput: %s", err, data)
		}
		g2, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-parse of marshalled output failed: %v\noutput: %s", err, out)
		}
		if !graph.Equal(g1, g2) {
			t.Fatalf("round trip changed the graph:\nbefore:\n%s\nafter:\n%s\nserialized:\n%s", g1, g2, out)
		}
	})
}
