package jobs_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"provmark/internal/httpmw"
	"provmark/internal/jobs"
	"provmark/internal/jobs/client"
	"provmark/internal/wire"
)

// doReq issues one request with optional bearer token and returns
// (status, body, header).
func doReq(t *testing.T, method, url, token, body string) (int, string, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data), resp.Header
}

// TestMiddlewareEndToEnd is the acceptance e2e for the chain: an
// unauthenticated request gets 401, an authenticated submit succeeds,
// the next request 429s under a 1-token bucket, and GET /metrics
// (rate-limit exempt) reports the rejection.
func TestMiddlewareEndToEnd(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2, StoreSize: 16})
	defer m.Close()
	const token = "e2e-secret"
	ts := newTestServer(t, m,
		jobs.WithAuthToken(token),
		// One token, essentially never refilled: the authed submit
		// spends it and every later non-exempt request must 429.
		jobs.WithRateLimit(0.0001, 1),
	)

	// /healthz stays open: liveness probes carry no credential.
	if code, _, _ := doReq(t, "GET", ts.URL+"/healthz", "", ""); code != http.StatusOK {
		t.Fatalf("unauthenticated /healthz = %d, want 200", code)
	}

	// Unauthenticated and wrongly authenticated requests are rejected
	// before touching the rate budget.
	for _, tok := range []string{"", "wrong"} {
		code, _, hdr := doReq(t, "GET", ts.URL+"/v1/stats", tok, "")
		if code != http.StatusUnauthorized {
			t.Fatalf("token %q: status %d, want 401", tok, code)
		}
		if hdr.Get("WWW-Authenticate") == "" {
			t.Fatal("401 without WWW-Authenticate")
		}
	}

	// The authenticated submit round-trips and spends the one token.
	code, body, hdr := doReq(t, "POST", ts.URL+"/v1/jobs", token,
		`{"tools":["spade"],"benchmarks":["creat"],"trials":1,"capture":{"fast":true}}`)
	if code != http.StatusAccepted {
		t.Fatalf("authed submit = %d: %s", code, body)
	}
	if hdr.Get(httpmw.RequestIDHeader) == "" {
		t.Error("response carries no X-Request-ID")
	}
	status, err := wire.DecodeJobStatus([]byte(strings.TrimSpace(body)))
	if err != nil {
		t.Fatalf("submit response does not decode: %v", err)
	}

	// Bucket empty: the next application request is rate limited with a
	// Retry-After hint.
	code, body, hdr = doReq(t, "GET", ts.URL+"/v1/jobs/"+status.ID, token, "")
	if code != http.StatusTooManyRequests {
		t.Fatalf("status after bucket exhaustion = %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(body, "rate limit") {
		t.Errorf("429 body = %q", body)
	}

	// /metrics is rate-limit exempt (but still authed) and reports the
	// rejection plus the session the bucket tracked.
	if code, _, _ := doReq(t, "GET", ts.URL+"/metrics", "", ""); code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /metrics = %d, want 401", code)
	}
	code, metrics, _ := doReq(t, "GET", ts.URL+"/metrics", token, "")
	if code != http.StatusOK {
		t.Fatalf("authed /metrics = %d", code)
	}
	for _, want := range []string{
		"provmarkd_rate_limit_rejections_total 1",
		"provmarkd_sessions 1",
		`provmarkd_http_requests_total{route="POST /v1/jobs",code="202"} 1`,
		`code="401"`,
		`code="429"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Let the submitted job settle before the manager closes.
	if job, ok := m.Job(status.ID); ok {
		select {
		case <-job.Done():
		case <-time.After(15 * time.Second):
			t.Fatal("submitted job never settled")
		}
	}
}

// TestSessionQuotaEndToEnd: a session's lifetime budget runs dry with
// a distinct 429 body, while other sessions keep working.
func TestSessionQuotaEndToEnd(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	ts := newTestServer(t, m, jobs.WithSessionQuota(2))

	get := func(session string) (int, string) {
		req, err := http.NewRequest("GET", ts.URL+"/v1/stats", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Session-ID", session)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}
	for i := 0; i < 2; i++ {
		if code, body := get("alice"); code != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, code, body)
		}
	}
	code, body := get("alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429", code)
	}
	if !strings.Contains(body, "quota") || strings.Contains(body, "rate limit") {
		t.Fatalf("quota 429 body not distinct: %q", body)
	}
	if code, _ := get("bob"); code != http.StatusOK {
		t.Fatalf("fresh session rejected: %d", code)
	}
	if code, metrics, _ := doReq(t, "GET", ts.URL+"/metrics", "", ""); code != http.StatusOK ||
		!strings.Contains(metrics, "provmarkd_quota_rejections_total 1") {
		t.Fatalf("quota rejection not exported (code %d)", code)
	}
}

// TestMetricsMoveAfterJob: the /metrics surface reflects a real job —
// request counters, store puts, and job-state gauges all move.
func TestMetricsMoveAfterJob(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2, StoreSize: 16})
	defer m.Close()
	ts := newTestServer(t, m)

	c := client.New(ts.URL, nil)
	if _, err := c.Run(context.Background(), &wire.JobSpec{
		Tools:      []string{"jobstest-counting"},
		Benchmarks: []string{"creat"},
		Trials:     2,
		Capture:    &wire.CaptureOptions{Fast: true},
	}, func(cell *wire.MatrixResult) error {
		if cell.Err != "" {
			return errors.New("cell error: " + cell.Err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	code, metrics, _ := doReq(t, "GET", ts.URL+"/metrics", "", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		`provmarkd_http_requests_total{route="POST /v1/jobs",code="202"} 1`,
		`provmarkd_http_requests_total{route="GET /v1/jobs/{id}/stream",code="200"} 1`,
		"provmarkd_store_puts_total 1",
		"provmarkd_jobs_done 1",
		"provmarkd_store_len 1",
		"# TYPE provmarkd_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestOversizedBodies: the submit and query handlers distinguish an
// oversized body (413, from the body cap) from a malformed one (400).
func TestOversizedBodies(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	ts := newTestServer(t, m)

	huge := `{"tools":["spade"],"pad":"` + strings.Repeat("x", 2<<20) + `"}`
	for _, path := range []string{"/v1/jobs", "/v1/query"} {
		code, body, _ := doReq(t, "POST", ts.URL+path, "", huge)
		if code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body = %d, want 413 (%s)", path, code, body)
		}
		if code, _, _ := doReq(t, "POST", ts.URL+path, "", "not json"); code != http.StatusBadRequest {
			t.Errorf("%s malformed body = %d, want 400", path, code)
		}
	}
	// The failed queries land in the error counters (decode/oversize
	// both count as query errors).
	_, stats, _ := doReq(t, "GET", ts.URL+"/v1/stats", "", "")
	if !strings.Contains(stats, `"errors":2`) {
		t.Errorf("query errors not counted: %s", stats)
	}
}

// TestStreamDisconnectCancelsJobFullChain reruns the owner-cancel
// disconnect flow with EVERY middleware layer installed — auth, rate
// limiting (generous), quota — proving the chain's response wrappers
// preserve flushing and disconnect detection, and that no goroutines
// leak. It reuses the gate/barrier machinery from e2e_test.go.
func TestStreamDisconnectCancelsJobFullChain(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	const token = "chain-secret"
	ts := newTestServer(t, m,
		jobs.WithAuthToken(token),
		jobs.WithRateLimit(1000, 1000),
		jobs.WithSessionQuota(1000),
	)

	gateStarted, gateRelease := resetGate()
	baseline := runtime.NumGoroutine()

	code, body, _ := doReq(t, "POST", ts.URL+"/v1/jobs", token,
		`{"tools":["jobstest-gate"],"benchmarks":["creat","open","close"],"trials":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", code, body)
	}
	status, err := wire.DecodeJobStatus([]byte(strings.TrimSpace(body)))
	if err != nil {
		t.Fatal(err)
	}
	job, ok := m.Job(status.ID)
	if !ok {
		t.Fatal("job not registered")
	}

	// Both pool workers enter blocked recordings.
	for i := 0; i < 2; i++ {
		select {
		case <-gateStarted:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never reached the recorder")
		}
	}

	// Open the stream through the full chain, then vanish mid-stream.
	streamCtx, cancelStream := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, ts.URL+"/v1/jobs/"+status.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	streamResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", streamResp.Status)
	}
	cancelStream()
	io.Copy(io.Discard, streamResp.Body)
	streamResp.Body.Close()

	// The server notices the vanished stream owner through the chain's
	// wrapped writer and cancels the job.
	select {
	case <-job.Canceled():
	case <-time.After(10 * time.Second):
		t.Fatal("stream disconnect did not cancel the job under the full chain")
	}
	close(gateRelease)
	select {
	case <-job.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("job never settled after stream disconnect")
	}

	// No goroutine leak once idle HTTP connections are dropped.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMisorderedChainFailsStartup mirrors provmarkd's fail-fast
// guarantee at the jobs layer: chain assembly errors surface from
// NewServer-style construction rather than at request time.
func TestMisorderedChainFailsStartup(t *testing.T) {
	_, err := httpmw.NewChain(
		httpmw.BodyLimitLayer(1024),
		httpmw.RecoverLayer(nil),
	)
	if err == nil {
		t.Fatal("misordered chain did not fail")
	}
	for _, want := range []string{`"recover"`, `"bodylimit"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name layer %s", err, want)
		}
	}
}
