package jobs

import (
	"container/list"
	"sync"

	"provmark/internal/wire"
)

// DefaultStoreSize bounds the shared result store when the manager's
// configuration does not say otherwise.
const DefaultStoreSize = 1024

// Store is the size-bounded, LRU-evicting result store shared by every
// job of a manager. It deduplicates identical (tool, benchmark,
// options) cells: a cell whose key is present is served from the store
// without re-running the pipeline. Stored results are shared pointers
// and must be treated as immutable.
type Store struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     list.List // front = most recently used
	stats   StoreStats
}

// StoreStats counts store traffic; the Hits counter is how tests (and
// operators) observe deduplication.
type StoreStats struct {
	Hits      int64
	Misses    int64
	Puts      int64
	Evictions int64
}

type storeEntry struct {
	key string
	res *wire.Result
}

// NewStore builds a result store bounded to max entries; max < 1
// selects DefaultStoreSize.
func NewStore(max int) *Store {
	if max < 1 {
		max = DefaultStoreSize
	}
	return &Store{max: max, entries: make(map[string]*list.Element)}
}

// Get returns the stored result for a cell key and counts a hit or a
// miss. A hit refreshes the entry's recency.
func (s *Store) Get(key string) (*wire.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	s.stats.Hits++
	s.lru.MoveToFront(el)
	return el.Value.(*storeEntry).res, true
}

// Peek returns the stored result without touching recency or the
// hit/miss counters — the read path of GET /v1/results/{cell}, which
// must not skew the dedup statistics jobs are measured by.
func (s *Store) Peek(key string) (*wire.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return nil, false
	}
	return el.Value.(*storeEntry).res, true
}

// Put stores a cell result, evicting the least recently used entry
// when the bound is exceeded. Re-putting an existing key refreshes its
// value and recency.
func (s *Store) Put(key string, res *wire.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*storeEntry).res = res
		s.lru.MoveToFront(el)
		return
	}
	s.entries[key] = s.lru.PushFront(&storeEntry{key: key, res: res})
	s.stats.Puts++
	for len(s.entries) > s.max {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*storeEntry).key)
		s.stats.Evictions++
	}
}

// Len reports the number of stored results.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
