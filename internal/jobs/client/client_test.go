package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newRetryServer answers 429 (with the given Retry-After) until
// failures requests have been rejected, then 200.
func newRetryServer(t *testing.T, failures int, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= int64(failures) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// fastClient swaps the retry sleeper for one that records the waits
// instead of taking them.
func fastClient(base string) (*Client, *[]time.Duration) {
	c := New(base, nil)
	waits := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return ctx.Err()
	}
	return c, waits
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	ts, hits := newRetryServer(t, 2, "")
	c, waits := fastClient(ts.URL)
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health after transient 429s: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3", got)
	}
	// Backoff grows: the second wait is no shorter than half the
	// doubled base can be relative to the first's ceiling.
	if len(*waits) != 2 {
		t.Fatalf("slept %d times, want 2", len(*waits))
	}
	for i, d := range *waits {
		if d <= 0 {
			t.Errorf("wait %d = %v, want > 0", i, d)
		}
	}
	if (*waits)[1] > 2*DefaultRetryPolicy.BaseDelay || (*waits)[1] < DefaultRetryPolicy.BaseDelay {
		t.Errorf("second wait %v outside jittered doubled base [%v, %v]",
			(*waits)[1], DefaultRetryPolicy.BaseDelay, 2*DefaultRetryPolicy.BaseDelay)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	ts, _ := newRetryServer(t, 1, "7")
	c, waits := fastClient(ts.URL)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(*waits) != 1 || (*waits)[0] != 7*time.Second {
		t.Fatalf("waits = %v, want exactly the server's 7s Retry-After", *waits)
	}
}

func TestRetryBounded(t *testing.T) {
	ts, hits := newRetryServer(t, 1<<30, "")
	c, _ := fastClient(ts.URL)
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("endless 429s eventually succeeded?")
	}
	if got := hits.Load(); got != int64(DefaultRetryPolicy.Attempts) {
		t.Fatalf("server saw %d requests, want the %d-attempt bound", got, DefaultRetryPolicy.Attempts)
	}
}

func TestRetryContextCanceled(t *testing.T) {
	ts, hits := newRetryServer(t, 1<<30, "3600")
	c := New(ts.URL, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.Health(ctx)
	if err == nil {
		t.Fatal("Health succeeded under a canceled context")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context cancellation did not interrupt the Retry-After sleep (%v)", elapsed)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests after cancellation, want 1", got)
	}
}

func TestRetryOn503(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	c, _ := fastClient(ts.URL)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

// TestNoRetryOnClientError: a 4xx other than 429 is the caller's bug;
// replaying it would be noise.
func TestNoRetryOnClientError(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "bad spec", http.StatusBadRequest)
	}))
	t.Cleanup(ts.Close)
	c, _ := fastClient(ts.URL)
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("400 reported as success")
	}
	if hits.Load() != 1 {
		t.Fatalf("400 retried: server saw %d requests", hits.Load())
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"2", 2 * time.Second},
		{"-3", 0},
		{"garbage", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.in); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	// HTTP-date form: a date ~10s out parses to a positive wait ≤ 10s.
	date := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(date); got <= 0 || got > 10*time.Second {
		t.Errorf("parseRetryAfter(%q) = %v", date, got)
	}
	// A date in the past means "now": no wait.
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Errorf("parseRetryAfter(past) = %v", got)
	}
}

func TestSendsBearerToken(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("Authorization"))
		w.Write([]byte(`{"status":"ok"}`))
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL, nil)
	c.SetAuthToken("sesame")
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got.Load() != "Bearer sesame" {
		t.Fatalf("Authorization = %q", got.Load())
	}
}
