// Package client is the Go client for provmarkd's /v1 job API. It
// speaks only the versioned wire vocabulary (internal/wire), so local
// and remote execution share one schema; provmark-batch uses it for
// its --remote mode.
//
// Requests rejected with 429 (rate limited) or 503 (shutting down /
// overloaded) are retried with jittered exponential backoff honoring
// the server's Retry-After header — both statuses mean the server
// refused the request before processing it, so replaying is safe even
// for POSTs. Retries are bounded (RetryPolicy) and context-aware.
package client

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"provmark/internal/wire"
)

// maxLineBytes bounds one NDJSON stream line (cells embed three
// graphs; generous but finite).
const maxLineBytes = 32 << 20

// RetryPolicy bounds the client's 429/503 retry loop.
type RetryPolicy struct {
	// Attempts is the total number of tries per request (1 = no
	// retries).
	Attempts int
	// BaseDelay seeds the exponential backoff (doubled per attempt,
	// halved-to-full jittered).
	BaseDelay time.Duration
	// MaxDelay caps the computed backoff. A server Retry-After larger
	// than the cap is still honored — the header is authoritative.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is installed by New: 4 attempts, 100ms base,
// capped at 5s.
var DefaultRetryPolicy = RetryPolicy{Attempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}

// Client talks to one provmarkd instance.
type Client struct {
	base string
	hc   *http.Client
	// Retry governs 429/503 handling; adjust it before issuing
	// requests. A zero Attempts disables retries.
	Retry RetryPolicy
	// token is the optional bearer credential; see SetAuthToken.
	token string
	// sleep is swapped by tests to observe backoff without waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for a base URL like "http://host:8177". A nil
// http.Client selects http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(base, "/"),
		hc:    hc,
		Retry: DefaultRetryPolicy,
		sleep: sleepCtx,
	}
}

// SetAuthToken attaches a bearer token to every request (provmarkd's
// -auth-token). An empty token clears it.
func (c *Client) SetAuthToken(token string) { c.token = token }

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("provmarkd health: %s", resp.Status)
	}
	return nil
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec *wire.JobSpec) (*wire.JobStatus, error) {
	body, err := wire.EncodeJobSpec(spec)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusAccepted {
		return nil, httpError("submit job", resp)
	}
	return decodeStatus(resp.Body)
}

// Status fetches GET /v1/jobs/{id}.
func (c *Client) Status(ctx context.Context, id string) (*wire.JobStatus, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("job status", resp)
	}
	return decodeStatus(resp.Body)
}

// Result fetches a stored cell result by dedup key.
func (c *Client) Result(ctx context.Context, cellKey string) (*wire.Result, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/results/"+cellKey, nil)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("cell result", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(bytes.TrimSpace(data))
}

// QueryRejectedError is a 422 whose body carried structured analysis
// diagnostics: the server's static analyzer refused the rule program
// before evaluation. Response.Diagnostics holds the positioned
// findings.
type QueryRejectedError struct {
	Response *wire.QueryResponse
}

func (e *QueryRejectedError) Error() string {
	errs, warns := 0, 0
	first := ""
	for _, d := range e.Response.Diagnostics {
		switch d.Severity {
		case wire.DiagError:
			if errs == 0 {
				first = d.Message
			}
			errs++
		case wire.DiagWarning:
			warns++
		}
	}
	return fmt.Sprintf("provmarkd query: 422 rules rejected by analysis: %d error(s), %d warning(s), first: %s", errs, warns, first)
}

// Query posts a Datalog query against a stored cell (POST /v1/query)
// and returns the decoded bindings. A 422 carrying a decodable wire
// response comes back as *QueryRejectedError with the analyzer's
// structured diagnostics; other non-200s are plain errors.
func (c *Client) Query(ctx context.Context, req *wire.QueryRequest) (*wire.QueryResponse, error) {
	body, err := wire.EncodeQueryRequest(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/query", body)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode == http.StatusUnprocessableEntity {
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxLineBytes))
		if err != nil {
			return nil, err
		}
		if qr, err := wire.DecodeQueryResponse(bytes.TrimSpace(data)); err == nil && len(qr.Diagnostics) > 0 {
			return nil, &QueryRejectedError{Response: qr}
		}
		return nil, fmt.Errorf("provmarkd query: %s: %s", resp.Status, bytes.TrimSpace(data))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("query", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeQueryResponse(bytes.TrimSpace(data))
}

// Stream follows GET /v1/jobs/{id}/stream, invoking fn for every
// decoded cell. It returns when the stream ends, ctx is done, or fn
// errors; aborting a stream tells the server to cancel the job (the
// stream client owns the job). Only the initial request is retried —
// once NDJSON bytes flow, a drop aborts (replaying mid-stream would
// re-deliver cells).
func (c *Client) Stream(ctx context.Context, id string, fn func(*wire.MatrixResult) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return httpError("job stream", resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		cell, err := wire.DecodeMatrixResult(line)
		if err != nil {
			return fmt.Errorf("provmarkd stream: %w", err)
		}
		if err := fn(cell); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("provmarkd stream: %w", err)
	}
	return nil
}

// Run submits a spec, streams every cell through fn, and returns the
// job's final status.
func (c *Client) Run(ctx context.Context, spec *wire.JobSpec, fn func(*wire.MatrixResult) error) (*wire.JobStatus, error) {
	status, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if err := c.Stream(ctx, status.ID, fn); err != nil {
		return nil, err
	}
	return c.Status(ctx, status.ID)
}

// do issues one request, replaying it on 429/503 up to
// Retry.Attempts times. The request body is a byte slice precisely so
// every attempt can resend it. Backoff is exponential with jitter,
// raised to the server's Retry-After when the header asks for more.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	attempts := c.Retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		if !retryable(resp.StatusCode) || attempt+1 >= attempts {
			return resp, nil
		}
		delay := c.Retry.delay(attempt, resp.Header.Get("Retry-After"))
		drain(resp)
		if err := c.sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
}

// retryable statuses mean "not processed, try later": rate limited or
// temporarily unavailable.
func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// delay computes the wait before retry number attempt+1: exponential
// backoff from BaseDelay, jittered to [d/2, d), capped at MaxDelay —
// then raised to the server's Retry-After if that is longer, because
// retrying earlier than the server asked is guaranteed rejection.
func (p RetryPolicy) delay(attempt int, retryAfter string) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = DefaultRetryPolicy.BaseDelay
	}
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if ra := parseRetryAfter(retryAfter); ra > d {
		d = ra
	}
	return d
}

// parseRetryAfter reads an RFC 9110 Retry-After value: delay-seconds
// or an HTTP-date. Unparseable or absent values yield 0.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func decodeStatus(r io.Reader) (*wire.JobStatus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return wire.DecodeJobStatus(bytes.TrimSpace(data))
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	return fmt.Errorf("provmarkd %s: %s: %s", op, resp.Status, bytes.TrimSpace(msg))
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
