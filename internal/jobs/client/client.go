// Package client is the Go client for provmarkd's /v1 job API. It
// speaks only the versioned wire vocabulary (internal/wire), so local
// and remote execution share one schema; provmark-batch uses it for
// its --remote mode.
package client

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"

	"provmark/internal/wire"
)

// maxLineBytes bounds one NDJSON stream line (cells embed three
// graphs; generous but finite).
const maxLineBytes = 32 << 20

// Client talks to one provmarkd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for a base URL like "http://host:8177". A nil
// http.Client selects http.DefaultClient.
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	resp, err := c.get(ctx, "/healthz")
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("provmarkd health: %s", resp.Status)
	}
	return nil
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec *wire.JobSpec) (*wire.JobStatus, error) {
	body, err := wire.EncodeJobSpec(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusAccepted {
		return nil, httpError("submit job", resp)
	}
	return decodeStatus(resp.Body)
}

// Status fetches GET /v1/jobs/{id}.
func (c *Client) Status(ctx context.Context, id string) (*wire.JobStatus, error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("job status", resp)
	}
	return decodeStatus(resp.Body)
}

// Result fetches a stored cell result by dedup key.
func (c *Client) Result(ctx context.Context, cellKey string) (*wire.Result, error) {
	resp, err := c.get(ctx, "/v1/results/"+cellKey)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("cell result", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeResult(bytes.TrimSpace(data))
}

// Query posts a Datalog query against a stored cell (POST /v1/query)
// and returns the decoded bindings.
func (c *Client) Query(ctx context.Context, req *wire.QueryRequest) (*wire.QueryResponse, error) {
	body, err := wire.EncodeQueryRequest(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("query", resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return wire.DecodeQueryResponse(bytes.TrimSpace(data))
}

// Stream follows GET /v1/jobs/{id}/stream, invoking fn for every
// decoded cell. It returns when the stream ends, ctx is done, or fn
// errors; aborting a stream tells the server to cancel the job (the
// stream client owns the job).
func (c *Client) Stream(ctx context.Context, id string, fn func(*wire.MatrixResult) error) error {
	resp, err := c.get(ctx, "/v1/jobs/"+id+"/stream")
	if err != nil {
		return err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK {
		return httpError("job stream", resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), maxLineBytes)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		cell, err := wire.DecodeMatrixResult(line)
		if err != nil {
			return fmt.Errorf("provmarkd stream: %w", err)
		}
		if err := fn(cell); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("provmarkd stream: %w", err)
	}
	return nil
}

// Run submits a spec, streams every cell through fn, and returns the
// job's final status.
func (c *Client) Run(ctx context.Context, spec *wire.JobSpec, fn func(*wire.MatrixResult) error) (*wire.JobStatus, error) {
	status, err := c.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	if err := c.Stream(ctx, status.ID, fn); err != nil {
		return nil, err
	}
	return c.Status(ctx, status.ID)
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	return c.hc.Do(req)
}

func decodeStatus(r io.Reader) (*wire.JobStatus, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return wire.DecodeJobStatus(bytes.TrimSpace(data))
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	return fmt.Errorf("provmarkd %s: %s: %s", op, resp.Status, bytes.TrimSpace(msg))
}

func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
