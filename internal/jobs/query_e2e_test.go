package jobs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strings"
	"testing"

	"provmark/internal/jobs"
	"provmark/internal/jobs/client"
	"provmark/internal/wire"

	_ "provmark/internal/capture/camflow"
)

// TestQueryEndToEnd is the acceptance flow for provenance querying:
// run a camflow/privesc cell through the service, then evaluate the
// checked-in Dora attack-pattern rules against the stored cell over
// POST /v1/query, asserting deterministic sorted bindings and the
// /v1/stats query counters.
func TestQueryEndToEnd(t *testing.T) {
	ctx := context.Background()
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	srv := newTestServer(t, m)
	c := client.New(srv.URL, srv.Client())

	// Run the privesc benchmark so a cell lands in the store.
	var cellKey string
	status, err := c.Run(ctx, &wire.JobSpec{Tools: []string{"camflow"}, Benchmarks: []string{"privesc"}}, func(cell *wire.MatrixResult) error {
		cellKey = cell.Cell
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status.State != wire.JobDone || cellKey == "" {
		t.Fatalf("job = %+v, cell = %q", status, cellKey)
	}

	rules, err := os.ReadFile("../../examples/detection/suspicious.dl")
	if err != nil {
		t.Fatal(err)
	}

	// The Dora goal: suspicious(P) must bind the escalated task
	// version, deterministically.
	resp, err := c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Rules: string(rules), Goal: "suspicious(P)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || len(resp.Bindings) != 1 || resp.Bindings[0]["P"] != "n16" {
		t.Fatalf("suspicious(P) = %+v, want one binding P=n16", resp)
	}
	if resp.Derived == 0 {
		t.Error("derived = 0, rules derived nothing")
	}

	// Determinism: the same query twice yields byte-identical wire
	// encodings.
	enc1, err := wire.EncodeQueryResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Rules: string(rules), Goal: "suspicious(P)"})
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := wire.EncodeQueryResponse(resp2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("query responses differ:\n%s\n%s", enc1, enc2)
	}

	// The stratified-negation rule (negating the derived dropped/1)
	// evaluates — the naive engine rejected this fragment outright.
	resp, err = c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Rules: string(rules), Goal: "unmitigated(P)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || resp.Bindings[0]["P"] != "n16" {
		t.Errorf("unmitigated(P) = %+v", resp)
	}

	// Recursive ancestry over the same cell.
	resp, err = c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Rules: string(rules), Goal: "tainted(X)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches == 0 {
		t.Error("tainted(X) bound nothing")
	}

	// The generalized foreground graph is also queryable.
	if _, err := c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Graph: wire.QueryGraphFG, Rules: string(rules), Goal: "escalated(P)"}); err != nil {
		t.Fatalf("fg query: %v", err)
	}

	// Analysis warnings ride along on a successful response: an extra
	// rule over an undefined predicate still evaluates, but the
	// analyzer flags it with positioned diagnostics.
	warned := string(rules) + "\nphantomuse(X) :- ghostpred(X).\n"
	resp, err = c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Rules: warned, Goal: "suspicious(P)"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || resp.Bindings[0]["P"] != "n16" {
		t.Errorf("warned query = %+v", resp)
	}
	codes := map[string]bool{}
	for _, d := range resp.Diagnostics {
		if d.Severity != wire.DiagWarning {
			t.Errorf("non-warning diagnostic on a 200: %+v", d)
		}
		codes[d.Code] = true
	}
	if !codes["undefined-predicate"] {
		t.Errorf("missing undefined-predicate warning: %+v", resp.Diagnostics)
	}

	// Client errors: unknown cell is 404, an unsafe program is 422;
	// both land in the error counter, not a match.
	if _, err := c.Query(ctx, &wire.QueryRequest{Cell: "nope", Rules: string(rules), Goal: "suspicious(P)"}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown cell error = %v", err)
	}
	// The unsafe program's 422 now carries structured diagnostics: the
	// client surfaces them as a typed rejection.
	_, err = c.Query(ctx, &wire.QueryRequest{Cell: cellKey, Rules: `bad(X) :- not node(X, "a").`, Goal: "bad(X)"})
	if err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("unsafe program error = %v", err)
	}
	var rejected *client.QueryRejectedError
	if !errors.As(err, &rejected) {
		t.Fatalf("rejection is not a *client.QueryRejectedError: %v", err)
	}
	if rejected.Response.Matches != 0 {
		t.Errorf("rejected response has matches: %+v", rejected.Response)
	}
	rcodes := map[string]int{}
	for _, d := range rejected.Response.Diagnostics {
		if d.Severity == wire.DiagError {
			rcodes[d.Code] = d.Line
		}
	}
	if rcodes["unbound-negation-var"] != 1 || rcodes["unbound-head-var"] != 1 {
		t.Errorf("rejection diagnostics = %+v", rejected.Response.Diagnostics)
	}

	// Raw HTTP decode errors count too (strict wire decode).
	hresp, err := srv.Client().Post(srv.URL+"/v1/query", "application/json", strings.NewReader(`{"cell":"x"}`))
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusBadRequest {
		t.Errorf("goal-less query status = %d", hresp.StatusCode)
	}

	// /v1/stats surfaces the query counters.
	var stats struct {
		Schema  int `json:"schema"`
		Store   any `json:"store"`
		Queries struct {
			Total   int64 `json:"total"`
			Matched int64 `json:"matched"`
			Errors  int64 `json:"errors"`
		} `json:"queries"`
		Jobs any `json:"jobs"`
	}
	sresp, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	// 6 successful queries (5 matched + 1 fg escalated), 3 errors.
	if stats.Queries.Total != 9 {
		t.Errorf("queries.total = %d, want 9", stats.Queries.Total)
	}
	if stats.Queries.Errors != 3 {
		t.Errorf("queries.errors = %d, want 3", stats.Queries.Errors)
	}
	if stats.Queries.Matched < 5 {
		t.Errorf("queries.matched = %d, want >= 5", stats.Queries.Matched)
	}
	if stats.Queries.Matched+stats.Queries.Errors > stats.Queries.Total {
		t.Errorf("inconsistent counters: %+v", stats.Queries)
	}
}

// TestEvalQueryDirect covers the evaluation helper without HTTP: graph
// selector fallbacks and error cases.
func TestEvalQueryDirect(t *testing.T) {
	res := &wire.Result{
		Schema:    wire.SchemaVersion,
		Tool:      "t",
		Benchmark: "b",
		Target: &wire.Graph{
			Nodes: []wire.Node{{ID: "n1", Label: "activity", Props: map[string]string{"cf:uid": "0"}}},
		},
	}
	resp, err := jobs.EvalQuery(&wire.QueryRequest{Cell: "c", Rules: `esc(P) :- node(P, "activity"), prop(P, "cf:uid", "0").`, Goal: "esc(P)"}, res)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || resp.Bindings[0]["P"] != "n1" {
		t.Errorf("EvalQuery = %+v", resp)
	}
	// No FG graph stored: selecting it is a client error.
	if _, err := jobs.EvalQuery(&wire.QueryRequest{Cell: "c", Graph: wire.QueryGraphFG, Goal: "esc(P)"}, res); err == nil {
		t.Error("missing fg graph accepted")
	}
	// Goals may hit base predicates with no rules at all.
	resp, err = jobs.EvalQuery(&wire.QueryRequest{Cell: "c", Goal: `node(X, "activity")`}, res)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Matches != 1 || resp.Derived != 0 {
		t.Errorf("rule-less query = %+v", resp)
	}
}
