package jobs

import (
	"fmt"
	"sync"

	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
	"provmark/internal/wire"
)

// QueryStats counts POST /v1/query traffic — the query half of the
// /v1/stats surface. Matched counts queries whose goal bound at least
// one answer; Errors counts requests that failed anywhere between
// decode and evaluation.
type QueryStats struct {
	Total   int64 `json:"total"`
	Matched int64 `json:"matched"`
	Errors  int64 `json:"errors"`
}

// queryCounters is the manager-owned, concurrency-safe tally.
type queryCounters struct {
	mu sync.Mutex
	s  QueryStats
}

func (c *queryCounters) record(matched bool, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Total++
	if failed {
		c.s.Errors++
	} else if matched {
		c.s.Matched++
	}
}

func (c *queryCounters) snapshot() QueryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// QueryStats returns a snapshot of the manager's query counters.
func (m *Manager) QueryStats() QueryStats { return m.queries.snapshot() }

// RejectedQueryError reports a rule program the static analyzer
// rejected before evaluation. Response is a complete wire response
// (matches 0, at least one error diagnostic) the server returns with
// a 422 so clients get positioned findings instead of one string.
type RejectedQueryError struct {
	Response *wire.QueryResponse
}

func (e *RejectedQueryError) Error() string {
	var first string
	errs := 0
	for _, d := range e.Response.Diagnostics {
		if d.Severity != wire.DiagError {
			continue
		}
		if errs == 0 {
			first = d.Message
		}
		errs++
	}
	return fmt.Sprintf("rules rejected by analysis: %d error(s), first: %s", errs, first)
}

// wireDiagnostics converts analyzer findings to the wire form.
// Unreachable-rule warnings are dropped: on the query path pruning is
// an optimization the caller did not opt into linting (provmark-dlint
// -goal reports them), and the warning would fire on every partly
// reusable rule library.
func wireDiagnostics(diags []analyze.Diagnostic) []wire.QueryDiagnostic {
	var out []wire.QueryDiagnostic
	for _, d := range diags {
		if d.Code == analyze.CodeUnreachableRule {
			continue
		}
		out = append(out, wire.QueryDiagnostic{
			Severity: d.Severity.String(),
			Code:     string(d.Code),
			Message:  d.Message,
			Pred:     d.Pred,
			Line:     d.Span.Line,
			Col:      d.Span.Col,
			EndCol:   d.Span.EndCol,
		})
	}
	return out
}

// EvalQuery evaluates a decoded query request against a stored cell
// result. The submitted program goes through the static analyzer
// first: analysis errors reject the request as a *RejectedQueryError
// (structured diagnostics, nothing evaluated), warnings ride along on
// the response. The accepted program is then optimized for the goal —
// pruned to the goal's dependency closure and reordered bound-first,
// which is binding-preserving — and run on the semi-naive engine over
// the selected graph's facts; the goal's deduplicated, sorted
// bindings come back in wire form. Other errors are client errors
// (bad goal, graph absent from the cell), never server faults.
func EvalQuery(req *wire.QueryRequest, res *wire.Result) (*wire.QueryResponse, error) {
	sel := req.Graph
	if sel == "" {
		sel = wire.QueryGraphTarget
	}
	var wg *wire.Graph
	switch sel {
	case wire.QueryGraphTarget:
		wg = res.Target
	case wire.QueryGraphFG:
		wg = res.FG
	case wire.QueryGraphBG:
		wg = res.BG
	default:
		return nil, fmt.Errorf("unknown graph selector %q", req.Graph)
	}
	if wg == nil {
		return nil, fmt.Errorf("cell has no %s graph (empty result?)", sel)
	}
	g, err := wg.Build()
	if err != nil {
		return nil, fmt.Errorf("materialize %s graph: %w", sel, err)
	}
	goal, err := datalog.ParseAtom(req.Goal)
	if err != nil {
		return nil, fmt.Errorf("goal: %w", err)
	}
	prog, diags := analyze.Check(req.Rules, analyze.Options{Goal: &goal})
	wireDiags := wireDiagnostics(diags)
	if analyze.HasErrors(diags) {
		return nil, &RejectedQueryError{Response: &wire.QueryResponse{
			Schema:      wire.SchemaVersion,
			Cell:        req.Cell,
			Goal:        req.Goal,
			Diagnostics: wireDiags,
		}}
	}
	rules, _ := analyze.Optimize(prog.Rules, goal)
	db := datalog.NewDatabase()
	db.LoadGraph(g)
	if err := db.Run(rules); err != nil {
		// Unreachable: the analyzer's error set covers the engine's
		// rejections; kept as a client error out of caution.
		return nil, err
	}
	bindings := db.Query(goal)
	return &wire.QueryResponse{
		Schema:      wire.SchemaVersion,
		Cell:        req.Cell,
		Goal:        req.Goal,
		Matches:     len(bindings),
		Bindings:    bindings,
		Derived:     db.Stats().Derived,
		Diagnostics: wireDiags,
	}, nil
}
