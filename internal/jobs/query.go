package jobs

import (
	"fmt"
	"sync"

	"provmark/internal/datalog"
	"provmark/internal/wire"
)

// QueryStats counts POST /v1/query traffic — the query half of the
// /v1/stats surface. Matched counts queries whose goal bound at least
// one answer; Errors counts requests that failed anywhere between
// decode and evaluation.
type QueryStats struct {
	Total   int64 `json:"total"`
	Matched int64 `json:"matched"`
	Errors  int64 `json:"errors"`
}

// queryCounters is the manager-owned, concurrency-safe tally.
type queryCounters struct {
	mu sync.Mutex
	s  QueryStats
}

func (c *queryCounters) record(matched bool, failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.s.Total++
	if failed {
		c.s.Errors++
	} else if matched {
		c.s.Matched++
	}
}

func (c *queryCounters) snapshot() QueryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// QueryStats returns a snapshot of the manager's query counters.
func (m *Manager) QueryStats() QueryStats { return m.queries.snapshot() }

// EvalQuery evaluates a decoded query request against a stored cell
// result: the selected graph's facts are loaded into a fresh Datalog
// database, the request's rules run to fixpoint on the semi-naive
// engine, and the goal's deduplicated, sorted bindings come back in
// wire form. Errors are client errors (bad rules, bad goal, graph
// absent from the cell), never server faults.
func EvalQuery(req *wire.QueryRequest, res *wire.Result) (*wire.QueryResponse, error) {
	sel := req.Graph
	if sel == "" {
		sel = wire.QueryGraphTarget
	}
	var wg *wire.Graph
	switch sel {
	case wire.QueryGraphTarget:
		wg = res.Target
	case wire.QueryGraphFG:
		wg = res.FG
	case wire.QueryGraphBG:
		wg = res.BG
	default:
		return nil, fmt.Errorf("unknown graph selector %q", req.Graph)
	}
	if wg == nil {
		return nil, fmt.Errorf("cell has no %s graph (empty result?)", sel)
	}
	g, err := wg.Build()
	if err != nil {
		return nil, fmt.Errorf("materialize %s graph: %w", sel, err)
	}
	rules, err := datalog.ParseRules(req.Rules)
	if err != nil {
		return nil, fmt.Errorf("rules: %w", err)
	}
	goal, err := datalog.ParseAtom(req.Goal)
	if err != nil {
		return nil, fmt.Errorf("goal: %w", err)
	}
	db := datalog.NewDatabase()
	db.LoadGraph(g)
	if err := db.Run(rules); err != nil {
		return nil, err
	}
	bindings := db.Query(goal)
	return &wire.QueryResponse{
		Schema:   wire.SchemaVersion,
		Cell:     req.Cell,
		Goal:     req.Goal,
		Matches:  len(bindings),
		Bindings: bindings,
		Derived:  db.Stats().Derived,
	}, nil
}
