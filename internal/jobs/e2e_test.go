package jobs_test

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/capture/spade"
	"provmark/internal/jobs"
	"provmark/internal/jobs/client"
	"provmark/internal/provmark"
	"provmark/internal/wire"
)

// recordCalls counts Record invocations through the jobstest-counting
// backend, so tests can assert a deduplicated job re-records nothing.
var recordCalls atomic.Int64

// gate coordinates the jobstest-gate backend: each Record signals
// started, then blocks until the test releases it. The channels are
// re-created per test run (go test -count>1 reuses package state).
var gate = struct {
	mu      sync.Mutex
	started chan struct{}
	release chan struct{}
}{started: make(chan struct{}, 64), release: make(chan struct{})}

func resetGate() (started, release chan struct{}) {
	gate.mu.Lock()
	defer gate.mu.Unlock()
	gate.started = make(chan struct{}, 64)
	gate.release = make(chan struct{})
	return gate.started, gate.release
}

func gateChans() (started, release chan struct{}) {
	gate.mu.Lock()
	defer gate.mu.Unlock()
	return gate.started, gate.release
}

type countingRecorder struct{ capture.Recorder }

func (c countingRecorder) Record(prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	recordCalls.Add(1)
	return c.Recorder.Record(prog, v, trial)
}

type gatedRecorder struct{ capture.Recorder }

func (g gatedRecorder) Record(prog benchprog.Program, v benchprog.Variant, trial int) (capture.Native, error) {
	started, release := gateChans()
	started <- struct{}{}
	<-release
	return g.Recorder.Record(prog, v, trial)
}

func init() {
	capture.MustRegister("jobstest-counting", func(capture.Options) (capture.Recorder, error) {
		return countingRecorder{spade.New(spade.DefaultConfig())}, nil
	})
	capture.MustRegister("jobstest-gate", func(capture.Options) (capture.Recorder, error) {
		return gatedRecorder{spade.New(spade.DefaultConfig())}, nil
	})
}

// newTestServer wraps a manager in the (chain-validated) HTTP surface
// and an httptest server. Options pass through to jobs.NewServer, so
// middleware e2e tests build servers with auth/rate/quota enabled.
func newTestServer(t *testing.T, m *jobs.Manager, opts ...jobs.ServerOption) *httptest.Server {
	t.Helper()
	h, err := jobs.NewServer(m, opts...)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// TestServiceEndToEnd is the acceptance flow: submit a multi-cell
// matrix job over HTTP, stream its NDJSON cells, decode them through
// internal/wire, check Render(..., JSON) is byte-identical for every
// streamed Result, then submit the identical job again and observe it
// served entirely from the dedup store without re-recording.
func TestServiceEndToEnd(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 4, StoreSize: 64})
	defer m.Close()
	ts := newTestServer(t, m)

	spec := `{"tools":["jobstest-counting"],"benchmarks":["creat","open"],"trials":2,"capture":{"fast":true}}`
	const wantCells = 2

	// Submit over HTTP.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	status, err := wire.DecodeJobStatus(bytes.TrimSpace(body))
	if err != nil {
		t.Fatalf("submit response does not strict-decode: %v\n%s", err, body)
	}
	if status.Total != wantCells || len(status.Cells) != wantCells {
		t.Fatalf("job status = %+v, want %d cells", status, wantCells)
	}

	// Stream the NDJSON cells and decode each line via the wire schema.
	cells := streamCells(t, ts.URL, status.ID)
	if len(cells) != wantCells {
		t.Fatalf("streamed %d cells, want %d", len(cells), wantCells)
	}
	recordsAfterFirst := recordCalls.Load()
	if recordsAfterFirst == 0 {
		t.Fatal("first job recorded nothing")
	}
	seen := map[string]bool{}
	for _, cell := range cells {
		if cell.Err != "" {
			t.Fatalf("cell %s/%s failed: %s", cell.Tool, cell.Benchmark, cell.Err)
		}
		if cell.Cached {
			t.Errorf("first run of cell %s served from store", cell.Benchmark)
		}
		seen[cell.Benchmark] = true

		// Byte-identical rendering: decoding the streamed Result and
		// re-rendering it as JSON must reproduce the wire bytes.
		enc, err := wire.EncodeResult(cell.Result)
		if err != nil {
			t.Fatal(err)
		}
		res, err := provmark.FromWire(cell.Result)
		if err != nil {
			t.Fatalf("streamed result does not materialize: %v", err)
		}
		if got, want := provmark.Render(res, provmark.JSON), string(enc)+"\n"; got != want {
			t.Errorf("Render(JSON) diverges from streamed wire bytes for %s:\n%s\nvs\n%s", cell.Benchmark, got, want)
		}

		// The per-cell result endpoint serves the stored wire form.
		stored := getOK(t, ts.URL+"/v1/results/"+cell.Cell)
		if !bytes.Equal(bytes.TrimSpace(stored), enc) {
			t.Errorf("stored cell %s differs from streamed cell", cell.Cell)
		}
	}
	if !seen["creat"] || !seen["open"] {
		t.Fatalf("missing benchmarks in stream: %v", seen)
	}

	// Job settles as done.
	final, err := wire.DecodeJobStatus(bytes.TrimSpace(getOK(t, ts.URL+"/v1/jobs/"+status.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if final.State != wire.JobDone || final.Completed != wantCells || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}

	// A second identical job must be served from the dedup store:
	// every cell cached, the hit counter up by the cell count, and no
	// new Record calls. Exercise the client package for this leg.
	hitsBefore := m.Store().Stats().Hits
	c := client.New(ts.URL, nil)
	var cached int
	status2, err := c.Run(context.Background(), &wire.JobSpec{
		Tools:      []string{"jobstest-counting"},
		Benchmarks: []string{"creat", "open"},
		Trials:     2,
		Capture:    &wire.CaptureOptions{Fast: true},
	}, func(cell *wire.MatrixResult) error {
		if cell.Cached {
			cached++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if status2.State != wire.JobDone {
		t.Fatalf("second job state = %s", status2.State)
	}
	if cached != wantCells {
		t.Errorf("second job served %d/%d cells from store", cached, wantCells)
	}
	if hits := m.Store().Stats().Hits - hitsBefore; hits != wantCells {
		t.Errorf("store hits moved by %d, want %d", hits, wantCells)
	}
	if got := recordCalls.Load(); got != recordsAfterFirst {
		t.Errorf("second job re-recorded: %d calls after first, %d after second", recordsAfterFirst, got)
	}
}

// TestManagerEvictsFinishedJobs: retention is bounded — submitting
// past MaxJobs drops the oldest finished job (and its payloads) while
// the dedup store keeps serving its cells.
func TestManagerEvictsFinishedJobs(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2, MaxJobs: 2})
	defer m.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := m.Submit(&wire.JobSpec{Tools: []string{"spade"}, Benchmarks: []string{"creat"}, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-j.Done():
		case <-time.After(15 * time.Second):
			t.Fatal("job never finished")
		}
		ids = append(ids, j.ID())
	}
	if _, ok := m.Job(ids[0]); ok {
		t.Error("oldest finished job not evicted past MaxJobs")
	}
	for _, id := range ids[1:] {
		if _, ok := m.Job(id); !ok {
			t.Errorf("job %s evicted while within the retention bound", id)
		}
	}
	if got := len(m.Jobs()); got != 2 {
		t.Errorf("retained %d jobs, want 2", got)
	}
}

// TestServerRejectsBadSpecs maps spec validation onto HTTP 400.
func TestServerRejectsBadSpecs(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	ts := newTestServer(t, m)
	bad := []string{
		`{"benchmarks":["creat"]}`,                  // no tools
		`{"tools":["no-such-tool"]}`,                // unknown backend
		`{"tools":["spade"],"benchmarks":["nope"]}`, // unknown benchmark
		`{"tools":["spade"],"bg_pair":"widest"}`,    // bad extreme
		`{"tools":["spade"],"unknown_field":true}`,  // strict decode
		`not json`,                       //
		`{"tools":["spade"],"schema":9}`, // wrong version
	}
	for _, spec := range bad {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: status %s, want 400", spec, resp.Status)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/j99"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %s, want 404", resp.Status)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/results/unknowncell"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown cell: status %s, want 404", resp.Status)
		}
	}
}

// TestStreamDisconnectCancelsJob covers streaming under cancellation:
// a client that vanishes mid-stream must cancel the job, release its
// pool workers, and leave no goroutines behind.
func TestStreamDisconnectCancelsJob(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	ts := newTestServer(t, m)

	gateStarted, gateRelease := resetGate()
	baseline := runtime.NumGoroutine()

	// Submit a job whose recordings block on the gate.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"tools":["jobstest-gate"],"benchmarks":["creat","open","close"],"trials":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	status, err := wire.DecodeJobStatus(bytes.TrimSpace(body))
	if err != nil {
		t.Fatal(err)
	}
	job, ok := m.Job(status.ID)
	if !ok {
		t.Fatal("job not registered")
	}

	// Both pool workers enter blocked recordings.
	for i := 0; i < 2; i++ {
		select {
		case <-gateStarted:
		case <-time.After(10 * time.Second):
			t.Fatal("workers never reached the recorder")
		}
	}

	// Open the stream, then vanish mid-stream.
	streamCtx, cancelStream := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(streamCtx, http.MethodGet, ts.URL+"/v1/jobs/"+status.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", streamResp.Status)
	}
	cancelStream()
	io.Copy(io.Discard, streamResp.Body)
	streamResp.Body.Close()

	// The server notices the vanished stream owner and cancels the job
	// while its recordings are still blocked on the gate.
	select {
	case <-job.Canceled():
	case <-time.After(10 * time.Second):
		t.Fatal("stream disconnect did not cancel the job")
	}

	// Only then unblock the recorder so the legacy Record calls can
	// return; the pipeline observes the canceled context and aborts.
	close(gateRelease)

	select {
	case <-job.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("job never settled after stream disconnect")
	}
	final, err := wire.DecodeJobStatus(bytes.TrimSpace(getOK(t, ts.URL+"/v1/jobs/"+status.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if final.State != wire.JobCanceled {
		t.Fatalf("job state = %s, want %s", final.State, wire.JobCanceled)
	}

	// Workers are back in the pool: a fresh job completes.
	c := client.New(ts.URL, nil)
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), &wire.JobSpec{
			Tools:      []string{"spade"},
			Benchmarks: []string{"creat"},
			Trials:     2,
		}, func(*wire.MatrixResult) error { return nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("post-cancel job failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("pool workers not released after cancellation")
	}

	// No goroutine leak: the count settles back to (near) baseline
	// once idle HTTP connections are dropped.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// streamCells consumes a job's whole NDJSON stream, strict-decoding
// every line.
func streamCells(t *testing.T, base, id string) []*wire.MatrixResult {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	var out []*wire.MatrixResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 32<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		cell, err := wire.DecodeMatrixResult(line)
		if err != nil {
			t.Fatalf("stream line does not strict-decode: %v\n%s", err, line)
		}
		out = append(out, cell)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func getOK(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body
}
