package jobs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/jobs"
	"provmark/internal/wire"
)

// inlineScenarioJSON is a custom program no registry entry knows:
// stage a file, then (target) link and unlink it.
const inlineScenarioJSON = `{
  "name": "link-cycle",
  "group": 1,
  "desc": "hard link a staged file and remove the link",
  "setup": [{"kind": "file", "path": "/stage/cycle.txt", "uid": 1000, "mode": 420}],
  "steps": [
    {"op": "link", "target": true, "path": "/stage/cycle.txt", "path2": "/stage/cycle-hard.txt"},
    {"op": "unlink", "target": true, "path": "/stage/cycle-hard.txt"}
  ]
}`

func postJob(t *testing.T, ts *httptest.Server, body string) *wire.JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", resp.StatusCode, buf.String())
	}
	status, err := wire.DecodeJobStatus(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return status
}

// TestInlineScenarioJobEndToEnd: a scenario defined purely as data in
// a /v1/jobs POST runs end to end and streams a cell whose wire shape
// is identical to a built-in benchmark's.
func TestInlineScenarioJobEndToEnd(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	ts := newTestServer(t, m)

	spec := fmt.Sprintf(`{"tools":["spade"],"benchmarks":["creat"],"scenarios":[%s],"trials":2,"capture":{"fast":true}}`, inlineScenarioJSON)
	status := postJob(t, ts, spec)
	if status.Total != 2 {
		t.Fatalf("total cells = %d, want 2 (creat + inline scenario)", status.Total)
	}
	cells := streamCells(t, ts.URL, status.ID)
	if len(cells) != 2 {
		t.Fatalf("streamed %d cells, want 2", len(cells))
	}
	var builtin, inline *wire.MatrixResult
	for _, c := range cells {
		switch c.Benchmark {
		case "creat":
			builtin = c
		case "link-cycle":
			inline = c
		default:
			t.Fatalf("unexpected cell %q", c.Benchmark)
		}
	}
	if builtin == nil || inline == nil {
		t.Fatal("missing expected cells")
	}
	if inline.Err != "" {
		t.Fatalf("inline scenario cell failed: %s", inline.Err)
	}
	if inline.Result == nil || inline.Result.Schema != builtin.Result.Schema ||
		inline.Result.Tool != "spade" || inline.Result.Trials != builtin.Result.Trials {
		t.Errorf("inline cell wire shape differs from built-in: %+v", inline.Result)
	}
	if inline.Result.Empty {
		t.Errorf("inline scenario produced an empty benchmark graph: %s", inline.Result.Reason)
	}
	if inline.Cell == "" || inline.Cell == builtin.Cell {
		t.Errorf("inline cell key %q not distinct from built-in %q", inline.Cell, builtin.Cell)
	}

	// The stored result is retrievable by its dedup key like any cell.
	resp, err := http.Get(ts.URL + "/v1/results/" + inline.Cell)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /v1/results/{cell} for inline scenario: %d", resp.StatusCode)
	}
}

// TestInlineScenarioDedup: resubmitting the same scenario content —
// differently formatted — in a fresh job answers from the store.
func TestInlineScenarioDedup(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	ts := newTestServer(t, m)

	spec := fmt.Sprintf(`{"tools":["spade"],"scenarios":[%s],"trials":2}`, inlineScenarioJSON)
	first := postJob(t, ts, spec)
	if first.Total != 1 {
		t.Fatalf("scenario-only job has %d cells, want 1", first.Total)
	}
	cells := streamCells(t, ts.URL, first.ID)
	if len(cells) != 1 || cells[0].Cached {
		t.Fatalf("first run: %d cells, cached=%v", len(cells), len(cells) > 0 && cells[0].Cached)
	}

	// Same content, different key order and spacing: the strict decode
	// plus canonical re-encoding must hash to the same cell key.
	reordered := `{"scenarios":[{"steps":[
	    {"path2":"/stage/cycle-hard.txt","op":"link","target":true,"path":"/stage/cycle.txt"},
	    {"op":"unlink","path":"/stage/cycle-hard.txt","target":true}],
	  "setup":[{"mode":420,"kind":"file","uid":1000,"path":"/stage/cycle.txt"}],
	  "desc":"hard link a staged file and remove the link",
	  "group":1,"name":"link-cycle"}],"tools":["spade"],"trials":2}`
	second := postJob(t, ts, reordered)
	cells2 := streamCells(t, ts.URL, second.ID)
	if len(cells2) != 1 {
		t.Fatalf("second run: %d cells", len(cells2))
	}
	if !cells2[0].Cached {
		t.Error("identical scenario content did not dedup")
	}
	if cells2[0].Cell != cells[0].Cell {
		t.Errorf("cell keys differ for identical content: %q vs %q", cells2[0].Cell, cells[0].Cell)
	}
}

// TestInlineScenarioNameCollision: an inline scenario named like a
// built-in benchmark must not alias the built-in's cached cell.
func TestInlineScenarioNameCollision(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	ts := newTestServer(t, m)

	builtin := postJob(t, ts, `{"tools":["spade"],"benchmarks":["creat"],"trials":2}`)
	bcells := streamCells(t, ts.URL, builtin.ID)

	// "creat" as an inline scenario with different content (different
	// path), same name.
	imposter := `{"tools":["spade"],"trials":2,"scenarios":[{"name":"creat","steps":[{"op":"creat","path":"/stage/other.txt","target":true}]}]}`
	icells := streamCells(t, ts.URL, postJob(t, ts, imposter).ID)
	if len(bcells) != 1 || len(icells) != 1 {
		t.Fatalf("cell counts: %d, %d", len(bcells), len(icells))
	}
	if icells[0].Cell == bcells[0].Cell {
		t.Error("inline scenario aliased the built-in benchmark's cell key")
	}
	if icells[0].Cached {
		t.Error("inline scenario served the built-in benchmark's cached result")
	}
}

func TestInlineScenarioRejects(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	ts := newTestServer(t, m)
	for name, body := range map[string]string{
		"unknown op":      `{"tools":["spade"],"scenarios":[{"name":"x","steps":[{"op":"mount"}]}]}`,
		"unknown field":   `{"tools":["spade"],"scenarios":[{"name":"x","bogus":1,"steps":[{"op":"pipe"}]}]}`,
		"duplicate names": `{"tools":["spade"],"scenarios":[{"name":"x","steps":[{"op":"pipe"}]},{"name":"x","steps":[{"op":"pipe2"}]}]}`,
		// A scenario shadowing a named benchmark of the same job would
		// give two different programs one (tool, name) label.
		"shadows benchmark": `{"tools":["spade"],"benchmarks":["creat"],"scenarios":[{"name":"creat","steps":[{"op":"pipe"}]}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestStatsEndpoint: /v1/stats exposes the store counters and retained
// job states; /healthz keeps its liveness shape.
func TestStatsEndpoint(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 2})
	defer m.Close()
	ts := newTestServer(t, m)

	spec := `{"tools":["spade"],"benchmarks":["creat"],"trials":2}`
	first := postJob(t, ts, spec)
	job, ok := m.Job(first.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	<-job.Done()
	second := postJob(t, ts, spec) // dedup hit
	job2, _ := m.Job(second.ID)
	<-job2.Done()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Schema int `json:"schema"`
		Store  struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Puts      int64 `json:"puts"`
			Evictions int64 `json:"evictions"`
			Len       int   `json:"len"`
		} `json:"store"`
		Jobs struct {
			Total    int `json:"total"`
			Running  int `json:"running"`
			Done     int `json:"done"`
			Canceled int `json:"canceled"`
		} `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Schema != wire.SchemaVersion {
		t.Errorf("stats schema = %d", stats.Schema)
	}
	if stats.Store.Hits < 1 || stats.Store.Misses < 1 || stats.Store.Puts != 1 || stats.Store.Len != 1 {
		t.Errorf("store counters off: %+v", stats.Store)
	}
	if stats.Jobs.Total != 2 || stats.Jobs.Done != 2 || stats.Jobs.Running != 0 {
		t.Errorf("job counters off: %+v", stats.Jobs)
	}

	// A canceled job shows up in the canceled bucket.
	third, err := m.Submit(&wire.JobSpec{Tools: []string{"spade"}, Benchmarks: []string{"open"}, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	third.Cancel()
	<-third.Done()
	if got := m.JobStates(); got.Canceled != 1 || got.Total != 3 {
		t.Errorf("JobStates after cancel: %+v", got)
	}
}

// TestScenarioOnlyJobNeedsContent: no benchmarks and no scenarios
// still selects the full suite (legacy semantics preserved).
func TestScenarioOnlyJobSemantics(t *testing.T) {
	m := jobs.NewManager(jobs.Config{Workers: 1})
	defer m.Close()
	job, err := m.Submit(&wire.JobSpec{Tools: []string{"spade"}, Trials: 2,
		Scenarios: []benchprog.Scenario{{Name: "just-pipe", Steps: []benchprog.Instr{{Op: "pipe", Target: true}}}}})
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	<-job.Done()
	if got := job.Status().Total; got != 1 {
		t.Errorf("scenario-only job has %d cells, want 1", got)
	}
	full, err := m.Submit(&wire.JobSpec{Tools: []string{"spade"}, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	full.Cancel()
	<-full.Done()
	if got := full.Status().Total; got != len(benchprog.Names()) {
		t.Errorf("empty spec selects %d cells, want the full suite (%d)", got, len(benchprog.Names()))
	}
}
