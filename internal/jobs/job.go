package jobs

import (
	"context"
	"sync"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/provmark"
	"provmark/internal/wire"
)

// cell is one (tool, benchmark) unit of a job's grid.
type cell struct {
	tool string
	rec  capture.RecorderContext
	prog benchprog.Program
	key  string
}

// Job is one submitted matrix run. Cells execute on the manager's
// shared pool; completed cells accumulate in completion order and are
// observable live through Watch. Cancel (or manager shutdown) aborts
// outstanding cells via context.
type Job struct {
	id       string
	m        *Manager
	cells    []cell
	pipeline []provmark.Option
	//provmark:allow ctx-in-struct -- job lifetime context: cancellation must outlive the creating request
	ctx    context.Context
	cancel context.CancelFunc

	mu                sync.Mutex
	results           []wire.MatrixResult // completion order
	cellDone          []bool              // indexed like cells
	update            chan struct{}       // closed and replaced on every append
	fed               int                 // cells handed to the pool
	fedAll            bool                // feeder finished (or aborted)
	reported          int                 // cells that produced a MatrixResult
	completed, failed int
	finished          bool
	state             string
	done              chan struct{}
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Cancel aborts the job: in-flight cells stop at their next context
// check and report context errors; unfed cells never start.
func (j *Job) Cancel() { j.cancel() }

// Done is closed when every started cell has reported and the job has
// settled into a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// isFinished reports whether the job has settled (used by the
// manager's retention eviction).
func (j *Job) isFinished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// Canceled is closed as soon as the job's context is canceled —
// before in-flight cells have unwound (Done marks that). Watchers use
// it to distinguish "stopping" from "stopped".
func (j *Job) Canceled() <-chan struct{} { return j.ctx.Done() }

// feed hands the job's cells to the shared pool, stopping early when
// the job is canceled.
func (j *Job) feed() {
	for i := range j.cells {
		j.mu.Lock()
		j.fed++
		j.mu.Unlock()
		select {
		case j.m.tasks <- task{job: j, index: i}:
		case <-j.ctx.Done():
			j.mu.Lock()
			j.fed-- // this cell was never handed over
			j.fedAll = true
			j.maybeFinishLocked()
			j.mu.Unlock()
			return
		}
	}
	j.mu.Lock()
	j.fedAll = true
	j.maybeFinishLocked()
	j.mu.Unlock()
}

// runCell executes one cell on a pool worker: serve from the dedup
// store on a key hit, otherwise run the pipeline and store the result.
func (j *Job) runCell(i int) {
	c := &j.cells[i]
	out := wire.MatrixResult{
		Schema:    wire.SchemaVersion,
		Index:     i,
		Tool:      c.tool,
		Benchmark: c.prog.Name,
		Cell:      c.key,
	}
	if err := j.ctx.Err(); err != nil {
		out.Err = err.Error()
		j.report(out)
		return
	}
	if res, ok := j.m.store.Get(c.key); ok {
		out.Cached = true
		out.Result = res
		j.report(out)
		return
	}
	res, err := provmark.NewContext(c.rec, j.pipeline...).RunContext(j.ctx, c.prog)
	if err != nil {
		out.Err = err.Error()
		j.report(out)
		return
	}
	w := provmark.ToWire(res)
	j.m.store.Put(c.key, w)
	out.Result = w
	j.report(out)
}

// report appends a completed cell, wakes watchers, and finalizes the
// job when it was the last outstanding cell.
func (j *Job) report(r wire.MatrixResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results = append(j.results, r)
	j.reported++
	if r.Err != "" {
		j.failed++
	} else {
		j.completed++
	}
	j.cellDone[r.Index] = true
	close(j.update)
	j.update = make(chan struct{})
	j.maybeFinishLocked()
}

// maybeFinishLocked settles the job once the feeder has stopped and
// every fed cell has reported. Callers hold j.mu.
func (j *Job) maybeFinishLocked() {
	if j.finished || !j.fedAll || j.reported != j.fed {
		return
	}
	j.finished = true
	if j.ctx.Err() != nil {
		j.state = wire.JobCanceled
	} else {
		j.state = wire.JobDone
	}
	j.cancel() // release the job's context resources in every path
	close(j.done)
	close(j.update) // wake watchers blocked on the current update epoch
}

// Status snapshots the job's externally visible state in wire form.
func (j *Job) Status() *wire.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	cells := make([]wire.CellRef, len(j.cells))
	for i, c := range j.cells {
		cells[i] = wire.CellRef{
			Cell:      c.key,
			Tool:      c.tool,
			Benchmark: c.prog.Name,
			Done:      j.cellDone[i],
		}
	}
	return &wire.JobStatus{
		Schema:    wire.SchemaVersion,
		ID:        j.id,
		State:     j.state,
		Total:     len(j.cells),
		Completed: j.completed,
		Failed:    j.failed,
		Cells:     cells,
	}
}

// Watch returns a channel that replays the job's completed cells and
// then follows new completions live; it closes when the job settles or
// ctx is done. Multiple watchers are independent.
func (j *Job) Watch(ctx context.Context) <-chan wire.MatrixResult {
	out := make(chan wire.MatrixResult)
	go func() {
		defer close(out)
		next := 0
		for {
			j.mu.Lock()
			for next < len(j.results) {
				r := j.results[next]
				next++
				j.mu.Unlock()
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
				j.mu.Lock()
			}
			if j.finished {
				j.mu.Unlock()
				return
			}
			upd := j.update
			j.mu.Unlock()
			select {
			case <-upd:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}
