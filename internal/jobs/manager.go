// Package jobs is ProvMark's job-oriented execution service: it
// accepts matrix specifications in the versioned wire vocabulary
// (wire.JobSpec), expands them into (tool, benchmark) cells, runs the
// cells on one bounded worker pool shared by every job, and
// deduplicates identical cells through a size-bounded result store.
// All jobs share one similarity-classification engine, so pairwise
// verdict caches survive across jobs exactly as they survive across
// the cells of one matrix run.
//
// The package is the server half of provmarkd; the HTTP surface lives
// in server.go and the client vocabulary in internal/wire.
package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/provmark"
	"provmark/internal/wire"
)

// ErrBadSpec wraps every job-spec validation failure, so transports
// can map it to a client error (HTTP 400) rather than a server fault.
var ErrBadSpec = errors.New("invalid job spec")

// ErrClosed is returned by Submit after the manager has shut down.
var ErrClosed = errors.New("jobs: manager closed")

// Config configures a Manager.
type Config struct {
	// Workers bounds how many cells run concurrently across ALL jobs;
	// values < 1 use GOMAXPROCS.
	Workers int
	// StoreSize bounds the shared dedup store; values < 1 use
	// DefaultStoreSize.
	StoreSize int
	// Classifier optionally injects a similarity engine; nil builds a
	// fresh one. Every job's every cell shares it.
	Classifier *provmark.Classifier
	// MaxJobs bounds how many jobs the manager retains; values < 1 use
	// DefaultMaxJobs. When a new submission exceeds the bound, the
	// oldest FINISHED jobs (and their per-cell result payloads) are
	// dropped — running jobs are never evicted, and the dedup store
	// keeps cell results independently. Status/stream lookups on an
	// evicted job answer 404.
	MaxJobs int
}

// DefaultMaxJobs bounds retained jobs when Config.MaxJobs is unset.
const DefaultMaxJobs = 256

// Manager owns the worker pool, the dedup store, the shared
// classification engine, the query counters, and the set of live jobs.
type Manager struct {
	cfg     Config
	cls     *provmark.Classifier
	store   *Store
	tasks   chan task
	queries queryCounters

	//provmark:allow ctx-in-struct -- pool-lifetime root context, cancelled in Close
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []string // submission order, for listings and eviction
	maxJobs int
	seq     int
	closed  bool
}

type task struct {
	job   *Job
	index int
}

// NewManager starts a job manager and its worker pool.
func NewManager(cfg Config) *Manager {
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	cls := cfg.Classifier
	if cls == nil {
		cls = provmark.NewClassifier()
	}
	//provmark:allow ctx-background -- the manager is the process-lifetime root; there is no caller context
	ctx, cancel := context.WithCancel(context.Background())
	maxJobs := cfg.MaxJobs
	if maxJobs < 1 {
		maxJobs = DefaultMaxJobs
	}
	m := &Manager{
		cfg:        cfg,
		cls:        cls,
		store:      NewStore(cfg.StoreSize),
		tasks:      make(chan task),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		maxJobs:    maxJobs,
	}
	m.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go m.worker()
	}
	return m
}

// Store exposes the shared dedup store (read-mostly: stats, peeks).
func (m *Manager) Store() *Store { return m.store }

// Classifier exposes the shared similarity engine.
func (m *Manager) Classifier() *provmark.Classifier { return m.cls }

// Job looks a live job up by id.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// JobStateCounts tallies retained jobs by wire state.
type JobStateCounts struct {
	Total    int `json:"total"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Canceled int `json:"canceled"`
}

// JobStates counts the manager's retained jobs by state — the job half
// of the /v1/stats surface.
func (m *Manager) JobStates() JobStateCounts {
	var c JobStateCounts
	for _, j := range m.Jobs() {
		c.Total++
		switch j.Status().State {
		case wire.JobRunning:
			c.Running++
		case wire.JobDone:
			c.Done++
		case wire.JobCanceled:
			c.Canceled++
		}
	}
	return c
}

// Jobs lists all jobs in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Close cancels every job, waits for them to settle, and stops the
// worker pool. Submit fails with ErrClosed afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	//provmark:allow map-order -- collection order is irrelevant: Close only waits on every job
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	m.baseCancel()
	for _, j := range jobs {
		<-j.Done()
	}
	close(m.tasks)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for t := range m.tasks {
		t.job.runCell(t.index)
	}
}

// Submit validates a spec, expands it into cells (tool-major, the
// Matrix grid order), registers the job, and starts feeding its cells
// to the shared pool. It returns as soon as the job is queued.
func (m *Manager) Submit(spec *wire.JobSpec) (*Job, error) {
	if spec == nil {
		return nil, fmt.Errorf("%w: nil spec", ErrBadSpec)
	}
	if len(spec.Tools) == 0 {
		return nil, fmt.Errorf("%w: no tools", ErrBadSpec)
	}
	progs, err := resolveBenchmarks(spec.Benchmarks, len(spec.Scenarios) > 0)
	if err != nil {
		return nil, err
	}
	taken := make(map[string]bool, len(progs))
	for _, p := range progs {
		taken[p.Name] = true
	}
	inline, err := resolveScenarios(spec.Scenarios, taken)
	if err != nil {
		return nil, err
	}
	bgPair, err := parseExtreme(spec.BGPair)
	if err != nil {
		return nil, fmt.Errorf("%w: bg_pair: %v", ErrBadSpec, err)
	}
	fgPair, err := parseExtreme(spec.FGPair)
	if err != nil {
		return nil, fmt.Errorf("%w: fg_pair: %v", ErrBadSpec, err)
	}
	copts := capture.Options{}
	if spec.Capture != nil {
		copts = capture.Options{Fast: spec.Capture.Fast, Params: spec.Capture.Params}
	}
	recs := make([]capture.RecorderContext, len(spec.Tools))
	for i, tool := range spec.Tools {
		rec, err := capture.OpenContext(tool, copts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		recs[i] = rec
	}

	pipeline := []provmark.Option{
		provmark.WithClassifier(m.cls),
		provmark.WithTrials(spec.Trials),
		provmark.WithParallelism(spec.Parallelism),
		provmark.WithPairExtremes(bgPair, fgPair),
	}
	if spec.FilterGraphs != nil {
		pipeline = append(pipeline, provmark.WithFilterGraphs(*spec.FilterGraphs))
	}

	cells := make([]cell, 0, len(spec.Tools)*(len(progs)+len(inline)))
	for ti, tool := range spec.Tools {
		for _, prog := range progs {
			cells = append(cells, cell{
				tool: tool,
				rec:  recs[ti],
				prog: prog,
				key:  cellKey(tool, prog.Name, spec, ""),
			})
		}
		// Inline scenario cells hash the canonical scenario content
		// (which includes the name) into their dedup key: jobs
		// submitting the identical scenario share a stored result,
		// however its JSON was formatted, and a name collision with a
		// built-in benchmark cannot alias the built-in's cache.
		for _, sc := range inline {
			cells = append(cells, cell{
				tool: tool,
				rec:  recs[ti],
				prog: sc.prog,
				key:  cellKey(tool, sc.prog.Name, spec, string(sc.canonical)),
			})
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.seq++
	id := fmt.Sprintf("j%d", m.seq)
	ctx, cancel := context.WithCancel(m.baseCtx)
	j := &Job{
		id:       id,
		m:        m,
		cells:    cells,
		cellDone: make([]bool, len(cells)),
		pipeline: pipeline,
		ctx:      ctx,
		cancel:   cancel,
		state:    wire.JobRunning,
		update:   make(chan struct{}),
		done:     make(chan struct{}),
	}
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	m.mu.Unlock()
	go j.feed()
	return j, nil
}

// evictLocked drops the oldest finished jobs while the retention bound
// is exceeded, releasing their per-cell result payloads. Unfinished
// jobs are skipped: the bound limits history, never live work. Callers
// hold m.mu.
func (m *Manager) evictLocked() {
	if len(m.jobs) <= m.maxJobs {
		return
	}
	kept := m.order[:0]
	for i, id := range m.order {
		if len(m.jobs) > m.maxJobs && m.jobs[id].isFinished() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, m.order[i])
	}
	m.order = kept
}

// resolveBenchmarks maps benchmark names to programs; an empty list
// selects the whole Table 1 suite, unless the spec carries inline
// scenarios — a scenario-only job runs just its scenarios.
func resolveBenchmarks(names []string, hasScenarios bool) ([]benchprog.Program, error) {
	if len(names) == 0 {
		if hasScenarios {
			return nil, nil
		}
		names = benchprog.Names()
	}
	progs := make([]benchprog.Program, 0, len(names))
	for _, name := range names {
		prog, ok := benchprog.ByName(name)
		if !ok {
			return nil, fmt.Errorf("%w: unknown benchmark %q", ErrBadSpec, name)
		}
		progs = append(progs, prog)
	}
	return progs, nil
}

// inlineScenario is one resolved inline scenario: its compiled program
// and the canonical encoding its dedup key hashes.
type inlineScenario struct {
	prog      benchprog.Program
	canonical []byte
}

// resolveScenarios validates, canonically encodes, and compiles a
// spec's inline scenarios. Names already taken — by another scenario
// or by a named benchmark of the same job — are rejected: a job's
// cells must stay distinguishable by (tool, name), and name-keyed
// consumers (the batch regression store) must never see two different
// programs under one label.
func resolveScenarios(scns []benchprog.Scenario, taken map[string]bool) ([]inlineScenario, error) {
	if len(scns) == 0 {
		return nil, nil
	}
	out := make([]inlineScenario, 0, len(scns))
	for i := range scns {
		s := scns[i]
		data, err := benchprog.EncodeScenario(&s)
		if err != nil {
			return nil, fmt.Errorf("%w: scenario %d: %v", ErrBadSpec, i, err)
		}
		prog, err := s.Compile()
		if err != nil {
			return nil, fmt.Errorf("%w: scenario %d: %v", ErrBadSpec, i, err)
		}
		if taken[prog.Name] {
			return nil, fmt.Errorf("%w: scenario name %q already names another cell of this job", ErrBadSpec, prog.Name)
		}
		taken[prog.Name] = true
		out = append(out, inlineScenario{prog: prog, canonical: data})
	}
	return out, nil
}

func parseExtreme(s string) (provmark.Extreme, error) {
	switch s {
	case "":
		return 0, nil
	case "smallest":
		return provmark.Smallest, nil
	case "largest":
		return provmark.Largest, nil
	}
	return 0, fmt.Errorf("unknown pair extreme %q (want smallest or largest)", s)
}

// cellKeyData is the canonical identity of one cell: everything in the
// spec that can change the cell's result. Parallelism is deliberately
// absent — it affects wall-clock, not outcomes — so runs differing
// only in concurrency share cached results.
type cellKeyData struct {
	Schema       int               `json:"schema"`
	Tool         string            `json:"tool"`
	Benchmark    string            `json:"benchmark"`
	Fast         bool              `json:"fast"`
	Params       map[string]string `json:"params,omitempty"`
	Trials       int               `json:"trials"`
	FilterGraphs *bool             `json:"filter_graphs,omitempty"`
	BGPair       string            `json:"bg_pair,omitempty"`
	FGPair       string            `json:"fg_pair,omitempty"`
	// Scenario carries the canonical JSON of an inline scenario, so the
	// key identifies scenario *content*: a registered benchmark and an
	// inline scenario sharing a name never share a key, while identical
	// inline scenarios dedup across jobs regardless of how they were
	// authored (the codec canonicalizes before hashing).
	Scenario string `json:"scenario,omitempty"`
}

// cellKey derives the dedup key of a (tool, benchmark, options) cell:
// the hex SHA-256 of the canonical JSON identity (map keys sorted by
// encoding/json), truncated to 128 bits. scenario is the canonical
// encoding of an inline scenario cell, empty for named benchmarks.
func cellKey(tool, benchmark string, spec *wire.JobSpec, scenario string) string {
	d := cellKeyData{
		Schema:       wire.SchemaVersion,
		Tool:         tool,
		Benchmark:    benchmark,
		Trials:       spec.Trials,
		FilterGraphs: spec.FilterGraphs,
		BGPair:       spec.BGPair,
		FGPair:       spec.FGPair,
		Scenario:     scenario,
	}
	if spec.Capture != nil {
		d.Fast = spec.Capture.Fast
		d.Params = spec.Capture.Params
	}
	data, err := json.Marshal(d)
	if err != nil {
		// A map[string]string cannot fail to marshal; keep the
		// compiler honest anyway.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:16])
}
