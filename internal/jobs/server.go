package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"provmark/internal/capture"
	"provmark/internal/httpmw"
	"provmark/internal/wire"
)

// maxBodyBytes bounds any request body (POST /v1/jobs, POST
// /v1/query): the chain's BodyLimit layer installs the cap and the
// handlers map an overrun to 413 Request Entity Too Large.
const maxBodyBytes = 1 << 20

// serverConfig collects the middleware knobs NewServer accepts as
// functional options. The zero value serves the observability chain
// (recover, request IDs, access logs, metrics, body cap) with every
// policy layer — auth, rate limiting, quotas — disabled.
type serverConfig struct {
	authToken string
	rate      float64
	burst     int
	quota     int64
	logger    *slog.Logger
	sessions  *httpmw.SessionStore
}

// ServerOption configures NewServer.
type ServerOption func(*serverConfig)

// WithAuthToken requires the static bearer token on every request
// except GET /healthz. An empty token leaves auth disabled.
func WithAuthToken(token string) ServerOption {
	return func(c *serverConfig) { c.authToken = token }
}

// WithRateLimit enforces a per-session token bucket: rate requests per
// second steady state, burst requests back to back. rate <= 0 leaves
// rate limiting disabled.
func WithRateLimit(rate float64, burst int) ServerOption {
	return func(c *serverConfig) { c.rate, c.burst = rate, burst }
}

// WithSessionQuota caps each session's lifetime request count; 0
// leaves quotas disabled.
func WithSessionQuota(n int64) ServerOption {
	return func(c *serverConfig) { c.quota = n }
}

// WithLogger routes access logs and panic reports through logger
// (structured, via log/slog). Nil — the default — discards them.
func WithLogger(logger *slog.Logger) ServerOption {
	return func(c *serverConfig) { c.logger = logger }
}

// WithSessionStore injects a pre-built session store (tests use it to
// drive the token-bucket clock). Nil builds one from the rate/quota
// options.
func WithSessionStore(s *httpmw.SessionStore) ServerOption {
	return func(c *serverConfig) { c.sessions = s }
}

// NewServer builds the HTTP surface of provmarkd over a manager:
//
//	POST /v1/jobs                submit a wire.JobSpec, returns wire.JobStatus
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/stream    NDJSON of wire.MatrixResult as cells complete
//	GET  /v1/results/{cell}      a stored cell result by dedup key
//	POST /v1/query               evaluate Datalog rules against a stored cell
//	GET  /v1/stats               store + query counters, retained jobs by state
//	GET  /metrics                Prometheus text exposition
//	GET  /healthz                liveness + registered backends
//
// The mux is wrapped in the httpmw chain (Recover < RequestID <
// AccessLog < Metrics [< Auth < RateLimit < Quota] < BodyLimit), with
// the bracketed policy layers present only when the matching option
// enables them. GET /healthz is exempt from auth, rate limiting, and
// quotas (liveness probes carry no credential); GET /metrics is
// exempt from rate limiting and quotas but not auth, so scrapes never
// consume application budget yet stay credentialed. Chain assembly is
// order-validated — a misordered layer list is a startup error, never
// a silently scrambled policy stack.
//
// A stream client owns its job: disconnecting mid-stream cancels the
// job and releases its workers, unless the stream was opened with
// ?detach=1 (a passive observer). The chain's response wrappers
// preserve http.Flusher, so per-cell flushing — and with it disconnect
// detection — survives the full middleware stack.
func NewServer(m *Manager, opts ...ServerOption) (http.Handler, error) {
	var cfg serverConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	sessions := cfg.sessions
	if sessions == nil {
		sessions = httpmw.NewSessionStore(httpmw.SessionConfig{
			Rate:  cfg.rate,
			Burst: cfg.burst,
			Quota: cfg.quota,
		})
	}
	metrics := httpmw.NewMetrics("provmarkd")
	registerServiceMetrics(metrics, m, sessions)

	s := &server{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.job)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.stream)
	mux.HandleFunc("GET /v1/results/{cell}", s.result)
	mux.HandleFunc("POST /v1/query", s.query)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.Handle("GET /metrics", metrics.Handler())
	mux.HandleFunc("GET /healthz", s.health)

	// Route labels for logs and metrics are the matched mux patterns
	// ("POST /v1/jobs"), resolved without serving; unmatched requests
	// share one label so hostile paths cannot explode the cardinality.
	route := func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}

	layers := []httpmw.Layer{
		httpmw.RecoverLayer(cfg.logger),
		httpmw.RequestIDLayer(),
		httpmw.AccessLogLayer(cfg.logger, route, sessions.Key),
		httpmw.MetricsLayer(metrics, route),
	}
	if cfg.authToken != "" {
		layers = append(layers, httpmw.AuthLayer(cfg.authToken, "/healthz"))
	}
	if cfg.rate > 0 {
		layers = append(layers, httpmw.RateLimitLayer(sessions, "/healthz", "/metrics"))
	}
	if cfg.quota > 0 {
		layers = append(layers, httpmw.QuotaLayer(sessions, "/healthz", "/metrics"))
	}
	layers = append(layers, httpmw.BodyLimitLayer(maxBodyBytes))
	chain, err := httpmw.NewChain(layers...)
	if err != nil {
		return nil, err
	}
	return chain.Then(mux), nil
}

// registerServiceMetrics re-exports the manager's existing counters —
// dedup store, query traffic, retained jobs by state — plus the
// session store's session count and rejection tallies, so one scrape
// of GET /metrics sees the whole service.
func registerServiceMetrics(metrics *httpmw.Metrics, m *Manager, sessions *httpmw.SessionStore) {
	counters := []struct {
		name, help string
		fn         func() float64
	}{
		{"provmarkd_rate_limit_rejections_total", "Requests rejected by the per-session token bucket.",
			func() float64 { return float64(sessions.RateRejections()) }},
		{"provmarkd_quota_rejections_total", "Requests rejected by an exhausted session quota.",
			func() float64 { return float64(sessions.QuotaRejections()) }},
		{"provmarkd_store_hits_total", "Dedup result store hits.",
			func() float64 { return float64(m.Store().Stats().Hits) }},
		{"provmarkd_store_misses_total", "Dedup result store misses.",
			func() float64 { return float64(m.Store().Stats().Misses) }},
		{"provmarkd_store_puts_total", "Results inserted into the dedup store.",
			func() float64 { return float64(m.Store().Stats().Puts) }},
		{"provmarkd_store_evictions_total", "Results evicted from the dedup store.",
			func() float64 { return float64(m.Store().Stats().Evictions) }},
		{"provmarkd_queries_total", "POST /v1/query requests.",
			func() float64 { return float64(m.QueryStats().Total) }},
		{"provmarkd_queries_matched_total", "Queries whose goal bound at least one answer.",
			func() float64 { return float64(m.QueryStats().Matched) }},
		{"provmarkd_query_errors_total", "Queries that failed between decode and evaluation.",
			func() float64 { return float64(m.QueryStats().Errors) }},
	}
	for _, c := range counters {
		metrics.RegisterFunc(c.name, c.help, "counter", c.fn)
	}
	gauges := []struct {
		name, help string
		fn         func() float64
	}{
		{"provmarkd_sessions", "Sessions currently tracked by the session store.",
			func() float64 { return float64(sessions.Len()) }},
		{"provmarkd_store_len", "Results currently in the dedup store.",
			func() float64 { return float64(m.Store().Len()) }},
		{"provmarkd_jobs_running", "Retained jobs currently running.",
			func() float64 { return float64(m.JobStates().Running) }},
		{"provmarkd_jobs_done", "Retained jobs that finished.",
			func() float64 { return float64(m.JobStates().Done) }},
		{"provmarkd_jobs_canceled", "Retained jobs that were canceled.",
			func() float64 { return float64(m.JobStates().Canceled) }},
	}
	for _, g := range gauges {
		metrics.RegisterFunc(g.name, g.help, "gauge", g.fn)
	}
}

type server struct {
	m *Manager
}

// readBody drains a capped request body, distinguishing an oversized
// body (413 — the client must shrink it, retrying is pointless) from
// an unreadable one (400). A zero status means success.
func readBody(w http.ResponseWriter, r *http.Request) (data []byte, status int, msg string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)
	case err != nil:
		return nil, http.StatusBadRequest, "unreadable request body"
	}
	return body, 0, ""
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, status, msg := readBody(w, r)
	if status != 0 {
		http.Error(w, msg, status)
		return
	}
	spec, err := wire.DecodeJobSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrBadSpec):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusAccepted, func() ([]byte, error) {
		return wire.EncodeJobStatus(job.Status())
	})
}

func (s *server) job(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return wire.EncodeJobStatus(job.Status())
	})
}

func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	// ?detach=1 (or true) observes without owning; absent, empty, 0 and
	// false mean owner semantics. Anything else is rejected rather than
	// guessed — a misspelt observer must not cancel someone else's job
	// on disconnect.
	detach := false
	if v := r.URL.Query().Get("detach"); v != "" {
		var err error
		if detach, err = strconv.ParseBool(v); err != nil {
			http.Error(w, "detach must be a boolean", http.StatusBadRequest)
			return
		}
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}
	for cellRes := range job.Watch(r.Context()) {
		line, err := wire.EncodeMatrixResult(&cellRes)
		if err != nil {
			break
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			break
		}
		if canFlush {
			flusher.Flush()
		}
	}
	// The watch closed: either the job settled, or the client went
	// away. A vanished owner cancels the job so its cells stop
	// occupying pool workers.
	if !detach {
		select {
		case <-job.Done():
		default:
			job.Cancel()
		}
	}
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	res, ok := s.m.Store().Peek(r.PathValue("cell"))
	if !ok {
		http.Error(w, "no stored result for cell", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return wire.EncodeResult(res)
	})
}

// query evaluates a Datalog program against a stored cell's
// provenance: strict wire decode, store lookup by dedup key, then
// rule evaluation on the semi-naive engine. Every request lands in
// the query counters /v1/stats reports.
func (s *server) query(w http.ResponseWriter, r *http.Request) {
	fail := func(status int, msg string) {
		s.m.queries.record(false, true)
		http.Error(w, msg, status)
	}
	body, status, msg := readBody(w, r)
	if status != 0 {
		fail(status, msg)
		return
	}
	req, err := wire.DecodeQueryRequest(body)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	res, ok := s.m.Store().Peek(req.Cell)
	if !ok {
		fail(http.StatusNotFound, "no stored result for cell")
		return
	}
	resp, err := EvalQuery(req, res)
	var rejected *RejectedQueryError
	if errors.As(err, &rejected) {
		// Analysis rejections carry structured diagnostics: a 422 with
		// a full wire response body instead of a plain-text error.
		s.m.queries.record(false, true)
		writeJSON(w, http.StatusUnprocessableEntity, func() ([]byte, error) {
			return wire.EncodeQueryResponse(rejected.Response)
		})
		return
	}
	if err != nil {
		fail(http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.m.queries.record(resp.Matches > 0, false)
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return wire.EncodeQueryResponse(resp)
	})
}

// statsResponse is the GET /v1/stats document: the shared result
// store's traffic counters, the query counters, and the retained jobs
// by state. It is an operator surface, versioned like every /v1
// response.
type statsResponse struct {
	Schema int `json:"schema"`
	Store  struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Puts      int64 `json:"puts"`
		Evictions int64 `json:"evictions"`
		Len       int   `json:"len"`
	} `json:"store"`
	Queries QueryStats     `json:"queries"`
	Jobs    JobStateCounts `json:"jobs"`
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Schema = wire.SchemaVersion
	st := s.m.Store().Stats()
	resp.Store.Hits = st.Hits
	resp.Store.Misses = st.Misses
	resp.Store.Puts = st.Puts
	resp.Store.Evictions = st.Evictions
	resp.Store.Len = s.m.Store().Len()
	resp.Queries = s.m.QueryStats()
	resp.Jobs = s.m.JobStates()
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return json.Marshal(&resp)
	})
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	st := s.m.Store().Stats()
	jobs := s.m.JobStates()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","schema":%d,"backends":%d,"store":{"hits":%d,"misses":%d},"jobs":%d}`+"\n",
		wire.SchemaVersion, len(capture.Backends()), st.Hits, st.Misses, jobs.Total)
}

func writeJSON(w http.ResponseWriter, status int, encode func() ([]byte, error)) {
	data, err := encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
