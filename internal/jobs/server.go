package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"provmark/internal/capture"
	"provmark/internal/wire"
)

// maxSpecBytes bounds a POST /v1/jobs body.
const maxSpecBytes = 1 << 20

// NewServer builds the /v1 HTTP surface of provmarkd over a manager:
//
//	POST /v1/jobs                submit a wire.JobSpec, returns wire.JobStatus
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/stream    NDJSON of wire.MatrixResult as cells complete
//	GET  /v1/results/{cell}      a stored cell result by dedup key
//	POST /v1/query               evaluate Datalog rules against a stored cell
//	GET  /v1/stats               store + query counters, retained jobs by state
//	GET  /healthz                liveness + registered backends
//
// A stream client owns its job: disconnecting mid-stream cancels the
// job and releases its workers, unless the stream was opened with
// ?detach=1 (a passive observer).
func NewServer(m *Manager) http.Handler {
	s := &server{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.job)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.stream)
	mux.HandleFunc("GET /v1/results/{cell}", s.result)
	mux.HandleFunc("POST /v1/query", s.query)
	mux.HandleFunc("GET /v1/stats", s.stats)
	mux.HandleFunc("GET /healthz", s.health)
	return mux
}

type server struct {
	m *Manager
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		http.Error(w, "request body too large or unreadable", http.StatusBadRequest)
		return
	}
	spec, err := wire.DecodeJobSpec(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	job, err := s.m.Submit(spec)
	switch {
	case errors.Is(err, ErrBadSpec):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusAccepted, func() ([]byte, error) {
		return wire.EncodeJobStatus(job.Status())
	})
}

func (s *server) job(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return wire.EncodeJobStatus(job.Status())
	})
}

func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.m.Job(r.PathValue("id"))
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	// ?detach=1 (or true) observes without owning; absent, empty, 0 and
	// false mean owner semantics. Anything else is rejected rather than
	// guessed — a misspelt observer must not cancel someone else's job
	// on disconnect.
	detach := false
	if v := r.URL.Query().Get("detach"); v != "" {
		var err error
		if detach, err = strconv.ParseBool(v); err != nil {
			http.Error(w, "detach must be a boolean", http.StatusBadRequest)
			return
		}
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		flusher.Flush()
	}
	for cellRes := range job.Watch(r.Context()) {
		line, err := wire.EncodeMatrixResult(&cellRes)
		if err != nil {
			break
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			break
		}
		if canFlush {
			flusher.Flush()
		}
	}
	// The watch closed: either the job settled, or the client went
	// away. A vanished owner cancels the job so its cells stop
	// occupying pool workers.
	if !detach {
		select {
		case <-job.Done():
		default:
			job.Cancel()
		}
	}
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	res, ok := s.m.Store().Peek(r.PathValue("cell"))
	if !ok {
		http.Error(w, "no stored result for cell", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return wire.EncodeResult(res)
	})
}

// query evaluates a Datalog program against a stored cell's
// provenance: strict wire decode, store lookup by dedup key, then
// rule evaluation on the semi-naive engine. Every request lands in
// the query counters /v1/stats reports.
func (s *server) query(w http.ResponseWriter, r *http.Request) {
	fail := func(status int, msg string) {
		s.m.queries.record(false, true)
		http.Error(w, msg, status)
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		fail(http.StatusBadRequest, "request body too large or unreadable")
		return
	}
	req, err := wire.DecodeQueryRequest(body)
	if err != nil {
		fail(http.StatusBadRequest, err.Error())
		return
	}
	res, ok := s.m.Store().Peek(req.Cell)
	if !ok {
		fail(http.StatusNotFound, "no stored result for cell")
		return
	}
	resp, err := EvalQuery(req, res)
	if err != nil {
		fail(http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.m.queries.record(resp.Matches > 0, false)
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return wire.EncodeQueryResponse(resp)
	})
}

// statsResponse is the GET /v1/stats document: the shared result
// store's traffic counters, the query counters, and the retained jobs
// by state. It is an operator surface, versioned like every /v1
// response.
type statsResponse struct {
	Schema int `json:"schema"`
	Store  struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Puts      int64 `json:"puts"`
		Evictions int64 `json:"evictions"`
		Len       int   `json:"len"`
	} `json:"store"`
	Queries QueryStats     `json:"queries"`
	Jobs    JobStateCounts `json:"jobs"`
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Schema = wire.SchemaVersion
	st := s.m.Store().Stats()
	resp.Store.Hits = st.Hits
	resp.Store.Misses = st.Misses
	resp.Store.Puts = st.Puts
	resp.Store.Evictions = st.Evictions
	resp.Store.Len = s.m.Store().Len()
	resp.Queries = s.m.QueryStats()
	resp.Jobs = s.m.JobStates()
	writeJSON(w, http.StatusOK, func() ([]byte, error) {
		return json.Marshal(&resp)
	})
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	st := s.m.Store().Stats()
	jobs := s.m.JobStates()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","schema":%d,"backends":%d,"store":{"hits":%d,"misses":%d},"jobs":%d}`+"\n",
		wire.SchemaVersion, len(capture.Backends()), st.Hits, st.Misses, jobs.Total)
}

func writeJSON(w http.ResponseWriter, status int, encode func() ([]byte, error)) {
	data, err := encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}
