package jobs_test

import (
	"fmt"
	"testing"

	"provmark/internal/jobs"
	"provmark/internal/wire"
)

func TestStoreBoundAndStats(t *testing.T) {
	s := jobs.NewStore(3)
	mk := func(i int) *wire.Result {
		return &wire.Result{Schema: wire.SchemaVersion, Tool: "t", Benchmark: fmt.Sprintf("b%d", i)}
	}
	if _, ok := s.Get("k0"); ok {
		t.Fatal("empty store reported a hit")
	}
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k%d", i), mk(i))
	}
	if s.Len() != 3 {
		t.Fatalf("store size = %d, want bound 3", s.Len())
	}
	// k0 is the least recently used entry and must have been evicted.
	if _, ok := s.Get("k0"); ok {
		t.Error("LRU entry not evicted")
	}
	if r, ok := s.Get("k3"); !ok || r.Benchmark != "b3" {
		t.Errorf("latest entry missing: %v %v", r, ok)
	}
	// Recency: touch k1, insert k4 — k2 (now oldest) is evicted.
	if _, ok := s.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	s.Put("k4", mk(4))
	if _, ok := s.Peek("k2"); ok {
		t.Error("k2 should have been evicted after k1 was refreshed")
	}
	if _, ok := s.Peek("k1"); !ok {
		t.Error("recently used k1 evicted")
	}
	st := s.Stats()
	if st.Puts != 5 || st.Evictions != 2 {
		t.Errorf("stats = %+v, want 5 puts / 2 evictions", st)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("stats = %+v, want 2 hits / 2 misses", st)
	}
	// Peek never moves the counters.
	s.Peek("k1")
	s.Peek("nope")
	if got := s.Stats(); got.Hits != st.Hits || got.Misses != st.Misses {
		t.Errorf("Peek moved counters: %+v vs %+v", got, st)
	}
}
