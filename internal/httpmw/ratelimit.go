package httpmw

import (
	"math"
	"net/http"
	"strconv"
)

// RateLimitLayer admits requests through the session store's token
// bucket and answers 429 with a Retry-After header (whole seconds,
// rounded up, at least 1) when a session's bucket is empty. Exempt
// paths — provmarkd exempts /healthz and /metrics — bypass the bucket
// entirely so probes and scrapes never eat an application session's
// budget, and so an operator can still read the rejection counters
// while a session is being limited.
func RateLimitLayer(s *SessionStore, exempt ...string) Layer {
	ex := pathSet(exempt)
	return Layer{
		Name:  "ratelimit",
		Class: ClassRateLimit,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if ex[r.URL.Path] {
					next.ServeHTTP(w, r)
					return
				}
				ok, wait := s.Allow(s.Key(r))
				if !ok {
					secs := int(math.Ceil(wait.Seconds()))
					if secs < 1 {
						secs = 1
					}
					w.Header().Set("Retry-After", strconv.Itoa(secs))
					http.Error(w, "rate limit exceeded: session token bucket is empty", http.StatusTooManyRequests)
					return
				}
				next.ServeHTTP(w, r)
			})
		},
	}
}
