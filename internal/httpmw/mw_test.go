package httpmw_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"provmark/internal/httpmw"
)

// serve runs one request through a chain of layers over handler.
func serve(t *testing.T, req *http.Request, handler http.Handler, layers ...httpmw.Layer) *httptest.ResponseRecorder {
	t.Helper()
	chain, err := httpmw.NewChain(layers...)
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	chain.Then(handler).ServeHTTP(rec, req)
	return rec
}

func TestRecoverLayer(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	panicky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	rec := serve(t, httptest.NewRequest("GET", "/x", nil), panicky, httpmw.RecoverLayer(logger))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("panic log is not one JSON record: %v\n%s", err, logBuf.Bytes())
	}
	if entry["panic"] != "kaboom" {
		t.Errorf("logged panic = %v", entry["panic"])
	}
	stack, _ := entry["stack"].(string)
	if !strings.Contains(stack, "mw_test.go") {
		t.Errorf("logged stack does not reach the panicking handler:\n%s", stack)
	}
}

func TestRecoverLayerRethrowsAbortHandler(t *testing.T) {
	aborting := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	chain := httpmw.MustNewChain(httpmw.RecoverLayer(nil))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler swallowed instead of re-panicked")
		}
	}()
	chain.Then(aborting).ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestRequestIDLayer(t *testing.T) {
	var seen string
	echo := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = httpmw.RequestID(r.Context())
	})

	// Minted: a fresh 16-hex ID lands in the response header and ctx.
	rec := serve(t, httptest.NewRequest("GET", "/", nil), echo, httpmw.RequestIDLayer())
	id := rec.Header().Get(httpmw.RequestIDHeader)
	if len(id) != 16 || id != seen {
		t.Fatalf("minted id header=%q ctx=%q", id, seen)
	}

	// Honored: a well-formed client ID is propagated verbatim.
	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set(httpmw.RequestIDHeader, "client-id-42")
	rec = serve(t, req, echo, httpmw.RequestIDLayer())
	if got := rec.Header().Get(httpmw.RequestIDHeader); got != "client-id-42" || seen != "client-id-42" {
		t.Fatalf("client id not honored: header=%q ctx=%q", got, seen)
	}

	// Sanitized: a log-hostile ID is replaced, not propagated.
	req = httptest.NewRequest("GET", "/", nil)
	req.Header.Set(httpmw.RequestIDHeader, "bad\nid")
	rec = serve(t, req, echo, httpmw.RequestIDLayer())
	if got := rec.Header().Get(httpmw.RequestIDHeader); strings.Contains(got, "\n") || got == "" {
		t.Fatalf("hostile id propagated: %q", got)
	}
}

func TestAccessLogLayer(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	})
	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("{}"))
	req.Header.Set(httpmw.RequestIDHeader, "rid-1")
	req.Header.Set("X-Session-ID", "alice")
	serve(t, req, app,
		httpmw.RequestIDLayer(),
		httpmw.AccessLogLayer(logger,
			func(*http.Request) string { return "POST /v1/jobs" },
			httpmw.DefaultSessionKey),
	)

	var entry map[string]any
	if err := json.Unmarshal(logBuf.Bytes(), &entry); err != nil {
		t.Fatalf("access log is not one JSON record: %v\n%s", err, logBuf.Bytes())
	}
	want := map[string]any{
		"method":     "POST",
		"path":       "/v1/jobs",
		"route":      "POST /v1/jobs",
		"status":     float64(http.StatusTeapot),
		"bytes":      float64(len("short and stout")),
		"session":    "sid:alice",
		"request_id": "rid-1",
	}
	for k, v := range want {
		if entry[k] != v {
			t.Errorf("log[%q] = %v, want %v", k, entry[k], v)
		}
	}
	if _, ok := entry["duration_ms"].(float64); !ok {
		t.Errorf("log has no numeric duration_ms: %v", entry["duration_ms"])
	}
}

// TestObservabilityPreservesFlusher is the NDJSON-streaming guarantee:
// the full observability stack (access log + metrics recorders) must
// not hide http.Flusher from the handler, or provmarkd's per-cell
// flushing — and owner-cancel disconnect detection — silently breaks.
func TestObservabilityPreservesFlusher(t *testing.T) {
	var sawFlusher bool
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, sawFlusher = w.(http.Flusher)
		w.Write([]byte("x"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	})
	rec := serve(t, httptest.NewRequest("GET", "/stream", nil), app,
		httpmw.RecoverLayer(nil),
		httpmw.RequestIDLayer(),
		httpmw.AccessLogLayer(slog.New(slog.NewJSONHandler(io.Discard, nil)), nil, nil),
		httpmw.MetricsLayer(httpmw.NewMetrics("t"), nil),
	)
	if !sawFlusher {
		t.Fatal("middleware stack hid http.Flusher from the handler")
	}
	if !rec.Flushed {
		t.Fatal("Flush did not reach the underlying writer")
	}
}

func TestAuthLayer(t *testing.T) {
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	layer := httpmw.AuthLayer("sesame", "/healthz")
	cases := []struct {
		name, path, header string
		want               int
	}{
		{"no token", "/v1/stats", "", http.StatusUnauthorized},
		{"wrong token", "/v1/stats", "Bearer nope", http.StatusUnauthorized},
		{"wrong scheme", "/v1/stats", "Basic sesame", http.StatusUnauthorized},
		{"right token", "/v1/stats", "Bearer sesame", http.StatusOK},
		{"exempt path", "/healthz", "", http.StatusOK},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", tc.path, nil)
		if tc.header != "" {
			req.Header.Set("Authorization", tc.header)
		}
		rec := serve(t, req, app, layer)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d", tc.name, rec.Code, tc.want)
		}
		if tc.want == http.StatusUnauthorized && rec.Header().Get("WWW-Authenticate") == "" {
			t.Errorf("%s: 401 without WWW-Authenticate", tc.name)
		}
	}
}

func TestRateLimitLayer(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{Rate: 0.5, Burst: 1, Now: clock.now})
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	layer := httpmw.RateLimitLayer(s, "/metrics")
	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		req.Header.Set("X-Session-ID", "alice")
		return serve(t, req, app, layer)
	}
	if rec := get("/v1/stats"); rec.Code != http.StatusOK {
		t.Fatalf("first request: %d", rec.Code)
	}
	rec := get("/v1/stats")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", rec.Code)
	}
	// One token at 0.5/s is 2 seconds away.
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want 2", got)
	}
	if !strings.Contains(rec.Body.String(), "rate limit") {
		t.Fatalf("429 body = %q", rec.Body.String())
	}
	// Exempt paths bypass the empty bucket.
	if rec := get("/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("exempt path rate limited: %d", rec.Code)
	}
	clock.advance(2 * time.Second)
	if rec := get("/v1/stats"); rec.Code != http.StatusOK {
		t.Fatalf("request after refill: %d", rec.Code)
	}
}

func TestQuotaLayer(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{Quota: 2, Now: clock.now})
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	layer := httpmw.QuotaLayer(s, "/healthz")
	get := func(path string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("GET", path, nil)
		req.Header.Set("X-Session-ID", "alice")
		return serve(t, req, app, layer)
	}
	for i := 0; i < 2; i++ {
		if rec := get("/v1/stats"); rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, rec.Code)
		}
	}
	rec := get("/v1/stats")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: %d, want 429", rec.Code)
	}
	// The quota body is distinct from the rate limiter's, and no
	// Retry-After is advertised — waiting will not help.
	if !strings.Contains(rec.Body.String(), "quota") || strings.Contains(rec.Body.String(), "rate limit") {
		t.Fatalf("quota 429 body = %q", rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("quota 429 advertises Retry-After %q", got)
	}
	if rec := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("exempt path consumed quota: %d", rec.Code)
	}
}

func TestBodyLimitLayer(t *testing.T) {
	var readErr error
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, readErr = io.ReadAll(r.Body)
		var tooLarge *http.MaxBytesError
		if errors.As(readErr, &tooLarge) {
			http.Error(w, "too big", http.StatusRequestEntityTooLarge)
			return
		}
		w.Write([]byte("ok"))
	})
	layer := httpmw.BodyLimitLayer(8)

	req := httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("tiny"))
	if rec := serve(t, req, app, layer); rec.Code != http.StatusOK {
		t.Fatalf("small body: %d", rec.Code)
	}

	req = httptest.NewRequest("POST", "/v1/jobs", strings.NewReader(strings.Repeat("x", 64)))
	rec := serve(t, req, app, layer)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", rec.Code)
	}
	var tooLarge *http.MaxBytesError
	if !errors.As(readErr, &tooLarge) {
		t.Fatalf("handler read error = %v, want *http.MaxBytesError", readErr)
	}
}
