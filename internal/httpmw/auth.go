package httpmw

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
)

// AuthLayer enforces a static bearer token on every request except the
// exempt paths (provmarkd exempts /healthz so liveness probes need no
// credential). Comparison is constant-time over SHA-256 digests, so
// neither token length nor prefix leaks through timing.
//
// Auth sits above RateLimit by contract: failed credentials are
// rejected before they can drain a session's token bucket.
func AuthLayer(token string, exempt ...string) Layer {
	want := sha256.Sum256([]byte(token))
	ex := pathSet(exempt)
	return Layer{
		Name:  "auth",
		Class: ClassAuth,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if ex[r.URL.Path] {
					next.ServeHTTP(w, r)
					return
				}
				got, ok := bearerToken(r)
				sum := sha256.Sum256([]byte(got))
				if !ok || subtle.ConstantTimeCompare(sum[:], want[:]) != 1 {
					w.Header().Set("WWW-Authenticate", `Bearer realm="provmarkd"`)
					http.Error(w, "unauthorized: missing or invalid bearer token", http.StatusUnauthorized)
					return
				}
				next.ServeHTTP(w, r)
			})
		},
	}
}
