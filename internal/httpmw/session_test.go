package httpmw_test

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"provmark/internal/httpmw"
)

// fakeClock drives a SessionStore deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1700000000, 0)} }

func TestTokenBucketRefill(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{Rate: 2, Burst: 2, Now: clock.now})

	// A fresh session starts with a full bucket: burst requests pass.
	for i := 0; i < 2; i++ {
		if ok, _ := s.Allow("a"); !ok {
			t.Fatalf("request %d rejected within burst", i)
		}
	}
	ok, wait := s.Allow("a")
	if ok {
		t.Fatal("request admitted on an empty bucket")
	}
	// At 2 tokens/s an empty bucket refills one token in 500ms.
	if wait != 500*time.Millisecond {
		t.Fatalf("retry hint = %v, want 500ms", wait)
	}
	if got := s.RateRejections(); got != 1 {
		t.Fatalf("RateRejections = %d, want 1", got)
	}

	// After 600ms one token is back — exactly one request passes.
	clock.advance(600 * time.Millisecond)
	if ok, _ := s.Allow("a"); !ok {
		t.Fatal("request rejected after refill")
	}
	if ok, _ := s.Allow("a"); ok {
		t.Fatal("second request admitted without tokens")
	}

	// Refill caps at burst, not beyond.
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := s.Allow("a"); !ok {
			t.Fatalf("request %d rejected after long idle", i)
		}
	}
	if ok, _ := s.Allow("a"); ok {
		t.Fatal("bucket refilled past burst")
	}
}

func TestSessionsAreIndependent(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{Rate: 1, Burst: 1, Now: clock.now})
	if ok, _ := s.Allow("a"); !ok {
		t.Fatal("first session rejected")
	}
	if ok, _ := s.Allow("b"); !ok {
		t.Fatal("second session charged for the first session's traffic")
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
}

func TestDisabledRateAlwaysAdmits(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{Now: clock.now})
	for i := 0; i < 100; i++ {
		if ok, _ := s.Allow("a"); !ok {
			t.Fatal("disabled rate limiter rejected a request")
		}
	}
}

func TestQuotaCharge(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{Quota: 3, Now: clock.now})
	for i := 1; i <= 3; i++ {
		calls, ok := s.Charge("a")
		if !ok || calls != int64(i) {
			t.Fatalf("Charge %d = (%d, %v)", i, calls, ok)
		}
	}
	if _, ok := s.Charge("a"); ok {
		t.Fatal("charge admitted past quota")
	}
	if got := s.QuotaRejections(); got != 1 {
		t.Fatalf("QuotaRejections = %d, want 1", got)
	}
	// Quotas are per session.
	if _, ok := s.Charge("b"); !ok {
		t.Fatal("fresh session inherited exhausted quota")
	}
	if got := s.Calls("a"); got != 3 {
		t.Fatalf("Calls = %d, want 3", got)
	}
}

func TestSessionEvictionBound(t *testing.T) {
	clock := newClock()
	s := httpmw.NewSessionStore(httpmw.SessionConfig{MaxSessions: 3, Now: clock.now})
	for i := 0; i < 5; i++ {
		s.Charge(fmt.Sprintf("s%d", i))
		clock.advance(time.Second)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want the MaxSessions bound 3", got)
	}
	// The longest-idle sessions were the ones evicted: s0 has no
	// recorded calls anymore, the newest still does.
	if got := s.Calls("s0"); got != 0 {
		t.Fatalf("oldest session survived eviction with %d calls", got)
	}
	if got := s.Calls("s4"); got != 1 {
		t.Fatalf("newest session evicted (calls = %d)", got)
	}
}

func TestDefaultSessionKey(t *testing.T) {
	r := httptest.NewRequest("GET", "/v1/stats", nil)
	r.RemoteAddr = "10.1.2.3:4567"
	if got := httpmw.DefaultSessionKey(r); got != "ip:10.1.2.3" {
		t.Errorf("ip key = %q", got)
	}

	r.Header.Set("Authorization", "Bearer sesame")
	tok := httpmw.DefaultSessionKey(r)
	if len(tok) != len("tok:")+16 || tok[:4] != "tok:" {
		t.Errorf("token key = %q, want tok:<16 hex>", tok)
	}
	// The credential itself must not appear in the key (it lands in
	// logs and metrics).
	if gotRaw := "tok:sesame"; tok == gotRaw {
		t.Error("token key leaks the raw credential")
	}

	r.Header.Set("X-Session-ID", "alice-7")
	if got := httpmw.DefaultSessionKey(r); got != "sid:alice-7" {
		t.Errorf("session-id key = %q", got)
	}

	// A hostile session header (log-unsafe bytes) is discarded, not
	// propagated.
	r.Header.Set("X-Session-ID", "evil\nid")
	if got := httpmw.DefaultSessionKey(r); got != tok {
		t.Errorf("unsafe session id not discarded: %q", got)
	}
}
