package httpmw

import "net/http"

// BodyLimitLayer caps every request body at n bytes via
// http.MaxBytesReader. A handler reading past the cap gets a
// *http.MaxBytesError, which it should map to 413 Request Entity Too
// Large (net/http also closes the connection, stopping the upload).
// The layer is innermost by contract: the cap protects the
// application's reads after every policy layer has admitted the
// request.
func BodyLimitLayer(n int64) Layer {
	return Layer{
		Name:  "bodylimit",
		Class: ClassBodyLimit,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.Body != nil && r.ContentLength != 0 {
					r.Body = http.MaxBytesReader(w, r.Body, n)
				}
				next.ServeHTTP(w, r)
			})
		},
	}
}
