package httpmw

import (
	"crypto/sha256"
	"encoding/hex"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSessions bounds tracked sessions when SessionConfig leaves
// MaxSessions unset.
const DefaultMaxSessions = 65536

// SessionConfig configures a SessionStore.
type SessionConfig struct {
	// Rate is the steady-state token-bucket refill in requests/second;
	// values <= 0 disable rate limiting (Allow always admits).
	Rate float64
	// Burst is the bucket capacity — how many requests a fresh or idle
	// session may issue back to back. Values < 1 mean 1.
	Burst int
	// Quota is the lifetime invocation budget per session; values <= 0
	// mean unlimited.
	Quota int64
	// MaxSessions bounds the tracked-session map; past it, the
	// longest-idle sessions are evicted (their bucket and quota state
	// reset). Values < 1 use DefaultMaxSessions.
	MaxSessions int
	// Key derives the session key from a request; nil uses
	// DefaultSessionKey.
	Key func(*http.Request) string
	// Now injects a clock for tests; nil uses time.Now.
	Now func() time.Time
}

// SessionStore tracks per-session state across requests: a token
// bucket for rate limiting and an invocation counter for quotas
// (Snippet 1's counter-middleware/session-storage pattern). One store
// is shared by the RateLimit and Quota layers so both policies agree
// on what a "session" is, and it feeds the metrics endpoint the
// session count and rejection counters.
type SessionStore struct {
	cfg SessionConfig

	mu       sync.Mutex
	sessions map[string]*session

	rateRejected  atomic.Int64
	quotaRejected atomic.Int64
}

type session struct {
	tokens float64   // current bucket fill
	filled time.Time // last refill instant
	calls  int64     // lifetime invocations (quota)
	seen   time.Time // last activity, for idle eviction
}

// NewSessionStore builds a session store; see SessionConfig for knobs.
func NewSessionStore(cfg SessionConfig) *SessionStore {
	if cfg.Burst < 1 {
		cfg.Burst = 1
	}
	if cfg.MaxSessions < 1 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.Key == nil {
		cfg.Key = DefaultSessionKey
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &SessionStore{cfg: cfg, sessions: make(map[string]*session)}
}

// Key resolves a request's session key via the configured derivation.
func (s *SessionStore) Key(r *http.Request) string { return s.cfg.Key(r) }

// Len reports how many sessions are currently tracked.
func (s *SessionStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// RateRejections counts requests rejected by the token bucket since
// startup; QuotaRejections the requests rejected by quota exhaustion.
func (s *SessionStore) RateRejections() int64  { return s.rateRejected.Load() }
func (s *SessionStore) QuotaRejections() int64 { return s.quotaRejected.Load() }

// Allow charges one token from key's bucket. When the bucket is empty
// it reports false plus how long until a token will be available —
// the Retry-After the caller should advertise. With Rate <= 0 it
// always admits (rate limiting disabled) but still tracks the session.
func (s *SessionStore) Allow(key string) (bool, time.Duration) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionLocked(key, now)
	if s.cfg.Rate <= 0 {
		return true, 0
	}
	// Lazy refill: top the bucket up for the time elapsed since the
	// last refill, capped at burst.
	elapsed := now.Sub(sess.filled).Seconds()
	if elapsed > 0 {
		sess.tokens += elapsed * s.cfg.Rate
		if max := float64(s.cfg.Burst); sess.tokens > max {
			sess.tokens = max
		}
	}
	sess.filled = now
	if sess.tokens >= 1 {
		sess.tokens--
		return true, 0
	}
	s.rateRejected.Add(1)
	wait := time.Duration((1 - sess.tokens) / s.cfg.Rate * float64(time.Second))
	return false, wait
}

// Charge records one invocation against key's lifetime quota and
// reports whether the session is still within it. With Quota <= 0 it
// only counts.
func (s *SessionStore) Charge(key string) (calls int64, ok bool) {
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	sess := s.sessionLocked(key, now)
	if s.cfg.Quota > 0 && sess.calls >= s.cfg.Quota {
		s.quotaRejected.Add(1)
		return sess.calls, false
	}
	sess.calls++
	return sess.calls, true
}

// Calls reports key's lifetime invocation count without charging it.
func (s *SessionStore) Calls(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[key]; ok {
		return sess.calls
	}
	return 0
}

// sessionLocked fetches or creates key's session, evicting the
// longest-idle session when the tracking bound is hit. Callers hold
// s.mu.
func (s *SessionStore) sessionLocked(key string, now time.Time) *session {
	if sess, ok := s.sessions[key]; ok {
		sess.seen = now
		return sess
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		var oldestKey string
		var oldest time.Time
		for k, sess := range s.sessions {
			if oldestKey == "" || sess.seen.Before(oldest) {
				oldestKey, oldest = k, sess.seen
			}
		}
		delete(s.sessions, oldestKey)
	}
	sess := &session{tokens: float64(s.cfg.Burst), filled: now, seen: now}
	s.sessions[key] = sess
	return sess
}

// DefaultSessionKey identifies a session by, in order of preference:
// an explicit X-Session-ID header, the (hashed) bearer token, or the
// client IP. Hashing the token keeps credentials out of logs and
// metrics labels while still partitioning per credential.
func DefaultSessionKey(r *http.Request) string {
	if v := sanitizeRequestID(r.Header.Get("X-Session-ID")); v != "" {
		return "sid:" + v
	}
	if tok, ok := bearerToken(r); ok && tok != "" {
		sum := sha256.Sum256([]byte(tok))
		return "tok:" + hex.EncodeToString(sum[:8])
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return "ip:" + host
	}
	return "ip:" + r.RemoteAddr
}

// bearerToken extracts an RFC 6750 Authorization: Bearer credential.
func bearerToken(r *http.Request) (string, bool) {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) <= len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) {
		return "", false
	}
	return auth[len(prefix):], true
}
