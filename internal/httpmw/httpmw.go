// Package httpmw is provmarkd's composable HTTP middleware subsystem:
// a small vocabulary of production-service layers (panic recovery,
// request IDs, structured access logs, Prometheus-style metrics,
// bearer-token auth, per-session token-bucket rate limiting,
// per-session invocation quotas, request-body caps) and a Chain that
// assembles them with the registration order VALIDATED at startup.
//
// # The order contract
//
// Layers are classed, and a Chain only accepts layers in strictly
// ascending class order — outermost first:
//
//	Recover < RequestID < AccessLog < Metrics < Auth < RateLimit < Quota < BodyLimit < app
//
// The order is load-bearing, not cosmetic:
//
//   - Recover is outermost so a panic anywhere below it (including in
//     another layer) still yields a 500 and a logged stack.
//   - RequestID precedes AccessLog and Metrics so every logged line
//     and every measured request carries its ID.
//   - AccessLog and Metrics precede Auth/RateLimit/Quota so REJECTED
//     requests (401/429) are still logged and counted — a service
//     under attack must see the attack in its own telemetry.
//   - Auth precedes RateLimit so unauthenticated probes cannot drain
//     a session's token bucket, and RateLimit precedes Quota so a
//     rate-limited burst does not also burn lifetime quota.
//   - BodyLimit is innermost: it caps the body the app will actually
//     read, after every policy layer has had its say.
//
// NewChain fails fast with an error naming the offending layers when a
// caller registers them out of order (or registers a class twice), so
// a misconfigured server refuses to start instead of silently running
// with, say, unauthenticated metrics traffic draining rate budgets.
//
// Response-writer wrappers installed by AccessLog and Metrics preserve
// http.Flusher, so NDJSON streaming endpoints keep flushing per line
// through a fully assembled chain.
package httpmw

import (
	"fmt"
	"net/http"
)

// Middleware decorates an http.Handler with one concern, delegating
// the rest of the request to the wrapped handler.
type Middleware func(http.Handler) http.Handler

// Class ranks a layer in the mandatory chain order. Lower classes wrap
// outside higher ones; see the package comment for why each ordering
// pair matters.
type Class int

const (
	ClassRecover Class = iota
	ClassRequestID
	ClassAccessLog
	ClassMetrics
	ClassAuth
	ClassRateLimit
	ClassQuota
	ClassBodyLimit
	classCount
)

var classNames = [...]string{
	ClassRecover:   "Recover",
	ClassRequestID: "RequestID",
	ClassAccessLog: "AccessLog",
	ClassMetrics:   "Metrics",
	ClassAuth:      "Auth",
	ClassRateLimit: "RateLimit",
	ClassQuota:     "Quota",
	ClassBodyLimit: "BodyLimit",
}

func (c Class) String() string {
	if c < 0 || c >= classCount {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// requiredOrder renders the full contract for error messages.
func requiredOrder() string {
	s := ""
	for c := Class(0); c < classCount; c++ {
		if c > 0 {
			s += " < "
		}
		s += c.String()
	}
	return s
}

// Layer is one named, classed middleware registration.
type Layer struct {
	Name  string
	Class Class
	Wrap  Middleware
}

// Chain is a validated, ordered middleware stack. The zero Chain is
// not useful; build one with NewChain.
type Chain struct {
	layers []Layer
}

// NewChain validates and assembles a middleware stack. Layers must be
// registered outermost-first in strictly ascending Class order; a
// misordered or duplicated class fails with an error naming both
// offending layers, so a misconfigured server dies at startup rather
// than serving with a scrambled policy stack. Classes may be omitted
// (an unauthenticated server simply has no Auth layer) but never
// reordered.
func NewChain(layers ...Layer) (*Chain, error) {
	for i, l := range layers {
		if l.Name == "" {
			return nil, fmt.Errorf("httpmw: invalid chain: layer %d (%s) has no name", i, l.Class)
		}
		if l.Class < 0 || l.Class >= classCount {
			return nil, fmt.Errorf("httpmw: invalid chain: layer %q has unknown class %d", l.Name, int(l.Class))
		}
		if l.Wrap == nil {
			return nil, fmt.Errorf("httpmw: invalid chain: layer %q (%s) has a nil middleware", l.Name, l.Class)
		}
		if i == 0 {
			continue
		}
		prev := layers[i-1]
		if l.Class == prev.Class {
			return nil, fmt.Errorf("httpmw: invalid chain: layers %q and %q both register class %s",
				prev.Name, l.Name, l.Class)
		}
		if l.Class < prev.Class {
			return nil, fmt.Errorf("httpmw: invalid chain: layer %q (%s) is registered after %q (%s); required order is %s",
				l.Name, l.Class, prev.Name, prev.Class, requiredOrder())
		}
	}
	c := &Chain{layers: make([]Layer, len(layers))}
	copy(c.layers, layers)
	return c, nil
}

// MustNewChain is NewChain for hardcoded chains whose order is part of
// the program text; it panics on a validation error.
func MustNewChain(layers ...Layer) *Chain {
	c, err := NewChain(layers...)
	if err != nil {
		panic(err)
	}
	return c
}

// Then wraps app in the chain's layers, first layer outermost. A nil
// app wraps http.DefaultServeMux, matching net/http convention.
func (c *Chain) Then(app http.Handler) http.Handler {
	if app == nil {
		app = http.DefaultServeMux
	}
	h := app
	for i := len(c.layers) - 1; i >= 0; i-- {
		h = c.layers[i].Wrap(h)
	}
	return h
}

// Names lists the chain's layer names outermost-first — handy for
// startup logs asserting which policies are live.
func (c *Chain) Names() []string {
	names := make([]string, len(c.layers))
	for i, l := range c.layers {
		names[i] = l.Name
	}
	return names
}

// pathSet builds the exemption lookup the policy layers share.
func pathSet(paths []string) map[string]bool {
	if len(paths) == 0 {
		return nil
	}
	m := make(map[string]bool, len(paths))
	for _, p := range paths {
		m[p] = true
	}
	return m
}
