package httpmw

import "net/http"

// QuotaLayer charges each admitted request against its session's
// lifetime invocation quota and rejects the session once the budget is
// spent. The 429 body is deliberately distinct from the rate limiter's
// and carries no Retry-After: an exhausted quota does not replenish
// with time, so telling the client to retry would be a lie.
//
// Quota sits below RateLimit by contract, so a rate-limited burst does
// not also burn lifetime budget.
func QuotaLayer(s *SessionStore, exempt ...string) Layer {
	ex := pathSet(exempt)
	return Layer{
		Name:  "quota",
		Class: ClassQuota,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if ex[r.URL.Path] {
					next.ServeHTTP(w, r)
					return
				}
				if _, ok := s.Charge(s.Key(r)); !ok {
					http.Error(w, "session quota exhausted: invocation budget spent", http.StatusTooManyRequests)
					return
				}
				next.ServeHTTP(w, r)
			})
		},
	}
}
