package httpmw

import (
	"log/slog"
	"net/http"
	"runtime/debug"
)

// RecoverLayer is the outermost layer: a panic anywhere below it —
// application handler or another middleware — is logged with its stack
// and answered with a plain 500 instead of killing the connection
// without a trace. http.ErrAbortHandler is re-panicked, preserving
// net/http's sanctioned abort mechanism.
//
// If the handler already wrote response headers before panicking, the
// 500 cannot be delivered; the attempt is still harmless (net/http
// logs a superfluous WriteHeader) and the stack is logged either way.
func RecoverLayer(logger *slog.Logger) Layer {
	logger = orDiscard(logger)
	return Layer{
		Name:  "recover",
		Class: ClassRecover,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				defer func() {
					v := recover()
					if v == nil {
						return
					}
					if v == http.ErrAbortHandler {
						panic(v)
					}
					logger.LogAttrs(r.Context(), slog.LevelError, "panic in handler",
						slog.String("method", r.Method),
						slog.String("path", r.URL.Path),
						slog.Any("panic", v),
						slog.String("stack", string(debug.Stack())),
					)
					http.Error(w, "internal server error", http.StatusInternalServerError)
				}()
				next.ServeHTTP(w, r)
			})
		},
	}
}
