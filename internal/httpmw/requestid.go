package httpmw

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// RequestIDHeader carries a request's correlation ID in both
// directions: a client may supply one (it is echoed back and attached
// to logs), and the server mints one otherwise. The response always
// carries the header, so every client error report can name the exact
// server-side log lines.
const RequestIDHeader = "X-Request-ID"

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request ID injected by RequestIDLayer, or ""
// outside a chain.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// RequestIDLayer honors a well-formed client-supplied X-Request-ID or
// mints a fresh 64-bit hex ID, sets the response header, and stores
// the ID in the request context for the layers and handlers below.
func RequestIDLayer() Layer {
	return Layer{
		Name:  "requestid",
		Class: ClassRequestID,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
				if id == "" {
					id = newRequestID()
				}
				w.Header().Set(RequestIDHeader, id)
				ctx := context.WithValue(r.Context(), requestIDKey, id)
				next.ServeHTTP(w, r.WithContext(ctx))
			})
		},
	}
}

// sanitizeRequestID accepts client IDs only when they are short and
// log-safe ([A-Za-z0-9._-], ≤ 64 bytes); anything else is discarded so
// a hostile header cannot inject into structured logs.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return id
}

func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID
		// still serves, it just stops correlating.
		return "rid-unavailable"
	}
	return hex.EncodeToString(b[:])
}
