package httpmw_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"provmark/internal/httpmw"
)

func scrape(t *testing.T, m *httpmw.Metrics) string {
	t.Helper()
	rec := httptest.NewRecorder()
	m.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	return rec.Body.String()
}

func TestMetricsLayerCountsRequests(t *testing.T) {
	m := httpmw.NewMetrics("test")
	routes := map[string]string{"/ok": "GET /ok", "/missing": ""}
	layer := httpmw.MetricsLayer(m, func(r *http.Request) string { return routes[r.URL.Path] })
	app := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok"))
	})
	chain := httpmw.MustNewChain(layer)
	h := chain.Then(app)
	for i := 0; i < 3; i++ {
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/ok", nil))
	}
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/missing", nil))

	body := scrape(t, m)
	for _, want := range []string{
		`test_http_requests_total{route="GET /ok",code="200"} 3`,
		`test_http_requests_total{route="unmatched",code="404"} 1`,
		`test_http_in_flight{route="GET /ok"} 0`,
		`test_http_request_duration_seconds_bucket{route="GET /ok",le="+Inf"} 3`,
		`test_http_request_duration_seconds_count{route="GET /ok"} 3`,
		"# TYPE test_http_requests_total counter",
		"# TYPE test_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}

	// Histogram buckets are cumulative: every bound's count is bounded
	// by the total.
	re := regexp.MustCompile(`test_http_request_duration_seconds_bucket\{route="GET /ok",le="[^"]+"\} (\d+)`)
	for _, match := range re.FindAllStringSubmatch(body, -1) {
		if match[1] > "3" && len(match[1]) == 1 {
			t.Errorf("bucket count %s exceeds total 3", match[1])
		}
	}
}

func TestMetricsPanicStillRecorded(t *testing.T) {
	// A panicking handler unwinds through the metrics layer; the
	// request must still be recorded, as a 500 (the status Recover
	// above will write).
	m := httpmw.NewMetrics("test")
	chain := httpmw.MustNewChain(
		httpmw.RecoverLayer(nil),
		httpmw.MetricsLayer(m, func(*http.Request) string { return "GET /boom" }),
	)
	h := chain.Then(http.HandlerFunc(func(http.ResponseWriter, *http.Request) { panic("x") }))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/boom", nil))
	body := scrape(t, m)
	if !strings.Contains(body, `test_http_requests_total{route="GET /boom",code="500"} 1`) {
		t.Fatalf("panicking request not recorded as 500:\n%s", body)
	}
	if !strings.Contains(body, `test_http_in_flight{route="GET /boom"} 0`) {
		t.Fatalf("in-flight gauge leaked after panic:\n%s", body)
	}
}

func TestMetricsRegisterFunc(t *testing.T) {
	m := httpmw.NewMetrics("test")
	v := 41.0
	m.RegisterFunc("test_custom_total", "A re-exported counter.", "counter", func() float64 { return v })
	v++
	body := scrape(t, m)
	for _, want := range []string{
		"# HELP test_custom_total A re-exported counter.",
		"# TYPE test_custom_total counter",
		"test_custom_total 42",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsLabelEscaping(t *testing.T) {
	m := httpmw.NewMetrics("test")
	layer := httpmw.MetricsLayer(m, func(*http.Request) string { return "GET /weird\"route\\" })
	h := httpmw.MustNewChain(layer).Then(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	body := scrape(t, m)
	if !strings.Contains(body, `route="GET /weird\"route\\"`) {
		t.Fatalf("label not escaped:\n%s", body)
	}
}

func TestMetricsConcurrentObservation(t *testing.T) {
	// The registry is shared by every in-flight request; hammer it from
	// goroutines so the race detector can chew on it.
	m := httpmw.NewMetrics("test")
	h := httpmw.MustNewChain(
		httpmw.MetricsLayer(m, func(*http.Request) string { return "GET /x" }),
	).Then(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, "ok") }))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
			}
		}()
	}
	wg.Wait()
	if body := scrape(t, m); !strings.Contains(body, `test_http_requests_total{route="GET /x",code="200"} 400`) {
		t.Fatalf("concurrent counts lost:\n%s", body)
	}
}
