package httpmw_test

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provmark/internal/httpmw"
)

func noopLayer(name string, class httpmw.Class) httpmw.Layer {
	return httpmw.Layer{Name: name, Class: class, Wrap: func(next http.Handler) http.Handler { return next }}
}

// tagLayer writes its name into a response header list, so tests can
// observe wrapping order.
func tagLayer(name string, class httpmw.Class) httpmw.Layer {
	return httpmw.Layer{Name: name, Class: class, Wrap: func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Add("X-Order", name)
			next.ServeHTTP(w, r)
		})
	}}
}

func TestChainAcceptsFullOrderedStack(t *testing.T) {
	chain, err := httpmw.NewChain(
		noopLayer("recover", httpmw.ClassRecover),
		noopLayer("requestid", httpmw.ClassRequestID),
		noopLayer("accesslog", httpmw.ClassAccessLog),
		noopLayer("metrics", httpmw.ClassMetrics),
		noopLayer("auth", httpmw.ClassAuth),
		noopLayer("ratelimit", httpmw.ClassRateLimit),
		noopLayer("quota", httpmw.ClassQuota),
		noopLayer("bodylimit", httpmw.ClassBodyLimit),
	)
	if err != nil {
		t.Fatalf("full ordered chain rejected: %v", err)
	}
	want := []string{"recover", "requestid", "accesslog", "metrics", "auth", "ratelimit", "quota", "bodylimit"}
	got := chain.Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestChainAcceptsGaps(t *testing.T) {
	// Policy layers are optional: an unauthenticated server simply has
	// no Auth layer. Gaps must not trip the order validator.
	if _, err := httpmw.NewChain(
		noopLayer("recover", httpmw.ClassRecover),
		noopLayer("metrics", httpmw.ClassMetrics),
		noopLayer("bodylimit", httpmw.ClassBodyLimit),
	); err != nil {
		t.Fatalf("gapped chain rejected: %v", err)
	}
}

func TestChainRejectsMisorderNamingLayers(t *testing.T) {
	_, err := httpmw.NewChain(
		noopLayer("recover", httpmw.ClassRecover),
		noopLayer("auth", httpmw.ClassAuth),
		noopLayer("accesslog", httpmw.ClassAccessLog),
	)
	if err == nil {
		t.Fatal("misordered chain accepted")
	}
	// The error must name BOTH offending layers and the contract, so
	// the startup failure is actionable without reading the source.
	for _, want := range []string{`"accesslog"`, `"auth"`, "required order", "Recover < RequestID < AccessLog < Metrics < Auth < RateLimit < Quota < BodyLimit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestChainRejectsDuplicateClass(t *testing.T) {
	_, err := httpmw.NewChain(
		noopLayer("auth-a", httpmw.ClassAuth),
		noopLayer("auth-b", httpmw.ClassAuth),
	)
	if err == nil {
		t.Fatal("duplicate class accepted")
	}
	for _, want := range []string{`"auth-a"`, `"auth-b"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}

func TestChainRejectsAnonymousNilAndUnknown(t *testing.T) {
	if _, err := httpmw.NewChain(noopLayer("", httpmw.ClassRecover)); err == nil {
		t.Error("nameless layer accepted")
	}
	if _, err := httpmw.NewChain(httpmw.Layer{Name: "x", Class: httpmw.ClassRecover}); err == nil {
		t.Error("nil middleware accepted")
	}
	if _, err := httpmw.NewChain(noopLayer("x", httpmw.Class(99))); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestChainWrapsOutermostFirst(t *testing.T) {
	chain, err := httpmw.NewChain(
		tagLayer("first", httpmw.ClassRecover),
		tagLayer("second", httpmw.ClassAuth),
		tagLayer("third", httpmw.ClassBodyLimit),
	)
	if err != nil {
		t.Fatal(err)
	}
	h := chain.Then(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if got := strings.Join(rec.Header().Values("X-Order"), ","); got != "first,second,third" {
		t.Fatalf("execution order %q, want first,second,third", got)
	}
}

func TestMustNewChainPanicsOnMisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewChain did not panic on a misordered chain")
		}
	}()
	httpmw.MustNewChain(noopLayer("b", httpmw.ClassBodyLimit), noopLayer("a", httpmw.ClassRecover))
}
