package httpmw

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// latencyBuckets are the cumulative histogram bounds, in seconds, for
// per-route request latency. Chosen to straddle provmarkd's range:
// sub-millisecond status lookups up to multi-second matrix cells.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 10}

// Metrics is a minimal Prometheus-text metrics registry: per-route
// HTTP request counters, in-flight gauges, and latency histograms fed
// by MetricsLayer, plus function-backed metrics re-exporting counters
// that live elsewhere (provmarkd registers its dedup-store, query,
// job-state, session, and rejection counters). Handler serves the
// text exposition format on GET /metrics.
//
// It is deliberately dependency-free — the container bakes no
// Prometheus client library, and the text format is stable and tiny.
type Metrics struct {
	namespace string

	mu     sync.Mutex
	routes map[string]*routeMetrics
	funcs  []funcMetric
}

type routeMetrics struct {
	inFlight int64
	codes    map[int]int64 // per status code request count
	buckets  []int64       // cumulative latency counts per bound, +Inf implicit in count
	sum      float64       // total latency seconds
	count    int64
}

type funcMetric struct {
	name, help, typ string
	fn              func() float64
}

// NewMetrics builds a registry whose HTTP metric names are prefixed
// "<namespace>_http_...".
func NewMetrics(namespace string) *Metrics {
	return &Metrics{namespace: namespace, routes: make(map[string]*routeMetrics)}
}

// RegisterFunc re-exports an externally owned value under name (typ is
// "counter" or "gauge"). The function is called at scrape time.
// Registration order is preserved in the exposition.
func (m *Metrics) RegisterFunc(name, help, typ string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.funcs = append(m.funcs, funcMetric{name: name, help: help, typ: typ, fn: fn})
}

func (m *Metrics) route(route string) *routeMetrics {
	rm, ok := m.routes[route]
	if !ok {
		rm = &routeMetrics{codes: make(map[int]int64), buckets: make([]int64, len(latencyBuckets))}
		m.routes[route] = rm
	}
	return rm
}

func (m *Metrics) begin(route string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.route(route).inFlight++
}

func (m *Metrics) done(route string, code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.route(route)
	rm.inFlight--
	rm.codes[code]++
	rm.count++
	rm.sum += secs
	for i, bound := range latencyBuckets {
		if secs <= bound {
			rm.buckets[i]++
		}
	}
}

// MetricsLayer measures every request — even ones later rejected by
// Auth/RateLimit/Quota, which sit below it by contract — under the
// route label the resolver supplies (provmarkd resolves the mux
// pattern, e.g. "POST /v1/jobs").
func MetricsLayer(m *Metrics, route func(*http.Request) string) Layer {
	return Layer{
		Name:  "metrics",
		Class: ClassMetrics,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				label := "unmatched"
				if route != nil {
					if l := route(r); l != "" {
						label = l
					}
				}
				start := time.Now()
				m.begin(label)
				rec := &responseRecorder{ResponseWriter: w}
				completed := false
				defer func() {
					m.done(label, rec.statusOrDefault(completed), time.Since(start))
				}()
				next.ServeHTTP(rec, r)
				completed = true
			})
		},
	}
}

// Handler serves the registry in the Prometheus text exposition
// format.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write([]byte(m.render()))
	})
}

func (m *Metrics) render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder
	routes := make([]string, 0, len(m.routes))
	for route := range m.routes {
		routes = append(routes, route)
	}
	sort.Strings(routes)
	ns := m.namespace

	header(&b, ns+"_http_requests_total", "Completed HTTP requests by route and status code.", "counter")
	for _, route := range routes {
		rm := m.routes[route]
		codes := make([]int, 0, len(rm.codes))
		for c := range rm.codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(&b, "%s_http_requests_total{route=%s,code=\"%d\"} %d\n",
				ns, labelValue(route), c, rm.codes[c])
		}
	}

	header(&b, ns+"_http_in_flight", "HTTP requests currently being served by route.", "gauge")
	for _, route := range routes {
		fmt.Fprintf(&b, "%s_http_in_flight{route=%s} %d\n", ns, labelValue(route), m.routes[route].inFlight)
	}

	header(&b, ns+"_http_request_duration_seconds", "HTTP request latency by route.", "histogram")
	for _, route := range routes {
		rm := m.routes[route]
		for i, bound := range latencyBuckets {
			fmt.Fprintf(&b, "%s_http_request_duration_seconds_bucket{route=%s,le=\"%s\"} %d\n",
				ns, labelValue(route), formatFloat(bound), rm.buckets[i])
		}
		fmt.Fprintf(&b, "%s_http_request_duration_seconds_bucket{route=%s,le=\"+Inf\"} %d\n",
			ns, labelValue(route), rm.count)
		fmt.Fprintf(&b, "%s_http_request_duration_seconds_sum{route=%s} %s\n",
			ns, labelValue(route), formatFloat(rm.sum))
		fmt.Fprintf(&b, "%s_http_request_duration_seconds_count{route=%s} %d\n",
			ns, labelValue(route), rm.count)
	}

	for _, f := range m.funcs {
		header(&b, f.name, f.help, f.typ)
		fmt.Fprintf(&b, "%s %s\n", f.name, formatFloat(f.fn()))
	}
	return b.String()
}

func header(b *strings.Builder, name, help, typ string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// labelValue quotes and escapes a Prometheus label value.
func labelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return `"` + r.Replace(v) + `"`
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
