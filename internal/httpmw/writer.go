package httpmw

import "net/http"

// responseRecorder observes the status code and body byte count of a
// response on behalf of the AccessLog and Metrics layers.
//
// It deliberately implements http.Flusher by delegation: provmarkd's
// NDJSON job stream flushes after every cell, and an observability
// wrapper that hid the Flusher interface would silently turn the
// stream into one buffered blob — and break owner-cancel-on-disconnect
// detection. When the underlying writer cannot flush, Flush is a
// no-op, which is exactly the behavior of serving without the wrapper.
type responseRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (rw *responseRecorder) WriteHeader(code int) {
	if rw.status == 0 {
		rw.status = code
	}
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *responseRecorder) Write(b []byte) (int, error) {
	if rw.status == 0 {
		rw.status = http.StatusOK
	}
	n, err := rw.ResponseWriter.Write(b)
	rw.bytes += int64(n)
	return n, err
}

func (rw *responseRecorder) Flush() {
	if f, ok := rw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController pass-through.
func (rw *responseRecorder) Unwrap() http.ResponseWriter { return rw.ResponseWriter }

// statusOrDefault resolves the recorded status once the handler has
// returned: an untouched writer means net/http will send 200 on a
// normal return, while an unwinding panic (completed == false) will be
// converted to a 500 by the Recover layer above.
func (rw *responseRecorder) statusOrDefault(completed bool) int {
	switch {
	case rw.status != 0:
		return rw.status
	case completed:
		return http.StatusOK
	default:
		return http.StatusInternalServerError
	}
}
