package httpmw

import (
	"io"
	"log/slog"
	"net/http"
	"time"
)

// AccessLogLayer emits one structured log record per request — method,
// path, matched route pattern, status, response bytes, duration,
// session key, request ID — through the given slog.Logger. The route
// and session resolvers are injected so the layer needs no knowledge
// of the mux or the session scheme; either may be nil.
//
// The layer sits above Auth/RateLimit/Quota by contract, so rejected
// requests (401/429) are logged with their rejection status — exactly
// the traffic an operator wants visible.
func AccessLogLayer(logger *slog.Logger, route, session func(*http.Request) string) Layer {
	logger = orDiscard(logger)
	return Layer{
		Name:  "accesslog",
		Class: ClassAccessLog,
		Wrap: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				start := time.Now()
				rec := &responseRecorder{ResponseWriter: w}
				completed := false
				defer func() {
					attrs := []slog.Attr{
						slog.String("method", r.Method),
						slog.String("path", r.URL.Path),
						slog.Int("status", rec.statusOrDefault(completed)),
						slog.Int64("bytes", rec.bytes),
						slog.Float64("duration_ms", float64(time.Since(start).Microseconds())/1000),
					}
					if route != nil {
						attrs = append(attrs, slog.String("route", route(r)))
					}
					if session != nil {
						attrs = append(attrs, slog.String("session", session(r)))
					}
					if id := RequestID(r.Context()); id != "" {
						attrs = append(attrs, slog.String("request_id", id))
					}
					logger.LogAttrs(r.Context(), slog.LevelInfo, "http request", attrs...)
				}()
				next.ServeHTTP(rec, r)
				completed = true
			})
		},
	}
}

// orDiscard makes a nil logger safe: layers log unconditionally, and a
// caller that wants silence simply passes nil.
func orDiscard(logger *slog.Logger) *slog.Logger {
	if logger != nil {
		return logger
	}
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}
