// Package dot reads and writes the Graphviz DOT dialect that the SPADE
// simulator emits (SPADE's Graphviz storage is one of its standard
// output backends). The subset covers digraphs whose node and edge
// attributes carry provenance properties in the label attribute as
// newline-separated key:value pairs, with the element's type under the
// reserved key "type".
package dot

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"provmark/internal/graph"
)

// Write renders a property graph as a DOT digraph. The graph label of
// each element is emitted as a leading "type:<label>" pair; property
// keys follow in sorted order.
func Write(w io.Writer, g *graph.Graph, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %s {\n", sanitizeName(name))
	fmt.Fprintf(bw, "graph [rankdir=\"TB\"];\n")
	for _, n := range g.Nodes() {
		shape := "ellipse"
		if n.Label == "Process" || n.Label == "Activity" {
			shape = "box"
		}
		fmt.Fprintf(bw, "%q [label=%q shape=%q];\n", string(n.ID), labelFor(n.Label, n.Props), shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%q -> %q [label=%q];\n", string(e.Src), string(e.Tgt), labelFor(e.Label, e.Props))
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}

// WriteString is Write into a string.
func WriteString(g *graph.Graph, name string) string {
	var b strings.Builder
	if err := Write(&b, g, name); err != nil {
		return "" // strings.Builder cannot fail
	}
	return b.String()
}

func labelFor(typ string, props graph.Properties) string {
	parts := []string{"type:" + typ}
	for _, k := range graph.PropKeys(props) {
		parts = append(parts, k+":"+props[k])
	}
	return strings.Join(parts, "\n")
}

func sanitizeName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' {
			out = append(out, c)
		} else {
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "g"
	}
	return string(out)
}

// Parse reads a DOT digraph written by Write (or by a compatible tool)
// back into a property graph.
func Parse(r io.Reader) (*graph.Graph, error) {
	g := graph.New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || strings.HasPrefix(line, "digraph") || line == "}" ||
			strings.HasPrefix(line, "graph ") || strings.HasPrefix(line, "//"):
			continue
		}
		if err := parseLine(g, line); err != nil {
			return nil, fmt.Errorf("dot: line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dot: read: %w", err)
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*graph.Graph, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(g *graph.Graph, line string) error {
	line = strings.TrimSuffix(line, ";")
	id1, rest, err := readQuoted(line)
	if err != nil {
		return err
	}
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "->") {
		id2, attrPart, err := readQuoted(strings.TrimSpace(rest[2:]))
		if err != nil {
			return err
		}
		label, props, err := parseAttrs(attrPart)
		if err != nil {
			return err
		}
		_ = ensureNode(g, graph.ElemID(id1))
		_ = ensureNode(g, graph.ElemID(id2))
		if _, err := g.AddEdge(graph.ElemID(id1), graph.ElemID(id2), label, props); err != nil {
			return err
		}
		return nil
	}
	label, props, err := parseAttrs(rest)
	if err != nil {
		return err
	}
	if n := g.Node(graph.ElemID(id1)); n != nil {
		// Node was auto-created by an earlier edge line: fill it in.
		n.Label = label
		for k, v := range props {
			if err := g.SetProp(n.ID, k, v); err != nil {
				return err
			}
		}
		return nil
	}
	return g.InsertNode(graph.ElemID(id1), label, props)
}

func ensureNode(g *graph.Graph, id graph.ElemID) *graph.Node {
	if n := g.Node(id); n != nil {
		return n
	}
	if err := g.InsertNode(id, "unknown", nil); err != nil {
		return nil
	}
	return g.Node(id)
}

// readQuoted consumes a leading quoted identifier and returns it plus
// the remainder.
func readQuoted(s string) (string, string, error) {
	s = strings.TrimSpace(s)
	if len(s) == 0 || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted identifier at %q", s)
	}
	var b strings.Builder
	i := 1
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 < len(s) {
				// DOT label escapes: \n is a line break (Write emits it
				// via %q); everything else unescapes to itself.
				if s[i+1] == 'n' {
					b.WriteByte('\n')
				} else {
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			return "", "", fmt.Errorf("dangling escape in %q", s)
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return "", "", fmt.Errorf("unterminated identifier in %q", s)
}

// parseAttrs reads the [key=value ...] attribute block, extracting the
// label attribute and splitting it into the type and properties.
func parseAttrs(s string) (string, graph.Properties, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return "", nil, fmt.Errorf("expected attribute block, got %q", s)
	}
	s = s[1 : len(s)-1]
	var labelVal string
	for len(s) > 0 {
		s = strings.TrimSpace(s)
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimSpace(s[eq+1:])
		var val string
		if strings.HasPrefix(s, "\"") {
			v, rest, err := readQuoted(s)
			if err != nil {
				return "", nil, err
			}
			val, s = v, rest
		} else {
			sp := strings.IndexAny(s, " \t")
			if sp < 0 {
				val, s = s, ""
			} else {
				val, s = s[:sp], s[sp+1:]
			}
		}
		if key == "label" {
			labelVal = val
		}
	}
	typ := "unknown"
	props := graph.Properties{}
	for _, pair := range strings.Split(labelVal, "\n") {
		if pair == "" {
			continue
		}
		colon := strings.IndexByte(pair, ':')
		if colon < 0 {
			continue
		}
		k, v := pair[:colon], pair[colon+1:]
		if k == "type" {
			typ = v
		} else {
			props[k] = v
		}
	}
	if len(props) == 0 {
		props = nil
	}
	return typ, props, nil
}
