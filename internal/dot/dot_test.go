package dot

import (
	"strings"
	"testing"

	"provmark/internal/graph"
)

func sample(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	p := g.AddNode("Process", graph.Properties{"pid": "42", "name": "bench"})
	a := g.AddNode("Artifact", graph.Properties{"path": "/tmp/x"})
	if _, err := g.AddEdge(p, a, "Used", graph.Properties{"operation": "open"}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteEmitsDigraph(t *testing.T) {
	out := WriteString(sample(t), "test graph!")
	for _, want := range []string{
		"digraph test_graph_",
		`label="type:Process\nname:bench\npid:42"`,
		`shape="box"`,
		`shape="ellipse"`,
		`"n1" -> "n2"`,
		`type:Used\noperation:open`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	g := sample(t)
	h, err := ParseString(WriteString(g, "g"))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, h) {
		t.Errorf("round trip changed graph:\n%s\nvs\n%s", g, h)
	}
}

func TestRoundTripSpecialCharacters(t *testing.T) {
	g := graph.New()
	a := g.AddNode("Process", graph.Properties{
		"cmd":  `sh -c "echo hi"`,
		"path": `C:\temp\x`,
	})
	b := g.AddNode("Artifact", nil)
	if _, err := g.AddEdge(a, b, "Used", nil); err != nil {
		t.Fatal(err)
	}
	h, err := ParseString(WriteString(g, "g"))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(g, h) {
		t.Errorf("special chars round trip:\n%s\nvs\n%s", g, h)
	}
}

func TestParseEdgeBeforeNode(t *testing.T) {
	// Edge lines may precede their node declarations.
	input := `digraph g {
"a" -> "b" [label="type:E"];
"a" [label="type:X\nk:v"];
"b" [label="type:Y"];
}`
	g, err := ParseString(input)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("a").Label != "X" || g.Node("a").Props["k"] != "v" {
		t.Errorf("late node fill-in failed: %+v", g.Node("a"))
	}
	if g.Node("b").Label != "Y" || g.NumEdges() != 1 {
		t.Error("graph incomplete")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`"a" [label="x]`,       // unterminated
		`"a" label="type:X"`,   // no attribute block
		`a -> b [label="t:E"]`, // unquoted ids
	}
	for _, input := range cases {
		if _, err := ParseString("digraph g {\n" + input + "\n}"); err == nil {
			t.Errorf("accepted %q", input)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	out := WriteString(graph.New(), "")
	if !strings.Contains(out, "digraph g {") {
		t.Errorf("empty name not defaulted:\n%s", out)
	}
}
