package bench

import (
	"fmt"
	"strings"

	"provmark/internal/benchprog"
	"provmark/internal/capture/camflow"
	"provmark/internal/provmark"
)

// FailureTools are the columns of the failure matrix: the three
// baseline tools plus CamFlow with denied-check recording enabled (the
// configuration Alice would ask the CamFlow developers about).
var FailureTools = []string{"spade", "opus", "camflow", "camflow+denied"}

// ExpectedFailureMatrix encodes the Alice use-case findings,
// generalized to ten failure scenarios:
//
//   - SPADE's default audit rules skip failed calls entirely;
//   - OPUS records every attempted call with retval -1;
//   - CamFlow records nothing by default; with denied-check recording
//     it captures the permission-denied cases, but not failures that
//     abort before any hook fires (ENOENT, EEXIST) nor hooks 0.4.5
//     does not attach to (task_kill).
func ExpectedFailureMatrix() map[string]map[string]bool {
	row := func(spade, opus, cam, camDenied bool) map[string]bool {
		return map[string]bool{
			"spade": spade, "opus": opus,
			"camflow": cam, "camflow+denied": camDenied,
		}
	}
	// true = records the failed call (non-empty benchmark).
	return map[string]map[string]bool{
		"open-enoent":     row(false, true, false, false),
		"open-eacces":     row(false, true, false, true),
		"rename-eacces":   row(false, true, false, true),
		"unlink-eacces":   row(false, true, false, true),
		"link-eexist":     row(false, true, false, false),
		"truncate-eacces": row(false, true, false, true),
		"chmod-eperm":     row(false, true, false, true),
		"chown-eperm":     row(false, true, false, true),
		"setuid-eperm":    row(false, true, false, true),
		"kill-eperm":      row(false, true, false, false),
	}
}

// FailureMatrixResult is the measured matrix plus agreement summary.
type FailureMatrixResult struct {
	// Recorded[bench][tool] = the tool produced a non-empty benchmark.
	Recorded   map[string]map[string]bool
	Mismatches int
	Total      int
}

// RunFailureMatrix benchmarks every failure case under every column.
func (s *Suite) RunFailureMatrix() (*FailureMatrixResult, error) {
	deniedCfg := camflow.DefaultConfig()
	deniedCfg.RecordDenied = true
	denied := camflow.New(deniedCfg)

	expected := ExpectedFailureMatrix()
	res := &FailureMatrixResult{Recorded: map[string]map[string]bool{}}
	for _, prog := range benchprog.FailureCases() {
		res.Recorded[prog.Name] = map[string]bool{}
		for _, tool := range FailureTools {
			var (
				r   *provmark.Result
				err error
			)
			if tool == "camflow+denied" {
				r, err = provmark.NewRunner(denied, provmark.Config{}).Run(prog)
			} else {
				r, err = s.RunProgram(tool, prog)
			}
			if err != nil {
				return nil, fmt.Errorf("bench: failures %s/%s: %w", tool, prog.Name, err)
			}
			got := !r.Empty
			res.Recorded[prog.Name][tool] = got
			res.Total++
			if expected[prog.Name][tool] != got {
				res.Mismatches++
			}
		}
	}
	return res, nil
}

// RenderFailureMatrix prints the matrix with expectations.
func RenderFailureMatrix(res *FailureMatrixResult) string {
	var b strings.Builder
	b.WriteString("Failure-case matrix (extension of the Alice use case)\n")
	fmt.Fprintf(&b, "%-16s %-8s %-8s %-10s %-16s\n", "scenario", "SPADE", "OPUS", "CamFlow", "CamFlow+denied")
	expected := ExpectedFailureMatrix()
	for _, prog := range benchprog.FailureCases() {
		row := res.Recorded[prog.Name]
		cell := func(tool string) string {
			s := "-"
			if row[tool] {
				s = "recorded"
			}
			if expected[prog.Name][tool] != row[tool] {
				s += "(!)"
			}
			return s
		}
		fmt.Fprintf(&b, "%-16s %-8s %-8s %-10s %-16s\n", prog.Name,
			cell("spade"), cell("opus"), cell("camflow"), cell("camflow+denied"))
	}
	fmt.Fprintf(&b, "agreement with expectations: %d/%d\n", res.Total-res.Mismatches, res.Total)
	return b.String()
}
