package bench

import (
	"context"
	"fmt"
	"strings"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
)

// FailureTools are the columns of the failure matrix: the three
// baseline tools plus CamFlow with denied-check recording enabled (the
// configuration Alice would ask the CamFlow developers about).
var FailureTools = []string{"spade", "opus", "camflow", "camflow+denied"}

// ExpectedFailureMatrix encodes the Alice use-case findings,
// generalized to ten failure scenarios:
//
//   - SPADE's default audit rules skip failed calls entirely;
//   - OPUS records every attempted call with retval -1;
//   - CamFlow records nothing by default; with denied-check recording
//     it captures the permission-denied cases, but not failures that
//     abort before any hook fires (ENOENT, EEXIST) nor hooks 0.4.5
//     does not attach to (task_kill).
func ExpectedFailureMatrix() map[string]map[string]bool {
	row := func(spade, opus, cam, camDenied bool) map[string]bool {
		return map[string]bool{
			"spade": spade, "opus": opus,
			"camflow": cam, "camflow+denied": camDenied,
		}
	}
	// true = records the failed call (non-empty benchmark).
	return map[string]map[string]bool{
		"open-enoent":     row(false, true, false, false),
		"open-eacces":     row(false, true, false, true),
		"rename-eacces":   row(false, true, false, true),
		"unlink-eacces":   row(false, true, false, true),
		"link-eexist":     row(false, true, false, false),
		"truncate-eacces": row(false, true, false, true),
		"chmod-eperm":     row(false, true, false, true),
		"chown-eperm":     row(false, true, false, true),
		"setuid-eperm":    row(false, true, false, true),
		"kill-eperm":      row(false, true, false, false),
	}
}

// FailureMatrixResult is the measured matrix plus agreement summary.
type FailureMatrixResult struct {
	// Recorded[bench][tool] = the tool produced a non-empty benchmark.
	Recorded   map[string]map[string]bool
	Mismatches int
	Total      int
}

// RunFailureMatrix benchmarks every failure case under every column in
// one matrix run: the three suite baselines plus a registry-opened
// CamFlow with denied-check recording. Because two columns share the
// recorder name "camflow", cells map back to their column through the
// matrix grid index rather than the tool name.
func (s *Suite) RunFailureMatrix(ctx context.Context) (*FailureMatrixResult, error) {
	recs, err := s.suiteRecorders([]string{"spade", "opus", "camflow"})
	if err != nil {
		return nil, err
	}
	denied, err := capture.Open("camflow", capture.Options{
		Params: map[string]string{"record_denied": "true"},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: failures: %w", err)
	}
	recs = append(recs, denied)

	progs := benchprog.FailureCases()
	cells, err := s.matrix(ctx, recs, progs)
	if err != nil {
		return nil, fmt.Errorf("bench: failures: %w", err)
	}
	expected := ExpectedFailureMatrix()
	res := &FailureMatrixResult{Recorded: map[string]map[string]bool{}}
	for _, cell := range cells {
		tool := FailureTools[cell.Index/len(progs)]
		if res.Recorded[cell.Benchmark] == nil {
			res.Recorded[cell.Benchmark] = map[string]bool{}
		}
		got := !cell.Result.Empty
		res.Recorded[cell.Benchmark][tool] = got
		res.Total++
		if expected[cell.Benchmark][tool] != got {
			res.Mismatches++
		}
	}
	return res, nil
}

// RenderFailureMatrix prints the matrix with expectations.
func RenderFailureMatrix(res *FailureMatrixResult) string {
	var b strings.Builder
	b.WriteString("Failure-case matrix (extension of the Alice use case)\n")
	fmt.Fprintf(&b, "%-16s %-8s %-8s %-10s %-16s\n", "scenario", "SPADE", "OPUS", "CamFlow", "CamFlow+denied")
	expected := ExpectedFailureMatrix()
	for _, prog := range benchprog.FailureCases() {
		row := res.Recorded[prog.Name]
		cell := func(tool string) string {
			s := "-"
			if row[tool] {
				s = "recorded"
			}
			if expected[prog.Name][tool] != row[tool] {
				s += "(!)"
			}
			return s
		}
		fmt.Fprintf(&b, "%-16s %-8s %-8s %-10s %-16s\n", prog.Name,
			cell("spade"), cell("opus"), cell("camflow"), cell("camflow+denied"))
	}
	fmt.Fprintf(&b, "agreement with expectations: %d/%d\n", res.Total-res.Mismatches, res.Total)
	return b.String()
}
