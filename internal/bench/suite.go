package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/graph"
	"provmark/internal/provmark"

	// The suite resolves its tools through the capture registry.
	_ "provmark/internal/capture/camflow"
	_ "provmark/internal/capture/opus"
	_ "provmark/internal/capture/spade"
)

// Suite bundles the registry-resolved recorders under their baseline
// configurations and runs the paper's experiments against them. Every
// multi-cell experiment executes through the provmark.Matrix runner,
// with per-stage timings sourced from the pipeline's observer hooks.
type Suite struct {
	recorders map[string]capture.Recorder
	// Workers bounds the matrix worker pool for multi-cell experiments.
	// The default of 1 keeps runs sequential so per-stage timings are
	// undistorted by CPU contention; matrix-style validation runs can
	// raise it.
	Workers int
	// classifier is the suite-lifetime similarity classification
	// engine, shared across every experiment the suite runs so
	// re-classification of retained graphs answers from its verdict
	// cache (the cache is size-bounded, so suite lifetime is safe).
	classifier *provmark.Classifier
}

// NewSuite builds the baseline suite. fast substitutes cheap storage
// costs for the Neo4j simulation so unit tests stay quick; experiments
// and benchmarks use fast=false to reproduce the timing shapes of
// Figures 5–10.
func NewSuite(fast bool) *Suite {
	s := &Suite{
		recorders:  map[string]capture.Recorder{},
		Workers:    1,
		classifier: provmark.NewClassifier(),
	}
	opts := capture.Options{Fast: fast}
	// spn: SPADE with Neo4j storage, the paper CLI's second SPADE
	// profile. Not part of the Table 2 tool columns.
	for _, tool := range []string{"spade", "opus", "camflow", "spn"} {
		rec, err := capture.Open(tool, opts)
		if err != nil {
			panic(fmt.Sprintf("bench: baseline backend missing: %v", err))
		}
		s.recorders[tool] = rec
	}
	return s
}

// Recorder returns the named tool.
func (s *Suite) Recorder(tool string) (capture.Recorder, error) {
	rec, ok := s.recorders[tool]
	if !ok {
		return nil, fmt.Errorf("bench: unknown tool %q", tool)
	}
	return rec, nil
}

// matrix fans progs out across recorders on the suite's worker pool
// and collects every cell, failing on the first cell error.
func (s *Suite) matrix(ctx context.Context, recs []capture.Recorder, progs []benchprog.Program, opts ...provmark.Option) ([]provmark.MatrixResult, error) {
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	m := provmark.Matrix{
		Recorders:  recs,
		Benchmarks: progs,
		Workers:    workers,
		Pipeline:   append([]provmark.Option{provmark.WithClassifier(s.classifier)}, opts...),
	}
	cells, err := m.Run(ctx)
	if err != nil {
		return nil, fmt.Errorf("bench: matrix: %w", err)
	}
	for _, cell := range cells {
		if cell.Err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", cell.Tool, cell.Benchmark, cell.Err)
		}
	}
	return cells, nil
}

// suiteRecorders resolves tool names against the suite.
func (s *Suite) suiteRecorders(tools []string) ([]capture.Recorder, error) {
	out := make([]capture.Recorder, 0, len(tools))
	for _, tool := range tools {
		rec, err := s.Recorder(tool)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Run benchmarks one named syscall under one tool.
func (s *Suite) Run(ctx context.Context, tool, benchName string) (*provmark.Result, error) {
	rec, err := s.Recorder(tool)
	if err != nil {
		return nil, err
	}
	prog, ok := benchprog.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	return provmark.New(rec, provmark.WithClassifier(s.classifier)).RunContext(ctx, prog)
}

// RunProgram benchmarks an arbitrary program (scalability, failure
// cases) under one tool.
func (s *Suite) RunProgram(ctx context.Context, tool string, prog benchprog.Program) (*provmark.Result, error) {
	rec, err := s.Recorder(tool)
	if err != nil {
		return nil, err
	}
	return provmark.New(rec, provmark.WithClassifier(s.classifier)).RunContext(ctx, prog)
}

// Table2Row is the outcome of one syscall across all tools.
type Table2Row struct {
	Group    int
	Syscall  string
	Actual   map[string]Cell // note copied from expectation when status agrees
	Expected map[string]Cell
	Match    map[string]bool
}

// Table2Result is the full validation matrix plus agreement summary.
type Table2Result struct {
	Rows       []Table2Row
	Mismatches int
	Total      int
}

// RunTable2 reproduces Table 2: every benchmark under every tool —
// one matrix run over the full (tools × syscalls) grid — compared
// cell-by-cell against the paper's published matrix.
func (s *Suite) RunTable2(ctx context.Context) (*Table2Result, error) {
	recs, err := s.suiteRecorders(Tools)
	if err != nil {
		return nil, err
	}
	progs := namedPrograms()
	cells, err := s.matrix(ctx, recs, progs)
	if err != nil {
		return nil, fmt.Errorf("bench: table2: %w", err)
	}
	actual := map[string]map[string]*provmark.Result{}
	for _, cell := range cells {
		if actual[cell.Benchmark] == nil {
			actual[cell.Benchmark] = map[string]*provmark.Result{}
		}
		actual[cell.Benchmark][cell.Tool] = cell.Result
	}
	expected := ExpectedTable2()
	res := &Table2Result{}
	for _, prog := range progs {
		name := prog.Name
		row := Table2Row{
			Group:    prog.Group,
			Syscall:  name,
			Actual:   map[string]Cell{},
			Expected: expected[name],
			Match:    map[string]bool{},
		}
		for _, tool := range Tools {
			r := actual[name][tool]
			cell := Cell{OK: !r.Empty}
			if exp, ok := expected[name][tool]; ok && exp.OK == cell.OK {
				cell.Note = exp.Note
			}
			row.Actual[tool] = cell
			match := expected[name][tool].OK == cell.OK
			row.Match[tool] = match
			res.Total++
			if !match {
				res.Mismatches++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// namedPrograms lists the Table 1 benchmark programs in name order.
func namedPrograms() []benchprog.Program {
	names := benchprog.Names()
	out := make([]benchprog.Program, 0, len(names))
	for _, name := range names {
		prog, _ := benchprog.ByName(name)
		out = append(out, prog)
	}
	return out
}

// Table3Cell summarizes one example benchmark graph for Table 3.
type Table3Cell struct {
	Empty bool
	Stats graph.Stats
}

// RunTable3 reproduces Table 3: the example benchmark results for
// open, read, write, dup, setuid and setresuid across the three tools,
// reported as graph shapes (node/edge counts).
func (s *Suite) RunTable3(ctx context.Context) (map[string]map[string]Table3Cell, error) {
	syscalls := []string{"open", "read", "write", "dup", "setuid", "setresuid"}
	recs, err := s.suiteRecorders(Tools)
	if err != nil {
		return nil, err
	}
	progs := make([]benchprog.Program, 0, len(syscalls))
	for _, sc := range syscalls {
		prog, ok := benchprog.ByName(sc)
		if !ok {
			return nil, fmt.Errorf("bench: table3: unknown benchmark %q", sc)
		}
		progs = append(progs, prog)
	}
	cells, err := s.matrix(ctx, recs, progs)
	if err != nil {
		return nil, fmt.Errorf("bench: table3: %w", err)
	}
	out := make(map[string]map[string]Table3Cell, len(syscalls))
	for _, c := range cells {
		if out[c.Benchmark] == nil {
			out[c.Benchmark] = map[string]Table3Cell{}
		}
		cell := Table3Cell{Empty: c.Result.Empty}
		if !c.Result.Empty {
			cell.Stats = graph.Summarize(c.Result.Target)
		}
		out[c.Benchmark][c.Tool] = cell
	}
	return out, nil
}

// Fig1Result holds the rename benchmark graphs of Figure 1.
type Fig1Result map[string]*provmark.Result

// RunFig1 reproduces Figure 1: how the three tools represent a rename
// — a one-row matrix across all tool columns.
func (s *Suite) RunFig1(ctx context.Context) (Fig1Result, error) {
	recs, err := s.suiteRecorders(Tools)
	if err != nil {
		return nil, err
	}
	prog, _ := benchprog.ByName("rename")
	cells, err := s.matrix(ctx, recs, []benchprog.Program{prog})
	if err != nil {
		return nil, fmt.Errorf("bench: fig1: %w", err)
	}
	out := Fig1Result{}
	for _, c := range cells {
		out[c.Tool] = c.Result
	}
	return out, nil
}

// TimingRow is one bar of Figures 5–10.
type TimingRow struct {
	Label string
	Times provmark.StageTimes
}

// TimingSyscalls is the representative set of Figures 5–7.
var TimingSyscalls = []string{"open", "execve", "fork", "setuid", "rename"}

// RunTiming reproduces Figures 5–7: per-stage processing times for the
// representative syscalls under one tool. Timings come from the
// pipeline's stage-observer hooks, not the result structs.
func (s *Suite) RunTiming(ctx context.Context, tool string) ([]TimingRow, error) {
	progs := make([]benchprog.Program, 0, len(TimingSyscalls))
	for _, sc := range TimingSyscalls {
		prog, ok := benchprog.ByName(sc)
		if !ok {
			return nil, fmt.Errorf("bench: timing: unknown benchmark %q", sc)
		}
		progs = append(progs, prog)
	}
	rows, err := s.observedTiming(ctx, tool, progs)
	if err != nil {
		return nil, fmt.Errorf("bench: timing: %w", err)
	}
	return rows, nil
}

// Scales is the Figures 8–10 parameter sweep.
var Scales = []int{1, 2, 4, 8}

// RunScalability reproduces Figures 8–10: per-stage times as the target
// action (create+unlink) is repeated 1, 2, 4 and 8 times.
func (s *Suite) RunScalability(ctx context.Context, tool string) ([]TimingRow, error) {
	progs := make([]benchprog.Program, 0, len(Scales))
	for _, n := range Scales {
		progs = append(progs, benchprog.ScaleProgram(n))
	}
	rows, err := s.observedTiming(ctx, tool, progs)
	if err != nil {
		return nil, fmt.Errorf("bench: scalability: %w", err)
	}
	return rows, nil
}

// observedTiming runs one tool over progs through the matrix runner
// and assembles per-stage times from StageObserver events, one row per
// program in input order.
func (s *Suite) observedTiming(ctx context.Context, tool string, progs []benchprog.Program) ([]TimingRow, error) {
	rec, err := s.Recorder(tool)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	times := map[string]*provmark.StageTimes{}
	observer := func(ev provmark.StageEvent) {
		if ev.Err != nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		t := times[ev.Benchmark]
		if t == nil {
			t = &provmark.StageTimes{}
			times[ev.Benchmark] = t
		}
		switch ev.Stage {
		case provmark.StageRecording:
			t.Recording = ev.Duration
		case provmark.StageTransformation:
			t.Transformation = ev.Duration
		case provmark.StageGeneralization:
			t.Generalization = ev.Duration
		case provmark.StageComparison:
			t.Comparison = ev.Duration
		}
	}
	if _, err := s.matrix(ctx, []capture.Recorder{rec}, progs, provmark.WithStageObserver(observer)); err != nil {
		return nil, err
	}
	out := make([]TimingRow, 0, len(progs))
	for _, prog := range progs {
		t := times[prog.Name]
		if t == nil {
			return nil, fmt.Errorf("no observed timings for %s/%s", tool, prog.Name)
		}
		out = append(out, TimingRow{Label: prog.Name, Times: *t})
	}
	return out, nil
}

// Table1Groups reproduces Table 1: the benchmarked syscall families by
// group.
func Table1Groups() map[int][]string {
	out := map[int][]string{}
	for _, name := range benchprog.Names() {
		prog, _ := benchprog.ByName(name)
		out[prog.Group] = append(out[prog.Group], name)
	}
	for g := range out {
		sort.Strings(out[g])
	}
	return out
}

// GroupTitles names the Table 1 groups.
var GroupTitles = map[int]string{
	1: "Files",
	2: "Processes",
	3: "Permissions",
	4: "Pipes",
}
