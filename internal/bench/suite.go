package bench

import (
	"fmt"
	"sort"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
	"provmark/internal/capture/camflow"
	"provmark/internal/capture/opus"
	"provmark/internal/capture/spade"
	"provmark/internal/graph"
	"provmark/internal/neo4jsim"
	"provmark/internal/provmark"
)

// Suite bundles the three recorders under their baseline configurations
// and runs the paper's experiments against them.
type Suite struct {
	recorders map[string]capture.Recorder
}

// NewSuite builds the baseline suite. fast substitutes cheap storage
// costs for the Neo4j simulation so unit tests stay quick; experiments
// and benchmarks use fast=false to reproduce the timing shapes of
// Figures 5–10.
func NewSuite(fast bool) *Suite {
	opusCfg := opus.DefaultConfig()
	dbOpts := neo4jsim.Options{}
	if fast {
		dbOpts = neo4jsim.Options{WarmupPages: 1, ScanRoundsPerRow: 1}
		opusCfg.DB = dbOpts
	}
	return &Suite{recorders: map[string]capture.Recorder{
		"spade":   spade.New(spade.DefaultConfig()),
		"opus":    opus.New(opusCfg),
		"camflow": camflow.New(camflow.DefaultConfig()),
		// spn: SPADE with Neo4j storage, the paper CLI's second SPADE
		// profile. Not part of the Table 2 tool columns.
		"spn": spade.New(spade.DefaultConfig().WithNeo4jStorage(dbOpts)),
	}}
}

// Recorder returns the named tool.
func (s *Suite) Recorder(tool string) (capture.Recorder, error) {
	rec, ok := s.recorders[tool]
	if !ok {
		return nil, fmt.Errorf("bench: unknown tool %q", tool)
	}
	return rec, nil
}

// Run benchmarks one named syscall under one tool.
func (s *Suite) Run(tool, benchName string) (*provmark.Result, error) {
	rec, err := s.Recorder(tool)
	if err != nil {
		return nil, err
	}
	prog, ok := benchprog.ByName(benchName)
	if !ok {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	return provmark.NewRunner(rec, provmark.Config{}).Run(prog)
}

// RunProgram benchmarks an arbitrary program (scalability, failure
// cases) under one tool.
func (s *Suite) RunProgram(tool string, prog benchprog.Program) (*provmark.Result, error) {
	rec, err := s.Recorder(tool)
	if err != nil {
		return nil, err
	}
	return provmark.NewRunner(rec, provmark.Config{}).Run(prog)
}

// Table2Row is the outcome of one syscall across all tools.
type Table2Row struct {
	Group    int
	Syscall  string
	Actual   map[string]Cell // note copied from expectation when status agrees
	Expected map[string]Cell
	Match    map[string]bool
}

// Table2Result is the full validation matrix plus agreement summary.
type Table2Result struct {
	Rows       []Table2Row
	Mismatches int
	Total      int
}

// RunTable2 reproduces Table 2: every benchmark under every tool,
// compared cell-by-cell against the paper's published matrix.
func (s *Suite) RunTable2() (*Table2Result, error) {
	expected := ExpectedTable2()
	res := &Table2Result{}
	for _, name := range benchprog.Names() {
		prog, _ := benchprog.ByName(name)
		row := Table2Row{
			Group:    prog.Group,
			Syscall:  name,
			Actual:   map[string]Cell{},
			Expected: expected[name],
			Match:    map[string]bool{},
		}
		for _, tool := range Tools {
			r, err := s.Run(tool, name)
			if err != nil {
				return nil, fmt.Errorf("bench: table2 %s/%s: %w", tool, name, err)
			}
			cell := Cell{OK: !r.Empty}
			if exp, ok := expected[name][tool]; ok && exp.OK == cell.OK {
				cell.Note = exp.Note
			}
			row.Actual[tool] = cell
			match := expected[name][tool].OK == cell.OK
			row.Match[tool] = match
			res.Total++
			if !match {
				res.Mismatches++
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Table3Cell summarizes one example benchmark graph for Table 3.
type Table3Cell struct {
	Empty bool
	Stats graph.Stats
}

// RunTable3 reproduces Table 3: the example benchmark results for
// open, read, write, dup, setuid and setresuid across the three tools,
// reported as graph shapes (node/edge counts).
func (s *Suite) RunTable3() (map[string]map[string]Table3Cell, error) {
	syscalls := []string{"open", "read", "write", "dup", "setuid", "setresuid"}
	out := make(map[string]map[string]Table3Cell, len(syscalls))
	for _, sc := range syscalls {
		out[sc] = map[string]Table3Cell{}
		for _, tool := range Tools {
			r, err := s.Run(tool, sc)
			if err != nil {
				return nil, fmt.Errorf("bench: table3 %s/%s: %w", tool, sc, err)
			}
			cell := Table3Cell{Empty: r.Empty}
			if !r.Empty {
				cell.Stats = graph.Summarize(r.Target)
			}
			out[sc][tool] = cell
		}
	}
	return out, nil
}

// Fig1Result holds the rename benchmark graphs of Figure 1.
type Fig1Result map[string]*provmark.Result

// RunFig1 reproduces Figure 1: how the three tools represent a rename.
func (s *Suite) RunFig1() (Fig1Result, error) {
	out := Fig1Result{}
	for _, tool := range Tools {
		r, err := s.Run(tool, "rename")
		if err != nil {
			return nil, fmt.Errorf("bench: fig1 %s: %w", tool, err)
		}
		out[tool] = r
	}
	return out, nil
}

// TimingRow is one bar of Figures 5–10.
type TimingRow struct {
	Label string
	Times provmark.StageTimes
}

// TimingSyscalls is the representative set of Figures 5–7.
var TimingSyscalls = []string{"open", "execve", "fork", "setuid", "rename"}

// RunTiming reproduces Figures 5–7: per-stage processing times for the
// representative syscalls under one tool.
func (s *Suite) RunTiming(tool string) ([]TimingRow, error) {
	out := make([]TimingRow, 0, len(TimingSyscalls))
	for _, sc := range TimingSyscalls {
		r, err := s.Run(tool, sc)
		if err != nil {
			return nil, fmt.Errorf("bench: timing %s/%s: %w", tool, sc, err)
		}
		out = append(out, TimingRow{Label: sc, Times: r.Times})
	}
	return out, nil
}

// Scales is the Figures 8–10 parameter sweep.
var Scales = []int{1, 2, 4, 8}

// RunScalability reproduces Figures 8–10: per-stage times as the target
// action (create+unlink) is repeated 1, 2, 4 and 8 times.
func (s *Suite) RunScalability(tool string) ([]TimingRow, error) {
	out := make([]TimingRow, 0, len(Scales))
	for _, n := range Scales {
		r, err := s.RunProgram(tool, benchprog.ScaleProgram(n))
		if err != nil {
			return nil, fmt.Errorf("bench: scalability %s/scale%d: %w", tool, n, err)
		}
		out = append(out, TimingRow{Label: fmt.Sprintf("scale%d", n), Times: r.Times})
	}
	return out, nil
}

// Table1Groups reproduces Table 1: the benchmarked syscall families by
// group.
func Table1Groups() map[int][]string {
	out := map[int][]string{}
	for _, name := range benchprog.Names() {
		prog, _ := benchprog.ByName(name)
		out[prog.Group] = append(out[prog.Group], name)
	}
	for g := range out {
		sort.Strings(out[g])
	}
	return out
}

// GroupTitles names the Table 1 groups.
var GroupTitles = map[int]string{
	1: "Files",
	2: "Processes",
	3: "Permissions",
	4: "Pipes",
}
