package bench

import (
	"context"
	"fmt"
	"strings"

	"provmark/internal/benchprog"
	"provmark/internal/capture"
)

// This file evaluates the configuration the paper mentions but never
// benchmarks (Section 2): SPADE consuming CamFlow's kernel-level
// events instead of Linux Audit. The expectation matrix is derived
// from first principles — spc sees exactly what CamFlow's LSM hooks
// relay, rendered in SPADE's vocabulary — and the experiment validates
// it across all 44 benchmarks.

// ExpectedSpcColumn is the predicted Table 2 column for the spc
// profile: CamFlow's hook coverage with two differences. First, spc
// has no activity versioning, so pure credential no-ops (setresgid to
// the current value) still produce a fresh process vertex — SPADE's
// vocabulary records the operation, not the state change. Second, the
// vfork child is *connected* (task_create fires at creation time), so
// the audit reporter's DV note disappears.
func ExpectedSpcColumn() map[string]Cell {
	ok := Cell{OK: true}
	eNR := Cell{Note: NoteNR}
	eLP := Cell{Note: NoteLP}
	return map[string]Cell{
		"close": eLP, "creat": ok,
		"dup": eNR, "dup2": eNR, "dup3": eNR,
		"link": ok, "linkat": ok,
		"symlink": eNR, "symlinkat": eNR,
		"mknod": eNR, "mknodat": eNR,
		"open": ok, "openat": ok,
		"read": ok, "pread": ok,
		"rename": ok, "renameat": ok,
		"truncate": ok, "ftruncate": ok,
		"unlink": ok, "unlinkat": ok,
		"write": ok, "pwrite": ok,
		"clone": ok, "execve": ok, "exit": eLP, "fork": ok, "kill": eLP,
		"vfork": ok, // connected: no DV under the LSM reporter
		"chmod": ok, "fchmod": ok, "fchmodat": ok,
		"chown": ok, "fchown": ok, "fchownat": ok,
		"setgid": ok, "setregid": ok, "setresgid": ok,
		"setuid": ok, "setreuid": ok, "setresuid": ok,
		"pipe": eNR, "pipe2": eNR, "tee": ok,
	}
}

// SpcResult is the measured spc column with agreement tracking.
type SpcResult struct {
	Cells      map[string]Cell
	Mismatches int
	Total      int
}

// RunSpcColumn benchmarks every syscall under the spc configuration.
func (s *Suite) RunSpcColumn(ctx context.Context) (*SpcResult, error) {
	rec, err := capture.Open("spade", capture.Options{
		Params: map[string]string{"reporter": "camflow"},
	})
	if err != nil {
		return nil, fmt.Errorf("bench: spc: %w", err)
	}
	cells, err := s.matrix(ctx, []capture.Recorder{rec}, namedPrograms())
	if err != nil {
		return nil, fmt.Errorf("bench: spc: %w", err)
	}
	expected := ExpectedSpcColumn()
	res := &SpcResult{Cells: map[string]Cell{}}
	for _, c := range cells {
		name := c.Benchmark
		cell := Cell{OK: !c.Result.Empty}
		if exp := expected[name]; exp.OK == cell.OK {
			cell.Note = exp.Note
		}
		res.Cells[name] = cell
		res.Total++
		if expected[name].OK != cell.OK {
			res.Mismatches++
		}
	}
	return res, nil
}

// RenderSpcColumn prints the spc column next to the baseline SPADE and
// CamFlow columns from the paper, highlighting what the reporter swap
// gains and loses.
func RenderSpcColumn(res *SpcResult) string {
	var b strings.Builder
	b.WriteString("Extended Table 2 column: SPADE with the CamFlow reporter (spc)\n")
	b.WriteString("(a configuration the paper mentions but does not evaluate)\n")
	expected := ExpectedTable2()
	fmt.Fprintf(&b, "%-10s | %-12s %-12s | %-12s | note\n", "syscall", "SPADE/audit", "CamFlow", "SPADE/camflow")
	for _, name := range benchprog.Names() {
		note := ""
		audit := expected[name]["spade"]
		cam := expected[name]["camflow"]
		spc := res.Cells[name]
		switch {
		case spc.OK && !audit.OK:
			note = "gained vs audit reporter"
		case !spc.OK && audit.OK:
			note = "lost vs audit reporter"
		case name == "vfork":
			note = "child connected (no DV)"
		}
		fmt.Fprintf(&b, "%-10s | %-12s %-12s | %-12s | %s\n", name, audit, cam, spc, note)
	}
	fmt.Fprintf(&b, "agreement with derived expectations: %d/%d\n", res.Total-res.Mismatches, res.Total)
	return b.String()
}
