package bench

import (
	"context"
	"testing"

	"provmark/internal/benchprog"
)

// TestSequenceOfTwentySyscalls verifies the Section 5.2 claim that
// ProvMark "can currently handle short sequences of 10-20 syscalls
// without problems": a scale10 target is 20 syscalls (10 creats + 10
// unlinks), and every tool must produce a clean, correctly-sized
// benchmark for it.
func TestSequenceOfTwentySyscalls(t *testing.T) {
	s := NewSuite(true)
	prog := benchprog.ScaleProgram(10)
	for _, tool := range Tools {
		res, err := s.RunProgram(context.Background(), tool, prog)
		if err != nil {
			t.Fatalf("%s: %v", tool, err)
		}
		if res.Empty {
			t.Errorf("%s: scale10 empty (%s)", tool, res.Reason)
			continue
		}
		// Each create+unlink pair must contribute structure: at least
		// one node per created file.
		if res.Target.NumNodes() < 10 {
			t.Errorf("%s: scale10 target has only %d nodes", tool, res.Target.NumNodes())
		}
	}
}

// TestSequenceResultGrowsLinearly: the benchmark graph for scaleN grows
// proportionally to N — no events are silently dropped or merged under
// baseline configurations.
func TestSequenceResultGrowsLinearly(t *testing.T) {
	s := NewSuite(true)
	sizes := map[int]int{}
	for _, n := range []int{2, 4, 8} {
		res, err := s.RunProgram(context.Background(), "spade", benchprog.ScaleProgram(n))
		if err != nil {
			t.Fatal(err)
		}
		if res.Empty {
			t.Fatalf("scale%d empty", n)
		}
		sizes[n] = res.Target.Size()
	}
	if sizes[4] <= sizes[2] || sizes[8] <= sizes[4] {
		t.Errorf("sizes not increasing: %v", sizes)
	}
	// Doubling the target should roughly double the result.
	if sizes[8] < sizes[4]*2-4 || sizes[8] > sizes[4]*2+4 {
		t.Errorf("scale8 (%d) not ~2x scale4 (%d)", sizes[8], sizes[4])
	}
}
