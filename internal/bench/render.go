package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"provmark/internal/graph"
)

// RenderTable1 prints the benchmarked-syscall groups.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1. Benchmarked syscalls\n")
	groups := Table1Groups()
	for g := 1; g <= 4; g++ {
		fmt.Fprintf(&b, "%d  %-11s %s\n", g, GroupTitles[g], strings.Join(groups[g], ", "))
	}
	return b.String()
}

// RenderTable2 prints the validation matrix with per-cell agreement
// against the paper.
func RenderTable2(t *Table2Result) string {
	var b strings.Builder
	b.WriteString("Table 2. Summary of validation results (paper vs reproduction)\n")
	fmt.Fprintf(&b, "%-5s %-10s | %-12s %-12s %-12s | agree\n", "Group", "syscall", "SPADE", "OPUS", "CamFlow")
	for _, row := range t.Rows {
		agree := "yes"
		for _, tool := range Tools {
			if !row.Match[tool] {
				agree = "NO"
			}
		}
		fmt.Fprintf(&b, "%-5d %-10s | %-12s %-12s %-12s | %s\n",
			row.Group, row.Syscall,
			row.Actual["spade"], row.Actual["opus"], row.Actual["camflow"], agree)
	}
	fmt.Fprintf(&b, "agreement: %d/%d cells match the paper\n", t.Total-t.Mismatches, t.Total)
	return b.String()
}

// RenderTable3 prints the example benchmark graph shapes.
func RenderTable3(t map[string]map[string]Table3Cell) string {
	var b strings.Builder
	b.WriteString("Table 3. Example benchmark results (graph shapes)\n")
	syscalls := []string{"open", "read", "write", "dup", "setuid", "setresuid"}
	fmt.Fprintf(&b, "%-8s", "")
	for _, sc := range syscalls {
		fmt.Fprintf(&b, " %-12s", sc)
	}
	b.WriteString("\n")
	for _, tool := range Tools {
		fmt.Fprintf(&b, "%-8s", tool)
		for _, sc := range syscalls {
			cell := t[sc][tool]
			if cell.Empty {
				fmt.Fprintf(&b, " %-12s", "Empty")
			} else {
				fmt.Fprintf(&b, " %-12s", cell.Stats)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFig1 prints the rename graphs of Figure 1.
func RenderFig1(f Fig1Result) string {
	var b strings.Builder
	b.WriteString("Figure 1. A rename system call as recorded by three recorders\n")
	for _, tool := range Tools {
		r := f[tool]
		if r.Empty {
			fmt.Fprintf(&b, "-- %s: empty (%s)\n", tool, r.Reason)
			continue
		}
		fmt.Fprintf(&b, "-- %s (%s):\n%s", tool, graph.Summarize(r.Target), r.Target.String())
	}
	return b.String()
}

// RenderTiming prints one of Figures 5–10 as an ASCII bar chart of the
// transformation / generalization / comparison stages.
func RenderTiming(title string, rows []TimingRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	var maxTotal time.Duration
	for _, r := range rows {
		total := r.Times.Transformation + r.Times.Generalization + r.Times.Comparison
		if total > maxTotal {
			maxTotal = total
		}
	}
	if maxTotal == 0 {
		maxTotal = time.Nanosecond
	}
	const width = 48
	for _, r := range rows {
		tr := r.Times.Transformation
		ge := r.Times.Generalization
		co := r.Times.Comparison
		bar := strings.Repeat("T", scaleBar(tr, maxTotal, width)) +
			strings.Repeat("G", scaleBar(ge, maxTotal, width)) +
			strings.Repeat("C", scaleBar(co, maxTotal, width))
		fmt.Fprintf(&b, "%-8s |%-*s| T=%-10v G=%-10v C=%-10v\n",
			r.Label, width, bar, tr.Round(time.Microsecond),
			ge.Round(time.Microsecond), co.Round(time.Microsecond))
	}
	b.WriteString("(T=transformation, G=generalization, C=comparison)\n")
	return b.String()
}

func scaleBar(d, max time.Duration, width int) int {
	n := int(int64(d) * int64(width) / int64(max))
	if n < 1 && d > 0 {
		n = 1
	}
	return n
}

// ModuleSize is one Table 4 row: lines of code of a recorder's
// recording and transformation modules.
type ModuleSize struct {
	Tool           string
	Format         string
	Recording      int
	Transformation int
}

// Table4ModuleSizes reproduces Table 4 by counting the source lines of
// this repository's per-tool recording and transformation modules. root
// is the repository root; the paper's numbers are Python, ours are Go.
func Table4ModuleSizes(root string) ([]ModuleSize, error) {
	entries := []struct {
		tool, format, recDir, xfmDir string
	}{
		{"spade", "DOT", "internal/capture/spade", "internal/dot"},
		{"opus", "Neo4j", "internal/capture/opus", "internal/neo4jsim"},
		{"camflow", "PROV-JSON", "internal/capture/camflow", "internal/provjson"},
	}
	var out []ModuleSize
	for _, e := range entries {
		rec, err := countGoLines(filepath.Join(root, e.recDir))
		if err != nil {
			return nil, err
		}
		xfm, err := countGoLines(filepath.Join(root, e.xfmDir))
		if err != nil {
			return nil, err
		}
		out = append(out, ModuleSize{Tool: e.tool, Format: e.format, Recording: rec, Transformation: xfm})
	}
	return out, nil
}

func countGoLines(dir string) (int, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("bench: table4: %w", err)
	}
	names := make([]string, 0, len(files))
	for _, f := range files {
		name := f.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	total := 0
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, fmt.Errorf("bench: table4: %w", err)
		}
		total += strings.Count(string(data), "\n")
	}
	return total, nil
}

// RenderTable4 prints the module-size table.
func RenderTable4(sizes []ModuleSize) string {
	var b strings.Builder
	b.WriteString("Table 4. Module sizes (Go lines of code)\n")
	fmt.Fprintf(&b, "%-16s %-10s %-10s %-10s\n", "Module", "SPADE", "OPUS", "CamFlow")
	byTool := map[string]ModuleSize{}
	for _, s := range sizes {
		byTool[s.Tool] = s
	}
	fmt.Fprintf(&b, "%-16s %-10s %-10s %-10s\n", "(Format)",
		"("+byTool["spade"].Format+")", "("+byTool["opus"].Format+")", "("+byTool["camflow"].Format+")")
	fmt.Fprintf(&b, "%-16s %-10d %-10d %-10d\n", "Recording",
		byTool["spade"].Recording, byTool["opus"].Recording, byTool["camflow"].Recording)
	fmt.Fprintf(&b, "%-16s %-10d %-10d %-10d\n", "Transformation",
		byTool["spade"].Transformation, byTool["opus"].Transformation, byTool["camflow"].Transformation)
	return b.String()
}
