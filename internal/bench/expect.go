// Package bench regenerates every table and figure of the paper's
// evaluation (Section 4 demonstration and Section 5 system evaluation)
// on top of the pipeline and the three simulated recorders.
package bench

// Note annotates a Table 2 cell, matching the paper's legend.
type Note string

// Table 2 notes.
const (
	NoteNone Note = ""
	// NoteNR: behaviour not recorded by the default configuration.
	NoteNR Note = "NR"
	// NoteSC: only state changes monitored.
	NoteSC Note = "SC"
	// NoteLP: limitation in ProvMark.
	NoteLP Note = "LP"
	// NoteDV: disconnected vforked process.
	NoteDV Note = "DV"
)

// Cell is one entry of the validation matrix.
type Cell struct {
	OK   bool // true = "ok", false = "empty"
	Note Note
}

func (c Cell) String() string {
	s := "empty"
	if c.OK {
		s = "ok"
	}
	if c.Note != NoteNone {
		s += " (" + string(c.Note) + ")"
	}
	return s
}

// Tools lists the benchmarked tools in the paper's column order.
var Tools = []string{"spade", "opus", "camflow"}

// ExpectedTable2 is the paper's Table 2, cell for cell: for every
// benchmarked syscall, the expected ok/empty status and note under each
// tool's baseline configuration.
func ExpectedTable2() map[string]map[string]Cell {
	ok := Cell{OK: true}
	okDV := Cell{OK: true, Note: NoteDV}
	okSC := Cell{OK: true, Note: NoteSC}
	eNR := Cell{Note: NoteNR}
	eSC := Cell{Note: NoteSC}
	eLP := Cell{Note: NoteLP}
	row := func(s, o, c Cell) map[string]Cell {
		return map[string]Cell{"spade": s, "opus": o, "camflow": c}
	}
	return map[string]map[string]Cell{
		// Group 1: files.
		"close":     row(ok, ok, eLP),
		"creat":     row(ok, ok, ok),
		"dup":       row(eSC, ok, eNR),
		"dup2":      row(eSC, ok, eNR),
		"dup3":      row(eSC, ok, eNR),
		"link":      row(ok, ok, ok),
		"linkat":    row(ok, ok, ok),
		"symlink":   row(ok, ok, eNR),
		"symlinkat": row(ok, ok, eNR),
		"mknod":     row(eNR, ok, eNR),
		"mknodat":   row(eNR, eNR, eNR),
		"open":      row(ok, ok, ok),
		"openat":    row(ok, ok, ok),
		"read":      row(ok, eNR, ok),
		"pread":     row(ok, eNR, ok),
		"rename":    row(ok, ok, ok),
		"renameat":  row(ok, ok, ok),
		"truncate":  row(ok, ok, ok),
		"ftruncate": row(ok, ok, ok),
		"unlink":    row(ok, ok, ok),
		"unlinkat":  row(ok, ok, ok),
		"write":     row(ok, eNR, ok),
		"pwrite":    row(ok, eNR, ok),
		// Group 2: processes.
		"clone":  row(ok, eNR, ok),
		"execve": row(ok, ok, ok),
		"exit":   row(eLP, eLP, eLP),
		"fork":   row(ok, ok, ok),
		"kill":   row(eLP, eLP, eLP),
		"vfork":  row(okDV, ok, ok),
		// Group 3: permissions.
		"chmod":     row(ok, ok, ok),
		"fchmod":    row(ok, eNR, ok),
		"fchmodat":  row(ok, ok, ok),
		"chown":     row(eNR, ok, ok),
		"fchown":    row(eNR, eNR, ok),
		"fchownat":  row(eNR, ok, ok),
		"setgid":    row(ok, ok, ok),
		"setregid":  row(ok, ok, ok),
		"setresgid": row(eSC, eNR, ok),
		"setuid":    row(ok, ok, ok),
		"setreuid":  row(ok, ok, ok),
		"setresuid": row(okSC, eNR, ok),
		// Group 4: pipes.
		"pipe":  row(eNR, ok, eNR),
		"pipe2": row(eNR, ok, eNR),
		"tee":   row(eNR, eNR, ok),
	}
}
