package bench

import (
	"encoding/json"
	"testing"
)

// TestPerfSnapshot: the harness produces a complete snapshot whose
// deterministic counters match the checked-in baselines exactly, and
// the gate logic separates pass from regression. The naive-flat
// workload costs seconds, so the full snapshot is skipped under -short
// and the race detector (CI's non-race perf step runs it instead).
func TestPerfSnapshot(t *testing.T) {
	if testing.Short() || raceDetector {
		t.Skip("perf snapshot is expensive; covered by the dedicated CI step")
	}
	snap, err := RunPerf()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema != PerfSchema || snap.ID != perfID {
		t.Errorf("snapshot header = %q id %d", snap.Schema, snap.ID)
	}
	if len(snap.Results) != len(perfBaselines) {
		t.Errorf("snapshot has %d results, want %d", len(snap.Results), len(perfBaselines))
	}
	for _, r := range snap.Results {
		base, ok := perfBaselines[r.Name]
		if !ok {
			t.Errorf("unexpected workload %s", r.Name)
			continue
		}
		if r.NsOp <= 0 {
			t.Errorf("%s: ns_op = %d", r.Name, r.NsOp)
		}
		// The counters are exact: seeded corpora, deterministic engines.
		for counter, want := range base {
			if got := r.Counters[counter]; got != want {
				t.Errorf("%s: %s = %d, want %d (update the baseline if intentional)", r.Name, counter, got, want)
			}
		}
	}
	if err := snap.Gate(2); err != nil {
		t.Errorf("gate(2) failed on a baseline-exact snapshot: %v", err)
	}
	// The goal-directed optimizer claim: pruning + bound-first
	// reordering must cut join probes by at least 5x on the goal
	// corpus (the measured ratio is ~223x; 5x is the gated floor).
	byName := map[string]PerfResult{}
	for _, r := range snap.Results {
		byName[r.Name] = r
	}
	unopt := byName["datalog/goal-ancestry/unoptimized"].Counters["join_probes"]
	opt := byName["datalog/goal-ancestry/optimized"].Counters["join_probes"]
	if opt <= 0 || unopt < opt*5 {
		t.Errorf("goal-ancestry probes: unoptimized %d vs optimized %d — optimizer reduction below 5x", unopt, opt)
	}
	// The parallel engine's exactness claim, on the artifact itself:
	// the width-3 ancestry run counts precisely the sequential run's
	// join probes.
	seqProbes := byName["datalog/ancestry/seminaive-flat"].Counters["join_probes"]
	parProbes := byName["datalog/ancestry/interned-par"].Counters["join_probes"]
	if seqProbes <= 0 || seqProbes != parProbes {
		t.Errorf("ancestry probe parity: sequential %d vs parallel %d", seqProbes, parProbes)
	}
	// The WL rewrite's allocation claim: the interned workload must sit
	// at least two orders of magnitude under the legacy refinement.
	legacyAllocs := byName["graph/wl-refine/legacy"].AllocsOp
	internedAllocs := byName["graph/wl-refine/interned"].AllocsOp
	if internedAllocs*100 > legacyAllocs {
		t.Errorf("wl-refine allocs: interned %d vs legacy %d — drop below 100x", internedAllocs, legacyAllocs)
	}
	if err := snap.Gate(0.5); err == nil {
		t.Error("gate(0.5) passed — the gate compares nothing")
	}
	// The snapshot must round-trip as JSON (it is a committed artifact).
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back PerfSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != PerfSchema {
		t.Errorf("round-trip schema = %q", back.Schema)
	}
}

// TestPerfGateDetectsMissingData: a snapshot missing workloads or
// counters is a gate failure, not a silent pass.
func TestPerfGateDetectsMissingData(t *testing.T) {
	empty := &PerfSnapshot{Schema: PerfSchema, ID: perfID}
	if err := empty.Gate(2); err == nil {
		t.Error("gate passed an empty snapshot")
	}
	noCounter := &PerfSnapshot{Schema: PerfSchema, ID: perfID}
	for name := range perfBaselines {
		noCounter.Results = append(noCounter.Results, PerfResult{Name: name, Counters: map[string]int64{}})
	}
	if err := noCounter.Gate(2); err == nil {
		t.Error("gate passed a snapshot with no counters")
	}
}
