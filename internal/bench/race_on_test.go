//go:build race

package bench

// raceDetector gates the expensive perf snapshot out of race-enabled
// test runs (the dedicated CI perf step runs it without the detector).
const raceDetector = true
