package bench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func TestTable1GroupsComplete(t *testing.T) {
	groups := Table1Groups()
	if len(groups[1]) != 23 || len(groups[2]) != 6 || len(groups[3]) != 12 || len(groups[4]) != 3 {
		t.Errorf("group sizes: %d/%d/%d/%d", len(groups[1]), len(groups[2]), len(groups[3]), len(groups[4]))
	}
	out := RenderTable1()
	for _, want := range []string{"Files", "Processes", "Permissions", "Pipes", "rename", "tee"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
}

func TestFig1RenameShapes(t *testing.T) {
	s := NewSuite(true)
	f, err := s.RunFig1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, tool := range Tools {
		if f[tool].Empty {
			t.Errorf("%s: rename empty", tool)
		}
	}
	// The paper's qualitative observations about Figure 1:
	// SPADE: two artifacts linked to each other and the process.
	spadeArtifacts := 0
	for _, n := range f["spade"].Target.Nodes() {
		if n.Label == "Artifact" {
			spadeArtifacts++
		}
	}
	if spadeArtifacts != 2 {
		t.Errorf("spade rename has %d artifacts, want 2", spadeArtifacts)
	}
	// OPUS: around a dozen elements including the call event itself.
	if f["opus"].Target.Size() < 8 {
		t.Errorf("opus rename graph too small: %d elements", f["opus"].Target.Size())
	}
	// CamFlow: a new path node; the old path absent.
	oldPath, newPath := false, false
	for _, n := range f["camflow"].Target.Nodes() {
		switch n.Props["cf:pathname"] {
		case "/stage/test.txt":
			oldPath = true
		case "/stage/renamed.txt":
			newPath = true
		}
	}
	if oldPath || !newPath {
		t.Errorf("camflow rename paths: old=%v new=%v, want only new", oldPath, newPath)
	}
	out := RenderFig1(f)
	if !strings.Contains(out, "spade") || !strings.Contains(out, "Figure 1") {
		t.Error("fig1 rendering incomplete")
	}
}

func TestTable3Cells(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunTable3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The Empty cells of Table 3 in the paper.
	wantEmpty := map[[2]string]bool{
		{"dup", "spade"}:      true,
		{"read", "opus"}:      true,
		{"write", "opus"}:     true,
		{"setresuid", "opus"}: true,
		{"dup", "camflow"}:    true,
	}
	for sc, row := range res {
		for tool, cell := range row {
			want := wantEmpty[[2]string{sc, tool}]
			if cell.Empty != want {
				t.Errorf("table3 %s/%s: empty=%v want %v", tool, sc, cell.Empty, want)
			}
		}
	}
	out := RenderTable3(res)
	if !strings.Contains(out, "setresuid") || !strings.Contains(out, "Empty") {
		t.Error("table3 rendering incomplete")
	}
}

func TestTimingRows(t *testing.T) {
	s := NewSuite(true)
	rows, err := s.RunTiming(context.Background(), "spade")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(TimingSyscalls) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Times.Generalization <= 0 || r.Times.Comparison <= 0 {
			t.Errorf("%s: missing stage times %+v", r.Label, r.Times)
		}
	}
	out := RenderTiming("Figure 5 test", rows)
	if !strings.Contains(out, "execve") || !strings.Contains(out, "T=") {
		t.Error("timing rendering incomplete")
	}
}

func TestScalabilityRows(t *testing.T) {
	s := NewSuite(true)
	rows, err := s.RunScalability(context.Background(), "camflow")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Label != "scale1" || rows[3].Label != "scale8" {
		t.Fatalf("rows = %+v", rows)
	}
	// Shape check: scale8 must be slower than scale1 on the solver
	// stages (generalization+comparison).
	s1 := rows[0].Times.Generalization + rows[0].Times.Comparison
	s8 := rows[3].Times.Generalization + rows[3].Times.Comparison
	if s8 <= s1 {
		t.Errorf("scale8 (%v) not slower than scale1 (%v)", s8, s1)
	}
}

func TestTable4CountsThisRepo(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := Table4ModuleSizes(root)
	if err != nil {
		t.Skipf("source tree not available: %v", err)
	}
	if len(sizes) != 3 {
		t.Fatalf("sizes = %v", sizes)
	}
	for _, s := range sizes {
		if s.Recording < 100 || s.Transformation < 50 {
			t.Errorf("%s: implausible line counts %+v", s.Tool, s)
		}
	}
	out := RenderTable4(sizes)
	if !strings.Contains(out, "Recording") || !strings.Contains(out, "PROV-JSON") {
		t.Error("table4 rendering incomplete")
	}
}

func TestSuiteUnknownTool(t *testing.T) {
	s := NewSuite(true)
	if _, err := s.Recorder("pass"); err == nil {
		t.Error("unknown tool accepted")
	}
	if _, err := s.Run(context.Background(), "spade", "nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
