package bench

import (
	"context"
	"strings"
	"testing"

	"provmark/internal/benchprog"
	"provmark/internal/oskernel"
)

// TestFailureMatrixAgreement: every failure scenario behaves as the
// Alice use-case analysis predicts across all four tool columns.
func TestFailureMatrixAgreement(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunFailureMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 10*4 {
		t.Errorf("cells = %d, want 40", res.Total)
	}
	expected := ExpectedFailureMatrix()
	for benchName, row := range res.Recorded {
		for tool, got := range row {
			if expected[benchName][tool] != got {
				t.Errorf("%s/%s: recorded=%v, expected %v", tool, benchName, got, expected[benchName][tool])
			}
		}
	}
}

// TestFailureCasesActuallyFail: each failure benchmark's target call
// must fail (and leave the system unchanged).
func TestFailureCasesActuallyFail(t *testing.T) {
	for _, prog := range benchprog.FailureCases() {
		k := oskernel.New()
		if err := benchprog.Run(k, prog, benchprog.Foreground); err != nil {
			t.Errorf("%s: %v", prog.Name, err)
		}
		if ino, ok := k.Lookup("/etc/passwd"); !ok || ino.UID != 0 || ino.Mode != 0o644 {
			t.Errorf("%s: /etc/passwd was modified", prog.Name)
		}
	}
}

func TestRenderFailureMatrix(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunFailureMatrix(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderFailureMatrix(res)
	for _, want := range []string{"open-eacces", "CamFlow+denied", "agreement"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
	if strings.Contains(out, "(!)") {
		t.Errorf("rendering flags mismatches:\n%s", out)
	}
}
