package bench

// Perf snapshots: a small, deterministic performance harness over the
// two counter-instrumented hot paths — Datalog ancestry evaluation
// (join probes) and similarity classification (fingerprint
// computations, ASP solver invocations). Each workload runs exactly
// once and reports wall clock, allocations, and its counters; the
// counters are exact and reproducible (the workloads are seeded and the
// engines deterministic), so the regression gate compares counters, not
// noisy nanoseconds.
//
// cmd/provmark-perf writes the snapshot as BENCH_<id>.json and CI fails
// the build when any counter regresses past the gate factor.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"provmark/internal/asp"
	"provmark/internal/datalog"
	"provmark/internal/datalog/analyze"
	"provmark/internal/graph"
	"provmark/internal/provmark"
)

// PerfSchema versions the snapshot document.
const PerfSchema = "provmark/bench-snapshot/v1"

// perfID numbers the snapshot artifact (BENCH_9.json).
const perfID = 9

// PerfResult is one workload's measurement.
type PerfResult struct {
	Name string `json:"name"`
	// NsOp / AllocsOp / BytesOp are single-iteration wall clock and
	// allocation figures — informative, not gated.
	NsOp     int64  `json:"ns_op"`
	AllocsOp uint64 `json:"allocs_op"`
	BytesOp  uint64 `json:"bytes_op"`
	// Counters holds the workload's deterministic work counters
	// (join_probes, fingerprints, solver_invocations) — the gated part.
	Counters map[string]int64 `json:"counters"`
}

// PerfSnapshot is the BENCH_*.json document.
type PerfSnapshot struct {
	Schema  string       `json:"schema"`
	ID      int          `json:"id"`
	Results []PerfResult `json:"results"`
}

// perfBaselines pins the expected counter values per workload. The
// workloads are deterministic, so these are exact measurements, not
// estimates; Gate fails when a counter exceeds baseline*factor.
var perfBaselines = map[string]map[string]int64{
	// The interned engine's probe discipline (round barriers, no
	// mid-round bleed between rules) counts slightly fewer probes than
	// the retired string engine did for the same joins; the parallel
	// run must match the sequential run exactly at any width.
	"datalog/ancestry/seminaive-flat":   {"join_probes": 12000},
	"datalog/ancestry/interned-par":     {"join_probes": 12000},
	"datalog/ancestry/seminaive-deep":   {"join_probes": 4000},
	"datalog/ancestry/naive-flat":       {"join_probes": 44032000},
	"datalog/goal-ancestry/unoptimized": {"join_probes": 176003},
	"datalog/goal-ancestry/optimized":   {"join_probes": 804},
	"classify/similarity/asym-32x4":     {"fingerprints": 32, "solver_invocations": 0},
	"classify/similarity/sym-32x4":      {"fingerprints": 32, "solver_invocations": 28},
	"graph/wl-refine/legacy":            {"refinements": 100, "color_classes": 256},
	"graph/wl-refine/interned":          {"fingerprints": 100, "distinct_fingerprints": 100},
}

// perfAllocCeilings caps allocs_op for the allocation-focused
// workloads: unlike the counters these are hard budgets, not
// factor-scaled baselines, because the whole point of the interned
// paths is that they stay off the allocator.
var perfAllocCeilings = map[string]uint64{
	// 100 cache-missing fingerprints measure ~360 allocations total
	// (the fingerprint string, the cached colour slab, and first-graph
	// workspace sizing); the legacy refinement spends ~833k on the same
	// corpus. The budget leaves room for pool churn under GC pressure
	// while still gating three orders of magnitude below legacy.
	"graph/wl-refine/interned": 5_000,
	// The deep chain measures ~26k allocations (dominated by loading
	// the 2001-node graph, not by evaluation).
	"datalog/ancestry/seminaive-deep": 60_000,
}

// RunPerf executes every workload once and assembles the snapshot.
func RunPerf() (*PerfSnapshot, error) {
	snap := &PerfSnapshot{Schema: PerfSchema, ID: perfID}
	// The WL corpus is built up front so the measured allocations of the
	// wl-refine workloads belong to the refinements, not graph assembly.
	wlGraphs := wlPerfCorpus(100, 256, 512, 9)
	workloads := []struct {
		name string
		work func() (map[string]int64, error)
	}{
		{"datalog/ancestry/seminaive-flat", func() (map[string]int64, error) {
			return ancestryWorkload(400, 5, 400*15, (*datalog.Database).Run)
		}},
		{"datalog/ancestry/interned-par", func() (map[string]int64, error) {
			return ancestryWorkload(400, 5, 400*15, func(db *datalog.Database, rules []datalog.Rule) error {
				return db.RunParallel(rules, 3)
			})
		}},
		{"datalog/ancestry/seminaive-deep", deepAncestryWorkload},
		{"datalog/ancestry/naive-flat", func() (map[string]int64, error) {
			return ancestryWorkload(400, 5, 400*15, (*datalog.Database).RunNaive)
		}},
		{"datalog/goal-ancestry/unoptimized", func() (map[string]int64, error) {
			return goalAncestryWorkload(false)
		}},
		{"datalog/goal-ancestry/optimized", func() (map[string]int64, error) {
			return goalAncestryWorkload(true)
		}},
		{"classify/similarity/asym-32x4", func() (map[string]int64, error) {
			return classifyWorkload(asymPerfCorpus(32, 4, 2))
		}},
		{"classify/similarity/sym-32x4", func() (map[string]int64, error) {
			return classifyWorkload(symPerfCorpus(32, 4, 4))
		}},
		{"graph/wl-refine/legacy", func() (map[string]int64, error) {
			return wlLegacyWorkload(wlGraphs)
		}},
		{"graph/wl-refine/interned", func() (map[string]int64, error) {
			return wlInternedWorkload(wlGraphs)
		}},
	}
	for _, w := range workloads {
		res, err := measure(w.name, w.work)
		if err != nil {
			return nil, fmt.Errorf("bench: perf %s: %w", w.name, err)
		}
		snap.Results = append(snap.Results, res)
	}
	return snap, nil
}

// Gate checks every gated counter against its baseline: a counter above
// baseline*factor is a regression and fails the snapshot. Counters
// below baseline are improvements and pass (the next snapshot commit
// can ratchet the baseline down).
func (s *PerfSnapshot) Gate(factor float64) error {
	byName := map[string]PerfResult{}
	for _, r := range s.Results {
		byName[r.Name] = r
	}
	for name, counters := range perfBaselines {
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("bench: perf gate: workload %s missing from snapshot", name)
		}
		for counter, base := range counters {
			got, ok := r.Counters[counter]
			if !ok {
				return fmt.Errorf("bench: perf gate: %s lacks counter %s", name, counter)
			}
			if float64(got) > float64(base)*factor {
				return fmt.Errorf("bench: perf gate: %s %s = %d exceeds %.1fx baseline %d",
					name, counter, got, factor, base)
			}
		}
	}
	for name, ceiling := range perfAllocCeilings {
		r, ok := byName[name]
		if !ok {
			return fmt.Errorf("bench: perf gate: workload %s missing from snapshot", name)
		}
		if r.AllocsOp > ceiling {
			return fmt.Errorf("bench: perf gate: %s allocs_op = %d exceeds budget %d",
				name, r.AllocsOp, ceiling)
		}
	}
	return nil
}

// measure runs one workload once, bracketing it with GC-settled memory
// stats so the allocation figures are attributable to the workload.
func measure(name string, work func() (map[string]int64, error)) (PerfResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	counters, err := work()
	elapsed := time.Since(start)
	if err != nil {
		return PerfResult{}, err
	}
	runtime.ReadMemStats(&after)
	return PerfResult{
		Name:     name,
		NsOp:     elapsed.Nanoseconds(),
		AllocsOp: after.Mallocs - before.Mallocs,
		BytesOp:  after.TotalAlloc - before.TotalAlloc,
		Counters: counters,
	}, nil
}

// perfAncestryGraph builds `chains` parallel chains of `length` edges —
// the corpus shape of the Datalog acceptance benchmarks.
func perfAncestryGraph(chains, length int) *graph.Graph {
	g := graph.New()
	for c := 0; c < chains; c++ {
		prev := g.AddNode("N", nil)
		for i := 0; i < length; i++ {
			next := g.AddNode("N", nil)
			if _, err := g.AddEdge(prev, next, "E", nil); err != nil {
				panic(err) // cannot happen: both endpoints were just added
			}
			prev = next
		}
	}
	return g
}

// ancestryWorkload evaluates full transitive closure over the flat
// chain corpus and reports the engine's join-probe counter.
func ancestryWorkload(chains, length, wantFacts int, eval func(*datalog.Database, []datalog.Rule) error) (map[string]int64, error) {
	rules, err := datalog.ParseRules(`
anc(X, Y) :- edge(_, X, Y, _).
anc(X, Z) :- anc(X, Y), edge(_, Y, Z, _).
`)
	if err != nil {
		return nil, err
	}
	db := datalog.NewDatabase()
	db.LoadGraph(perfAncestryGraph(chains, length))
	if err := eval(db, rules); err != nil {
		return nil, err
	}
	if got := len(db.Facts("anc")); got != wantFacts {
		return nil, fmt.Errorf("anc facts = %d, want %d", got, wantFacts)
	}
	return map[string]int64{"join_probes": db.Stats().JoinProbes}, nil
}

// deepAncestryWorkload evaluates single-source ancestry over one
// 2000-edge chain — recursion the naive engine cannot finish, so it
// runs semi-naive only.
func deepAncestryWorkload() (map[string]int64, error) {
	rules, err := datalog.ParseRules(`
anc(Y) :- edge(_, "n1", Y, _).
anc(Z) :- anc(Y), edge(_, Y, Z, _).
`)
	if err != nil {
		return nil, err
	}
	db := datalog.NewDatabase()
	db.LoadGraph(perfAncestryGraph(1, 2000))
	if err := db.Run(rules); err != nil {
		return nil, err
	}
	if got := len(db.Facts("anc")); got != 2000 {
		return nil, fmt.Errorf("anc facts = %d, want 2000", got)
	}
	return map[string]int64{"join_probes": db.Stats().JoinProbes}, nil
}

// goalAncestryRules is the goal-directed corpus program, written the
// way a rule library accumulates: a full transitive closure (anc/2)
// that the reach goal never consumes, and a start rule whose body
// enumerates every edge before the selective node("root") test. The
// optimizer prunes the closure (goal-directed relevance) and flips the
// start body bound-first; both programs bind the same reach facts.
const goalAncestryRules = `
anc(X, Y) :- edge(_, X, Y, _).
anc(X, Z) :- anc(X, Y), edge(_, Y, Z, _).
start(P) :- edge(_, P, _, _), node(P, "root").
reach(P) :- start(P).
reach(Z) :- reach(Y), edge(_, Y, Z, _).
`

// perfGoalGraph builds the goal-ancestry corpus: one chain of rootLen
// edges whose head node carries the "root" label, buried among decoys
// anonymous chains of decoyLen edges each — only the labelled chain is
// relevant to the goal.
func perfGoalGraph(rootLen, decoys, decoyLen int) *graph.Graph {
	g := graph.New()
	prev := g.AddNode("root", nil)
	for i := 0; i < rootLen; i++ {
		next := g.AddNode("N", nil)
		if _, err := g.AddEdge(prev, next, "E", nil); err != nil {
			panic(err) // cannot happen: both endpoints were just added
		}
		prev = next
	}
	for c := 0; c < decoys; c++ {
		prev := g.AddNode("N", nil)
		for i := 0; i < decoyLen; i++ {
			next := g.AddNode("N", nil)
			if _, err := g.AddEdge(prev, next, "E", nil); err != nil {
				panic(err)
			}
			prev = next
		}
	}
	return g
}

// goalAncestryWorkload evaluates the reach(X) goal over the corpus,
// optionally through the analyzer's goal-directed optimizer. Both
// variants must derive exactly the 401 reach facts of the root chain —
// the probe counters differ, the answers may not.
func goalAncestryWorkload(optimize bool) (map[string]int64, error) {
	rules, err := datalog.ParseRules(goalAncestryRules)
	if err != nil {
		return nil, err
	}
	goal, err := datalog.ParseAtom("reach(X)")
	if err != nil {
		return nil, err
	}
	if optimize {
		rules, _ = analyze.Optimize(rules, goal)
	}
	db := datalog.NewDatabase()
	db.LoadGraph(perfGoalGraph(400, 300, 6))
	if err := db.Run(rules); err != nil {
		return nil, err
	}
	if got := len(db.Facts("reach")); got != 401 {
		return nil, fmt.Errorf("reach facts = %d, want 401", got)
	}
	return map[string]int64{"join_probes": db.Stats().JoinProbes}, nil
}

// wlPerfCorpus builds `count` seeded random provenance-shaped graphs
// for the WL refinement workloads. The graphs are distinct, so the
// interned workload's fingerprints should all differ.
func wlPerfCorpus(count, nodes, edges int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"Process", "File", "Socket", "Pipe", "User", "Registry"}
	edgeLabels := []string{"Used", "WasGeneratedBy", "WasInformedBy", "WasAssociatedWith"}
	out := make([]*graph.Graph, 0, count)
	for c := 0; c < count; c++ {
		g := graph.New()
		ids := make([]graph.ElemID, 0, nodes)
		for n := 0; n < nodes; n++ {
			ids = append(ids, g.AddNode(labels[rng.Intn(len(labels))], nil))
		}
		for e := 0; e < edges; e++ {
			src := ids[rng.Intn(len(ids))]
			tgt := ids[rng.Intn(len(ids))]
			if _, err := g.AddEdge(src, tgt, edgeLabels[rng.Intn(len(edgeLabels))], nil); err != nil {
				panic(err) // cannot happen: both endpoints exist
			}
		}
		out = append(out, g)
	}
	return out
}

// wlLegacyWorkload refines every corpus graph once with the frozen
// string-based WL implementation — the allocation reference the
// interned workload is compared against.
func wlLegacyWorkload(graphs []*graph.Graph) (map[string]int64, error) {
	classes := map[string]struct{}{}
	for _, g := range graphs {
		colors := graph.WLColorsLegacy(g, graph.CanonRounds)
		for k := range classes {
			delete(classes, k)
		}
		for _, c := range colors {
			classes[c] = struct{}{}
		}
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty refinement")
	}
	return map[string]int64{
		"refinements":   int64(len(graphs)),
		"color_classes": int64(len(classes)),
	}, nil
}

// wlInternedWorkload fingerprints every corpus graph once through the
// pooled integer refinement. The cache-missing fingerprint path is the
// allocation-gated hot path: past the first graph (which sizes the
// pooled workspace) each refinement is allocation-free, so the whole
// workload's allocs_op stays within a fixed budget.
func wlInternedWorkload(graphs []*graph.Graph) (map[string]int64, error) {
	start := graph.FingerprintComputations()
	distinct := map[string]struct{}{}
	for _, g := range graphs {
		distinct[graph.ShapeFingerprint(g)] = struct{}{}
	}
	return map[string]int64{
		"fingerprints":          int64(graph.FingerprintComputations() - start),
		"distinct_fingerprints": int64(len(distinct)),
	}, nil
}

// classifyWorkload runs similarity classification over a corpus and
// reports the global fingerprint / solver counter deltas (both engines
// count through process-wide atomics).
func classifyWorkload(corpus []*graph.Graph) (map[string]int64, error) {
	startSolves := asp.SolveInvocations()
	startPrints := graph.FingerprintComputations()
	classes := provmark.SimilarityClasses(corpus)
	if len(classes) == 0 {
		return nil, fmt.Errorf("empty classification")
	}
	return map[string]int64{
		"fingerprints":       int64(graph.FingerprintComputations() - startPrints),
		"solver_invocations": int64(asp.SolveInvocations() - startSolves),
	}, nil
}

// symPerfCorpus builds trials of star graphs (hub plus interchangeable
// leaves): classes differ by leaf count, members are permuted copies.
// Mirrors the classification benchmark corpus.
func symPerfCorpus(trials, classes int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, trials)
	for i := 0; i < trials; i++ {
		leaves := 3 + i%classes
		base := graph.New()
		hub := base.AddNode("hub", nil)
		for l := 0; l < leaves; l++ {
			leaf := base.AddNode("leaf", nil)
			if _, err := base.AddEdge(hub, leaf, "spoke", nil); err != nil {
				panic(err)
			}
		}
		out = append(out, permutedPerfCopy(base, rng, fmt.Sprintf("t%d", i)))
	}
	return out
}

// asymPerfCorpus builds permuted copies of distinct labelled chains.
func asymPerfCorpus(trials, classes int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, trials)
	for i := 0; i < trials; i++ {
		shape := i % classes
		base := graph.New()
		var prev graph.ElemID
		for p := 0; p <= shape+2; p++ {
			id := base.AddNode(fmt.Sprintf("s%dp%d", shape, p), nil)
			if p > 0 {
				if _, err := base.AddEdge(prev, id, "next", nil); err != nil {
					panic(err)
				}
			}
			prev = id
		}
		out = append(out, permutedPerfCopy(base, rng, fmt.Sprintf("t%d", i)))
	}
	return out
}

// permutedPerfCopy rebuilds a graph with shuffled insertion order and
// fresh element IDs, so structural equivalence is all the classifier
// can rely on.
func permutedPerfCopy(g *graph.Graph, rng *rand.Rand, prefix string) *graph.Graph {
	out := graph.New()
	nodes := g.Nodes()
	rename := make(map[graph.ElemID]graph.ElemID, len(nodes))
	for i, pi := range rng.Perm(len(nodes)) {
		n := nodes[pi]
		id := graph.ElemID(fmt.Sprintf("%s_n%d", prefix, i))
		rename[n.ID] = id
		if err := out.InsertNode(id, n.Label, n.Props); err != nil {
			panic(err)
		}
	}
	edges := g.Edges()
	for i, pi := range rng.Perm(len(edges)) {
		e := edges[pi]
		id := graph.ElemID(fmt.Sprintf("%s_e%d", prefix, i))
		if err := out.InsertEdge(id, rename[e.Src], rename[e.Tgt], e.Label, e.Props); err != nil {
			panic(err)
		}
	}
	return out
}
