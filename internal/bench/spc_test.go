package bench

import (
	"context"
	"strings"
	"testing"
)

// TestSpcColumnAgreement: the measured spc column matches the
// first-principles expectation matrix across all 44 benchmarks.
func TestSpcColumnAgreement(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunSpcColumn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 44 {
		t.Errorf("cells = %d", res.Total)
	}
	expected := ExpectedSpcColumn()
	for name, cell := range res.Cells {
		if expected[name].OK != cell.OK {
			t.Errorf("spc/%s: got %s, derived expectation %s", name, cell, expected[name])
		}
	}
}

// TestSpcGainsOverAuditReporter: the reporter swap must strictly gain
// the kernel-level-only syscalls and lose the audit-only ones.
func TestSpcGainsOverAuditReporter(t *testing.T) {
	audit := ExpectedTable2()
	spc := ExpectedSpcColumn()
	gains, losses := []string{}, []string{}
	for name := range spc {
		switch {
		case spc[name].OK && !audit[name]["spade"].OK:
			gains = append(gains, name)
		case !spc[name].OK && audit[name]["spade"].OK:
			losses = append(losses, name)
		}
	}
	for _, want := range []string{"chown", "fchown", "fchownat", "setresgid", "tee"} {
		if !containsName(gains, want) {
			t.Errorf("expected %s among spc gains %v", want, gains)
		}
	}
	// Losses: close (no LSM hook) and the symlink family (0.4.5 gap).
	for _, want := range []string{"close", "symlink", "symlinkat"} {
		if !containsName(losses, want) {
			t.Errorf("expected %s among spc losses %v", want, losses)
		}
	}
}

func containsName(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}

func TestRenderSpcColumn(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunSpcColumn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSpcColumn(res)
	for _, want := range []string{"SPADE/camflow", "gained vs audit reporter", "agreement"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q", want)
		}
	}
}
