package bench

import (
	"context"
	"strings"
	"testing"
)

// TestTable2FullAgreement is the headline reproduction check: every
// cell of Table 2 (44 syscalls x 3 tools) must match the paper's
// published ok/empty status.
func TestTable2FullAgreement(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunTable2(context.Background())
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	if res.Total != 44*3 {
		t.Errorf("expected %d cells, got %d", 44*3, res.Total)
	}
	for _, row := range res.Rows {
		for _, tool := range Tools {
			if !row.Match[tool] {
				t.Errorf("%s/%s: got %s, paper says %s",
					tool, row.Syscall, row.Actual[tool], row.Expected[tool])
			}
		}
	}
}

func TestExpectedTable2CoversAllBenchmarks(t *testing.T) {
	expected := ExpectedTable2()
	if len(expected) != 44 {
		t.Errorf("expected matrix should have 44 rows, has %d", len(expected))
	}
	for name, row := range expected {
		for _, tool := range Tools {
			if _, ok := row[tool]; !ok {
				t.Errorf("row %s lacks tool %s", name, tool)
			}
		}
	}
}

func TestRenderTable2(t *testing.T) {
	s := NewSuite(true)
	res, err := s.RunTable2(context.Background())
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	out := RenderTable2(res)
	for _, want := range []string{"rename", "SPADE", "agreement:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
