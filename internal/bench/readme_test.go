package bench

// The README's "Raw speed" section carries the perf-snapshot table
// between <!-- perf-snapshot:begin/end --> markers, rendered from the
// checked-in BENCH_9.json (with per-workload speedups against the
// BENCH_8.json it supersedes). This drift guard regenerates the block
// from the artifacts and fails when the document and the numbers
// disagree — after re-committing a snapshot, paste the rendered block
// from the failure message.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"testing"
)

func loadSnapshot(t *testing.T, path string) *PerfSnapshot {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap PerfSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return &snap
}

func renderCounters(c map[string]int64) string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s %d", k, c[k]))
	}
	return strings.Join(parts, ", ")
}

func perfMarkdown(cur, prev *PerfSnapshot) string {
	prevNs := map[string]int64{}
	for _, r := range prev.Results {
		prevNs[r.Name] = r.NsOp
	}
	var b strings.Builder
	b.WriteString("| workload | ns/op | allocs/op | counters | vs BENCH_8 |\n|---|---|---|---|---|\n")
	for _, r := range cur.Results {
		speedup := "new"
		if old, ok := prevNs[r.Name]; ok && r.NsOp > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(old)/float64(r.NsOp))
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %s | %s |\n",
			r.Name, renderNs(r.NsOp), r.AllocsOp, renderCounters(r.Counters), speedup)
	}
	return b.String()
}

func renderNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(ns)/1e3)
	}
}

func TestReadmePerfTableMatchesSnapshot(t *testing.T) {
	cur := loadSnapshot(t, "../../BENCH_9.json")
	prev := loadSnapshot(t, "../../BENCH_8.json")
	if cur.ID != perfID {
		t.Fatalf("checked-in snapshot id = %d, harness perfID = %d", cur.ID, perfID)
	}
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	const begin, end = "<!-- perf-snapshot:begin -->", "<!-- perf-snapshot:end -->"
	doc := string(data)
	i := strings.Index(doc, begin)
	j := strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("README.md lacks the %s/%s markers", begin, end)
	}
	got := strings.TrimSpace(doc[i+len(begin) : j])
	want := strings.TrimSpace(perfMarkdown(cur, prev))
	if got != want {
		t.Errorf("README perf table drifted from BENCH_9.json.\n--- README ---\n%s\n--- snapshot ---\n%s", got, want)
	}
}

// TestCheckedInSnapshotHoldsTheClaims: the committed BENCH_9.json is
// itself evidence — re-assert the headline claims (>=2x ancestry
// speedups over BENCH_8, exact seq/par probe parity, >=100x WL
// allocation drop) against the artifacts rather than a live run, so a
// stale or hand-edited snapshot cannot carry claims it does not show.
func TestCheckedInSnapshotHoldsTheClaims(t *testing.T) {
	cur := loadSnapshot(t, "../../BENCH_9.json")
	prev := loadSnapshot(t, "../../BENCH_8.json")
	curBy, prevBy := map[string]PerfResult{}, map[string]PerfResult{}
	for _, r := range cur.Results {
		curBy[r.Name] = r
	}
	for _, r := range prev.Results {
		prevBy[r.Name] = r
	}
	for _, name := range []string{"datalog/ancestry/seminaive-flat", "datalog/ancestry/seminaive-deep"} {
		old, now := prevBy[name].NsOp, curBy[name].NsOp
		if now <= 0 || old < 2*now {
			t.Errorf("%s: %d ns vs BENCH_8 %d ns — below the 2x floor", name, now, old)
		}
	}
	seq := curBy["datalog/ancestry/seminaive-flat"].Counters["join_probes"]
	par := curBy["datalog/ancestry/interned-par"].Counters["join_probes"]
	if seq <= 0 || seq != par {
		t.Errorf("snapshot probe parity: sequential %d vs parallel %d", seq, par)
	}
	legacy, interned := curBy["graph/wl-refine/legacy"].AllocsOp, curBy["graph/wl-refine/interned"].AllocsOp
	if interned*100 > legacy {
		t.Errorf("snapshot wl-refine allocs: interned %d vs legacy %d — drop below 100x", interned, legacy)
	}
	if err := cur.Gate(2); err != nil {
		t.Errorf("checked-in snapshot fails its own gate: %v", err)
	}
}
