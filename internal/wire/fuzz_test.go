package wire

import (
	"reflect"
	"testing"
)

// FuzzWireRoundTrip checks the wire schema's core guarantee: any bytes
// the strict decoders accept re-encode canonically and decode back to
// the identical value — decode(encode(x)) == x for Result and
// MatrixResult alike. Seeds live under testdata/fuzz/FuzzWireRoundTrip
// and replay as regular test cases on every go test run.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add([]byte(`{"schema":1,"tool":"spade","benchmark":"creat","trials":2,"empty":false,"cost":1,"times":{"recording_ns":5,"transformation_ns":4,"generalization_ns":3,"classification_ns":2,"comparison_ns":1,"total_ns":13},"target":{"nodes":[{"id":"n1","label":"Process","props":{"pid":"7"}}]}}`))
	f.Add([]byte(`{"schema":1,"tool":"camflow","benchmark":"open","trials":2,"empty":true,"reason":"fg similar to bg (activity not recorded)","cost":0,"times":{"recording_ns":0,"transformation_ns":0,"generalization_ns":0,"classification_ns":0,"comparison_ns":0,"total_ns":0}}`))
	f.Add([]byte(`{"schema":1,"index":4,"tool":"opus","benchmark":"close","cell":"deadbeef","cached":true,"result":{"schema":1,"tool":"opus","benchmark":"close","trials":2,"empty":false,"cost":0,"times":{"recording_ns":1,"transformation_ns":1,"generalization_ns":1,"classification_ns":0,"comparison_ns":1,"total_ns":4},"target":{"nodes":[{"id":"n1","label":"entity"}]}}}`))
	f.Add([]byte(`{"schema":1,"index":0,"tool":"spade","benchmark":"kill","err":"provmark: recording: context canceled"}`))
	f.Add([]byte(`{"tools":["spade"],"benchmarks":["creat"],"trials":2,"scenarios":[{"name":"x","steps":[{"op":"open","path":"/stage/f","flags":["rdwr"],"save_fd":"id"},{"op":"close","target":true,"fd":"id"}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		checked := false
		if r, err := DecodeResult(data); err == nil {
			checked = true
			out, err := EncodeResult(r)
			if err != nil {
				t.Fatalf("encode of decoded result failed: %v\ninput: %s", err, data)
			}
			back, err := DecodeResult(out)
			if err != nil {
				t.Fatalf("re-decode of encoded result failed: %v\noutput: %s", err, out)
			}
			if !reflect.DeepEqual(r, back) {
				t.Fatalf("result round trip changed the value:\nbefore: %+v\nafter:  %+v\nwire: %s", r, back, out)
			}
		}
		if m, err := DecodeMatrixResult(data); err == nil {
			checked = true
			out, err := EncodeMatrixResult(m)
			if err != nil {
				t.Fatalf("encode of decoded matrix result failed: %v\ninput: %s", err, data)
			}
			back, err := DecodeMatrixResult(out)
			if err != nil {
				t.Fatalf("re-decode of encoded matrix result failed: %v\noutput: %s", err, out)
			}
			if !reflect.DeepEqual(m, back) {
				t.Fatalf("matrix round trip changed the value:\nbefore: %+v\nafter:  %+v\nwire: %s", m, back, out)
			}
		}
		if s, err := DecodeJobSpec(data); err == nil {
			checked = true
			out, err := EncodeJobSpec(s)
			if err != nil {
				t.Fatalf("encode of decoded job spec failed: %v\ninput: %s", err, data)
			}
			back, err := DecodeJobSpec(out)
			if err != nil {
				t.Fatalf("re-decode of encoded job spec failed: %v\noutput: %s", err, out)
			}
			if !reflect.DeepEqual(s, back) {
				t.Fatalf("job spec round trip changed the value:\nbefore: %+v\nafter:  %+v\nwire: %s", s, back, out)
			}
		}
		if !checked {
			t.Skip() // not a decodable document
		}
	})
}
