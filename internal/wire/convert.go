package wire

import (
	"fmt"
	"sort"
	"strings"

	"provmark/internal/graph"
)

// FromGraph converts a property graph to its wire form, preserving
// insertion order so renderings derived from either form agree.
// A nil graph maps to a nil wire graph.
func FromGraph(g *graph.Graph) *Graph {
	if g == nil {
		return nil
	}
	w := &Graph{}
	for _, n := range g.Nodes() {
		w.Nodes = append(w.Nodes, Node{
			ID:    string(n.ID),
			Label: n.Label,
			Props: cloneProps(n.Props),
		})
	}
	for _, e := range g.Edges() {
		w.Edges = append(w.Edges, Edge{
			ID:    string(e.ID),
			Src:   string(e.Src),
			Tgt:   string(e.Tgt),
			Label: e.Label,
			Props: cloneProps(e.Props),
		})
	}
	return w
}

// Build materializes a wire graph back into the property-graph model,
// validating identifier uniqueness and edge endpoints. A nil receiver
// builds to a nil graph.
func (w *Graph) Build() (*graph.Graph, error) {
	if w == nil {
		return nil, nil
	}
	g := graph.New()
	for _, n := range w.Nodes {
		if err := g.InsertNode(graph.ElemID(n.ID), n.Label, graph.Properties(cloneProps(n.Props))); err != nil {
			return nil, fmt.Errorf("wire: build graph: %w", err)
		}
	}
	for _, e := range w.Edges {
		if err := g.InsertEdge(graph.ElemID(e.ID), graph.ElemID(e.Src), graph.ElemID(e.Tgt), e.Label, graph.Properties(cloneProps(e.Props))); err != nil {
			return nil, fmt.Errorf("wire: build graph: %w", err)
		}
	}
	return g, nil
}

// NumNodes reports the node count; nil-safe.
func (w *Graph) NumNodes() int {
	if w == nil {
		return 0
	}
	return len(w.Nodes)
}

// NumEdges reports the edge count; nil-safe.
func (w *Graph) NumEdges() int {
	if w == nil {
		return 0
	}
	return len(w.Edges)
}

// Summary renders the "XnYeZp" element/property count summary the
// report tables use (the wire-form equivalent of graph.Summarize).
func (w *Graph) Summary() string {
	props := 0
	if w != nil {
		for _, n := range w.Nodes {
			props += len(n.Props)
		}
		for _, e := range w.Edges {
			props += len(e.Props)
		}
	}
	return fmt.Sprintf("%dn/%de/%dp", w.NumNodes(), w.NumEdges(), props)
}

// String renders the same compact human-readable description as
// graph.(*Graph).String, from the wire form.
func (w *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph{%d nodes, %d edges}\n", w.NumNodes(), w.NumEdges())
	if w == nil {
		return b.String()
	}
	for _, n := range w.Nodes {
		fmt.Fprintf(&b, "  node %s [%s]%s\n", n.ID, n.Label, propString(n.Props))
	}
	for _, e := range w.Edges {
		fmt.Fprintf(&b, "  edge %s: %s -%s-> %s%s\n", e.ID, e.Src, e.Label, e.Tgt, propString(e.Props))
	}
	return b.String()
}

func propString(p map[string]string) string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(p))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, p[k]))
	}
	return " {" + strings.Join(parts, ", ") + "}"
}

func cloneProps(p map[string]string) map[string]string {
	if p == nil {
		return nil
	}
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}
