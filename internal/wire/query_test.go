package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestQueryRequestRoundTrip(t *testing.T) {
	q := &QueryRequest{
		Cell:  "abc123",
		Graph: QueryGraphFG,
		Rules: `suspicious(P) :- prop(P, "cf:uid", "0").`,
		Goal:  "suspicious(P)",
	}
	data, err := EncodeQueryRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQueryRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cell != q.Cell || got.Graph != QueryGraphFG || got.Rules != q.Rules || got.Goal != q.Goal {
		t.Errorf("round trip = %+v", got)
	}
	if got.Schema != SchemaVersion {
		t.Errorf("schema = %d", got.Schema)
	}
	data2, err := EncodeQueryRequest(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("encoding not canonical: %s vs %s", data, data2)
	}
}

func TestQueryRequestTargetCollapses(t *testing.T) {
	data, err := EncodeQueryRequest(&QueryRequest{Cell: "c", Graph: QueryGraphTarget, Goal: "g(X)"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"graph"`) {
		t.Errorf("target selector not collapsed: %s", data)
	}
	got, err := DecodeQueryRequest([]byte(`{"cell":"c","graph":"target","goal":"g(X)"}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph != "" {
		t.Errorf("decoded graph = %q, want collapsed", got.Graph)
	}
}

func TestQueryRequestDecodeStrict(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"unknown field", `{"cell":"c","goal":"g(X)","nope":1}`},
		{"missing cell", `{"goal":"g(X)"}`},
		{"missing goal", `{"cell":"c"}`},
		{"bad graph selector", `{"cell":"c","goal":"g(X)","graph":"sideways"}`},
		{"bad schema", `{"schema":99,"cell":"c","goal":"g(X)"}`},
		{"trailing data", `{"cell":"c","goal":"g(X)"} {}`},
	}
	for _, tc := range cases {
		if _, err := DecodeQueryRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.body)
		}
	}
	// A hand-written body may omit the schema field.
	if _, err := DecodeQueryRequest([]byte(`{"cell":"c","goal":"g(X)"}`)); err != nil {
		t.Errorf("schemaless body rejected: %v", err)
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	q := &QueryResponse{
		Cell:     "abc123",
		Goal:     "suspicious(P)",
		Matches:  2,
		Bindings: []map[string]string{{"P": "n16"}, {"P": "n3"}},
		Derived:  7,
	}
	data, err := EncodeQueryResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQueryResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Matches != 2 || len(got.Bindings) != 2 || got.Bindings[0]["P"] != "n16" || got.Derived != 7 {
		t.Errorf("round trip = %+v", got)
	}
	data2, err := EncodeQueryResponse(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("encoding not canonical: %s vs %s", data, data2)
	}
}

func TestQueryResponseInvariants(t *testing.T) {
	// matches must equal len(bindings), both ways.
	if _, err := EncodeQueryResponse(&QueryResponse{Cell: "c", Goal: "g", Matches: 1}); err == nil {
		t.Error("encode accepted matches/bindings mismatch")
	}
	if _, err := DecodeQueryResponse([]byte(`{"schema":1,"cell":"c","goal":"g","matches":1,"derived":0}`)); err == nil {
		t.Error("decode accepted matches/bindings mismatch")
	}
	got, err := DecodeQueryResponse([]byte(`{"schema":1,"cell":"c","goal":"g","matches":0,"derived":0}`))
	if err != nil {
		t.Fatal(err)
	}
	if got.Bindings != nil {
		t.Errorf("empty bindings not normalized: %+v", got.Bindings)
	}
}

func TestQueryResponseDiagnostics(t *testing.T) {
	q := &QueryResponse{
		Cell: "c", Goal: "g(X)",
		Diagnostics: []QueryDiagnostic{
			{Severity: DiagError, Code: "arity-mismatch", Message: "boom", Pred: "p", Line: 2, Col: 5, EndCol: 9},
			{Severity: DiagWarning, Code: "cartesian-product", Message: "cross"},
		},
	}
	data, err := EncodeQueryResponse(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeQueryResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Diagnostics) != 2 || got.Diagnostics[0].Severity != DiagError ||
		got.Diagnostics[0].Line != 2 || got.Diagnostics[1].Code != "cartesian-product" {
		t.Errorf("round trip = %+v", got.Diagnostics)
	}
	data2, err := EncodeQueryResponse(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("encoding not canonical: %s vs %s", data, data2)
	}

	// Unknown severities and empty codes are rejected both ways.
	bad := &QueryResponse{Cell: "c", Goal: "g",
		Diagnostics: []QueryDiagnostic{{Severity: "fatal", Code: "x", Message: "m"}}}
	if _, err := EncodeQueryResponse(bad); err == nil {
		t.Error("encode accepted unknown severity")
	}
	if _, err := DecodeQueryResponse([]byte(`{"schema":1,"cell":"c","goal":"g","matches":0,"derived":0,"diagnostics":[{"severity":"error","code":"","message":"m"}]}`)); err == nil {
		t.Error("decode accepted empty diagnostic code")
	}
	// Error diagnostics are mutually exclusive with evaluation results.
	rejectedWithResults := &QueryResponse{Cell: "c", Goal: "g", Matches: 1,
		Bindings:    []map[string]string{{"X": "a"}},
		Diagnostics: []QueryDiagnostic{{Severity: DiagError, Code: "parse-error", Message: "m"}}}
	if _, err := EncodeQueryResponse(rejectedWithResults); err == nil {
		t.Error("encode accepted error diagnostics alongside bindings")
	}
	// Warnings ride along with results fine.
	warned := &QueryResponse{Cell: "c", Goal: "g", Matches: 1, Derived: 3,
		Bindings:    []map[string]string{{"X": "a"}},
		Diagnostics: []QueryDiagnostic{{Severity: DiagWarning, Code: "unused-predicate", Message: "m"}}}
	if _, err := EncodeQueryResponse(warned); err != nil {
		t.Errorf("warnings alongside results rejected: %v", err)
	}
}
