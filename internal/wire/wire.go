// Package wire defines the versioned, client-facing serialization of
// ProvMark results: canonical JSON encodings of pipeline results,
// matrix cells, job specifications and job status. The wire form is
// the contract between provmarkd, its clients, and the report
// renderers — internal structs may change freely, the wire schema
// only grows behind its schema-version field.
//
// Canonical means deterministic: struct fields encode in declaration
// order and property maps encode with sorted keys, so encoding the
// same value twice yields byte-identical JSON. Decoding is strict:
// unknown fields, trailing data, and schema-version mismatches are
// errors, so a round trip decode(encode(x)) == x holds for every
// value a decoder accepts.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"provmark/internal/benchprog"
)

// SchemaVersion is the current wire schema version. Every top-level
// wire object carries it in a "schema" field. Compatibility contract:
// within one version, fields are never removed or re-typed; additions
// bump the version, and decoders reject versions they do not know
// rather than guessing.
const SchemaVersion = 1

// Node is one vertex of a wire graph, in insertion order.
type Node struct {
	ID    string            `json:"id"`
	Label string            `json:"label"`
	Props map[string]string `json:"props,omitempty"`
}

// Edge is one directed edge of a wire graph, in insertion order.
type Edge struct {
	ID    string            `json:"id"`
	Src   string            `json:"src"`
	Tgt   string            `json:"tgt"`
	Label string            `json:"label"`
	Props map[string]string `json:"props,omitempty"`
}

// Graph is the wire form of a property graph. Element order is
// significant: it preserves the insertion order of the source graph so
// renderings derived from the wire form are byte-stable.
type Graph struct {
	Nodes []Node `json:"nodes,omitempty"`
	Edges []Edge `json:"edges,omitempty"`
}

// StageTimes reports per-stage wall-clock durations in nanoseconds.
// ClassificationNS is a sub-stage of generalization: its time is
// contained in GeneralizationNS and therefore NOT added again into
// TotalNS (which sums the four top-level stages only).
type StageTimes struct {
	RecordingNS      int64 `json:"recording_ns"`
	TransformationNS int64 `json:"transformation_ns"`
	GeneralizationNS int64 `json:"generalization_ns"`
	ClassificationNS int64 `json:"classification_ns"`
	ComparisonNS     int64 `json:"comparison_ns"`
	TotalNS          int64 `json:"total_ns"`
}

// Result is the wire form of one pipeline outcome (one benchmark under
// one tool). Target is null for empty results; Reason then explains
// the emptiness in the EmptyReason vocabulary.
type Result struct {
	Schema    int        `json:"schema"`
	Tool      string     `json:"tool"`
	Benchmark string     `json:"benchmark"`
	Trials    int        `json:"trials"`
	Empty     bool       `json:"empty"`
	Reason    string     `json:"reason,omitempty"`
	Cost      int        `json:"cost"`
	Times     StageTimes `json:"times"`
	Target    *Graph     `json:"target,omitempty"`
	FG        *Graph     `json:"fg,omitempty"`
	BG        *Graph     `json:"bg,omitempty"`
}

// MatrixResult is the wire form of one completed matrix cell, the
// NDJSON line streamed by provmarkd as cells finish.
type MatrixResult struct {
	Schema    int    `json:"schema"`
	Index     int    `json:"index"`
	Tool      string `json:"tool"`
	Benchmark string `json:"benchmark"`
	// Cell is the deduplication key of the (tool, benchmark, options)
	// combination, usable with GET /v1/results/{cell}.
	Cell string `json:"cell,omitempty"`
	// Cached reports that the result was served from the shared result
	// store instead of a fresh pipeline run.
	Cached bool    `json:"cached,omitempty"`
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"err,omitempty"`
}

// CaptureOptions is the wire form of the capture registry's backend
// configuration (capture.Options): the Fast toggle plus the config.ini
// parameter vocabulary of Appendix A.4.
type CaptureOptions struct {
	Fast   bool              `json:"fast,omitempty"`
	Params map[string]string `json:"params,omitempty"`
}

// JobSpec describes a (tools × benchmarks) matrix job. An empty
// Benchmarks list selects the full Table 1 suite — unless Scenarios
// are present, in which case an empty Benchmarks list selects no named
// benchmarks and the job runs the inline scenarios alone. Options are
// expressed in the capture.Options / pipeline-option vocabulary.
type JobSpec struct {
	Schema     int      `json:"schema,omitempty"`
	Tools      []string `json:"tools"`
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Scenarios are inline benchmark programs in the declarative
	// scenario vocabulary (benchprog.Scenario): validated strictly at
	// decode time, run like any named benchmark, and deduplicated by
	// canonical scenario content rather than by name.
	Scenarios []benchprog.Scenario `json:"scenarios,omitempty"`
	// Capture is a pointer so an all-default configuration is omitted
	// from the canonical encoding (omitempty never elides a struct
	// value); nil means the backend's paper-baseline configuration.
	Capture *CaptureOptions `json:"capture,omitempty"`
	// Trials per variant; 0 selects each tool's default.
	Trials int `json:"trials,omitempty"`
	// Parallelism bounds concurrent recording workers within one cell.
	Parallelism int `json:"parallelism,omitempty"`
	// FilterGraphs overrides the recorder's default graph filtering.
	FilterGraphs *bool `json:"filter_graphs,omitempty"`
	// BGPair / FGPair choose the trial-pair size preference per variant:
	// "", "smallest" or "largest".
	BGPair string `json:"bg_pair,omitempty"`
	FGPair string `json:"fg_pair,omitempty"`
}

// Job states reported by JobStatus.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobCanceled = "canceled"
)

// CellRef identifies one cell of a job and its completion state.
type CellRef struct {
	Cell      string `json:"cell"`
	Tool      string `json:"tool"`
	Benchmark string `json:"benchmark"`
	Done      bool   `json:"done"`
}

// JobStatus is the wire form of a job's externally visible state.
type JobStatus struct {
	Schema    int       `json:"schema"`
	ID        string    `json:"id"`
	State     string    `json:"state"`
	Total     int       `json:"total"`
	Completed int       `json:"completed"`
	Failed    int       `json:"failed"`
	Cells     []CellRef `json:"cells,omitempty"`
}

// EncodeResult renders the canonical JSON encoding of a result. The
// value must carry the current schema version (zero is stamped).
func EncodeResult(r *Result) ([]byte, error) {
	if r == nil {
		return nil, fmt.Errorf("wire: encode: nil result")
	}
	v := *r
	if err := stampSchema(&v.Schema); err != nil {
		return nil, fmt.Errorf("wire: encode result: %w", err)
	}
	return json.Marshal(&v)
}

// DecodeResult strictly parses a canonical result encoding: unknown
// fields, trailing data, or a schema-version mismatch are errors. The
// decoded value is normalized to canonical form (empty containers
// become nil), so decode ∘ encode is the identity on decoded values.
func DecodeResult(data []byte) (*Result, error) {
	var r Result
	if err := decodeStrict(data, &r); err != nil {
		return nil, fmt.Errorf("wire: decode result: %w", err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("wire: decode result: unsupported schema version %d (want %d)", r.Schema, SchemaVersion)
	}
	if err := r.validate(); err != nil {
		return nil, fmt.Errorf("wire: decode result: %w", err)
	}
	r.normalize()
	return &r, nil
}

// validate enforces the schema's cross-field invariant: the target
// graph is present exactly when the result is non-empty. Consumers
// (renderers, FromWire materialization) rely on it.
func (r *Result) validate() error {
	if r.Empty && r.Target != nil {
		return fmt.Errorf("empty result carries a target graph")
	}
	if !r.Empty && r.Target == nil {
		return fmt.Errorf("non-empty result lacks a target graph")
	}
	return nil
}

// EncodeMatrixResult renders the canonical JSON encoding of one matrix
// cell — one NDJSON stream line.
func EncodeMatrixResult(m *MatrixResult) ([]byte, error) {
	if m == nil {
		return nil, fmt.Errorf("wire: encode: nil matrix result")
	}
	v := *m
	if err := stampSchema(&v.Schema); err != nil {
		return nil, fmt.Errorf("wire: encode matrix result: %w", err)
	}
	if v.Result != nil {
		res := *v.Result
		if err := stampSchema(&res.Schema); err != nil {
			return nil, fmt.Errorf("wire: encode matrix result: %w", err)
		}
		v.Result = &res
	}
	return json.Marshal(&v)
}

// DecodeMatrixResult strictly parses one matrix-cell encoding.
func DecodeMatrixResult(data []byte) (*MatrixResult, error) {
	var m MatrixResult
	if err := decodeStrict(data, &m); err != nil {
		return nil, fmt.Errorf("wire: decode matrix result: %w", err)
	}
	if m.Schema != SchemaVersion {
		return nil, fmt.Errorf("wire: decode matrix result: unsupported schema version %d (want %d)", m.Schema, SchemaVersion)
	}
	// A cell is either a result or an error, never both and never
	// neither — consumers dereference Result unguarded when Err is "".
	if (m.Result == nil) == (m.Err == "") {
		return nil, fmt.Errorf("wire: decode matrix result: cell must carry exactly one of result and err")
	}
	if m.Result != nil {
		if m.Result.Schema != SchemaVersion {
			return nil, fmt.Errorf("wire: decode matrix result: embedded result has schema version %d (want %d)", m.Result.Schema, SchemaVersion)
		}
		if err := m.Result.validate(); err != nil {
			return nil, fmt.Errorf("wire: decode matrix result: %w", err)
		}
		m.Result.normalize()
	}
	return &m, nil
}

// EncodeJobSpec renders the canonical JSON encoding of a job spec.
// Inline scenarios are canonicalized (on a copy) so the same scenario
// content always encodes to the same bytes.
func EncodeJobSpec(s *JobSpec) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("wire: encode: nil job spec")
	}
	v := *s
	if err := stampSchema(&v.Schema); err != nil {
		return nil, fmt.Errorf("wire: encode job spec: %w", err)
	}
	if len(v.Scenarios) > 0 {
		scns := make([]benchprog.Scenario, len(v.Scenarios))
		for i := range v.Scenarios {
			scns[i] = v.Scenarios[i].Clone()
			if err := scns[i].Canonicalize(); err != nil {
				return nil, fmt.Errorf("wire: encode job spec: scenario %d: %w", i, err)
			}
		}
		v.Scenarios = scns
	}
	return json.Marshal(&v)
}

// DecodeJobSpec strictly parses a job spec. Unlike results, a zero
// schema version is accepted (hand-written client bodies may omit it)
// and normalized to the current version.
func DecodeJobSpec(data []byte) (*JobSpec, error) {
	var s JobSpec
	if err := decodeStrict(data, &s); err != nil {
		return nil, fmt.Errorf("wire: decode job spec: %w", err)
	}
	if s.Schema == 0 {
		s.Schema = SchemaVersion
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("wire: decode job spec: unsupported schema version %d (want %d)", s.Schema, SchemaVersion)
	}
	if len(s.Tools) == 0 {
		s.Tools = nil
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = nil
	}
	if len(s.Scenarios) == 0 {
		s.Scenarios = nil
	}
	for i := range s.Scenarios {
		if err := s.Scenarios[i].Canonicalize(); err != nil {
			return nil, fmt.Errorf("wire: decode job spec: scenario %d: %w", i, err)
		}
	}
	if s.Capture != nil {
		if len(s.Capture.Params) == 0 {
			s.Capture.Params = nil
		}
		if !s.Capture.Fast && s.Capture.Params == nil {
			s.Capture = nil // all-default capture collapses to absent
		}
	}
	return &s, nil
}

// EncodeJobStatus renders the canonical JSON encoding of a job status.
func EncodeJobStatus(s *JobStatus) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("wire: encode: nil job status")
	}
	v := *s
	if err := stampSchema(&v.Schema); err != nil {
		return nil, fmt.Errorf("wire: encode job status: %w", err)
	}
	return json.Marshal(&v)
}

// DecodeJobStatus strictly parses a job status.
func DecodeJobStatus(data []byte) (*JobStatus, error) {
	var s JobStatus
	if err := decodeStrict(data, &s); err != nil {
		return nil, fmt.Errorf("wire: decode job status: %w", err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("wire: decode job status: unsupported schema version %d (want %d)", s.Schema, SchemaVersion)
	}
	if len(s.Cells) == 0 {
		s.Cells = nil
	}
	return &s, nil
}

// normalize rewrites decoded values into canonical form: JSON cannot
// distinguish an absent container from an empty one, and the canonical
// encoding always omits empties, so decoded empty containers collapse
// to nil.
func (r *Result) normalize() {
	for _, g := range []*Graph{r.Target, r.FG, r.BG} {
		if g != nil {
			g.normalize()
		}
	}
}

func (g *Graph) normalize() {
	if len(g.Nodes) == 0 {
		g.Nodes = nil
	}
	if len(g.Edges) == 0 {
		g.Edges = nil
	}
	for i := range g.Nodes {
		if len(g.Nodes[i].Props) == 0 {
			g.Nodes[i].Props = nil
		}
	}
	for i := range g.Edges {
		if len(g.Edges[i].Props) == 0 {
			g.Edges[i].Props = nil
		}
	}
}

// stampSchema fills a zero schema field with the current version and
// rejects any other version the encoder does not speak.
func stampSchema(schema *int) error {
	if *schema == 0 {
		*schema = SchemaVersion
		return nil
	}
	if *schema != SchemaVersion {
		return fmt.Errorf("unsupported schema version %d (want %d)", *schema, SchemaVersion)
	}
	return nil
}

// decodeStrict parses exactly one JSON value into dst, rejecting
// unknown fields and trailing content.
func decodeStrict(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}
